#!/usr/bin/env bash
# Configure + build (warnings as errors) + ctest in one command.
# Usage: scripts/check.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-check}"
JOBS="$(nproc 2>/dev/null || echo 4)"

# Use ccache when available (CI restores its cache across runs).
CCACHE_ARGS=()
if command -v ccache >/dev/null 2>&1; then
    CCACHE_ARGS=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

cmake -B "$BUILD_DIR" -S . -DHMCSIM_WERROR=ON "${CCACHE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
