#!/usr/bin/env bash
# Configure + build (warnings as errors) + ctest in one command.
#
# Usage: scripts/check.sh [--lint] [--tidy] [build-dir]
#   --lint  also run the determinism linter against its baseline
#   --tidy  also run clang-tidy over src/ (requires clang-tidy; fails
#           if it was requested but is not installed)
set -euo pipefail

cd "$(dirname "$0")/.."

RUN_LINT=0
RUN_TIDY=0
BUILD_DIR=""
for arg in "$@"; do
    case "$arg" in
      --lint) RUN_LINT=1 ;;
      --tidy) RUN_TIDY=1 ;;
      --*)
        echo "check.sh: unknown flag '$arg'" >&2
        exit 2
        ;;
      *) BUILD_DIR="$arg" ;;
    esac
done
BUILD_DIR="${BUILD_DIR:-build-check}"
JOBS="$(nproc 2>/dev/null || echo 4)"

# Use ccache when available (CI restores its cache across runs).
CCACHE_ARGS=()
if command -v ccache >/dev/null 2>&1; then
    CCACHE_ARGS=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

cmake -B "$BUILD_DIR" -S . -DHMCSIM_WERROR=ON "${CCACHE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

if [[ "$RUN_LINT" == 1 ]]; then
    echo "== determinism lint =="
    python3 scripts/lint/determinism_lint.py \
        --compile-commands "$BUILD_DIR/compile_commands.json"
fi

if [[ "$RUN_TIDY" == 1 ]]; then
    echo "== clang-tidy =="
    if ! command -v clang-tidy >/dev/null 2>&1; then
        echo "check.sh: --tidy requested but clang-tidy is not" \
             "installed" >&2
        exit 1
    fi
    # Zero-warning policy: .clang-tidy sets WarningsAsErrors, so any
    # finding fails here.
    mapfile -t TIDY_SOURCES < <(find src -name '*.cc' | sort)
    clang-tidy -p "$BUILD_DIR" --quiet "${TIDY_SOURCES[@]}"
fi
