#!/usr/bin/env bash
# Run the simulator perf-trajectory bench and (optionally) gate on an
# events/sec regression against a baseline JSON.
#
# Usage:
#   scripts/bench_trajectory.sh [--build DIR] [--out FILE] [--fast]
#                               [--check [BASELINE]] [--tolerance PCT]
#
#   --build DIR       build directory containing bench_trajectory
#                     (default: build; the target is built if missing)
#   --out FILE        where to write the new trajectory point
#                     (default: BENCH_events_per_sec.json in the repo
#                     root -- the committed trajectory file)
#   --fast            pass --fast to the bench (CI smoke scale)
#   --check [FILE]    after the run, compare events_per_sec against
#                     the LAST recorded entry of FILE (default: the
#                     committed BENCH_events_per_sec.json before this
#                     run) and exit 1 if it regressed by more than
#                     the tolerance
#   --tolerance PCT   allowed events/sec drop, percent (default 20)
#
# The run is appended to the document's "entries" history, labelled
# with the current git commit and UTC date.  The headline
# "events_per_sec" key is emitted first in the JSON precisely so this
# script can read it with grep/awk and no JSON parser; the entries
# array is last, so the file's final occurrence is the latest entry.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build"
out_file="$repo_root/BENCH_events_per_sec.json"
baseline=""
do_check=0
tolerance=20
fast_flag=()

while [ $# -gt 0 ]; do
    case "$1" in
        --build)     build_dir="$2"; shift 2 ;;
        --build=*)   build_dir="${1#*=}"; shift ;;
        --out)       out_file="$2"; shift 2 ;;
        --out=*)     out_file="${1#*=}"; shift ;;
        --fast)      fast_flag=(--fast); shift ;;
        --tolerance) tolerance="$2"; shift 2 ;;
        --tolerance=*) tolerance="${1#*=}"; shift ;;
        --check)
            do_check=1
            if [ $# -gt 1 ] && [ "${2#--}" = "$2" ]; then
                baseline="$2"; shift
            fi
            shift ;;
        --check=*)   do_check=1; baseline="${1#*=}"; shift ;;
        -h|--help)
            sed -n '2,26p' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
        *)
            echo "bench_trajectory.sh: unknown argument '$1'" >&2
            exit 2 ;;
    esac
done

extract_eps() {
    # First "events_per_sec" occurrence is the headline number.
    grep -m1 -o '"events_per_sec": *[0-9.eE+-]*' "$1" \
        | awk '{print $2}'
}

extract_last_entry_eps() {
    # Latest history entry: in a v2 document the entries array is
    # last, so its final events_per_sec is the last entry's.  A v1
    # baseline has no entries array; fall back to the headline.
    if grep -q '"entries"' "$1"; then
        grep -o '"events_per_sec": *[0-9.eE+-]*' "$1" \
            | tail -1 | awk '{print $2}'
    else
        extract_eps "$1"
    fi
}

# Default baseline: the committed trajectory point, captured before we
# overwrite it.
if [ "$do_check" -eq 1 ] && [ -z "$baseline" ]; then
    if [ -f "$out_file" ]; then
        baseline="$(mktemp)"
        trap 'rm -f "$baseline"' EXIT
        cp "$out_file" "$baseline"
    else
        echo "bench_trajectory.sh: no baseline to check against" \
             "(missing $out_file); recording only" >&2
        do_check=0
    fi
fi

bench="$build_dir/bench_trajectory"
if [ ! -x "$bench" ]; then
    echo "building bench_trajectory in $build_dir..."
    cmake -B "$build_dir" -S "$repo_root" >/dev/null
    cmake --build "$build_dir" --target bench_trajectory -j >/dev/null
fi

# Label the appended history entry with the current commit and time.
commit="$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null \
          || echo unknown)"
run_date="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

"$bench" "${fast_flag[@]}" --out="$out_file" \
    --commit="$commit" --date="$run_date"

new_eps="$(extract_eps "$out_file")"
if [ -z "$new_eps" ]; then
    echo "bench_trajectory.sh: no events_per_sec in $out_file" >&2
    exit 1
fi
echo "events/sec: $new_eps"

if [ "$do_check" -eq 1 ]; then
    base_eps="$(extract_last_entry_eps "$baseline")"
    if [ -z "$base_eps" ]; then
        echo "bench_trajectory.sh: no events_per_sec in baseline" \
             "$baseline; skipping check" >&2
        exit 0
    fi
    echo "baseline:   $base_eps (last entry, tolerance ${tolerance}%)"
    if ! awk -v new="$new_eps" -v base="$base_eps" -v tol="$tolerance" \
        'BEGIN { exit !(new >= base * (1.0 - tol / 100.0)) }'; then
        pct="$(awk -v new="$new_eps" -v base="$base_eps" \
            'BEGIN { printf "%.1f", 100.0 * (1.0 - new / base) }')"
        echo "FAIL: events/sec regressed ${pct}% (>${tolerance}%)" >&2
        exit 1
    fi
    echo "perf check passed"
fi
