#!/usr/bin/env python3
"""Determinism linter for the hmcsim source tree.

The simulator promises bit-identical results for identical configs --
that promise is what makes the figure CSVs regression-testable and what
the future partitioned-parallel core will be validated against.  This
linter statically rejects the constructs that historically break that
promise:

  wall-clock        std::chrono::{system,steady,high_resolution}_clock,
                    time(), gettimeofday, clock_gettime, localtime, ...
                    anywhere under src/ EXCEPT src/obs/ (observability
                    measures host wall time by design; simulation code
                    must only ever read Kernel::now()).
  rng               rand()/srand(), std::random_device, std::mt19937
                    and friends, anywhere under src/.  SplitMix64
                    (common/rng.h) is the only sanctioned RNG: seeded,
                    portable, and stable across libstdc++ versions.
  unordered-iter    iteration over std::unordered_{map,set,...} in
                    order-sensitive files (anything that schedules
                    events or lives in the core simulation dirs).
                    Unordered iteration order varies across libstdc++
                    versions and ASLR seeds, so any event schedule or
                    stats mutation derived from it diverges.
  std-function      std::function in src/sim/ and src/hmc/ hot paths.
                    It heap-allocates captures > 16 B and malloc order
                    then couples simulated behavior to allocator state;
                    use InlineEvent / InlineFunction instead.
  naked-packet-new  new HmcPacket / make_shared<HmcPacket> /
                    malloc(sizeof(HmcPacket)) outside the pool-backed
                    factory (hmc/packet.cc).  Bypassing the pool skews
                    the allocator telemetry the perf trajectory gates on
                    and dodges the pool's lifetime diagnostics.

Waivers: a finding is suppressed by a comment on the same line or the
immediately preceding line:

    // hmcsim-lint: allow(<rule>) <reason -- required>

Baseline: a checked-in shrink-only baseline (default
scripts/lint/determinism_baseline.txt) lists historical (rule, file)
pairs that predate the linter.  New findings beyond the baseline fail;
baseline entries that no longer fire ALSO fail (the baseline may only
shrink -- regenerate with --write-baseline after fixing).

Engines: --engine=libclang tokenizes each TU with the clang python
bindings (comments and string literals dropped by the lexer, include
flags taken from compile_commands.json); --engine=regex runs the same
rules over comment/string-stripped text with no dependencies beyond
the standard library.  --engine=auto (default) prefers libclang and
falls back to regex -- the container this repo builds in has no clang,
so regex is the everyday engine and libclang runs in CI.

Exit codes: 0 clean, 1 findings or stale baseline, 2 usage/internal.
"""

import argparse
import json
import os
import re
import sys

RULES = ("wall-clock", "rng", "unordered-iter", "std-function",
         "naked-packet-new")

# ---------------------------------------------------------------------------
# Rule patterns (applied to comment/string-stripped code lines)
# ---------------------------------------------------------------------------

WALL_CLOCK_RE = re.compile(
    r"std::chrono::(?:system|steady|high_resolution)_clock"
    r"|\bgettimeofday\s*\("
    r"|\bclock_gettime\s*\("
    r"|\b(?:localtime|gmtime|mktime)(?:_r|_s)?\s*\("
    r"|std::time\s*\("
    r"|(?<![A-Za-z0-9_.:])time\s*\(\s*(?:NULL|nullptr|0|&)"
)

RNG_RE = re.compile(
    r"(?<![A-Za-z0-9_])s?rand\s*\("
    r"|std::random_device"
    r"|std::(?:mt19937|minstd_rand|default_random_engine|ranlux)"
)

STD_FUNCTION_RE = re.compile(r"std::function\s*<")

NAKED_PACKET_RE = re.compile(
    r"\bnew\s+HmcPacket\b"
    r"|make_shared\s*<\s*HmcPacket\b"
    r"|\bmalloc\s*\(\s*sizeof\s*\(\s*HmcPacket\b"
)

UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<")
# Variable name of an unordered declaration: last identifier before
# ';', '=', '{' or '(' on the declaration statement.
UNORDERED_VAR_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;={]*>\s*"
    r"(?:&|\*)?\s*([A-Za-z_]\w*)")

WAIVER_RE = re.compile(
    r"hmcsim-lint:\s*allow\(([a-z][a-z-]*)\)\s*(\S.*)?$")

# Files allowed to mention wall clocks: observability measures host
# time on purpose (self-profiler, perf trajectory).
WALL_CLOCK_ALLOWED_PREFIX = os.path.join("src", "obs") + os.sep

# The pool-backed packet factory and the pool itself.
PACKET_FACTORY_FILES = {
    os.path.join("src", "hmc", "packet.cc"),
    os.path.join("src", "hmc", "packet_pool.h"),
    os.path.join("src", "hmc", "packet_pool.cc"),
}

STD_FUNCTION_DIRS = (os.path.join("src", "sim") + os.sep,
                     os.path.join("src", "hmc") + os.sep)

# Dirs whose files are order-sensitive even without a visible
# schedule() call (they mutate stats / drive the event core).
ORDER_SENSITIVE_DIRS = tuple(
    os.path.join("src", d) + os.sep
    for d in ("sim", "hmc", "chain", "noc", "host"))


class Finding:
    __slots__ = ("rule", "path", "line", "message")

    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path  # repo-relative, forward slashes
        self.line = line
        self.message = message

    def key(self):
        return (self.rule, self.path)

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)


def strip_comments_and_strings(text):
    """Blank out comments, string and char literals, preserving line
    structure so findings keep their line numbers."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j == -1:
                j = n
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.extend(ch if ch == "\n" else " " for ch in text[i:j])
            i = j
        elif c == '"' or c == "'":
            quote = c
            # Raw strings: R"delim( ... )delim"
            if quote == '"' and i > 0 and text[i - 1] == "R":
                m = re.match(r'R"([^\s()\\]{0,16})\(', text[i - 1:])
                if m:
                    closer = ")%s\"" % m.group(1)
                    j = text.find(closer, i)
                    j = n if j == -1 else j + len(closer)
                    out.extend(ch if ch == "\n" else " "
                               for ch in text[i:j])
                    i = j
                    continue
            j = i + 1
            while j < n and text[j] != quote:
                if text[j] == "\\":
                    j += 1
                elif text[j] == "\n":
                    break  # unterminated; bail at EOL
                j += 1
            j = min(j + 1, n)
            out.append(quote)
            out.extend(ch if ch == "\n" else " " for ch in text[i + 1:j])
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def parse_waivers(raw_lines):
    """Map line number -> set of waived rules.  A waiver on line N
    covers findings on N and N+1 (comment-above style).  A waiver with
    no reason is itself an error (returned separately)."""
    waived = {}
    errors = []
    for idx, line in enumerate(raw_lines, start=1):
        m = WAIVER_RE.search(line)
        if not m:
            continue
        rule, reason = m.group(1), m.group(2)
        if rule not in RULES:
            errors.append((idx, "unknown lint rule '%s' in waiver" % rule))
            continue
        if not reason or not reason.strip():
            errors.append((idx, "waiver for '%s' needs a reason" % rule))
            continue
        waived.setdefault(idx, set()).add(rule)
        waived.setdefault(idx + 1, set()).add(rule)
    return waived, errors


def is_order_sensitive(rel, stripped):
    if any(rel.startswith(d) for d in ORDER_SENSITIVE_DIRS):
        return True
    return re.search(r"\bschedule(?:In|At)?\s*\(", stripped) is not None


def scan_stripped(rel, stripped, raw_lines):
    """Run every rule over one file's stripped text; yield Findings
    (before waiver filtering)."""
    findings = []
    lines = stripped.split("\n")

    wall_allowed = rel.startswith(WALL_CLOCK_ALLOWED_PREFIX)
    std_function_scoped = any(rel.startswith(d) for d in STD_FUNCTION_DIRS)
    packet_factory = rel in {p.replace(os.sep, "/") for p in
                             PACKET_FACTORY_FILES}
    order_sensitive = is_order_sensitive(rel, stripped)

    unordered_vars = set(UNORDERED_VAR_RE.findall(stripped))

    for idx, line in enumerate(lines, start=1):
        if not wall_allowed and WALL_CLOCK_RE.search(line):
            findings.append(Finding(
                "wall-clock", rel, idx,
                "wall-clock access outside src/obs/; simulation code "
                "must read Kernel::now()"))
        if RNG_RE.search(line):
            findings.append(Finding(
                "rng", rel, idx,
                "non-deterministic RNG; use SplitMix64 (common/rng.h)"))
        if std_function_scoped and STD_FUNCTION_RE.search(line):
            findings.append(Finding(
                "std-function", rel, idx,
                "std::function on a hot path; use InlineEvent / "
                "InlineFunction (common/inline_function.h)"))
        if not packet_factory and NAKED_PACKET_RE.search(line):
            findings.append(Finding(
                "naked-packet-new", rel, idx,
                "HmcPacket allocated outside the pool-backed factory "
                "(hmc/packet.cc)"))
        if order_sensitive and unordered_vars:
            m = re.search(r"for\s*\([^)]*:\s*(?:this->)?([A-Za-z_]\w*)\s*\)",
                          line)
            if m and m.group(1) in unordered_vars:
                findings.append(Finding(
                    "unordered-iter", rel, idx,
                    "iteration over unordered container '%s' in an "
                    "order-sensitive file; use std::map/std::vector or "
                    "sort first" % m.group(1)))
            m = re.search(r"([A-Za-z_]\w*)\s*\.\s*c?begin\s*\(\)", line)
            if m and m.group(1) in unordered_vars:
                findings.append(Finding(
                    "unordered-iter", rel, idx,
                    "iterator over unordered container '%s' in an "
                    "order-sensitive file" % m.group(1)))
    return findings


# ---------------------------------------------------------------------------
# Engines
# ---------------------------------------------------------------------------

def lint_file_regex(path, rel):
    try:
        with open(path, encoding="utf-8", errors="replace") as fh:
            text = fh.read()
    except OSError as exc:
        raise SystemExit("determinism_lint: cannot read %s: %s"
                         % (path, exc))
    raw_lines = text.split("\n")
    waived, waiver_errors = parse_waivers(raw_lines)
    stripped = strip_comments_and_strings(text)
    findings = scan_stripped(rel, stripped, raw_lines)
    kept = [f for f in findings
            if f.rule not in waived.get(f.line, set())]
    for lineno, msg in waiver_errors:
        kept.append(Finding("waiver", rel, lineno, msg))
    return kept


def try_import_libclang():
    try:
        from clang import cindex  # noqa: F401
        return cindex
    except ImportError:
        return None


def lint_file_libclang(cindex, index, path, rel, compile_args):
    """Tokenize with clang's lexer so comments/strings are dropped by
    the real frontend, then reuse the shared rule scan on the
    reconstructed token text."""
    tu = index.parse(path, args=compile_args,
                     options=cindex.TranslationUnit
                     .PARSE_DETAILED_PROCESSING_RECORD)
    with open(path, encoding="utf-8", errors="replace") as fh:
        text = fh.read()
    raw_lines = text.split("\n")
    nlines = len(raw_lines)
    code_lines = [""] * nlines
    for tok in tu.cursor.get_tokens():
        if tok.kind == cindex.TokenKind.COMMENT:
            continue
        if (tok.kind == cindex.TokenKind.LITERAL
                and tok.spelling.startswith(('"', "'", 'R"'))):
            continue
        line = tok.location.line
        if 1 <= line <= nlines:
            code_lines[line - 1] += tok.spelling + " "
    waived, waiver_errors = parse_waivers(raw_lines)
    findings = scan_stripped(rel, "\n".join(code_lines), raw_lines)
    kept = [f for f in findings
            if f.rule not in waived.get(f.line, set())]
    for lineno, msg in waiver_errors:
        kept.append(Finding("waiver", rel, lineno, msg))
    return kept


def compile_args_for(compile_commands, path):
    entry = compile_commands.get(os.path.abspath(path))
    if not entry:
        return ["-std=c++17"]
    args = []
    skip = False
    for a in entry:
        if skip:
            skip = False
            continue
        if a in ("-c", "-o"):
            skip = a == "-o"
            continue
        if a.startswith(("-I", "-D", "-std=", "-isystem")):
            args.append(a)
    return args or ["-std=c++17"]


def load_compile_commands(path):
    cmds = {}
    if not path or not os.path.exists(path):
        return cmds
    try:
        with open(path, encoding="utf-8") as fh:
            for entry in json.load(fh):
                f = os.path.abspath(
                    os.path.join(entry.get("directory", "."),
                                 entry["file"]))
                if "arguments" in entry:
                    cmds[f] = entry["arguments"]
                elif "command" in entry:
                    cmds[f] = entry["command"].split()
    except (OSError, ValueError, KeyError) as exc:
        print("determinism_lint: ignoring unreadable compile commands "
              "(%s)" % exc, file=sys.stderr)
    return cmds


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------

def load_baseline(path):
    entries = set()
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) != 2 or parts[0] not in RULES:
                raise SystemExit(
                    "determinism_lint: malformed baseline line: %r"
                    % line)
            entries.add((parts[0], parts[1]))
    return entries


def write_baseline(path, findings):
    keys = sorted({f.key() for f in findings if f.rule in RULES})
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("# hmcsim determinism-lint baseline -- shrink-only.\n"
                 "# One historical '<rule>\\t<file>' pair per line; "
                 "regenerate with --write-baseline.\n")
        for rule, rel in keys:
            fh.write("%s\t%s\n" % (rule, rel))


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def collect_files(src_root, explicit):
    if explicit:
        return [(p, os.path.relpath(p, os.path.dirname(
            os.path.abspath(src_root))).replace(os.sep, "/"))
            for p in explicit]
    files = []
    parent = os.path.dirname(os.path.abspath(src_root))
    for dirpath, _dirnames, filenames in os.walk(src_root):
        for name in sorted(filenames):
            if name.endswith((".h", ".hh", ".hpp", ".cc", ".cpp",
                              ".cxx")):
                full = os.path.join(dirpath, name)
                rel = os.path.relpath(full, parent).replace(os.sep, "/")
                files.append((full, rel))
    files.sort(key=lambda t: t[1])
    return files


def main(argv):
    ap = argparse.ArgumentParser(
        prog="determinism_lint.py",
        description="hmcsim determinism linter (see module docstring)")
    ap.add_argument("--src", default="src",
                    help="source root to lint (default: src)")
    ap.add_argument("--baseline",
                    default=os.path.join(os.path.dirname(
                        os.path.abspath(__file__)),
                        "determinism_baseline.txt"),
                    help="shrink-only baseline file")
    ap.add_argument("--write-baseline", action="store_true",
                    help="rewrite the baseline from current findings")
    ap.add_argument("--no-baseline", action="store_true",
                    help="ignore the baseline (report everything)")
    ap.add_argument("--engine", choices=("auto", "regex", "libclang"),
                    default="auto")
    ap.add_argument("--compile-commands",
                    default=os.path.join("build",
                                         "compile_commands.json"),
                    help="compile_commands.json for the libclang engine")
    ap.add_argument("files", nargs="*",
                    help="explicit files (default: walk --src)")
    args = ap.parse_args(argv)

    if not args.files and not os.path.isdir(args.src):
        print("determinism_lint: source root '%s' not found" % args.src,
              file=sys.stderr)
        return 2

    cindex = None
    if args.engine in ("auto", "libclang"):
        cindex = try_import_libclang()
        if cindex is None:
            if args.engine == "libclang":
                print("determinism_lint: --engine=libclang requested "
                      "but python clang bindings are unavailable",
                      file=sys.stderr)
                return 2
            print("determinism_lint: libclang unavailable, using the "
                  "regex engine", file=sys.stderr)

    files = collect_files(args.src, args.files)
    findings = []
    if cindex is not None:
        cmds = load_compile_commands(args.compile_commands)
        try:
            index = cindex.Index.create()
        except cindex.LibclangError as exc:
            if args.engine == "libclang":
                print("determinism_lint: libclang failed to load: %s"
                      % exc, file=sys.stderr)
                return 2
            cindex = None
            print("determinism_lint: libclang failed to load, using "
                  "the regex engine", file=sys.stderr)
    for full, rel in files:
        if cindex is not None:
            findings.extend(lint_file_libclang(
                cindex, index, full, rel,
                compile_args_for(cmds, full)))
        else:
            findings.extend(lint_file_regex(full, rel))

    if args.write_baseline:
        write_baseline(args.baseline, findings)
        print("determinism_lint: wrote %d baseline entr%s to %s"
              % (len({f.key() for f in findings}),
                 "y" if len({f.key() for f in findings}) == 1 else "ies",
                 args.baseline))
        return 0

    baseline = set() if args.no_baseline else load_baseline(args.baseline)
    current_keys = {f.key() for f in findings if f.rule in RULES}
    waiver_problems = [f for f in findings if f.rule == "waiver"]
    new = [f for f in findings
           if f.rule in RULES and f.key() not in baseline]
    stale = sorted(baseline - current_keys)

    status = 0
    for f in sorted(new, key=lambda f: (f.path, f.line, f.rule)):
        print(f)
        status = 1
    for f in waiver_problems:
        print(f)
        status = 1
    for rule, rel in stale:
        print("%s: [baseline] stale entry '%s' -- the finding is gone; "
              "shrink the baseline (--write-baseline)" % (rel, rule))
        status = 1
    if status == 0:
        suppressed = len(current_keys & baseline)
        msg = "determinism_lint: clean (%d files)" % len(files)
        if suppressed:
            msg += ", %d baselined finding%s remain" % (
                suppressed, "" if suppressed == 1 else "s")
        print(msg)
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
