#include <gtest/gtest.h>

#include "common/log.h"
#include "noc/buffer.h"

namespace hmcsim {
namespace {

NocMessage
msg(std::uint32_t flits, PacketId id = 0)
{
    NocMessage m;
    m.id = id;
    m.flits = flits;
    return m;
}

TEST(FlitBuffer, CapacityAccounting)
{
    FlitBuffer b(10);
    EXPECT_TRUE(b.canAccept(10));
    b.push(msg(4));
    EXPECT_EQ(b.usedFlits(), 4u);
    EXPECT_EQ(b.freeFlits(), 6u);
    EXPECT_TRUE(b.canAccept(6));
    EXPECT_FALSE(b.canAccept(7));
}

TEST(FlitBuffer, FifoOrder)
{
    FlitBuffer b(100);
    b.push(msg(1, 10));
    b.push(msg(2, 20));
    b.push(msg(3, 30));
    EXPECT_EQ(b.pop().id, 10u);
    EXPECT_EQ(b.front().id, 20u);
    EXPECT_EQ(b.pop().id, 20u);
    EXPECT_EQ(b.pop().id, 30u);
    EXPECT_TRUE(b.empty());
}

TEST(FlitBuffer, PopReleasesSpace)
{
    FlitBuffer b(9);
    b.push(msg(9));
    EXPECT_FALSE(b.canAccept(1));
    b.pop();
    EXPECT_TRUE(b.canAccept(9));
}

TEST(FlitBuffer, LargePacketsConsumeMore)
{
    // The paper's point: a 9-flit response displaces four 2-flit ones.
    FlitBuffer b(9);
    b.push(msg(9));
    EXPECT_EQ(b.size(), 1u);
    b.pop();
    for (int i = 0; i < 4; ++i)
        b.push(msg(2));
    EXPECT_EQ(b.size(), 4u);
    EXPECT_FALSE(b.canAccept(2));
    EXPECT_TRUE(b.canAccept(1));
}

TEST(FlitBuffer, UnboundedWhenZeroCapacity)
{
    FlitBuffer b(0);
    for (int i = 0; i < 1000; ++i)
        b.push(msg(9));
    EXPECT_TRUE(b.canAccept(1000000));
    EXPECT_EQ(b.usedFlits(), 9000u);
}

TEST(FlitBuffer, PeakTracksHighWater)
{
    FlitBuffer b(16);
    b.push(msg(8));
    b.push(msg(8));
    b.pop();
    b.pop();
    EXPECT_EQ(b.peakFlits(), 16u);
}

TEST(FlitBuffer, OverflowPanics)
{
    FlitBuffer b(3);
    b.push(msg(2));
    EXPECT_THROW(b.push(msg(2)), PanicError);
}

TEST(FlitBuffer, PopEmptyPanics)
{
    FlitBuffer b(3);
    EXPECT_THROW(b.pop(), PanicError);
    EXPECT_THROW(b.front(), PanicError);
}

TEST(FlitBuffer, Clear)
{
    FlitBuffer b(10);
    b.push(msg(5));
    b.clear();
    EXPECT_TRUE(b.empty());
    EXPECT_EQ(b.usedFlits(), 0u);
    EXPECT_TRUE(b.canAccept(10));
}

}  // namespace
}  // namespace hmcsim
