#include <gtest/gtest.h>

#include "common/log.h"
#include "noc/topology.h"

namespace hmcsim {
namespace {

TEST(Topology, QuadrantXbarShape)
{
    const TopologySpec t = makeQuadrantTopology(16, 4, 2, true);
    EXPECT_EQ(t.numRouters, 4u);
    EXPECT_EQ(t.routerLinks.size(), 6u);  // K4 complete graph
    EXPECT_EQ(t.numEndpoints(), 18u);     // 2 links + 16 vaults
    // Links land on quadrants 0 and 2 (the spec's layout).
    EXPECT_EQ(t.endpointRouter[0], 0u);
    EXPECT_EQ(t.endpointRouter[1], 2u);
    // Vault v sits in quadrant v/4.
    for (std::uint32_t v = 0; v < 16; ++v)
        EXPECT_EQ(t.endpointRouter[2 + v], v / 4);
}

TEST(Topology, QuadrantRingShape)
{
    const TopologySpec t = makeQuadrantTopology(16, 4, 2, false);
    EXPECT_EQ(t.routerLinks.size(), 4u);  // ring of 4
}

TEST(Topology, TwoQuadrantRingHasOneLink)
{
    const TopologySpec t = makeQuadrantTopology(8, 2, 2, false);
    EXPECT_EQ(t.routerLinks.size(), 1u);  // no duplicate (0,1)
}

TEST(Topology, SingleSwitch)
{
    const TopologySpec t = makeSingleSwitchTopology(16, 2);
    EXPECT_EQ(t.numRouters, 1u);
    EXPECT_TRUE(t.routerLinks.empty());
    EXPECT_EQ(t.numEndpoints(), 18u);
}

TEST(Topology, MakeTopologyByName)
{
    EXPECT_EQ(makeTopology("quadrant_xbar", 16, 4, 2).routerLinks.size(),
              6u);
    EXPECT_EQ(makeTopology("quadrant_ring", 16, 4, 2).routerLinks.size(),
              4u);
    EXPECT_EQ(makeTopology("single_switch", 16, 4, 2).numRouters, 1u);
    EXPECT_THROW(makeTopology("torus", 16, 4, 2), FatalError);
}

TEST(Topology, BadGeometryIsFatal)
{
    EXPECT_THROW(makeQuadrantTopology(15, 4, 2, true), FatalError);
    EXPECT_THROW(makeQuadrantTopology(16, 0, 2, true), FatalError);
    EXPECT_THROW(makeQuadrantTopology(16, 4, 5, true), FatalError);
    EXPECT_THROW(makeQuadrantTopology(16, 4, 0, true), FatalError);
}

TEST(Routing, XbarRoutesAreOneHopOrLocal)
{
    const TopologySpec t = makeQuadrantTopology(16, 4, 2, true);
    const RoutingTables r = computeRoutes(t);
    for (std::uint32_t router = 0; router < 4; ++router) {
        for (std::uint32_t e = 0; e < t.numEndpoints(); ++e) {
            const std::uint32_t home = t.endpointRouter[e];
            if (home == router) {
                EXPECT_EQ(r.nextRouter[router][e], router);
                EXPECT_EQ(r.hops[router][e], 0u);
            } else {
                EXPECT_EQ(r.nextRouter[router][e], home);
                EXPECT_EQ(r.hops[router][e], 1u);
            }
        }
    }
}

TEST(Routing, RingUsesShortestPath)
{
    const TopologySpec t = makeQuadrantTopology(16, 4, 1, false);
    const RoutingTables r = computeRoutes(t);
    // Endpoint for vault 8 (endpoint id 1 + 8 = 9) lives on router 2;
    // from router 0 the distance around the 4-ring is 2.
    EXPECT_EQ(r.hops[0][9], 2u);
    // Adjacent quadrant is one hop.
    EXPECT_EQ(r.hops[0][1 + 4], 1u);  // vault 4 -> router 1
}

TEST(Routing, NextHopIsAdjacent)
{
    const TopologySpec t = makeQuadrantTopology(16, 4, 2, false);
    const RoutingTables r = computeRoutes(t);
    for (std::uint32_t router = 0; router < t.numRouters; ++router) {
        for (std::uint32_t e = 0; e < t.numEndpoints(); ++e) {
            const std::uint32_t next = r.nextRouter[router][e];
            if (next == router)
                continue;
            bool adjacent = false;
            for (const auto &[a, b] : t.routerLinks) {
                adjacent |= (a == router && b == next) ||
                    (b == router && a == next);
            }
            EXPECT_TRUE(adjacent)
                << "router " << router << " -> " << next;
        }
    }
}

TEST(Routing, HopsDecreaseAlongRoute)
{
    const TopologySpec t = makeQuadrantTopology(16, 4, 2, false);
    const RoutingTables r = computeRoutes(t);
    for (std::uint32_t router = 0; router < t.numRouters; ++router) {
        for (std::uint32_t e = 0; e < t.numEndpoints(); ++e) {
            const std::uint32_t next = r.nextRouter[router][e];
            if (next != router) {
                EXPECT_EQ(r.hops[next][e] + 1, r.hops[router][e]);
            }
        }
    }
}

TEST(Topology, ValidateCatchesBadEndpoint)
{
    TopologySpec t;
    t.numRouters = 2;
    t.endpointRouter = {0, 5};
    EXPECT_THROW(t.validate(), FatalError);
}

TEST(Topology, ValidateCatchesSelfLink)
{
    TopologySpec t;
    t.numRouters = 2;
    t.endpointRouter = {0};
    t.routerLinks = {{1, 1}};
    EXPECT_THROW(t.validate(), FatalError);
}

TEST(Routing, DisconnectedIsFatal)
{
    TopologySpec t;
    t.numRouters = 2;  // no links between them
    t.endpointRouter = {0, 1};
    EXPECT_THROW(computeRoutes(t), FatalError);
}

}  // namespace
}  // namespace hmcsim
