#include <gtest/gtest.h>

#include <vector>

#include "common/log.h"
#include "noc/network.h"
#include "sim/component.h"

namespace hmcsim {
namespace {

class RootComponent : public Component
{
  public:
    explicit RootComponent(Kernel &k) : Component(k, nullptr, "root") {}
};

/** Endpoint harness: records deliveries, optionally refuses space. */
struct TestEndpoint {
    std::vector<NocMessage> received;
    std::uint32_t freeFlits = 1000000;
    std::uint32_t reservedFlits = 0;
    int injectSpaceEvents = 0;

    Network::EndpointOps
    ops()
    {
        Network::EndpointOps o;
        o.tryReserve = [this](std::uint32_t flits) {
            if (reservedFlits + flits > freeFlits)
                return false;
            reservedFlits += flits;
            return true;
        };
        o.deliver = [this](const NocMessage &m) {
            reservedFlits -= m.flits;
            received.push_back(m);
        };
        o.onInjectSpace = [this] { ++injectSpaceEvents; };
        return o;
    }
};

class NetworkTest : public ::testing::Test
{
  protected:
    void
    build(const std::string &topo = "quadrant_xbar")
    {
        root_ = std::make_unique<RootComponent>(kernel_);
        RouterParams params;  // defaults, but with small ejection
        // queues so the backpressure tests see finite buffering.
        params.ejectQueueFlits = 64;
        net_ = std::make_unique<Network>(
            kernel_, root_.get(), "noc",
            makeTopology(topo, 16, 4, 2), params);
        eps_.resize(net_->numEndpoints());
        for (NodeId e = 0; e < net_->numEndpoints(); ++e)
            net_->setEndpoint(e, eps_[e].ops());
    }

    NocMessage
    msg(NodeId src, NodeId dst, std::uint32_t flits, PacketId id = 1)
    {
        NocMessage m;
        m.id = id;
        m.src = src;
        m.dst = dst;
        m.flits = flits;
        return m;
    }

    Kernel kernel_;
    std::unique_ptr<RootComponent> root_;
    std::unique_ptr<Network> net_;
    std::vector<TestEndpoint> eps_;
};

TEST_F(NetworkTest, DeliversAcrossQuadrants)
{
    build();
    // Link 0 (endpoint 0, router 0) to vault 15 (endpoint 17, router 3).
    ASSERT_TRUE(net_->canInject(0, 5));
    net_->inject(0, msg(0, 17, 5));
    kernel_.run();
    ASSERT_EQ(eps_[17].received.size(), 1u);
    EXPECT_EQ(eps_[17].received[0].flits, 5u);
    EXPECT_EQ(net_->messagesDelivered(), 1u);
    EXPECT_EQ(net_->flitsDelivered(), 5u);
}

TEST_F(NetworkTest, DeliversLocally)
{
    build();
    // Link 0 and vault 0 (endpoint 2) share router 0.
    net_->inject(0, msg(0, 2, 1));
    kernel_.run();
    ASSERT_EQ(eps_[2].received.size(), 1u);
}

TEST_F(NetworkTest, LatencyGrowsWithHops)
{
    build("quadrant_ring");
    net_->inject(0, msg(0, 2, 1, 1));  // local vault (0 router hops)
    kernel_.run();
    const double local = net_->latencyNs().max();
    net_->inject(0, msg(0, 2 + 8, 1, 2));  // vault 8, 2 ring hops
    kernel_.run();
    EXPECT_GT(net_->latencyNs().max(), local);
}

TEST_F(NetworkTest, HopCount)
{
    build("quadrant_ring");
    EXPECT_EQ(net_->hopCount(0, 2), 0u);       // same router
    EXPECT_EQ(net_->hopCount(0, 2 + 8), 2u);   // opposite quadrant
}

TEST_F(NetworkTest, ManyMessagesAllDelivered)
{
    build();
    int injected = 0;
    // Pump 200 messages from both link endpoints to all vaults,
    // respecting injection credits.
    std::function<void()> pump = [&] {
        while (injected < 200) {
            const NodeId src = injected % 2;
            const NodeId dst = 2 + (injected % 16);
            if (!net_->canInject(src, 2))
                return;  // onInjectSpace resumes
            net_->inject(src, msg(src, dst, 2, injected));
            ++injected;
        }
    };
    pump();
    // Drive to completion: keep pumping as credits free.
    while (injected < 200) {
        const std::uint64_t executed = kernel_.run();
        pump();
        if (executed == 0 && !net_->canInject(injected % 2, 2))
            FAIL() << "deadlock while injecting";
    }
    kernel_.run();
    std::size_t total = 0;
    for (NodeId v = 2; v < 18; ++v)
        total += eps_[v].received.size();
    EXPECT_EQ(total, 200u);
}

TEST_F(NetworkTest, BlockedEndpointHoldsDelivery)
{
    build();
    eps_[2].freeFlits = 0;  // vault 0 refuses everything
    net_->inject(0, msg(0, 2, 2));
    kernel_.run();
    EXPECT_TRUE(eps_[2].received.empty());
    // Free space and kick: delivery completes.
    eps_[2].freeFlits = 100;
    net_->kickEject(2);
    kernel_.run();
    EXPECT_EQ(eps_[2].received.size(), 1u);
}

TEST_F(NetworkTest, BackpressurePropagatesToInjection)
{
    build();
    eps_[2].freeFlits = 0;
    // Saturate the path to vault 0 with max-size messages until
    // injection credits dry up.
    int injected = 0;
    for (int i = 0; i < 100; ++i) {
        if (!net_->canInject(0, 16))
            break;
        net_->inject(0, msg(0, 2, 16, i));
        ++injected;
        kernel_.run();
    }
    EXPECT_LT(injected, 100);  // finite buffering
    EXPECT_TRUE(eps_[2].received.empty());
    // Releasing the endpoint drains everything.
    eps_[2].freeFlits = 1u << 30;
    net_->kickEject(2);
    kernel_.run();
    EXPECT_EQ(eps_[2].received.size(),
              static_cast<std::size_t>(injected));
}

TEST_F(NetworkTest, InjectSpaceCallbackFires)
{
    build();
    net_->inject(0, msg(0, 17, 4));
    kernel_.run();
    EXPECT_GT(eps_[0].injectSpaceEvents, 0);
}

TEST_F(NetworkTest, InjectWithoutCreditsPanics)
{
    build();
    eps_[2].freeFlits = 0;
    // Exhaust credits.
    while (net_->canInject(0, 16)) {
        net_->inject(0, msg(0, 2, 16));
        kernel_.run();
    }
    EXPECT_THROW(net_->inject(0, msg(0, 2, 16)), PanicError);
}

TEST_F(NetworkTest, UnregisteredEndpointPanics)
{
    root_ = std::make_unique<RootComponent>(kernel_);
    RouterParams params;
    net_ = std::make_unique<Network>(kernel_, root_.get(), "noc",
                                     makeTopology("single_switch", 4, 1, 1),
                                     params);
    net_->inject(0, msg(0, 1, 1));
    EXPECT_THROW(kernel_.run(), PanicError);
}

TEST_F(NetworkTest, DoubleRegistrationPanics)
{
    build();
    TestEndpoint extra;
    EXPECT_THROW(net_->setEndpoint(0, extra.ops()), PanicError);
}

TEST_F(NetworkTest, SingleSwitchDelivers)
{
    root_ = std::make_unique<RootComponent>(kernel_);
    RouterParams params;
    net_ = std::make_unique<Network>(kernel_, root_.get(), "noc",
                                     makeTopology("single_switch", 16, 1, 2),
                                     params);
    eps_.assign(net_->numEndpoints(), {});
    for (NodeId e = 0; e < net_->numEndpoints(); ++e)
        net_->setEndpoint(e, eps_[e].ops());
    net_->inject(0, msg(0, 9, 3));
    kernel_.run();
    EXPECT_EQ(eps_[9].received.size(), 1u);
}

}  // namespace
}  // namespace hmcsim
