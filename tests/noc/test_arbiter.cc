#include <gtest/gtest.h>

#include "common/log.h"
#include "noc/arbiter.h"

namespace hmcsim {
namespace {

TEST(RoundRobin, NoRequestsNoGrant)
{
    RoundRobinArbiter a(4);
    EXPECT_EQ(a.grant({false, false, false, false}),
              RoundRobinArbiter::npos);
}

TEST(RoundRobin, SingleRequestorWins)
{
    RoundRobinArbiter a(4);
    EXPECT_EQ(a.grant({false, false, true, false}), 2u);
}

TEST(RoundRobin, RotatesFairly)
{
    RoundRobinArbiter a(3);
    const std::vector<bool> all{true, true, true};
    EXPECT_EQ(a.grant(all), 0u);
    EXPECT_EQ(a.grant(all), 1u);
    EXPECT_EQ(a.grant(all), 2u);
    EXPECT_EQ(a.grant(all), 0u);
}

TEST(RoundRobin, SkipsIdleRequestors)
{
    RoundRobinArbiter a(4);
    EXPECT_EQ(a.grant({true, false, true, false}), 0u);
    EXPECT_EQ(a.grant({true, false, true, false}), 2u);
    EXPECT_EQ(a.grant({true, false, true, false}), 0u);
}

TEST(RoundRobin, FairShareUnderSaturation)
{
    RoundRobinArbiter a(9);
    std::vector<int> grants(9, 0);
    const std::vector<bool> all(9, true);
    for (int i = 0; i < 900; ++i)
        ++grants[a.grant(all)];
    for (int g : grants)
        EXPECT_EQ(g, 100);
}

TEST(RoundRobin, Reset)
{
    RoundRobinArbiter a(3);
    const std::vector<bool> all{true, true, true};
    a.grant(all);
    a.grant(all);
    a.reset();
    EXPECT_EQ(a.grant(all), 0u);
}

TEST(RoundRobin, SizeMismatchPanics)
{
    RoundRobinArbiter a(3);
    EXPECT_THROW(a.grant({true, true}), PanicError);
}

TEST(RoundRobin, ZeroRequestorsPanics)
{
    EXPECT_THROW(RoundRobinArbiter(0), PanicError);
}

TEST(Priority, HighestPriorityWins)
{
    PriorityArbiter a(3, {2, 0, 1});  // lower value = more important
    EXPECT_EQ(a.grant({true, true, true}), 1u);
    EXPECT_EQ(a.grant({true, false, true}), 2u);
    EXPECT_EQ(a.grant({true, false, false}), 0u);
}

TEST(Priority, RoundRobinWithinClass)
{
    PriorityArbiter a(4, {0, 0, 1, 0});
    const std::vector<bool> all{true, true, true, true};
    EXPECT_EQ(a.grant(all), 0u);
    EXPECT_EQ(a.grant(all), 1u);
    EXPECT_EQ(a.grant(all), 3u);
    EXPECT_EQ(a.grant(all), 0u);
}

TEST(Priority, SetPriorityTakesEffect)
{
    PriorityArbiter a(2, {0, 1});
    EXPECT_EQ(a.grant({true, true}), 0u);
    a.setPriority(1, -5);
    EXPECT_EQ(a.grant({true, true}), 1u);
}

TEST(Priority, NoRequestsNoGrant)
{
    PriorityArbiter a(2, {0, 1});
    EXPECT_EQ(a.grant({false, false}), PriorityArbiter::npos);
}

TEST(Priority, BadConstructionPanics)
{
    EXPECT_THROW(PriorityArbiter(3, {0, 1}), PanicError);
}

}  // namespace
}  // namespace hmcsim
