#include <gtest/gtest.h>

#include "common/log.h"
#include "noc/channel.h"

namespace hmcsim {
namespace {

TEST(Channel, SerializationTiming)
{
    Kernel k;
    Channel c(k, "c", 800, 1600);
    const Channel::Times t = c.reserve(4, 0);
    EXPECT_EQ(t.start, 0u);
    EXPECT_EQ(t.serDone, 3200u);   // 4 flits * 800 ps
    EXPECT_EQ(t.arrival, 4800u);   // + wire latency
    EXPECT_EQ(c.nextFree(), 3200u);
}

TEST(Channel, BackToBackQueues)
{
    Kernel k;
    Channel c(k, "c", 100, 0);
    const auto t1 = c.reserve(2, 0);
    const auto t2 = c.reserve(3, 0);
    EXPECT_EQ(t1.serDone, 200u);
    EXPECT_EQ(t2.start, 200u);  // waits for the channel
    EXPECT_EQ(t2.serDone, 500u);
}

TEST(Channel, EarliestRespected)
{
    Kernel k;
    Channel c(k, "c", 100, 0);
    const auto t = c.reserve(1, 5000);
    EXPECT_EQ(t.start, 5000u);
}

TEST(Channel, NowIsFloor)
{
    Kernel k;
    k.scheduleIn(700, [] {});
    k.run();
    Channel c(k, "c", 100, 0);
    const auto t = c.reserve(1, 0);
    EXPECT_EQ(t.start, 700u);  // cannot start in the past
}

TEST(Channel, GapLeavesIdleTime)
{
    Kernel k;
    Channel c(k, "c", 100, 0);
    c.reserve(1, 0);
    const auto t = c.reserve(1, 1000);
    EXPECT_EQ(t.start, 1000u);
    // Busy only 200 of 1100.
    EXPECT_EQ(c.busyTime(), 200u);
}

TEST(Channel, FlitAccounting)
{
    Kernel k;
    Channel c(k, "c", 100, 0);
    c.reserve(3, 0);
    c.reserve(5, 0);
    EXPECT_EQ(c.flitsCarried(), 8u);
}

TEST(Channel, ZeroFlitsPanics)
{
    Kernel k;
    Channel c(k, "c", 100, 0);
    EXPECT_THROW(c.reserve(0, 0), PanicError);
}

TEST(Channel, ZeroPeriodPanics)
{
    Kernel k;
    EXPECT_THROW(Channel(k, "bad", 0, 0), PanicError);
}

}  // namespace
}  // namespace hmcsim
