/**
 * @file
 * Direct Router unit tests: manual two-router wiring with explicit
 * credit plumbing, exercising the paths the Network facade hides.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/log.h"
#include "noc/router.h"

namespace hmcsim {
namespace {

class RootComponent : public Component
{
  public:
    explicit RootComponent(Kernel &k) : Component(k, nullptr, "root") {}
};

constexpr NodeId kEndpoint = 5;

class RouterTest : public ::testing::Test
{
  protected:
    void
    build(std::uint32_t eject_queue_flits = 64)
    {
        params_.ejectQueueFlits = eject_queue_flits;
        root_ = std::make_unique<RootComponent>(kernel_);
        r0_ = std::make_unique<Router>(kernel_, root_.get(), "r0", 0,
                                       params_);
        r1_ = std::make_unique<Router>(kernel_, root_.get(), "r1", 1,
                                       params_);

        // r0 -> r1 channel with credit return wired back to r0.
        in1_ = r1_->addInput([this](std::uint32_t flits) {
            r0_->returnCredits(out0_, flits);
        });
        out0_ = r0_->addOutputToRouter(r1_.get(), in1_);

        // External injection input on r0 (no upstream credits).
        in0_ = r0_->addInput(nullptr);

        // Ejection on r1 toward the endpoint harness.
        Router::Eject ej;
        ej.tryReserve = [this](std::uint32_t flits) {
            if (reserved_ + flits > endpointSpace_)
                return false;
            reserved_ += flits;
            return true;
        };
        ej.deliver = [this](const NocMessage &m) {
            reserved_ -= m.flits;
            delivered_.push_back(m);
        };
        const int eject_out = r1_->addOutputToEndpoint(kEndpoint, ej);

        // Routes: 6 endpoint slots, endpoint 5 is the interesting one.
        r0_->setRoutes(std::vector<int>(kEndpoint + 1, out0_));
        r1_->setRoutes(std::vector<int>(kEndpoint + 1, eject_out));
    }

    NocMessage
    msg(std::uint32_t flits, PacketId id = 1)
    {
        NocMessage m;
        m.id = id;
        m.src = 0;
        m.dst = kEndpoint;
        m.flits = flits;
        return m;
    }

    Kernel kernel_;
    RouterParams params_;
    std::unique_ptr<RootComponent> root_;
    std::unique_ptr<Router> r0_;
    std::unique_ptr<Router> r1_;
    int in0_ = -1;
    int in1_ = -1;
    int out0_ = -1;
    std::uint32_t endpointSpace_ = 1u << 30;
    std::uint32_t reserved_ = 0;
    std::vector<NocMessage> delivered_;
};

TEST_F(RouterTest, ForwardsAcrossHop)
{
    build();
    r0_->acceptMessage(in0_, msg(4));
    kernel_.run();
    ASSERT_EQ(delivered_.size(), 1u);
    EXPECT_EQ(delivered_[0].flits, 4u);
    EXPECT_EQ(r0_->messagesRouted(), 1u);
    EXPECT_EQ(r1_->messagesRouted(), 1u);
    EXPECT_EQ(r0_->flitsRouted(), 4u);
}

TEST_F(RouterTest, LatencyCoversPipelineAndSerialization)
{
    build();
    r0_->acceptMessage(in0_, msg(1));
    kernel_.run();
    // Two router latencies, two channel traversals (serialization +
    // wire) -- inject channel is external here so only r0->r1 and the
    // eject channel count.
    const Tick expected = 2 * params_.routerLatency +
        2 * (params_.flitPeriod + params_.wireLatency);
    EXPECT_EQ(kernel_.now(), expected);
}

TEST_F(RouterTest, FifoOrderAcrossHop)
{
    build();
    for (PacketId i = 0; i < 20; ++i)
        r0_->acceptMessage(in0_, msg(1 + i % 3, i));
    kernel_.run();
    ASSERT_EQ(delivered_.size(), 20u);
    for (PacketId i = 0; i < 20; ++i)
        EXPECT_EQ(delivered_[i].id, i);
}

TEST_F(RouterTest, BlockedEndpointStallsThenDrains)
{
    build();
    endpointSpace_ = 0;
    for (PacketId i = 0; i < 5; ++i)
        r0_->acceptMessage(in0_, msg(8, i));
    kernel_.run();
    EXPECT_TRUE(delivered_.empty());
    endpointSpace_ = 1u << 30;
    r1_->kickEject(kEndpoint);
    kernel_.run();
    EXPECT_EQ(delivered_.size(), 5u);
}

TEST_F(RouterTest, CreditsBoundInFlightFlits)
{
    // Endpoint blocked: traffic accumulates in r1's input (bounded by
    // credits = inputBufferFlits), r1's eject queue, and r0's output
    // queue; everything else must stay in r0's input queue unsent.
    build(/*eject_queue_flits=*/16);
    endpointSpace_ = 0;
    for (PacketId i = 0; i < 50; ++i)
        r0_->acceptMessage(in0_, msg(8, i));
    kernel_.run();
    EXPECT_TRUE(delivered_.empty());
    // r1 received at most its input buffer + eject queue worth.
    const std::uint64_t max_into_r1 =
        (params_.inputBufferFlits + 16) / 8 + 1;
    EXPECT_LE(r1_->messagesRouted(), max_into_r1);
    endpointSpace_ = 1u << 30;
    r1_->kickEject(kEndpoint);
    kernel_.run();
    EXPECT_EQ(delivered_.size(), 50u);
}

TEST_F(RouterTest, MixedSizesConserveFlits)
{
    build();
    std::uint64_t flits = 0;
    for (PacketId i = 0; i < 30; ++i) {
        const std::uint32_t f = 1 + (i * 7) % 16;
        flits += f;
        r0_->acceptMessage(in0_, msg(f, i));
    }
    kernel_.run();
    EXPECT_EQ(delivered_.size(), 30u);
    std::uint64_t got = 0;
    for (const NocMessage &m : delivered_)
        got += m.flits;
    EXPECT_EQ(got, flits);
}

TEST_F(RouterTest, StatsResetClearsCounters)
{
    build();
    r0_->acceptMessage(in0_, msg(2));
    kernel_.run();
    EXPECT_GT(r0_->messagesRouted(), 0u);
    r0_->resetStats();
    EXPECT_EQ(r0_->messagesRouted(), 0u);
    EXPECT_EQ(r0_->flitsRouted(), 0u);
}

TEST_F(RouterTest, InvalidWiringPanics)
{
    build();
    EXPECT_THROW(r0_->acceptMessage(99, msg(1)), PanicError);
    EXPECT_THROW(r0_->returnCredits(99, 1), PanicError);
    EXPECT_THROW(r0_->addOutputToRouter(nullptr, 0), PanicError);
    Router::Eject bad;  // missing callbacks
    EXPECT_THROW(r0_->addOutputToEndpoint(7, bad), PanicError);
    EXPECT_THROW(r0_->setRoutes({-1}), PanicError);
    EXPECT_THROW(r0_->setRoutes({12345}), PanicError);
}

TEST_F(RouterTest, UnroutedDestinationPanics)
{
    build();
    NocMessage m = msg(1);
    m.dst = 77;  // beyond the route table
    r0_->acceptMessage(in0_, m);
    EXPECT_THROW(kernel_.run(), PanicError);
}

}  // namespace
}  // namespace hmcsim
