/**
 * @file
 * Property sweep of the latency-anatomy decomposition: across
 * topologies, routing policies, host counts and workload types, every
 * completed transaction's phase components must sum exactly to its
 * end-to-end latency (zero residual) and the stamp chain must be
 * monotone -- the telescoping invariant the bottleneck attribution
 * stands on.  The collector must also have seen every completion the
 * ports report, with a sane per-key breakdown.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "common/units.h"
#include "host/experiment.h"
#include "host/system.h"
#include "obs/anatomy.h"
#include "obs/observability.h"

namespace hmcsim {
namespace {

using SweepParam =
    std::tuple<const char *, const char *, std::uint32_t, const char *>;

class AnatomySweep : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(AnatomySweep, PhasesTelescopeToEndToEndLatency)
{
    const auto &[topo, routing, hosts, workload] = GetParam();

    SystemConfig cfg;
    cfg.hmc.chain.numCubes = 4;
    cfg.hmc.chain.topology = topo;
    cfg.hmc.chain.routing = routing;
    if (std::string(topo) == "star" &&
        cfg.hmc.numLinks < cfg.hmc.chain.numCubes)
        cfg.hmc.numLinks = cfg.hmc.chain.numCubes;
    cfg.host.numHosts = hosts;
    cfg.obs.anatomy = true;

    System sys(cfg);
    constexpr PortId kActivePorts = 3;
    for (HostId h = 0; h < sys.numHosts(); ++h) {
        for (PortId p = 0; p < kActivePorts; ++p) {
            WorkloadSpec w;
            w.type = workload;
            w.requestBytes = 64;
            if (std::string(workload) == "zipf") {
                w.zipfDomain = "cube";
                w.zipfTheta = 0.8;
                w.writeFraction = 0.5;
                w.inject = "open";
                w.ratePerNs = 0.01;
                w.burstiness = 8.0;
            }
            w.seed = mixSeeds(17, h * 131 + p + 1);
            sys.configureWorkloadAt(h, p, w);
        }
    }
    // Plain run (no measure window): the controller's lifetime
    // counters and the collector then cover the same interval.
    sys.run(6 * kMicrosecond);

    const AnatomyCollector *a = sys.obs()->anatomy();
    ASSERT_NE(a, nullptr);

    // The telescoping invariant: zero residual, monotone stamps, on
    // every single completion.
    EXPECT_GT(a->completions(), 0u);
    EXPECT_EQ(a->residualViolations(), 0u);
    EXPECT_EQ(a->monotonicityViolations(), 0u);
    EXPECT_EQ(a->maxResidualNs(), 0.0);

    // The collector saw exactly the completions the ports delivered.
    std::uint64_t delivered = 0;
    for (HostId h = 0; h < sys.numHosts(); ++h)
        delivered += sys.fpga(h).controller().responsesDelivered();
    EXPECT_EQ(a->completions(), delivered);

    // Phase means are consistent with the end-to-end mean (same
    // telescoping identity, aggregated).
    double phaseMeanSum = 0.0;
    for (std::size_t p = 0; p < kNumAnatomyPhases; ++p)
        phaseMeanSum +=
            a->phaseStats(static_cast<AnatomyPhase>(p)).mean();
    const std::vector<AnatomyWaterfallRow> rows = a->waterfall();
    ASSERT_EQ(rows.size(), kNumAnatomyPhases);
    double e2eMean = 0.0;
    {
        // end_to_end mean over reads+writes = sum of phase means.
        const SampleStats &s0 =
            a->phaseStats(AnatomyPhase::HostQueue);  // count proxy
        ASSERT_GT(s0.count(), 0u);
        // Reconstruct from the verdict path instead: shares sum to 100.
        double share = 0.0;
        for (const AnatomyWaterfallRow &r : rows)
            share += r.shareMeanPct;
        EXPECT_NEAR(share, 100.0, 1e-9);
        e2eMean = phaseMeanSum;
    }
    EXPECT_GT(e2eMean, 0.0);

    // Every breakdown key is in range and carries every phase count.
    for (const auto &[key, ks] : a->breakdown()) {
        EXPECT_LT(key.host, sys.numHosts());
        EXPECT_LT(key.cube, sys.numCubes());
        for (std::size_t p = 1; p < kNumAnatomyPhases; ++p)
            EXPECT_EQ(ks[p].count(), ks[0].count());
    }

    // Chain phases only ever fire on multi-cube traffic, and the
    // verdict is well-formed.
    const BottleneckVerdict v = a->verdict();
    EXPECT_EQ(v.completions, a->completions());
    EXPECT_FALSE(v.summary.empty());
    EXPECT_NEAR(v.queueingSharePct + v.serviceSharePct, 100.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    TopologyRoutingHostsWorkload, AnatomySweep,
    ::testing::Values(
        SweepParam{"daisy", "static", 1, "gups"},
        SweepParam{"daisy", "static", 2, "zipf"},
        SweepParam{"daisy", "adaptive", 2, "gups"},
        SweepParam{"ring", "static", 1, "zipf"},
        SweepParam{"ring", "static", 4, "gups"},
        SweepParam{"ring", "adaptive", 2, "zipf"},
        SweepParam{"ring", "adaptive", 4, "zipf"},
        SweepParam{"star", "static", 1, "gups"}));

TEST(AnatomyProperties, SingleCubeChainPhasesStayZero)
{
    SystemConfig cfg;
    cfg.obs.anatomy = true;
    System sys(cfg);
    WorkloadSpec w;
    w.type = "gups";
    w.requestBytes = 32;
    w.seed = 5;
    sys.configureWorkloadAt(0, 0, w);
    sys.run(2 * kMicrosecond);
    sys.measure(3 * kMicrosecond);

    const AnatomyCollector *a = sys.obs()->anatomy();
    ASSERT_NE(a, nullptr);
    EXPECT_GT(a->completions(), 0u);
    EXPECT_EQ(a->residualViolations(), 0u);
    EXPECT_DOUBLE_EQ(a->phaseStats(AnatomyPhase::ChainFwdReq).mean(),
                     0.0);
    EXPECT_DOUBLE_EQ(a->phaseHist(AnatomyPhase::ChainFwdReq, false)
                         .percentile(99.0),
                     a->phaseHist(AnatomyPhase::ChainFwdReq, false)
                         .percentile(1.0));
}

TEST(AnatomyProperties, ResetClearsEverythingButKeepsRegistration)
{
    SystemConfig cfg;
    cfg.hmc.chain.numCubes = 2;
    cfg.obs.anatomy = true;
    System sys(cfg);
    WorkloadSpec w;
    w.type = "gups";
    w.requestBytes = 32;
    w.seed = 9;
    sys.configureWorkloadAt(0, 0, w);
    sys.run(2 * kMicrosecond);

    AnatomyCollector *a = sys.obs()->anatomy();
    ASSERT_NE(a, nullptr);
    ASSERT_GT(a->completions(), 0u);
    const std::size_t keysBefore = a->breakdown().size();
    a->reset();
    EXPECT_EQ(a->completions(), 0u);
    EXPECT_EQ(a->breakdown().size(), keysBefore);  // cells survive

    // And the engine keeps collecting into the same cells.
    sys.run(2 * kMicrosecond);
    EXPECT_GT(a->completions(), 0u);
    EXPECT_EQ(a->residualViolations(), 0u);
}

}  // namespace
}  // namespace hmcsim
