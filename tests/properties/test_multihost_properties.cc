/**
 * @file
 * Property sweep of the multi-host chain fabric: across topologies,
 * cube counts, entry-cube placements and seeds, every response must
 * return to the host (and port) that issued its request, traffic must
 * be conserved end to end, and no two hosts' in-flight tags may ever
 * cross-deliver -- the tag namespaces are per (host, port), so hosts
 * legitimately hold numerically equal tags concurrently, and the only
 * thing keeping them apart is the packet's host id driving the
 * response route back to the right entry cube.  (A misrouted response
 * additionally trips the controller's host-mismatch panic.)
 */

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <tuple>
#include <vector>

#include "common/log.h"
#include "host/experiment.h"
#include "host/system.h"

namespace hmcsim {
namespace {

struct Placement {
    const char *name;
    /** Explicit entry cubes; empty = the even auto spread. */
    std::vector<CubeId> entries;
};

SystemConfig
multiHostConfig(const std::string &topology, std::uint32_t cubes,
                std::uint32_t hosts, const std::vector<CubeId> &entries)
{
    SystemConfig cfg;
    cfg.hmc.chain.numCubes = cubes;
    cfg.hmc.chain.topology = topology;
    cfg.host.numHosts = hosts;
    cfg.host.entryCubes = entries;
    return cfg;
}

/**
 * Drive every host with full-capacity GUPS traffic, quiesce, and
 * check per-host and per-port conservation.
 */
void
runMultiHostConservation(const SystemConfig &cfg, std::uint64_t seed)
{
    constexpr PortId kActivePorts = 2;
    System sys(cfg);
    for (HostId h = 0; h < sys.numHosts(); ++h) {
        for (PortId p = 0; p < kActivePorts; ++p) {
            WorkloadSpec w;
            w.type = "gups";
            w.requestBytes = 32;
            // Decorrelated but deterministic per (seed, host, port).
            w.seed = mixSeeds(seed, h * 131 + p + 1);
            sys.configureWorkloadAt(h, p, w);
        }
    }
    sys.run(4 * kMicrosecond);
    for (HostId h = 0; h < sys.numHosts(); ++h) {
        for (PortId p = 0; p < kActivePorts; ++p)
            sys.portAt(h, p).setActive(false);
    }
    sys.run(60 * kMicrosecond);  // drain every in-flight request

    std::uint64_t total_issued = 0;
    for (HostId h = 0; h < sys.numHosts(); ++h) {
        std::uint64_t issued = 0;
        for (PortId p = 0; p < kActivePorts; ++p) {
            const Port &port = sys.portAt(h, p);
            // Every request this port issued came back to THIS port
            // of THIS host -- a response delivered to any other
            // (host, port) would leave these unequal (and panic in
            // the receiving controller first).
            EXPECT_GT(port.issuedRequests(), 0u)
                << "host " << h << " port " << p;
            EXPECT_EQ(port.monitor().accesses(), port.issuedRequests())
                << "host " << h << " port " << p;
            issued += port.issuedRequests();
        }
        const HmcHostController &ctrl = sys.fpga(h).controller();
        EXPECT_EQ(ctrl.requestsSent(), issued) << "host " << h;
        EXPECT_EQ(ctrl.responsesDelivered(), issued) << "host " << h;
        for (CubeId c = 0; c < sys.numCubes(); ++c) {
            EXPECT_EQ(ctrl.outstandingToCube(c), 0u)
                << "host " << h << " cube " << c;
        }
        // Tags are a per-port namespace: after the drain every pool
        // is empty again; a cross-host delivery would have released a
        // foreign pool's tag (panic) or leaked one here.
        for (PortId p = 0; p < kActivePorts; ++p) {
            const auto &wp =
                dynamic_cast<const WorkloadPort &>(sys.portAt(h, p));
            EXPECT_EQ(wp.tags().inUse(), 0u)
                << "host " << h << " port " << p;
            EXPECT_GT(wp.tags().peakInUse(), 0u)
                << "host " << h << " port " << p;
        }
        total_issued += issued;
    }
    std::uint64_t served = 0;
    for (CubeId c = 0; c < sys.numCubes(); ++c)
        served += sys.device(c).totalRequestsServed();
    EXPECT_EQ(served, total_issued);
}

using SweepParam =
    std::tuple<const char *, std::uint32_t, std::uint32_t, int,
               std::uint64_t>;

class MultiHostSweep : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(MultiHostSweep, ResponsesReturnToIssuingHost)
{
    const auto &[topo, cubes, hosts, placement, seed] = GetParam();
    std::vector<CubeId> entries;
    if (placement == 1) {
        // Clustered: hosts packed onto adjacent entry cubes instead
        // of the even spread (stresses asymmetric return paths).
        for (HostId h = 0; h < hosts; ++h)
            entries.push_back(cubes - 1 - h);
    }
    runMultiHostConservation(
        multiHostConfig(topo, cubes, hosts, entries), seed);
}

INSTANTIATE_TEST_SUITE_P(
    TopologyCubesEntriesSeeds, MultiHostSweep,
    ::testing::Values(
        SweepParam{"daisy", 2, 2, 0, 1}, SweepParam{"daisy", 4, 2, 0, 1},
        SweepParam{"daisy", 4, 2, 1, 2}, SweepParam{"daisy", 8, 4, 0, 1},
        SweepParam{"ring", 2, 2, 0, 1}, SweepParam{"ring", 4, 2, 0, 1},
        SweepParam{"ring", 4, 2, 1, 2}, SweepParam{"ring", 4, 4, 0, 1},
        SweepParam{"ring", 8, 2, 0, 2}, SweepParam{"ring", 8, 4, 1, 1}));

TEST(MultiHostProperties, AdaptiveRoutingConservesAcrossHosts)
{
    SystemConfig cfg = multiHostConfig("ring", 4, 2, {});
    cfg.hmc.chain.routing = "adaptive";
    cfg.hmc.linkTokens = 32;  // keep backpressure (the adaptive signal)
    runMultiHostConservation(cfg, 7);
}

TEST(MultiHostProperties, TinyTokenPoolsStillConserve)
{
    SystemConfig cfg = multiHostConfig("ring", 4, 2, {});
    cfg.hmc.linkTokens = 16;  // one max packet per direction
    cfg.hmc.chain.forwardQueuePackets = 1;
    runMultiHostConservation(cfg, 3);
}

TEST(MultiHostProperties, SingleHostAtNonZeroEntryConserves)
{
    // One host, but attached mid-chain through dedicated host links:
    // exercises the Host port class and the towardEntry tables with
    // the legacy (static-eject) wiring path.
    for (const char *topo : {"daisy", "ring"}) {
        SystemConfig cfg = multiHostConfig(topo, 4, 1, {2});
        runMultiHostConservation(cfg, 11);
    }
}

TEST(MultiHostProperties, EntryCubesMustBeDistinct)
{
    EXPECT_THROW(System(multiHostConfig("ring", 4, 2, {1, 1})),
                 FatalError);
}

TEST(MultiHostProperties, MoreHostsThanCubesRejected)
{
    EXPECT_THROW(System(multiHostConfig("ring", 2, 4, {})), FatalError);
}

TEST(MultiHostProperties, StarRejectsMultipleHosts)
{
    SystemConfig cfg = multiHostConfig("star", 4, 2, {});
    cfg.hmc.numLinks = 4;
    EXPECT_THROW(System sys(cfg), FatalError);
}

TEST(MultiHostProperties, EntryPinForMissingHostRejected)
{
    // host.host2.entry_cube with num_hosts=2 (a 1-indexed-host
    // mistake) must fail loudly, not silently fall back to the
    // even spread.
    Config cfg;
    SystemConfig base = multiHostConfig("ring", 4, 2, {});
    base.toConfig(cfg);
    cfg.parseString("[host]\nhost2.entry_cube = 3\n");
    EXPECT_THROW(SystemConfig::fromConfig(cfg), FatalError);
}

TEST(MultiHostProperties, StarRejectsPinnedEntryCube)
{
    // Star links rotate over all cubes; a pinned entry cube would be
    // silently meaningless, so it must be rejected even single-host.
    SystemConfig cfg = multiHostConfig("star", 4, 1, {2});
    cfg.hmc.numLinks = 4;
    EXPECT_THROW(System sys(cfg), FatalError);
}

TEST(MultiHostProperties, AutoSpreadPlacesHostsEvenly)
{
    const SystemConfig cfg = multiHostConfig("ring", 8, 4, {});
    System sys(cfg);
    EXPECT_EQ(sys.numHosts(), 4u);
    EXPECT_EQ(sys.hostEntryCube(0), 0u);
    EXPECT_EQ(sys.hostEntryCube(1), 2u);
    EXPECT_EQ(sys.hostEntryCube(2), 4u);
    EXPECT_EQ(sys.hostEntryCube(3), 6u);
}

TEST(MultiHostProperties, RouteTableReturnsToEveryEntry)
{
    // Pure table property: from every cube, walking towardEntry must
    // reach the entry cube within numCubes steps and end on the
    // host's attachment port.
    for (const char *topo : {"daisy", "ring"}) {
        for (std::uint32_t n : {2u, 4u, 8u}) {
            for (std::uint32_t hosts = 1; hosts <= n && hosts <= 4;
                 ++hosts) {
                std::vector<CubeId> entries;
                for (HostId h = 0; h < hosts; ++h)
                    entries.push_back((h * n) / hosts);
                const ChainRouteTable rt(chainTopologyFromString(topo), n,
                                         entries);
                for (HostId h = 0; h < hosts; ++h) {
                    const CubeId entry = rt.hostEntry(h);
                    for (CubeId at = 0; at < n; ++at) {
                        CubeId cur = at;
                        std::uint32_t steps = 0;
                        while (cur != entry && steps <= n) {
                            const ChainHop hop = rt.towardEntry(cur, entry);
                            ASSERT_NE(hop, ChainHop::Local);
                            ASSERT_NE(hop, ChainHop::Host);
                            cur = rt.neighbor(cur, hop);
                            ++steps;
                        }
                        ASSERT_LE(steps, n)
                            << topo << " n=" << n << " entry=" << entry;
                        EXPECT_EQ(rt.towardEntry(entry, entry),
                                  rt.attachHop(entry));
                        // The walk length matches the precomputed
                        // response hop count.
                        EXPECT_EQ(steps, rt.responseHops(at, h));
                    }
                }
            }
        }
    }
}

}  // namespace
}  // namespace hmcsim
