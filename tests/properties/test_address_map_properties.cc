/**
 * @file
 * Address-map property sweeps: decode/encode must be exact inverses
 * for every combination of map scheme, cube interleave, and
 * cube/vault/bank field width, and patterns must confine exactly.
 */

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "common/log.h"
#include "common/rng.h"
#include "hmc/address_map.h"

namespace hmcsim {
namespace {

// (map scheme, chain interleave, num cubes, num vaults, banks/vault)
using MapShape =
    std::tuple<const char *, const char *, std::uint32_t, std::uint32_t,
               std::uint32_t>;

HmcConfig
shapeConfig(const MapShape &shape)
{
    const auto &[scheme, interleave, cubes, vaults, banks] = shape;
    HmcConfig cfg;
    cfg.mapScheme = scheme;
    cfg.chain.interleave = interleave;
    cfg.chain.numCubes = cubes;
    cfg.numVaults = vaults;
    cfg.numQuadrants = 4;
    cfg.numBanksPerVault = banks;
    return cfg;
}

class AddressMapRoundTrip : public ::testing::TestWithParam<MapShape>
{
};

TEST_P(AddressMapRoundTrip, EncodeDecodeAreInverses)
{
    const HmcConfig cfg = shapeConfig(GetParam());
    const AddressMap map(cfg);
    Rng rng(0xA11CE);
    const Addr total = map.totalCapacity();
    EXPECT_EQ(total, cfg.totalCapacityBytes());
    for (int i = 0; i < 4000; ++i) {
        const Addr a = rng.next() & (total - 1);
        const DecodedAddr d = map.decode(a);
        EXPECT_EQ(map.encode(d), a) << "addr 0x" << std::hex << a;
        EXPECT_EQ(d.cube, map.decodeCube(a));
        EXPECT_LT(d.cube, cfg.chain.numCubes);
        EXPECT_LT(d.vault, cfg.numVaults);
        EXPECT_LT(d.bank, cfg.numBanksPerVault);
    }
}

TEST_P(AddressMapRoundTrip, DecodeEncodeFromFields)
{
    const HmcConfig cfg = shapeConfig(GetParam());
    const AddressMap map(cfg);
    Rng rng(0xB0B);
    for (int i = 0; i < 2000; ++i) {
        DecodedAddr d;
        d.cube = static_cast<CubeId>(rng.next() % cfg.chain.numCubes);
        d.vault = static_cast<VaultId>(rng.next() % cfg.numVaults);
        d.bank = static_cast<BankId>(rng.next() % cfg.numBanksPerVault);
        d.row = static_cast<RowId>(rng.next() % 64);
        const DecodedAddr out = map.decode(map.encode(d));
        EXPECT_EQ(out.cube, d.cube);
        EXPECT_EQ(out.vault, d.vault);
        EXPECT_EQ(out.bank, d.bank);
        EXPECT_EQ(out.row, d.row);
    }
}

TEST_P(AddressMapRoundTrip, CubePatternConfinesAndCovers)
{
    const HmcConfig cfg = shapeConfig(GetParam());
    const AddressMap map(cfg);
    Rng rng(0xCAFE);
    for (CubeId c = 0; c < cfg.chain.numCubes; ++c) {
        const AddressPattern p = map.cubePattern(c);
        std::set<VaultId> vaults;
        for (int i = 0; i < 600; ++i) {
            const Addr a =
                p.apply(rng.next() & (map.totalCapacity() - 1));
            const DecodedAddr d = map.decode(a);
            EXPECT_EQ(d.cube, c);
            vaults.insert(d.vault);
        }
        EXPECT_EQ(vaults.size(), cfg.numVaults);
    }
}

TEST_P(AddressMapRoundTrip, GeneralPatternSpansAllCubes)
{
    const HmcConfig cfg = shapeConfig(GetParam());
    const AddressMap map(cfg);
    Rng rng(0xD00D);
    const AddressPattern p =
        map.pattern(cfg.numVaults, cfg.numBanksPerVault);
    std::set<CubeId> cubes;
    for (int i = 0; i < 2000; ++i) {
        cubes.insert(
            map.decodeCube(p.apply(rng.next() & (map.totalCapacity() - 1))));
    }
    EXPECT_EQ(cubes.size(), cfg.chain.numCubes);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AddressMapRoundTrip,
    ::testing::Values(
        MapShape{"vault_then_bank", "cube_high", 1, 16, 16},
        MapShape{"vault_then_bank", "cube_high", 4, 16, 16},
        MapShape{"vault_then_bank", "cube_high", 8, 16, 16},
        MapShape{"vault_then_bank", "cube_low", 2, 16, 16},
        MapShape{"vault_then_bank", "cube_low", 8, 16, 16},
        MapShape{"bank_then_vault", "cube_high", 4, 16, 16},
        MapShape{"bank_then_vault", "cube_low", 4, 16, 16},
        MapShape{"vault_then_bank", "cube_low", 4, 8, 8},
        MapShape{"bank_then_vault", "cube_high", 2, 8, 16},
        MapShape{"bank_then_vault", "cube_low", 8, 16, 8}));

TEST(AddressMapChain, CubeLowStripesBlocksAcrossCubes)
{
    HmcConfig cfg;
    cfg.chain.numCubes = 4;
    cfg.chain.interleave = "cube_low";
    const AddressMap map(cfg);
    // Consecutive 128 B blocks must visit all four cubes round-robin
    // before the vault field advances.
    std::set<CubeId> cubes;
    for (Addr block = 0; block < 4; ++block) {
        const DecodedAddr d = map.decode(block * 128);
        cubes.insert(d.cube);
        EXPECT_EQ(d.vault, 0u);
    }
    EXPECT_EQ(cubes.size(), 4u);
}

TEST(AddressMapChain, CubeHighKeepsCubesContiguous)
{
    HmcConfig cfg;
    cfg.chain.numCubes = 4;
    const AddressMap map(cfg);  // cube_high default
    EXPECT_EQ(map.decode(0).cube, 0u);
    EXPECT_EQ(map.decode(cfg.capacityBytes - 1).cube, 0u);
    EXPECT_EQ(map.decode(cfg.capacityBytes).cube, 1u);
    EXPECT_EQ(map.decode(3 * cfg.capacityBytes + 12345).cube, 3u);
    EXPECT_THROW(map.decode(4 * cfg.capacityBytes), PanicError);
}

TEST(AddressMapChain, SingleCubeLayoutUnchanged)
{
    // With one cube both interleaves are the exact legacy layout.
    HmcConfig base;
    const AddressMap legacy(base);
    HmcConfig low = base;
    low.chain.interleave = "cube_low";
    const AddressMap lowMap(low);
    Rng rng(99);
    for (int i = 0; i < 2000; ++i) {
        const Addr a = rng.next() & (base.capacityBytes - 1);
        const DecodedAddr d1 = legacy.decode(a);
        const DecodedAddr d2 = lowMap.decode(a);
        EXPECT_EQ(d1.vault, d2.vault);
        EXPECT_EQ(d1.bank, d2.bank);
        EXPECT_EQ(d1.row, d2.row);
        EXPECT_EQ(d1.col, d2.col);
        EXPECT_EQ(d2.cube, 0u);
    }
}

}  // namespace
}  // namespace hmcsim
