/**
 * @file
 * Property-style parameterized sweeps over the NoC and the address
 * map: conservation (everything injected is delivered), ordering, and
 * mapping invariants across topologies, sizes, and geometries.
 */

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/rng.h"
#include "hmc/address_map.h"
#include "noc/network.h"
#include "sim/component.h"

namespace hmcsim {
namespace {

class RootComponent : public Component
{
  public:
    explicit RootComponent(Kernel &k) : Component(k, nullptr, "root") {}
};

// ----- NoC conservation across topologies and message sizes -----

using NocParam = std::tuple<std::string, std::uint32_t>;

class NocConservation : public ::testing::TestWithParam<NocParam>
{
};

TEST_P(NocConservation, AllInjectedMessagesDeliveredExactlyOnce)
{
    const auto &[topo, flits] = GetParam();
    Kernel kernel;
    RootComponent root(kernel);
    RouterParams params;
    Network net(kernel, &root, "noc", makeTopology(topo, 16, 4, 2),
                params);

    std::vector<int> delivered(net.numEndpoints(), 0);
    std::vector<std::uint64_t> flit_sum(net.numEndpoints(), 0);
    for (NodeId e = 0; e < net.numEndpoints(); ++e) {
        Network::EndpointOps ops;
        ops.tryReserve = [](std::uint32_t) { return true; };
        ops.deliver = [&delivered, &flit_sum, e](const NocMessage &m) {
            ++delivered[e];
            flit_sum[e] += m.flits;
        };
        net.setEndpoint(e, ops);
    }

    const int kMessages = 300;
    Rng rng(1234);
    int injected = 0;
    while (injected < kMessages) {
        const NodeId src = injected % 2;  // links inject requests
        const NodeId dst = 2 + rng.nextBelow(16);
        if (net.canInject(src, flits)) {
            NocMessage m;
            m.id = injected;
            m.src = src;
            m.dst = dst;
            m.flits = flits;
            net.inject(src, m);
            ++injected;
        } else {
            kernel.run();
        }
    }
    kernel.run();

    int total = 0;
    std::uint64_t total_flits = 0;
    for (NodeId e = 0; e < net.numEndpoints(); ++e) {
        total += delivered[e];
        total_flits += flit_sum[e];
    }
    EXPECT_EQ(total, kMessages);
    EXPECT_EQ(total_flits,
              static_cast<std::uint64_t>(kMessages) * flits);
    EXPECT_EQ(net.messagesDelivered(), static_cast<std::uint64_t>(total));
    EXPECT_EQ(delivered[0] + delivered[1], 0);  // links got nothing
}

INSTANTIATE_TEST_SUITE_P(
    TopologiesAndSizes, NocConservation,
    ::testing::Combine(::testing::Values("quadrant_xbar", "quadrant_ring",
                                         "single_switch"),
                       ::testing::Values(1u, 2u, 5u, 9u, 16u)));

// ----- pairwise ordering: same (src, dst) stays FIFO -----

class NocOrdering : public ::testing::TestWithParam<std::string>
{
};

TEST_P(NocOrdering, SameFlowStaysInOrder)
{
    Kernel kernel;
    RootComponent root(kernel);
    RouterParams params;
    Network net(kernel, &root, "noc",
                makeTopology(GetParam(), 16, 4, 2), params);

    std::vector<PacketId> arrivals;
    for (NodeId e = 0; e < net.numEndpoints(); ++e) {
        Network::EndpointOps ops;
        ops.tryReserve = [](std::uint32_t) { return true; };
        ops.deliver = [&arrivals, e](const NocMessage &m) {
            if (e == 10)
                arrivals.push_back(m.id);
        };
        net.setEndpoint(e, ops);
    }
    int injected = 0;
    while (injected < 100) {
        if (!net.canInject(0, 3)) {
            kernel.run();
            continue;
        }
        NocMessage m;
        m.id = injected;
        m.src = 0;
        m.dst = 10;
        m.flits = 3;
        net.inject(0, m);
        ++injected;
    }
    kernel.run();
    ASSERT_EQ(arrivals.size(), 100u);
    for (std::size_t i = 0; i < arrivals.size(); ++i)
        EXPECT_EQ(arrivals[i], i);
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, NocOrdering,
                         ::testing::Values("quadrant_xbar",
                                           "quadrant_ring",
                                           "single_switch"));

// ----- address map invariants across geometries -----

using MapParam = std::tuple<std::uint32_t, std::uint32_t, std::uint32_t,
                            std::string>;

class AddressMapProperty : public ::testing::TestWithParam<MapParam>
{
};

TEST_P(AddressMapProperty, RoundTripAndFieldBounds)
{
    const auto &[vaults, banks, block, scheme] = GetParam();
    HmcConfig cfg;
    cfg.numVaults = vaults;
    cfg.numQuadrants = vaults >= 4 ? 4 : vaults;
    cfg.numBanksPerVault = banks;
    cfg.blockBytes = block;
    cfg.rowBytes = std::max(cfg.rowBytes, block);
    cfg.mapScheme = scheme;
    cfg.validate();
    const AddressMap map(cfg);

    Rng rng(99);
    for (int i = 0; i < 500; ++i) {
        const Addr a = rng.next() & (cfg.capacityBytes - 1);
        const DecodedAddr d = map.decode(a);
        EXPECT_LT(d.vault, vaults);
        EXPECT_LT(d.bank, banks);
        EXPECT_LT(d.blockOffset, block);
        EXPECT_EQ(map.encode(d), a);
    }
}

TEST_P(AddressMapProperty, PatternsHitExactlyTheRequestedSets)
{
    const auto &[vaults, banks, block, scheme] = GetParam();
    HmcConfig cfg;
    cfg.numVaults = vaults;
    cfg.numQuadrants = vaults >= 4 ? 4 : vaults;
    cfg.numBanksPerVault = banks;
    cfg.blockBytes = block;
    cfg.rowBytes = std::max(cfg.rowBytes, block);
    cfg.mapScheme = scheme;
    const AddressMap map(cfg);

    Rng rng(7);
    for (std::uint32_t nv = 1; nv <= vaults; nv *= 2) {
        for (std::uint32_t nb = 1; nb <= banks; nb *= 4) {
            const AddressPattern p = map.pattern(nv, nb);
            std::set<VaultId> vs;
            std::set<BankId> bs;
            for (int i = 0; i < 800; ++i) {
                const DecodedAddr d = map.decode(
                    p.apply(rng.next() & (cfg.capacityBytes - 1)));
                vs.insert(d.vault);
                bs.insert(d.bank);
                EXPECT_LT(d.vault, nv);
                EXPECT_LT(d.bank, nb);
            }
            EXPECT_EQ(vs.size(), nv);
            EXPECT_EQ(bs.size(), nb);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, AddressMapProperty,
    ::testing::Values(
        MapParam{16, 16, 128, "vault_then_bank"},
        MapParam{16, 16, 128, "bank_then_vault"},
        MapParam{16, 16, 32, "vault_then_bank"},
        MapParam{8, 16, 128, "vault_then_bank"},
        MapParam{16, 8, 64, "bank_then_vault"},
        MapParam{4, 4, 16, "vault_then_bank"}));

}  // namespace
}  // namespace hmcsim
