/**
 * @file
 * Whole-system property sweeps: conservation and monotonicity
 * invariants that must hold for every request size and access pattern.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "host/experiment.h"
#include "host/system.h"

namespace hmcsim {
namespace {

// ----- conservation across sizes and patterns -----

using SizePattern = std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>;

class SystemConservation : public ::testing::TestWithParam<SizePattern>
{
};

TEST_P(SystemConservation, NoRequestLostOrDuplicated)
{
    const auto &[bytes, vaults, banks] = GetParam();
    SystemConfig cfg;
    System sys(cfg);
    for (PortId p = 0; p < 3; ++p) {
        GupsPortSpec gp;
        gp.gen.pattern = sys.addressMap().pattern(vaults, banks);
        gp.gen.requestBytes = bytes;
        gp.gen.capacity = cfg.hmc.capacityBytes;
        gp.gen.seed = 55 + p;
        sys.configureGupsPort(p, gp);
    }
    sys.run(8 * kMicrosecond);
    for (PortId p = 0; p < 3; ++p)
        sys.port(p).setActive(false);
    sys.run(40 * kMicrosecond);  // drain everything

    std::uint64_t issued = 0, completed = 0;
    for (PortId p = 0; p < 3; ++p) {
        issued += sys.port(p).issuedRequests();
        completed += sys.port(p).monitor().accesses();
    }
    EXPECT_GT(issued, 0u);
    EXPECT_EQ(issued, completed);
    EXPECT_EQ(sys.fpga().controller().requestsSent(), issued);
    EXPECT_EQ(sys.fpga().controller().responsesDelivered(), issued);
    EXPECT_EQ(sys.device().totalRequestsServed(), issued);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndPatterns, SystemConservation,
    ::testing::Values(SizePattern{16, 16, 16}, SizePattern{32, 16, 16},
                      SizePattern{64, 16, 16}, SizePattern{128, 16, 16},
                      SizePattern{32, 1, 1}, SizePattern{128, 1, 8},
                      SizePattern{64, 4, 2}, SizePattern{16, 2, 16}));

// ----- latency floor monotonicity in request size (low load) -----

class LowLoadSize : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(LowLoadSize, FloorIsSizeInsensitiveAtOneRequest)
{
    // Paper Fig. 7: with a single request in flight, the size of the
    // request barely affects latency.
    StreamBatchSpec spec;
    spec.batchSize = 1;
    spec.requestBytes = GetParam();
    spec.warmup = 5 * kMicrosecond;
    spec.window = 10 * kMicrosecond;
    const ExperimentResult r = runStreamBatch(SystemConfig{}, spec);
    EXPECT_NEAR(r.avgReadLatencyNs, 720.0, 130.0);
}

TEST_P(LowLoadSize, LatencyIncreasesWithBatchSize)
{
    StreamBatchSpec spec;
    spec.requestBytes = GetParam();
    spec.warmup = 5 * kMicrosecond;
    spec.window = 10 * kMicrosecond;
    spec.batchSize = 2;
    const double small = runStreamBatch(SystemConfig{}, spec)
        .avgReadLatencyNs;
    spec.batchSize = 48;
    const double large = runStreamBatch(SystemConfig{}, spec)
        .avgReadLatencyNs;
    EXPECT_GT(large, small);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LowLoadSize,
                         ::testing::Values(16u, 32u, 64u, 128u));

// ----- bandwidth monotonicity in active ports -----

class PortScaling : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(PortScaling, BandwidthNeverDecreasesWithMorePorts)
{
    const std::uint32_t bytes = GetParam();
    double prev = 0.0;
    for (std::uint32_t ports : {1u, 3u, 6u, 9u}) {
        GupsSpec spec;
        spec.activePorts = ports;
        spec.requestBytes = bytes;
        spec.warmup = 5 * kMicrosecond;
        spec.window = 10 * kMicrosecond;
        const double bw = runGups(SystemConfig{}, spec).bandwidthGBs;
        EXPECT_GE(bw, prev * 0.98) << ports << " ports";
        prev = bw;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PortScaling,
                         ::testing::Values(16u, 64u, 128u));

// ----- link/NoC/vault byte accounting agrees -----

TEST(SystemAccounting, LinkFlitsMatchPacketSizes)
{
    SystemConfig cfg;
    System sys(cfg);
    GupsPortSpec gp;
    gp.gen.pattern = sys.addressMap().pattern(16, 16);
    gp.gen.requestBytes = 64;
    gp.gen.capacity = cfg.hmc.capacityBytes;
    sys.configureGupsPort(0, gp);
    sys.run(10 * kMicrosecond);
    sys.port(0).setActive(false);
    sys.run(20 * kMicrosecond);

    const std::uint64_t reads = sys.port(0).monitor().reads();
    std::uint64_t down = 0, up = 0;
    for (LinkId l = 0; l < 2; ++l) {
        down += sys.device().link(l).flitsSent(LinkDir::HostToCube);
        up += sys.device().link(l).flitsSent(LinkDir::CubeToHost);
    }
    EXPECT_EQ(down, reads);          // 1 flit per read request
    EXPECT_EQ(up, reads * 5u);       // 64 B response = 5 flits
}

TEST(SystemAccounting, StatsTreeExposesEveryLayer)
{
    SystemConfig cfg;
    System sys(cfg);
    GupsPortSpec gp;
    gp.gen.pattern = sys.addressMap().pattern(16, 16);
    gp.gen.requestBytes = 32;
    gp.gen.capacity = cfg.hmc.capacityBytes;
    sys.configureGupsPort(0, gp);
    sys.run(5 * kMicrosecond);
    const auto stats = sys.stats();
    EXPECT_TRUE(stats.count("system.fpga.controller.requests_sent"));
    EXPECT_TRUE(stats.count("system.hmc.noc.messages_delivered"));
    EXPECT_TRUE(stats.count("system.hmc.link0.down_packets"));
    EXPECT_TRUE(stats.count("system.hmc.vault0.requests_served"));
    EXPECT_TRUE(stats.count("system.hmc.vault0.mem.activates"));
    EXPECT_GT(stats.at("system.hmc.noc.messages_delivered"), 0.0);
}

TEST(SystemAccounting, ResetStatsZeroesWindow)
{
    SystemConfig cfg;
    System sys(cfg);
    GupsPortSpec gp;
    gp.gen.pattern = sys.addressMap().pattern(16, 16);
    gp.gen.requestBytes = 32;
    gp.gen.capacity = cfg.hmc.capacityBytes;
    sys.configureGupsPort(0, gp);
    sys.run(5 * kMicrosecond);
    EXPECT_GT(sys.port(0).monitor().reads(), 0u);
    sys.resetStats();
    EXPECT_EQ(sys.port(0).monitor().reads(), 0u);
    const ExperimentResult r = sys.measure(5 * kMicrosecond);
    EXPECT_GT(r.totalReads, 0u);
}

// ----- QoS property: collisions hurt the slowest stream -----

TEST(QosProperty, SharedVaultRaisesMaxLatency)
{
    // 16 B requests: four stream ports together demand far more than
    // one vault's request rate, so full collision must hurt (paper
    // Fig. 9).  Widen the host deserializer so the cube-side effect is
    // isolated (with the AC-510 default, the host response path nearly
    // saturates even in the spread case and masks the contrast).
    SystemConfig cfg;
    cfg.host.deserializerPacketsPerCycle = 4;
    cfg.host.deserializerPacketBudgetCap = 8;
    cfg.host.deserializerFlitsPerCycle = 16;
    StreamVaultsSpec spec;
    spec.requestBytes = 16;
    spec.warmup = 5 * kMicrosecond;
    spec.window = 15 * kMicrosecond;
    spec.vaults = {1, 1, 1, 1};  // full collision
    const ExperimentResult collided = runStreamVaults(cfg, spec);
    spec.vaults = {0, 4, 8, 12};  // fully spread
    const ExperimentResult spread = runStreamVaults(cfg, spec);
    // The paper's Fig. 9 metric is the *maximum* observed latency.
    EXPECT_GT(collided.maxReadLatencyNs, spread.maxReadLatencyNs * 1.2);
    // The average moves less: the host deserializer almost bounds the
    // spread case too, so only require a consistent direction.
    EXPECT_GT(collided.avgReadLatencyNs, spread.avgReadLatencyNs);
    EXPECT_LT(collided.bandwidthGBs, spread.bandwidthGBs);
}

}  // namespace
}  // namespace hmcsim
