/**
 * @file
 * Shared gtest environment: silence the logger so the many
 * negative-path tests (EXPECT_THROW on fatal/panic) do not spam
 * stderr.  Linked into every test binary.
 */

#include <gtest/gtest.h>

#include "common/log.h"

namespace hmcsim {
namespace {

class SilentLogEnvironment : public ::testing::Environment
{
  public:
    void SetUp() override { Logger::setLevel(LogLevel::Silent); }
};

const ::testing::Environment *const g_env =
    ::testing::AddGlobalTestEnvironment(new SilentLogEnvironment);

}  // namespace
}  // namespace hmcsim
