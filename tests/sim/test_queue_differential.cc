/**
 * @file
 * Differential determinism tests: the calendar queue must execute
 * every workload in exactly the order the reference heap does.  The
 * simulator's figures are pinned bit-for-bit to the (time, priority,
 * seq) execution order, so any divergence here is a correctness bug
 * in the optimized engine, not a tuning matter.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/event_queue.h"

namespace hmcsim {
namespace {

/** Deterministic xorshift64 PRNG, seeded per scenario. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : s_(seed ? seed : 1) {}

    std::uint64_t
    next()
    {
        s_ ^= s_ << 13;
        s_ ^= s_ >> 7;
        s_ ^= s_ << 17;
        return s_;
    }

    /** Uniform in [0, n). */
    std::uint64_t next(std::uint64_t n) { return next() % n; }

  private:
    std::uint64_t s_;
};

/** One scheduled event in a replayable workload. */
struct Op {
    Tick when;
    int priority;
    int id;
};

void
configureSmall(EventQueue &q, EventQueueKind kind)
{
    // Deliberately small geometry (64 ps x 256 buckets = 16 ns span)
    // so the workloads exercise ring wrap, far-future migration, and
    // empty-ring re-anchoring, not just the happy path.
    q.configure(kind, 64, 256);
}

/** Run @p ops through a queue of @p kind; return execution order. */
std::vector<int>
execute(EventQueueKind kind, const std::vector<Op> &ops)
{
    EventQueue q;
    configureSmall(q, kind);
    std::vector<int> order;
    order.reserve(ops.size());
    for (const Op &op : ops)
        q.schedule(op.when, [&order, id = op.id] { order.push_back(id); },
                   op.priority);
    while (!q.empty())
        q.executeNext();
    return order;
}

/** Both engines must agree on the exact execution order of @p ops. */
void
expectIdenticalOrder(const std::vector<Op> &ops)
{
    const std::vector<int> heap = execute(EventQueueKind::Heap, ops);
    const std::vector<int> cal = execute(EventQueueKind::Calendar, ops);
    ASSERT_EQ(heap.size(), cal.size());
    for (std::size_t i = 0; i < heap.size(); ++i)
        ASSERT_EQ(heap[i], cal[i]) << "divergence at event " << i;
}

TEST(QueueDifferential, RandomInterleavings)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        Rng rng(seed * 0x9e3779b97f4a7c15ull);
        std::vector<Op> ops;
        for (int i = 0; i < 500; ++i) {
            Op op;
            op.when = rng.next(5000);
            op.priority = 0;
            op.id = i;
            ops.push_back(op);
        }
        expectIdenticalOrder(ops);
    }
}

TEST(QueueDifferential, SameTickSamePriorityIsFifo)
{
    // Many events at few distinct (time, priority) keys: order within
    // a key must be schedule order in both engines.
    std::vector<Op> ops;
    for (int i = 0; i < 300; ++i) {
        Op op;
        op.when = static_cast<Tick>((i * 7) % 3) * 100;
        op.priority = 0;
        op.id = i;
        ops.push_back(op);
    }
    expectIdenticalOrder(ops);
}

TEST(QueueDifferential, CrossPriorityTies)
{
    // Interleave priorities at shared ticks, including events pushed
    // "behind" an already-pending higher-priority event at the same
    // tick (the calendar's rare rotate-insert path).
    const int prios[] = {EventPriority::kStop, EventPriority::kDefault,
                         EventPriority::kStats, EventPriority::kDefault};
    std::vector<Op> ops;
    Rng rng(42);
    for (int i = 0; i < 400; ++i) {
        Op op;
        op.when = rng.next(50) * 10;
        op.priority = prios[i % 4];
        op.id = i;
        ops.push_back(op);
    }
    expectIdenticalOrder(ops);
}

TEST(QueueDifferential, FarFutureInserts)
{
    // Times far beyond the calendar ring horizon force the far-future
    // heap and the empty-ring jump; mix them with near times so the
    // migration boundary is crossed repeatedly.
    Rng rng(7);
    std::vector<Op> ops;
    for (int i = 0; i < 400; ++i) {
        Op op;
        op.when = (i % 3 == 0) ? 1000000 + rng.next(1000000)
                               : rng.next(2000);
        op.priority = 0;
        op.id = i;
        ops.push_back(op);
    }
    expectIdenticalOrder(ops);
}

/**
 * Events scheduling events: replay the same self-scheduling program
 * on both engines and compare the full execution trace.  Delays are
 * drawn from a per-engine-independent PRNG stream keyed only by the
 * executing event's id, so both engines see identical programs.
 */
std::vector<std::pair<Tick, int>>
runSelfScheduling(EventQueueKind kind)
{
    EventQueue q;
    configureSmall(q, kind);
    std::vector<std::pair<Tick, int>> trace;
    int nextId = 0;
    // Seed events; each execution re-schedules up to two children
    // derived deterministically from its own id, so both engines see
    // the identical program.
    std::function<void(int, int, Tick)> fire = [&](int id, int depth,
                                                   Tick when) {
        trace.emplace_back(when, id);
        if (depth >= 6)
            return;
        Rng rng(static_cast<std::uint64_t>(id) * 2654435761u + 1);
        const int children = 1 + static_cast<int>(rng.next(2));
        for (int c = 0; c < children; ++c) {
            const int cid = nextId++;
            // Mix of short, bucket-crossing, and far-future delays;
            // zero-delay children exercise the same-tick path.
            const Tick delay =
                rng.next(4) == 0
                    ? 0
                    : rng.next(3) == 0 ? 100000 + rng.next(9999)
                                       : rng.next(700);
            const int prio = rng.next(5) == 0 ? EventPriority::kStats
                                              : EventPriority::kDefault;
            const Tick cwhen = when + delay;
            q.schedule(cwhen,
                       [&fire, cid, depth, cwhen] {
                           fire(cid, depth + 1, cwhen);
                       },
                       prio);
        }
    };
    for (int i = 0; i < 8; ++i) {
        const int id = nextId++;
        const Tick when = static_cast<Tick>(i) * 37;
        q.schedule(when, [&fire, id, when] { fire(id, 0, when); });
    }
    while (!q.empty())
        q.executeNext();
    return trace;
}

TEST(QueueDifferential, ScheduleFromWithinEvents)
{
    const auto heap = runSelfScheduling(EventQueueKind::Heap);
    const auto cal = runSelfScheduling(EventQueueKind::Calendar);
    ASSERT_EQ(heap.size(), cal.size());
    for (std::size_t i = 0; i < heap.size(); ++i) {
        ASSERT_EQ(heap[i].first, cal[i].first) << "time diverged at " << i;
        ASSERT_EQ(heap[i].second, cal[i].second) << "id diverged at " << i;
    }
}

/**
 * Execute half a workload, clear(), then replay a second workload on
 * the same queue object; return the combined execution order.
 * Exercises the clear()-then-reuse path: the ring anchor, the
 * far-future heap, and the FIFO sequence counter must all reset so the
 * second life of the queue behaves exactly like a fresh one.
 */
std::vector<int>
executeWithClear(EventQueueKind kind, const std::vector<Op> &first,
                 const std::vector<Op> &second)
{
    EventQueue q;
    configureSmall(q, kind);
    std::vector<int> order;
    for (const Op &op : first)
        q.schedule(op.when, [&order, id = op.id] { order.push_back(id); },
                   op.priority);
    for (std::size_t i = 0; i < first.size() / 2 && !q.empty(); ++i)
        q.executeNext();
    q.clear();
    EXPECT_TRUE(q.empty());
    for (const Op &op : second)
        q.schedule(op.when, [&order, id = op.id] { order.push_back(id); },
                   op.priority);
    while (!q.empty())
        q.executeNext();
    return order;
}

TEST(QueueDifferential, ClearThenReuse)
{
    // First life: a mix of near and far-future times so clear() has to
    // discard state in both the ring and the overflow heap.  Second
    // life: small times again (behind the discarded far-future ones),
    // same-key runs to check the FIFO counter, and a far insert.
    Rng rng(99);
    std::vector<Op> first;
    for (int i = 0; i < 200; ++i) {
        Op op;
        op.when = (i % 4 == 0) ? 500000 + rng.next(100000) : rng.next(3000);
        op.priority = 0;
        op.id = i;
        first.push_back(op);
    }
    std::vector<Op> second;
    for (int i = 0; i < 200; ++i) {
        Op op;
        // Many same-(time, priority) keys: FIFO order within a key
        // must restart cleanly after clear().
        op.when = rng.next(8) * 100;
        op.priority = (i % 5 == 0) ? EventPriority::kStats
                                   : EventPriority::kDefault;
        op.id = 1000 + i;
        second.push_back(op);
    }
    Op far;
    far.when = 2000000;
    far.priority = 0;
    far.id = 9999;
    second.push_back(far);

    const auto heap =
        executeWithClear(EventQueueKind::Heap, first, second);
    const auto cal =
        executeWithClear(EventQueueKind::Calendar, first, second);
    ASSERT_EQ(heap.size(), cal.size());
    for (std::size_t i = 0; i < heap.size(); ++i)
        ASSERT_EQ(heap[i], cal[i]) << "divergence at event " << i;
}

TEST(QueueDifferential, MonotoneNonDecreasingFireTimes)
{
    // The calendar clamps past-times into the current bucket; fire
    // times reported by executeNext must still be non-decreasing for
    // in-order workloads on both engines.
    for (const auto kind :
         {EventQueueKind::Heap, EventQueueKind::Calendar}) {
        EventQueue q;
        configureSmall(q, kind);
        Rng rng(1234);
        for (int i = 0; i < 1000; ++i)
            q.schedule(rng.next(30000), [] {});
        Tick last = 0;
        while (!q.empty()) {
            const Tick t = q.executeNext();
            EXPECT_GE(t, last);
            last = t;
        }
    }
}

}  // namespace
}  // namespace hmcsim
