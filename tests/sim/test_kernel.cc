#include <gtest/gtest.h>

#include "common/log.h"
#include "sim/kernel.h"

namespace hmcsim {
namespace {

TEST(Kernel, TimeAdvancesWithEvents)
{
    Kernel k;
    Tick seen = 0;
    k.scheduleIn(100, [&] { seen = k.now(); });
    k.run();
    EXPECT_EQ(seen, 100u);
    EXPECT_EQ(k.now(), 100u);
}

TEST(Kernel, RunUntilHorizonLeavesLaterEvents)
{
    Kernel k;
    int fired = 0;
    k.scheduleIn(10, [&] { ++fired; });
    k.scheduleIn(1000, [&] { ++fired; });
    k.run(500);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(k.now(), 500u);  // advanced to the horizon
    k.run(2000);
    EXPECT_EQ(fired, 2);
}

TEST(Kernel, EventExactlyAtHorizonRuns)
{
    Kernel k;
    bool fired = false;
    k.scheduleIn(100, [&] { fired = true; });
    k.run(100);
    EXPECT_TRUE(fired);
}

TEST(Kernel, ScheduleAtPastPanics)
{
    Kernel k;
    k.scheduleIn(50, [] {});
    k.run();
    EXPECT_THROW(k.scheduleAt(10, [] {}), PanicError);
}

TEST(Kernel, StopEndsRun)
{
    Kernel k;
    int fired = 0;
    k.scheduleIn(1, [&] {
        ++fired;
        k.stop();
    });
    k.scheduleIn(2, [&] { ++fired; });
    k.run();
    EXPECT_EQ(fired, 1);
    // A fresh run resumes with the remaining event.
    k.run();
    EXPECT_EQ(fired, 2);
}

TEST(Kernel, RunReturnsExecutedCount)
{
    Kernel k;
    for (int i = 0; i < 7; ++i)
        k.scheduleIn(i + 1, [] {});
    EXPECT_EQ(k.run(), 7u);
}

TEST(Kernel, RunUntilPredicate)
{
    Kernel k;
    int count = 0;
    for (int i = 1; i <= 10; ++i)
        k.scheduleIn(i, [&] { ++count; });
    k.runUntil([&] { return count >= 4; });
    EXPECT_EQ(count, 4);
    EXPECT_EQ(k.now(), 4u);
}

TEST(Kernel, RunUntilPredicateAlreadyTrue)
{
    Kernel k;
    bool fired = false;
    k.scheduleIn(1, [&] { fired = true; });
    k.runUntil([] { return true; });
    EXPECT_FALSE(fired);
}

TEST(Kernel, RunUntilIdleAdvancesToHorizon)
{
    // Regression: runUntil used to leave now() at the last executed
    // event when the queue drained before the horizon, so back-to-back
    // measurement windows lost the idle tail.  It must advance to the
    // horizon exactly like run() does when the predicate never fires.
    Kernel k;
    int fired = 0;
    k.scheduleIn(10, [&] { ++fired; });
    k.runUntil([] { return false; }, 500);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(k.now(), 500u);
    // The advance must not manufacture time when the predicate ended
    // the run: covered by RunUntilPredicate (now() == 4 there).
}

TEST(Kernel, RunUntilStopSuppressesIdleAdvance)
{
    // stop() ends the run at a meaningful simulated time; the idle
    // horizon advance must not overwrite it.
    Kernel k;
    k.scheduleIn(10, [&] { k.stop(); });
    k.runUntil([] { return false; }, 500);
    EXPECT_EQ(k.now(), 10u);
}

TEST(Kernel, ScheduleInOverflowPanics)
{
    // Regression: a delay that wraps the tick clock used to overflow
    // silently and schedule in the past (or panic with a misleading
    // "past" message); it must be diagnosed as an overflow up front.
    Kernel k;
    k.scheduleIn(50, [] {});
    k.run();
    EXPECT_THROW(k.scheduleIn(kTickNever, [] {}), PanicError);
    EXPECT_THROW(k.scheduleIn(kTickNever - 49, [] {}), PanicError);
    // The largest non-wrapping delay still schedules fine.
    k.scheduleIn(kTickNever - 50, [] {});
}

TEST(Kernel, SelfReschedulingLoopStopsAtHorizon)
{
    Kernel k;
    int ticks = 0;
    std::function<void()> loop = [&] {
        ++ticks;
        k.scheduleIn(10, loop);
    };
    k.scheduleIn(10, loop);
    k.run(100);
    EXPECT_EQ(ticks, 10);
}

}  // namespace
}  // namespace hmcsim
