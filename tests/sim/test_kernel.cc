#include <gtest/gtest.h>

#include "common/log.h"
#include "sim/kernel.h"

namespace hmcsim {
namespace {

TEST(Kernel, TimeAdvancesWithEvents)
{
    Kernel k;
    Tick seen = 0;
    k.scheduleIn(100, [&] { seen = k.now(); });
    k.run();
    EXPECT_EQ(seen, 100u);
    EXPECT_EQ(k.now(), 100u);
}

TEST(Kernel, RunUntilHorizonLeavesLaterEvents)
{
    Kernel k;
    int fired = 0;
    k.scheduleIn(10, [&] { ++fired; });
    k.scheduleIn(1000, [&] { ++fired; });
    k.run(500);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(k.now(), 500u);  // advanced to the horizon
    k.run(2000);
    EXPECT_EQ(fired, 2);
}

TEST(Kernel, EventExactlyAtHorizonRuns)
{
    Kernel k;
    bool fired = false;
    k.scheduleIn(100, [&] { fired = true; });
    k.run(100);
    EXPECT_TRUE(fired);
}

TEST(Kernel, ScheduleAtPastPanics)
{
    Kernel k;
    k.scheduleIn(50, [] {});
    k.run();
    EXPECT_THROW(k.scheduleAt(10, [] {}), PanicError);
}

TEST(Kernel, StopEndsRun)
{
    Kernel k;
    int fired = 0;
    k.scheduleIn(1, [&] {
        ++fired;
        k.stop();
    });
    k.scheduleIn(2, [&] { ++fired; });
    k.run();
    EXPECT_EQ(fired, 1);
    // A fresh run resumes with the remaining event.
    k.run();
    EXPECT_EQ(fired, 2);
}

TEST(Kernel, RunReturnsExecutedCount)
{
    Kernel k;
    for (int i = 0; i < 7; ++i)
        k.scheduleIn(i + 1, [] {});
    EXPECT_EQ(k.run(), 7u);
}

TEST(Kernel, RunUntilPredicate)
{
    Kernel k;
    int count = 0;
    for (int i = 1; i <= 10; ++i)
        k.scheduleIn(i, [&] { ++count; });
    k.runUntil([&] { return count >= 4; });
    EXPECT_EQ(count, 4);
    EXPECT_EQ(k.now(), 4u);
}

TEST(Kernel, RunUntilPredicateAlreadyTrue)
{
    Kernel k;
    bool fired = false;
    k.scheduleIn(1, [&] { fired = true; });
    k.runUntil([] { return true; });
    EXPECT_FALSE(fired);
}

TEST(Kernel, SelfReschedulingLoopStopsAtHorizon)
{
    Kernel k;
    int ticks = 0;
    std::function<void()> loop = [&] {
        ++ticks;
        k.scheduleIn(10, loop);
    };
    k.scheduleIn(10, loop);
    k.run(100);
    EXPECT_EQ(ticks, 10);
}

}  // namespace
}  // namespace hmcsim
