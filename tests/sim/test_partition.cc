/**
 * @file
 * Partition mailbox semantics: cross-partition posts must drain into
 * the local event queue in a canonical order that is independent of
 * the interleaving in which the posting threads appended them.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "sim/kernel.h"
#include "sim/partition.h"

namespace hmcsim {
namespace {

TEST(Partition, DrainMovesMailToQueueInTimeOrder)
{
    Partition p(0);
    std::vector<int> order;
    p.post(300, 0, 1, 0, [&] { order.push_back(3); });
    p.post(100, 0, 1, 1, [&] { order.push_back(1); });
    p.post(200, 0, 1, 2, [&] { order.push_back(2); });
    EXPECT_EQ(p.mailboxSize(), 3u);
    p.drainMailbox();
    EXPECT_EQ(p.mailboxSize(), 0u);
    while (!p.queue().empty())
        p.queue().executeNext();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Partition, CanonicalOrderIsIndependentOfPostInterleaving)
{
    // Build one logical set of posts (distinct (when, priority,
    // srcPart, srcSeq) keys), deliver it to two partitions in two
    // different arrival permutations, and require the identical
    // execution order -- this is the property that makes the parallel
    // schedule thread-count invariant.
    struct Post {
        Tick when;
        int priority;
        std::uint32_t srcPart;
        std::uint64_t srcSeq;
        int id;
    };
    std::vector<Post> posts;
    int id = 0;
    for (Tick when : {400u, 100u, 100u, 250u})
        for (std::uint32_t src : {2u, 1u}) {
            Post p;
            p.when = when;
            p.priority = (id % 3 == 0) ? -1 : 0;
            p.srcPart = src;
            p.srcSeq = static_cast<std::uint64_t>(id);
            p.id = id++;
            posts.push_back(p);
        }

    auto runPermutation = [&](const std::vector<std::size_t> &perm) {
        Partition part(0);
        std::vector<int> order;
        for (std::size_t i : perm) {
            const Post &p = posts[i];
            part.post(p.when, p.priority, p.srcPart, p.srcSeq,
                      [&order, pid = p.id] { order.push_back(pid); });
        }
        part.drainMailbox();
        while (!part.queue().empty())
            part.queue().executeNext();
        return order;
    };

    std::vector<std::size_t> forward(posts.size());
    for (std::size_t i = 0; i < forward.size(); ++i)
        forward[i] = i;
    std::vector<std::size_t> reversed(forward.rbegin(), forward.rend());
    std::vector<std::size_t> shuffled = forward;
    // Deterministic odd/even interleave, no RNG needed.
    std::stable_partition(shuffled.begin(), shuffled.end(),
                          [](std::size_t i) { return i % 2 == 1; });

    const auto a = runPermutation(forward);
    const auto b = runPermutation(reversed);
    const auto c = runPermutation(shuffled);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, c);
}

TEST(Partition, ConcurrentPostsAreSafeAndComplete)
{
    Partition part(0);
    constexpr int kThreads = 4;
    constexpr int kPerThread = 500;
    std::vector<std::thread> posters;
    for (int t = 0; t < kThreads; ++t)
        posters.emplace_back([&part, t] {
            for (int i = 0; i < kPerThread; ++i)
                part.post(static_cast<Tick>(1 + i), 0,
                          static_cast<std::uint32_t>(t),
                          static_cast<std::uint64_t>(i), [] {});
        });
    for (std::thread &t : posters)
        t.join();
    EXPECT_EQ(part.mailboxSize(),
              static_cast<std::size_t>(kThreads * kPerThread));
    part.drainMailbox();
    std::uint64_t executed = 0;
    while (!part.queue().empty()) {
        part.queue().executeNext();
        ++executed;
    }
    EXPECT_EQ(executed, static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(Partition, ScopedSchedulePartitionRoutesKernel)
{
    // With a TLS partition in scope, Kernel::now() reads the
    // partition's local clock and scheduleIn lands in the partition's
    // own queue, not the kernel's serial queue.
    Kernel k;
    Partition part(3);
    part.setLocalNow(777);
    {
        ScopedSchedulePartition scope(&part);
        EXPECT_EQ(k.now(), 777u);
        EXPECT_EQ(currentPartitionShard(), 3u);
        k.scheduleIn(23, [] {});
        EXPECT_EQ(part.queue().size(), 1u);
        EXPECT_EQ(part.queue().nextTime(), 800u);
    }
    EXPECT_EQ(currentPartitionShard(), 0u);
    EXPECT_EQ(k.now(), 0u);
}

}  // namespace
}  // namespace hmcsim
