#include <gtest/gtest.h>

#include "common/log.h"
#include "sim/component.h"

namespace hmcsim {
namespace {

class Root : public Component
{
  public:
    explicit Root(Kernel &k) : Component(k, nullptr, "root") {}
};

class Leaf : public Component
{
  public:
    Leaf(Kernel &k, Component *parent, std::string name)
        : Component(k, parent, std::move(name))
    {
    }

    int value = 0;
    mutable int reports = 0;

  protected:
    void
    reportOwnStats(std::map<std::string, double> &out) const override
    {
        out[statName("value")] = value;
        ++reports;
    }

    void resetOwnStats() override { value = 0; }
};

TEST(Component, PathConstruction)
{
    Kernel k;
    Root root(k);
    Leaf a(k, &root, "a");
    Leaf b(k, &a, "b");
    EXPECT_EQ(root.path(), "root");
    EXPECT_EQ(a.path(), "root.a");
    EXPECT_EQ(b.path(), "root.a.b");
}

TEST(Component, ChildrenTracking)
{
    Kernel k;
    Root root(k);
    {
        Leaf a(k, &root, "a");
        EXPECT_EQ(root.children().size(), 1u);
    }
    EXPECT_TRUE(root.children().empty());  // destructor deregisters
}

TEST(Component, StatsRecurse)
{
    Kernel k;
    Root root(k);
    Leaf a(k, &root, "a");
    Leaf b(k, &root, "b");
    a.value = 3;
    b.value = 4;
    std::map<std::string, double> stats;
    root.reportStats(stats);
    EXPECT_DOUBLE_EQ(stats.at("root.a.value"), 3.0);
    EXPECT_DOUBLE_EQ(stats.at("root.b.value"), 4.0);
}

TEST(Component, ResetRecurses)
{
    Kernel k;
    Root root(k);
    Leaf a(k, &root, "a");
    a.value = 9;
    root.resetStats();
    EXPECT_EQ(a.value, 0);
}

TEST(Component, NowDelegatesToKernel)
{
    Kernel k;
    Root root(k);
    k.scheduleIn(123, [] {});
    k.run();
    EXPECT_EQ(root.now(), 123u);
}

TEST(Component, EmptyNamePanics)
{
    Kernel k;
    EXPECT_THROW(Leaf(k, nullptr, ""), PanicError);
}

TEST(Component, DottedNamePanics)
{
    Kernel k;
    Root root(k);
    EXPECT_THROW(Leaf(k, &root, "a.b"), PanicError);
}

}  // namespace
}  // namespace hmcsim
