#include <gtest/gtest.h>

#include "common/log.h"
#include "common/units.h"
#include "sim/clock.h"

namespace hmcsim {
namespace {

TEST(Clock, FpgaPeriod)
{
    const ClockDomain c = ClockDomain::fromMhz("fpga", 187.5);
    EXPECT_EQ(c.period(), 5333u);  // ps, rounded
    EXPECT_NEAR(c.frequencyMhz(), 187.5, 0.1);
}

TEST(Clock, CycleAt)
{
    ClockDomain c("c", 100);
    EXPECT_EQ(c.cycleAt(0), 0u);
    EXPECT_EQ(c.cycleAt(99), 0u);
    EXPECT_EQ(c.cycleAt(100), 1u);
    EXPECT_EQ(c.cycleAt(1050), 10u);
}

TEST(Clock, CycleStartInvertsCycleAt)
{
    ClockDomain c("c", 73);
    for (std::uint64_t cyc = 0; cyc < 50; ++cyc)
        EXPECT_EQ(c.cycleAt(c.cycleStart(cyc)), cyc);
}

TEST(Clock, NextEdgeAtOrAfter)
{
    ClockDomain c("c", 100);
    EXPECT_EQ(c.nextEdgeAtOrAfter(0), 0u);
    EXPECT_EQ(c.nextEdgeAtOrAfter(1), 100u);
    EXPECT_EQ(c.nextEdgeAtOrAfter(100), 100u);
    EXPECT_EQ(c.nextEdgeAtOrAfter(101), 200u);
}

TEST(Clock, NextEdgeAfterIsStrict)
{
    ClockDomain c("c", 100);
    EXPECT_EQ(c.nextEdgeAfter(100), 200u);
    EXPECT_EQ(c.nextEdgeAfter(150), 200u);
    EXPECT_EQ(c.nextEdgeAfter(0), 100u);
}

TEST(Clock, PhaseOffset)
{
    ClockDomain c("c", 100, 30);
    EXPECT_EQ(c.cycleStart(0), 30u);
    EXPECT_EQ(c.nextEdgeAtOrAfter(0), 30u);
    EXPECT_EQ(c.nextEdgeAtOrAfter(31), 130u);
    EXPECT_EQ(c.cycleAt(130), 1u);
}

TEST(Clock, ZeroPeriodPanics)
{
    EXPECT_THROW(ClockDomain("bad", 0), PanicError);
}

TEST(Clock, NegativeFrequencyPanics)
{
    EXPECT_THROW(ClockDomain::fromMhz("bad", -5.0), PanicError);
}

TEST(Clock, UnitsHelpers)
{
    EXPECT_EQ(nsToTicks(1.0), 1000u);
    EXPECT_EQ(nsToTicks(3.2), 3200u);
    EXPECT_DOUBLE_EQ(ticksToNs(1500), 1.5);
    EXPECT_DOUBLE_EQ(ticksToUs(2 * kMicrosecond), 2.0);
    // 16 B over 8 lanes at 15 Gbps = 128 bits / 120 Gb/s = 1066.7 ps.
    EXPECT_NEAR(serializationTicks(16, 15.0, 8), 1067, 1);
    // 32 B at 10 GB/s = 3.2 ns.
    EXPECT_EQ(transferTicks(32, 10.0), 3200u);
    EXPECT_DOUBLE_EQ(bytesPerTickToGBs(30.0, 1000), 30.0);
}

}  // namespace
}  // namespace hmcsim
