#include <gtest/gtest.h>

#include <vector>

#include "common/log.h"
#include "sim/event_queue.h"

namespace hmcsim {
namespace {

TEST(EventQueue, EmptyInitially)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.nextTime(), kTickNever);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    while (!q.empty())
        q.executeNext();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeFifoOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    while (!q.empty())
        q.executeNext();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, PriorityBreaksTies)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] { order.push_back(2); }, EventPriority::kStats);
    q.schedule(5, [&] { order.push_back(1); }, EventPriority::kDefault);
    q.schedule(5, [&] { order.push_back(3); }, EventPriority::kStop);
    while (!q.empty())
        q.executeNext();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, ExecuteReturnsEventTime)
{
    EventQueue q;
    q.schedule(42, [] {});
    EXPECT_EQ(q.executeNext(), 42u);
}

TEST(EventQueue, EventsMayScheduleEvents)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&] {
        ++fired;
        q.schedule(2, [&] { ++fired; });
    });
    while (!q.empty())
        q.executeNext();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ExecutedCount)
{
    EventQueue q;
    for (int i = 0; i < 5; ++i)
        q.schedule(i, [] {});
    while (!q.empty())
        q.executeNext();
    EXPECT_EQ(q.executedCount(), 5u);
}

TEST(EventQueue, Clear)
{
    EventQueue q;
    q.schedule(1, [] { FAIL() << "cleared event must not run"; });
    q.clear();
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NullEventPanics)
{
    EventQueue q;
    EXPECT_THROW(q.schedule(1, EventFn{}), PanicError);
}

TEST(EventQueue, ExecuteEmptyPanics)
{
    EventQueue q;
    EXPECT_THROW(q.executeNext(), PanicError);
}

TEST(EventQueue, LargeHeapStaysSorted)
{
    EventQueue q;
    // Insert pseudo-random times, verify monotone execution.
    std::uint64_t s = 99;
    for (int i = 0; i < 2000; ++i) {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        q.schedule(s % 100000, [] {});
    }
    Tick last = 0;
    while (!q.empty()) {
        const Tick t = q.executeNext();
        EXPECT_GE(t, last);
        last = t;
    }
}

}  // namespace
}  // namespace hmcsim
