/**
 * @file
 * Integration tests for the FPGA port models against a live system.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "host/system.h"

namespace hmcsim {
namespace {

class PortsTest : public ::testing::Test
{
  protected:
    PortsTest() : sys_(SystemConfig{}) {}

    GupsPortSpec
    gupsParams(std::uint32_t bytes = 32)
    {
        GupsPortSpec gp;
        gp.gen.pattern = sys_.addressMap().pattern(16, 16);
        gp.gen.requestBytes = bytes;
        gp.gen.capacity = sys_.config().hmc.capacityBytes;
        gp.gen.seed = 9;
        return gp;
    }

    StreamPortSpec
    streamParams(std::size_t n = 64, std::uint32_t bytes = 32)
    {
        StreamPortSpec sp;
        sp.trace = makeStreamTrace(0, n, bytes, bytes);
        sp.loop = false;
        return sp;
    }

    System sys_;
};

TEST_F(PortsTest, InactivePortGeneratesNothing)
{
    sys_.run(10 * kMicrosecond);
    for (PortId p = 0; p < sys_.fpga().numPorts(); ++p)
        EXPECT_EQ(sys_.port(p).issuedRequests(), 0u);
}

TEST_F(PortsTest, GupsPortRespectsTagLimit)
{
    WorkloadPort &port = sys_.configureGupsPort(0, gupsParams());
    sys_.run(10 * kMicrosecond);
    EXPECT_LE(port.tags().peakInUse(),
              sys_.config().host.tagsPerPort);
    EXPECT_GT(port.tags().peakInUse(), 0u);
}

TEST_F(PortsTest, GupsDeactivationDrains)
{
    WorkloadPort &port = sys_.configureGupsPort(0, gupsParams());
    sys_.run(10 * kMicrosecond);
    port.setActive(false);
    sys_.run(20 * kMicrosecond);
    EXPECT_TRUE(port.idle());
    EXPECT_EQ(port.tags().inUse(), 0u);
    EXPECT_EQ(port.monitor().accesses(), port.issuedRequests());
}

TEST_F(PortsTest, StreamPortFinishesFiniteTrace)
{
    sys_.configureStreamPort(0, streamParams(64));
    EXPECT_TRUE(sys_.runUntilIdle(100 * kMicrosecond));
    EXPECT_EQ(sys_.port(0).monitor().reads(), 64u);
}

TEST_F(PortsTest, StreamPortHonoursWindow)
{
    StreamPortSpec sp = streamParams(5000, 32);
    sp.loop = true;
    sp.window = 4;
    WorkloadPort &port = sys_.configureStreamPort(0, sp);
    sys_.run(5 * kMicrosecond);
    EXPECT_LE(port.inFlight(), 4u);
    EXPECT_GT(port.monitor().reads(), 10u);
}

TEST_F(PortsTest, StreamBatchesComplete)
{
    StreamPortSpec sp = streamParams(4096, 32);
    sp.loop = true;
    sp.batchSize = 10;
    WorkloadPort &port = sys_.configureStreamPort(0, sp);
    sys_.run(30 * kMicrosecond);
    EXPECT_GT(port.batchesCompleted(), 10u);
    // Reads arrive in multiples of the batch size (plus the batch in
    // flight).
    EXPECT_GT(port.monitor().reads(), 100u);
}

TEST_F(PortsTest, StreamRecordDelaysThrottle)
{
    StreamPortSpec fast = streamParams(200, 32);
    fast.loop = false;
    sys_.configureStreamPort(0, fast);
    ASSERT_TRUE(sys_.runUntilIdle(1 * kMillisecond));
    const Tick fast_done = sys_.now();

    System slow_sys{SystemConfig{}};
    StreamPortSpec slow;
    slow.trace = makeStreamTrace(0, 200, 32, 32);
    for (auto &r : slow.trace)
        r.delayNs = 100;  // 100 ns between issues
    slow.loop = false;
    slow_sys.configureStreamPort(0, slow);
    ASSERT_TRUE(slow_sys.runUntilIdle(1 * kMillisecond));
    EXPECT_GT(slow_sys.now(), fast_done);
    EXPECT_GE(slow_sys.now(), 200 * 100 * kNanosecond);
}

TEST_F(PortsTest, MixedPortTypesCoexist)
{
    sys_.configureGupsPort(0, gupsParams(64));
    StreamPortSpec sp = streamParams(4096, 64);
    sp.loop = true;
    sys_.configureStreamPort(1, sp);
    sys_.run(20 * kMicrosecond);
    EXPECT_GT(sys_.port(0).monitor().reads(), 100u);
    EXPECT_GT(sys_.port(1).monitor().reads(), 100u);
}

TEST_F(PortsTest, NinePortsShareFairly)
{
    for (PortId p = 0; p < 9; ++p) {
        GupsPortSpec gp = gupsParams(32);
        gp.gen.seed = 100 + p;
        sys_.configureGupsPort(p, gp);
    }
    sys_.run(10 * kMicrosecond);
    sys_.resetStats();
    sys_.run(20 * kMicrosecond);
    std::uint64_t min_reads = ~0ull, max_reads = 0;
    for (PortId p = 0; p < 9; ++p) {
        const std::uint64_t r = sys_.port(p).monitor().reads();
        min_reads = std::min(min_reads, r);
        max_reads = std::max(max_reads, r);
    }
    EXPECT_GT(min_reads, 0u);
    // Round-robin arbitration keeps ports within ~25% of each other
    // (per-link rotation plus deterministic tick phasing leaves some
    // residual skew).
    EXPECT_LT(static_cast<double>(max_reads - min_reads),
              0.25 * static_cast<double>(max_reads));
}

TEST_F(PortsTest, MonitorBandwidthUsesPaperFormula)
{
    sys_.configureGupsPort(0, gupsParams(32));
    sys_.run(10 * kMicrosecond);
    const Monitor &m = sys_.port(0).monitor();
    // Every 32 B read moves 16 B request + 48 B response on the wire.
    EXPECT_EQ(m.wireBytes(), m.reads() * 64u);
}

TEST_F(PortsTest, EmptyTraceIsFatal)
{
    StreamPortSpec sp;
    sp.trace = {};
    EXPECT_THROW(sys_.configureStreamPort(0, sp), FatalError);
}

TEST_F(PortsTest, WritesInTraceProduceWrites)
{
    StreamPortSpec sp;
    sp.trace = makeStreamTrace(0, 50, 64, 64, /*writes=*/true);
    sp.loop = false;
    sys_.configureStreamPort(0, sp);
    ASSERT_TRUE(sys_.runUntilIdle(200 * kMicrosecond));
    EXPECT_EQ(sys_.port(0).monitor().writes(), 50u);
    EXPECT_EQ(sys_.port(0).monitor().reads(), 0u);
}

}  // namespace
}  // namespace hmcsim
