/**
 * @file
 * Integration tests of the cube-internal path: link RX -> NoC ->
 * vault controller -> DRAM -> response, driven directly through the
 * device's links without the FPGA model.
 */

#include <gtest/gtest.h>

#include "hmc/hmc_device.h"
#include "sim/component.h"

namespace hmcsim {
namespace {

class RootComponent : public Component
{
  public:
    explicit RootComponent(Kernel &k) : Component(k, nullptr, "root") {}
};

class VaultPathTest : public ::testing::Test
{
  protected:
    void
    build(HmcConfig cfg = HmcConfig{})
    {
        root_ = std::make_unique<RootComponent>(kernel_);
        dev_ = std::make_unique<HmcDevice>(kernel_, root_.get(), "hmc",
                                           cfg);
    }

    /** Send a read over a link; returns the request packet. */
    HmcPacketPtr
    sendRead(LinkId link, Addr addr, std::uint32_t bytes)
    {
        HmcPacketPtr pkt = makeReadRequest(addr, bytes, 0);
        SerdesLink &lk = dev_->link(link);
        EXPECT_TRUE(lk.canSend(LinkDir::HostToCube, pkt->flits()));
        lk.reserveTokens(LinkDir::HostToCube, pkt->flits());
        lk.send(LinkDir::HostToCube, pkt);
        return pkt;
    }

    /** Collect every response available on a link. */
    std::vector<HmcPacketPtr>
    drainResponses(LinkId link)
    {
        std::vector<HmcPacketPtr> out;
        SerdesLink &lk = dev_->link(link);
        while (lk.rxAvailable(LinkDir::CubeToHost)) {
            out.push_back(lk.rxPop(LinkDir::CubeToHost));
            kernel_.run();  // let tokens flow back
        }
        return out;
    }

    Kernel kernel_;
    std::unique_ptr<RootComponent> root_;
    std::unique_ptr<HmcDevice> dev_;
};

TEST_F(VaultPathTest, ReadRoundTrip)
{
    build();
    const HmcPacketPtr req = sendRead(0, 0x1000, 64);
    kernel_.run();
    const auto resps = drainResponses(0);
    ASSERT_EQ(resps.size(), 1u);
    EXPECT_EQ(resps[0]->cmd, HmcCmd::ReadResponse);
    EXPECT_EQ(resps[0]->tag, req->tag);
    EXPECT_EQ(resps[0]->dataBytes, 64u);
    EXPECT_EQ(dev_->totalRequestsServed(), 1u);
}

TEST_F(VaultPathTest, ResponseReturnsOnRequestLink)
{
    build();
    sendRead(1, 0x2000, 32);
    kernel_.run();
    EXPECT_TRUE(drainResponses(0).empty());
    EXPECT_EQ(drainResponses(1).size(), 1u);
}

TEST_F(VaultPathTest, RequestReachesDecodedVault)
{
    build();
    // Vault field of 0x1000: bits [10:7] -> 0b0000 -> vault 0? Use the
    // map to be exact.
    const Addr addr = 0x12345680;
    const VaultId vault = dev_->addressMap().decode(addr).vault;
    sendRead(0, addr, 32);
    kernel_.run();
    drainResponses(0);
    EXPECT_EQ(dev_->vaultController(vault).requestsServed(), 1u);
}

TEST_F(VaultPathTest, NoLoadLatencyWithinPaperRange)
{
    build();
    const HmcPacketPtr req = sendRead(0, 0x40, 16);
    kernel_.run();
    const auto resps = drainResponses(0);
    ASSERT_EQ(resps.size(), 1u);
    // In-cube contribution (paper: 100-180 ns) plus both link
    // traversals (~2x 18 ns here).
    const double ns =
        static_cast<double>(kernel_.now()) / kNanosecond;
    EXPECT_GT(ns, 60.0);
    EXPECT_LT(ns, 260.0);
}

TEST_F(VaultPathTest, WriteRoundTrip)
{
    build();
    HmcPacketPtr pkt = makeWriteRequest(0x3000, 128, 0);
    dev_->link(0).reserveTokens(LinkDir::HostToCube, pkt->flits());
    dev_->link(0).send(LinkDir::HostToCube, pkt);
    kernel_.run();
    const auto resps = drainResponses(0);
    ASSERT_EQ(resps.size(), 1u);
    EXPECT_EQ(resps[0]->cmd, HmcCmd::WriteResponse);
    EXPECT_EQ(resps[0]->flits(), 1u);
    const VaultId vault = dev_->addressMap().decode(0x3000).vault;
    EXPECT_EQ(dev_->vaultController(vault).writeBytes(), 128u);
}

TEST_F(VaultPathTest, ManyRequestsAllServed)
{
    build();
    int sent = 0;
    for (Addr a = 0; a < 64 * 128; a += 128) {
        // Respect token flow control while pumping.
        while (!dev_->link(0).canSend(LinkDir::HostToCube, 1)) {
            kernel_.run();
            drainResponses(0);
        }
        sendRead(0, a, 128);
        ++sent;
    }
    kernel_.run();
    int got = static_cast<int>(drainResponses(0).size());
    // A few responses may still be in flight; drain to quiescence.
    while (got < sent) {
        kernel_.run();
        const int more = static_cast<int>(drainResponses(0).size());
        if (more == 0)
            break;
        got += more;
    }
    EXPECT_EQ(got, sent);
    EXPECT_EQ(dev_->totalRequestsServed(),
              static_cast<std::uint64_t>(sent));
}

TEST_F(VaultPathTest, SequentialBlocksSpreadOverVaults)
{
    build();
    for (Addr a = 0; a < 16 * 128; a += 128) {
        while (!dev_->link(0).canSend(LinkDir::HostToCube, 1)) {
            kernel_.run();
            drainResponses(0);
        }
        sendRead(0, a, 128);
    }
    kernel_.run();
    drainResponses(0);
    for (VaultId v = 0; v < 16; ++v)
        EXPECT_EQ(dev_->vaultController(v).requestsServed(), 1u)
            << "vault " << v;
}

TEST_F(VaultPathTest, TimestampsMonotone)
{
    build();
    const HmcPacketPtr req = sendRead(0, 0x5000, 64);
    kernel_.run();
    const auto resps = drainResponses(0);
    ASSERT_EQ(resps.size(), 1u);
    const HmcPacketPtr &r = resps[0];
    EXPECT_LE(req->linkTxAt, req->cubeArriveAt);
    EXPECT_LE(req->cubeArriveAt, r->vaultArriveAt);
    EXPECT_LE(r->vaultArriveAt, r->dataReadyAt);
    EXPECT_LE(r->dataReadyAt, r->respInjectAt);
}

TEST_F(VaultPathTest, RingTopologyStillWorks)
{
    HmcConfig cfg;
    cfg.topology = "quadrant_ring";
    build(cfg);
    sendRead(0, 0x7F80, 64);  // some far vault
    kernel_.run();
    EXPECT_EQ(drainResponses(0).size(), 1u);
}

TEST_F(VaultPathTest, SingleSwitchTopologyStillWorks)
{
    HmcConfig cfg;
    cfg.topology = "single_switch";
    build(cfg);
    sendRead(0, 0x7F80, 64);
    kernel_.run();
    EXPECT_EQ(drainResponses(0).size(), 1u);
}

TEST_F(VaultPathTest, FrFcfsOpenPageServesRowHitsNoSlower)
{
    // Two same-row reads back to back under each policy; the open-page
    // FR-FCFS configuration must finish no later than closed page.
    const auto run_two = [](const HmcConfig &cfg) {
        Kernel k;
        RootComponent root(k);
        HmcDevice dev(k, &root, "hmc", cfg);
        for (Addr a : {Addr{0x0}, Addr{0x20}}) {
            HmcPacketPtr pkt = makeReadRequest(a, 32, 0);
            dev.link(0).reserveTokens(LinkDir::HostToCube, 1);
            dev.link(0).send(LinkDir::HostToCube, pkt);
        }
        k.run();
        int got = 0;
        while (dev.link(0).rxAvailable(LinkDir::CubeToHost)) {
            dev.link(0).rxPop(LinkDir::CubeToHost);
            ++got;
            k.run();
        }
        EXPECT_EQ(got, 2);
        return k.now();
    };
    HmcConfig closed;
    HmcConfig open;
    open.pagePolicy = "open";
    open.scheduler = "frfcfs";
    EXPECT_LE(run_two(open), run_two(closed));
}

}  // namespace
}  // namespace hmcsim
