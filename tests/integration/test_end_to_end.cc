/**
 * @file
 * Whole-stack integration tests: GUPS and stream traffic through the
 * FPGA model, links, NoC, vault controllers, and DRAM, validating the
 * paper's headline behaviours end to end.
 */

#include <gtest/gtest.h>

#include "host/experiment.h"
#include "host/system.h"

namespace hmcsim {
namespace {

SystemConfig
fastCfg()
{
    SystemConfig cfg;
    // Keep defaults (paper hardware) but short RNG-independent runs
    // are configured per test.
    return cfg;
}

TEST(EndToEnd, GupsReadOnlyReachesPaperCeiling128B)
{
    GupsSpec spec;
    spec.requestBytes = 128;
    spec.warmup = 10 * kMicrosecond;
    spec.window = 20 * kMicrosecond;
    const ExperimentResult r = runGups(fastCfg(), spec);
    EXPECT_GT(r.bandwidthGBs, 20.0);
    EXPECT_LT(r.bandwidthGBs, 26.0);
    EXPECT_GT(r.totalReads, 1000u);
    EXPECT_EQ(r.totalWrites, 0u);
}

TEST(EndToEnd, SmallRequestsWasteBandwidth)
{
    GupsSpec spec;
    spec.warmup = 10 * kMicrosecond;
    spec.window = 20 * kMicrosecond;
    spec.requestBytes = 16;
    const double bw16 = runGups(fastCfg(), spec).bandwidthGBs;
    spec.requestBytes = 128;
    const double bw128 = runGups(fastCfg(), spec).bandwidthGBs;
    // Section IV-A: large packets always utilize bandwidth better.
    EXPECT_GT(bw128, 1.8 * bw16);
}

TEST(EndToEnd, LargeRequestsPayLatency)
{
    GupsSpec spec;
    spec.warmup = 10 * kMicrosecond;
    spec.window = 20 * kMicrosecond;
    spec.requestBytes = 16;
    const double lat16 = runGups(fastCfg(), spec).avgReadLatencyNs;
    spec.requestBytes = 128;
    const double lat128 = runGups(fastCfg(), spec).avgReadLatencyNs;
    EXPECT_GT(lat128, lat16);
}

TEST(EndToEnd, OneVaultCapsNearTenGBs)
{
    GupsSpec spec;
    spec.requestBytes = 32;
    spec.numVaults = 1;
    spec.numBanks = 16;
    spec.warmup = 10 * kMicrosecond;
    spec.window = 20 * kMicrosecond;
    const ExperimentResult r = runGups(fastCfg(), spec);
    EXPECT_NEAR(r.bandwidthGBs, 10.0, 1.5);
}

TEST(EndToEnd, SingleBankIsWorstCase)
{
    GupsSpec spec;
    spec.requestBytes = 32;
    spec.numVaults = 1;
    spec.numBanks = 1;
    spec.warmup = 10 * kMicrosecond;
    spec.window = 20 * kMicrosecond;
    const ExperimentResult r = runGups(fastCfg(), spec);
    // Paper: ~2 GB/s for 32 B single-bank accesses.
    EXPECT_NEAR(r.bandwidthGBs, 2.0, 0.4);
    // And latency an order of magnitude above the distributed case.
    EXPECT_GT(r.avgReadLatencyNs, 5000.0);
}

TEST(EndToEnd, BandwidthOrderingAcrossPatterns)
{
    GupsSpec spec;
    spec.requestBytes = 64;
    spec.warmup = 5 * kMicrosecond;
    spec.window = 15 * kMicrosecond;
    std::vector<double> bw;
    for (std::uint32_t banks : {1u, 2u, 4u, 8u}) {
        spec.numVaults = 1;
        spec.numBanks = banks;
        bw.push_back(runGups(fastCfg(), spec).bandwidthGBs);
    }
    spec.numVaults = 16;
    spec.numBanks = 16;
    bw.push_back(runGups(fastCfg(), spec).bandwidthGBs);
    for (std::size_t i = 1; i < bw.size(); ++i)
        EXPECT_GT(bw[i], bw[i - 1] * 0.99) << "pattern step " << i;
}

TEST(EndToEnd, LowLoadFloorNearPaper)
{
    StreamBatchSpec spec;
    spec.batchSize = 1;
    spec.requestBytes = 16;
    spec.warmup = 5 * kMicrosecond;
    spec.window = 20 * kMicrosecond;
    const ExperimentResult r = runStreamBatch(fastCfg(), spec);
    // ~0.7 us: 547 ns infrastructure + 100-180 ns in-cube.
    EXPECT_NEAR(r.avgReadLatencyNs, 700.0, 120.0);
}

TEST(EndToEnd, LatencyGrowsLinearlyThenSaturates)
{
    SystemConfig cfg = fastCfg();
    StreamBatchSpec spec;
    spec.requestBytes = 128;
    spec.warmup = 5 * kMicrosecond;
    spec.window = 20 * kMicrosecond;
    spec.batchSize = 1;
    const double l1 = runStreamBatch(cfg, spec).avgReadLatencyNs;
    spec.batchSize = 40;
    const double l40 = runStreamBatch(cfg, spec).avgReadLatencyNs;
    spec.batchSize = 200;
    const double l200 = runStreamBatch(cfg, spec).avgReadLatencyNs;
    spec.batchSize = 340;
    const double l340 = runStreamBatch(cfg, spec).avgReadLatencyNs;
    EXPECT_GT(l40, l1 * 1.3);       // linear growth region
    EXPECT_GT(l200, l40);
    EXPECT_NEAR(l340 / l200, 1.0, 0.12);  // saturated region is flat
}

TEST(EndToEnd, ResponsesMatchRequests)
{
    SystemConfig cfg = fastCfg();
    System sys(cfg);
    GupsPortSpec gp;
    gp.gen.pattern = sys.addressMap().pattern(16, 16);
    gp.gen.requestBytes = 64;
    gp.gen.capacity = cfg.hmc.capacityBytes;
    sys.configureGupsPort(0, gp);
    sys.run(20 * kMicrosecond);
    sys.port(0).setActive(false);
    sys.run(20 * kMicrosecond);  // drain
    const std::uint64_t sent = sys.fpga().controller().requestsSent();
    const std::uint64_t recv =
        sys.fpga().controller().responsesDelivered();
    EXPECT_GT(sent, 0u);
    EXPECT_EQ(sent, recv);  // nothing lost anywhere in the stack
    EXPECT_EQ(sys.device().totalRequestsServed(), sent);
}

TEST(EndToEnd, WriteOnlyTrafficWorks)
{
    GupsSpec spec;
    spec.kind = ReqKind::WriteOnly;
    spec.requestBytes = 64;
    spec.warmup = 5 * kMicrosecond;
    spec.window = 15 * kMicrosecond;
    const ExperimentResult r = runGups(fastCfg(), spec);
    EXPECT_GT(r.totalWrites, 500u);
    EXPECT_EQ(r.totalReads, 0u);
    EXPECT_GT(r.bandwidthGBs, 5.0);
}

TEST(EndToEnd, ReadModifyWriteProducesBoth)
{
    SystemConfig cfg = fastCfg();
    System sys(cfg);
    GupsPortSpec gp;
    gp.kind = ReqKind::ReadModifyWrite;
    gp.gen.pattern = sys.addressMap().pattern(16, 16);
    gp.gen.requestBytes = 32;
    gp.gen.capacity = cfg.hmc.capacityBytes;
    sys.configureGupsPort(0, gp);
    sys.run(20 * kMicrosecond);
    const Monitor &m = sys.port(0).monitor();
    EXPECT_GT(m.reads(), 100u);
    EXPECT_GT(m.writes(), 100u);
    // Every write follows a read of the same location.
    EXPECT_LE(m.writes(), m.reads());
}

TEST(EndToEnd, CrcErrorsDegradeButDoNotBreak)
{
    // The links have ~30% serializer headroom over the deserializer
    // ceiling, so mild error rates are absorbed invisibly (retries
    // only shift where the closed-loop population queues).  Past that
    // headroom the retry traffic must eat into throughput.
    SystemConfig cfg = fastCfg();
    GupsSpec spec;
    spec.requestBytes = 128;
    spec.warmup = 5 * kMicrosecond;
    spec.window = 15 * kMicrosecond;
    const ExperimentResult clean = runGups(cfg, spec);
    cfg.hmc.crcErrorProb = 0.45;
    cfg.hmc.retryDelay = 400 * kNanosecond;
    const ExperimentResult noisy = runGups(cfg, spec);
    EXPECT_GT(noisy.totalReads, 500u);  // still functional, no losses
    EXPECT_LT(noisy.bandwidthGBs, 0.95 * clean.bandwidthGBs);

    // At low load the retry delay shows up directly in the floor.
    StreamBatchSpec one;
    one.batchSize = 1;
    one.requestBytes = 64;
    one.warmup = 5 * kMicrosecond;
    one.window = 15 * kMicrosecond;
    const double clean_floor =
        runStreamBatch(fastCfg(), one).avgReadLatencyNs;
    SystemConfig noisy_cfg = fastCfg();
    noisy_cfg.hmc.crcErrorProb = 0.4;
    noisy_cfg.hmc.retryDelay = 400 * kNanosecond;
    const double noisy_floor =
        runStreamBatch(noisy_cfg, one).avgReadLatencyNs;
    EXPECT_GT(noisy_floor, clean_floor + 50.0);
}

TEST(EndToEnd, DeterministicAcrossRuns)
{
    GupsSpec spec;
    spec.requestBytes = 64;
    spec.warmup = 5 * kMicrosecond;
    spec.window = 10 * kMicrosecond;
    const ExperimentResult a = runGups(fastCfg(), spec);
    const ExperimentResult b = runGups(fastCfg(), spec);
    EXPECT_EQ(a.totalReads, b.totalReads);
    EXPECT_DOUBLE_EQ(a.avgReadLatencyNs, b.avgReadLatencyNs);
    EXPECT_DOUBLE_EQ(a.bandwidthGBs, b.bandwidthGBs);
}

TEST(EndToEnd, RefreshStealsBandwidth)
{
    SystemConfig cfg = fastCfg();
    GupsSpec spec;
    spec.requestBytes = 32;
    spec.numVaults = 1;
    spec.numBanks = 16;
    spec.warmup = 5 * kMicrosecond;
    spec.window = 15 * kMicrosecond;
    const double clean = runGups(cfg, spec).bandwidthGBs;
    cfg.hmc.trefi = 2 * kMicrosecond;  // aggressive refresh
    const double refreshed = runGups(cfg, spec).bandwidthGBs;
    EXPECT_LT(refreshed, clean);
    EXPECT_GT(refreshed, 0.5 * clean);
}

}  // namespace
}  // namespace hmcsim
