#include <gtest/gtest.h>

#include "common/log.h"
#include "hmc/flow_control.h"

namespace hmcsim {
namespace {

TEST(TokenBucket, StartsFull)
{
    TokenBucket t(64);
    EXPECT_EQ(t.capacity(), 64u);
    EXPECT_EQ(t.available(), 64u);
    EXPECT_EQ(t.inFlight(), 0u);
}

TEST(TokenBucket, ConsumeRefundCycle)
{
    TokenBucket t(10);
    EXPECT_TRUE(t.canConsume(10));
    t.consume(6);
    EXPECT_EQ(t.available(), 4u);
    EXPECT_EQ(t.inFlight(), 6u);
    EXPECT_FALSE(t.canConsume(5));
    t.refund(6);
    EXPECT_EQ(t.available(), 10u);
}

TEST(TokenBucket, CallbackFiresOnRefund)
{
    TokenBucket t(4);
    int fires = 0;
    t.setOnAvailable([&] { ++fires; });
    t.consume(4);
    EXPECT_EQ(fires, 0);
    t.refund(2);
    t.refund(2);
    EXPECT_EQ(fires, 2);
}

TEST(TokenBucket, TotalConsumedAccumulates)
{
    TokenBucket t(8);
    t.consume(3);
    t.refund(3);
    t.consume(5);
    EXPECT_EQ(t.totalConsumed(), 8u);
}

TEST(TokenBucket, OverConsumePanics)
{
    TokenBucket t(4);
    t.consume(3);
    EXPECT_THROW(t.consume(2), PanicError);
}

TEST(TokenBucket, OverRefundPanics)
{
    TokenBucket t(4);
    t.consume(1);
    EXPECT_THROW(t.refund(2), PanicError);
}

TEST(TokenBucket, ZeroCapacityPanics)
{
    EXPECT_THROW(TokenBucket(0), PanicError);
}

TEST(TokenBucket, ModelsLinkBuffer)
{
    // 64-flit RX buffer: seven 9-flit packets fit, the eighth stalls.
    TokenBucket t(64);
    int sent = 0;
    while (t.canConsume(9)) {
        t.consume(9);
        ++sent;
    }
    EXPECT_EQ(sent, 7);
    EXPECT_EQ(t.available(), 1u);
}

}  // namespace
}  // namespace hmcsim
