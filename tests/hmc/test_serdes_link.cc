#include <gtest/gtest.h>

#include "common/log.h"
#include "common/units.h"
#include "hmc/serdes_link.h"

namespace hmcsim {
namespace {

class SerdesLinkTest : public ::testing::Test
{
  protected:
    SerdesLinkTest()
    {
        params_.lanes = 8;
        params_.gbps = 15.0;
        params_.wireLatency = 1600;
        params_.serdesLatency = 16000;
        params_.tokens = 64;
        params_.tokenReturnLatency = 3200;
    }

    void
    build()
    {
        link_ = std::make_unique<SerdesLink>(kernel_, nullptr, "link0", 0,
                                             params_);
    }

    HmcPacketPtr
    read128()
    {
        return makeReadRequest(0, 128, 0);
    }

    Kernel kernel_;
    SerdesLink::Params params_;
    std::unique_ptr<SerdesLink> link_;
};

TEST_F(SerdesLinkTest, FlitPeriodMatchesLaneMath)
{
    build();
    // 128 bits / (8 lanes x 15 Gbps) = 1066.7 ps.
    EXPECT_NEAR(link_->flitPeriod(), 1067, 1);
    EXPECT_NEAR(link_->bandwidthGBs(), 15.0, 0.01);
}

TEST_F(SerdesLinkTest, DeliversPacketWithLatency)
{
    build();
    int arrivals = 0;
    link_->setOnRxAvailable(LinkDir::HostToCube, [&] { ++arrivals; });
    HmcPacketPtr pkt = read128();
    link_->reserveTokens(LinkDir::HostToCube, pkt->flits());
    link_->send(LinkDir::HostToCube, pkt);
    kernel_.run();
    EXPECT_EQ(arrivals, 1);
    ASSERT_TRUE(link_->rxAvailable(LinkDir::HostToCube));
    // 1 flit + wire + serdes.
    EXPECT_EQ(kernel_.now(),
              link_->flitPeriod() + params_.wireLatency +
                  params_.serdesLatency);
    EXPECT_EQ(pkt->cubeArriveAt, kernel_.now());
}

TEST_F(SerdesLinkTest, TokensConsumedAndReturned)
{
    build();
    HmcPacketPtr pkt = makeWriteRequest(0, 128, 0);  // 9 flits
    ASSERT_TRUE(link_->canSend(LinkDir::HostToCube, 9));
    link_->reserveTokens(LinkDir::HostToCube, 9);
    EXPECT_FALSE(link_->canSend(LinkDir::HostToCube, 56));
    link_->send(LinkDir::HostToCube, pkt);
    kernel_.run();
    // Tokens still held while the packet sits in the RX buffer.
    EXPECT_FALSE(link_->canSend(LinkDir::HostToCube, 64));
    link_->rxPop(LinkDir::HostToCube);
    kernel_.run();
    EXPECT_TRUE(link_->canSend(LinkDir::HostToCube, 64));
}

TEST_F(SerdesLinkTest, TokensFreeCallback)
{
    build();
    int frees = 0;
    link_->setOnTokensFree(LinkDir::HostToCube, [&] { ++frees; });
    HmcPacketPtr pkt = read128();
    link_->reserveTokens(LinkDir::HostToCube, 1);
    link_->send(LinkDir::HostToCube, pkt);
    kernel_.run();
    link_->rxPop(LinkDir::HostToCube);
    kernel_.run();
    EXPECT_EQ(frees, 1);
}

TEST_F(SerdesLinkTest, DirectionsAreIndependent)
{
    build();
    HmcPacketPtr down = read128();
    HmcPacketPtr up = std::make_shared<HmcPacket>(down->makeResponse());
    link_->reserveTokens(LinkDir::HostToCube, down->flits());
    link_->send(LinkDir::HostToCube, down);
    link_->reserveTokens(LinkDir::CubeToHost, up->flits());
    link_->send(LinkDir::CubeToHost, up);
    kernel_.run();
    EXPECT_TRUE(link_->rxAvailable(LinkDir::HostToCube));
    EXPECT_TRUE(link_->rxAvailable(LinkDir::CubeToHost));
    EXPECT_EQ(link_->packetsSent(LinkDir::HostToCube), 1u);
    EXPECT_EQ(link_->packetsSent(LinkDir::CubeToHost), 1u);
}

TEST_F(SerdesLinkTest, SerializationOccupiesLink)
{
    build();
    // Two 9-flit packets: the second's arrival is one serialization
    // window after the first.
    HmcPacketPtr a = makeWriteRequest(0, 128, 0);
    HmcPacketPtr b = makeWriteRequest(128, 128, 0);
    link_->reserveTokens(LinkDir::HostToCube, 18);
    link_->send(LinkDir::HostToCube, a);
    link_->send(LinkDir::HostToCube, b);
    kernel_.run();
    EXPECT_EQ(b->cubeArriveAt - a->cubeArriveAt,
              9 * link_->flitPeriod());
}

TEST_F(SerdesLinkTest, FifoOrderPreserved)
{
    build();
    HmcPacketPtr a = read128();
    HmcPacketPtr b = read128();
    link_->reserveTokens(LinkDir::HostToCube, 2);
    link_->send(LinkDir::HostToCube, a);
    link_->send(LinkDir::HostToCube, b);
    kernel_.run();
    EXPECT_EQ(link_->rxPop(LinkDir::HostToCube)->id, a->id);
    EXPECT_EQ(link_->rxPop(LinkDir::HostToCube)->id, b->id);
}

TEST_F(SerdesLinkTest, CrcRetryHealsButCosts)
{
    params_.crcErrorProb = 0.3;
    params_.retryDelay = 50000;
    build();
    int arrivals = 0;
    link_->setOnRxAvailable(LinkDir::HostToCube, [&] { ++arrivals; });
    for (int i = 0; i < 50; ++i) {
        HmcPacketPtr pkt = read128();
        link_->reserveTokens(LinkDir::HostToCube, 1);
        link_->send(LinkDir::HostToCube, pkt);
        kernel_.run();
        link_->rxPop(LinkDir::HostToCube);
        kernel_.run();
    }
    EXPECT_EQ(arrivals, 50);            // every packet delivered
    EXPECT_GT(link_->crcRetries(), 0u); // but some needed retries
}

TEST_F(SerdesLinkTest, SendWithoutReservationPanics)
{
    build();
    HmcPacketPtr pkt = read128();
    EXPECT_THROW(link_->send(LinkDir::HostToCube, pkt), PanicError);
}

TEST_F(SerdesLinkTest, RxPopEmptyPanics)
{
    build();
    EXPECT_THROW(link_->rxPop(LinkDir::HostToCube), PanicError);
    EXPECT_THROW(link_->rxPeek(LinkDir::CubeToHost), PanicError);
}

TEST_F(SerdesLinkTest, UtilizationReflectsTraffic)
{
    build();
    HmcPacketPtr pkt = makeWriteRequest(0, 128, 0);
    link_->reserveTokens(LinkDir::HostToCube, 9);
    link_->send(LinkDir::HostToCube, pkt);
    kernel_.run();
    const Tick window = kernel_.now();
    EXPECT_GT(link_->utilization(LinkDir::HostToCube, window), 0.0);
    EXPECT_DOUBLE_EQ(link_->utilization(LinkDir::CubeToHost, window), 0.0);
}

TEST_F(SerdesLinkTest, StatsBytesMatchFlits)
{
    build();
    HmcPacketPtr pkt = makeWriteRequest(0, 64, 0);  // 5 flits
    link_->reserveTokens(LinkDir::HostToCube, 5);
    link_->send(LinkDir::HostToCube, pkt);
    kernel_.run();
    EXPECT_EQ(link_->flitsSent(LinkDir::HostToCube), 5u);
    EXPECT_EQ(link_->bytesSent(LinkDir::HostToCube), 80u);
}

}  // namespace
}  // namespace hmcsim
