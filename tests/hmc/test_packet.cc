#include <gtest/gtest.h>

#include "common/log.h"
#include "hmc/packet.h"

namespace hmcsim {
namespace {

/** Table I of the paper, parameterized over payload sizes. */
class PacketTableI : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(PacketTableI, ReadRequestIsOneFlit)
{
    EXPECT_EQ(HmcPacket::flitsFor(HmcCmd::Read, GetParam()), 1u);
}

TEST_P(PacketTableI, WriteResponseIsOneFlit)
{
    EXPECT_EQ(HmcPacket::flitsFor(HmcCmd::WriteResponse, GetParam()), 1u);
}

TEST_P(PacketTableI, ReadResponseIsOverheadPlusData)
{
    const std::uint32_t bytes = GetParam();
    EXPECT_EQ(HmcPacket::flitsFor(HmcCmd::ReadResponse, bytes),
              1 + (bytes + 15) / 16);
}

TEST_P(PacketTableI, WriteRequestIsOverheadPlusData)
{
    const std::uint32_t bytes = GetParam();
    EXPECT_EQ(HmcPacket::flitsFor(HmcCmd::Write, bytes),
              1 + (bytes + 15) / 16);
}

TEST_P(PacketTableI, TotalSizeWithinSpecRange)
{
    // Table I: totals are 1 flit (no data) or 2..9 flits (with data).
    const std::uint32_t bytes = GetParam();
    const std::uint32_t with_data =
        HmcPacket::flitsFor(HmcCmd::ReadResponse, bytes);
    EXPECT_GE(with_data, 2u);
    EXPECT_LE(with_data, 9u);
}

INSTANTIATE_TEST_SUITE_P(PayloadSizes, PacketTableI,
                         ::testing::Values(16u, 32u, 48u, 64u, 80u, 96u,
                                           112u, 128u));

TEST(Packet, BandwidthEfficiencyFromPaper)
{
    // Section IV-A: 16 B responses are 16/(16+16) = 50% efficient,
    // 128 B responses are 128/(128+16) ~= 89%.
    HmcPacket p;
    p.cmd = HmcCmd::ReadResponse;
    p.dataBytes = 16;
    EXPECT_DOUBLE_EQ(16.0 / p.bytes(), 0.5);
    p.dataBytes = 128;
    EXPECT_NEAR(128.0 / p.bytes(), 0.89, 0.005);
}

TEST(Packet, FlowPacketIsOneFlit)
{
    EXPECT_EQ(HmcPacket::flitsFor(HmcCmd::Flow, 0), 1u);
}

TEST(Packet, RequestResponsePredicates)
{
    HmcPacket p;
    p.cmd = HmcCmd::Read;
    EXPECT_TRUE(p.isRequest());
    EXPECT_FALSE(p.isResponse());
    p.cmd = HmcCmd::ReadResponse;
    EXPECT_TRUE(p.isResponse());
    p.cmd = HmcCmd::Flow;
    EXPECT_FALSE(p.isRequest());
    EXPECT_FALSE(p.isResponse());
}

TEST(Packet, MakeReadRequest)
{
    const HmcPacketPtr p = makeReadRequest(0x1234, 64, 3);
    EXPECT_EQ(p->cmd, HmcCmd::Read);
    EXPECT_EQ(p->addr, 0x1234u);
    EXPECT_EQ(p->dataBytes, 64u);
    EXPECT_EQ(p->port, 3u);
    EXPECT_EQ(p->flits(), 1u);
    EXPECT_FALSE(p->hasData());
}

TEST(Packet, MakeWriteRequestCarriesData)
{
    const HmcPacketPtr p = makeWriteRequest(0x40, 32, 1);
    EXPECT_EQ(p->flits(), 3u);
    EXPECT_TRUE(p->hasData());
}

TEST(Packet, UniqueIds)
{
    const HmcPacketPtr a = makeReadRequest(0, 16, 0);
    const HmcPacketPtr b = makeReadRequest(0, 16, 0);
    EXPECT_NE(a->id, b->id);
}

TEST(Packet, ResponseMirrorsRequestIdentity)
{
    HmcPacketPtr req = makeReadRequest(0xABC0, 64, 5);
    req->tag = 17;
    req->link = 1;
    req->vault = 9;
    req->createdAt = 123;
    const HmcPacket resp = req->makeResponse();
    EXPECT_EQ(resp.cmd, HmcCmd::ReadResponse);
    EXPECT_EQ(resp.tag, 17u);
    EXPECT_EQ(resp.port, 5u);
    EXPECT_EQ(resp.link, 1u);
    EXPECT_EQ(resp.vault, 9u);
    EXPECT_EQ(resp.dataBytes, 64u);
    EXPECT_EQ(resp.createdAt, 123u);
    EXPECT_NE(resp.id, req->id);
}

TEST(Packet, WriteResponseHasNoData)
{
    HmcPacketPtr req = makeWriteRequest(0, 128, 0);
    const HmcPacket resp = req->makeResponse();
    EXPECT_EQ(resp.cmd, HmcCmd::WriteResponse);
    EXPECT_EQ(resp.flits(), 1u);
}

TEST(Packet, ResponseOfResponsePanics)
{
    HmcPacketPtr req = makeReadRequest(0, 16, 0);
    HmcPacket resp = req->makeResponse();
    EXPECT_THROW(resp.makeResponse(), PanicError);
}

TEST(Packet, PayloadSizeValidation)
{
    EXPECT_THROW(makeReadRequest(0, 0, 0), FatalError);
    EXPECT_THROW(makeReadRequest(0, 8, 0), FatalError);
    EXPECT_THROW(makeReadRequest(0, 256, 0), FatalError);
    EXPECT_NO_THROW(makeReadRequest(0, 128, 0));
}

TEST(Packet, CmdNames)
{
    EXPECT_EQ(toString(HmcCmd::Read), "READ");
    EXPECT_EQ(toString(HmcCmd::WriteResponse), "WR_RS");
    EXPECT_EQ(toString(HmcCmd::Flow), "FLOW");
}

}  // namespace
}  // namespace hmcsim
