/**
 * @file
 * Packet-pool tests: recycling really happens, the counters balance,
 * and toggling the pool with packets in flight is safe because each
 * shared_ptr's control block froze its pooling decision at allocation
 * time.
 */

#include <gtest/gtest.h>

#include <vector>

#include "hmc/packet.h"
#include "hmc/packet_pool.h"

namespace hmcsim {
namespace {

/** Restore the pool flag whatever a test does to it. */
class PoolGuard
{
  public:
    PoolGuard() : was_(packetPoolEnabled()) {}
    ~PoolGuard() { setPacketPoolEnabled(was_); }

  private:
    bool was_;
};

TEST(PacketPool, RawAcquireReleaseRecyclesLifo)
{
    PoolGuard guard;
    setPacketPoolEnabled(true);
    const std::size_t free0 = packetPoolFreeBlocks();
    const std::size_t live0 = packetPoolLiveBlocks();

    void *a = packetPoolAcquire(256, alignof(std::max_align_t));
    EXPECT_EQ(packetPoolLiveBlocks(), live0 + 1);
    packetPoolRelease(a, 256);
    EXPECT_EQ(packetPoolLiveBlocks(), live0);
    EXPECT_EQ(packetPoolFreeBlocks(), free0 + 1);

    // LIFO: the block just released comes straight back.
    void *b = packetPoolAcquire(256, alignof(std::max_align_t));
    EXPECT_EQ(b, a);
    EXPECT_EQ(packetPoolFreeBlocks(), free0);
    packetPoolRelease(b, 256);
}

TEST(PacketPool, PacketAllocationsRecycleMemory)
{
    PoolGuard guard;
    setPacketPoolEnabled(true);

    // Warm the bin, then drop the packet: its block must rest on the
    // freelist and feed the next allocation of the same size class.
    HmcPacketPtr p = makeReadRequest(0x1000, 32, 0);
    const HmcPacket *addr = p.get();
    const std::size_t live = packetPoolLiveBlocks();
    p.reset();
    EXPECT_EQ(packetPoolLiveBlocks(), live - 1);

    HmcPacketPtr q = makeReadRequest(0x2000, 32, 1);
    EXPECT_EQ(q.get(), addr);
    EXPECT_EQ(q->addr, 0x2000u);
    EXPECT_EQ(q->port, 1);
}

TEST(PacketPool, ResponsesComeFromThePool)
{
    PoolGuard guard;
    setPacketPoolEnabled(true);

    HmcPacketPtr req = makeReadRequest(0x4000, 64, 2);
    const std::size_t live = packetPoolLiveBlocks();
    HmcPacketPtr resp = req->makeResponsePtr();
    EXPECT_EQ(packetPoolLiveBlocks(), live + 1);
    EXPECT_EQ(resp->tag, req->tag);
    EXPECT_EQ(resp->port, req->port);
    resp.reset();
    EXPECT_EQ(packetPoolLiveBlocks(), live);
}

TEST(PacketPool, CountersBalanceUnderChurn)
{
    PoolGuard guard;
    setPacketPoolEnabled(true);
    const std::size_t live0 = packetPoolLiveBlocks();

    std::vector<HmcPacketPtr> pkts;
    for (int round = 0; round < 4; ++round) {
        for (int i = 0; i < 64; ++i)
            pkts.push_back(makeReadRequest(
                static_cast<Addr>(i) * 64, 32, 0));
        EXPECT_EQ(packetPoolLiveBlocks(), live0 + pkts.size());
        pkts.clear();
        EXPECT_EQ(packetPoolLiveBlocks(), live0);
    }
}

TEST(PacketPool, DisabledPoolBypassesFreelist)
{
    PoolGuard guard;
    setPacketPoolEnabled(false);
    const std::size_t free0 = packetPoolFreeBlocks();
    const std::size_t live0 = packetPoolLiveBlocks();

    HmcPacketPtr p = makeWriteRequest(0x8000, 128, 3);
    EXPECT_EQ(packetPoolLiveBlocks(), live0);
    p.reset();
    EXPECT_EQ(packetPoolFreeBlocks(), free0);
}

TEST(PacketPool, InFlightToggleIsSafe)
{
    PoolGuard guard;

    // Allocate pooled, disable the pool, then drop: the control block
    // remembers it was pooled and must return the block to the
    // freelist, not operator delete.
    setPacketPoolEnabled(true);
    HmcPacketPtr pooled = makeReadRequest(0x100, 32, 0);
    const std::size_t live = packetPoolLiveBlocks();
    setPacketPoolEnabled(false);
    const std::size_t free0 = packetPoolFreeBlocks();
    pooled.reset();
    EXPECT_EQ(packetPoolLiveBlocks(), live - 1);
    EXPECT_EQ(packetPoolFreeBlocks(), free0 + 1);

    // And the mirror image: allocated plain, enable, then drop --
    // must NOT land on the freelist.
    HmcPacketPtr plain = makeReadRequest(0x200, 32, 0);
    setPacketPoolEnabled(true);
    const std::size_t free1 = packetPoolFreeBlocks();
    const std::size_t live1 = packetPoolLiveBlocks();
    plain.reset();
    EXPECT_EQ(packetPoolFreeBlocks(), free1);
    EXPECT_EQ(packetPoolLiveBlocks(), live1);
}

TEST(PacketPool, AllocatorEqualityTracksPoolingDecision)
{
    PoolGuard guard;
    setPacketPoolEnabled(true);
    PacketPoolAllocator<HmcPacket> pooled;
    setPacketPoolEnabled(false);
    PacketPoolAllocator<HmcPacket> plain;
    EXPECT_TRUE(pooled != plain);
    EXPECT_TRUE(pooled == PacketPoolAllocator<int>(pooled));
}

}  // namespace
}  // namespace hmcsim
