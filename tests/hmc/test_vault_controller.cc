/**
 * @file
 * VaultController unit tests against a one-link/one-vault single-switch
 * NoC harness: request delivery, per-bank FIFO order, backpressure,
 * scheduler pacing, refresh, and the per-vault jitter knob.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/log.h"
#include "hmc/vault_controller.h"
#include "noc/topology.h"

namespace hmcsim {
namespace {

class RootComponent : public Component
{
  public:
    explicit RootComponent(Kernel &k) : Component(k, nullptr, "root") {}
};

/** One link endpoint (0) + one vault endpoint (1) on a single switch. */
class VaultControllerTest : public ::testing::Test
{
  protected:
    void
    build(VaultController::Params params = VaultController::Params{})
    {
        // Tear down any previous tree child-first: assigning root_
        // below would otherwise free the old root while net_/vc_
        // still unregister from it in their destructors.
        vc_.reset();
        net_.reset();
        root_.reset();
        cfg_ = HmcConfig{};
        map_ = std::make_unique<AddressMap>(cfg_);
        root_ = std::make_unique<RootComponent>(kernel_);
        RouterParams rp;
        net_ = std::make_unique<Network>(
            kernel_, root_.get(), "noc",
            makeSingleSwitchTopology(/*vaults=*/1, /*links=*/1), rp);
        vc_ = std::make_unique<VaultController>(
            kernel_, root_.get(), "vault0", 0, /*endpoint=*/1, *net_,
            *map_, DramTimingParams::hmcGen2(), 16, params);

        Network::EndpointOps vault_ops;
        vault_ops.tryReserve = [this](std::uint32_t flits) {
            return vc_->tryReserveInput(flits);
        };
        vault_ops.deliver = [this](const NocMessage &m) {
            vc_->deliverRequest(m);
        };
        vault_ops.onInjectSpace = [this] { vc_->onInjectSpace(); };
        net_->setEndpoint(1, std::move(vault_ops));

        Network::EndpointOps link_ops;
        link_ops.tryReserve = [](std::uint32_t) { return true; };
        link_ops.deliver = [this](const NocMessage &m) {
            responses_.push_back(
                std::static_pointer_cast<HmcPacket>(m.payload));
        };
        net_->setEndpoint(0, std::move(link_ops));
    }

    /** Inject a request for (bank, row) through the NoC. */
    HmcPacketPtr
    sendRead(BankId bank, RowId row, std::uint32_t bytes = 32)
    {
        DecodedAddr d;
        d.bank = bank;
        d.row = row;
        HmcPacketPtr pkt = makeReadRequest(map_->encode(d), bytes, 0);
        pkt->link = 0;
        NocMessage m;
        m.id = pkt->id;
        m.src = 0;
        m.dst = 1;
        m.flits = pkt->flits();
        m.payload = pkt;
        EXPECT_TRUE(net_->canInject(0, m.flits));
        net_->inject(0, m);
        return pkt;
    }

    Kernel kernel_;
    HmcConfig cfg_;
    std::unique_ptr<AddressMap> map_;
    std::unique_ptr<RootComponent> root_;
    std::unique_ptr<Network> net_;
    std::unique_ptr<VaultController> vc_;
    std::vector<HmcPacketPtr> responses_;
};

TEST_F(VaultControllerTest, ReadProducesMatchingResponse)
{
    build();
    const HmcPacketPtr req = sendRead(3, 17, 64);
    kernel_.run();
    ASSERT_EQ(responses_.size(), 1u);
    EXPECT_EQ(responses_[0]->cmd, HmcCmd::ReadResponse);
    EXPECT_EQ(responses_[0]->tag, req->tag);
    EXPECT_EQ(responses_[0]->dataBytes, 64u);
    EXPECT_EQ(vc_->requestsServed(), 1u);
    EXPECT_EQ(vc_->readBytes(), 64u);
}

TEST_F(VaultControllerTest, SameBankStaysFifo)
{
    build();
    std::vector<PacketId> ids;
    for (RowId r = 0; r < 12; ++r)
        ids.push_back(sendRead(2, r)->id);
    kernel_.run();
    ASSERT_EQ(responses_.size(), 12u);
    // Under per-bank FIFO the responses complete in issue order; the
    // row field of each response's address recovers that order.
    for (std::size_t i = 0; i < 12; ++i)
        EXPECT_EQ(map_->decode(responses_[i]->addr).row, i);
    (void)ids;
}

TEST_F(VaultControllerTest, BanksProceedInParallel)
{
    build();
    // One request per bank: total time must be far below 16 serial
    // row cycles thanks to bank-level parallelism (bus-paced instead).
    for (BankId b = 0; b < 16; ++b)
        sendRead(b, 1);
    kernel_.run();
    EXPECT_EQ(responses_.size(), 16u);
    const DramTimingParams t = DramTimingParams::hmcGen2();
    EXPECT_LT(kernel_.now(), 16 * t.tRC());
}

TEST_F(VaultControllerTest, SchedulerPacingBoundsThroughput)
{
    VaultController::Params p;
    p.requestCycle = 6400;
    build(p);
    for (int i = 0; i < 64; ++i)
        sendRead(i % 16, 100 + i / 16);
    kernel_.run();
    EXPECT_EQ(responses_.size(), 64u);
    // 64 plans at >= 6.4 ns apart.
    EXPECT_GE(kernel_.now(), 63u * 6400u);
}

TEST_F(VaultControllerTest, InputReservationIsBounded)
{
    VaultController::Params p;
    p.inputQueueFlits = 4;
    build(p);
    EXPECT_TRUE(vc_->tryReserveInput(3));
    EXPECT_FALSE(vc_->tryReserveInput(2));
    EXPECT_TRUE(vc_->tryReserveInput(1));
    EXPECT_FALSE(vc_->tryReserveInput(1));
}

TEST_F(VaultControllerTest, TinyResponseQueueStillDrainsEverything)
{
    VaultController::Params p;
    p.responseQueueFlits = 9;  // one max-size response at a time
    build(p);
    for (int i = 0; i < 40; ++i)
        sendRead(i % 16, i, 128);
    kernel_.run();
    EXPECT_EQ(responses_.size(), 40u);
    EXPECT_EQ(vc_->requestsServed(), 40u);
}

TEST_F(VaultControllerTest, WriteCountsWriteBytes)
{
    build();
    DecodedAddr d;
    d.bank = 1;
    HmcPacketPtr pkt = makeWriteRequest(map_->encode(d), 128, 0);
    pkt->link = 0;
    NocMessage m;
    m.id = pkt->id;
    m.src = 0;
    m.dst = 1;
    m.flits = pkt->flits();
    m.payload = pkt;
    net_->inject(0, m);
    kernel_.run();
    ASSERT_EQ(responses_.size(), 1u);
    EXPECT_EQ(responses_[0]->cmd, HmcCmd::WriteResponse);
    EXPECT_EQ(vc_->writeBytes(), 128u);
}

TEST_F(VaultControllerTest, RefreshFiresWhenEnabled)
{
    VaultController::Params p;
    p.trefi = 2 * kMicrosecond;
    build(p);
    // Keep traffic flowing for a while so refreshes interleave.
    for (int burst = 0; burst < 8; ++burst) {
        for (BankId b = 0; b < 16; ++b)
            sendRead(b, 1000 + burst);
        kernel_.run(kernel_.now() + 3 * kMicrosecond);
    }
    kernel_.run();
    EXPECT_GT(vc_->refreshesIssued(), 0u);
    EXPECT_EQ(responses_.size(), 8u * 16u);
}

TEST_F(VaultControllerTest, JitterDelaysCompletion)
{
    const auto completion_time = [this](Tick jitter) {
        // The kernel is shared across build() calls; measure duration.
        VaultController::Params p;
        p.jitterPerFlit = jitter;
        build(p);
        responses_.clear();
        const Tick start = kernel_.now();
        sendRead(0, 1, 128);  // 8 data flits
        kernel_.run();
        EXPECT_EQ(responses_.size(), 1u);
        return kernel_.now() - start;
    };
    const Tick plain = completion_time(0);
    const Tick jittered = completion_time(1000);  // 1 ns per flit
    EXPECT_EQ(jittered, plain + 8 * 1000);
}

TEST_F(VaultControllerTest, ServiceLatencyStatTracksVaultTime)
{
    build();
    sendRead(0, 1);
    kernel_.run();
    const double ns = vc_->serviceLatencyNs().mean();
    // Frontend (4 ns) + DRAM (~31 ns) + backend (2 ns), no queueing.
    EXPECT_GT(ns, 30.0);
    EXPECT_LT(ns, 90.0);
}

TEST_F(VaultControllerTest, NonRequestDeliveryPanics)
{
    build();
    HmcPacketPtr req = makeReadRequest(0, 32, 0);
    auto resp = std::make_shared<HmcPacket>(req->makeResponse());
    NocMessage m;
    m.src = 0;
    m.dst = 1;
    m.flits = resp->flits();
    m.payload = resp;
    EXPECT_THROW(vc_->deliverRequest(m), PanicError);
}

TEST_F(VaultControllerTest, PeakBankQueueTracked)
{
    build();
    for (RowId r = 0; r < 10; ++r)
        sendRead(0, r);  // all to one bank
    kernel_.run();
    EXPECT_GE(vc_->peakBankQueueOccupancy(), 5u);
}

}  // namespace
}  // namespace hmcsim
