#include <gtest/gtest.h>

#include <set>

#include "common/log.h"
#include "common/rng.h"
#include "hmc/address_map.h"

namespace hmcsim {
namespace {

class AddressMapTest : public ::testing::Test
{
  protected:
    AddressMapTest() : map_(cfg_) {}

    HmcConfig cfg_;     // defaults: 4 GB, 16 vaults, 16 banks, 128 B
    AddressMap map_;
};

TEST_F(AddressMapTest, FieldPositionsMatchSpecFig3)
{
    // 128 B blocks: offset [6:0], vault [10:7], bank [14:11].
    EXPECT_EQ(map_.offsetBits(), 7u);
    EXPECT_EQ(map_.vaultLow(), 7u);
    EXPECT_EQ(map_.vaultBits(), 4u);
    EXPECT_EQ(map_.bankLow(), 11u);
    EXPECT_EQ(map_.bankBits(), 4u);
    EXPECT_EQ(map_.addrBits(), 32u);
}

TEST_F(AddressMapTest, SequentialBlocksStripeAcrossVaults)
{
    // Low-order interleave: consecutive 128 B blocks visit all 16
    // vaults before reusing one (the paper's Fig. 3 behaviour).
    std::set<VaultId> vaults;
    for (Addr block = 0; block < 16; ++block)
        vaults.insert(map_.decode(block * 128).vault);
    EXPECT_EQ(vaults.size(), 16u);
}

TEST_F(AddressMapTest, OsPageTouchesTwoBanksPerVault)
{
    // A 4 KB page = 32 blocks of 128 B: all 16 vaults, 2 banks each.
    std::set<std::pair<VaultId, BankId>> spots;
    for (Addr a = 0; a < 4096; a += 128) {
        const DecodedAddr d = map_.decode(a);
        spots.insert({d.vault, d.bank});
    }
    EXPECT_EQ(spots.size(), 32u);  // 16 vaults x 2 banks
    std::set<BankId> banks;
    for (const auto &[v, b] : spots)
        banks.insert(b);
    EXPECT_EQ(banks.size(), 2u);
}

TEST_F(AddressMapTest, QuadrantDerivation)
{
    for (VaultId v = 0; v < 16; ++v) {
        DecodedAddr d;
        d.vault = v;
        const DecodedAddr out = map_.decode(map_.encode(d));
        EXPECT_EQ(out.quadrant, v / 4);
        EXPECT_EQ(out.vaultInQuad, v % 4);
    }
}

TEST_F(AddressMapTest, EncodeDecodeRoundTrip)
{
    Rng rng(7);
    for (int i = 0; i < 2000; ++i) {
        const Addr a = rng.next() & (cfg_.capacityBytes - 1);
        const DecodedAddr d = map_.decode(a);
        EXPECT_EQ(map_.encode(d), a) << "addr 0x" << std::hex << a;
    }
}

TEST_F(AddressMapTest, RowChangesEvery256Bytes)
{
    // Within one bank: blocks 0 and 1 of a row share it, block 2 is
    // the next row (256 B rows, 128 B blocks).
    DecodedAddr d;
    d.vault = 3;
    d.bank = 5;
    d.row = 10;
    const Addr base = map_.encode(d);
    const DecodedAddr same = map_.decode(base);
    EXPECT_EQ(same.row, 10u);
}

TEST_F(AddressMapTest, DecodeBeyondCapacityPanics)
{
    EXPECT_THROW(map_.decode(cfg_.capacityBytes), PanicError);
}

TEST_F(AddressMapTest, PatternConfinesVaultsAndBanks)
{
    Rng rng(11);
    const AddressPattern p = map_.pattern(4, 2, 8, 4);
    std::set<VaultId> vaults;
    std::set<BankId> banks;
    for (int i = 0; i < 5000; ++i) {
        const Addr a = p.apply(rng.next() & (cfg_.capacityBytes - 1));
        const DecodedAddr d = map_.decode(a);
        vaults.insert(d.vault);
        banks.insert(d.bank);
    }
    EXPECT_EQ(vaults.size(), 4u);
    for (VaultId v : vaults) {
        EXPECT_GE(v, 8u);
        EXPECT_LT(v, 12u);
    }
    EXPECT_EQ(banks.size(), 2u);
    for (BankId b : banks) {
        EXPECT_GE(b, 4u);
        EXPECT_LT(b, 6u);
    }
}

TEST_F(AddressMapTest, FullPatternReachesEverything)
{
    Rng rng(13);
    const AddressPattern p = map_.pattern(16, 16);
    std::set<std::pair<VaultId, BankId>> spots;
    for (int i = 0; i < 20000; ++i) {
        const DecodedAddr d =
            map_.decode(p.apply(rng.next() & (cfg_.capacityBytes - 1)));
        spots.insert({d.vault, d.bank});
    }
    EXPECT_EQ(spots.size(), 256u);
}

TEST_F(AddressMapTest, SingleBankPattern)
{
    Rng rng(17);
    const AddressPattern p = map_.pattern(1, 1);
    for (int i = 0; i < 1000; ++i) {
        const DecodedAddr d =
            map_.decode(p.apply(rng.next() & (cfg_.capacityBytes - 1)));
        EXPECT_EQ(d.vault, 0u);
        EXPECT_EQ(d.bank, 0u);
    }
}

TEST_F(AddressMapTest, VaultPattern)
{
    Rng rng(19);
    const AddressPattern p = map_.vaultPattern(13);
    std::set<BankId> banks;
    for (int i = 0; i < 5000; ++i) {
        const DecodedAddr d =
            map_.decode(p.apply(rng.next() & (cfg_.capacityBytes - 1)));
        EXPECT_EQ(d.vault, 13u);
        banks.insert(d.bank);
    }
    EXPECT_EQ(banks.size(), 16u);
}

TEST_F(AddressMapTest, PatternValidation)
{
    EXPECT_THROW(map_.pattern(3, 1), FatalError);    // not pow2
    EXPECT_THROW(map_.pattern(32, 1), FatalError);   // too many
    EXPECT_THROW(map_.pattern(4, 1, 2), FatalError); // misaligned base
    EXPECT_THROW(map_.vaultPattern(16), FatalError);
}

TEST_F(AddressMapTest, BankThenVaultScheme)
{
    HmcConfig cfg;
    cfg.mapScheme = "bank_then_vault";
    const AddressMap map(cfg);
    // Consecutive blocks now stripe across banks of vault 0 first.
    std::set<VaultId> vaults;
    std::set<BankId> banks;
    for (Addr block = 0; block < 16; ++block) {
        const DecodedAddr d = map.decode(block * 128);
        vaults.insert(d.vault);
        banks.insert(d.bank);
    }
    EXPECT_EQ(vaults.size(), 1u);
    EXPECT_EQ(banks.size(), 16u);
}

TEST_F(AddressMapTest, ToAccessFillsFields)
{
    const DramAccess a = map_.toAccess(0x12345680, 64, true);
    EXPECT_TRUE(a.isWrite);
    EXPECT_EQ(a.bytes, 64u);
    const DecodedAddr d = map_.decode(0x12345680);
    EXPECT_EQ(a.bank, d.bank);
    EXPECT_EQ(a.row, d.row);
    EXPECT_EQ(a.col, d.col);
}

}  // namespace
}  // namespace hmcsim
