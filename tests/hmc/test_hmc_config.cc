#include <gtest/gtest.h>

#include "common/log.h"
#include "hmc/hmc_config.h"

namespace hmcsim {
namespace {

TEST(HmcConfig, DefaultsMatchPaperHardware)
{
    const HmcConfig c;
    EXPECT_EQ(c.numVaults, 16u);
    EXPECT_EQ(c.numQuadrants, 4u);
    EXPECT_EQ(c.numBanksPerVault, 16u);
    EXPECT_EQ(c.capacityBytes, 4ull << 30);
    EXPECT_EQ(c.numLinks, 2u);
    EXPECT_EQ(c.lanesPerLink, 8u);   // half width
    EXPECT_DOUBLE_EQ(c.linkGbps, 15.0);
    EXPECT_NO_THROW(c.validate());
}

TEST(HmcConfig, Equation1PeakBandwidth)
{
    const HmcConfig c;
    // BW = 2 links x 8 lanes x 15 Gb/s x 2 duplex = 60 GB/s.
    EXPECT_DOUBLE_EQ(c.peakBandwidthGBs(), 60.0);
    EXPECT_DOUBLE_EQ(c.linkBandwidthGBsPerDirection(), 30.0);
}

TEST(HmcConfig, DerivedGeometry)
{
    const HmcConfig c;
    EXPECT_EQ(c.vaultsPerQuadrant(), 4u);
    EXPECT_EQ(c.vaultBytes(), 256ull << 20);  // 256 MB per vault
    EXPECT_EQ(c.bankBytes(), 16ull << 20);    // 16 MB per bank
}

TEST(HmcConfig, FromConfigOverrides)
{
    Config cfg;
    cfg.parseString("[hmc]\n"
                    "num_vaults = 8\n"
                    "num_quadrants = 2\n"
                    "capacity_bytes = 2147483648\n"
                    "link_gbps = 10\n"
                    "topology = quadrant_ring\n"
                    "scheduler = frfcfs\n"
                    "page_policy = open\n");
    const HmcConfig c = HmcConfig::fromConfig(cfg);
    EXPECT_EQ(c.numVaults, 8u);
    EXPECT_DOUBLE_EQ(c.linkGbps, 10.0);
    EXPECT_EQ(c.topology, "quadrant_ring");
    EXPECT_EQ(schedulerFromString(c.scheduler), SchedulerKind::FrFcfs);
    EXPECT_EQ(pagePolicyFromString(c.pagePolicy), PagePolicy::Open);
}

TEST(HmcConfig, RoundTripThroughConfig)
{
    HmcConfig a;
    a.numVaults = 8;
    a.numQuadrants = 2;
    a.linkGbps = 12.5;
    a.scheduler = "frfcfs";
    Config cfg;
    a.toConfig(cfg);
    const HmcConfig b = HmcConfig::fromConfig(cfg);
    EXPECT_EQ(b.numVaults, a.numVaults);
    EXPECT_DOUBLE_EQ(b.linkGbps, a.linkGbps);
    EXPECT_EQ(b.scheduler, a.scheduler);
}

TEST(HmcConfig, ValidationRejectsBadGeometry)
{
    HmcConfig c;
    c.numVaults = 12;  // not a power of two
    EXPECT_THROW(c.validate(), FatalError);

    c = HmcConfig{};
    c.numQuadrants = 3;
    EXPECT_THROW(c.validate(), FatalError);

    c = HmcConfig{};
    c.blockBytes = 100;
    EXPECT_THROW(c.validate(), FatalError);

    c = HmcConfig{};
    c.rowBytes = 64;  // smaller than block
    EXPECT_THROW(c.validate(), FatalError);

    c = HmcConfig{};
    c.numLinks = 0;
    EXPECT_THROW(c.validate(), FatalError);

    c = HmcConfig{};
    c.crcErrorProb = 1.5;
    EXPECT_THROW(c.validate(), FatalError);

    c = HmcConfig{};
    c.mapScheme = "diagonal";
    EXPECT_THROW(c.validate(), FatalError);

    c = HmcConfig{};
    c.scheduler = "magic";
    EXPECT_THROW(c.validate(), FatalError);

    c = HmcConfig{};
    c.linkTokens = 8;  // cannot hold a max packet
    EXPECT_THROW(c.validate(), FatalError);
}

TEST(HmcConfig, EnumStringRoundTrip)
{
    EXPECT_EQ(toString(SchedulerKind::Fifo), "fifo");
    EXPECT_EQ(toString(SchedulerKind::FrFcfs), "frfcfs");
    EXPECT_EQ(toString(PagePolicy::Closed), "closed");
    EXPECT_EQ(toString(PagePolicy::Open), "open");
    EXPECT_THROW(schedulerFromString("nope"), FatalError);
    EXPECT_THROW(pagePolicyFromString("nope"), FatalError);
}

TEST(HmcConfig, DramTimingHonoursPresetAndTrefi)
{
    HmcConfig c;
    c.trefi = 7800000;
    const DramTimingParams p = c.dramTiming();
    EXPECT_EQ(p.tREFI, 7800000u);
    c.dramPreset = "unknown";
    EXPECT_THROW(c.dramTiming(), FatalError);
}

TEST(HmcConfig, HalfGigCubeIsValid)
{
    HmcConfig c;
    c.capacityBytes = 512ull << 20;
    EXPECT_NO_THROW(c.validate());
    EXPECT_EQ(c.vaultBytes(), 32ull << 20);
}

}  // namespace
}  // namespace hmcsim
