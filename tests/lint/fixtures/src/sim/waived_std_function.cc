// Fixture: properly waived findings must be suppressed.
#include <functional>

namespace fixture {

struct RunLoop {
    // hmcsim-lint: allow(std-function) one predicate per run, cold path
    std::function<bool()> predicate;

    std::function<void()> hook;  // hmcsim-lint: allow(std-function) test-only hook
};

}  // namespace fixture
