// Fixture: std::function on a sim hot path must be flagged.
#include <functional>

namespace fixture {

struct Scheduler {
    std::function<void()> callback;  // line 7: std-function
};

}  // namespace fixture
