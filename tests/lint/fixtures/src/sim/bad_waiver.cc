// Fixture: a waiver without a reason is itself a finding.
#include <functional>

namespace fixture {

struct Loop {
    // hmcsim-lint: allow(std-function)
    std::function<void()> hook;
};

}  // namespace fixture
