// Fixture: wall-clock reads outside src/obs/ are forbidden.
#include <chrono>

namespace fixture {

long
stamp()
{
    const auto t = std::chrono::system_clock::now();  // line 9: wall-clock
    return t.time_since_epoch().count();
}

}  // namespace fixture
