// Fixture: libc / std random sources are forbidden everywhere.
#include <cstdlib>
#include <random>

namespace fixture {

int
roll()
{
    std::random_device rd;  // line 10: rng
    return rand() % 6 + static_cast<int>(rd() % 1);  // line 11: rng
}

}  // namespace fixture
