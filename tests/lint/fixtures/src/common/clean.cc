// Fixture: mentions of forbidden constructs inside comments and string
// literals must NOT be flagged.  rand() and std::random_device in this
// comment are fine, as is std::chrono::system_clock.
#include <string>

namespace fixture {

/* Block comment mentioning new HmcPacket and std::function<void()>,
 * still fine. */
std::string
describe()
{
    std::string s = "call rand() or std::random_device via "
                    "std::chrono::system_clock::now()";
    s += "for (auto &kv : perVault)";  // iterating in a string is fine
    const char *raw = R"(time(NULL) and new HmcPacket in a raw string)";
    s += raw;
    return s;
}

}  // namespace fixture
