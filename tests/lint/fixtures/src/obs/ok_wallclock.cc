// Fixture: src/obs/ may read wall clocks (self-profiling measures
// host time by design) -- nothing here may be flagged.
#include <chrono>

namespace fixture {

double
elapsedSeconds(std::chrono::steady_clock::time_point t0)
{
    const auto dt = std::chrono::steady_clock::now() - t0;
    return std::chrono::duration<double>(dt).count();
}

}  // namespace fixture
