// Fixture: HmcPacket allocated outside the pool-backed factory.
#include <memory>

namespace fixture {

struct HmcPacket {
    int x = 0;
};

HmcPacket *
leak()
{
    return new HmcPacket();  // line 13: naked-packet-new
}

std::shared_ptr<HmcPacket>
unpooled()
{
    return std::make_shared<HmcPacket>();  // line 19: naked-packet-new
}

}  // namespace fixture
