// Fixture: iterating an unordered container in an order-sensitive dir.
#include <cstdint>
#include <unordered_map>

namespace fixture {

struct Stats {
    std::unordered_map<int, std::uint64_t> perVault;

    std::uint64_t
    total() const
    {
        std::uint64_t sum = 0;
        for (const auto &kv : perVault)  // line 14: unordered-iter
            sum += kv.second;
        return sum;
    }
};

}  // namespace fixture
