#!/usr/bin/env python3
"""Regression tests for scripts/lint/determinism_lint.py.

Drives the linter as a subprocess against the checked-in fixture tree
(tests/lint/fixtures/src mirrors the real src/ layout so the
path-scoped rules fire) and asserts the exact findings, waiver
handling, and shrink-only baseline semantics.  Registered as a ctest
(lint_determinism) so the linter itself is under the same regression
gate as the simulator.
"""

import os
import subprocess
import sys
import tempfile
import unittest

REPO = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
LINTER = os.path.join(REPO, "scripts", "lint", "determinism_lint.py")
FIXTURES = os.path.join(REPO, "tests", "lint", "fixtures", "src")

# Every finding the fixture tree must produce: (rule, path, line).
EXPECTED = {
    ("rng", "src/common/bad_rng.cc", 10),
    ("rng", "src/common/bad_rng.cc", 11),
    ("wall-clock", "src/common/bad_wallclock.cc", 9),
    ("naked-packet-new", "src/hmc/bad_packet_new.cc", 13),
    ("naked-packet-new", "src/hmc/bad_packet_new.cc", 19),
    ("unordered-iter", "src/hmc/bad_unordered.cc", 14),
    ("std-function", "src/sim/bad_std_function.cc", 7),
    ("std-function", "src/sim/bad_waiver.cc", 8),
    ("waiver", "src/sim/bad_waiver.cc", 7),
}

# Fixture files that must stay silent.
CLEAN_FILES = {
    "src/common/clean.cc",
    "src/obs/ok_wallclock.cc",
    "src/sim/waived_std_function.cc",
}


def run_linter(*extra):
    """Run the linter on the fixture tree; return (exit, stdout)."""
    proc = subprocess.run(
        [sys.executable, LINTER, "--engine", "regex", "--src", FIXTURES,
         *extra],
        capture_output=True, text=True, cwd=REPO, check=False)
    return proc.returncode, proc.stdout


def parse_findings(stdout):
    found = set()
    for line in stdout.splitlines():
        if line.startswith("determinism_lint:"):
            continue
        loc, rest = line.split(": [", 1)
        rule = rest.split("]", 1)[0]
        if rule == "baseline":
            continue
        path, lineno = loc.rsplit(":", 1)
        found.add((rule, path, int(lineno)))
    return found


class FindingsTest(unittest.TestCase):
    def test_exact_findings(self):
        code, out = run_linter("--no-baseline")
        self.assertEqual(code, 1, out)
        self.assertEqual(parse_findings(out), EXPECTED)

    def test_clean_files_stay_silent(self):
        _code, out = run_linter("--no-baseline")
        for path in CLEAN_FILES:
            self.assertNotIn(path, out)

    def test_explicit_file_list(self):
        bad = os.path.join(FIXTURES, "common", "bad_rng.cc")
        proc = subprocess.run(
            [sys.executable, LINTER, "--engine", "regex", "--src",
             FIXTURES, "--no-baseline", bad],
            capture_output=True, text=True, cwd=REPO, check=False)
        self.assertEqual(proc.returncode, 1)
        found = parse_findings(proc.stdout)
        self.assertEqual({f[0] for f in found}, {"rng"})


class BaselineTest(unittest.TestCase):
    def setUp(self):
        fd, self.baseline = tempfile.mkstemp(suffix=".txt")
        os.close(fd)

    def tearDown(self):
        os.unlink(self.baseline)

    def test_write_then_pass(self):
        code, out = run_linter("--baseline", self.baseline,
                               "--write-baseline")
        self.assertEqual(code, 0, out)
        code, out = run_linter("--baseline", self.baseline)
        # The reasonless waiver is never baselineable, so the run still
        # fails -- but only with the waiver problem, no rule findings.
        self.assertEqual(code, 1, out)
        found = parse_findings(out)
        self.assertEqual({f[0] for f in found}, {"waiver"})

    def test_baselined_rules_suppressed(self):
        run_linter("--baseline", self.baseline, "--write-baseline")
        with open(self.baseline, encoding="utf-8") as fh:
            entries = [l for l in fh
                       if l.strip() and not l.startswith("#")]
        # One entry per (rule, file) pair with a real rule.
        self.assertEqual(len(entries), 6)
        for entry in entries:
            rule, path = entry.rstrip("\n").split("\t")
            self.assertIn(rule, ("wall-clock", "rng", "unordered-iter",
                                 "std-function", "naked-packet-new"))
            self.assertTrue(path.startswith("src/"))

    def test_new_finding_beyond_baseline_fails(self):
        # Baseline everything except the rng file -> rng must fail.
        run_linter("--baseline", self.baseline, "--write-baseline")
        with open(self.baseline, encoding="utf-8") as fh:
            kept = [l for l in fh if "bad_rng" not in l]
        with open(self.baseline, "w", encoding="utf-8") as fh:
            fh.writelines(kept)
        code, out = run_linter("--baseline", self.baseline)
        self.assertEqual(code, 1)
        self.assertIn("bad_rng.cc", out)

    def test_stale_entry_fails_shrink_only(self):
        run_linter("--baseline", self.baseline, "--write-baseline")
        with open(self.baseline, "a", encoding="utf-8") as fh:
            fh.write("rng\tsrc/common/no_longer_exists.cc\n")
        code, out = run_linter("--baseline", self.baseline)
        self.assertEqual(code, 1)
        self.assertIn("stale", out)
        self.assertIn("no_longer_exists.cc", out)


class RealTreeTest(unittest.TestCase):
    def test_real_src_is_clean(self):
        """The actual simulator tree must lint clean against its
        checked-in baseline -- this is the same invocation CI runs."""
        proc = subprocess.run(
            [sys.executable, LINTER, "--engine", "regex"],
            capture_output=True, text=True, cwd=REPO, check=False)
        self.assertEqual(proc.returncode, 0,
                         proc.stdout + proc.stderr)


if __name__ == "__main__":
    unittest.main(verbosity=2)
