#include <gtest/gtest.h>

#include "common/log.h"
#include "common/types.h"
#include "host/monitor.h"

namespace hmcsim {
namespace {

TEST(Monitor, RecordsReadLatency)
{
    Monitor m(0.0);
    m.recordRead(0, 1000 * kNanosecond, 160);
    EXPECT_EQ(m.reads(), 1u);
    EXPECT_EQ(m.writes(), 0u);
    EXPECT_DOUBLE_EQ(m.readLatencyNs().mean(), 1000.0);
    EXPECT_EQ(m.wireBytes(), 160u);
}

TEST(Monitor, BaseLatencyAdded)
{
    Monitor m(547.0);
    m.recordRead(0, 100 * kNanosecond, 48);
    EXPECT_DOUBLE_EQ(m.readLatencyNs().mean(), 647.0);
    EXPECT_DOUBLE_EQ(m.baseLatencyNs(), 547.0);
}

TEST(Monitor, WritesTrackedSeparately)
{
    Monitor m(0.0);
    m.recordWrite(0, 500 * kNanosecond, 160);
    m.recordRead(0, 100 * kNanosecond, 48);
    EXPECT_EQ(m.accesses(), 2u);
    EXPECT_DOUBLE_EQ(m.writeLatencyNs().mean(), 500.0);
    EXPECT_DOUBLE_EQ(m.readLatencyNs().mean(), 100.0);
    EXPECT_EQ(m.wireBytes(), 208u);
}

TEST(Monitor, MinMaxTracked)
{
    Monitor m(0.0);
    m.recordRead(0, 100 * kNanosecond, 1);
    m.recordRead(0, 300 * kNanosecond, 1);
    m.recordRead(0, 200 * kNanosecond, 1);
    EXPECT_DOUBLE_EQ(m.readLatencyNs().min(), 100.0);
    EXPECT_DOUBLE_EQ(m.readLatencyNs().max(), 300.0);
}

TEST(Monitor, HistogramCollectsReads)
{
    Monitor m(0.0);
    m.enableHistogram(0.0, 1000.0, 10);
    m.recordRead(0, 150 * kNanosecond, 1);
    m.recordRead(0, 250 * kNanosecond, 1);
    ASSERT_NE(m.histogram(), nullptr);
    EXPECT_EQ(m.histogram()->total(), 2u);
    EXPECT_EQ(m.histogram()->count(1), 1u);
    EXPECT_EQ(m.histogram()->count(2), 1u);
}

TEST(Monitor, HistogramIncludesBaseLatency)
{
    Monitor m(500.0);
    m.enableHistogram(0.0, 1000.0, 2);
    m.recordRead(0, 100 * kNanosecond, 1);  // 600 ns with base
    EXPECT_EQ(m.histogram()->count(1), 1u);
}

TEST(Monitor, ResetClearsEverything)
{
    Monitor m(0.0);
    m.enableHistogram(0.0, 1000.0, 4);
    m.recordRead(0, 100 * kNanosecond, 64);
    m.reset();
    EXPECT_EQ(m.reads(), 0u);
    EXPECT_EQ(m.wireBytes(), 0u);
    EXPECT_EQ(m.readLatencyNs().count(), 0u);
    EXPECT_EQ(m.histogram()->total(), 0u);
}

TEST(Monitor, CompletionBeforeCreationPanics)
{
    Monitor m(0.0);
    EXPECT_THROW(m.recordRead(100, 50, 1), PanicError);
}

}  // namespace
}  // namespace hmcsim
