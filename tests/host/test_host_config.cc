#include <gtest/gtest.h>

#include "common/log.h"
#include "host/host_config.h"

namespace hmcsim {
namespace {

TEST(HostConfig, DefaultsMatchAc510)
{
    const HostConfig c;
    EXPECT_DOUBLE_EQ(c.fpgaMhz, 187.5);
    EXPECT_EQ(c.numPorts, 9u);  // the firmware's nine ports
    EXPECT_NO_THROW(c.validate());
}

TEST(HostConfig, FromConfigOverrides)
{
    Config cfg;
    cfg.parseString("[host]\n"
                    "num_ports = 4\n"
                    "tags_per_port = 8\n"
                    "fixed_latency_ns = 0\n"
                    "stream_window = 10\n");
    const HostConfig c = HostConfig::fromConfig(cfg);
    EXPECT_EQ(c.numPorts, 4u);
    EXPECT_EQ(c.tagsPerPort, 8u);
    EXPECT_DOUBLE_EQ(c.fixedLatencyNs, 0.0);
    EXPECT_EQ(c.streamWindow, 10u);
}

TEST(HostConfig, RoundTrip)
{
    HostConfig a;
    a.numPorts = 5;
    a.deserializerFlitsPerCycle = 9;
    a.seed = 777;
    Config cfg;
    a.toConfig(cfg);
    const HostConfig b = HostConfig::fromConfig(cfg);
    EXPECT_EQ(b.numPorts, 5u);
    EXPECT_EQ(b.deserializerFlitsPerCycle, 9u);
    EXPECT_EQ(b.seed, 777u);
}

TEST(HostConfig, ValidationRejectsNonsense)
{
    HostConfig c;
    c.fpgaMhz = 0.0;
    EXPECT_THROW(c.validate(), FatalError);

    c = HostConfig{};
    c.numPorts = 0;
    EXPECT_THROW(c.validate(), FatalError);

    c = HostConfig{};
    c.tagsPerPort = 0;
    EXPECT_THROW(c.validate(), FatalError);

    c = HostConfig{};
    c.deserializerFlitBudgetCap = 8;  // below one max packet
    EXPECT_THROW(c.validate(), FatalError);

    c = HostConfig{};
    c.fixedLatencyNs = -1.0;
    EXPECT_THROW(c.validate(), FatalError);

    c = HostConfig{};
    c.streamWindow = 0;
    EXPECT_THROW(c.validate(), FatalError);
}

TEST(HostConfig, FromConfigValidates)
{
    Config cfg;
    cfg.set("host.num_ports", "0");
    EXPECT_THROW(HostConfig::fromConfig(cfg), FatalError);
}

}  // namespace
}  // namespace hmcsim
