#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "common/log.h"
#include "host/trace.h"

namespace hmcsim {
namespace {

TEST(Trace, ParseText)
{
    const Trace t = parseTraceText("# comment\n"
                                   "R 1000 32\n"
                                   "W 2000 64 10\n"
                                   "r 40 16\n");
    ASSERT_EQ(t.size(), 3u);
    EXPECT_EQ(t[0].addr, 0x1000u);
    EXPECT_EQ(t[0].bytes, 32u);
    EXPECT_FALSE(t[0].isWrite);
    EXPECT_EQ(t[0].delayNs, 0u);
    EXPECT_TRUE(t[1].isWrite);
    EXPECT_EQ(t[1].delayNs, 10u);
    EXPECT_EQ(t[2].addr, 0x40u);
}

TEST(Trace, ParseErrors)
{
    EXPECT_THROW(parseTraceText("X 10 32\n"), FatalError);
    EXPECT_THROW(parseTraceText("R 10\n"), FatalError);
    EXPECT_THROW(parseTraceText("R zz 32\n"), FatalError);
    EXPECT_THROW(parseTraceText("R 10 32 5 extra\n"), FatalError);
}

TEST(Trace, TextRoundTrip)
{
    Trace t;
    t.push_back({0xDEAD00, 128, false, 0});
    t.push_back({0xBEEF00, 16, true, 42});
    const Trace back = parseTraceText(traceToText(t));
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].addr, t[0].addr);
    EXPECT_EQ(back[1].bytes, t[1].bytes);
    EXPECT_EQ(back[1].isWrite, t[1].isWrite);
    EXPECT_EQ(back[1].delayNs, t[1].delayNs);
}

class TraceFileTest : public ::testing::Test
{
  protected:
    void TearDown() override { std::remove(path_.c_str()); }
    std::string path_ = "/tmp/hmcsim_trace_test.bin";
};

TEST_F(TraceFileTest, BinaryRoundTrip)
{
    Trace t;
    for (int i = 0; i < 100; ++i)
        t.push_back({static_cast<Addr>(i) * 128, 64, i % 3 == 0,
                     static_cast<std::uint32_t>(i)});
    saveTraceBinary(path_, t);
    const Trace back = loadTraceFile(path_);
    ASSERT_EQ(back.size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(back[i].addr, t[i].addr);
        EXPECT_EQ(back[i].bytes, t[i].bytes);
        EXPECT_EQ(back[i].isWrite, t[i].isWrite);
        EXPECT_EQ(back[i].delayNs, t[i].delayNs);
    }
}

TEST_F(TraceFileTest, TextFileAutodetected)
{
    Trace t;
    t.push_back({0x80, 32, false, 0});
    saveTraceText(path_, t);
    const Trace back = loadTraceFile(path_);
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back[0].addr, 0x80u);
}

TEST_F(TraceFileTest, MissingFileIsFatal)
{
    EXPECT_THROW(loadTraceFile("/nonexistent/file.trc"), FatalError);
}

TEST(TraceGen, StreamTrace)
{
    const Trace t = makeStreamTrace(0x1000, 10, 64, 128);
    ASSERT_EQ(t.size(), 10u);
    EXPECT_EQ(t[0].addr, 0x1000u);
    EXPECT_EQ(t[1].addr, 0x1080u);
    EXPECT_EQ(t[9].addr, 0x1000u + 9 * 128);
    for (const auto &r : t)
        EXPECT_FALSE(r.isWrite);
}

TEST(TraceGen, RandomTraceRespectsPattern)
{
    Rng rng(5);
    // Confine to low 1 MB.
    const AddressPattern p{0xFFFFF, 0};
    const Trace t = makeRandomTrace(rng, p, 4ull << 30, 500, 32);
    ASSERT_EQ(t.size(), 500u);
    for (const auto &r : t) {
        EXPECT_LT(r.addr, 1u << 20);
        EXPECT_EQ(r.addr % 32, 0u);
        EXPECT_FALSE(r.isWrite);
    }
}

TEST(TraceGen, RandomTraceWriteFraction)
{
    Rng rng(6);
    const AddressPattern p{0xFFFFF, 0};
    const Trace t = makeRandomTrace(rng, p, 4ull << 30, 2000, 32, 0.5);
    int writes = 0;
    for (const auto &r : t)
        writes += r.isWrite;
    EXPECT_NEAR(writes, 1000, 120);
}

TEST(TraceGen, PointerChaseStaysInSpan)
{
    Rng rng(7);
    const Trace t = makePointerChaseTrace(rng, 0x100000, 1 << 16, 300, 64);
    ASSERT_EQ(t.size(), 300u);
    std::set<Addr> unique;
    for (const auto &r : t) {
        EXPECT_GE(r.addr, 0x100000u);
        EXPECT_LT(r.addr, 0x100000u + (1 << 16));
        EXPECT_EQ((r.addr - 0x100000) % 64, 0u);
        unique.insert(r.addr);
    }
    EXPECT_GT(unique.size(), 100u);  // actually walks around
}

TEST(TraceGen, PointerChaseTooSmallSpanIsFatal)
{
    Rng rng(8);
    EXPECT_THROW(makePointerChaseTrace(rng, 0, 32, 10, 64), FatalError);
}

}  // namespace
}  // namespace hmcsim
