#include <gtest/gtest.h>

#include <set>

#include "common/log.h"
#include "host/tag_pool.h"

namespace hmcsim {
namespace {

TEST(TagPool, StartsFull)
{
    TagPool p(40);
    EXPECT_EQ(p.capacity(), 40u);
    EXPECT_EQ(p.freeCount(), 40u);
    EXPECT_TRUE(p.hasFree());
}

TEST(TagPool, AcquireAllUnique)
{
    TagPool p(16);
    std::set<TagId> tags;
    while (p.hasFree())
        tags.insert(p.acquire());
    EXPECT_EQ(tags.size(), 16u);
    EXPECT_EQ(p.inUse(), 16u);
    for (TagId t : tags)
        EXPECT_LT(t, 16u);
}

TEST(TagPool, ReleaseRecycles)
{
    TagPool p(2);
    const TagId a = p.acquire();
    const TagId b = p.acquire();
    EXPECT_FALSE(p.hasFree());
    p.release(a);
    EXPECT_TRUE(p.hasFree());
    const TagId c = p.acquire();
    EXPECT_EQ(c, a);  // LIFO free list
    (void)b;
}

TEST(TagPool, IsAcquired)
{
    TagPool p(4);
    const TagId t = p.acquire();
    EXPECT_TRUE(p.isAcquired(t));
    p.release(t);
    EXPECT_FALSE(p.isAcquired(t));
    EXPECT_FALSE(p.isAcquired(99));
}

TEST(TagPool, PeakTracksHighWater)
{
    TagPool p(8);
    const TagId a = p.acquire();
    const TagId b = p.acquire();
    p.release(a);
    p.release(b);
    EXPECT_EQ(p.peakInUse(), 2u);
    p.resetStats();
    EXPECT_EQ(p.peakInUse(), 0u);
}

TEST(TagPool, ExhaustionPanics)
{
    TagPool p(1);
    p.acquire();
    EXPECT_THROW(p.acquire(), PanicError);
}

TEST(TagPool, DoubleReleasePanics)
{
    TagPool p(2);
    const TagId t = p.acquire();
    p.release(t);
    EXPECT_THROW(p.release(t), PanicError);
}

TEST(TagPool, InvalidReleasePanics)
{
    TagPool p(2);
    EXPECT_THROW(p.release(5), PanicError);
}

TEST(TagPool, ZeroCapacityPanics)
{
    EXPECT_THROW(TagPool(0), PanicError);
}

}  // namespace
}  // namespace hmcsim
