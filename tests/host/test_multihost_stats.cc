/**
 * @file
 * Stat-namespace regression for multi-host fabrics: every host's
 * monitors and controller counters must live under their own
 * host<H>.* namespace.  The pre-multi-host Monitor/Report plumbing
 * assumed a single controller -- two controllers reporting under one
 * "fpga" prefix would silently sum (the stat map would keep one key
 * and the second reportStats overwrite or accumulate into it); these
 * tests pin that each host's counters stay separate and that the
 * separate values add up to the whole-system totals.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "host/experiment.h"
#include "host/system.h"

namespace hmcsim {
namespace {

SystemConfig
dualHostRing()
{
    SystemConfig cfg;
    cfg.hmc.chain.numCubes = 4;
    cfg.hmc.chain.topology = "ring";
    cfg.host.numHosts = 2;
    return cfg;
}

TEST(MultiHostStats, ControllersReportUnderDistinctKeys)
{
    System sys(dualHostRing());
    for (HostId h = 0; h < 2; ++h) {
        WorkloadSpec w;
        w.type = "gups";
        w.seed = 21 + h;
        sys.configureWorkloadAt(h, 0, w);
    }
    sys.run(5 * kMicrosecond);
    const auto stats = sys.stats();

    const auto key = [](HostId h, const char *stat) {
        return "system.host" + std::to_string(h) + ".controller." + stat;
    };
    ASSERT_EQ(stats.count(key(0, "requests_sent")), 1u);
    ASSERT_EQ(stats.count(key(1, "requests_sent")), 1u);
    EXPECT_GT(stats.at(key(0, "requests_sent")), 0.0);
    EXPECT_GT(stats.at(key(1, "requests_sent")), 0.0);
    // The legacy single-controller key must be gone entirely -- its
    // continued existence would mean one fabric kept the old name and
    // a collision is one rename away.
    for (const auto &[k, v] : stats)
        EXPECT_EQ(k.find("system.fpga."), std::string::npos) << k;

    // Never silently summed: each key carries exactly its own
    // controller's count, so the two keys add up to the real total
    // and each stays strictly below it.
    const double total = stats.at(key(0, "requests_sent")) +
        stats.at(key(1, "requests_sent"));
    EXPECT_DOUBLE_EQ(
        total,
        static_cast<double>(sys.fpga(0).controller().requestsSent() +
                            sys.fpga(1).controller().requestsSent()));
    EXPECT_LT(stats.at(key(0, "requests_sent")), total);
    EXPECT_LT(stats.at(key(1, "requests_sent")), total);
}

TEST(MultiHostStats, PortMonitorsKeepPerHostNamespaces)
{
    System sys(dualHostRing());
    for (HostId h = 0; h < 2; ++h) {
        WorkloadSpec w;
        w.type = "gups";
        w.seed = 5 + h;
        sys.configureWorkloadAt(h, 0, w);
    }
    sys.run(5 * kMicrosecond);
    const auto stats = sys.stats();
    ASSERT_EQ(stats.count("system.host0.port0.issued"), 1u);
    ASSERT_EQ(stats.count("system.host1.port0.issued"), 1u);
    EXPECT_DOUBLE_EQ(stats.at("system.host0.port0.issued"),
                     static_cast<double>(
                         sys.portAt(0, 0).issuedRequests()));
    EXPECT_DOUBLE_EQ(stats.at("system.host1.port0.issued"),
                     static_cast<double>(
                         sys.portAt(1, 0).issuedRequests()));
}

TEST(MultiHostStats, ResultCarriesPerHostBreakdown)
{
    SystemConfig cfg = dualHostRing();
    System sys(cfg);
    for (HostId h = 0; h < 2; ++h) {
        WorkloadSpec w;
        w.type = "gups";
        w.seed = 31 + h;
        sys.configureWorkloadAt(h, 0, w);
    }
    sys.run(3 * kMicrosecond);
    const ExperimentResult r = sys.measure(6 * kMicrosecond);
    ASSERT_EQ(r.hosts.size(), 2u);
    EXPECT_EQ(r.hosts[0].entryCube, 0u);
    EXPECT_EQ(r.hosts[1].entryCube, 2u);
    std::uint64_t reads = 0, bytes = 0;
    for (const HostStats &hs : r.hosts) {
        EXPECT_GT(hs.reads, 0u);
        reads += hs.reads;
        bytes += hs.wireBytes;
    }
    EXPECT_EQ(reads, r.totalReads);
    EXPECT_EQ(bytes, r.totalWireBytes);
    // Per-port rows carry their owning host.
    ASSERT_EQ(r.ports.size(), 2u);
    EXPECT_EQ(r.ports[0].host, 0u);
    EXPECT_EQ(r.ports[1].host, 1u);
    // Per-cube requests_sent sums both controllers' contributions.
    std::uint64_t sent = 0;
    for (const CubeStats &cs : r.cubes)
        sent += cs.requestsSent;
    EXPECT_EQ(sent, r.hosts[0].requestsSent + r.hosts[1].requestsSent);
}

}  // namespace
}  // namespace hmcsim
