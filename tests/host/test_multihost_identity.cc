/**
 * @file
 * Bit-identity guarantees of the multi-host refactor: the default
 * host.num_hosts=1 system must produce results identical to the
 * pre-multi-host build on the experiments behind the fig06 (9-port
 * GUPS latency/bandwidth) and fig08 (stream saturation) CSVs -- same
 * counts, identical latency statistics -- whether the single host is
 * implied (default config), declared explicitly through Config keys,
 * or routed through the generalized entry-cube plumbing with an
 * explicit host0.entry_cube=0.  (The byte-equality of the full CSVs
 * was additionally verified against a pre-refactor build when this
 * guard was introduced; these tests pin the invariant in-tree.)
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "host/experiment.h"
#include "host/system.h"

namespace hmcsim {
namespace {

void
expectIdentical(const ExperimentResult &a, const ExperimentResult &b)
{
    EXPECT_EQ(a.totalReads, b.totalReads);
    EXPECT_EQ(a.totalWrites, b.totalWrites);
    EXPECT_EQ(a.totalWireBytes, b.totalWireBytes);
    EXPECT_DOUBLE_EQ(a.avgReadLatencyNs, b.avgReadLatencyNs);
    EXPECT_DOUBLE_EQ(a.minReadLatencyNs, b.minReadLatencyNs);
    EXPECT_DOUBLE_EQ(a.maxReadLatencyNs, b.maxReadLatencyNs);
    EXPECT_DOUBLE_EQ(a.stddevReadLatencyNs, b.stddevReadLatencyNs);
    ASSERT_EQ(a.ports.size(), b.ports.size());
    for (std::size_t i = 0; i < a.ports.size(); ++i) {
        EXPECT_EQ(a.ports[i].reads, b.ports[i].reads);
        EXPECT_EQ(a.ports[i].wireBytes, b.ports[i].wireBytes);
        EXPECT_DOUBLE_EQ(a.ports[i].avgReadNs, b.ports[i].avgReadNs);
    }
}

/** The fig06 ingredient: a 9-port GUPS run on @p cfg. */
ExperimentResult
fig06Slice(const SystemConfig &cfg)
{
    GupsSpec spec;
    spec.requestBytes = 64;
    spec.numVaults = 16;
    spec.numBanks = 16;
    spec.warmup = 4 * kMicrosecond;
    spec.window = 10 * kMicrosecond;
    return runGups(cfg, spec);
}

/** The fig08 ingredient: one batched stream into vault 0. */
ExperimentResult
fig08Slice(const SystemConfig &cfg)
{
    StreamBatchSpec spec;
    spec.batchSize = 64;
    spec.requestBytes = 32;
    spec.vault = 0;
    spec.warmup = 3 * kMicrosecond;
    spec.window = 8 * kMicrosecond;
    return runStreamBatch(cfg, spec);
}

TEST(MultiHostIdentity, ExplicitSingleHostMatchesDefaultFig06)
{
    const ExperimentResult a = fig06Slice(SystemConfig{});

    Config cfg;
    SystemConfig{}.toConfig(cfg);
    cfg.parseString("[host]\nnum_hosts = 1\n");
    const SystemConfig explicit_cfg = SystemConfig::fromConfig(cfg);
    EXPECT_EQ(explicit_cfg.host.numHosts, 1u);
    const ExperimentResult b = fig06Slice(explicit_cfg);

    expectIdentical(a, b);
}

TEST(MultiHostIdentity, ExplicitSingleHostMatchesDefaultFig08)
{
    const ExperimentResult a = fig08Slice(SystemConfig{});

    Config cfg;
    SystemConfig{}.toConfig(cfg);
    cfg.parseString("[host]\nnum_hosts = 1\n"
                    "host0.entry_cube = 0\n");
    const ExperimentResult b = fig08Slice(SystemConfig::fromConfig(cfg));

    expectIdentical(a, b);
}

TEST(MultiHostIdentity, SingleHostChainUnchangedByEntryPlumbing)
{
    // A chained single-host system must not notice the entry-cube
    // generalization: implicit entry vs explicit host0.entry_cube=0,
    // on the topology with the richest response routing (ring).
    SystemConfig base;
    base.hmc.chain.numCubes = 4;
    base.hmc.chain.topology = "ring";
    const ExperimentResult a = fig06Slice(base);

    SystemConfig explicit_entry = base;
    explicit_entry.host.entryCubes = {0};
    const ExperimentResult b = fig06Slice(explicit_entry);

    expectIdentical(a, b);
}

TEST(MultiHostIdentity, SingleHostKeepsLegacyStatNamespace)
{
    // The classic fabric keeps its "fpga" component (and stat key)
    // namespace; nothing moved under a host0 prefix.
    System sys((SystemConfig()));
    GupsPortSpec gp;
    gp.gen.pattern = sys.addressMap().pattern(16, 16);
    gp.gen.requestBytes = 32;
    gp.gen.capacity = SystemConfig{}.hmc.totalCapacityBytes();
    gp.gen.seed = 9;
    sys.configureGupsPort(0, gp);
    sys.run(3 * kMicrosecond);
    const auto stats = sys.stats();
    EXPECT_EQ(stats.count("system.fpga.controller.requests_sent"), 1u);
    for (const auto &[key, value] : stats)
        EXPECT_EQ(key.find("system.host0."), std::string::npos) << key;
}

TEST(MultiHostIdentity, DualHostRunsAreDeterministic)
{
    const auto run = [] {
        SystemConfig cfg;
        cfg.hmc.chain.numCubes = 4;
        cfg.hmc.chain.topology = "ring";
        cfg.host.numHosts = 2;
        WorkloadRunSpec spec;
        spec.workload.type = "gups";
        spec.workload.inject = "open";
        spec.workload.ratePerNs = 0.02;
        spec.activePorts = 2;
        spec.warmup = 2 * kMicrosecond;
        spec.window = 6 * kMicrosecond;
        return runWorkload(cfg, spec);
    };
    const ExperimentResult a = run();
    const ExperimentResult b = run();
    expectIdentical(a, b);
    ASSERT_EQ(a.hosts.size(), 2u);
    ASSERT_EQ(b.hosts.size(), 2u);
    for (std::size_t h = 0; h < a.hosts.size(); ++h) {
        EXPECT_EQ(a.hosts[h].reads, b.hosts[h].reads);
        EXPECT_DOUBLE_EQ(a.hosts[h].avgReadNs, b.hosts[h].avgReadNs);
    }
}

TEST(MultiHostIdentity, HostsIssueDecorrelatedStreams)
{
    // Same config-driven workload replicated onto both hosts must not
    // replay the same address stream: per-host byte counters end up
    // close but not identical, and both hosts make progress.
    Config cfg;
    SystemConfig base;
    base.hmc.chain.numCubes = 4;
    base.hmc.chain.topology = "ring";
    base.host.numHosts = 2;
    base.toConfig(cfg);
    cfg.parseString("[host]\nworkload_ports = 2\nworkload = gups\n");
    System sys(SystemConfig::fromConfig(cfg));
    sys.run(6 * kMicrosecond);
    const std::uint64_t a = sys.fpga(0).controller().requestsSent();
    const std::uint64_t b = sys.fpga(1).controller().requestsSent();
    EXPECT_GT(a, 100u);
    EXPECT_GT(b, 100u);
    std::uint64_t bytes0 = 0, bytes1 = 0;
    for (PortId p = 0; p < 2; ++p) {
        bytes0 += sys.portAt(0, p).monitor().wireBytes();
        bytes1 += sys.portAt(1, p).monitor().wireBytes();
    }
    EXPECT_NE(bytes0, bytes1);
}

}  // namespace
}  // namespace hmcsim
