#include <gtest/gtest.h>

#include <set>

#include "common/log.h"
#include "host/addr_gen.h"

namespace hmcsim {
namespace {

GupsAddrGen::Params
base()
{
    GupsAddrGen::Params p;
    p.mode = AddrMode::Random;
    p.pattern = AddressPattern{(4ull << 30) - 1, 0};
    p.requestBytes = 32;
    p.capacity = 4ull << 30;
    p.seed = 42;
    return p;
}

TEST(AddrGen, AlignedToRequestSize)
{
    for (std::uint32_t size : {16u, 32u, 64u, 128u}) {
        GupsAddrGen::Params p = base();
        p.requestBytes = size;
        GupsAddrGen gen(p);
        for (int i = 0; i < 200; ++i)
            EXPECT_EQ(gen.next() % size, 0u) << "size " << size;
    }
}

TEST(AddrGen, StaysWithinCapacity)
{
    GupsAddrGen gen(base());
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(gen.next(), 4ull << 30);
}

TEST(AddrGen, DeterministicPerSeed)
{
    GupsAddrGen a(base()), b(base());
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(AddrGen, ReseedRestarts)
{
    GupsAddrGen gen(base());
    const Addr first = gen.next();
    gen.next();
    gen.reseed(42);
    EXPECT_EQ(gen.next(), first);
}

TEST(AddrGen, RandomSpreads)
{
    GupsAddrGen gen(base());
    std::set<Addr> seen;
    for (int i = 0; i < 100; ++i)
        seen.insert(gen.next());
    EXPECT_GT(seen.size(), 95u);
}

TEST(AddrGen, LinearWalksSequentially)
{
    GupsAddrGen::Params p = base();
    p.mode = AddrMode::Linear;
    p.requestBytes = 64;
    GupsAddrGen gen(p);
    EXPECT_EQ(gen.next(), 0u);
    EXPECT_EQ(gen.next(), 64u);
    EXPECT_EQ(gen.next(), 128u);
}

TEST(AddrGen, LinearWrapsAtCapacity)
{
    GupsAddrGen::Params p = base();
    p.mode = AddrMode::Linear;
    p.capacity = 256;
    p.pattern = AddressPattern{255, 0};
    p.requestBytes = 64;
    GupsAddrGen gen(p);
    gen.next();
    gen.next();
    gen.next();
    gen.next();
    EXPECT_EQ(gen.next(), 0u);  // wrapped
}

TEST(AddrGen, PatternMaskApplied)
{
    // Pin everything except the low 20 bits.
    GupsAddrGen::Params p = base();
    p.pattern = AddressPattern{0xFFFFF, 0x40000000};
    GupsAddrGen gen(p);
    for (int i = 0; i < 200; ++i) {
        const Addr a = gen.next();
        EXPECT_EQ(a & ~0xFFFFFull, 0x40000000u);
    }
}

TEST(AddrGen, BadRequestSizeIsFatal)
{
    GupsAddrGen::Params p = base();
    p.requestBytes = 48;
    EXPECT_THROW(GupsAddrGen{p}, FatalError);
}

TEST(AddrGen, BadCapacityIsFatal)
{
    GupsAddrGen::Params p = base();
    p.capacity = 1000;
    EXPECT_THROW(GupsAddrGen{p}, FatalError);
}

}  // namespace
}  // namespace hmcsim
