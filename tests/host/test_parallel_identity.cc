/**
 * @file
 * Determinism guarantees of the partitioned-parallel event core
 * (`sim.parallel=on`): the conservative-lookahead engine is a pure
 * scheduling substitution, so a chain experiment must produce results
 * identical to the serial calendar engine -- same counts, identical
 * latency statistics, same total event count -- for every thread
 * count, including 1.  A second family of tests pins the gating
 * matrix: configurations the parallel engine cannot run bit-exactly
 * are rejected up front, never silently degraded.
 */

#include <gtest/gtest.h>

#include <utility>

#include "common/log.h"
#include "host/experiment.h"
#include "host/system.h"
#include "sim/parallel_scheduler.h"

namespace hmcsim {
namespace {

void
expectIdentical(const ExperimentResult &a, const ExperimentResult &b)
{
    EXPECT_EQ(a.totalReads, b.totalReads);
    EXPECT_EQ(a.totalWrites, b.totalWrites);
    EXPECT_EQ(a.totalWireBytes, b.totalWireBytes);
    EXPECT_DOUBLE_EQ(a.avgReadLatencyNs, b.avgReadLatencyNs);
    EXPECT_DOUBLE_EQ(a.minReadLatencyNs, b.minReadLatencyNs);
    EXPECT_DOUBLE_EQ(a.maxReadLatencyNs, b.maxReadLatencyNs);
    EXPECT_DOUBLE_EQ(a.stddevReadLatencyNs, b.stddevReadLatencyNs);
    EXPECT_DOUBLE_EQ(a.avgChainHops, b.avgChainHops);
    EXPECT_EQ(a.totalChainTransitFlits, b.totalChainTransitFlits);
    ASSERT_EQ(a.ports.size(), b.ports.size());
    for (std::size_t i = 0; i < a.ports.size(); ++i) {
        EXPECT_EQ(a.ports[i].reads, b.ports[i].reads);
        EXPECT_EQ(a.ports[i].wireBytes, b.ports[i].wireBytes);
        EXPECT_DOUBLE_EQ(a.ports[i].avgReadNs, b.ports[i].avgReadNs);
    }
}

/** A 4-cube ring chain the parallel engine can run bit-exactly. */
SystemConfig
chainBase()
{
    SystemConfig cfg;
    cfg.hmc.chain.numCubes = 4;
    cfg.hmc.chain.topology = "ring";
    // The power probes aggregate across cubes mid-run, which the
    // partitioned engine gates off (see SystemConfig::validate).
    cfg.hmc.power.enabled = false;
    return cfg;
}

SystemConfig
parallelBase(std::uint64_t threads)
{
    SystemConfig cfg = chainBase();
    cfg.sim.parallel = "on";
    cfg.sim.threads = threads;
    return cfg;
}

/**
 * The fig06 chain ingredient (9-port GUPS), replicated from
 * runGups() with the System held locally so the kernel's total event
 * count comes back alongside the stats.
 */
std::pair<ExperimentResult, std::uint64_t>
gupsSliceWithEvents(const SystemConfig &cfg)
{
    System sys(cfg);
    GupsSpec spec;
    spec.requestBytes = 64;
    spec.numVaults = 16;
    spec.numBanks = 16;
    spec.warmup = 4 * kMicrosecond;
    spec.window = 10 * kMicrosecond;

    const AddressPattern pattern = sys.addressMap().pattern(
        spec.numVaults, spec.numBanks, spec.baseVault, spec.baseBank);
    for (PortId p = 0; p < spec.activePorts; ++p) {
        GupsPortSpec gp;
        gp.kind = spec.kind;
        gp.gen.mode = spec.mode;
        gp.gen.pattern = pattern;
        gp.gen.requestBytes = spec.requestBytes;
        gp.gen.capacity = cfg.hmc.totalCapacityBytes();
        gp.gen.seed = spec.seed * 7919 + p;
        sys.configureGupsPort(p, gp);
    }
    sys.run(spec.warmup);
    ExperimentResult res = sys.measure(spec.window);
    return {std::move(res), sys.kernel().eventsExecuted()};
}

ExperimentResult
streamSlice(const SystemConfig &cfg)
{
    StreamBatchSpec spec;
    spec.batchSize = 64;
    spec.requestBytes = 32;
    spec.vault = 0;
    spec.warmup = 3 * kMicrosecond;
    spec.window = 8 * kMicrosecond;
    return runStreamBatch(cfg, spec);
}

TEST(ParallelIdentity, GupsChainIdenticalAcrossThreadCounts)
{
    const auto serial = gupsSliceWithEvents(chainBase());
    for (const std::uint64_t threads : {1u, 2u, 4u}) {
        const auto par = gupsSliceWithEvents(parallelBase(threads));
        expectIdentical(serial.first, par.first);
        EXPECT_EQ(serial.second, par.second)
            << "event count diverged at sim.threads=" << threads;
    }
}

TEST(ParallelIdentity, StreamChainIdenticalAcrossThreadCounts)
{
    const ExperimentResult serial = streamSlice(chainBase());
    for (const std::uint64_t threads : {1u, 4u})
        expectIdentical(serial, streamSlice(parallelBase(threads)));
}

TEST(ParallelIdentity, ParallelOffIsTheDefaultAndBitIdentical)
{
    // `sim.parallel=off` (the default) must leave the serial engine
    // untouched: an explicit off-config and the untouched default give
    // the same schedule and the same stats.
    SystemConfig def;
    EXPECT_FALSE(def.sim.parallelEnabled());
    SystemConfig off = chainBase();
    off.sim.parallel = "off";
    const auto a = gupsSliceWithEvents(chainBase());
    const auto b = gupsSliceWithEvents(off);
    expectIdentical(a.first, b.first);
    EXPECT_EQ(a.second, b.second);
}

TEST(ParallelIdentity, ConfigRoundTripSelectsParallel)
{
    Config cfg;
    SystemConfig{}.toConfig(cfg);
    cfg.parseString("[sim]\nparallel = on\nthreads = 4\n");
    const SystemConfig parsed = SystemConfig::fromConfig(cfg);
    EXPECT_TRUE(parsed.sim.parallelEnabled());
    EXPECT_EQ(parsed.sim.threads, 4u);

    Config out;
    parsed.toConfig(out);
    EXPECT_EQ(SystemConfig::fromConfig(out).sim.parallel, "on");
}

TEST(ParallelIdentity, ParallelSystemReportsPartitions)
{
    System sys(parallelBase(2));
    ASSERT_TRUE(sys.kernel().parallelEnabled());
    ASSERT_NE(sys.kernel().partition(0), nullptr);
    ASSERT_NE(sys.kernel().partition(3), nullptr);
    ASSERT_NE(sys.kernel().globalPartition(), nullptr);
    EXPECT_GT(sys.kernel().parallel()->lookahead(), 0u);
}

TEST(ParallelGating, SingleCubeIsRejected)
{
    SystemConfig cfg;  // numCubes = 1
    cfg.hmc.power.enabled = false;
    cfg.sim.parallel = "on";
    EXPECT_THROW(System{cfg}, FatalError);
}

TEST(ParallelGating, PowerModelIsRejected)
{
    SystemConfig cfg = parallelBase(2);
    cfg.hmc.power.enabled = true;
    EXPECT_THROW(System{cfg}, FatalError);
}

TEST(ParallelGating, CrcErrorInjectionIsRejected)
{
    SystemConfig cfg = parallelBase(2);
    cfg.hmc.crcErrorProb = 0.01;
    EXPECT_THROW(System{cfg}, FatalError);
}

TEST(ParallelGating, ProfilerIsRejected)
{
    SystemConfig cfg = parallelBase(2);
    cfg.obs.profile = true;
    EXPECT_THROW(System{cfg}, FatalError);
}

}  // namespace
}  // namespace hmcsim
