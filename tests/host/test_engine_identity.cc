/**
 * @file
 * Bit-identity guarantees of the optimized event core: the calendar
 * queue and the packet pool are pure engine substitutions, so the
 * experiments behind the fig06 (9-port GUPS latency/bandwidth), fig08
 * (stream saturation) and chain-figure CSVs must produce results
 * identical to the reference heap queue and to plain allocation --
 * same counts, identical latency statistics -- for every combination
 * of sim.event_queue={heap,calendar} x sim.packet_pool={0,1}.  (Full
 * CSV byte-equality against a pre-optimization build was additionally
 * verified when the engine landed; these tests pin the invariant
 * in-tree.)
 */

#include <gtest/gtest.h>

#include "host/experiment.h"
#include "host/system.h"

namespace hmcsim {
namespace {

void
expectIdentical(const ExperimentResult &a, const ExperimentResult &b)
{
    EXPECT_EQ(a.totalReads, b.totalReads);
    EXPECT_EQ(a.totalWrites, b.totalWrites);
    EXPECT_EQ(a.totalWireBytes, b.totalWireBytes);
    EXPECT_DOUBLE_EQ(a.avgReadLatencyNs, b.avgReadLatencyNs);
    EXPECT_DOUBLE_EQ(a.minReadLatencyNs, b.minReadLatencyNs);
    EXPECT_DOUBLE_EQ(a.maxReadLatencyNs, b.maxReadLatencyNs);
    EXPECT_DOUBLE_EQ(a.stddevReadLatencyNs, b.stddevReadLatencyNs);
    ASSERT_EQ(a.ports.size(), b.ports.size());
    for (std::size_t i = 0; i < a.ports.size(); ++i) {
        EXPECT_EQ(a.ports[i].reads, b.ports[i].reads);
        EXPECT_EQ(a.ports[i].wireBytes, b.ports[i].wireBytes);
        EXPECT_DOUBLE_EQ(a.ports[i].avgReadNs, b.ports[i].avgReadNs);
    }
}

/** The four engine corners: {heap,calendar} x {pool off,on}. */
std::vector<SystemConfig>
engineCorners(SystemConfig base)
{
    std::vector<SystemConfig> corners;
    for (const char *queue : {"heap", "calendar"}) {
        for (const bool pool : {false, true}) {
            SystemConfig c = base;
            c.sim.eventQueue = queue;
            c.sim.packetPool = pool;
            corners.push_back(c);
        }
    }
    return corners;
}

/** The fig06 ingredient: a 9-port GUPS run on @p cfg. */
ExperimentResult
fig06Slice(const SystemConfig &cfg)
{
    GupsSpec spec;
    spec.requestBytes = 64;
    spec.numVaults = 16;
    spec.numBanks = 16;
    spec.warmup = 4 * kMicrosecond;
    spec.window = 10 * kMicrosecond;
    return runGups(cfg, spec);
}

/** The fig08 ingredient: one batched stream into vault 0. */
ExperimentResult
fig08Slice(const SystemConfig &cfg)
{
    StreamBatchSpec spec;
    spec.batchSize = 64;
    spec.requestBytes = 32;
    spec.vault = 0;
    spec.warmup = 3 * kMicrosecond;
    spec.window = 8 * kMicrosecond;
    return runStreamBatch(cfg, spec);
}

TEST(EngineIdentity, Fig06IdenticalAcrossEngines)
{
    const ExperimentResult ref = fig06Slice(SystemConfig{});
    for (const SystemConfig &c : engineCorners(SystemConfig{}))
        expectIdentical(ref, fig06Slice(c));
}

TEST(EngineIdentity, Fig08IdenticalAcrossEngines)
{
    const ExperimentResult ref = fig08Slice(SystemConfig{});
    for (const SystemConfig &c : engineCorners(SystemConfig{}))
        expectIdentical(ref, fig08Slice(c));
}

TEST(EngineIdentity, ChainRingIdenticalAcrossEngines)
{
    // The chain figures exercise the richest event mix (inter-cube
    // links, ring response routing); heap vs calendar must agree
    // there too.
    SystemConfig base;
    base.hmc.chain.numCubes = 4;
    base.hmc.chain.topology = "ring";
    const ExperimentResult ref = fig06Slice(base);
    for (const SystemConfig &c : engineCorners(base))
        expectIdentical(ref, fig06Slice(c));
}

TEST(EngineIdentity, ConfigRoundTripSelectsEngine)
{
    // The knobs flow through Config serialization like every other
    // subsystem's.
    Config cfg;
    SystemConfig{}.toConfig(cfg);
    cfg.parseString("[sim]\nevent_queue = heap\npacket_pool = 0\n");
    const SystemConfig parsed = SystemConfig::fromConfig(cfg);
    EXPECT_EQ(parsed.sim.eventQueue, "heap");
    EXPECT_FALSE(parsed.sim.packetPool);
    EXPECT_EQ(parsed.sim.queueKind(), EventQueueKind::Heap);

    System sys(parsed);
    EXPECT_EQ(sys.kernel().queue().kind(), EventQueueKind::Heap);

    SystemConfig def;
    EXPECT_EQ(def.sim.queueKind(), EventQueueKind::Calendar);
}

}  // namespace
}  // namespace hmcsim
