/**
 * @file
 * Tests for the experiment harness: result collection math, spec
 * validation, and reproducibility guarantees the benches depend on.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "host/experiment.h"
#include "host/system.h"

namespace hmcsim {
namespace {

TEST(Experiment, CollectResultAggregatesPorts)
{
    SystemConfig cfg;
    System sys(cfg);
    for (PortId p = 0; p < 2; ++p) {
        GupsPortSpec gp;
        gp.gen.pattern = sys.addressMap().pattern(16, 16);
        gp.gen.requestBytes = 32;
        gp.gen.capacity = cfg.hmc.capacityBytes;
        gp.gen.seed = 3 + p;
        sys.configureGupsPort(p, gp);
    }
    const ExperimentResult r = sys.measure(10 * kMicrosecond);
    ASSERT_EQ(r.ports.size(), 2u);
    std::uint64_t reads = 0, bytes = 0;
    for (const PortStats &ps : r.ports) {
        reads += ps.reads;
        bytes += ps.wireBytes;
        EXPECT_GT(ps.bandwidthGBs, 0.0);
    }
    EXPECT_EQ(r.totalReads, reads);
    EXPECT_EQ(r.totalWireBytes, bytes);
    EXPECT_EQ(r.mergedRead.count(), reads);
    // Paper formula: every 32 B read moves 64 wire bytes.
    EXPECT_EQ(bytes, reads * 64);
    // Bandwidth = bytes / window.
    EXPECT_NEAR(r.bandwidthGBs,
                static_cast<double>(bytes) /
                    static_cast<double>(r.windowTicks) * 1000.0,
                1e-9);
}

TEST(Experiment, IdlePortsExcludedFromResult)
{
    SystemConfig cfg;
    System sys(cfg);
    GupsPortSpec gp;
    gp.gen.pattern = sys.addressMap().pattern(16, 16);
    gp.gen.requestBytes = 32;
    gp.gen.capacity = cfg.hmc.capacityBytes;
    sys.configureGupsPort(4, gp);  // only port 4 is active
    const ExperimentResult r = sys.measure(5 * kMicrosecond);
    ASSERT_EQ(r.ports.size(), 1u);
    EXPECT_EQ(r.ports[0].port, 4u);
}

TEST(Experiment, WarmupExcludedFromWindow)
{
    SystemConfig cfg;
    GupsSpec spec;
    spec.requestBytes = 32;
    spec.window = 10 * kMicrosecond;
    spec.warmup = 1 * kMicrosecond;
    const ExperimentResult short_warm = runGups(cfg, spec);
    spec.warmup = 20 * kMicrosecond;
    const ExperimentResult long_warm = runGups(cfg, spec);
    // Steady-state windows: warmup length must not change the rate by
    // more than a small transient margin.
    EXPECT_NEAR(long_warm.bandwidthGBs / short_warm.bandwidthGBs, 1.0,
                0.05);
    EXPECT_EQ(short_warm.windowTicks, spec.window);
}

TEST(Experiment, RunGupsValidatesPortCount)
{
    SystemConfig cfg;
    GupsSpec spec;
    spec.activePorts = 0;
    EXPECT_THROW(runGups(cfg, spec), FatalError);
    spec.activePorts = cfg.host.numPorts + 1;
    EXPECT_THROW(runGups(cfg, spec), FatalError);
}

TEST(Experiment, RunGupsWritePortFraction)
{
    SystemConfig cfg;
    GupsSpec spec;
    spec.requestBytes = 64;
    spec.writePortFraction = 0.5;
    spec.warmup = 5 * kMicrosecond;
    spec.window = 10 * kMicrosecond;
    const ExperimentResult r = runGups(cfg, spec);
    EXPECT_GT(r.totalReads, 0u);
    EXPECT_GT(r.totalWrites, 0u);
}

TEST(Experiment, RunStreamVaultsOnePortPerVault)
{
    SystemConfig cfg;
    StreamVaultsSpec spec;
    spec.vaults = {0, 5, 9};
    spec.requestBytes = 32;
    spec.warmup = 3 * kMicrosecond;
    spec.window = 8 * kMicrosecond;
    const ExperimentResult r = runStreamVaults(cfg, spec);
    EXPECT_EQ(r.ports.size(), 3u);
    for (const PortStats &ps : r.ports)
        EXPECT_GT(ps.reads, 0u);
}

TEST(Experiment, RunStreamVaultsValidates)
{
    SystemConfig cfg;
    StreamVaultsSpec spec;
    EXPECT_THROW(runStreamVaults(cfg, spec), FatalError);  // no vaults
    spec.vaults.assign(cfg.host.numPorts + 1, 0);
    EXPECT_THROW(runStreamVaults(cfg, spec), FatalError);
}

TEST(Experiment, RunnersAreDeterministic)
{
    SystemConfig cfg;
    StreamBatchSpec spec;
    spec.batchSize = 10;
    spec.requestBytes = 64;
    spec.warmup = 3 * kMicrosecond;
    spec.window = 8 * kMicrosecond;
    const ExperimentResult a = runStreamBatch(cfg, spec);
    const ExperimentResult b = runStreamBatch(cfg, spec);
    EXPECT_EQ(a.totalReads, b.totalReads);
    EXPECT_DOUBLE_EQ(a.avgReadLatencyNs, b.avgReadLatencyNs);
    // A different seed changes the address stream but not the shape.
    spec.seed = 999;
    const ExperimentResult c = runStreamBatch(cfg, spec);
    EXPECT_NEAR(c.avgReadLatencyNs / a.avgReadLatencyNs, 1.0, 0.25);
}

TEST(Experiment, AccessRateConsistentWithBandwidth)
{
    SystemConfig cfg;
    GupsSpec spec;
    spec.requestBytes = 128;
    spec.warmup = 5 * kMicrosecond;
    spec.window = 10 * kMicrosecond;
    const ExperimentResult r = runGups(cfg, spec);
    // accesses/s * 160 wire bytes == bandwidth.
    EXPECT_NEAR(r.accessesPerSec() * 160.0 / 1e9, r.bandwidthGBs, 0.01);
}

}  // namespace
}  // namespace hmcsim
