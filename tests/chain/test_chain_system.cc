/**
 * @file
 * System-level tests of multi-cube chaining: the single-cube default
 * must stay bit-identical, chained traffic must be conserved across
 * every topology, hop latency must grow with chain depth, and the
 * pass-through flow control must survive tiny token pools.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "common/log.h"
#include "host/experiment.h"
#include "host/system.h"

namespace hmcsim {
namespace {

SystemConfig
chainConfig(std::uint32_t cubes, const std::string &topology,
            const std::string &interleave = "cube_high")
{
    SystemConfig cfg;
    cfg.hmc.chain.numCubes = cubes;
    cfg.hmc.chain.topology = topology;
    cfg.hmc.chain.interleave = interleave;
    if (topology == "star")
        cfg.hmc.numLinks = std::max(cfg.hmc.numLinks, cubes);
    return cfg;
}

GupsSpec
quickSpec()
{
    GupsSpec spec;
    spec.warmup = 3 * kMicrosecond;
    spec.window = 8 * kMicrosecond;
    spec.requestBytes = 64;
    return spec;
}

/** Issue, quiesce, and check conservation across all cubes. */
void
runConservation(const SystemConfig &cfg)
{
    System sys(cfg);
    for (PortId p = 0; p < 3; ++p) {
        GupsPortSpec gp;
        gp.gen.pattern = sys.addressMap().pattern(16, 16);
        gp.gen.requestBytes = 32;
        gp.gen.capacity = cfg.hmc.totalCapacityBytes();
        gp.gen.seed = 101 + p;
        sys.configureGupsPort(p, gp);
    }
    sys.run(6 * kMicrosecond);
    for (PortId p = 0; p < 3; ++p)
        sys.port(p).setActive(false);
    sys.run(60 * kMicrosecond);  // drain every in-flight request

    std::uint64_t issued = 0, completed = 0;
    for (PortId p = 0; p < 3; ++p) {
        issued += sys.port(p).issuedRequests();
        completed += sys.port(p).monitor().accesses();
    }
    EXPECT_GT(issued, 0u);
    EXPECT_EQ(issued, completed);
    EXPECT_EQ(sys.fpga().controller().requestsSent(), issued);
    EXPECT_EQ(sys.fpga().controller().responsesDelivered(), issued);
    std::uint64_t served = 0;
    std::uint64_t cubes_hit = 0;
    for (CubeId c = 0; c < sys.numCubes(); ++c) {
        served += sys.device(c).totalRequestsServed();
        cubes_hit += sys.device(c).totalRequestsServed() > 0 ? 1 : 0;
        EXPECT_EQ(sys.fpga().controller().outstandingToCube(c), 0u);
    }
    EXPECT_EQ(served, issued);
    // The full-capacity pattern must reach every cube.
    EXPECT_EQ(cubes_hit, sys.numCubes());
}

using TopoCubes = std::tuple<const char *, std::uint32_t>;

class ChainConservation : public ::testing::TestWithParam<TopoCubes>
{
};

TEST_P(ChainConservation, NoRequestLostOrDuplicated)
{
    const auto &[topo, cubes] = GetParam();
    runConservation(chainConfig(cubes, topo));
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, ChainConservation,
    ::testing::Values(TopoCubes{"daisy", 2}, TopoCubes{"daisy", 4},
                      TopoCubes{"daisy", 8}, TopoCubes{"ring", 2},
                      TopoCubes{"ring", 4}, TopoCubes{"ring", 8},
                      TopoCubes{"star", 2}, TopoCubes{"star", 4}));

TEST(ChainSystem, CubeLowInterleaveConserves)
{
    runConservation(chainConfig(4, "daisy", "cube_low"));
}

TEST(ChainSystem, TinyTokenPoolsStillConserve)
{
    SystemConfig cfg = chainConfig(4, "daisy");
    cfg.hmc.linkTokens = 16;  // one max packet per direction
    cfg.hmc.chain.forwardQueuePackets = 1;
    runConservation(cfg);
}

TEST(ChainSystem, RingTinyTokenPoolsStillConserve)
{
    // The ring shares link directions between clockwise requests and
    // down-routed responses; starved credits must back-pressure, not
    // deadlock.
    SystemConfig cfg = chainConfig(8, "ring");
    cfg.hmc.linkTokens = 16;
    cfg.hmc.chain.forwardQueuePackets = 1;
    runConservation(cfg);
}

TEST(ChainSystem, SingleCubeExplicitChainKeysAreIdentical)
{
    // Setting every chain key to its default through the config
    // round-trip must not perturb timing at all.
    const ExperimentResult base = runGups(SystemConfig{}, quickSpec());

    Config raw;
    SystemConfig{}.toConfig(raw);
    const SystemConfig roundtrip = SystemConfig::fromConfig(raw);
    const ExperimentResult same = runGups(roundtrip, quickSpec());

    EXPECT_EQ(base.totalReads, same.totalReads);
    EXPECT_EQ(base.totalWireBytes, same.totalWireBytes);
    EXPECT_DOUBLE_EQ(base.avgReadLatencyNs, same.avgReadLatencyNs);
    EXPECT_DOUBLE_EQ(base.maxReadLatencyNs, same.maxReadLatencyNs);
    EXPECT_DOUBLE_EQ(base.avgChainHops, 0.0);
    ASSERT_EQ(base.cubes.size(), 1u);
    // Vault and monitor counters are snapshotted at the same instant
    // but a few requests are always mid-flight at the window edge.
    EXPECT_NEAR(static_cast<double>(base.cubes[0].requestsServed),
                static_cast<double>(base.totalReads), 16.0);
}

TEST(ChainSystem, CubePatternConfinesTraffic)
{
    const SystemConfig cfg = chainConfig(4, "daisy");
    System sys(cfg);
    GupsPortSpec gp;
    gp.gen.pattern = sys.addressMap().cubePattern(2);
    gp.gen.requestBytes = 32;
    gp.gen.capacity = cfg.hmc.totalCapacityBytes();
    sys.configureGupsPort(0, gp);
    sys.run(5 * kMicrosecond);
    sys.port(0).setActive(false);
    sys.run(30 * kMicrosecond);

    EXPECT_GT(sys.device(2).totalRequestsServed(), 0u);
    for (CubeId c : {0u, 1u, 3u})
        EXPECT_EQ(sys.device(c).totalRequestsServed(), 0u) << "cube " << c;
    // Two pass-through forwards out, two back.
    EXPECT_DOUBLE_EQ(sys.port(0).monitor().chainHops().mean(), 4.0);
}

/** Low-load average read latency against one confined cube. */
double
lowLoadLatencyToCube(const SystemConfig &cfg, CubeId cube)
{
    System sys(cfg);
    Rng rng(42 + cube);
    StreamPortSpec sp;
    sp.trace = makeRandomTrace(rng, sys.addressMap().cubePattern(cube),
                               cfg.hmc.totalCapacityBytes(), 512, 32);
    sp.loop = true;
    sp.batchSize = 1;  // one request in flight: pure latency floor
    sys.configureStreamPort(0, sp);
    sys.run(4 * kMicrosecond);
    const ExperimentResult r = sys.measure(10 * kMicrosecond);
    return r.avgReadLatencyNs;
}

TEST(ChainSystem, DaisyHopLatencyIsMonotoneAndSane)
{
    const SystemConfig cfg = chainConfig(4, "daisy");
    double prev = 0.0;
    std::vector<double> lat;
    for (CubeId c = 0; c < 4; ++c) {
        lat.push_back(lowLoadLatencyToCube(cfg, c));
        EXPECT_GT(lat.back(), prev) << "cube " << c;
        prev = lat.back();
    }
    // Every hop pays pass-through + SerDes + wire twice (request and
    // response legs); the serialization itself is ns-scale.  With the
    // 12 ns pass-through and 16 ns SerDes defaults that is roughly
    // 60 ns per hop -- accept a generous band around it.
    for (CubeId c = 1; c < 4; ++c) {
        const double per_hop = (lat[c] - lat[0]) / c;
        EXPECT_GT(per_hop, 30.0) << "cube " << c;
        EXPECT_LT(per_hop, 130.0) << "cube " << c;
    }
}

TEST(ChainSystem, RingShortcutsTheFarCube)
{
    const double daisy =
        lowLoadLatencyToCube(chainConfig(4, "daisy"), 3);
    const double ring = lowLoadLatencyToCube(chainConfig(4, "ring"), 3);
    // Cube 3 is 3 hops away on the daisy chain but 1 wrap hop on the
    // ring (both directions).
    EXPECT_LT(ring, daisy - 50.0);
}

TEST(ChainSystem, StarHasNoHops)
{
    const SystemConfig cfg = chainConfig(4, "star");
    System sys(cfg);
    GupsPortSpec gp;
    gp.gen.pattern = sys.addressMap().pattern(16, 16);
    gp.gen.requestBytes = 32;
    gp.gen.capacity = cfg.hmc.totalCapacityBytes();
    sys.configureGupsPort(0, gp);
    sys.run(5 * kMicrosecond);
    sys.port(0).setActive(false);
    sys.run(20 * kMicrosecond);

    EXPECT_DOUBLE_EQ(sys.port(0).monitor().chainHops().mean(), 0.0);
    std::uint64_t cubes_hit = 0;
    for (CubeId c = 0; c < 4; ++c)
        cubes_hit += sys.device(c).totalRequestsServed() > 0 ? 1 : 0;
    EXPECT_EQ(cubes_hit, 4u);
}

TEST(ChainSystem, StatsExposeChainTree)
{
    const SystemConfig cfg = chainConfig(4, "daisy");
    System sys(cfg);
    GupsPortSpec gp;
    gp.gen.pattern = sys.addressMap().pattern(16, 16);
    gp.gen.requestBytes = 32;
    gp.gen.capacity = cfg.hmc.totalCapacityBytes();
    sys.configureGupsPort(0, gp);
    sys.run(6 * kMicrosecond);

    const auto stats = sys.stats();
    EXPECT_TRUE(stats.count("system.chain.hmc0.link0.down_packets"));
    EXPECT_TRUE(stats.count("system.chain.hmc1.fwd.fwd_requests"));
    EXPECT_TRUE(stats.count("system.chain.hmc3.vault0.requests_served"));
    EXPECT_TRUE(stats.count(
        "system.fpga.controller.cube2_requests_sent"));
    // Cube 0's switch forwards three cubes' worth of traffic.
    EXPECT_GT(stats.at("system.chain.hmc0.fwd.fwd_requests"), 0.0);
    EXPECT_GT(stats.at("system.chain.hmc0.fwd.fwd_responses"), 0.0);
}

TEST(ChainSystem, ChainedResultReportsPerCube)
{
    GupsSpec spec = quickSpec();
    spec.warmup = 2 * kMicrosecond;
    spec.window = 6 * kMicrosecond;
    const ExperimentResult r =
        runGups(chainConfig(4, "daisy"), spec);
    ASSERT_EQ(r.cubes.size(), 4u);
    EXPECT_GT(r.avgChainHops, 0.0);
    for (CubeId c = 0; c < 4; ++c) {
        EXPECT_EQ(r.cubes[c].cube, c);
        EXPECT_EQ(r.cubes[c].requestHops, c);
        EXPECT_GT(r.cubes[c].requestsServed, 0u);
        EXPECT_GT(r.cubes[c].energyPj, 0.0);
    }
}

TEST(ChainSystem, InvalidChainConfigsPanic)
{
    SystemConfig bad = chainConfig(3, "daisy");
    EXPECT_THROW(bad.validate(), FatalError);  // not a power of two
    bad = chainConfig(16, "daisy");
    EXPECT_THROW(bad.validate(), FatalError);  // beyond the CUB field
    bad = chainConfig(4, "mesh");
    EXPECT_THROW(bad.validate(), FatalError);
    bad = chainConfig(4, "star");
    bad.hmc.numLinks = 2;  // fewer links than host-attached cubes
    EXPECT_THROW(bad.validate(), FatalError);
    bad = chainConfig(2, "daisy", "cube_middle");
    EXPECT_THROW(bad.validate(), FatalError);
}

}  // namespace
}  // namespace hmcsim
