#include <gtest/gtest.h>

#include <algorithm>

#include "chain/route_table.h"
#include "common/log.h"

namespace hmcsim {
namespace {

TEST(RouteTable, TopologyStrings)
{
    EXPECT_EQ(chainTopologyFromString("daisy"), ChainTopology::Daisy);
    EXPECT_EQ(chainTopologyFromString("ring"), ChainTopology::Ring);
    EXPECT_EQ(chainTopologyFromString("star"), ChainTopology::Star);
    EXPECT_THROW(chainTopologyFromString("mesh"), FatalError);
    EXPECT_EQ(toString(ChainTopology::Ring), "ring");
    EXPECT_EQ(toString(ChainHop::Wrap), "wrap");
}

TEST(RouteTable, DaisyRequestsAlwaysFlowDown)
{
    const ChainRouteTable t(ChainTopology::Daisy, 4);
    for (CubeId at = 0; at < 4; ++at) {
        EXPECT_EQ(t.next(at, at), ChainHop::Local);
        for (CubeId dest = at + 1; dest < 4; ++dest)
            EXPECT_EQ(t.next(at, dest), ChainHop::Down);
        EXPECT_EQ(t.towardHost(at), ChainHop::Up);
    }
    EXPECT_EQ(t.requestHops(0), 0u);
    EXPECT_EQ(t.requestHops(3), 3u);
    EXPECT_EQ(t.responseHops(0), 0u);
    EXPECT_EQ(t.responseHops(3), 3u);
}

TEST(RouteTable, RingTakesShortestDirection)
{
    const ChainRouteTable t(ChainTopology::Ring, 4);
    // Clockwise for near cubes, the wrap link for the far side.
    EXPECT_EQ(t.next(0, 1), ChainHop::Down);
    EXPECT_EQ(t.next(0, 2), ChainHop::Down);  // tie broken clockwise
    EXPECT_EQ(t.next(0, 3), ChainHop::Wrap);
    EXPECT_EQ(t.requestHops(1), 1u);
    EXPECT_EQ(t.requestHops(2), 2u);
    EXPECT_EQ(t.requestHops(3), 1u);  // one wrap hop, not three
    // Responses: cube 3 wraps straight back to cube 0.
    EXPECT_EQ(t.towardHost(3), ChainHop::Wrap);
    EXPECT_EQ(t.responseHops(3), 1u);
    EXPECT_EQ(t.towardHost(1), ChainHop::Up);
    EXPECT_EQ(t.responseHops(2), 2u);
}

TEST(RouteTable, RingEightCubesMakesProgress)
{
    const ChainRouteTable t(ChainTopology::Ring, 8);
    for (CubeId dest = 0; dest < 8; ++dest) {
        // Shortest-path hop count: min(cw, ccw) from cube 0.
        const std::uint32_t expect =
            std::min<std::uint32_t>(dest, 8 - dest);
        EXPECT_EQ(t.requestHops(dest), expect) << "dest " << dest;
        EXPECT_LE(t.responseHops(dest), 4u);
    }
}

TEST(RouteTable, StarNeverForwards)
{
    const ChainRouteTable t(ChainTopology::Star, 4);
    for (CubeId c = 0; c < 4; ++c) {
        EXPECT_EQ(t.next(c, c), ChainHop::Local);
        EXPECT_EQ(t.requestHops(c), 0u);
        EXPECT_EQ(t.responseHops(c), 0u);
    }
}

TEST(RouteTable, BisectionWidth)
{
    EXPECT_EQ(ChainRouteTable(ChainTopology::Daisy, 4).bisectionLinkCount(),
              1u);
    EXPECT_EQ(ChainRouteTable(ChainTopology::Ring, 4).bisectionLinkCount(),
              2u);
    EXPECT_EQ(ChainRouteTable(ChainTopology::Star, 4).bisectionLinkCount(),
              1u);
}

TEST(RouteTable, OutOfRangePanics)
{
    const ChainRouteTable t(ChainTopology::Daisy, 2);
    EXPECT_THROW(t.next(2, 0), PanicError);
    EXPECT_THROW(t.next(0, 2), PanicError);
    EXPECT_THROW(t.towardHost(2), PanicError);
    EXPECT_THROW(t.requestHops(5), PanicError);
}

}  // namespace
}  // namespace hmcsim
