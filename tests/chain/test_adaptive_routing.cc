/**
 * @file
 * Congestion-aware adaptive chain routing: policy unit tests against a
 * fake telemetry provider (zero-load identity, tie deviation,
 * hysteresis, bounded direction-locked misroutes), route-table
 * hardening (neighbor() underflow, towardHost tie-breaking), and
 * system-level guards -- static-mode bit-identity, conservation under
 * adaptive routing, tie-splitting under load, and the head-of-line
 * blocking accounting regression.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "chain/routing_policy.h"
#include "common/log.h"
#include "host/experiment.h"
#include "host/system.h"

namespace hmcsim {
namespace {

// ---------------------------------------------------------------------
// Policy unit tests
// ---------------------------------------------------------------------

/** Scriptable telemetry: per-kind loads, everything wired by default. */
class FakeLoads : public ChainLoadProvider
{
  public:
    ChainPortLoad up = wired();
    ChainPortLoad down = wired();
    ChainPortLoad wrap = wired();

    static ChainPortLoad
    wired(std::uint32_t queued_flits = 0, std::uint32_t tokens_in_use = 0)
    {
        ChainPortLoad load;
        load.wired = true;
        load.queuedFlits = queued_flits;
        load.queueFreePackets = 8;
        load.tokensInUse = tokens_in_use;
        return load;
    }

    ChainPortLoad
    portLoad(ChainHop kind, LinkId) const override
    {
        switch (kind) {
          case ChainHop::Up: return up;
          case ChainHop::Down: return down;
          case ChainHop::Wrap: return wrap;
          case ChainHop::Local:
          case ChainHop::Host:
            break;
        }
        return ChainPortLoad{};
    }
};

ChainPacketView
request(CubeId dest)
{
    ChainPacketView v;
    v.dest = dest;
    return v;
}

ChainPacketView
response()
{
    ChainPacketView v;
    v.toHost = true;
    return v;
}

TEST(AdaptiveRoutingPolicy, ZeroLoadTakesExactStaticPaths)
{
    // The property the hysteresis threshold guarantees: an unloaded
    // adaptive chain is indistinguishable from the static table.
    const FakeLoads idle;
    const AdaptiveRoutingParams params;
    for (const ChainTopology topo :
         {ChainTopology::Daisy, ChainTopology::Ring}) {
        for (const std::uint32_t n : {2u, 4u, 8u}) {
            const ChainRouteTable t(topo, n);
            const AdaptiveChainRouting adaptive(t, params);
            for (CubeId at = 0; at < n; ++at) {
                for (CubeId dest = 0; dest < n; ++dest) {
                    const ChainRouteDecision d =
                        adaptive.route(at, request(dest), 0, idle);
                    EXPECT_EQ(d.hop, t.next(at, dest))
                        << toString(topo) << " n=" << n << " at=" << at
                        << " dest=" << dest;
                    EXPECT_FALSE(d.deviated);
                    EXPECT_FALSE(d.misrouted);
                    EXPECT_EQ(d.dirLock, kChainDirNone);
                }
                const ChainRouteDecision d =
                    adaptive.route(at, response(), 0, idle);
                EXPECT_EQ(d.hop, t.towardHost(at))
                    << toString(topo) << " n=" << n << " at=" << at;
                EXPECT_FALSE(d.deviated);
                EXPECT_FALSE(d.misrouted);
            }
        }
    }
}

TEST(AdaptiveRoutingPolicy, RingTieDeviatesOnlyPastThreshold)
{
    const ChainRouteTable t(ChainTopology::Ring, 4);
    AdaptiveRoutingParams params;
    params.thresholdFlits = 8;
    const AdaptiveChainRouting adaptive(t, params);

    // Cube 2 is a distance-2 tie from cube 0; static breaks it Down.
    FakeLoads loads;
    loads.down = FakeLoads::wired(/*queued=*/8, /*tokens=*/0);
    ChainRouteDecision d = adaptive.route(0, request(2), 0, loads);
    EXPECT_EQ(d.hop, ChainHop::Down);  // 8 vs 0: not strictly past 8
    EXPECT_FALSE(d.deviated);

    loads.down = FakeLoads::wired(9, 0);
    d = adaptive.route(0, request(2), 0, loads);
    EXPECT_EQ(d.hop, ChainHop::Wrap);
    EXPECT_TRUE(d.deviated);
    EXPECT_FALSE(d.misrouted);
    EXPECT_EQ(d.dirLock, kChainDirNone);  // ties need no lock

    // Token backpressure counts like queue occupancy.
    loads.down = FakeLoads::wired(0, 9);
    d = adaptive.route(0, request(2), 0, loads);
    EXPECT_EQ(d.hop, ChainHop::Wrap);
    EXPECT_TRUE(d.deviated);
}

TEST(AdaptiveRoutingPolicy, ResponseTieDeviates)
{
    const ChainRouteTable t(ChainTopology::Ring, 4);
    const AdaptiveChainRouting adaptive(t, AdaptiveRoutingParams{});

    // Cube 2's response tie statically breaks Up (counter-clockwise).
    FakeLoads loads;
    loads.up = FakeLoads::wired(64, 0);
    const ChainRouteDecision d = adaptive.route(2, response(), 0, loads);
    EXPECT_EQ(d.hop, ChainHop::Down);
    EXPECT_TRUE(d.deviated);
}

TEST(AdaptiveRoutingPolicy, MisrouteIsBoundedAndDirectionLocked)
{
    const ChainRouteTable t(ChainTopology::Ring, 4);
    AdaptiveRoutingParams params;
    params.thresholdFlits = 8;
    params.misrouteThresholdFlits = 48;
    params.maxMisroutes = 1;
    const AdaptiveChainRouting adaptive(t, params);

    // Cube 1 is minimal only via Down; the long way is Wrap (ccw).
    FakeLoads loads;
    loads.down = FakeLoads::wired(60, 0);
    ChainRouteDecision d = adaptive.route(0, request(1), 0, loads);
    EXPECT_EQ(d.hop, ChainHop::Wrap);
    EXPECT_TRUE(d.misrouted);
    EXPECT_FALSE(d.deviated);
    EXPECT_EQ(d.dirLock, kChainDirCcw);

    // Below the absolute misroute threshold: stay minimal even though
    // the alternative is far less congested.
    loads.down = FakeLoads::wired(40, 0);
    d = adaptive.route(0, request(1), 0, loads);
    EXPECT_EQ(d.hop, ChainHop::Down);
    EXPECT_FALSE(d.misrouted);

    // Budget exhausted: stay minimal no matter the congestion.
    loads.down = FakeLoads::wired(200, 0);
    ChainPacketView spent = request(1);
    spent.misroutes = 1;
    d = adaptive.route(0, spent, 0, loads);
    EXPECT_EQ(d.hop, ChainHop::Down);
    EXPECT_FALSE(d.misrouted);

    // maxMisroutes = 0 disables non-minimal routing entirely.
    AdaptiveRoutingParams no_misroute = params;
    no_misroute.maxMisroutes = 0;
    const AdaptiveChainRouting strict(t, no_misroute);
    d = strict.route(0, request(1), 0, loads);
    EXPECT_EQ(d.hop, ChainHop::Down);
    EXPECT_FALSE(d.misrouted);
}

TEST(AdaptiveRoutingPolicy, DirectionLockIsFollowedDownstream)
{
    const ChainRouteTable t(ChainTopology::Ring, 8);
    const AdaptiveChainRouting adaptive(t, AdaptiveRoutingParams{});
    const FakeLoads idle;

    // A ccw-locked request for cube 2 at cube 3 must keep going ccw
    // (Up) even though it matches the minimal direction anyway; at
    // cube 4 the minimal direction would be ccw too -- the lock's job
    // is cube 0's wrap entry, where minimal routing would bounce it.
    ChainPacketView locked = request(2);
    locked.dirLock = kChainDirCcw;
    locked.misroutes = 1;
    ChainRouteDecision d = adaptive.route(4, locked, 0, idle);
    EXPECT_EQ(d.hop, ChainHop::Up);
    EXPECT_EQ(d.dirLock, kChainDirCcw);

    // cw-locked response: Down mid-ring, Wrap at the last cube, Up
    // once it reaches the host-attached cube.
    ChainPacketView resp = response();
    resp.dirLock = kChainDirCw;
    resp.misroutes = 1;
    EXPECT_EQ(adaptive.route(5, resp, 0, idle).hop, ChainHop::Down);
    EXPECT_EQ(adaptive.route(7, resp, 0, idle).hop, ChainHop::Wrap);
    EXPECT_EQ(adaptive.route(0, resp, 0, idle).hop, ChainHop::Up);
}

TEST(AdaptiveRoutingPolicy, DaisyNeverDeviates)
{
    const ChainRouteTable t(ChainTopology::Daisy, 4);
    const AdaptiveChainRouting adaptive(t, AdaptiveRoutingParams{});
    FakeLoads loads;
    loads.down = FakeLoads::wired(500, 500);
    const ChainRouteDecision d = adaptive.route(0, request(3), 0, loads);
    EXPECT_EQ(d.hop, ChainHop::Down);  // no alternate path exists
    EXPECT_FALSE(d.deviated);
    EXPECT_FALSE(d.misrouted);
}

TEST(RoutingPolicy, ModeStrings)
{
    EXPECT_EQ(chainRoutingFromString("static"), ChainRoutingMode::Static);
    EXPECT_EQ(chainRoutingFromString("adaptive"),
              ChainRoutingMode::Adaptive);
    EXPECT_THROW(chainRoutingFromString("oblivious"), FatalError);
    EXPECT_EQ(toString(ChainRoutingMode::Adaptive), "adaptive");
}

// ---------------------------------------------------------------------
// Route-table hardening
// ---------------------------------------------------------------------

TEST(RouteTable, NeighborUnderflowPanicsInsteadOfWrapping)
{
    const ChainRouteTable t(ChainTopology::Daisy, 4);
    // Cube 0's Up port faces the host; before the guard this returned
    // CubeId(-1) = 4294967295 silently.
    EXPECT_THROW(t.neighbor(0, ChainHop::Up), PanicError);
    EXPECT_EQ(t.neighbor(1, ChainHop::Up), 0u);
    EXPECT_EQ(t.neighbor(2, ChainHop::Down), 3u);
    EXPECT_THROW(t.neighbor(3, ChainHop::Down), PanicError);
    EXPECT_THROW(t.neighbor(4, ChainHop::Up), PanicError);  // range
    EXPECT_EQ(t.neighbor(0, ChainHop::Wrap), 3u);
    EXPECT_EQ(t.neighbor(3, ChainHop::Wrap), 0u);
    EXPECT_EQ(t.neighbor(2, ChainHop::Local), 2u);
}

TEST(RouteTable, RingTowardHostBreaksTiesUp)
{
    // The equidistant cube (N/2) must retrace counter-clockwise (Up),
    // matching the clockwise tie-break requests use from cube 0.
    const ChainRouteTable r4(ChainTopology::Ring, 4);
    EXPECT_EQ(r4.towardHost(2), ChainHop::Up);
    const ChainRouteTable r8(ChainTopology::Ring, 8);
    EXPECT_EQ(r8.towardHost(4), ChainHop::Up);
    // Either side of the tie keeps the shortest direction.
    EXPECT_EQ(r8.towardHost(3), ChainHop::Up);
    EXPECT_EQ(r8.towardHost(5), ChainHop::Down);
    EXPECT_EQ(r8.towardHost(7), ChainHop::Wrap);
}

TEST(RouteTable, RingDistances)
{
    const ChainRouteTable t(ChainTopology::Ring, 8);
    EXPECT_EQ(t.cwDistance(0, 3), 3u);
    EXPECT_EQ(t.ccwDistance(0, 3), 5u);
    EXPECT_EQ(t.cwDistance(6, 1), 3u);
    EXPECT_EQ(t.ccwDistance(6, 1), 5u);
    EXPECT_EQ(t.cwDistance(5, 5), 0u);
    EXPECT_EQ(t.ccwDistance(5, 5), 0u);
    EXPECT_EQ(t.cwHop(7), ChainHop::Wrap);
    EXPECT_EQ(t.cwHop(2), ChainHop::Down);
    EXPECT_EQ(t.ccwHop(0), ChainHop::Wrap);
    EXPECT_EQ(t.ccwHop(2), ChainHop::Up);
}

// ---------------------------------------------------------------------
// System-level guards
// ---------------------------------------------------------------------

SystemConfig
chainConfig(std::uint32_t cubes, const std::string &topology,
            const std::string &routing)
{
    SystemConfig cfg;
    cfg.hmc.chain.numCubes = cubes;
    cfg.hmc.chain.topology = topology;
    cfg.hmc.chain.routing = routing;
    return cfg;
}

/** Issue from three ports, quiesce, check conservation on all cubes. */
void
runConservation(const SystemConfig &cfg)
{
    System sys(cfg);
    for (PortId p = 0; p < 3; ++p) {
        GupsPortSpec gp;
        gp.gen.pattern = sys.addressMap().pattern(16, 16);
        gp.gen.requestBytes = 32;
        gp.gen.capacity = cfg.hmc.totalCapacityBytes();
        gp.gen.seed = 707 + p;
        sys.configureGupsPort(p, gp);
    }
    sys.run(6 * kMicrosecond);
    for (PortId p = 0; p < 3; ++p)
        sys.port(p).setActive(false);
    sys.run(60 * kMicrosecond);

    std::uint64_t issued = 0, completed = 0;
    for (PortId p = 0; p < 3; ++p) {
        issued += sys.port(p).issuedRequests();
        completed += sys.port(p).monitor().accesses();
    }
    EXPECT_GT(issued, 0u);
    EXPECT_EQ(issued, completed);
    std::uint64_t served = 0;
    for (CubeId c = 0; c < sys.numCubes(); ++c) {
        served += sys.device(c).totalRequestsServed();
        EXPECT_EQ(sys.fpga().controller().outstandingToCube(c), 0u);
    }
    EXPECT_EQ(served, issued);
}

TEST(AdaptiveChainSystem, ConservesUnderAdaptiveRouting)
{
    runConservation(chainConfig(4, "ring", "adaptive"));
    runConservation(chainConfig(8, "ring", "adaptive"));
    runConservation(chainConfig(4, "daisy", "adaptive"));
}

TEST(AdaptiveChainSystem, ConservesWithTinyTokensAndEagerMisroutes)
{
    // Stress the misroute path: hair-trigger thresholds, one-packet
    // forward queues, minimal token pools.
    SystemConfig cfg = chainConfig(8, "ring", "adaptive");
    cfg.hmc.linkTokens = 16;
    cfg.hmc.chain.forwardQueuePackets = 1;
    cfg.hmc.chain.adaptiveThresholdFlits = 0;
    cfg.hmc.chain.adaptiveMisrouteThresholdFlits = 1;
    cfg.hmc.chain.adaptiveMaxMisroutes = 4;
    runConservation(cfg);
}

/** Low-load single-stream latency to one cube. */
double
lowLoadLatencyToCube(const SystemConfig &cfg, CubeId cube)
{
    System sys(cfg);
    Rng rng(99 + cube);
    StreamPortSpec sp;
    sp.trace = makeRandomTrace(rng, sys.addressMap().cubePattern(cube),
                               cfg.hmc.totalCapacityBytes(), 512, 32);
    sp.loop = true;
    sp.batchSize = 1;
    sys.configureStreamPort(0, sp);
    sys.run(4 * kMicrosecond);
    return sys.measure(10 * kMicrosecond).avgReadLatencyNs;
}

TEST(AdaptiveChainSystem, ZeroLoadTimingIdenticalToStatic)
{
    // One request in flight never builds occupancy, so the adaptive
    // policy must replay the static paths tick-for-tick.
    for (const char *topo : {"daisy", "ring"}) {
        for (CubeId cube = 0; cube < 4; ++cube) {
            const double s =
                lowLoadLatencyToCube(chainConfig(4, topo, "static"), cube);
            const double a = lowLoadLatencyToCube(
                chainConfig(4, topo, "adaptive"), cube);
            EXPECT_DOUBLE_EQ(s, a) << topo << " cube " << cube;
        }
    }
}

TEST(AdaptiveChainSystem, ZeroLoadTakesNoAdaptiveExits)
{
    SystemConfig cfg = chainConfig(4, "ring", "adaptive");
    System sys(cfg);
    Rng rng(4242);
    StreamPortSpec sp;
    sp.trace = makeRandomTrace(rng, sys.addressMap().cubePattern(2),
                               cfg.hmc.totalCapacityBytes(), 512, 32);
    sp.loop = true;
    sp.batchSize = 1;
    sys.configureStreamPort(0, sp);
    sys.run(10 * kMicrosecond);
    const auto stats = sys.stats();
    for (CubeId c = 0; c < 4; ++c) {
        const std::string base = "system.chain.hmc" + std::to_string(c);
        EXPECT_EQ(stats.at(base + ".fwd.adaptive_deviations"), 0.0);
        EXPECT_EQ(stats.at(base + ".fwd.misroutes"), 0.0);
    }
}

TEST(AdaptiveChainSystem, StaticModeMatchesDefaultConfigExactly)
{
    // Explicitly setting every routing knob through the config
    // round-trip must not perturb static-chain timing at all -- the
    // in-test half of the "static is bit-identical to the pre-policy
    // build" guarantee.
    GupsSpec spec;
    spec.warmup = 3 * kMicrosecond;
    spec.window = 8 * kMicrosecond;
    spec.requestBytes = 64;

    const ExperimentResult base =
        runGups(chainConfig(4, "ring", "static"), spec);

    Config raw;
    chainConfig(4, "ring", "static").toConfig(raw);
    const ExperimentResult same =
        runGups(SystemConfig::fromConfig(raw), spec);

    EXPECT_EQ(base.totalReads, same.totalReads);
    EXPECT_EQ(base.totalWireBytes, same.totalWireBytes);
    EXPECT_DOUBLE_EQ(base.avgReadLatencyNs, same.avgReadLatencyNs);
    EXPECT_DOUBLE_EQ(base.maxReadLatencyNs, same.maxReadLatencyNs);
    EXPECT_EQ(base.totalChainMisroutes, 0u);
}

/** Confine @p base to one cube: AND the masks, OR the fixed bits. */
AddressPattern
confineToCube(const AddressMap &map, AddressPattern base, CubeId cube)
{
    const AddressPattern cp = map.cubePattern(cube);
    base.mask &= cp.mask;
    base.fixed |= cp.fixed;
    return base;
}

/**
 * Hotspot harness: single-bank writes wedge cube @p hot (the bank
 * queue fills, backs into the NoC, and the held link tokens propagate
 * the congestion up the clockwise path), while reads target the
 * distance-tie cube @p tie whose traffic adaptive routing may detour.
 */
void
driveHotAndTie(System &sys, const SystemConfig &cfg, CubeId hot,
               CubeId tie)
{
    for (PortId p = 0; p < 3; ++p) {
        GupsPortSpec gp;
        gp.kind = ReqKind::WriteOnly;
        gp.gen.pattern =
            confineToCube(sys.addressMap(),
                          sys.addressMap().pattern(1, 1), hot);
        gp.gen.requestBytes = 64;
        gp.gen.capacity = cfg.hmc.totalCapacityBytes();
        gp.gen.seed = 11 + p;
        sys.configureGupsPort(p, gp);
    }
    for (PortId p = 3; p < 6; ++p) {
        GupsPortSpec gp;
        gp.gen.pattern = sys.addressMap().cubePattern(tie);
        gp.gen.requestBytes = 64;
        gp.gen.capacity = cfg.hmc.totalCapacityBytes();
        gp.gen.seed = 11 + p;
        sys.configureGupsPort(p, gp);
    }
    sys.run(30 * kMicrosecond);
}

TEST(AdaptiveChainSystem, StarAdaptiveIsIdenticalToStatic)
{
    // A star link reaches exactly one cube: there is no path or entry
    // diversity, so adaptive must match static even under full load
    // (the entry-spread stays disabled for stars).
    GupsSpec spec;
    spec.warmup = 3 * kMicrosecond;
    spec.window = 8 * kMicrosecond;
    spec.requestBytes = 64;
    const ExperimentResult s =
        runGups(chainConfig(2, "star", "static"), spec);
    const ExperimentResult a =
        runGups(chainConfig(2, "star", "adaptive"), spec);
    EXPECT_EQ(s.totalReads, a.totalReads);
    EXPECT_EQ(s.totalWireBytes, a.totalWireBytes);
    EXPECT_DOUBLE_EQ(s.avgReadLatencyNs, a.avgReadLatencyNs);
    EXPECT_DOUBLE_EQ(s.maxReadLatencyNs, a.maxReadLatencyNs);
}

TEST(AdaptiveChainSystem, TieTrafficSplitsBothWaysUnderLoad)
{
    // Wedge cube 1 so the clockwise entry path backs up; the
    // distance-2 tie traffic for cube 2 shares that path under static
    // routing, and adaptive routing must spill part of it onto the
    // wrap link once the backpressure is visible at cube 0.
    SystemConfig cfg = chainConfig(4, "ring", "adaptive");
    cfg.host.tagsPerPort = 256;  // enough in flight to fill the chain
    {
        System sys(cfg);
        driveHotAndTie(sys, cfg, /*hot=*/1, /*tie=*/2);
        const auto stats = sys.stats();
        EXPECT_GT(stats.at("system.chain.hmc0.fwd.route_down"), 0.0);
        EXPECT_GT(stats.at("system.chain.hmc0.fwd.route_wrap"), 0.0);
        EXPECT_GT(stats.at("system.chain.hmc0.fwd.adaptive_deviations"),
                  0.0);
    }

    // The same pressure on a static chain keeps the wrap link to the
    // static flows (no deviations ever).
    cfg.hmc.chain.routing = "static";
    System ssys(cfg);
    driveHotAndTie(ssys, cfg, 1, 2);
    const auto sstats = ssys.stats();
    EXPECT_EQ(sstats.at("system.chain.hmc0.fwd.route_wrap"), 0.0);
    EXPECT_EQ(sstats.at("system.chain.hmc0.fwd.adaptive_deviations"), 0.0);
    EXPECT_EQ(sstats.at("system.chain.hmc0.fwd.misroutes"), 0.0);
}

TEST(ChainSwitchRegression, RxHolBlockingIsAccounted)
{
    // Daisy with one-packet forward queues: cube 0's host RX carries
    // heavy 128 B writes transiting Down to cube 3 interleaved with
    // reads local to cube 0.  The Down queue refuses a write for a
    // pass-through latency at a time, and each such stall wedges the
    // locally deliverable reads queued behind the write -- the
    // head-of-line blocking the rx_hol_stalls counter was added to
    // expose (a static chain, so no adaptive machinery involved).
    SystemConfig cfg = chainConfig(4, "daisy", "static");
    cfg.hmc.chain.forwardQueuePackets = 1;
    cfg.host.tagsPerPort = 256;
    System sys(cfg);
    for (PortId p = 0; p < 3; ++p) {
        GupsPortSpec gp;
        gp.kind = ReqKind::WriteOnly;
        gp.gen.pattern = sys.addressMap().cubePattern(3);
        gp.gen.requestBytes = 128;
        gp.gen.capacity = cfg.hmc.totalCapacityBytes();
        gp.gen.seed = 31 + p;
        sys.configureGupsPort(p, gp);
    }
    for (PortId p = 3; p < 6; ++p) {
        GupsPortSpec gp;
        gp.gen.pattern = sys.addressMap().cubePattern(0);
        gp.gen.requestBytes = 64;
        gp.gen.capacity = cfg.hmc.totalCapacityBytes();
        gp.gen.seed = 31 + p;
        sys.configureGupsPort(p, gp);
    }
    sys.run(30 * kMicrosecond);
    const auto stats = sys.stats();
    double hol = 0.0;
    for (CubeId c = 0; c < 4; ++c)
        hol += stats.at("system.chain.hmc" + std::to_string(c) +
                        ".fwd.rx_hol_stalls");
    EXPECT_GT(hol, 0.0);
}

TEST(AdaptiveChainSystem, InvalidRoutingConfigPanics)
{
    SystemConfig bad = chainConfig(4, "ring", "oblivious");
    EXPECT_THROW(bad.validate(), FatalError);
    bad = chainConfig(4, "ring", "adaptive");
    bad.hmc.chain.adaptiveMaxMisroutes = 9;
    EXPECT_THROW(bad.validate(), FatalError);
}

}  // namespace
}  // namespace hmcsim
