#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "common/types.h"

namespace hmcsim {
namespace {

TEST(Counter, IncAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(SampleStats, Empty)
{
    SampleStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(SampleStats, BasicMoments)
{
    SampleStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.stddev(), 2.0, 1e-12);  // classic example
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SampleStats, SingleSampleVarianceZero)
{
    SampleStats s;
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(SampleStats, MergeMatchesCombined)
{
    SampleStats a, b, all;
    for (int i = 0; i < 50; ++i) {
        const double v = i * 0.37;
        (i % 2 ? a : b).add(v);
        all.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SampleStats, MergeWithEmpty)
{
    SampleStats a, empty;
    a.add(1.0);
    a.add(3.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);

    SampleStats c;
    c.merge(a);
    EXPECT_EQ(c.count(), 2u);
    EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(SampleStats, Reset)
{
    SampleStats s;
    s.add(5.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    s.add(1.0);
    EXPECT_DOUBLE_EQ(s.mean(), 1.0);
}

TEST(RateStat, BandwidthMath)
{
    RateStat r;
    r.begin(0);
    r.add(1000);
    r.end(1000);  // 1000 B over 1000 ps -> 1 B/ps = 1000 GB/s
    EXPECT_DOUBLE_EQ(r.gbPerSec(), 1000.0);
}

TEST(RateStat, RealisticWindow)
{
    RateStat r;
    r.begin(0);
    // 23 GB/s over 10 us = 230 kB.
    r.add(230000);
    r.end(10 * kMicrosecond);
    EXPECT_NEAR(r.gbPerSec(), 23.0, 1e-9);
}

TEST(RateStat, EmptyWindowIsZero)
{
    RateStat r;
    r.begin(5);
    r.add(100);
    r.end(5);
    EXPECT_DOUBLE_EQ(r.gbPerSec(), 0.0);
}

TEST(RateStat, EndWithoutBeginIsNoOp)
{
    RateStat r;
    r.add(4096);
    r.end(1000);  // never opened: must not fabricate a [0, 1000] window
    EXPECT_FALSE(r.open());
    EXPECT_EQ(r.window(), 0u);
    EXPECT_DOUBLE_EQ(r.gbPerSec(), 0.0);
}

TEST(RateStat, EndTwicePreservesClosedWindow)
{
    RateStat r;
    r.begin(0);
    r.add(1000);
    r.end(1000);
    const double gbs = r.gbPerSec();
    r.end(5000);  // already closed: second end() must not widen it
    EXPECT_EQ(r.window(), 1000u);
    EXPECT_DOUBLE_EQ(r.gbPerSec(), gbs);
}

TEST(RateStat, ReBeginRestartsOpenWindow)
{
    RateStat r;
    r.begin(0);
    r.add(999999);
    EXPECT_TRUE(r.open());
    r.begin(2000);  // restart discards the half-measured window
    EXPECT_TRUE(r.open());
    EXPECT_EQ(r.bytes(), 0u);
    r.add(1000);
    r.end(3000);
    EXPECT_EQ(r.window(), 1000u);
    EXPECT_DOUBLE_EQ(r.gbPerSec(), 1000.0);
}

}  // namespace
}  // namespace hmcsim
