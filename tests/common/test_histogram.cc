#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/histogram.h"
#include "common/log.h"

namespace hmcsim {
namespace {

TEST(Histogram, BinGeometry)
{
    Histogram h(0.0, 100.0, 10);
    EXPECT_EQ(h.bins(), 10u);
    EXPECT_DOUBLE_EQ(h.binWidth(), 10.0);
    EXPECT_DOUBLE_EQ(h.binLow(0), 0.0);
    EXPECT_DOUBLE_EQ(h.binLow(9), 90.0);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 5.0);
}

TEST(Histogram, AddAndCount)
{
    Histogram h(0.0, 10.0, 5);
    h.add(0.5);
    h.add(1.5);
    h.add(9.5);
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(4), 1u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, SaturatingEdges)
{
    Histogram h(10.0, 20.0, 2);
    h.add(-100.0);  // below -> bin 0
    h.add(9.9);
    h.add(20.0);    // at hi -> last bin
    h.add(1e9);
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(1), 2u);
}

TEST(Histogram, BoundaryBelongsToUpperBin)
{
    Histogram h(0.0, 10.0, 5);
    EXPECT_EQ(h.binIndex(2.0), 1u);
    EXPECT_EQ(h.binIndex(1.9999), 0u);
}

TEST(Histogram, BinIndexClampsBoundariesAndNaN)
{
    // Regression: binIndex(NaN) used to fall through every comparison
    // and cast NaN to size_t (undefined behaviour); values just below
    // lo_ must clamp to bin 0 without relying on float rounding.
    Histogram h(100.0, 200.0, 10);
    EXPECT_EQ(h.binIndex(100.0), 0u);                       // x = lo
    EXPECT_EQ(h.binIndex(200.0), 9u);                       // x = hi
    EXPECT_EQ(h.binIndex(std::nan("")), 0u);                // x = NaN
    EXPECT_EQ(h.binIndex(std::nextafter(100.0, 0.0)), 0u);  // lo - eps
    EXPECT_EQ(h.binIndex(std::nextafter(200.0, 1e9)), 9u);  // hi + eps
    EXPECT_EQ(h.binIndex(-std::numeric_limits<double>::infinity()), 0u);
    EXPECT_EQ(h.binIndex(std::numeric_limits<double>::infinity()), 9u);

    h.add(std::nan(""));  // must count, in bin 0, not crash
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.total(), 1u);
}

TEST(Histogram, NegativeRangeBoundaries)
{
    Histogram h(-50.0, 50.0, 10);
    EXPECT_EQ(h.binIndex(-50.0), 0u);
    EXPECT_EQ(h.binIndex(std::nextafter(-50.0, -1e9)), 0u);
    EXPECT_EQ(h.binIndex(0.0), 5u);
    EXPECT_EQ(h.binIndex(50.0), 9u);
}

TEST(Histogram, Percentile)
{
    Histogram h(0.0, 100.0, 10);
    for (int i = 0; i < 99; ++i)
        h.add(5.0);  // bin 0
    h.add(95.0);     // bin 9
    EXPECT_DOUBLE_EQ(h.percentile(50.0), 10.0);   // inside bin 0
    EXPECT_DOUBLE_EQ(h.percentile(99.0), 10.0);   // 99/100 in bin 0
    EXPECT_DOUBLE_EQ(h.percentile(100.0), 100.0); // tail bin's edge
    EXPECT_DOUBLE_EQ(Histogram(0.0, 1.0, 2).percentile(99.0), 0.0);
    EXPECT_THROW(h.percentile(-1.0), PanicError);
    EXPECT_THROW(h.percentile(101.0), PanicError);
}

TEST(Histogram, Fractions)
{
    Histogram h(0.0, 4.0, 4);
    h.add(0.5);
    h.add(0.6);
    h.add(2.5);
    h.add(3.5);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.5);
    EXPECT_DOUBLE_EQ(h.fraction(2), 0.25);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.0);
}

TEST(Histogram, EmptyFractionIsZero)
{
    Histogram h(0.0, 1.0, 2);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
}

TEST(Histogram, Merge)
{
    Histogram a(0.0, 10.0, 5), b(0.0, 10.0, 5);
    a.add(1.0);
    b.add(1.0);
    b.add(9.0);
    a.merge(b);
    EXPECT_EQ(a.total(), 3u);
    EXPECT_EQ(a.count(0), 2u);
    EXPECT_EQ(a.count(4), 1u);
}

TEST(Histogram, MergeShapeMismatchPanics)
{
    Histogram a(0.0, 10.0, 5), b(0.0, 10.0, 4);
    EXPECT_THROW(a.merge(b), PanicError);
    Histogram c(0.0, 11.0, 5);
    EXPECT_THROW(a.merge(c), PanicError);
}

TEST(Histogram, Reset)
{
    Histogram h(0.0, 1.0, 2);
    h.add(0.1);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.count(0), 0u);
}

TEST(Histogram, InvalidConstructionPanics)
{
    EXPECT_THROW(Histogram(0.0, 1.0, 0), PanicError);
    EXPECT_THROW(Histogram(1.0, 1.0, 4), PanicError);
    EXPECT_THROW(Histogram(2.0, 1.0, 4), PanicError);
}

TEST(Histogram, CountOutOfRangePanics)
{
    Histogram h(0.0, 1.0, 2);
    EXPECT_THROW(h.count(2), PanicError);
}

}  // namespace
}  // namespace hmcsim
