#include <gtest/gtest.h>

#include <set>

#include "common/log.h"
#include "common/rng.h"

namespace hmcsim {
namespace {

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng a(7);
    const std::uint64_t first = a.next();
    a.next();
    a.seed(7);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, NextBelowInRange)
{
    Rng r(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.nextBelow(17), 17u);
}

TEST(Rng, NextBelowOneIsZero)
{
    Rng r(3);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(r.nextBelow(1), 0u);
}

TEST(Rng, NextBelowZeroPanics)
{
    Rng r(3);
    EXPECT_THROW(r.nextBelow(0), PanicError);
}

TEST(Rng, NextRangeInclusive)
{
    Rng r(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = r.nextRange(10, 13);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 13u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u);  // all four values hit
}

TEST(Rng, NextRangeBadBoundsPanics)
{
    Rng r(5);
    EXPECT_THROW(r.nextRange(10, 9), PanicError);
}

TEST(Rng, NextDoubleUnitInterval)
{
    Rng r(9);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double v = r.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliRoughlyCalibrated)
{
    Rng r(11);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.nextBool(0.25);
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(Rng, UniformityOverBuckets)
{
    Rng r(13);
    int buckets[8] = {};
    const int n = 80000;
    for (int i = 0; i < n; ++i)
        ++buckets[r.nextBelow(8)];
    for (int b = 0; b < 8; ++b)
        EXPECT_NEAR(buckets[b], n / 8, n / 8 * 0.1);
}

TEST(SplitMix, KnownToAdvanceState)
{
    std::uint64_t s = 0;
    const std::uint64_t v1 = splitmix64(s);
    const std::uint64_t v2 = splitmix64(s);
    EXPECT_NE(v1, v2);
    EXPECT_NE(s, 0u);
}

TEST(MixSeeds, Deterministic)
{
    EXPECT_EQ(mixSeeds(42, 7), mixSeeds(42, 7));
    EXPECT_NE(mixSeeds(42, 7), mixSeeds(42, 8));
    EXPECT_NE(mixSeeds(42, 7), mixSeeds(43, 7));
}

TEST(MixSeeds, AdjacentStreamsDecorrelate)
{
    // Adjacent stream ids must land on seeds that differ in roughly
    // half their bits (a "seed + portId" scheme differs in one or two
    // low bits), and the seeds must all be distinct.
    std::set<std::uint64_t> seen;
    for (std::uint64_t p = 0; p < 64; ++p) {
        const std::uint64_t a = mixSeeds(12345, p);
        const std::uint64_t b = mixSeeds(12345, p + 1);
        const int hamming = __builtin_popcountll(a ^ b);
        EXPECT_GT(hamming, 12);
        EXPECT_LT(hamming, 52);
        seen.insert(a);
    }
    EXPECT_EQ(seen.size(), 64u);
}

TEST(MixSeeds, FirstDrawsAreDecorrelated)
{
    // The first outputs of generators seeded from adjacent streams
    // behave like independent uniform draws.
    double sum = 0.0;
    for (std::uint64_t p = 0; p < 4096; ++p) {
        Rng r(mixSeeds(999, p));
        sum += r.nextDouble();
    }
    EXPECT_NEAR(sum / 4096.0, 0.5, 0.03);
}

}  // namespace
}  // namespace hmcsim
