#include <gtest/gtest.h>

#include "common/bitutil.h"

namespace hmcsim {
namespace {

TEST(BitUtil, ExtractBasic)
{
    EXPECT_EQ(extractBits(0xFF00, 8, 8), 0xFFu);
    EXPECT_EQ(extractBits(0xFF00, 0, 8), 0x00u);
    EXPECT_EQ(extractBits(0xABCD, 4, 4), 0xCu);
}

TEST(BitUtil, ExtractZeroWidth)
{
    EXPECT_EQ(extractBits(0xFFFF, 4, 0), 0u);
}

TEST(BitUtil, ExtractFullWidth)
{
    const std::uint64_t v = 0xDEADBEEFCAFEF00Dull;
    EXPECT_EQ(extractBits(v, 0, 64), v);
}

TEST(BitUtil, InsertBasic)
{
    EXPECT_EQ(insertBits(0, 8, 8, 0xAB), 0xAB00u);
    EXPECT_EQ(insertBits(0xFFFF, 4, 8, 0), 0xF00Fu);
}

TEST(BitUtil, InsertMasksField)
{
    // Field wider than width is truncated.
    EXPECT_EQ(insertBits(0, 0, 4, 0xFF), 0xFu);
}

TEST(BitUtil, InsertExtractRoundTrip)
{
    for (unsigned lo = 0; lo < 32; lo += 3) {
        for (unsigned w = 1; w <= 16; w += 5) {
            const std::uint64_t field = 0x5A5A & ((1ull << w) - 1);
            const std::uint64_t v = insertBits(0, lo, w, field);
            EXPECT_EQ(extractBits(v, lo, w), field)
                << "lo=" << lo << " w=" << w;
        }
    }
}

TEST(BitUtil, IsPow2)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_TRUE(isPow2(1ull << 40));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(3));
    EXPECT_FALSE(isPow2(12));
}

TEST(BitUtil, Log2Exact)
{
    EXPECT_EQ(log2Exact(1), 0u);
    EXPECT_EQ(log2Exact(2), 1u);
    EXPECT_EQ(log2Exact(128), 7u);
    EXPECT_EQ(log2Exact(1ull << 32), 32u);
}

TEST(BitUtil, AlignUp)
{
    EXPECT_EQ(alignUp(0, 16), 0u);
    EXPECT_EQ(alignUp(1, 16), 16u);
    EXPECT_EQ(alignUp(16, 16), 16u);
    EXPECT_EQ(alignUp(17, 16), 32u);
}

}  // namespace
}  // namespace hmcsim
