#include <gtest/gtest.h>

#include "common/config.h"
#include "common/log.h"

namespace hmcsim {
namespace {

TEST(Config, SetGetString)
{
    Config c;
    c.set("a.b", "hello");
    EXPECT_TRUE(c.has("a.b"));
    EXPECT_EQ(c.getString("a.b"), "hello");
    EXPECT_EQ(c.getString("missing", "dflt"), "dflt");
}

TEST(Config, MissingRequiredKeyIsFatal)
{
    Config c;
    EXPECT_THROW(c.getString("nope"), FatalError);
}

TEST(Config, TypedAccess)
{
    Config c;
    c.setU64("n", 42);
    c.setDouble("d", 2.5);
    c.setBool("b", true);
    EXPECT_EQ(c.getU64("n"), 42u);
    EXPECT_DOUBLE_EQ(c.getDouble("d"), 2.5);
    EXPECT_TRUE(c.getBool("b"));
    EXPECT_EQ(c.getU64("missing", 7), 7u);
    EXPECT_DOUBLE_EQ(c.getDouble("missing", 1.5), 1.5);
    EXPECT_FALSE(c.getBool("missing", false));
}

TEST(Config, MalformedValueIsFatal)
{
    Config c;
    c.set("n", "not-a-number");
    EXPECT_THROW(c.getU64("n"), FatalError);
    EXPECT_THROW(c.getDouble("n"), FatalError);
    EXPECT_THROW(c.getBool("n"), FatalError);
    // Even with a fallback, a present-but-malformed value is an error.
    EXPECT_THROW(c.getU64("n", 3), FatalError);
}

TEST(Config, ParseIniSections)
{
    Config c;
    c.parseString("top = 1\n"
                  "[hmc]\n"
                  "num_vaults = 16  # comment\n"
                  "topology = quadrant_xbar\n"
                  "[host]\n"
                  "num_ports=9\n");
    EXPECT_EQ(c.getU64("top"), 1u);
    EXPECT_EQ(c.getU64("hmc.num_vaults"), 16u);
    EXPECT_EQ(c.getString("hmc.topology"), "quadrant_xbar");
    EXPECT_EQ(c.getU64("host.num_ports"), 9u);
}

TEST(Config, ParseCommentsAndBlank)
{
    Config c;
    c.parseString("# full comment\n"
                  "\n"
                  "; semicolon comment\n"
                  "key = value ; trailing\n");
    EXPECT_EQ(c.getString("key"), "value");
}

TEST(Config, ParseErrors)
{
    Config c;
    EXPECT_THROW(c.parseString("novalue\n"), FatalError);
    EXPECT_THROW(c.parseString("[unclosed\n"), FatalError);
    EXPECT_THROW(c.parseString("= bare\n"), FatalError);
}

TEST(Config, LaterKeysWin)
{
    Config c;
    c.parseString("k = 1\nk = 2\n");
    EXPECT_EQ(c.getU64("k"), 2u);
}

TEST(Config, Overrides)
{
    Config c;
    c.set("a", "1");
    c.applyOverrides({"a=2", "b.c = 3"});
    EXPECT_EQ(c.getU64("a"), 2u);
    EXPECT_EQ(c.getU64("b.c"), 3u);
    EXPECT_THROW(c.applyOverrides({"noequals"}), FatalError);
}

TEST(Config, KeysSortedAndToString)
{
    Config c;
    c.set("z", "1");
    c.set("a", "2");
    const auto keys = c.keys();
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0], "a");
    EXPECT_EQ(keys[1], "z");
    EXPECT_NE(c.toString().find("a = 2"), std::string::npos);
}

TEST(Config, MergeOtherWins)
{
    Config a;
    a.set("k", "1");
    a.set("only_a", "x");
    Config b;
    b.set("k", "2");
    a.merge(b);
    EXPECT_EQ(a.getU64("k"), 2u);
    EXPECT_EQ(a.getString("only_a"), "x");
}

TEST(Config, Erase)
{
    Config c;
    c.set("k", "1");
    EXPECT_TRUE(c.erase("k"));
    EXPECT_FALSE(c.erase("k"));
    EXPECT_FALSE(c.has("k"));
}

TEST(Config, ParseFileMissingIsFatal)
{
    Config c;
    EXPECT_THROW(c.parseFile("/nonexistent/path/cfg.ini"), FatalError);
}

}  // namespace
}  // namespace hmcsim
