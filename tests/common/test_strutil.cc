#include <gtest/gtest.h>

#include "common/strutil.h"

namespace hmcsim {
namespace {

TEST(StrUtil, Trim)
{
    EXPECT_EQ(trim("  abc  "), "abc");
    EXPECT_EQ(trim("abc"), "abc");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("\t a b \n"), "a b");
}

TEST(StrUtil, Split)
{
    const auto v = split("a,b,,c", ',');
    ASSERT_EQ(v.size(), 4u);
    EXPECT_EQ(v[0], "a");
    EXPECT_EQ(v[2], "");
    EXPECT_EQ(v[3], "c");
}

TEST(StrUtil, SplitKeepsTrailingEmpty)
{
    const auto v = split("a,", ',');
    ASSERT_EQ(v.size(), 2u);
    EXPECT_EQ(v[1], "");
}

TEST(StrUtil, SplitWhitespace)
{
    const auto v = splitWhitespace("  a \t b\nc ");
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], "a");
    EXPECT_EQ(v[1], "b");
    EXPECT_EQ(v[2], "c");
}

TEST(StrUtil, StartsWith)
{
    EXPECT_TRUE(startsWith("hmc.num_vaults", "hmc."));
    EXPECT_FALSE(startsWith("hmc", "hmc."));
}

TEST(StrUtil, ToLower)
{
    EXPECT_EQ(toLower("AbC123"), "abc123");
}

TEST(StrUtil, ParseU64)
{
    std::uint64_t v = 0;
    EXPECT_TRUE(parseU64("42", v));
    EXPECT_EQ(v, 42u);
    EXPECT_TRUE(parseU64("0x10", v));
    EXPECT_EQ(v, 16u);
    EXPECT_FALSE(parseU64("12abc", v));
    EXPECT_FALSE(parseU64("", v));
    EXPECT_FALSE(parseU64("-3", v));
    EXPECT_TRUE(parseU64(" 7 ", v));
    EXPECT_EQ(v, 7u);
}

TEST(StrUtil, ParseI64)
{
    std::int64_t v = 0;
    EXPECT_TRUE(parseI64("-42", v));
    EXPECT_EQ(v, -42);
    EXPECT_FALSE(parseI64("4.2", v));
}

TEST(StrUtil, ParseDouble)
{
    double v = 0.0;
    EXPECT_TRUE(parseDouble("3.5", v));
    EXPECT_DOUBLE_EQ(v, 3.5);
    EXPECT_TRUE(parseDouble("-1e3", v));
    EXPECT_DOUBLE_EQ(v, -1000.0);
    EXPECT_FALSE(parseDouble("abc", v));
    EXPECT_FALSE(parseDouble("1.5x", v));
}

TEST(StrUtil, ParseBool)
{
    bool v = false;
    EXPECT_TRUE(parseBool("true", v));
    EXPECT_TRUE(v);
    EXPECT_TRUE(parseBool("OFF", v));
    EXPECT_FALSE(v);
    EXPECT_TRUE(parseBool("1", v));
    EXPECT_TRUE(v);
    EXPECT_FALSE(parseBool("maybe", v));
}

TEST(StrUtil, FormatDouble)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(2.0, 0), "2");
}

}  // namespace
}  // namespace hmcsim
