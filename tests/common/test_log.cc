#include <gtest/gtest.h>

#include "common/log.h"

namespace hmcsim {
namespace {

class LogTest : public ::testing::Test
{
  protected:
    void SetUp() override { previous_ = Logger::level(); }
    void TearDown() override { Logger::setLevel(previous_); }
    LogLevel previous_ = LogLevel::Warn;
};

TEST_F(LogTest, CaptureWarn)
{
    Logger::setLevel(LogLevel::Warn);
    Logger::captureBegin();
    warn("something odd");
    const std::string out = Logger::captureEnd();
    EXPECT_NE(out.find("warn: something odd"), std::string::npos);
}

TEST_F(LogTest, LevelFiltering)
{
    Logger::setLevel(LogLevel::Warn);
    Logger::captureBegin();
    inform("you should not see this");
    warn("but this yes");
    const std::string out = Logger::captureEnd();
    EXPECT_EQ(out.find("not see"), std::string::npos);
    EXPECT_NE(out.find("but this yes"), std::string::npos);
}

TEST_F(LogTest, InfoLevelShowsInform)
{
    Logger::setLevel(LogLevel::Info);
    Logger::captureBegin();
    inform("status line");
    const std::string out = Logger::captureEnd();
    EXPECT_NE(out.find("info: status line"), std::string::npos);
}

TEST_F(LogTest, SilentSuppressesEverything)
{
    Logger::setLevel(LogLevel::Silent);
    Logger::captureBegin();
    warn("hidden");
    Logger::emit(LogLevel::Error, "also hidden");
    EXPECT_EQ(Logger::captureEnd(), "");
}

TEST_F(LogTest, FatalThrowsWithMessage)
{
    Logger::setLevel(LogLevel::Silent);
    try {
        fatal("bad user input");
        FAIL() << "fatal() must throw";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "bad user input");
    }
}

TEST_F(LogTest, PanicThrowsLogicError)
{
    Logger::setLevel(LogLevel::Silent);
    EXPECT_THROW(panic("invariant broken"), PanicError);
}

TEST_F(LogTest, FatalIsNotCatchableAsPanic)
{
    Logger::setLevel(LogLevel::Silent);
    bool caught_fatal = false;
    try {
        fatal("x");
    } catch (const PanicError &) {
        FAIL() << "FatalError must not be a PanicError";
    } catch (const FatalError &) {
        caught_fatal = true;
    }
    EXPECT_TRUE(caught_fatal);
}

}  // namespace
}  // namespace hmcsim
