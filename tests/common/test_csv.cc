#include <gtest/gtest.h>

#include <sstream>

#include "common/csv.h"
#include "common/log.h"

namespace hmcsim {
namespace {

TEST(Csv, HeaderAndRows)
{
    std::ostringstream oss;
    {
        CsvWriter w(oss, {"a", "b"});
        w.row().cell(1).cell(2.5, 1);
        w.row().cell("x").cell(std::uint64_t{7});
        w.finish();
    }
    EXPECT_EQ(oss.str(), "a,b\n1,2.5\nx,7\n");
}

TEST(Csv, NoRowsNoHeader)
{
    std::ostringstream oss;
    {
        CsvWriter w(oss, {"a"});
        w.finish();
    }
    EXPECT_EQ(oss.str(), "");
}

TEST(Csv, EscapingCommasAndQuotes)
{
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, EscapedCellRoundTrips)
{
    std::ostringstream oss;
    {
        CsvWriter w(oss, {"v"});
        w.row().cell("a,b");
        w.finish();
    }
    EXPECT_EQ(oss.str(), "v\n\"a,b\"\n");
}

TEST(Csv, WrongArityPanics)
{
    std::ostringstream oss;
    CsvWriter w(oss, {"a", "b"});
    w.row().cell(1);
    EXPECT_THROW(w.row(), PanicError);  // flushing a short row
}

TEST(Csv, CellWithoutRowPanics)
{
    std::ostringstream oss;
    CsvWriter w(oss, {"a"});
    EXPECT_THROW(w.cell(1), PanicError);
}

TEST(Csv, EmptyColumnsPanics)
{
    std::ostringstream oss;
    EXPECT_THROW(CsvWriter(oss, {}), PanicError);
}

TEST(Csv, DestructorFlushesOpenRow)
{
    std::ostringstream oss;
    {
        CsvWriter w(oss, {"a"});
        w.row().cell(3);
    }
    EXPECT_EQ(oss.str(), "a\n3\n");
}

TEST(Csv, NegativeAndPrecision)
{
    std::ostringstream oss;
    {
        CsvWriter w(oss, {"a", "b"});
        w.row().cell(std::int64_t{-5}).cell(1.0 / 3.0, 4);
        w.finish();
    }
    EXPECT_EQ(oss.str(), "a,b\n-5,0.3333\n");
}

}  // namespace
}  // namespace hmcsim
