#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "analysis/report.h"

namespace hmcsim {
namespace {

TEST(Report, SectionBanner)
{
    std::ostringstream oss;
    Report r(oss);
    r.section("Fig. 6");
    EXPECT_NE(oss.str().find("==== Fig. 6 ===="), std::string::npos);
}

TEST(Report, CompareShowsRatio)
{
    std::ostringstream oss;
    Report r(oss);
    r.compare("bandwidth", 23.0, 22.0, "GB/s");
    const std::string out = oss.str();
    EXPECT_NE(out.find("bandwidth"), std::string::npos);
    EXPECT_NE(out.find("23.00"), std::string::npos);
    EXPECT_NE(out.find("22.00"), std::string::npos);
    EXPECT_NE(out.find("ratio=0.96"), std::string::npos);
    EXPECT_NE(out.find("paper="), std::string::npos);
}

TEST(Report, ApproximateMarker)
{
    std::ostringstream oss;
    Report r(oss);
    r.compare("knee", 100.0, 90.0, "requests", true);
    EXPECT_NE(oss.str().find("paper~"), std::string::npos);
}

TEST(Report, ZeroPaperValueRatioIsZero)
{
    std::ostringstream oss;
    Report r(oss);
    r.compare("x", 0.0, 5.0, "ns");
    EXPECT_NE(oss.str().find("ratio=0.00"), std::string::npos);
}

TEST(Report, MeasuredOnly)
{
    std::ostringstream oss;
    Report r(oss);
    r.measured("noc latency", 117.0, "ns");
    EXPECT_NE(oss.str().find("117.00 ns"), std::string::npos);
}

TEST(Report, Note)
{
    std::ostringstream oss;
    Report r(oss);
    r.note("substitution: simulated cube");
    EXPECT_NE(oss.str().find("substitution"), std::string::npos);
}

TEST(Report, PowerRowShowsAllColumns)
{
    std::ostringstream oss;
    Report r(oss);
    r.power(123456.0, 87.5, 42.0);
    const std::string out = oss.str();
    EXPECT_NE(out.find("power/thermal"), std::string::npos);
    EXPECT_NE(out.find("energy_pj=123456"), std::string::npos);
    EXPECT_NE(out.find("temp_c=87.5"), std::string::npos);
    EXPECT_NE(out.find("throttle_pct=42.0"), std::string::npos);
}

TEST(Report, PowerRowZeroWhenUnthrottled)
{
    std::ostringstream oss;
    Report r(oss);
    r.power(0.0, 45.0, 0.0);
    EXPECT_NE(oss.str().find("throttle_pct=0.0"), std::string::npos);
}

TEST(ReportJson, EmitsNothingUntilFinish)
{
    std::ostringstream oss;
    Report r(oss, Report::Format::Json);
    r.section("s");
    r.measured("x", 1.0, "ns");
    EXPECT_TRUE(oss.str().empty());
    r.finish();
    EXPECT_FALSE(oss.str().empty());
}

TEST(ReportJson, DocumentStructure)
{
    std::ostringstream oss;
    {
        Report r(oss, Report::Format::Json);
        r.section("Fig. 6 paper-vs-measured");
        r.compare("bandwidth", 23.0, 22.0, "GB/s");
        r.measured("noc latency", 117.0, "ns");
        r.note("a \"quoted\" note");
        r.section("chain");
        r.perCube(2, 1000, 2, 25.0);
        r.perHost(1, 3, 500, 11.5, 750.0);
        r.power(123456.0, 87.5, 42.0);
        // destructor flushes without an explicit finish()
    }
    const std::string out = oss.str();
    EXPECT_NE(out.find("\"sections\""), std::string::npos);
    EXPECT_NE(out.find("\"title\": \"Fig. 6 paper-vs-measured\""),
              std::string::npos);
    EXPECT_NE(out.find("\"type\": \"compare\""), std::string::npos);
    EXPECT_NE(out.find("\"paper\": 23"), std::string::npos);
    EXPECT_NE(out.find("\"measured\": 22"), std::string::npos);
    EXPECT_NE(out.find("\"unit\": \"GB/s\""), std::string::npos);
    EXPECT_NE(out.find("\"approximate\": false"), std::string::npos);
    EXPECT_NE(out.find("\"type\": \"measured\""), std::string::npos);
    // Strings are escaped, not raw.
    EXPECT_NE(out.find("a \\\"quoted\\\" note"), std::string::npos);
    EXPECT_NE(out.find("\"type\": \"per_cube\""), std::string::npos);
    EXPECT_NE(out.find("\"type\": \"per_host\""), std::string::npos);
    EXPECT_NE(out.find("\"type\": \"power\""), std::string::npos);
    // No text-mode banner artifacts.
    EXPECT_EQ(out.find("===="), std::string::npos);
    // Balanced braces/brackets (cheap well-formedness check).
    long depth = 0;
    bool in_str = false;
    char prev = '\0';
    for (const char c : out) {
        if (in_str) {
            if (c == '"' && prev != '\\')
                in_str = false;
            // Two consecutive escapes ("\\") must not hide the quote.
            prev = (prev == '\\' && c == '\\') ? '\0' : c;
            continue;
        }
        if (c == '"')
            in_str = true;
        else if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']')
            --depth;
        EXPECT_GE(depth, 0);
        prev = c;
    }
    EXPECT_EQ(depth, 0);
    EXPECT_FALSE(in_str);
}

TEST(ReportJson, FinishIsIdempotent)
{
    std::ostringstream oss;
    Report r(oss, Report::Format::Json);
    r.measured("x", 1.0, "ns");
    r.finish();
    const std::string once = oss.str();
    r.finish();
    EXPECT_EQ(oss.str(), once);
}

TEST(ReportJson, RowsBeforeAnySectionGetImplicitSection)
{
    std::ostringstream oss;
    Report r(oss, Report::Format::Json);
    r.measured("x", 1.0, "ns");
    r.finish();
    EXPECT_NE(oss.str().find("\"title\": \"\""), std::string::npos);
}

TEST(ReportJson, NonFiniteValuesBecomeNull)
{
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::quiet_NaN()),
              "null");
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()),
              "null");
    EXPECT_EQ(jsonNumber(2.5), "2.5");
}

TEST(ReportJson, EscapeControlCharacters)
{
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape("tab\there"), "tab\\there");
    EXPECT_EQ(jsonEscape("back\\slash"), "back\\\\slash");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

}  // namespace
}  // namespace hmcsim
