#include <gtest/gtest.h>

#include <sstream>

#include "analysis/report.h"

namespace hmcsim {
namespace {

TEST(Report, SectionBanner)
{
    std::ostringstream oss;
    Report r(oss);
    r.section("Fig. 6");
    EXPECT_NE(oss.str().find("==== Fig. 6 ===="), std::string::npos);
}

TEST(Report, CompareShowsRatio)
{
    std::ostringstream oss;
    Report r(oss);
    r.compare("bandwidth", 23.0, 22.0, "GB/s");
    const std::string out = oss.str();
    EXPECT_NE(out.find("bandwidth"), std::string::npos);
    EXPECT_NE(out.find("23.00"), std::string::npos);
    EXPECT_NE(out.find("22.00"), std::string::npos);
    EXPECT_NE(out.find("ratio=0.96"), std::string::npos);
    EXPECT_NE(out.find("paper="), std::string::npos);
}

TEST(Report, ApproximateMarker)
{
    std::ostringstream oss;
    Report r(oss);
    r.compare("knee", 100.0, 90.0, "requests", true);
    EXPECT_NE(oss.str().find("paper~"), std::string::npos);
}

TEST(Report, ZeroPaperValueRatioIsZero)
{
    std::ostringstream oss;
    Report r(oss);
    r.compare("x", 0.0, 5.0, "ns");
    EXPECT_NE(oss.str().find("ratio=0.00"), std::string::npos);
}

TEST(Report, MeasuredOnly)
{
    std::ostringstream oss;
    Report r(oss);
    r.measured("noc latency", 117.0, "ns");
    EXPECT_NE(oss.str().find("117.00 ns"), std::string::npos);
}

TEST(Report, Note)
{
    std::ostringstream oss;
    Report r(oss);
    r.note("substitution: simulated cube");
    EXPECT_NE(oss.str().find("substitution"), std::string::npos);
}

TEST(Report, PowerRowShowsAllColumns)
{
    std::ostringstream oss;
    Report r(oss);
    r.power(123456.0, 87.5, 42.0);
    const std::string out = oss.str();
    EXPECT_NE(out.find("power/thermal"), std::string::npos);
    EXPECT_NE(out.find("energy_pj=123456"), std::string::npos);
    EXPECT_NE(out.find("temp_c=87.5"), std::string::npos);
    EXPECT_NE(out.find("throttle_pct=42.0"), std::string::npos);
}

TEST(Report, PowerRowZeroWhenUnthrottled)
{
    std::ostringstream oss;
    Report r(oss);
    r.power(0.0, 45.0, 0.0);
    EXPECT_NE(oss.str().find("throttle_pct=0.0"), std::string::npos);
}

}  // namespace
}  // namespace hmcsim
