#include <gtest/gtest.h>

#include "analysis/heatmap.h"
#include "common/log.h"

namespace hmcsim {
namespace {

TEST(Heatmap, AccumulatesCells)
{
    Heatmap h({"r0", "r1"}, {"c0", "c1", "c2"});
    EXPECT_EQ(h.rows(), 2u);
    EXPECT_EQ(h.cols(), 3u);
    h.add(0, 1);
    h.add(0, 1, 2.0);
    EXPECT_DOUBLE_EQ(h.at(0, 1), 3.0);
    EXPECT_DOUBLE_EQ(h.at(1, 2), 0.0);
}

TEST(Heatmap, RowFractionNormalization)
{
    Heatmap h({"r"}, {"a", "b", "c", "d"});
    h.add(0, 0, 1.0);
    h.add(0, 1, 3.0);
    EXPECT_DOUBLE_EQ(h.rowFraction(0, 0), 0.25);
    EXPECT_DOUBLE_EQ(h.rowFraction(0, 1), 0.75);
    EXPECT_DOUBLE_EQ(h.rowFraction(0, 2), 0.0);
}

TEST(Heatmap, RowMaxNormalization)
{
    Heatmap h({"r"}, {"a", "b"});
    h.add(0, 0, 2.0);
    h.add(0, 1, 8.0);
    EXPECT_DOUBLE_EQ(h.rowMaxFraction(0, 0), 0.25);
    EXPECT_DOUBLE_EQ(h.rowMaxFraction(0, 1), 1.0);
}

TEST(Heatmap, EmptyRowFractionsAreZero)
{
    Heatmap h({"r"}, {"a"});
    EXPECT_DOUBLE_EQ(h.rowFraction(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(h.rowMaxFraction(0, 0), 0.0);
}

TEST(Heatmap, FromHistograms)
{
    std::vector<Histogram> rows;
    rows.emplace_back(0.0, 10.0, 5);
    rows.emplace_back(0.0, 10.0, 5);
    rows[0].add(1.0);
    rows[0].add(1.5);
    rows[1].add(9.0);
    const Heatmap h = Heatmap::fromHistograms({"v0", "v1"}, rows);
    EXPECT_EQ(h.rows(), 2u);
    EXPECT_EQ(h.cols(), 5u);
    EXPECT_DOUBLE_EQ(h.at(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(h.at(1, 4), 1.0);
}

TEST(Heatmap, FromHistogramsRaggedPanics)
{
    std::vector<Histogram> rows;
    rows.emplace_back(0.0, 10.0, 5);
    rows.emplace_back(0.0, 10.0, 4);
    EXPECT_THROW(Heatmap::fromHistograms({"a", "b"}, rows), PanicError);
}

TEST(Heatmap, CsvOutput)
{
    Heatmap h({"v1"}, {"10", "20"});
    h.add(0, 0, 1.0);
    h.add(0, 1, 1.0);
    const std::string csv = h.toCsv();
    EXPECT_NE(csv.find("row,10,20"), std::string::npos);
    EXPECT_NE(csv.find("v1,0.5000,0.5000"), std::string::npos);
}

TEST(Heatmap, CsvRawValues)
{
    Heatmap h({"v1"}, {"c"});
    h.add(0, 0, 7.0);
    EXPECT_NE(h.toCsv(false).find("7.0000"), std::string::npos);
}

TEST(Heatmap, AsciiHasOneLinePerRow)
{
    Heatmap h({"a", "bb"}, {"c0", "c1", "c2"});
    h.add(0, 0, 1.0);
    h.add(1, 2, 1.0);
    const std::string art = h.toAscii();
    EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 2);
    // Hot cells render with the densest shade.
    EXPECT_NE(art.find('@'), std::string::npos);
}

TEST(Heatmap, IndexOutOfRangePanics)
{
    Heatmap h({"r"}, {"c"});
    EXPECT_THROW(h.add(1, 0), PanicError);
    EXPECT_THROW(h.at(0, 1), PanicError);
}

TEST(Heatmap, EmptyConstructionPanics)
{
    EXPECT_THROW(Heatmap({}, {"c"}), PanicError);
    EXPECT_THROW(Heatmap({"r"}, {}), PanicError);
}

}  // namespace
}  // namespace hmcsim
