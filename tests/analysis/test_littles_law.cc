#include <gtest/gtest.h>

#include "analysis/littles_law.h"
#include "common/log.h"

namespace hmcsim {
namespace {

TEST(LittlesLaw, BasicIdentity)
{
    // 2 GB/s of 32 B requests with 4.6 us latency:
    // N = (2e9 / 32) * 4.6e-6 = 287.5 -- the paper's two-bank figure.
    EXPECT_NEAR(estimateOutstanding(2.0, 4600.0, 32), 287.5, 0.1);
}

TEST(LittlesLaw, ScalesLinearlyWithLatency)
{
    const double n1 = estimateOutstanding(1.0, 1000.0, 64);
    const double n2 = estimateOutstanding(1.0, 2000.0, 64);
    EXPECT_DOUBLE_EQ(n2, 2.0 * n1);
}

TEST(LittlesLaw, SizeIndependenceWhenBandwidthScales)
{
    // If bandwidth scales with size at fixed request rate, the
    // outstanding estimate is size-independent (Fig. 14's flat bars).
    const double rate = 100e6;  // requests/s
    for (std::uint32_t size : {16u, 32u, 64u, 128u}) {
        const double bw = rate * size / 1e9;
        EXPECT_NEAR(estimateOutstanding(bw, 2000.0, size), rate * 2e-6,
                    1e-6);
    }
}

TEST(LittlesLaw, ZeroSizePanics)
{
    EXPECT_THROW(estimateOutstanding(1.0, 100.0, 0), PanicError);
}

TEST(Saturation, FindsKnee)
{
    const std::vector<double> curve{2.0, 4.0, 8.0, 9.7, 9.9, 10.0};
    EXPECT_EQ(saturationIndex(curve, 0.05), 3u);
}

TEST(Saturation, MonotoneCurveWithoutPlateau)
{
    const std::vector<double> curve{1.0, 2.0, 3.0};
    EXPECT_EQ(saturationIndex(curve, 0.05), 2u);
}

TEST(Saturation, FlatCurveSaturatesImmediately)
{
    const std::vector<double> curve{5.0, 5.0, 5.0};
    EXPECT_EQ(saturationIndex(curve, 0.05), 0u);
}

TEST(Saturation, AllZeroReturnsLast)
{
    const std::vector<double> curve{0.0, 0.0};
    EXPECT_EQ(saturationIndex(curve, 0.05), 1u);
}

TEST(Saturation, EmptyPanics)
{
    EXPECT_THROW(saturationIndex({}, 0.05), PanicError);
}

TEST(ArrivalRate, WireFormula)
{
    // 23 GB/s of 160 B transactions = 143.75 M/s.
    EXPECT_NEAR(arrivalRatePerSec(23.0, 160), 143.75e6, 1e3);
}

TEST(ArrivalRate, ZeroSizePanics)
{
    EXPECT_THROW(arrivalRatePerSec(1.0, 0), PanicError);
}

}  // namespace
}  // namespace hmcsim
