#include <gtest/gtest.h>

#include "analysis/aggregate.h"

namespace hmcsim {
namespace {

ExperimentResult
resultWith(double bw, std::initializer_list<double> latencies)
{
    ExperimentResult r;
    r.bandwidthGBs = bw;
    for (double l : latencies)
        r.mergedRead.add(l);
    r.windowTicks = 1000;
    r.totalReads = latencies.size();
    return r;
}

TEST(Aggregate, MergeReadLatencies)
{
    std::vector<ExperimentResult> runs;
    runs.push_back(resultWith(1.0, {100.0, 200.0}));
    runs.push_back(resultWith(2.0, {300.0}));
    const SampleStats s = mergeReadLatencies(runs);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 200.0);
    EXPECT_DOUBLE_EQ(s.max(), 300.0);
}

TEST(Aggregate, MergeEmptyRuns)
{
    EXPECT_EQ(mergeReadLatencies({}).count(), 0u);
}

TEST(Aggregate, MeanBandwidth)
{
    std::vector<ExperimentResult> runs;
    runs.push_back(resultWith(10.0, {}));
    runs.push_back(resultWith(20.0, {}));
    EXPECT_DOUBLE_EQ(meanBandwidthGBs(runs), 15.0);
    EXPECT_DOUBLE_EQ(meanBandwidthGBs({}), 0.0);
}

TEST(Aggregate, StatsOfValues)
{
    const SampleStats s = statsOfValues({1.0, 2.0, 3.0});
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Aggregate, AccessesPerSec)
{
    ExperimentResult r;
    r.windowTicks = kMicrosecond;  // 1 us
    r.totalReads = 100;
    r.totalWrites = 50;
    EXPECT_NEAR(r.accessesPerSec(), 150e6, 1.0);
    ExperimentResult empty;
    EXPECT_DOUBLE_EQ(empty.accessesPerSec(), 0.0);
}

}  // namespace
}  // namespace hmcsim
