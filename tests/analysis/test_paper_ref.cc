#include <gtest/gtest.h>

#include "analysis/paper_ref.h"
#include "common/log.h"

namespace hmcsim {
namespace {

TEST(PaperRef, HeadlineNumbers)
{
    EXPECT_DOUBLE_EQ(paperValue("eq1", "peak_bandwidth"), 60.0);
    EXPECT_DOUBLE_EQ(paperValue("fig6", "max_bandwidth_128B"), 23.0);
    EXPECT_DOUBLE_EQ(paperValue("fig6", "vault_cap"), 10.0);
    EXPECT_DOUBLE_EQ(paperValue("fig14", "outstanding_2banks"), 288.0);
    EXPECT_DOUBLE_EQ(paperValue("fig14", "outstanding_4banks"), 535.0);
}

TEST(PaperRef, LatencyEndpointsFromFig6)
{
    EXPECT_DOUBLE_EQ(paperValue("fig6", "latency_1bank_128B"), 24233.0);
    EXPECT_DOUBLE_EQ(paperValue("fig6", "latency_multivault_16B"),
                     1966.0);
    // The paper's headline contrast: single-bank latency is more than
    // 10x the well-distributed one.
    EXPECT_GT(paperValue("fig6", "latency_1bank_128B"),
              10.0 * paperValue("fig6", "latency_multivault_16B"));
}

TEST(PaperRef, Fig11StddevsIncreaseWithSize)
{
    const double s16 = paperValue("fig11", "stddev_16B");
    const double s32 = paperValue("fig11", "stddev_32B");
    const double s64 = paperValue("fig11", "stddev_64B");
    const double s128 = paperValue("fig11", "stddev_128B");
    EXPECT_LT(s16, s32);
    EXPECT_LT(s32, s64);
    EXPECT_LE(s64, s128);
}

TEST(PaperRef, Fig10RangesIncreaseWithSize)
{
    EXPECT_LT(paperValue("fig10", "range_16B"),
              paperValue("fig10", "range_32B"));
    EXPECT_LT(paperValue("fig10", "range_32B"),
              paperValue("fig10", "range_64B"));
    EXPECT_LT(paperValue("fig10", "range_64B"),
              paperValue("fig10", "range_128B"));
}

TEST(PaperRef, NoLoadDecomposition)
{
    // 547 ns infrastructure + 100..180 ns HMC = the ~0.7 us floor.
    const double floor_us = paperValue("fig7", "floor");
    const double infra = paperValue("fig7", "infrastructure");
    const double lo = paperValue("fig7", "hmc_no_load_min");
    const double hi = paperValue("fig7", "hmc_no_load_max");
    EXPECT_GE(floor_us * 1000.0, infra + lo - 60.0);
    EXPECT_LE(floor_us * 1000.0, infra + hi + 60.0);
}

TEST(PaperRef, TableIsConsistent)
{
    for (const PaperValue &v : paperValues()) {
        EXPECT_FALSE(v.experiment.empty());
        EXPECT_FALSE(v.name.empty());
        EXPECT_FALSE(v.unit.empty());
        EXPECT_DOUBLE_EQ(paperValue(v.experiment, v.name), v.value);
    }
}

TEST(PaperRef, MissingValueIsFatal)
{
    EXPECT_THROW(paperValue("fig99", "nothing"), FatalError);
}

}  // namespace
}  // namespace hmcsim
