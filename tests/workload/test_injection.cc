/**
 * @file
 * System-level tests of the injection policies: open-loop offered vs
 * accepted rates (cross-validated against the Little's-law helpers),
 * burstiness, and closed-loop window behaviour through the workload
 * spec path.
 */

#include <gtest/gtest.h>

#include "analysis/littles_law.h"
#include "common/log.h"
#include "host/experiment.h"
#include "host/system.h"

namespace hmcsim {
namespace {

WorkloadRunSpec
openGups(double rate_per_ns)
{
    WorkloadRunSpec spec;
    spec.workload.type = "gups";
    spec.workload.inject = "open";
    spec.workload.ratePerNs = rate_per_ns;
    spec.activePorts = 1;
    spec.warmup = 5 * kMicrosecond;
    spec.window = 20 * kMicrosecond;
    return spec;
}

TEST(OpenLoop, AcceptsTheOfferedRateBelowSaturation)
{
    // 0.01 req/ns = 10 M req/s per port, far below the port ceiling.
    const ExperimentResult r = runWorkload(SystemConfig{},
                                           openGups(0.01));
    EXPECT_NEAR(r.offeredPerNs(), 0.01, 0.001);
    EXPECT_NEAR(r.acceptedPerNs(), r.offeredPerNs(),
                0.05 * r.offeredPerNs());

    // Cross-validate with the paper's utilization-law helper: the
    // arrival rate implied by the measured wire bandwidth must equal
    // the accepted rate (64 wire bytes per 32 B read).
    const double implied_per_s = arrivalRatePerSec(r.bandwidthGBs, 64);
    EXPECT_NEAR(implied_per_s / 1e9, r.acceptedPerNs(),
                0.02 * r.acceptedPerNs());
}

TEST(OpenLoop, LittlesLawPopulationConsistent)
{
    const double rate = 0.02;
    const ExperimentResult r = runWorkload(SystemConfig{},
                                           openGups(rate));
    // Below saturation the open-loop population is rate*latency
    // (Little's law).  estimateOutstanding() recomputes it from the
    // measured data bandwidth and latency; both paths must agree.
    const double data_gbs = static_cast<double>(r.totalReads) * 32.0 /
        (static_cast<double>(r.windowTicks) * 1e-3);
    const double est = estimateOutstanding(data_gbs, r.avgReadLatencyNs,
                                           32);
    const double expected = rate * r.avgReadLatencyNs;
    EXPECT_NEAR(est, expected, 0.05 * expected);
}

TEST(OpenLoop, SaturationAcceptsLessThanOffered)
{
    // 1 req/ns per port is far beyond what one port can issue (the
    // fabric issues at most one request per 5.33 ns cycle).
    const ExperimentResult r = runWorkload(SystemConfig{},
                                           openGups(1.0));
    EXPECT_NEAR(r.offeredPerNs(), 1.0, 0.05);
    EXPECT_LT(r.acceptedPerNs(), 0.5 * r.offeredPerNs());
    EXPECT_GT(r.acceptedPerNs(), 0.0);
}

TEST(OpenLoop, BurstinessClumpsArrivals)
{
    SystemConfig cfg;
    WorkloadRunSpec smooth = openGups(0.05);
    smooth.workload.burstiness = 1.0;
    WorkloadRunSpec bursty = openGups(0.05);
    bursty.workload.burstiness = 64.0;

    const ExperimentResult rs = runWorkload(cfg, smooth);
    const ExperimentResult rb = runWorkload(cfg, bursty);
    // Same offered load accepted either way...
    EXPECT_NEAR(rb.acceptedPerNs(), rs.acceptedPerNs(),
                0.1 * rs.acceptedPerNs());
    // ...but clumped arrivals queue behind each other: the latency
    // spread (and tail) must be clearly wider than the smooth case.
    EXPECT_GT(rb.stddevReadLatencyNs, 2.0 * rs.stddevReadLatencyNs);
    EXPECT_GT(rb.maxReadLatencyNs, rs.maxReadLatencyNs);
}

TEST(ClosedLoop, SpecWindowBoundsOutstanding)
{
    SystemConfig cfg;
    System sys(cfg);
    WorkloadSpec w;
    w.type = "gups";
    w.inject = "closed";
    w.window = 4;
    w.seed = 11;
    WorkloadPort &port = sys.configureWorkload(0, w);
    sys.run(10 * kMicrosecond);
    EXPECT_LE(port.tags().peakInUse(), 4u);
    EXPECT_GT(port.monitor().reads(), 100u);
}

TEST(ClosedLoop, OfferedIsZero)
{
    WorkloadRunSpec spec;
    spec.workload.type = "gups";
    spec.workload.inject = "closed";
    spec.activePorts = 2;
    spec.warmup = 2 * kMicrosecond;
    spec.window = 5 * kMicrosecond;
    const ExperimentResult r = runWorkload(SystemConfig{}, spec);
    EXPECT_EQ(r.totalOfferedRequests, 0.0);
    EXPECT_GT(r.totalReads, 0u);
}

TEST(Injection, ValidationRejectsNonsense)
{
    InjectionConfig inj;
    inj.mode = InjectMode::OpenLoop;
    inj.ratePerNs = 0.0;
    EXPECT_THROW(inj.validate(), FatalError);

    inj = InjectionConfig{};
    inj.mode = InjectMode::OpenLoop;
    inj.ratePerNs = 0.1;
    inj.batchSize = 8;  // batches are closed-loop only
    EXPECT_THROW(inj.validate(), FatalError);

    inj = InjectionConfig{};
    inj.burstiness = 0.5;
    EXPECT_THROW(inj.validate(), FatalError);
}

TEST(Injection, BurstOffGapsThrottleThroughput)
{
    // The off-gap is anchored at the END of the previous burst (the
    // last issue), so even a gap shorter than the burst duration must
    // cut throughput versus continuous traffic.
    SystemConfig cfg;
    WorkloadRunSpec cont;
    cont.workload.type = "gups";
    cont.activePorts = 1;
    cont.warmup = 3 * kMicrosecond;
    cont.window = 15 * kMicrosecond;

    WorkloadRunSpec burst = cont;
    burst.workload.type = "burst";
    burst.workload.burstInner = "gups";
    burst.workload.burstLen = 64;
    burst.workload.burstGapNs = 200;

    const ExperimentResult rc = runWorkload(cfg, cont);
    const ExperimentResult rb = runWorkload(cfg, burst);
    // Duty cycle ~ burst_time / (burst_time + 200 ns) well below 1.
    EXPECT_LT(rb.totalReads, 0.9 * static_cast<double>(rc.totalReads));
    EXPECT_GT(rb.totalReads, 0u);
}

TEST(Injection, OpenLoopFiniteSourceStopsOffering)
{
    // A non-looping trace that exhausts mid-window must not keep
    // accruing offered load (the gap would masquerade as saturation).
    SystemConfig cfg;
    WorkloadRunSpec spec;
    spec.workload.type = "trace";
    spec.workload.traceLength = 200;
    spec.workload.traceLoop = false;
    spec.workload.inject = "open";
    spec.workload.ratePerNs = 0.05;
    spec.activePorts = 1;
    spec.warmup = 0;
    spec.window = 50 * kMicrosecond;  // trace ends long before this
    const ExperimentResult r = runWorkload(cfg, spec);
    EXPECT_EQ(r.totalReads, 200u);
    // Offered stops at exhaustion: far below rate * window = 2500.
    EXPECT_LT(r.totalOfferedRequests, 400.0);
    EXPECT_GE(r.totalOfferedRequests, 200.0);
}

TEST(OpenLoop, TwoHostsAtMatchedLoadEachObeyLittlesLaw)
{
    // Two host fabrics on a dual-host ring, each offering the same
    // open-loop rate on one port.  Below saturation each host must
    // accept (essentially) its own offered load, and each host's
    // outstanding-population estimate recomputed from its measured
    // data bandwidth and latency must match rate * latency -- the
    // per-host version of the single-host cross-check above.
    const double rate = 0.01;
    SystemConfig cfg;
    cfg.hmc.chain.numCubes = 4;
    cfg.hmc.chain.topology = "ring";
    cfg.host.numHosts = 2;
    WorkloadRunSpec spec = openGups(rate);
    const ExperimentResult r = runWorkload(cfg, spec);

    ASSERT_EQ(r.hosts.size(), 2u);
    const double window_ns = static_cast<double>(r.windowTicks) * 1e-3;
    for (const HostStats &hs : r.hosts) {
        const double offered_per_ns = hs.offeredRequests / window_ns;
        const double accepted_per_ns =
            static_cast<double>(hs.reads + hs.writes) / window_ns;
        EXPECT_NEAR(offered_per_ns, rate, 0.1 * rate) << hs.host;
        EXPECT_NEAR(accepted_per_ns, offered_per_ns,
                    0.05 * offered_per_ns)
            << hs.host;

        const double data_gbs =
            static_cast<double>(hs.reads) * 32.0 / window_ns;
        const double est =
            estimateOutstanding(data_gbs, hs.avgReadNs, 32);
        const double expected = rate * hs.avgReadNs;
        EXPECT_NEAR(est, expected, 0.05 * expected) << hs.host;
    }
    // Matched load: the hosts' accepted shares stay balanced.
    EXPECT_NEAR(static_cast<double>(r.hosts[0].reads),
                static_cast<double>(r.hosts[1].reads),
                0.05 * static_cast<double>(r.hosts[0].reads));
}

TEST(Injection, OpenLoopRatesScaleAcrossPorts)
{
    WorkloadRunSpec spec = openGups(0.01);
    spec.activePorts = 4;
    const ExperimentResult r = runWorkload(SystemConfig{}, spec);
    EXPECT_NEAR(r.offeredPerNs(), 0.04, 0.004);
    EXPECT_NEAR(r.acceptedPerNs(), r.offeredPerNs(),
                0.05 * r.offeredPerNs());
    ASSERT_EQ(r.ports.size(), 4u);
    for (const PortStats &ps : r.ports)
        EXPECT_GT(ps.offeredRequests, 0.0);
}

}  // namespace
}  // namespace hmcsim
