/**
 * @file
 * Bit-identity guarantees of the workload refactor: the config-level
 * `workload=gups` path, the legacy GupsPortSpec path and the seed
 * GupsPort behaviour must produce identical results (same counts,
 * identical latency statistics), and the trace path must match the
 * seed StreamPort the same way.  The fig06/07/08 CSVs depend on this.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "host/experiment.h"
#include "host/system.h"

namespace hmcsim {
namespace {

void
expectIdentical(const ExperimentResult &a, const ExperimentResult &b)
{
    EXPECT_EQ(a.totalReads, b.totalReads);
    EXPECT_EQ(a.totalWrites, b.totalWrites);
    EXPECT_EQ(a.totalWireBytes, b.totalWireBytes);
    EXPECT_DOUBLE_EQ(a.avgReadLatencyNs, b.avgReadLatencyNs);
    EXPECT_DOUBLE_EQ(a.minReadLatencyNs, b.minReadLatencyNs);
    EXPECT_DOUBLE_EQ(a.maxReadLatencyNs, b.maxReadLatencyNs);
    EXPECT_DOUBLE_EQ(a.stddevReadLatencyNs, b.stddevReadLatencyNs);
}

TEST(WorkloadIdentity, ConfigGupsMatchesLegacyGupsSpec)
{
    const SystemConfig cfg;

    // Path 1: the legacy spec (what the seed GupsPort took).
    System legacy(cfg);
    GupsPortSpec gp;
    gp.gen.pattern = legacy.addressMap().pattern(16, 16);
    gp.gen.requestBytes = 32;
    gp.gen.capacity = cfg.hmc.totalCapacityBytes();
    gp.gen.seed = 2024;
    legacy.configureGupsPort(0, gp);
    legacy.run(5 * kMicrosecond);
    const ExperimentResult a = legacy.measure(15 * kMicrosecond);

    // Path 2: the config-level workload description.
    System modern(cfg);
    WorkloadSpec w;
    w.type = "gups";
    w.requestBytes = 32;
    w.patternVaults = 16;
    w.patternBanks = 16;
    w.seed = 2024;
    modern.configureWorkload(0, w);
    modern.run(5 * kMicrosecond);
    const ExperimentResult b = modern.measure(15 * kMicrosecond);

    expectIdentical(a, b);
}

TEST(WorkloadIdentity, ConfigKeysMatchLegacyGupsSpec)
{
    // Same as above but through the full Config-file route
    // (host.workload_ports=1), including warmup handled by System
    // construction order.
    const SystemConfig base;
    System legacy(base);
    GupsPortSpec gp;
    gp.gen.pattern = legacy.addressMap().pattern(16, 16);
    gp.gen.requestBytes = 64;
    gp.gen.capacity = base.hmc.totalCapacityBytes();
    gp.gen.seed = 77;
    legacy.configureGupsPort(0, gp);
    legacy.run(5 * kMicrosecond);
    const ExperimentResult a = legacy.measure(10 * kMicrosecond);

    Config cfg;
    base.toConfig(cfg);
    cfg.parseString("[host]\n"
                    "workload_ports = 1\n"
                    "workload = gups\n"
                    "workload.request_bytes = 64\n"
                    "workload.seed = 77\n");
    System declared(SystemConfig::fromConfig(cfg));
    declared.run(5 * kMicrosecond);
    const ExperimentResult b = declared.measure(10 * kMicrosecond);

    expectIdentical(a, b);
}

TEST(WorkloadIdentity, TraceWorkloadMatchesLegacyStreamSpec)
{
    const SystemConfig cfg;

    System legacy(cfg);
    Rng rng(314);
    StreamPortSpec sp;
    sp.trace = makeRandomTrace(rng, legacy.addressMap().pattern(16, 16),
                               cfg.hmc.totalCapacityBytes(), 2048, 32);
    sp.loop = true;
    legacy.configureStreamPort(0, sp);
    legacy.run(5 * kMicrosecond);
    const ExperimentResult a = legacy.measure(10 * kMicrosecond);

    // The config path generates the synthetic trace from the same
    // seed, pattern and length, so the replay must be identical.
    System modern(cfg);
    WorkloadSpec w;
    w.type = "trace";
    w.requestBytes = 32;
    w.traceLength = 2048;
    w.seed = 314;
    modern.configureWorkload(0, w);
    modern.run(5 * kMicrosecond);
    const ExperimentResult b = modern.measure(10 * kMicrosecond);

    expectIdentical(a, b);
}

TEST(WorkloadIdentity, RmwChainsSurviveTheRefactor)
{
    const SystemConfig cfg;
    System sys(cfg);
    WorkloadSpec w;
    w.type = "gups";
    w.kind = ReqKind::ReadModifyWrite;
    w.seed = 5;
    sys.configureWorkload(0, w);
    sys.run(10 * kMicrosecond);
    const Monitor &m = sys.port(0).monitor();
    EXPECT_GT(m.reads(), 100u);
    EXPECT_GT(m.writes(), 100u);
    EXPECT_LE(m.writes(), m.reads());
}

TEST(WorkloadIdentity, RunnersStayDeterministic)
{
    WorkloadRunSpec spec;
    spec.workload.type = "zipf";
    spec.workload.inject = "open";
    spec.workload.ratePerNs = 0.02;
    spec.activePorts = 2;
    spec.warmup = 3 * kMicrosecond;
    spec.window = 8 * kMicrosecond;
    const ExperimentResult a = runWorkload(SystemConfig{}, spec);
    const ExperimentResult b = runWorkload(SystemConfig{}, spec);
    EXPECT_EQ(a.totalReads, b.totalReads);
    EXPECT_DOUBLE_EQ(a.avgReadLatencyNs, b.avgReadLatencyNs);
}

TEST(WorkloadIdentity, MixedSeedsDecorrelatePorts)
{
    // Two ports driven from the same base seed must not issue the
    // same address stream (the old "seed + portId" hazard).
    const SystemConfig cfg;
    System sys(cfg);
    for (PortId p = 0; p < 2; ++p) {
        WorkloadSpec w;
        w.type = "gups";
        w.seed = mixSeeds(1, p);
        sys.configureWorkload(p, w);
    }
    sys.run(5 * kMicrosecond);
    // Statistically indistinguishable load, different streams: both
    // ports progressed, and their byte counters differ slightly (the
    // arbiters interleave distinct addresses).
    EXPECT_GT(sys.port(0).monitor().reads(), 100u);
    EXPECT_GT(sys.port(1).monitor().reads(), 100u);
}

}  // namespace
}  // namespace hmcsim
