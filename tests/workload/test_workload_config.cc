/**
 * @file
 * Tests for the config-driven workload surface: host.workload* key
 * parsing, per-port overrides, System auto-configuration, duration
 * parsing and round-tripping.
 */

#include <gtest/gtest.h>

#include "common/log.h"
#include "host/system.h"
#include "host/workload/workload_build.h"

namespace hmcsim {
namespace {

TEST(WorkloadSpec, DefaultsAreGupsClosedLoop)
{
    const WorkloadSpec s;
    EXPECT_EQ(s.type, "gups");
    EXPECT_EQ(s.inject, "closed");
    EXPECT_NO_THROW(s.validate());
}

TEST(WorkloadSpec, FromConfigReadsKnobs)
{
    Config cfg;
    cfg.parseString("[host]\n"
                    "workload = zipf\n"
                    "workload.request_bytes = 64\n"
                    "workload.zipf_theta = 0.8\n"
                    "workload.zipf_domain = block\n"
                    "workload.inject = open\n"
                    "workload.rate_per_ns = 0.25\n");
    const WorkloadSpec s =
        WorkloadSpec::fromConfig(cfg, "host.", WorkloadSpec{});
    EXPECT_EQ(s.type, "zipf");
    EXPECT_EQ(s.requestBytes, 64u);
    EXPECT_DOUBLE_EQ(s.zipfTheta, 0.8);
    EXPECT_EQ(s.zipfDomain, "block");
    EXPECT_EQ(s.inject, "open");
    EXPECT_DOUBLE_EQ(s.ratePerNs, 0.25);
}

TEST(WorkloadSpec, RoundTripsThroughConfig)
{
    WorkloadSpec a;
    a.type = "burst";
    a.burstInner = "stride";
    a.strideBytes = 4096;
    a.burstLen = 17;
    a.kind = ReqKind::ReadModifyWrite;
    a.writeFraction = 0.25;
    a.seed = 99;
    Config cfg;
    a.toConfig(cfg, "host.");
    const WorkloadSpec b =
        WorkloadSpec::fromConfig(cfg, "host.", WorkloadSpec{});
    EXPECT_EQ(b.type, "burst");
    EXPECT_EQ(b.burstInner, "stride");
    EXPECT_EQ(b.strideBytes, 4096u);
    EXPECT_EQ(b.burstLen, 17u);
    EXPECT_EQ(b.kind, ReqKind::ReadModifyWrite);
    EXPECT_DOUBLE_EQ(b.writeFraction, 0.25);
    EXPECT_EQ(b.seed, 99u);
}

TEST(WorkloadSpec, RejectsNonsense)
{
    WorkloadSpec s;
    s.type = "quantum";
    EXPECT_THROW(s.validate(), FatalError);
    s = WorkloadSpec{};
    s.inject = "open";
    s.ratePerNs = 0.0;
    EXPECT_THROW(s.validate(), FatalError);
    s = WorkloadSpec{};
    s.type = "zipf";
    s.zipfTheta = 1.5;
    EXPECT_THROW(s.validate(), FatalError);
    s = WorkloadSpec{};
    s.type = "burst";
    s.burstInner = "mix";
    EXPECT_THROW(s.validate(), FatalError);
}

TEST(WorkloadSpec, ParseDurations)
{
    EXPECT_EQ(parseDurationTicks("250ns"), 250 * kNanosecond);
    EXPECT_EQ(parseDurationTicks("20us"), 20 * kMicrosecond);
    EXPECT_EQ(parseDurationTicks("1.5ms"),
              static_cast<Tick>(1.5 * kMillisecond));
    EXPECT_EQ(parseDurationTicks("42"), 42 * kNanosecond);  // bare = ns
    EXPECT_THROW(parseDurationTicks("fast"), FatalError);
    EXPECT_THROW(parseDurationTicks("10 lightyears"), FatalError);
}

TEST(HostConfig, WorkloadPortsExpandFromDefaults)
{
    Config cfg;
    cfg.parseString("[host]\n"
                    "workload_ports = 3\n"
                    "workload = stride\n"
                    "workload.stride_bytes = 256\n");
    const HostConfig c = HostConfig::fromConfig(cfg);
    ASSERT_EQ(c.portWorkloads.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(c.portWorkloads[i].port, i);
        EXPECT_EQ(c.portWorkloads[i].spec.type, "stride");
        EXPECT_EQ(c.portWorkloads[i].spec.strideBytes, 256u);
    }
}

TEST(HostConfig, PerPortOverrideWinsAndActivates)
{
    Config cfg;
    cfg.parseString("[host]\n"
                    "workload_ports = 2\n"
                    "workload = gups\n"
                    "port1.workload = zipf\n"
                    "port1.workload.zipf_theta = 0.5\n"
                    "port5.workload = stride\n");
    const HostConfig c = HostConfig::fromConfig(cfg);
    ASSERT_EQ(c.portWorkloads.size(), 3u);  // ports 0, 1 and 5
    EXPECT_EQ(c.portWorkloads[0].spec.type, "gups");
    EXPECT_EQ(c.portWorkloads[1].spec.type, "zipf");
    EXPECT_DOUBLE_EQ(c.portWorkloads[1].spec.zipfTheta, 0.5);
    EXPECT_EQ(c.portWorkloads[2].port, 5u);
    EXPECT_EQ(c.portWorkloads[2].spec.type, "stride");
}

TEST(HostConfig, WorkloadValidation)
{
    HostConfig c;
    c.workloadPorts = c.numPorts + 1;
    EXPECT_THROW(c.validate(), FatalError);
    c = HostConfig{};
    c.portWorkloads.push_back({c.numPorts, WorkloadSpec{}});
    EXPECT_THROW(c.validate(), FatalError);
}

TEST(System, ConfiguresWorkloadsFromConfig)
{
    Config cfg;
    SystemConfig{}.toConfig(cfg);
    cfg.parseString("[host]\n"
                    "workload_ports = 2\n"
                    "workload = gups\n"
                    "port1.workload = stride\n"
                    "port1.workload.stride_bytes = 128\n");
    System sys(SystemConfig::fromConfig(cfg));
    sys.run(10 * kMicrosecond);
    EXPECT_GT(sys.port(0).monitor().reads(), 100u);
    EXPECT_GT(sys.port(1).monitor().reads(), 100u);
    EXPECT_EQ(sys.port(2).issuedRequests(), 0u);  // not configured
}

TEST(System, DefaultConfigKeepsPortsInactive)
{
    // The seed guarantee: a default SystemConfig must not inject any
    // traffic (workload_ports defaults to 0).
    System sys{SystemConfig{}};
    sys.run(5 * kMicrosecond);
    for (PortId p = 0; p < sys.fpga().numPorts(); ++p)
        EXPECT_EQ(sys.port(p).issuedRequests(), 0u);
}

TEST(Build, EveryTypeBuildsASource)
{
    const HmcConfig hmc;
    const AddressMap map(hmc);
    for (const char *type :
         {"gups", "stride", "zipf", "burst", "trace", "mix"}) {
        WorkloadSpec s;
        s.type = type;
        TrafficSourcePtr src = buildTrafficSource(s, map, 123);
        ASSERT_TRUE(src);
        WorkloadRequest r;
        EXPECT_TRUE(src->next(0, r));
        EXPECT_GT(r.bytes, 0u);
    }
}

TEST(Build, MixPhasesParse)
{
    const HmcConfig hmc;
    const AddressMap map(hmc);
    WorkloadSpec s;
    s.type = "mix";
    s.mixPhases = "gups:5us, stride:500ns ,zipf:1us";
    TrafficSourcePtr src = buildTrafficSource(s, map, 5);
    WorkloadRequest r;
    EXPECT_TRUE(src->next(0, r));

    s.mixPhases = "gups";  // missing duration
    EXPECT_THROW(buildTrafficSource(s, map, 5), FatalError);
}

TEST(Build, ZipfDomainsBuildExpectedTargets)
{
    const HmcConfig hmc;
    const AddressMap map(hmc);
    WorkloadSpec s;
    s.type = "zipf";
    for (const char *domain : {"vault", "cube", "block"}) {
        s.zipfDomain = domain;
        TrafficSourcePtr src = buildTrafficSource(s, map, 9);
        WorkloadRequest r;
        EXPECT_TRUE(src->next(0, r));
        EXPECT_LT(r.addr, map.totalCapacity());
    }
}

}  // namespace
}  // namespace hmcsim
