/**
 * @file
 * Unit tests for the TrafficSource catalogue: sequences, confinement,
 * empirical Zipf skew, burst gaps and phase switching.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/log.h"
#include "hmc/address_map.h"
#include "host/workload/sources.h"

namespace hmcsim {
namespace {

WorkloadRequest
pull(TrafficSource &src, Tick now = 0)
{
    WorkloadRequest r;
    EXPECT_TRUE(src.next(now, r));
    return r;
}

TEST(GupsSource, MatchesSeedAddrGen)
{
    GupsAddrGen::Params gp;
    gp.mode = AddrMode::Random;
    gp.pattern = AddressPattern{(4ull << 30) - 1, 0};
    gp.requestBytes = 64;
    gp.capacity = 4ull << 30;
    gp.seed = 42;

    GupsAddrGen gen(gp);
    GupsSource::Params sp;
    sp.gen = gp;
    GupsSource src(sp);
    for (int i = 0; i < 1000; ++i) {
        const WorkloadRequest r = pull(src);
        EXPECT_EQ(r.addr, gen.next());
        EXPECT_EQ(r.bytes, 64u);
        EXPECT_FALSE(r.isWrite);
        EXPECT_EQ(r.delayNs, 0u);
    }
}

TEST(StrideSource, WalksAndWrapsSpan)
{
    StrideSource::Params p;
    p.base = 0x1000;
    p.strideBytes = 256;
    p.requestBytes = 64;
    p.spanBytes = 1024;  // wraps after four strides
    StrideSource src(p);
    EXPECT_EQ(pull(src).addr, 0x1000u);
    EXPECT_EQ(pull(src).addr, 0x1100u);
    EXPECT_EQ(pull(src).addr, 0x1200u);
    EXPECT_EQ(pull(src).addr, 0x1300u);
    EXPECT_EQ(pull(src).addr, 0x1000u);  // wrapped
}

TEST(StrideSource, FiniteCountExhausts)
{
    StrideSource::Params p;
    p.count = 3;
    StrideSource src(p);
    WorkloadRequest r;
    EXPECT_TRUE(src.next(0, r));
    EXPECT_TRUE(src.next(0, r));
    EXPECT_TRUE(src.next(0, r));
    EXPECT_FALSE(src.next(0, r));
    EXPECT_FALSE(src.next(0, r));  // exhaustion is permanent
}

TEST(StrideSource, RejectsNonPow2)
{
    StrideSource::Params p;
    p.requestBytes = 48;
    EXPECT_THROW(StrideSource{p}, FatalError);
    p = StrideSource::Params{};
    p.spanBytes = 1000;
    EXPECT_THROW(StrideSource{p}, FatalError);
}

TEST(ZipfSource, EmpiricalTargetSkewMatchesTheta)
{
    const HmcConfig hmc;
    const AddressMap map(hmc);
    ZipfSource::Params p;
    for (VaultId v = 0; v < 16; ++v)
        p.targets.push_back(map.vaultPattern(v));
    p.theta = 0.99;
    p.capacity = map.totalCapacity();
    p.requestBytes = 32;
    p.seed = 7;
    ZipfSource src(p);

    const int n = 200000;
    std::map<VaultId, int> hits;
    for (int i = 0; i < n; ++i)
        ++hits[map.decode(pull(src).addr).vault];

    // Ranked frequencies must follow the Zipf pmf within sampling
    // noise: the hottest vault near p(0), monotone-ish decay, and a
    // heavy head (vault 0 ~ 27% at theta=0.99 over 16 targets).
    const double f0 = static_cast<double>(hits[0]) / n;
    const double f1 = static_cast<double>(hits[1]) / n;
    const double f15 = static_cast<double>(hits[15]) / n;
    EXPECT_NEAR(f0, src.targetProbability(0), 0.01);
    EXPECT_NEAR(f1, src.targetProbability(1), 0.01);
    EXPECT_NEAR(f15, src.targetProbability(15), 0.01);
    EXPECT_GT(f0, 2.5 * f1 * 0.7);  // ~2^0.99 ratio, loose
    EXPECT_GT(f1, f15);
}

TEST(ZipfSource, ThetaZeroIsUniform)
{
    const HmcConfig hmc;
    const AddressMap map(hmc);
    ZipfSource::Params p;
    for (VaultId v = 0; v < 16; ++v)
        p.targets.push_back(map.vaultPattern(v));
    p.theta = 0.0;
    p.capacity = map.totalCapacity();
    ZipfSource src(p);
    std::map<VaultId, int> hits;
    const int n = 80000;
    for (int i = 0; i < n; ++i)
        ++hits[map.decode(pull(src).addr).vault];
    for (VaultId v = 0; v < 16; ++v)
        EXPECT_NEAR(hits[v], n / 16, n / 16 * 0.15);
}

TEST(ZipfSource, HotItemsConcentrateBlocks)
{
    const HmcConfig hmc;
    const AddressMap map(hmc);
    ZipfSource::Params p;
    p.targets.push_back(AddressPattern{map.totalCapacity() - 1, 0});
    p.theta = 0.9;
    p.hotItems = 64;
    p.capacity = map.totalCapacity();
    p.requestBytes = 32;
    ZipfSource src(p);
    std::map<Addr, int> hits;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        ++hits[pull(src).addr];
    // At most hotItems distinct addresses, and the top one clearly
    // hotter than the uniform share.
    EXPECT_LE(hits.size(), 64u);
    int top = 0;
    for (const auto &[addr, count] : hits)
        top = std::max(top, count);
    EXPECT_GT(top, 3 * n / 64);
}

TEST(ZipfSource, RejectsBadTheta)
{
    ZipfSource::Params p;
    p.targets.push_back(AddressPattern{0xFFFF, 0});
    p.theta = 1.0;
    EXPECT_THROW(ZipfSource{p}, FatalError);
}

TEST(OnOffSource, InsertsGapEveryBurst)
{
    StrideSource::Params ip;
    ip.strideBytes = 64;
    OnOffSource::Params p;
    p.inner = std::make_unique<StrideSource>(ip);
    p.burstLen = 4;
    p.gapNs = 500;
    OnOffSource src(std::move(p));
    for (int burst = 0; burst < 5; ++burst) {
        for (int i = 0; i < 4; ++i) {
            const WorkloadRequest r = pull(src);
            if (burst > 0 && i == 0)
                EXPECT_EQ(r.delayNs, 500u);  // burst boundary
            else
                EXPECT_EQ(r.delayNs, 0u);
        }
    }
}

TEST(OnOffSource, PropagatesInnerExhaustion)
{
    StrideSource::Params ip;
    ip.count = 2;
    OnOffSource::Params p;
    p.inner = std::make_unique<StrideSource>(ip);
    OnOffSource src(std::move(p));
    WorkloadRequest r;
    EXPECT_TRUE(src.next(0, r));
    EXPECT_TRUE(src.next(0, r));
    EXPECT_FALSE(src.next(0, r));
}

TEST(TraceSource, ReplaysThenLoops)
{
    TraceSource::Params p;
    p.trace = makeStreamTrace(0, 4, 32, 32);
    p.loop = true;
    TraceSource src(std::move(p));
    for (int lap = 0; lap < 3; ++lap)
        for (Addr a = 0; a < 4 * 32; a += 32)
            EXPECT_EQ(pull(src).addr, a);
}

TEST(TraceSource, NoLoopExhausts)
{
    TraceSource::Params p;
    p.trace = makeStreamTrace(0, 2, 32, 32);
    p.loop = false;
    TraceSource src(std::move(p));
    WorkloadRequest r;
    EXPECT_TRUE(src.next(0, r));
    EXPECT_TRUE(src.next(0, r));
    EXPECT_FALSE(src.next(0, r));
}

TEST(TraceSource, EmptyTraceIsFatal)
{
    TraceSource::Params p;
    EXPECT_THROW(TraceSource{std::move(p)}, FatalError);
}

TEST(MixSource, SwitchesPhasesOnTickBoundaries)
{
    StrideSource::Params a;
    a.base = 0;
    a.strideBytes = 64;
    StrideSource::Params b;
    b.base = 1ull << 20;
    b.strideBytes = 64;
    MixSource::Params p;
    p.phases.push_back({std::make_unique<StrideSource>(a),
                        1 * kMicrosecond});
    p.phases.push_back({std::make_unique<StrideSource>(b),
                        1 * kMicrosecond});
    p.loop = true;
    MixSource src(std::move(p));

    EXPECT_LT(pull(src, 0).addr, 1ull << 20);
    EXPECT_EQ(src.currentPhase(), 0u);
    EXPECT_GE(pull(src, 1 * kMicrosecond + 1).addr, 1ull << 20);
    EXPECT_EQ(src.currentPhase(), 1u);
    // Loops back to phase 0 after the second boundary.
    EXPECT_LT(pull(src, 2 * kMicrosecond + 2).addr, 1ull << 20);
    EXPECT_EQ(src.currentPhase(), 0u);
}

TEST(MixSource, NoLoopFinishesAfterLastPhase)
{
    StrideSource::Params a;
    MixSource::Params p;
    p.phases.push_back({std::make_unique<StrideSource>(a),
                        1 * kMicrosecond});
    p.loop = false;
    MixSource src(std::move(p));
    WorkloadRequest r;
    EXPECT_TRUE(src.next(0, r));
    EXPECT_FALSE(src.next(5 * kMicrosecond, r));
}

}  // namespace
}  // namespace hmcsim
