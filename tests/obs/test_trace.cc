#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "hmc/packet.h"
#include "obs/trace.h"

namespace hmcsim {
namespace {

HmcPacket
makePacket(PacketId id)
{
    HmcPacket pkt;
    pkt.id = id;
    pkt.cmd = HmcCmd::Read;
    pkt.dataBytes = 32;
    return pkt;
}

/** Scan @p s for brace/bracket balance outside string literals. */
void
expectBalancedJson(const std::string &s)
{
    long depth = 0;
    bool in_str = false;
    char prev = '\0';
    for (const char c : s) {
        if (in_str) {
            if (c == '"' && prev != '\\')
                in_str = false;
            prev = (prev == '\\' && c == '\\') ? '\0' : c;
            continue;
        }
        if (c == '"')
            in_str = true;
        else if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']')
            --depth;
        ASSERT_GE(depth, 0);
        prev = c;
    }
    EXPECT_EQ(depth, 0);
    EXPECT_FALSE(in_str);
}

TEST(PacketTracer, RecordsInChronologicalOrder)
{
    PacketTracer tr(TraceMode::Full, 1, 16);
    const HmcPacket pkt = makePacket(1);
    tr.record(100, pkt, TraceStage::Inject, kTraceNoWhere, 0);
    tr.record(200, pkt, TraceStage::LinkTx, kTraceNoWhere, 0);
    tr.record(300, pkt, TraceStage::VaultEnqueue, 0, 5);

    const std::vector<TraceEvent> ev = tr.events();
    ASSERT_EQ(ev.size(), 3u);
    EXPECT_EQ(ev[0].stage, TraceStage::Inject);
    EXPECT_EQ(ev[1].stage, TraceStage::LinkTx);
    EXPECT_EQ(ev[2].stage, TraceStage::VaultEnqueue);
    EXPECT_EQ(ev[2].tick, 300u);
    EXPECT_EQ(ev[2].where, 5u);
    EXPECT_EQ(tr.eventsRecorded(), 3u);
}

TEST(PacketTracer, RingBufferKeepsLastN)
{
    PacketTracer tr(TraceMode::Full, 1, 4);
    for (PacketId i = 0; i < 10; ++i)
        tr.record(i * 10, makePacket(i), TraceStage::Inject);

    const std::vector<TraceEvent> ev = tr.events();
    ASSERT_EQ(ev.size(), 4u);
    // Oldest surviving event first; the last 4 of 10 survive.
    EXPECT_EQ(ev.front().packet, 6u);
    EXPECT_EQ(ev.back().packet, 9u);
    EXPECT_EQ(tr.eventsRecorded(), 10u);
}

TEST(PacketTracer, SampleEveryFiltersPacketIds)
{
    PacketTracer tr(TraceMode::Full, 4, 64);
    EXPECT_TRUE(tr.wants(0));
    EXPECT_FALSE(tr.wants(1));
    EXPECT_FALSE(tr.wants(3));
    EXPECT_TRUE(tr.wants(4));
    EXPECT_TRUE(tr.wants(8));

    PacketTracer all(TraceMode::Full, 1, 64);
    EXPECT_TRUE(all.wants(17));
}

TEST(PacketTracer, LifecycleFromTimestampsSkipsUnstamped)
{
    PacketTracer tr(TraceMode::Summary, 1, 64);
    HmcPacket pkt = makePacket(3);
    pkt.createdAt = 1000;
    pkt.linkTxAt = 2000;
    pkt.vaultArriveAt = 3000;
    pkt.dataReadyAt = 4000;
    pkt.respInjectAt = 4500;
    pkt.hostArriveAt = 6000;
    // chainIngressAt stays 0 (single cube): stage must be skipped.
    tr.recordLifecycle(pkt, /*port=*/2);

    const std::vector<TraceEvent> ev = tr.events();
    ASSERT_GE(ev.size(), 2u);
    EXPECT_EQ(ev.front().stage, TraceStage::Inject);
    EXPECT_EQ(ev.front().tick, 1000u);
    EXPECT_EQ(ev.back().stage, TraceStage::Eject);
    EXPECT_EQ(ev.back().tick, 6000u);
    for (const TraceEvent &e : ev)
        EXPECT_NE(e.stage, TraceStage::ChainIngress);
    // Ticks are non-decreasing within the lifecycle.
    for (std::size_t i = 1; i < ev.size(); ++i)
        EXPECT_LE(ev[i - 1].tick, ev[i].tick);
}

TEST(PacketTracer, ChromeJsonIsWellFormed)
{
    PacketTracer tr(TraceMode::Full, 1, 64);
    for (PacketId id = 0; id < 3; ++id) {
        HmcPacket pkt = makePacket(id);
        pkt.cube = id % 2;
        tr.record(1000 + id, pkt, TraceStage::Inject, kTraceNoWhere, 0);
        tr.record(2000 + id, pkt, TraceStage::VaultEnqueue, pkt.cube, 4);
        tr.record(3000 + id, pkt, TraceStage::Eject, kTraceNoWhere, 0);
    }

    std::ostringstream oss;
    tr.dumpChromeJson(oss);
    const std::string out = oss.str();

    // Chrome trace_event schema essentials.
    EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\""), std::string::npos);
    EXPECT_NE(out.find("\"pid\""), std::string::npos);
    EXPECT_NE(out.find("\"tid\""), std::string::npos);
    EXPECT_NE(out.find("\"ts\""), std::string::npos);
    EXPECT_NE(out.find("\"name\""), std::string::npos);
    expectBalancedJson(out);
}

TEST(PacketTracer, ClearEmptiesBuffer)
{
    PacketTracer tr(TraceMode::Full, 1, 8);
    tr.record(1, makePacket(0), TraceStage::Inject);
    tr.clear();
    EXPECT_TRUE(tr.events().empty());
}

TEST(PacketTracer, DumpLastEventsIsBounded)
{
    PacketTracer tr(TraceMode::Full, 1, 32);
    for (PacketId i = 0; i < 8; ++i)
        tr.record(i, makePacket(i), TraceStage::Inject);
    std::ostringstream oss;
    tr.dumpLastEvents(oss, 3);
    // Exactly the last 3 packet ids appear.
    EXPECT_EQ(oss.str().find("pkt=4"), std::string::npos);
    EXPECT_NE(oss.str().find("pkt=7"), std::string::npos);
}

}  // namespace
}  // namespace hmcsim
