/**
 * @file
 * Latency-anatomy tests: the phase decomposition must telescope
 * exactly to the end-to-end latency for every stamp pattern, the
 * collector must aggregate and attribute correctly, the congestion
 * recorder must window occupancy gauges, and turning the whole engine
 * on must never perturb simulated results.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/units.h"
#include "host/experiment.h"
#include "host/system.h"
#include "obs/anatomy.h"
#include "obs/observability.h"
#include "sim/kernel.h"

namespace hmcsim {
namespace {

/** A fully stamped read response with strictly increasing stamps. */
HmcPacket
stampedResponse()
{
    HmcPacket p;
    p.cmd = HmcCmd::ReadResponse;
    p.dataBytes = 64;
    p.createdAt = 100;
    p.linkTxAt = 250;        // host_queue      = 150
    p.chainIngressAt = 300;  // link_serialize  = 50
    p.cubeArriveAt = 700;    // chain_fwd_req   = 400
    p.vaultArriveAt = 760;   // noc_request     = 60
    p.dramStartAt = 1000;    // vault_queue     = 240
    p.dataReadyAt = 1500;    // dram_service    = 500
    p.respInjectAt = 1530;   // resp_inject     = 30
    p.respHostLinkAt = 1900; // resp_return     = 370
    p.hostArriveAt = 2000;   // host_drain      = 100
    return p;
}

TEST(PhaseBreakdown, TelescopesExactly)
{
    const PhaseBreakdown b = PhaseBreakdown::fromPacket(stampedResponse());
    EXPECT_EQ(b.phase[0], 150u);
    EXPECT_EQ(b.phase[1], 50u);
    EXPECT_EQ(b.phase[2], 400u);
    EXPECT_EQ(b.phase[3], 60u);
    EXPECT_EQ(b.phase[4], 240u);
    EXPECT_EQ(b.phase[5], 500u);
    EXPECT_EQ(b.phase[6], 30u);
    EXPECT_EQ(b.phase[7], 370u);
    EXPECT_EQ(b.phase[8], 100u);
    EXPECT_EQ(b.endToEnd, 1900u);
    EXPECT_EQ(b.sum(), b.endToEnd);
    EXPECT_EQ(b.residual, 0u);
    EXPECT_TRUE(b.monotone);
    EXPECT_FALSE(b.write);
}

TEST(PhaseBreakdown, UnstampedPhasesFoldIntoTheNextOne)
{
    // A single-cube system never stamps the chain legs; a zero stamp
    // must yield a zero-length phase whose span folds forward, keeping
    // the telescoped sum exact.
    HmcPacket p = stampedResponse();
    p.chainIngressAt = 0;  // link_serialize absorbs into chain_fwd_req
    p.dramStartAt = 0;     // vault_queue absorbs into dram_service
    const PhaseBreakdown b = PhaseBreakdown::fromPacket(p);
    EXPECT_EQ(b.phase[1], 0u);
    EXPECT_EQ(b.phase[2], 450u);  // 700 - 250
    EXPECT_EQ(b.phase[4], 0u);
    EXPECT_EQ(b.phase[5], 740u);  // 1500 - 760
    EXPECT_EQ(b.sum(), b.endToEnd);
    EXPECT_EQ(b.residual, 0u);
    EXPECT_TRUE(b.monotone);
}

TEST(PhaseBreakdown, AllChainStampsZeroStillTelescopes)
{
    HmcPacket p;
    p.cmd = HmcCmd::WriteResponse;
    p.createdAt = 10;
    p.hostArriveAt = 510;
    const PhaseBreakdown b = PhaseBreakdown::fromPacket(p);
    EXPECT_EQ(b.endToEnd, 500u);
    EXPECT_EQ(b.sum(), 500u);  // everything folded into host_drain
    EXPECT_EQ(b.phase[8], 500u);
    EXPECT_EQ(b.residual, 0u);
    EXPECT_TRUE(b.write);
}

TEST(PhaseBreakdown, BackwardStampClampsAndFlagsNonMonotone)
{
    HmcPacket p = stampedResponse();
    p.vaultArriveAt = 500;  // before cubeArriveAt (700): runs backwards
    const PhaseBreakdown b = PhaseBreakdown::fromPacket(p);
    EXPECT_FALSE(b.monotone);
    EXPECT_EQ(b.phase[3], 0u);    // clamped noc_request
    EXPECT_EQ(b.phase[4], 300u);  // vault_queue measured from prev=700
    EXPECT_EQ(b.sum(), b.endToEnd);
    EXPECT_EQ(b.residual, 0u);
}

TEST(AnatomyCollector, AggregatesAndRegistersMetrics)
{
    MetricsRegistry reg;
    ObsConfig cfg;
    cfg.anatomy = true;
    {
        AnatomyCollector col(cfg, &reg);
        HmcPacket p = stampedResponse();
        p.host = 1;
        p.cube = 2;
        p.vault = 3;
        col.onComplete(p);
        col.onComplete(p);

        EXPECT_EQ(col.completions(), 2u);
        EXPECT_EQ(col.monotonicityViolations(), 0u);
        EXPECT_EQ(col.residualViolations(), 0u);
        EXPECT_EQ(col.phaseHist(AnatomyPhase::DramService, false).total(),
                  2u);
        EXPECT_EQ(col.phaseHist(AnatomyPhase::DramService, true).total(),
                  0u);
        EXPECT_DOUBLE_EQ(
            col.phaseStats(AnatomyPhase::ChainFwdReq).mean(),
            ticksToNs(400));

        // The registry saw the shared histograms and the lazily grown
        // per-(host, cube, vault, rw) breakdown cell.
        const std::vector<std::string> paths = reg.paths();
        const auto has = [&paths](const std::string &want) {
            for (const std::string &q : paths)
                if (q == want)
                    return true;
            return false;
        };
        EXPECT_TRUE(has("obs.anatomy.read.dram_service_ns"));
        EXPECT_TRUE(has("obs.anatomy.completions"));
        EXPECT_TRUE(has(
            "obs.anatomy.by_key.host1.cube2.vault3.read.host_queue_ns"));
        ASSERT_EQ(col.breakdown().size(), 1u);

        // Waterfall: nine rows, shares sum to 100%.
        const std::vector<AnatomyWaterfallRow> rows = col.waterfall();
        ASSERT_EQ(rows.size(), kNumAnatomyPhases);
        double share = 0.0;
        for (const AnatomyWaterfallRow &r : rows) {
            EXPECT_EQ(r.count, 2u);
            share += r.shareMeanPct;
        }
        EXPECT_NEAR(share, 100.0, 1e-9);

        const BottleneckVerdict v = col.verdict();
        EXPECT_EQ(v.dominantMeanPhase, "dram_service");
        EXPECT_EQ(v.completions, 2u);
        EXPECT_FALSE(v.summary.empty());

        col.reset();
        EXPECT_EQ(col.completions(), 0u);
        EXPECT_EQ(col.phaseHist(AnatomyPhase::DramService, false).total(),
                  0u);
    }
    // Destruction must unregister the lazily added by_key samplers.
    for (const std::string &p : reg.paths())
        EXPECT_EQ(p.find("obs.anatomy"), std::string::npos) << p;
}

TEST(AnatomyCollector, ChainFloorSplitsQueueingFromService)
{
    MetricsRegistry reg;
    ObsConfig cfg;
    cfg.anatomy = true;
    AnatomyCollector col(cfg, &reg);
    // Floor: 2 hops x (100 + flits x 10) ticks; a 64 B read response
    // over a 4-flit... the *request* flit count is what the response
    // reports via flits() -- just make the measured phase exceed it.
    col.setChainHopFloor(100, 10);
    HmcPacket p = stampedResponse();
    p.reqHops = 2;
    col.onComplete(p);
    const BottleneckVerdict v = col.verdict();
    // measured chain_fwd_req = 400 ticks; floor = 2*(100 + flits*10).
    const Tick floor = 2 * (100 + p.flits() * 10);
    EXPECT_DOUBLE_EQ(v.chainFwdFloorNs,
                     ticksToNs(std::min<Tick>(400, floor)));
    EXPECT_DOUBLE_EQ(v.chainFwdExcessNs,
                     ticksToNs(400 - std::min<Tick>(400, floor)));
    EXPECT_GT(v.queueingSharePct, 0.0);
    EXPECT_NEAR(v.queueingSharePct + v.serviceSharePct, 100.0, 1e-9);
}

TEST(AnatomyCollector, EmptyVerdictIsWellFormed)
{
    MetricsRegistry reg;
    ObsConfig cfg;
    cfg.anatomy = true;
    AnatomyCollector col(cfg, &reg);
    const BottleneckVerdict v = col.verdict();
    EXPECT_EQ(v.completions, 0u);
    EXPECT_EQ(v.summary, "no completed transactions observed");
}

TEST(CongestionRecorder, ClassifiesOccupancyPaths)
{
    EXPECT_TRUE(CongestionRecorder::isOccupancyPath(
        "cube0.link1.up_tokens_in_use"));
    EXPECT_TRUE(CongestionRecorder::isOccupancyPath(
        "cube0.switch.fwd_q_flits_now"));
    EXPECT_FALSE(CongestionRecorder::isOccupancyPath(
        "cube0.vault3.requests_served"));
    EXPECT_FALSE(CongestionRecorder::isOccupancyPath(
        "obs.anatomy.completions"));
    EXPECT_FALSE(
        CongestionRecorder::isOccupancyPath("host0.port1.reads"));
}

TEST(CongestionRecorder, WindowsGaugesIntoSeries)
{
    Kernel kernel;
    MetricsRegistry reg;
    double depth = 0.0;
    reg.addGauge("sw.fwd_q_flits_now", [&depth] { return depth; },
                 nullptr);
    CongestionRecorder rec(kernel, reg, 100);
    rec.start();
    // The gauge ramps over time; each 100-tick window reads it once.
    kernel.scheduleIn(150, [&depth] { depth = 5.0; });
    kernel.scheduleIn(250, [&depth] { depth = 9.0; });
    kernel.run(1000);

    EXPECT_EQ(rec.windows(), 10u);
    ASSERT_EQ(rec.paths().size(), 1u);
    EXPECT_EQ(rec.paths()[0], "sw.fwd_q_flits_now");
    EXPECT_FALSE(rec.truncated());

    const std::string csv = rec.toCsv();
    EXPECT_NE(csv.find("component,"), std::string::npos);
    EXPECT_NE(csv.find("sw.fwd_q_flits_now,0,"), std::string::npos);
    EXPECT_NE(csv.find(",9"), std::string::npos);

    const Heatmap hm = rec.toHeatmap();
    EXPECT_EQ(hm.rows(), 1u);
    EXPECT_EQ(hm.cols(), 10u);

    std::ostringstream os;
    bool first = true;
    rec.emitCounterTracks(os, first);
    EXPECT_FALSE(first);
    EXPECT_NE(os.str().find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(os.str().find("\"occupancy\":9"), std::string::npos);
    EXPECT_NE(os.str().find("\"name\":\"congestion\""),
              std::string::npos);
}

TEST(CongestionRecorder, StopsAtWindowCap)
{
    Kernel kernel;
    MetricsRegistry reg;
    reg.addGauge("q_now", [] { return 1.0; }, nullptr);
    CongestionRecorder rec(kernel, reg, 10, 3);
    rec.start();
    kernel.run(1000);
    EXPECT_EQ(rec.windows(), 3u);
    EXPECT_TRUE(rec.truncated());
}

/** The standard 4-port GUPS scenario from the obs system tests. */
ExperimentResult
runGupsScenario(const SystemConfig &cfg, System **out = nullptr,
                std::unique_ptr<System> *keep = nullptr)
{
    auto sys = std::make_unique<System>(cfg);
    for (PortId p = 0; p < 4; ++p) {
        GupsPortSpec gp;
        gp.gen.pattern = sys->addressMap().pattern(16, 16);
        gp.gen.requestBytes = 32;
        gp.gen.seed = 0xabc + p;
        sys->configureGupsPort(p, gp);
    }
    sys->run(2 * kMicrosecond);
    const ExperimentResult r = sys->measure(5 * kMicrosecond);
    if (out)
        *out = sys.get();
    if (keep)
        *keep = std::move(sys);
    return r;
}

TEST(AnatomySystem, IsObservationOnly)
{
    // Same seeds, anatomy off vs on: every simulated result must be
    // bit-identical -- the engine only reads timestamps and gauges.
    const ExperimentResult off = runGupsScenario(SystemConfig{});

    SystemConfig cfg;
    cfg.obs.anatomy = true;
    const ExperimentResult on = runGupsScenario(cfg);

    EXPECT_EQ(on.totalReads, off.totalReads);
    EXPECT_EQ(on.totalWrites, off.totalWrites);
    EXPECT_EQ(on.totalWireBytes, off.totalWireBytes);
    EXPECT_EQ(on.avgReadLatencyNs, off.avgReadLatencyNs);
    EXPECT_EQ(on.maxReadLatencyNs, off.maxReadLatencyNs);
    EXPECT_EQ(on.bandwidthGBs, off.bandwidthGBs);
}

TEST(AnatomySystem, CollectsEveryCompletionWithZeroResidual)
{
    SystemConfig cfg;
    cfg.obs.anatomy = true;
    std::unique_ptr<System> sys;
    const ExperimentResult r = runGupsScenario(cfg, nullptr, &sys);

    const AnatomyCollector *a = sys->obs()->anatomy();
    ASSERT_NE(a, nullptr);
    // Completions accumulate over warmup + window.
    EXPECT_GE(a->completions(), r.totalReads);
    EXPECT_GT(a->completions(), 0u);
    EXPECT_EQ(a->monotonicityViolations(), 0u);
    EXPECT_EQ(a->residualViolations(), 0u);
    EXPECT_EQ(a->maxResidualNs(), 0.0);

    // Single-cube: the chain phases never fire.
    EXPECT_DOUBLE_EQ(a->phaseStats(AnatomyPhase::ChainFwdReq).mean(),
                     0.0);
    EXPECT_GT(a->phaseStats(AnatomyPhase::DramService).mean(), 0.0);

    const BottleneckVerdict v = a->verdict();
    EXPECT_FALSE(v.dominantMeanPhase.empty());
    EXPECT_FALSE(v.summary.empty());
}

TEST(AnatomySystem, SamplerStartAlsoWindowsCongestion)
{
    SystemConfig cfg;
    cfg.obs.anatomy = true;
    cfg.obs.sampleIntervalNs = 500;
    std::unique_ptr<System> sys;
    runGupsScenario(cfg, nullptr, &sys);

    const CongestionRecorder *c = sys->obs()->congestion();
    ASSERT_NE(c, nullptr);
    EXPECT_GT(c->windows(), 0u);
    EXPECT_FALSE(c->paths().empty());
    for (const std::string &p : c->paths())
        EXPECT_TRUE(CongestionRecorder::isOccupancyPath(p)) << p;

    // The merged trace document carries the counter tracks even with
    // no packet tracer: the congestion surface stands alone.
    std::ostringstream os;
    bool first = true;
    c->emitCounterTracks(os, first);
    EXPECT_NE(os.str().find("\"ph\":\"C\""), std::string::npos);
}

}  // namespace
}  // namespace hmcsim
