#include <gtest/gtest.h>

#include "common/histogram.h"
#include "common/stats.h"
#include "obs/metrics.h"

namespace hmcsim {
namespace {

TEST(MetricsRegistry, RegisterSnapshotRoundTrip)
{
    MetricsRegistry reg;
    Counter c;
    c.inc(7);
    SampleStats s;
    s.add(10.0);
    s.add(30.0);
    Histogram h(0.0, 100.0, 4);
    h.add(10.0);
    h.add(90.0);
    double depth = 3.0;

    reg.addCounter("a.requests", &c);
    reg.addSampler("a.latency", &s);
    reg.addHistogram("a.hist", &h);
    reg.addGauge("a.depth", [&depth] { return depth; });
    EXPECT_EQ(reg.size(), 4u);
    EXPECT_TRUE(reg.has("a.requests"));
    EXPECT_FALSE(reg.has("a.nope"));

    const MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.size(), 4u);
    EXPECT_DOUBLE_EQ(snap.value("a.requests"), 7.0);
    EXPECT_DOUBLE_EQ(snap.value("a.depth"), 3.0);

    const MetricPoint *lat = snap.find("a.latency");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->kind, MetricKind::Sampler);
    EXPECT_EQ(lat->sample.count(), 2u);
    EXPECT_DOUBLE_EQ(lat->sample.mean(), 20.0);

    const MetricPoint *hist = snap.find("a.hist");
    ASSERT_NE(hist, nullptr);
    ASSERT_EQ(hist->bins.size(), 4u);
    EXPECT_EQ(hist->bins[0], 1u);
    EXPECT_EQ(hist->bins[3], 1u);

    // Snapshot is detached: live changes don't retro-edit it.
    c.inc(100);
    depth = 9.0;
    EXPECT_DOUBLE_EQ(snap.value("a.requests"), 7.0);
    EXPECT_DOUBLE_EQ(snap.value("a.depth"), 3.0);
    EXPECT_DOUBLE_EQ(reg.snapshot().value("a.requests"), 107.0);
}

TEST(MetricsRegistry, SnapshotMergeSemantics)
{
    MetricsRegistry reg1, reg2;
    Counter c1, c2;
    c1.inc(5);
    c2.inc(8);
    SampleStats s1, s2;
    s1.add(10.0);
    s2.add(20.0);
    s2.add(40.0);
    Histogram h1(0.0, 10.0, 2), h2(0.0, 10.0, 2);
    h1.add(1.0);
    h2.add(9.0);

    reg1.addCounter("x.count", &c1);
    reg1.addSampler("x.lat", &s1);
    reg1.addHistogram("x.hist", &h1);
    reg1.addGauge("x.gauge", [] { return 1.0; });
    reg1.addCounter("only_left", &c1);

    reg2.addCounter("x.count", &c2);
    reg2.addSampler("x.lat", &s2);
    reg2.addHistogram("x.hist", &h2);
    reg2.addGauge("x.gauge", [] { return 2.0; });
    reg2.addCounter("only_right", &c2);

    MetricsSnapshot merged = reg1.snapshot();
    merged.merge(reg2.snapshot());

    // Counters sum; samplers pool; gauges take the other side;
    // histograms add bin-wise; one-sided paths survive.
    EXPECT_DOUBLE_EQ(merged.value("x.count"), 13.0);
    const MetricPoint *lat = merged.find("x.lat");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->sample.count(), 3u);
    EXPECT_DOUBLE_EQ(lat->sample.sum(), 70.0);
    EXPECT_DOUBLE_EQ(merged.value("x.gauge"), 2.0);
    const MetricPoint *hist = merged.find("x.hist");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->bins[0], 1u);
    EXPECT_EQ(hist->bins[1], 1u);
    EXPECT_DOUBLE_EQ(merged.value("only_left"), 5.0);
    EXPECT_DOUBLE_EQ(merged.value("only_right"), 8.0);
}

TEST(MetricsRegistry, DeltaIsPerInterval)
{
    MetricsRegistry reg;
    Counter c;
    SampleStats s;
    double gauge = 1.0;
    Histogram h(0.0, 1.0, 2);
    reg.addCounter("c", &c);
    reg.addSampler("s", &s);
    reg.addGauge("g", [&gauge] { return gauge; });
    reg.addHistogram("h", &h);

    c.inc(10);
    s.add(5.0);
    const MetricsSnapshot t0 = reg.snapshot();

    c.inc(4);
    s.add(7.0);
    s.add(9.0);
    gauge = 42.0;
    const MetricsSnapshot t1 = reg.snapshot();

    const MetricsSnapshot d = t1.delta(t0);
    // Counter: difference. Sampler: the interval mean ((7+9)/2).
    // Gauge: the current reading. Histogram: dropped from rows.
    EXPECT_DOUBLE_EQ(d.value("c"), 4.0);
    const MetricPoint *ds = d.find("s");
    ASSERT_NE(ds, nullptr);
    EXPECT_DOUBLE_EQ(ds->value, 8.0);
    EXPECT_EQ(ds->sample.count(), 1u);
    EXPECT_DOUBLE_EQ(ds->sample.mean(), 8.0);
    EXPECT_DOUBLE_EQ(d.value("g"), 42.0);
    EXPECT_EQ(d.find("h"), nullptr);
}

TEST(MetricsRegistry, SnapshotResetDropsEverything)
{
    MetricsRegistry reg;
    Counter c;
    reg.addCounter("c", &c);
    MetricsSnapshot snap = reg.snapshot();
    EXPECT_FALSE(snap.empty());
    snap.reset();
    EXPECT_TRUE(snap.empty());
    EXPECT_EQ(snap.find("c"), nullptr);
}

TEST(MetricsRegistry, OwnerTokenProtectsReplacement)
{
    // A replacement port registers its metrics (overwriting the path)
    // before the old port is destroyed; the old port's unregistration
    // must not tear down the successor's entry.
    MetricsRegistry reg;
    Counter oldC, newC;
    oldC.inc(1);
    newC.inc(2);
    reg.addCounter("port0.reads", &oldC, &oldC);
    reg.addCounter("port0.reads", &newC, &newC);  // replacement
    reg.remove("port0.reads", &oldC);             // old owner dies
    ASSERT_TRUE(reg.has("port0.reads"));
    EXPECT_DOUBLE_EQ(reg.snapshot().value("port0.reads"), 2.0);
    reg.remove("port0.reads", &newC);
    EXPECT_FALSE(reg.has("port0.reads"));
}

TEST(MetricSet, UnboundSetIsInert)
{
    MetricSet set;
    Counter c;
    EXPECT_FALSE(set.bound());
    set.counter("x", &c);  // must not crash or register anywhere
    set.gauge("y", [] { return 0.0; });
}

TEST(MetricSet, UnregistersOnDestruction)
{
    MetricsRegistry reg;
    Counter c;
    {
        MetricSet set;
        set.bind(&reg, "sys.comp");
        set.counter("hits", &c);
        EXPECT_TRUE(reg.has("sys.comp.hits"));
    }
    EXPECT_FALSE(reg.has("sys.comp.hits"));
    EXPECT_EQ(reg.size(), 0u);
}

TEST(MetricSet, SubtreeSnapshotFiltersByPrefix)
{
    MetricsRegistry reg;
    Counter a, b;
    a.inc(1);
    b.inc(2);
    MetricSet s1, s2;
    s1.bind(&reg, "sys.vault0");
    s2.bind(&reg, "sys.port0");
    s1.counter("served", &a);
    s2.counter("reads", &b);

    const MetricsSnapshot sub = reg.snapshotSubtree("sys.vault");
    EXPECT_EQ(sub.size(), 1u);
    EXPECT_DOUBLE_EQ(sub.value("sys.vault0.served"), 1.0);
}

}  // namespace
}  // namespace hmcsim
