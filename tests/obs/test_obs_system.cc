/**
 * @file
 * System-level observability tests: enabling obs features must
 * observe, never perturb -- simulated results stay identical to the
 * obs-off run -- and the data the layer produces must be complete and
 * deterministic.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "host/experiment.h"
#include "host/system.h"
#include "obs/observability.h"
#include "sim/kernel.h"

namespace hmcsim {
namespace {

/** Build the standard 4-port GUPS scenario on @p cfg. */
std::unique_ptr<System>
makeScenario(const SystemConfig &cfg)
{
    auto sys = std::make_unique<System>(cfg);
    for (PortId p = 0; p < 4; ++p) {
        GupsPortSpec gp;
        gp.gen.pattern = sys->addressMap().pattern(16, 16);
        gp.gen.requestBytes = 32;
        gp.gen.seed = 0xabc + p;
        sys->configureGupsPort(p, gp);
    }
    return sys;
}

/** Warm up and measure the standard scenario. */
ExperimentResult
runScenario(System &sys)
{
    sys.run(2 * kMicrosecond);
    return sys.measure(5 * kMicrosecond);
}

ExperimentResult
runScenario(const SystemConfig &cfg)
{
    auto sys = makeScenario(cfg);
    return runScenario(*sys);
}

TEST(ObsSystem, DisabledByDefaultAndFreeOfCharge)
{
    SystemConfig cfg;
    EXPECT_FALSE(cfg.obs.anyEnabled());
    System sys(cfg);
    EXPECT_EQ(sys.obs(), nullptr);
    EXPECT_EQ(sys.kernel().obs(), nullptr);
}

TEST(ObsSystem, MetricsAreObservationOnly)
{
    // Same seeds, metrics off vs on: every simulated result must be
    // bit-identical -- the registry only reads existing stats.
    const ExperimentResult off = runScenario(SystemConfig{});

    SystemConfig cfg;
    cfg.obs.metrics = true;
    const ExperimentResult on = runScenario(cfg);

    EXPECT_EQ(on.totalReads, off.totalReads);
    EXPECT_EQ(on.totalWrites, off.totalWrites);
    EXPECT_EQ(on.totalWireBytes, off.totalWireBytes);
    EXPECT_EQ(on.avgReadLatencyNs, off.avgReadLatencyNs);
    EXPECT_EQ(on.maxReadLatencyNs, off.maxReadLatencyNs);
    EXPECT_EQ(on.bandwidthGBs, off.bandwidthGBs);
}

TEST(ObsSystem, FullTraceIsObservationOnly)
{
    const ExperimentResult off = runScenario(SystemConfig{});

    SystemConfig cfg;
    cfg.obs.trace = "full";
    const ExperimentResult on = runScenario(cfg);

    EXPECT_EQ(on.totalReads, off.totalReads);
    EXPECT_EQ(on.avgReadLatencyNs, off.avgReadLatencyNs);
    EXPECT_EQ(on.bandwidthGBs, off.bandwidthGBs);
}

TEST(ObsSystem, RegistryMatchesExperimentTotals)
{
    SystemConfig cfg;
    cfg.obs.metrics = true;
    auto sys = makeScenario(cfg);
    const ExperimentResult r = runScenario(*sys);
    ASSERT_NE(sys->obs(), nullptr);

    const MetricsSnapshot snap = sys->obs()->registry().snapshot();
    ASSERT_FALSE(snap.empty());

    // Port read counters sum to the experiment's total; vault service
    // counters account for every request.
    double reads = 0.0, served = 0.0;
    bool sawLatencySampler = false;
    for (const auto &[path, pt] : snap.points()) {
        if (path.find("port") != std::string::npos &&
            path.size() > 6 &&
            path.compare(path.size() - 6, 6, ".reads") == 0)
            reads += pt.value;
        if (path.find("requests_served") != std::string::npos)
            served += pt.value;
        if (path.find("read_latency_ns") != std::string::npos &&
            pt.sample.count() > 0)
            sawLatencySampler = true;
    }
    // Counters are cumulative (warmup + window); the experiment result
    // is the measurement window only, so >= is the right bound.
    EXPECT_GE(reads, static_cast<double>(r.totalReads));
    EXPECT_GT(r.totalReads, 0u);
    EXPECT_GE(served, static_cast<double>(r.totalReads));
    EXPECT_TRUE(sawLatencySampler);
}

/**
 * Flatten a tracer's buffer into a comparable string.  Packet ids are
 * renamed to dense first-appearance indices: the global id allocator
 * keeps counting across Systems in one process, so raw ids shift
 * between runs even though the event sequence is identical.
 */
std::string
traceFingerprint(const PacketTracer &tr)
{
    std::map<PacketId, std::size_t> dense;
    std::ostringstream oss;
    for (const TraceEvent &ev : tr.events()) {
        const auto [it, _] = dense.emplace(ev.packet, dense.size());
        oss << ev.tick << ":" << it->second << ":"
            << static_cast<int>(ev.stage) << ":" << ev.cube << ":"
            << ev.where << "\n";
    }
    return oss.str();
}

TEST(ObsSystem, FullTraceIsDeterministicAcrossRuns)
{
    const auto capture = [] {
        SystemConfig cfg;
        cfg.obs.trace = "full";
        cfg.obs.traceBufferEvents = 1 << 12;
        auto sys = makeScenario(cfg);
        runScenario(*sys);
        return traceFingerprint(*sys->obs()->tracer());
    };
    const std::string first = capture();
    const std::string second = capture();
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

TEST(ObsSystem, FullTraceCoversCompleteLifecycles)
{
    SystemConfig cfg;
    cfg.obs.trace = "full";
    cfg.obs.traceBufferEvents = 1 << 14;
    auto sys = makeScenario(cfg);
    runScenario(*sys);

    // Group events per packet; a packet whose Inject survived in the
    // ring must walk Inject -> ... -> Eject in non-decreasing time.
    std::map<PacketId, std::vector<TraceEvent>> perPacket;
    for (const TraceEvent &ev : sys->obs()->tracer()->events())
        perPacket[ev.packet].push_back(ev);
    ASSERT_FALSE(perPacket.empty());

    std::size_t complete = 0;
    for (const auto &[id, evs] : perPacket) {
        for (std::size_t i = 1; i < evs.size(); ++i)
            EXPECT_LE(evs[i - 1].tick, evs[i].tick) << "packet " << id;
        if (evs.front().stage == TraceStage::Inject &&
            evs.back().stage == TraceStage::Eject) {
            ++complete;
            // A complete read lifecycle passes through the vault.
            bool sawVault = false, sawDram = false;
            for (const TraceEvent &ev : evs) {
                sawVault |= ev.stage == TraceStage::VaultEnqueue;
                sawDram |= ev.stage == TraceStage::DramDone;
            }
            EXPECT_TRUE(sawVault) << "packet " << id;
            EXPECT_TRUE(sawDram) << "packet " << id;
        }
    }
    EXPECT_GT(complete, 0u);
}

TEST(ObsSystem, SummaryTraceRecordsLifecyclesFromCompletionPath)
{
    SystemConfig cfg;
    cfg.obs.trace = "summary";
    cfg.obs.traceSampleEvery = 8;
    auto sys = makeScenario(cfg);
    runScenario(*sys);

    const std::vector<TraceEvent> evs =
        sys->obs()->tracer()->events();
    ASSERT_FALSE(evs.empty());
    for (const TraceEvent &ev : evs)
        EXPECT_EQ(ev.packet % 8, 0u);
}

TEST(ObsSystem, ChromeJsonDumpFromLiveSystem)
{
    SystemConfig cfg;
    cfg.obs.trace = "full";
    auto sys = makeScenario(cfg);
    runScenario(*sys);

    std::ostringstream oss;
    sys->obs()->tracer()->dumpChromeJson(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(out.find("\"displayTimeUnit\""), std::string::npos);
}

TEST(ObsSystem, SamplerWritesTimeSeriesCsv)
{
    const std::string path = "obs_test_timeseries.csv";
    std::remove(path.c_str());
    {
        SystemConfig cfg;
        cfg.obs.sampleIntervalNs = 500;
        cfg.obs.sampleCsvPath = path;
        auto sys = makeScenario(cfg);
        const ExperimentResult r = runScenario(*sys);
        EXPECT_GT(r.totalReads, 0u);
        ASSERT_NE(sys->obs()->sampler(), nullptr);
        EXPECT_GT(sys->obs()->sampler()->rowsWritten(), 0u);
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string header;
    std::getline(in, header);
    EXPECT_NE(header.find("time_ns"), std::string::npos);
    std::string row;
    std::getline(in, row);
    EXPECT_FALSE(row.empty());
    std::remove(path.c_str());
}

TEST(ObsSystem, ProfilerAttributesComponentClasses)
{
    SystemConfig cfg;
    cfg.obs.profile = true;
    auto sys = makeScenario(cfg);
    runScenario(*sys);

    const SelfProfiler *p = sys->obs()->profiler();
    ASSERT_NE(p, nullptr);
    EXPECT_GT(p->events(), 0u);
    EXPECT_GT(p->eventsPerSec(), 0.0);
    // The hot classes instrumented with ProfileScope all fired.
    const auto &cls = p->classSeconds();
    EXPECT_NE(cls.find("vault"), cls.end());
    EXPECT_NE(cls.find("serdes"), cls.end());
    EXPECT_NE(cls.find("host.tick"), cls.end());
}

}  // namespace
}  // namespace hmcsim
