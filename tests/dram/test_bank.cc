#include <gtest/gtest.h>

#include "common/log.h"
#include "dram/bank.h"

namespace hmcsim {
namespace {

class BankTest : public ::testing::Test
{
  protected:
    BankTest() : params_(DramTimingParams::hmcGen2()), bank_(params_, 0) {}

    DramTimingParams params_;
    Bank bank_;
};

TEST_F(BankTest, StartsIdle)
{
    EXPECT_FALSE(bank_.rowOpen());
    EXPECT_EQ(bank_.actReadyAt(), 0u);
}

TEST_F(BankTest, ActivateOpensRow)
{
    const Tick open = bank_.activate(0, 42);
    EXPECT_TRUE(bank_.rowOpen());
    EXPECT_EQ(bank_.openRow(), 42u);
    EXPECT_EQ(open, params_.tRCD);
    EXPECT_EQ(bank_.colReadyAt(), params_.tRCD);
    EXPECT_EQ(bank_.preReadyAt(), params_.tRAS);
}

TEST_F(BankTest, ReadBurstTiming)
{
    bank_.activate(0, 1);
    const auto t = bank_.readBurst(params_.tRCD, 4);
    EXPECT_EQ(t.cmdTime, params_.tRCD);
    EXPECT_EQ(t.dataStart, params_.tRCD + params_.tCL);
    EXPECT_EQ(t.dataEnd, t.dataStart + 4 * params_.tBURST);
    // Next column command honours tCCD for all 4 beats.
    EXPECT_EQ(bank_.colReadyAt(), params_.tRCD + 4 * params_.tCCD);
}

TEST_F(BankTest, WriteBurstUsesWlAndWr)
{
    bank_.activate(0, 1);
    const auto t = bank_.writeBurst(params_.tRCD, 2);
    EXPECT_EQ(t.dataStart, params_.tRCD + params_.tWL);
    EXPECT_EQ(bank_.preReadyAt(), t.dataEnd + params_.tWR);
}

TEST_F(BankTest, PrechargeClosesAndSetsTrp)
{
    bank_.activate(0, 1);
    const Tick pre_at = bank_.preReadyAt();
    const Tick idle = bank_.precharge(pre_at);
    EXPECT_FALSE(bank_.rowOpen());
    EXPECT_EQ(idle, pre_at + params_.tRP);
    EXPECT_EQ(bank_.actReadyAt(), pre_at + params_.tRP);
}

TEST_F(BankTest, FullClosedPageCycle)
{
    // ACT -> RD -> PRE -> ACT: the precharge waits for whichever of
    // tRAS (from ACT) and tRTP (from the read) ends later, and the
    // next activate adds tRP on top.
    bank_.activate(0, 1);
    bank_.readBurst(bank_.colReadyAt(), 1);
    bank_.precharge(bank_.preReadyAt());
    const Tick pre_at =
        std::max(params_.tRAS, params_.tRCD + params_.tRTP);
    EXPECT_EQ(bank_.actReadyAt(), pre_at + params_.tRP);
    EXPECT_GE(bank_.actReadyAt(), params_.tRC());
    bank_.activate(bank_.actReadyAt(), 2);
    EXPECT_EQ(bank_.openRow(), 2u);
}

TEST_F(BankTest, ReadDelaysPrechargeViaRtp)
{
    bank_.activate(0, 1);
    // Issue the read late so tRTP, not tRAS, dominates.
    const Tick rd = params_.tRAS + 1000;
    bank_.readBurst(rd, 1);
    EXPECT_EQ(bank_.preReadyAt(), rd + params_.tRTP);
}

TEST_F(BankTest, DoubleActivatePanics)
{
    bank_.activate(0, 1);
    EXPECT_THROW(bank_.activate(params_.tRCD, 2), PanicError);
}

TEST_F(BankTest, EarlyActivatePanics)
{
    bank_.activate(0, 1);
    bank_.precharge(bank_.preReadyAt());
    EXPECT_THROW(bank_.activate(bank_.actReadyAt() - 1, 2), PanicError);
}

TEST_F(BankTest, ReadOnClosedRowPanics)
{
    EXPECT_THROW(bank_.readBurst(0, 1), PanicError);
}

TEST_F(BankTest, EarlyColumnPanics)
{
    bank_.activate(0, 1);
    EXPECT_THROW(bank_.readBurst(params_.tRCD - 1, 1), PanicError);
}

TEST_F(BankTest, EarlyPrechargePanics)
{
    bank_.activate(0, 1);
    EXPECT_THROW(bank_.precharge(params_.tRAS - 1), PanicError);
}

TEST_F(BankTest, ZeroBeatsPanics)
{
    bank_.activate(0, 1);
    EXPECT_THROW(bank_.readBurst(params_.tRCD, 0), PanicError);
}

TEST_F(BankTest, RefreshBlocksActivate)
{
    const Tick done = bank_.refresh(0);
    EXPECT_EQ(done, params_.tRFC);
    EXPECT_EQ(bank_.actReadyAt(), params_.tRFC);
    EXPECT_THROW(bank_.activate(params_.tRFC - 1, 1), PanicError);
}

TEST_F(BankTest, RefreshOnOpenRowPanics)
{
    bank_.activate(0, 1);
    EXPECT_THROW(bank_.refresh(params_.tRAS), PanicError);
}

TEST_F(BankTest, StatCounters)
{
    bank_.activate(0, 1);
    bank_.readBurst(bank_.colReadyAt(), 4);
    bank_.precharge(bank_.preReadyAt());
    EXPECT_EQ(bank_.activates(), 1u);
    EXPECT_EQ(bank_.reads(), 4u);  // counted in beats
    EXPECT_EQ(bank_.precharges(), 1u);
    bank_.resetStats();
    EXPECT_EQ(bank_.activates(), 0u);
}

}  // namespace
}  // namespace hmcsim
