#include <gtest/gtest.h>

#include "common/log.h"
#include "dram/vault_memory.h"

namespace hmcsim {
namespace {

class VaultMemoryTest : public ::testing::Test
{
  protected:
    VaultMemoryTest()
        : params_(DramTimingParams::hmcGen2()),
          mem_(kernel_, nullptr, "vmem", params_, 16)
    {
    }

    DramAccess
    access(BankId bank, RowId row, std::uint32_t bytes,
           bool write = false)
    {
        DramAccess a;
        a.bank = bank;
        a.row = row;
        a.bytes = bytes;
        a.isWrite = write;
        return a;
    }

    Kernel kernel_;
    DramTimingParams params_;
    VaultMemory mem_;
};

TEST_F(VaultMemoryTest, ClosedPageReadTiming)
{
    const auto r = mem_.service(access(0, 5, 32), 0, PagePolicy::Closed);
    EXPECT_EQ(r.actTime, 0u);
    EXPECT_EQ(r.colTime, params_.tRCD);
    EXPECT_EQ(r.dataStart, params_.tRCD + params_.tCL);
    EXPECT_EQ(r.dataEnd, r.dataStart + params_.tBURST);
    EXPECT_FALSE(r.rowHit);
    // Closed policy precharged: the bank is closed again.
    EXPECT_FALSE(mem_.bank(0).rowOpen());
}

TEST_F(VaultMemoryTest, ClosedPageBackToBackSameBankPacedByRowCycle)
{
    const auto r1 = mem_.service(access(0, 1, 32), 0, PagePolicy::Closed);
    const auto r2 = mem_.service(access(0, 2, 32), r1.dataEnd,
                                 PagePolicy::Closed);
    // Second activate cannot start before tRAS + tRP.
    EXPECT_GE(r2.actTime, params_.tRC());
}

TEST_F(VaultMemoryTest, OpenPageHitSkipsActivate)
{
    const auto r1 = mem_.service(access(0, 7, 32), 0, PagePolicy::Open);
    EXPECT_FALSE(r1.rowHit);
    EXPECT_TRUE(mem_.bank(0).rowOpen());
    const auto r2 = mem_.service(access(0, 7, 32), r1.dataEnd,
                                 PagePolicy::Open);
    EXPECT_TRUE(r2.rowHit);
    EXPECT_EQ(r2.actTime, kTickNever);
    // A hit is much faster: no tRCD.
    EXPECT_LT(r2.dataEnd - r1.dataEnd,
              params_.tRCD + params_.tCL + 2 * params_.tBURST);
    EXPECT_EQ(mem_.rowHits(), 1u);
    EXPECT_EQ(mem_.rowMisses(), 1u);
}

TEST_F(VaultMemoryTest, OpenPageConflictPrechargesFirst)
{
    const auto r1 = mem_.service(access(0, 1, 32), 0, PagePolicy::Open);
    const auto r2 = mem_.service(access(0, 2, 32), r1.dataEnd,
                                 PagePolicy::Open);
    EXPECT_FALSE(r2.rowHit);
    // Conflict pays precharge + activate on top.
    EXPECT_GE(r2.actTime, params_.tRAS + params_.tRP);
    EXPECT_EQ(mem_.bank(0).openRow(), 2u);
}

TEST_F(VaultMemoryTest, DifferentBanksOverlap)
{
    const auto r1 = mem_.service(access(0, 1, 128), 0, PagePolicy::Closed);
    const auto r2 = mem_.service(access(1, 1, 128), 0, PagePolicy::Closed);
    // Bank 1's activate only waits tRRD, not the whole bank-0 access.
    EXPECT_EQ(r2.actTime, params_.tRRD);
    EXPECT_GT(r1.dataEnd, r2.actTime);
}

TEST_F(VaultMemoryTest, SharedBusSerializesData)
{
    const auto r1 = mem_.service(access(0, 1, 128), 0, PagePolicy::Closed);
    const auto r2 = mem_.service(access(1, 1, 128), 0, PagePolicy::Closed);
    // Data windows must not overlap on the 32 B TSV bus.
    EXPECT_GE(r2.dataStart, r1.dataEnd);
}

TEST_F(VaultMemoryTest, FawLimitsActivateBursts)
{
    // Five activates in a row: the fifth waits for the tFAW window.
    Tick act4 = 0;
    for (BankId b = 0; b < 4; ++b)
        act4 = mem_.service(access(b, 1, 32), 0, PagePolicy::Closed)
            .actTime;
    const auto r5 = mem_.service(access(4, 1, 32), 0, PagePolicy::Closed);
    EXPECT_GE(r5.actTime, params_.tFAW);
    (void)act4;
}

TEST_F(VaultMemoryTest, SixteenByteAccessOccupiesWholeBeat)
{
    const auto r = mem_.service(access(0, 1, 16), 0, PagePolicy::Closed);
    EXPECT_EQ(r.dataEnd - r.dataStart, params_.tBURST);
}

TEST_F(VaultMemoryTest, WriteUsesWriteLatency)
{
    const auto r =
        mem_.service(access(0, 1, 32, true), 0, PagePolicy::Closed);
    EXPECT_EQ(r.dataStart, r.colTime + params_.tWL);
}

TEST_F(VaultMemoryTest, RefreshBankDelaysNextActivate)
{
    const Tick done = mem_.refreshBank(3, 0);
    EXPECT_EQ(done, params_.tRFC);
    const auto r = mem_.service(access(3, 1, 32), 0, PagePolicy::Closed);
    EXPECT_GE(r.actTime, params_.tRFC);
}

TEST_F(VaultMemoryTest, RefreshPrechargesOpenRow)
{
    mem_.service(access(2, 9, 32), 0, PagePolicy::Open);
    ASSERT_TRUE(mem_.bank(2).rowOpen());
    mem_.refreshBank(2, 0);
    EXPECT_FALSE(mem_.bank(2).rowOpen());
}

TEST_F(VaultMemoryTest, EarliestActivateHonoursRrd)
{
    mem_.service(access(0, 1, 32), 0, PagePolicy::Closed);
    EXPECT_GE(mem_.earliestActivate(1, 0), params_.tRRD);
}

TEST_F(VaultMemoryTest, BankIndexOutOfRangePanics)
{
    EXPECT_THROW(mem_.bank(16), PanicError);
}

TEST_F(VaultMemoryTest, ZeroBanksIsFatal)
{
    EXPECT_THROW(VaultMemory(kernel_, nullptr, "bad", params_, 0),
                 FatalError);
}

TEST_F(VaultMemoryTest, StatsReport)
{
    mem_.service(access(0, 1, 64), 0, PagePolicy::Closed);
    std::map<std::string, double> stats;
    mem_.reportStats(stats);
    EXPECT_DOUBLE_EQ(stats.at("vmem.activates"), 1.0);
    EXPECT_DOUBLE_EQ(stats.at("vmem.bus_bytes"), 64.0);
    mem_.resetStats();
    stats.clear();
    mem_.reportStats(stats);
    EXPECT_DOUBLE_EQ(stats.at("vmem.activates"), 0.0);
}

}  // namespace
}  // namespace hmcsim
