#include <gtest/gtest.h>

#include "common/log.h"
#include "common/units.h"
#include "dram/refresh.h"

namespace hmcsim {
namespace {

TEST(Refresh, DisabledNeverDue)
{
    RefreshPolicy r(0, 16);
    EXPECT_FALSE(r.enabled());
    EXPECT_FALSE(r.due(0, kTickNever - 1));
    EXPECT_EQ(r.nextDue(0), kTickNever);
}

TEST(Refresh, StaggeredInitialDueTimes)
{
    const Tick trefi = nsToTicks(7800.0);
    RefreshPolicy r(trefi, 16);
    EXPECT_TRUE(r.enabled());
    Tick prev = 0;
    for (BankId b = 0; b < 16; ++b) {
        const Tick due = r.nextDue(b);
        EXPECT_GT(due, prev);
        EXPECT_LE(due, trefi);
        prev = due;
    }
}

TEST(Refresh, DueAfterInterval)
{
    const Tick trefi = 1000;
    RefreshPolicy r(trefi, 4);
    const Tick first = r.nextDue(0);
    EXPECT_FALSE(r.due(0, first - 1));
    EXPECT_TRUE(r.due(0, first));
}

TEST(Refresh, CompletedReschedules)
{
    RefreshPolicy r(1000, 4);
    const Tick first = r.nextDue(2);
    r.completed(2, first + 50);
    EXPECT_EQ(r.nextDue(2), first + 50 + 1000);
    EXPECT_EQ(r.refreshesIssued(), 1u);
    EXPECT_FALSE(r.due(2, first + 100));
}

TEST(Refresh, CompletedWhileDisabledIsNoop)
{
    RefreshPolicy r(0, 4);
    r.completed(0, 100);
    EXPECT_EQ(r.refreshesIssued(), 0u);
}

TEST(Refresh, OutOfRangePanics)
{
    RefreshPolicy r(1000, 4);
    EXPECT_THROW(r.due(4, 0), PanicError);
    EXPECT_THROW(r.completed(4, 0), PanicError);
    EXPECT_THROW(r.nextDue(4), PanicError);
}

TEST(Refresh, ZeroBanksPanics)
{
    EXPECT_THROW(RefreshPolicy(1000, 0), PanicError);
}

}  // namespace
}  // namespace hmcsim
