#include <gtest/gtest.h>

#include "common/log.h"
#include "common/units.h"
#include "dram/tsv_bus.h"

namespace hmcsim {
namespace {

TEST(TsvBus, BeatRounding)
{
    TsvBus bus("b", 32, 3200);
    EXPECT_EQ(bus.beatsFor(1), 1u);
    EXPECT_EQ(bus.beatsFor(16), 1u);
    EXPECT_EQ(bus.beatsFor(32), 1u);
    EXPECT_EQ(bus.beatsFor(33), 2u);
    EXPECT_EQ(bus.beatsFor(128), 4u);
}

TEST(TsvBus, SixteenByteRequestOccupiesFullBeat)
{
    // The paper: the DRAM bus granularity is 32 B, so 16 B requests
    // waste half the beat.
    TsvBus bus("b", 32, 3200);
    const auto t = bus.reserve(16, 0);
    EXPECT_EQ(t.end - t.start, 3200u);
}

TEST(TsvBus, SequentialReservations)
{
    TsvBus bus("b", 32, 3200);
    const auto t1 = bus.reserve(128, 0);
    EXPECT_EQ(t1.end, 4 * 3200u);
    const auto t2 = bus.reserve(32, 0);
    EXPECT_EQ(t2.start, t1.end);
}

TEST(TsvBus, TenGBsAggregate)
{
    TsvBus bus("b", 32, 3200);
    // 100 x 128 B back to back = 12.8 KB in 128 * 3.2 ns.
    Tick end = 0;
    for (int i = 0; i < 100; ++i)
        end = bus.reserve(128, 0).end;
    const double gbs = 12800.0 / ticksToNs(end);
    EXPECT_NEAR(gbs, 10.0, 0.01);
}

TEST(TsvBus, EarliestRespected)
{
    TsvBus bus("b", 32, 3200);
    const auto t = bus.reserve(32, 99999);
    EXPECT_EQ(t.start, 99999u);
}

TEST(TsvBus, BusyTimeExcludesIdle)
{
    TsvBus bus("b", 32, 3200);
    bus.reserve(32, 0);
    bus.reserve(32, 100000);
    EXPECT_EQ(bus.busyTime(), 2 * 3200u);
}

TEST(TsvBus, BytesCountWholeBeats)
{
    TsvBus bus("b", 32, 3200);
    bus.reserve(16, 0);
    EXPECT_EQ(bus.bytesCarried(), 32u);  // a full beat moved
}

TEST(TsvBus, ResetStats)
{
    TsvBus bus("b", 32, 3200);
    bus.reserve(64, 0);
    bus.resetStats();
    EXPECT_EQ(bus.bytesCarried(), 0u);
    EXPECT_EQ(bus.busyTime(), 0u);
}

TEST(TsvBus, ZeroByteReservationPanics)
{
    TsvBus bus("b", 32, 3200);
    EXPECT_THROW(bus.reserve(0, 0), PanicError);
}

TEST(TsvBus, BadConstructionPanics)
{
    EXPECT_THROW(TsvBus("b", 0, 3200), PanicError);
    EXPECT_THROW(TsvBus("b", 32, 0), PanicError);
}

}  // namespace
}  // namespace hmcsim
