#include <gtest/gtest.h>

#include "common/log.h"
#include "common/units.h"
#include "dram/timing.h"

namespace hmcsim {
namespace {

TEST(DramTiming, HmcGen2MatchesPaperCoreLatency)
{
    const DramTimingParams p = DramTimingParams::hmcGen2();
    // The paper cites tRCD + tCL + tRP ~= 41 ns ([4], [25]).
    EXPECT_NEAR(ticksToNs(p.tRCD + p.tCL + p.tRP), 41.25, 0.1);
}

TEST(DramTiming, HmcGen2BusGivesTenGBs)
{
    const DramTimingParams p = DramTimingParams::hmcGen2();
    // 32 B per tBURST must equal the 10 GB/s vault bandwidth.
    EXPECT_NEAR(32.0 / ticksToNs(p.tBURST), 10.0, 0.01);
}

TEST(DramTiming, HmcGen2RowCycle)
{
    const DramTimingParams p = DramTimingParams::hmcGen2();
    EXPECT_EQ(p.tRC(), p.tRAS + p.tRP);
    // Single-bank 32 B random reads at ~tRC pace -> ~2 GB/s including
    // packet overhead, the paper's Fig. 6 floor.
    const double accesses_per_sec = 1e9 / ticksToNs(p.tRC());
    const double wire_bw = accesses_per_sec * (16 + 48) / 1e9;
    EXPECT_NEAR(wire_bw, 2.0, 0.2);
}

TEST(DramTiming, PresetLookup)
{
    EXPECT_NO_THROW(DramTimingParams::preset("hmc_gen2"));
    EXPECT_NO_THROW(DramTimingParams::preset("ddr3_1600"));
    EXPECT_THROW(DramTimingParams::preset("lpddr9"), FatalError);
}

TEST(DramTiming, Ddr3HasSlowerBus)
{
    const DramTimingParams hmc = DramTimingParams::hmcGen2();
    const DramTimingParams ddr = DramTimingParams::ddr3_1600();
    EXPECT_GT(ddr.tBURST, hmc.tBURST);
    EXPECT_GT(ddr.tRAS, hmc.tRAS);
}

TEST(DramTiming, ValidateRejectsZeroCore)
{
    DramTimingParams p = DramTimingParams::hmcGen2();
    p.tRCD = 0;
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(DramTiming, ValidateRejectsShortRas)
{
    DramTimingParams p = DramTimingParams::hmcGen2();
    p.tRAS = p.tRCD - 1;
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(DramTiming, ValidateRejectsRefreshWithoutTrfc)
{
    DramTimingParams p = DramTimingParams::hmcGen2();
    p.tREFI = nsToTicks(7800.0);
    p.tRFC = 0;
    EXPECT_THROW(p.validate(), FatalError);
}

}  // namespace
}  // namespace hmcsim
