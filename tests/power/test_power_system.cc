/**
 * @file
 * System-level tests of the power subsystem: the observation-only
 * default must not perturb timing at all, energy/temperature must show
 * up in results and stats, and an aggressive thermal limit must
 * actually cut delivered bandwidth through the throttle feedback loop.
 */

#include <gtest/gtest.h>

#include "host/experiment.h"
#include "host/system.h"

namespace hmcsim {
namespace {

GupsSpec
quickSpec()
{
    GupsSpec spec;
    spec.warmup = 2 * kMicrosecond;
    spec.window = 6 * kMicrosecond;
    spec.requestBytes = 64;
    return spec;
}

TEST(PowerSystem, ObservationOnlyIsTimingInvariant)
{
    SystemConfig with_power;
    ASSERT_TRUE(with_power.hmc.power.enabled);
    ASSERT_FALSE(with_power.hmc.power.throttle.enabled);

    SystemConfig without_power;
    without_power.hmc.power.enabled = false;

    const ExperimentResult a = runGups(with_power, quickSpec());
    const ExperimentResult b = runGups(without_power, quickSpec());

    // Bit-identical traffic: the power model only observes.
    EXPECT_EQ(a.totalReads, b.totalReads);
    EXPECT_EQ(a.totalWireBytes, b.totalWireBytes);
    EXPECT_DOUBLE_EQ(a.avgReadLatencyNs, b.avgReadLatencyNs);
    EXPECT_DOUBLE_EQ(a.maxReadLatencyNs, b.maxReadLatencyNs);

    // ...but only the instrumented run reports power.
    EXPECT_GT(a.energyPj, 0.0);
    EXPECT_GT(a.maxTempC, 0.0);
    EXPECT_DOUBLE_EQ(a.throttlePct, 0.0);
    EXPECT_DOUBLE_EQ(b.energyPj, 0.0);
    EXPECT_DOUBLE_EQ(b.maxTempC, 0.0);
}

TEST(PowerSystem, StatsExposePowerTree)
{
    SystemConfig cfg;
    System sys(cfg);
    GupsPortSpec gp;
    gp.gen.pattern = sys.addressMap().pattern(16, 16);
    gp.gen.requestBytes = 64;
    gp.gen.capacity = cfg.hmc.capacityBytes;
    sys.configureGupsPort(0, gp);
    sys.run(2 * kMicrosecond);
    sys.resetStats();
    sys.run(5 * kMicrosecond);

    const auto stats = sys.stats();
    ASSERT_TRUE(stats.count("system.hmc.power.energy_pj"));
    ASSERT_TRUE(stats.count("system.hmc.power.temp_c"));
    ASSERT_TRUE(stats.count("system.hmc.power.throttle_pct"));
    ASSERT_TRUE(stats.count("system.hmc.power.temp_logic_c"));
    EXPECT_GT(stats.at("system.hmc.power.energy_pj"), 0.0);
    // Under load the stack is above ambient and the logic layer is
    // the hottest node.
    EXPECT_GT(stats.at("system.hmc.power.temp_c"),
              cfg.hmc.power.thermal.ambientC);
    EXPECT_DOUBLE_EQ(stats.at("system.hmc.power.temp_c"),
                     stats.at("system.hmc.power.temp_logic_c"));
    EXPECT_DOUBLE_EQ(stats.at("system.hmc.power.throttle_pct"), 0.0);
}

TEST(PowerSystem, ThermalLimitThrottlesBandwidth)
{
    // Accelerated thermal constants: tiny capacitance settles the
    // stack within microseconds, and a threshold just above ambient
    // guarantees the governor engages under load.
    SystemConfig hot;
    hot.hmc.power.thermal.layerCapacitanceJperK = 1e-6;
    hot.hmc.power.stepInterval = 500 * kNanosecond;
    hot.hmc.power.throttle.enabled = true;
    hot.hmc.power.throttle.onThresholdC = 48.0;
    hot.hmc.power.throttle.offThresholdC = 47.0;
    hot.hmc.power.throttle.maxSlowdown = 4.0;

    SystemConfig cool = hot;
    cool.hmc.power.throttle.enabled = false;

    GupsSpec spec = quickSpec();
    spec.warmup = 6 * kMicrosecond;  // let the throttle loop settle

    const ExperimentResult throttled = runGups(hot, spec);
    const ExperimentResult free_run = runGups(cool, spec);

    EXPECT_GT(throttled.throttlePct, 50.0);
    EXPECT_DOUBLE_EQ(free_run.throttlePct, 0.0);
    // The feedback loop must visibly cut delivered bandwidth.
    EXPECT_LT(throttled.bandwidthGBs, 0.8 * free_run.bandwidthGBs);
}

}  // namespace
}  // namespace hmcsim
