#include <gtest/gtest.h>

#include "power/power_model.h"

namespace hmcsim {
namespace {

/**
 * A governor that always throttles: the on-threshold sits below
 * ambient, so the very first step engages level 1.
 */
PowerConfig
alwaysHotConfig()
{
    PowerConfig cfg;
    cfg.stepInterval = 5 * kMicrosecond;
    cfg.throttle.enabled = true;
    cfg.throttle.onThresholdC = 10.0;
    cfg.throttle.offThresholdC = 5.0;
    return cfg;
}

TEST(PowerModel, ThrottledFractionNeverExceedsWindow)
{
    // Regression: a stats reset landing mid step-interval must not
    // attribute pre-window throttled time to the new window (which
    // previously produced throttle_pct readings above 100%).
    Kernel k;
    PowerModel pm(k, nullptr, "power", alwaysHotConfig());
    pm.start();

    k.run(7 * kMicrosecond);  // one step at 5 us engaged the governor
    ASSERT_TRUE(pm.governor().throttling());
    pm.resetStats();          // window opens mid-interval, at 7 us

    k.run(8 * kMicrosecond);  // no step in between (next is at 10 us)
    EXPECT_NEAR(pm.throttledFraction(), 1.0, 1e-12);

    k.run(12 * kMicrosecond);  // crosses the step at 10 us
    EXPECT_NEAR(pm.throttledFraction(), 1.0, 1e-12);
}

TEST(PowerModel, UnthrottledWindowReportsZero)
{
    PowerConfig cfg;
    cfg.stepInterval = 5 * kMicrosecond;  // throttle disabled (default)
    Kernel k;
    PowerModel pm(k, nullptr, "power", cfg);
    pm.start();
    k.run(12 * kMicrosecond);
    EXPECT_DOUBLE_EQ(pm.throttledFraction(), 0.0);
    // Static power alone accrues window energy.
    EXPECT_GT(pm.windowEnergyPj(), 0.0);
}

TEST(PowerModel, RecordFeedsEnergyAndHeatsStack)
{
    PowerConfig cfg;
    cfg.stepInterval = 1 * kMicrosecond;
    cfg.thermal.layerCapacitanceJperK = 1e-6;  // settle fast
    Kernel k;
    PowerModel pm(k, nullptr, "power", cfg);
    pm.start();
    const double ambient = cfg.thermal.ambientC;

    // A burst of SerDes traffic every microsecond for ten steps.
    for (int i = 0; i < 10; ++i) {
        k.scheduleAt(i * kMicrosecond, [&pm] {
            pm.record(PowerEvent::SerdesFlit, 100000);
        });
    }
    k.run(10 * kMicrosecond);
    EXPECT_EQ(pm.energy().eventCount(PowerEvent::SerdesFlit), 1000000u);
    EXPECT_GT(pm.thermal().maxTemperatureC(), ambient);
    // Logic layer is the hot spot for SerDes-only load.
    EXPECT_DOUBLE_EQ(pm.thermal().maxTemperatureC(),
                     pm.thermal().temperatureC(0));
}

}  // namespace
}  // namespace hmcsim
