#include <gtest/gtest.h>

#include "power/throttle_governor.h"

namespace hmcsim {
namespace {

ThrottleParams
testParams()
{
    ThrottleParams p;
    p.enabled = true;
    p.onThresholdC = 90.0;
    p.offThresholdC = 80.0;
    p.numLevels = 4;
    p.maxSlowdown = 3.0;
    return p;
}

TEST(ThrottleGovernor, DisabledNeverThrottles)
{
    ThrottleParams p = testParams();
    p.enabled = false;
    ThrottleGovernor g(p);
    EXPECT_FALSE(g.update(200.0));
    EXPECT_EQ(g.level(), 0u);
    EXPECT_DOUBLE_EQ(g.slowdown(), 1.0);
}

TEST(ThrottleGovernor, ColdStaysOff)
{
    ThrottleGovernor g(testParams());
    EXPECT_FALSE(g.update(50.0));
    EXPECT_FALSE(g.throttling());
    EXPECT_DOUBLE_EQ(g.slowdown(), 1.0);
}

TEST(ThrottleGovernor, RampsUpToFullDepth)
{
    ThrottleGovernor g(testParams());
    for (std::uint32_t i = 1; i <= 4; ++i) {
        EXPECT_TRUE(g.update(95.0));
        EXPECT_EQ(g.level(), i);
    }
    // Saturates at numLevels.
    EXPECT_FALSE(g.update(95.0));
    EXPECT_EQ(g.level(), 4u);
    EXPECT_DOUBLE_EQ(g.slowdown(), 3.0);
    EXPECT_DOUBLE_EQ(g.depthFraction(), 1.0);
}

TEST(ThrottleGovernor, SlowdownScalesLinearlyWithLevel)
{
    ThrottleGovernor g(testParams());
    g.update(95.0);  // level 1 of 4
    EXPECT_DOUBLE_EQ(g.slowdown(), 1.0 + 2.0 * 0.25);
    g.update(95.0);  // level 2
    EXPECT_DOUBLE_EQ(g.slowdown(), 1.0 + 2.0 * 0.5);
}

TEST(ThrottleGovernor, HysteresisHoldsInsideBand)
{
    ThrottleGovernor g(testParams());
    g.update(95.0);
    ASSERT_EQ(g.level(), 1u);
    // Temperature drops back into the (off, on) band: the level must
    // hold -- no release, no further engagement, no oscillation.
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(g.update(85.0));
        EXPECT_EQ(g.level(), 1u);
    }
}

TEST(ThrottleGovernor, NoOscillationAtThreshold)
{
    // A temperature hovering exactly between the thresholds after an
    // engagement never toggles the level: the sequence of levels is
    // monotone while above `on` and constant inside the band.
    ThrottleGovernor g(testParams());
    std::uint32_t last = 0;
    int changes = 0;
    const double temps[] = {95.0, 89.0, 89.5, 88.0, 89.9, 89.0, 88.5};
    for (double t : temps) {
        g.update(t);
        if (g.level() != last)
            ++changes;
        last = g.level();
    }
    EXPECT_EQ(changes, 1);  // only the initial engagement
}

TEST(ThrottleGovernor, RampsDownBelowOffThreshold)
{
    ThrottleGovernor g(testParams());
    for (int i = 0; i < 4; ++i)
        g.update(95.0);
    ASSERT_EQ(g.level(), 4u);
    for (std::uint32_t i = 4; i-- > 0;) {
        EXPECT_TRUE(g.update(70.0));
        EXPECT_EQ(g.level(), i);
    }
    EXPECT_FALSE(g.update(70.0));
    EXPECT_DOUBLE_EQ(g.slowdown(), 1.0);
}

}  // namespace
}  // namespace hmcsim
