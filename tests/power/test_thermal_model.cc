#include <gtest/gtest.h>

#include "common/log.h"
#include "power/thermal_model.h"

namespace hmcsim {
namespace {

ThermalParams
testParams()
{
    ThermalParams p;
    p.numDramLayers = 4;
    p.ambientC = 40.0;
    p.layerResistanceKperW = 0.5;
    p.sinkResistanceKperW = 1.0;
    p.layerCapacitanceJperK = 1e-3;
    return p;
}

TEST(ThermalModel, StartsAtAmbient)
{
    ThermalModel t(testParams());
    ASSERT_EQ(t.numLayers(), 5u);
    for (std::size_t l = 0; l < t.numLayers(); ++l)
        EXPECT_DOUBLE_EQ(t.temperatureC(l), 40.0);
    EXPECT_DOUBLE_EQ(t.maxTemperatureC(), 40.0);
}

TEST(ThermalModel, ZeroPowerStaysAtAmbient)
{
    ThermalModel t(testParams());
    const std::vector<double> p(t.numLayers(), 0.0);
    for (int i = 0; i < 100; ++i)
        t.step(p, 1e-3);
    for (std::size_t l = 0; l < t.numLayers(); ++l)
        EXPECT_NEAR(t.temperatureC(l), 40.0, 1e-9);
}

TEST(ThermalModel, SteadyStateAnalytic)
{
    const ThermalParams tp = testParams();
    ThermalModel t(tp);
    // 5 W in the logic layer, 1 W per DRAM layer: 9 W total through
    // the 1 K/W sink resistance puts the top layer at 49 C.
    const std::vector<double> p = {5.0, 1.0, 1.0, 1.0, 1.0};
    const std::vector<double> ss = t.steadyStateC(p);
    ASSERT_EQ(ss.size(), 5u);
    EXPECT_NEAR(ss[4], 40.0 + 9.0 * 1.0, 1e-9);
    // Below the top layer each resistor carries the power injected
    // beneath it: 8, 7, 6, 5 W.
    EXPECT_NEAR(ss[3], ss[4] + 8.0 * 0.5, 1e-9);
    EXPECT_NEAR(ss[2], ss[3] + 7.0 * 0.5, 1e-9);
    EXPECT_NEAR(ss[1], ss[2] + 6.0 * 0.5, 1e-9);
    EXPECT_NEAR(ss[0], ss[1] + 5.0 * 0.5, 1e-9);
    // Logic layer is the hottest node.
    EXPECT_GT(ss[0], ss[4]);
}

TEST(ThermalModel, StepConvergesToSteadyState)
{
    ThermalModel t(testParams());
    const std::vector<double> p = {5.0, 1.0, 1.0, 1.0, 1.0};
    const std::vector<double> ss = t.steadyStateC(p);
    // Time constants are ~R*C ~ 1 ms; 1 s of stepping is deep settled.
    for (int i = 0; i < 1000; ++i)
        t.step(p, 1e-3);
    for (std::size_t l = 0; l < t.numLayers(); ++l)
        EXPECT_NEAR(t.temperatureC(l), ss[l], 0.01) << "layer " << l;
    EXPECT_NEAR(t.maxTemperatureC(), ss[0], 0.01);
}

TEST(ThermalModel, LargeStepIsStable)
{
    // One coarse step far beyond the explicit-Euler stability bound
    // must not diverge (the model substeps internally).
    ThermalModel t(testParams());
    const std::vector<double> p = {10.0, 0.0, 0.0, 0.0, 0.0};
    t.step(p, 1.0);
    const std::vector<double> ss = t.steadyStateC(p);
    for (std::size_t l = 0; l < t.numLayers(); ++l)
        EXPECT_NEAR(t.temperatureC(l), ss[l], 0.1);
}

TEST(ThermalModel, HeatingAndCooling)
{
    ThermalModel t(testParams());
    const std::vector<double> on = {8.0, 0.0, 0.0, 0.0, 0.0};
    const std::vector<double> off(5, 0.0);
    t.step(on, 5e-3);
    const double hot = t.maxTemperatureC();
    EXPECT_GT(hot, 41.0);
    t.step(off, 5e-3);
    EXPECT_LT(t.maxTemperatureC(), hot);
    t.step(off, 1.0);
    EXPECT_NEAR(t.maxTemperatureC(), 40.0, 0.05);
}

TEST(ThermalModel, ResetReturnsToAmbient)
{
    ThermalModel t(testParams());
    t.step({10.0, 1.0, 1.0, 1.0, 1.0}, 0.1);
    EXPECT_GT(t.maxTemperatureC(), 40.0);
    t.reset();
    EXPECT_DOUBLE_EQ(t.maxTemperatureC(), 40.0);
}

TEST(ThermalModel, RejectsBadInput)
{
    ThermalModel t(testParams());
    EXPECT_THROW(t.step({1.0, 2.0}, 1e-3), PanicError);
    EXPECT_THROW(t.temperatureC(99), PanicError);
    EXPECT_THROW(t.steadyStateC({1.0}), PanicError);
}

}  // namespace
}  // namespace hmcsim
