#include <gtest/gtest.h>

#include "power/energy_model.h"

namespace hmcsim {
namespace {

EnergyParams
simpleParams()
{
    EnergyParams p;
    p.dramActivatePj = 100.0;
    p.dramPrechargePj = 50.0;
    p.dramReadBeatPj = 10.0;
    p.dramWriteBeatPj = 20.0;
    p.dramRefreshPj = 500.0;
    p.tsvBeatPj = 5.0;
    p.nocFlitHopPj = 2.0;
    p.serdesFlitPj = 8.0;
    p.serdesIdleW = 1.0;
    p.logicIdleW = 2.0;
    p.dramIdleWPerLayer = 0.5;
    return p;
}

TEST(EnergyModel, StartsAtZero)
{
    EnergyModel m(simpleParams());
    EXPECT_EQ(m.totalDynamicPj(), 0.0);
    for (std::size_t i = 0; i < kNumPowerEvents; ++i)
        EXPECT_EQ(m.eventCount(static_cast<PowerEvent>(i)), 0u);
}

TEST(EnergyModel, PerEventAccounting)
{
    EnergyModel m(simpleParams());
    m.record(PowerEvent::DramActivate, 3);
    m.record(PowerEvent::DramPrecharge, 3);
    m.record(PowerEvent::DramReadBeat, 8);
    m.record(PowerEvent::DramWriteBeat, 4);
    m.record(PowerEvent::DramRefresh, 1);

    EXPECT_EQ(m.eventCount(PowerEvent::DramActivate), 3u);
    EXPECT_DOUBLE_EQ(m.dynamicPj(PowerEvent::DramActivate), 300.0);
    EXPECT_DOUBLE_EQ(m.dynamicPj(PowerEvent::DramPrecharge), 150.0);
    EXPECT_DOUBLE_EQ(m.dynamicPj(PowerEvent::DramReadBeat), 80.0);
    EXPECT_DOUBLE_EQ(m.dynamicPj(PowerEvent::DramWriteBeat), 80.0);
    EXPECT_DOUBLE_EQ(m.dynamicPj(PowerEvent::DramRefresh), 500.0);
    EXPECT_DOUBLE_EQ(m.totalDynamicPj(), 1110.0);
}

TEST(EnergyModel, AccountingPerDramCommandSequence)
{
    // One closed-page 64 B read: ACT + 2 read beats + 2 TSV beats + PRE.
    EnergyModel m(simpleParams());
    m.record(PowerEvent::DramActivate, 1);
    m.record(PowerEvent::DramReadBeat, 2);
    m.record(PowerEvent::TsvBeat, 2);
    m.record(PowerEvent::DramPrecharge, 1);
    EXPECT_DOUBLE_EQ(m.dramDynamicPj(), 100.0 + 20.0 + 10.0 + 50.0);
    EXPECT_DOUBLE_EQ(m.logicDynamicPj(), 0.0);
}

TEST(EnergyModel, LayerGroupSplit)
{
    EnergyModel m(simpleParams());
    m.record(PowerEvent::NocFlitHop, 10);
    m.record(PowerEvent::SerdesFlit, 5);
    m.record(PowerEvent::TsvBeat, 4);
    EXPECT_DOUBLE_EQ(m.logicDynamicPj(), 20.0 + 40.0);
    EXPECT_DOUBLE_EQ(m.dramDynamicPj(), 20.0);
    EXPECT_DOUBLE_EQ(m.totalDynamicPj(),
                     m.logicDynamicPj() + m.dramDynamicPj());
}

TEST(EnergyModel, StaticPower)
{
    EnergyModel m(simpleParams());
    EXPECT_DOUBLE_EQ(m.logicStaticW(), 3.0);
    EXPECT_DOUBLE_EQ(m.dramStaticWPerLayer(), 0.5);
    EXPECT_DOUBLE_EQ(m.totalStaticW(4), 5.0);
    // 1 W is 1 pJ/ps; a tick is 1 ps.
    EXPECT_DOUBLE_EQ(staticEnergyPj(1.0, 1000), 1000.0);
}

TEST(EnergyModel, WindowEnergyCombinesDynamicAndStatic)
{
    EnergyModel m(simpleParams());
    m.record(PowerEvent::SerdesFlit, 10);  // 80 pJ
    const double base = m.totalDynamicPj();
    m.record(PowerEvent::SerdesFlit, 5);  // +40 pJ in the window
    // 4 layers -> 5 W static; 200 ticks -> 1000 pJ static.
    EXPECT_DOUBLE_EQ(m.windowEnergyPj(base, 200, 4), 40.0 + 1000.0);
}

}  // namespace
}  // namespace hmcsim
