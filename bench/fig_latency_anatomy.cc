/**
 * @file
 * Latency anatomy: per-phase waterfall and bottleneck attribution
 * across topology x routing x workload.
 *
 * Four scenarios bracket the design space:
 *
 *  - single_gups:          classic 1-cube system, saturated GUPS.
 *    Expectation: DRAM service + host queueing dominate; chain phases
 *    are zero.
 *  - daisy4_uniform_gups:  4-cube daisy chain, uniform GUPS.  Chain
 *    forwarding appears but stays near its topology floor.
 *  - ring8_hotspot_static: 8 hosts, one per ring cube, all running a
 *    write-heavy zipf cube hotspot.  The hot cube's two incoming
 *    chain links carry the *converged* hot traffic of seven remote
 *    hosts while each host's entry links carry only their own -- so
 *    the congestion, and the p99 inflation, lives in chain_fwd_req
 *    queueing, NOT in dram_service.  Large writes (9-flit requests,
 *    1-flit responses) keep the overload in the request direction,
 *    where chain_fwd_req measures it.
 *  - ring8_hotspot_adaptive: same hotspot under congestion-aware
 *    routing.  With a single hot destination both ring paths to it
 *    congest equally, so adaptive detours mostly add hops -- the
 *    anatomy shows where the adaptive policy spends them.
 *
 * The bench emits one CSV row per (scenario, phase) with
 * count/mean/p50/p99/share, a congestion heatmap CSV for the static
 * hotspot, and the automated bottleneck verdict per scenario.
 */

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "analysis/report.h"
#include "bench_util.h"
#include "common/csv.h"
#include "common/rng.h"
#include "common/units.h"
#include "host/experiment.h"
#include "host/system.h"
#include "obs/observability.h"

using namespace hmcsim;
using namespace hmcsim::bench;

namespace {

struct Scenario {
    const char *name;
    const char *topology;
    std::uint32_t cubes;
    const char *routing;
    const char *workload;  ///< "gups" or "hotspot"
};

constexpr Scenario kScenarios[] = {
    {"single_gups", "daisy", 1, "static", "gups"},
    {"daisy4_uniform_gups", "daisy", 4, "static", "gups"},
    {"ring8_hotspot_static", "ring", 8, "static", "hotspot"},
    {"ring8_hotspot_adaptive", "ring", 8, "adaptive", "hotspot"},
};

SystemConfig
makeConfig(const Scenario &s)
{
    SystemConfig cfg;
    cfg.hmc.chain.numCubes = s.cubes;
    cfg.hmc.chain.topology = s.topology;
    cfg.hmc.chain.routing = s.routing;
    cfg.obs.anatomy = true;
    if (std::string(s.workload) == "hotspot") {
        // One host per cube: remote hot traffic converges on the hot
        // cube's two incoming chain links (each carrying several
        // hosts' worth) while each host's entry links carry only its
        // own.
        cfg.host.numHosts = s.cubes;
        cfg.host.tagsPerPort = 128;
    }
    return cfg;
}

WorkloadSpec
makeWorkload(const Scenario &s)
{
    WorkloadSpec w;
    if (std::string(s.workload) == "hotspot") {
        // Stay under the host deserializer ceiling (1 packet per FPGA
        // cycle per host) so the host-side phases do not saturate;
        // large writes (9-flit requests, 1-flit responses) put the
        // byte load on the request direction, where the remote hosts'
        // hot traffic converges on the hot cube's incoming chain
        // links.
        w.type = "zipf";
        w.zipfDomain = "cube";
        w.zipfTheta = 0.95;
        w.requestBytes = 128;
        w.writeFraction = 1.0;
        w.inject = "open";
        w.ratePerNs = 0.009;
        w.burstiness = 8.0;
    } else {
        w.type = "gups";
        w.requestBytes = 64;
    }
    return w;
}

struct ScenarioResult {
    std::vector<AnatomyWaterfallRow> waterfall;
    BottleneckVerdict verdict;
    double e2eP99Ns = 0.0;
    std::string congestionCsv;
};

ScenarioResult
runScenario(const Scenario &s, Tick warmup, Tick window)
{
    const SystemConfig cfg = makeConfig(s);
    System sys(cfg);
    constexpr std::uint32_t kPorts = 9;
    for (HostId h = 0; h < sys.numHosts(); ++h) {
        for (PortId p = 0; p < kPorts; ++p) {
            WorkloadSpec w = makeWorkload(s);
            w.seed = mixSeeds(1, p);
            if (h > 0)
                w.seed = mixSeeds(w.seed, kHostSeedStream + h);
            sys.configureWorkloadAt(h, p, w);
        }
    }
    sys.run(warmup);
    // Warmup transactions would skew the distributions; drop them.
    sys.obs()->anatomy()->reset();
    sys.measure(window);

    const AnatomyCollector *a = sys.obs()->anatomy();
    ScenarioResult r;
    r.waterfall = a->waterfall();
    r.verdict = a->verdict();
    Histogram e2e(a->endToEndHist(false).lo(), a->endToEndHist(false).hi(),
                  a->endToEndHist(false).bins());
    e2e.merge(a->endToEndHist(false));
    e2e.merge(a->endToEndHist(true));
    r.e2eP99Ns = e2e.percentile(99.0);
    if (const CongestionRecorder *c = sys.obs()->congestion())
        r.congestionCsv = c->toCsv();
    return r;
}

}  // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parseBenchArgs(argc, argv);
    const bool fast = fastMode();
    const Tick warmup = scaled(fast ? 2 : 6) * kMicrosecond;
    const Tick window = scaled(fast ? 5 : 16) * kMicrosecond;

    if (!opts.jsonReport)
        std::cout << "latency anatomy: per-phase waterfall and "
                     "bottleneck attribution\n";
    bench::CsvOutput csv_out("fig_latency_anatomy");
    CsvWriter csv(csv_out.stream(),
                  {"scenario", "topology", "routing", "workload", "phase",
                   "count", "mean_ns", "p50_ns", "p99_ns",
                   "share_mean_pct"});

    Report rep(std::cout, opts.reportFormat());
    std::map<std::string, ScenarioResult> results;
    for (const Scenario &s : kScenarios) {
        const ScenarioResult r = runScenario(s, warmup, window);
        for (const AnatomyWaterfallRow &row : r.waterfall) {
            csv.row()
                .cell(s.name)
                .cell(s.topology)
                .cell(s.routing)
                .cell(s.workload)
                .cell(row.phase)
                .cell(row.count)
                .cell(row.meanNs, 1)
                .cell(row.p50Ns, 1)
                .cell(row.p99Ns, 1)
                .cell(row.shareMeanPct, 1);
        }
        rep.section(std::string("anatomy: ") + s.name);
        for (const AnatomyWaterfallRow &row : r.waterfall)
            rep.anatomyPhase(row.phase, row.count, row.meanNs, row.p50Ns,
                             row.p99Ns, row.shareMeanPct);
        rep.measured("end-to-end p99", r.e2eP99Ns, "ns");
        const BottleneckVerdict &v = r.verdict;
        rep.verdict(v.dominantMeanPhase, v.dominantMeanSharePct,
                    v.dominantP99Phase, v.dominantP99SharePct,
                    v.queueingSharePct, v.serviceSharePct, v.completions,
                    v.monotonicityViolations, v.residualViolations,
                    v.summary);
        results.emplace(s.name, r);
    }
    csv.finish();

    // The static hotspot's time-windowed congestion surface (component
    // occupancies per window) -- the heatmap behind the verdict.
    {
        bench::CsvOutput heat_out("fig_congestion_heatmap");
        heat_out.stream() << results.at("ring8_hotspot_static")
                                 .congestionCsv;
    }

    // Cross-scenario attribution: the ring hotspot's tail must come
    // from chain-forward queueing, not DRAM.
    rep.section("attribution checks");
    const auto phaseP99 = [&](const std::string &scen,
                              const char *phase) {
        for (const AnatomyWaterfallRow &row : results.at(scen).waterfall)
            if (row.phase == phase)
                return row.p99Ns;
        return 0.0;
    };
    const double hot_fwd = phaseP99("ring8_hotspot_static",
                                    "chain_fwd_req");
    const double hot_dram = phaseP99("ring8_hotspot_static",
                                     "dram_service");
    rep.measured("hotspot chain_fwd_req p99", hot_fwd, "ns");
    rep.measured("hotspot dram_service p99", hot_dram, "ns");
    rep.measured("hotspot p99 attribution (fwd/dram)",
                 hot_dram > 0.0 ? hot_fwd / hot_dram : 0.0, "x");
    rep.measured("uniform-daisy chain_fwd_req p99",
                 phaseP99("daisy4_uniform_gups", "chain_fwd_req"), "ns");
    rep.measured(
        "adaptive fwd p99 cost (adaptive/static)",
        hot_fwd > 0.0
            ? phaseP99("ring8_hotspot_adaptive", "chain_fwd_req") /
                hot_fwd
            : 0.0,
        "x");
    rep.note("the ring hotspot's p99 inflation is chain-forwarding "
             "queueing (seven remote hosts' hot traffic converging on "
             "the hot cube's two incoming chain links), not DRAM "
             "service");
    return 0;
}
