/**
 * @file
 * Fig. 7 reproduction: average latency of low-load accesses for 1..55
 * requests per stream (multi-port stream firmware, 16 banks of one
 * vault, averaged across four representative vaults).
 */

#include <iostream>
#include <map>

#include "analysis/aggregate.h"
#include "analysis/paper_ref.h"
#include "analysis/report.h"
#include "bench_util.h"
#include "common/csv.h"
#include "host/experiment.h"
#include "host/system.h"

using namespace hmcsim;
using namespace hmcsim::bench;

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parseBenchArgs(argc, argv);
    (void)opts;
    const SystemConfig cfg;
    const Tick warmup = scaled(3) * kMicrosecond;
    const Tick window = scaled(fastMode() ? 8 : 20) * kMicrosecond;
    const int step = fastMode() ? 9 : 3;
    const std::vector<VaultId> vaults = fastMode()
        ? std::vector<VaultId>{0}
        : std::vector<VaultId>{0, 5, 10, 15};

    std::cout << "Fig. 7: average low-load latency vs number of "
                 "requests in a stream (1..55)\n";
    bench::CsvOutput csv_out("fig07_low_load_latency");
    CsvWriter csv(csv_out.stream(),
                  {"num_requests", "request_bytes", "avg_latency_us"});

    std::map<std::pair<int, std::uint32_t>, double> series;
    for (int n = 1; n <= 55; n = n == 1 ? 1 + step : n + step) {
        for (std::uint32_t bytes : kSizes) {
            std::vector<ExperimentResult> runs;
            for (VaultId v : vaults) {
                StreamBatchSpec spec;
                spec.batchSize = static_cast<std::uint32_t>(n);
                spec.requestBytes = bytes;
                spec.vault = v;
                spec.warmup = warmup;
                spec.window = window;
                runs.push_back(runStreamBatch(cfg, spec));
            }
            const double us =
                mergeReadLatencies(runs).mean() / 1000.0;
            series[{n, bytes}] = us;
            csv.row().cell(n).cell(bytes).cell(us, 3);
        }
    }
    csv.finish();

    Report rep(std::cout);
    rep.section("Fig. 7 paper-vs-measured");
    rep.compare("floor (1 request, 16 B)", paper::kFig7FloorUs,
                series.at({1, 16}), "us");
    const int last = 55;
    rep.compare("16 B at 55 requests", paper::kFig7Max16BUs,
                series.at({last, 16}), "us");
    rep.compare("128 B at 55 requests", paper::kFig7Max128BUs,
                series.at({last, 128}), "us");
    rep.note("paper: floor = 547 ns infrastructure + 100-180 ns HMC");
    rep.measured("small-n size insensitivity (128B/16B at n=1)",
                 series.at({1, 128}) / series.at({1, 16}), "ratio");
    rep.measured("slope ratio 128B/16B",
                 (series.at({last, 128}) - series.at({1, 128})) /
                     (series.at({last, 16}) - series.at({1, 16})),
                 "x");
    return 0;
}
