/**
 * @file
 * Table I + Equation 1 reproduction: packet sizes in flits for every
 * transaction type and payload, and the link-bandwidth math.
 */

#include <iostream>

#include "analysis/paper_ref.h"
#include "analysis/report.h"
#include "bench_util.h"
#include "common/csv.h"
#include "hmc/hmc_config.h"
#include "hmc/packet.h"

using namespace hmcsim;

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parseBenchArgs(argc, argv);
    (void)opts;
    std::cout << "Table I: HMC request/response read/write sizes "
                 "(flits)\n";
    bench::CsvOutput csv_out("table1_protocol");
    CsvWriter csv(csv_out.stream(),
                  {"data_bytes", "read_request", "write_request",
                   "read_response", "write_response", "flow"});
    for (std::uint32_t bytes = 16; bytes <= 128; bytes += 16) {
        csv.row()
            .cell(bytes)
            .cell(HmcPacket::flitsFor(HmcCmd::Read, bytes))
            .cell(HmcPacket::flitsFor(HmcCmd::Write, bytes))
            .cell(HmcPacket::flitsFor(HmcCmd::ReadResponse, bytes))
            .cell(HmcPacket::flitsFor(HmcCmd::WriteResponse, bytes))
            .cell(HmcPacket::flitsFor(HmcCmd::Flow, 0));
    }
    csv.finish();

    Report rep(std::cout);
    rep.section("Table I spot checks (paper Section II-B)");
    rep.compare("read request flits", 1.0,
                HmcPacket::flitsFor(HmcCmd::Read, 128), "flits");
    rep.compare("128B write request flits", 9.0,
                HmcPacket::flitsFor(HmcCmd::Write, 128), "flits");
    rep.compare("128B read response flits", 9.0,
                HmcPacket::flitsFor(HmcCmd::ReadResponse, 128), "flits");
    rep.compare("16B response efficiency", 0.5,
                16.0 / (HmcPacket::flitsFor(HmcCmd::ReadResponse, 16) *
                        kFlitBytes),
                "fraction");
    rep.compare("128B response efficiency", 0.89,
                128.0 / (HmcPacket::flitsFor(HmcCmd::ReadResponse, 128) *
                         kFlitBytes),
                "fraction");

    rep.section("Equation 1: peak bandwidth");
    const HmcConfig cfg;
    rep.compare("2 links x 8 lanes x 15 Gbps x duplex",
                paper::kPeakBandwidthGBs, cfg.peakBandwidthGBs(), "GB/s");
    rep.compare("response-direction cap", paper::kResponseCapGBs,
                cfg.linkBandwidthGBsPerDirection(), "GB/s");
    return 0;
}
