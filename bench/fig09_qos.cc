/**
 * @file
 * Fig. 9 reproduction: QoS case study.  Three stream ports pinned to
 * one vault (1 or 5) while the fourth sweeps every vault; reports the
 * maximum observed latency per position of the fourth port.
 */

#include <iostream>
#include <vector>

#include "analysis/paper_ref.h"
#include "analysis/report.h"
#include "bench_util.h"
#include "common/csv.h"
#include "host/experiment.h"
#include "host/system.h"

using namespace hmcsim;
using namespace hmcsim::bench;

namespace {

struct Summary {
    VaultId pinned;
    std::uint32_t bytes;
    double collideMaxUs;
    SampleStats elsewhereUs;
};

}  // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parseBenchArgs(argc, argv);
    (void)opts;
    const SystemConfig cfg;
    const Tick warmup = scaled(5) * kMicrosecond;
    const Tick window = scaled(fastMode() ? 8 : 20) * kMicrosecond;
    const std::vector<std::uint32_t> sizes =
        fastMode() ? std::vector<std::uint32_t>{64}
                   : std::vector<std::uint32_t>(std::begin(kSizes),
                                                std::end(kSizes));

    std::cout << "Fig. 9: max latency, 3 ports pinned + 1 sweeping\n";
    bench::CsvOutput csv_out("fig09_qos");
    CsvWriter csv(csv_out.stream(), {"pinned_vault", "fourth_vault",
                              "request_bytes", "max_latency_us"});

    std::vector<Summary> summaries;
    for (VaultId pinned : {VaultId{1}, VaultId{5}}) {
        for (std::uint32_t bytes : sizes) {
            Summary s;
            s.pinned = pinned;
            s.bytes = bytes;
            s.collideMaxUs = 0.0;
            for (VaultId fourth = 0; fourth < 16; ++fourth) {
                StreamVaultsSpec spec;
                spec.vaults = {pinned, pinned, pinned, fourth};
                spec.requestBytes = bytes;
                spec.warmup = warmup;
                spec.window = window;
                spec.seed = 17 + fourth;
                const ExperimentResult r = runStreamVaults(cfg, spec);
                const double max_us = r.maxReadLatencyNs / 1000.0;
                csv.row()
                    .cell(std::uint64_t{pinned})
                    .cell(std::uint64_t{fourth})
                    .cell(bytes)
                    .cell(max_us, 3);
                if (fourth == pinned)
                    s.collideMaxUs = max_us;
                else
                    s.elsewhereUs.add(max_us);
            }
            summaries.push_back(s);
        }
    }
    csv.finish();

    Report rep(std::cout);
    for (const Summary &s : summaries) {
        rep.section("pinned vault " + std::to_string(s.pinned) + ", " +
                    std::to_string(s.bytes) + " B");
        rep.compare("collision penalty over mean elsewhere",
                    paper::kFig9CollisionPenaltyPct,
                    (s.collideMaxUs / s.elsewhereUs.mean() - 1.0) * 100.0,
                    "%");
        rep.measured("max-latency variation elsewhere",
                     (s.elsewhereUs.max() - s.elsewhereUs.min()) * 1000.0,
                     "ns");
    }
    rep.note("paper: collision raises max latency up to ~40%; "
             "variation elsewhere grows with request size");
    return 0;
}
