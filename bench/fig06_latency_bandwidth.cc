/**
 * @file
 * Fig. 6 reproduction: read latency vs bi-directional bandwidth for
 * every structural access pattern (1 bank .. 16 vaults) and request
 * size (16..128 B) under the 9-port GUPS firmware.
 */

#include <iostream>
#include <map>

#include "analysis/paper_ref.h"
#include "analysis/report.h"
#include "bench_util.h"
#include "common/csv.h"
#include "host/experiment.h"
#include "host/system.h"

using namespace hmcsim;
using namespace hmcsim::bench;

namespace {

struct Pattern {
    const char *name;
    std::uint32_t vaults;
    std::uint32_t banks;
};

constexpr Pattern kPatterns[] = {
    {"1_bank", 1, 1},    {"2_banks", 1, 2},   {"4_banks", 1, 4},
    {"8_banks", 1, 8},   {"1_vault", 1, 16},  {"2_vaults", 2, 16},
    {"4_vaults", 4, 16}, {"8_vaults", 8, 16}, {"16_vaults", 16, 16},
};

}  // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parseBenchArgs(argc, argv);
    SystemConfig cfg;
    bench::applyObsEnv(cfg.obs);
    const Tick warmup = scaled(fastMode() ? 5 : 15) * kMicrosecond;
    const Tick window = scaled(fastMode() ? 10 : 40) * kMicrosecond;

    if (!opts.jsonReport)
        std::cout << "Fig. 6: latency vs bandwidth per access pattern "
                     "(9-port GUPS, read only)\n";
    bench::CsvOutput csv_out("fig06_latency_bandwidth");
    CsvWriter csv(csv_out.stream(),
                  {"pattern", "request_bytes", "bandwidth_gbs",
                   "avg_latency_ns", "min_latency_ns", "max_latency_ns"});

    std::map<std::pair<std::string, std::uint32_t>, ExperimentResult> all;
    for (const Pattern &pat : kPatterns) {
        for (std::uint32_t bytes : kSizes) {
            GupsSpec spec;
            spec.requestBytes = bytes;
            spec.numVaults = pat.vaults;
            spec.numBanks = pat.banks;
            spec.warmup = warmup;
            spec.window = window;
            const ExperimentResult r = runGups(cfg, spec);
            all[{pat.name, bytes}] = r;
            csv.row()
                .cell(pat.name)
                .cell(bytes)
                .cell(r.bandwidthGBs, 2)
                .cell(r.avgReadLatencyNs, 0)
                .cell(r.minReadLatencyNs, 0)
                .cell(r.maxReadLatencyNs, 0);
        }
    }
    csv.finish();

    Report rep(std::cout, opts.reportFormat());
    rep.section("Fig. 6 paper-vs-measured");
    rep.compare("lowest BW: 1 bank, 32 B",
                paper::kFig6MinBandwidthGBs,
                all.at({"1_bank", 32}).bandwidthGBs, "GB/s");
    rep.compare("highest BW: >=2 vaults, 128 B",
                paper::kFig6MaxBandwidthGBs,
                all.at({"16_vaults", 128}).bandwidthGBs, "GB/s");
    rep.compare("one-vault internal cap", paper::kFig6VaultCapGBs,
                all.at({"1_vault", 32}).bandwidthGBs, "GB/s");
    rep.compare("latency: 1 bank, 128 B",
                paper::kFig6OneBank128BLatencyNs,
                all.at({"1_bank", 128}).avgReadLatencyNs, "ns");
    rep.compare("latency: 16 vaults, 16 B",
                paper::kFig6MultiVault16BLatencyNs,
                all.at({"16_vaults", 16}).avgReadLatencyNs, "ns");

    rep.section("shape checks");
    const double flat2 = all.at({"2_vaults", 128}).bandwidthGBs;
    const double flat16 = all.at({"16_vaults", 128}).bandwidthGBs;
    rep.measured(">=2-vault plateau flatness (2v/16v)", flat2 / flat16,
                 "ratio");
    rep.measured("128B-vs-16B bandwidth gain",
                 all.at({"16_vaults", 128}).bandwidthGBs /
                     all.at({"16_vaults", 16}).bandwidthGBs,
                 "x");
    rep.measured("1-bank vs multi-vault latency blowup",
                 all.at({"1_bank", 128}).avgReadLatencyNs /
                     all.at({"16_vaults", 16}).avgReadLatencyNs,
                 "x");
    return 0;
}
