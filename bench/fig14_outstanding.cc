/**
 * @file
 * Fig. 14 reproduction: Little's-law estimate of outstanding requests
 * for the two-bank and four-bank access patterns, measured at each
 * curve's saturation point (as the paper does with Fig. 13 data).
 */

#include <iostream>
#include <vector>

#include "analysis/littles_law.h"
#include "analysis/paper_ref.h"
#include "analysis/report.h"
#include "bench_util.h"
#include "common/csv.h"
#include "host/experiment.h"
#include "host/system.h"

using namespace hmcsim;
using namespace hmcsim::bench;

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parseBenchArgs(argc, argv);
    (void)opts;
    const SystemConfig cfg;
    const bool fast = fastMode();
    const Tick warmup = scaled(fast ? 4 : 10) * kMicrosecond;
    const Tick window = scaled(fast ? 8 : 25) * kMicrosecond;

    std::cout << "Fig. 14: outstanding requests (Little's law) at "
                 "saturation, 2- and 4-bank patterns\n";
    bench::CsvOutput csv_out("fig14_outstanding");
    CsvWriter csv(csv_out.stream(),
                  {"banks", "request_bytes", "saturation_ports",
                   "data_bandwidth_gbs", "avg_latency_ns",
                   "outstanding_estimate"});

    Report rep(std::cout);
    std::vector<double> avg_by_banks;
    for (std::uint32_t banks : {2u, 4u}) {
        SampleStats across_sizes;
        for (std::uint32_t bytes : kSizes) {
            // Sweep ports to find the saturation (knee) point.
            std::vector<double> bw;
            std::vector<ExperimentResult> runs;
            for (std::uint32_t np = 1; np <= 9; np += fast ? 2 : 1) {
                GupsSpec spec;
                spec.activePorts = np;
                spec.requestBytes = bytes;
                spec.numVaults = 1;
                spec.numBanks = banks;
                spec.warmup = warmup;
                spec.window = window;
                runs.push_back(runGups(cfg, spec));
                bw.push_back(runs.back().bandwidthGBs);
            }
            // Measure at the knee (where the curve first flattens):
            // there the bank queues are the binding resource and the
            // estimate scales with the bank count.  Deeper into the
            // flat region our host-side tag pool caps the population
            // and the per-bank scaling washes out (the paper's
            // firmware had a larger tag budget, hence its larger
            // absolute values; the 2-bank/4-bank ratio is the
            // transferable result).
            const std::size_t idx = saturationIndex(bw, 0.05);
            const ExperimentResult &r = runs[idx];
            // Data-payload bandwidth, as the paper divides by the
            // request size.
            const double data_gbs =
                static_cast<double>(r.totalReads) * bytes /
                (static_cast<double>(r.windowTicks) * 1e-3);
            const double outstanding = estimateOutstanding(
                data_gbs, r.avgReadLatencyNs, bytes);
            across_sizes.add(outstanding);
            csv.row()
                .cell(banks)
                .cell(bytes)
                .cell(std::uint64_t{idx * (fast ? 2 : 1) + 1})
                .cell(data_gbs, 3)
                .cell(r.avgReadLatencyNs, 0)
                .cell(outstanding, 1);
        }
        avg_by_banks.push_back(across_sizes.mean());
    }
    csv.finish();

    rep.section("Fig. 14 paper-vs-measured");
    rep.compare("outstanding, 2 banks (avg over sizes)",
                paper::kFig14TwoBanks, avg_by_banks[0], "requests");
    rep.compare("outstanding, 4 banks (avg over sizes)",
                paper::kFig14FourBanks, avg_by_banks[1], "requests");
    rep.compare("4-bank / 2-bank ratio (queue-per-bank evidence)",
                paper::kFig14FourBanks / paper::kFig14TwoBanks,
                avg_by_banks[1] / avg_by_banks[0], "x");
    rep.note("paper's inference: a vault controller dedicates one "
             "queue per bank (Section IV-F)");
    return 0;
}
