/**
 * @file
 * Figs. 10, 11, and 12 reproduction.
 *
 * Sweep all C(16,4) = 1820 four-vault combinations with the stream
 * firmware, record the per-combination average latency, and associate
 * it with every vault in the combination.  Rendered three ways:
 *   Fig. 10 -- per-vault latency histograms (rows = vaults)
 *   Fig. 11 -- mean and stddev of latency across vaults per size
 *   Fig. 12 -- per-latency-interval vault histograms (rows = bins)
 *
 * Full sweep is 1820 x sizes short simulations; HMCSIM_BENCH_FAST
 * subsamples combinations 8:1 and runs 64 B only.
 */

#include <array>
#include <iostream>
#include <vector>

#include "analysis/aggregate.h"
#include "analysis/heatmap.h"
#include "analysis/paper_ref.h"
#include "analysis/report.h"
#include "bench_util.h"
#include "common/csv.h"
#include "common/strutil.h"
#include "host/experiment.h"
#include "host/system.h"

using namespace hmcsim;
using namespace hmcsim::bench;

namespace {

std::vector<std::array<VaultId, 4>>
allCombinations(unsigned stride)
{
    std::vector<std::array<VaultId, 4>> out;
    unsigned idx = 0;
    for (VaultId a = 0; a < 16; ++a)
        for (VaultId b = a + 1; b < 16; ++b)
            for (VaultId c = b + 1; c < 16; ++c)
                for (VaultId d = c + 1; d < 16; ++d)
                    if (idx++ % stride == 0)
                        out.push_back({a, b, c, d});
    return out;
}

}  // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parseBenchArgs(argc, argv);
    (void)opts;
    const SystemConfig cfg;
    const bool fast = fastMode();
    const unsigned stride = fast ? 8 : 1;
    const Tick warmup = scaled(2) * kMicrosecond;
    const Tick window = scaled(fast ? 4 : 8) * kMicrosecond;
    const std::vector<std::uint32_t> sizes =
        fast ? std::vector<std::uint32_t>{64}
             : std::vector<std::uint32_t>(std::begin(kSizes),
                                          std::end(kSizes));

    const auto combos = allCombinations(stride);
    std::cout << "Figs. 10-12: " << combos.size()
              << " four-vault combinations per size\n";

    Report rep(std::cout);
    for (std::uint32_t bytes : sizes) {
        // Pass 1: per-combination average latency.
        std::vector<double> combo_avg_ns(combos.size(), 0.0);
        std::vector<SampleStats> per_vault(16);
        for (std::size_t i = 0; i < combos.size(); ++i) {
            StreamVaultsSpec spec;
            spec.vaults.assign(combos[i].begin(), combos[i].end());
            spec.requestBytes = bytes;
            spec.warmup = warmup;
            spec.window = window;
            spec.seed = 1000 + i;
            const ExperimentResult r = runStreamVaults(cfg, spec);
            combo_avg_ns[i] = r.avgReadLatencyNs;
            for (VaultId v : combos[i])
                per_vault[v].add(r.avgReadLatencyNs);
        }

        // Shared latency axis across the per-size views.
        const SampleStats overall = statsOfValues(combo_avg_ns);
        const double lo = overall.min();
        const double hi = overall.max() + 1e-9;
        constexpr std::size_t kBins = 9;  // like the paper's axes

        // Fig. 10: rows = vaults, cols = latency bins.
        std::vector<Histogram> vault_hist;
        std::vector<std::string> vault_labels;
        for (VaultId v = 0; v < 16; ++v) {
            vault_hist.emplace_back(lo, hi, kBins);
            vault_labels.push_back("vault" + std::to_string(v));
        }
        // Fig. 12: rows = latency bins, cols = vaults.
        Heatmap by_interval(
            [&] {
                std::vector<std::string> rows;
                const Histogram axis(lo, hi, kBins);
                for (std::size_t b = 0; b < kBins; ++b)
                    rows.push_back(formatDouble(axis.binLow(b), 0));
                return rows;
            }(),
            [&] {
                std::vector<std::string> cols;
                for (VaultId v = 0; v < 16; ++v)
                    cols.push_back(std::to_string(v));
                return cols;
            }());
        const Histogram axis(lo, hi, kBins);
        for (std::size_t i = 0; i < combos.size(); ++i) {
            for (VaultId v : combos[i]) {
                vault_hist[v].add(combo_avg_ns[i]);
                by_interval.add(axis.binIndex(combo_avg_ns[i]), v);
            }
        }

        std::cout << "\n-- Fig. 10 (" << bytes
                  << " B): per-vault latency histogram, bins " << lo
                  << ".." << hi << " ns --\n";
        const Heatmap fig10 =
            Heatmap::fromHistograms(vault_labels, vault_hist);
        std::cout << fig10.toAscii();
        std::cout << fig10.toCsv();

        std::cout << "\n-- Fig. 12 (" << bytes
                  << " B): vault histogram per latency interval --\n";
        std::cout << by_interval.toAscii();

        // Fig. 11: mean and stddev across vault means.
        std::vector<double> vault_means;
        for (VaultId v = 0; v < 16; ++v)
            vault_means.push_back(per_vault[v].mean());
        const SampleStats fig11 = statsOfValues(vault_means);

        rep.section("Fig. 11 (" + std::to_string(bytes) + " B)");
        rep.measured("average latency across vaults",
                     fig11.mean() / 1000.0, "us");
        const double paper_stddev =
            bytes == 16 ? paper::kFig11Stddev16BNs
            : bytes == 32 ? paper::kFig11Stddev32BNs
            : bytes == 64 ? paper::kFig11Stddev64BNs
                          : paper::kFig11Stddev128BNs;
        rep.compare("stddev of latency across vaults", paper_stddev,
                    overall.stddev(), "ns");
        const double paper_range =
            bytes == 16 ? paper::kFig10Range16BNs
            : bytes == 32 ? paper::kFig10Range32BNs
            : bytes == 64 ? paper::kFig10Range64BNs
                          : paper::kFig10Range128BNs;
        rep.compare("latency variation range", paper_range, hi - lo,
                    "ns");
        if (bytes == 16) {
            rep.compare("axis center",
                        (paper::kFig10Lo16BNs + paper::kFig10Hi16BNs) / 2,
                        overall.mean(), "ns");
        } else if (bytes == 128) {
            rep.compare("axis center",
                        (paper::kFig10Lo128BNs + paper::kFig10Hi128BNs) /
                            2,
                        overall.mean(), "ns");
        }
    }
    rep.note("paper takeaway: vault position contributes little; "
             "request size dominates variation (Section IV-D/E)");
    rep.note("note: the absolute variance above is under-produced by "
             "design -- in a saturated closed loop the mean "
             "per-combination latency is N/lambda with lambda bound at "
             "the host, so a noiseless simulator cannot reproduce the "
             "silicon's combination-to-combination spread there");

    // Low-load view: with a single request in flight the per-vault
    // systematic variation (hmc.vault_jitter_ns_per_flit) is on the
    // critical path, and its range grows with the request size the
    // way the paper's Figs. 10/11 spreads do.
    rep.section("low-load per-vault variation (open-loop view)");
    for (std::uint32_t bytes : sizes) {
        SampleStats floors;
        for (VaultId v = 0; v < 16; ++v) {
            StreamBatchSpec spec;
            spec.batchSize = 1;
            spec.requestBytes = bytes;
            spec.vault = v;
            spec.warmup = scaled(2) * kMicrosecond;
            spec.window = scaled(4) * kMicrosecond;
            floors.add(runStreamBatch(cfg, spec).avgReadLatencyNs);
        }
        const double paper_range =
            bytes == 16 ? paper::kFig10Range16BNs
            : bytes == 32 ? paper::kFig10Range32BNs
            : bytes == 64 ? paper::kFig10Range64BNs
                          : paper::kFig10Range128BNs;
        rep.compare("low-load range across vaults, " +
                        std::to_string(bytes) + " B",
                    paper_range, floors.max() - floors.min(), "ns");
    }
    return 0;
}
