/**
 * @file
 * Fig. 13 reproduction: response bandwidth vs number of active GUPS
 * ports (1..9, a proxy for requested bandwidth) for every structural
 * access pattern and request size.  Sloped lines = no bottleneck;
 * flat lines = a saturated resource.
 */

#include <algorithm>
#include <iostream>
#include <map>
#include <vector>

#include "analysis/paper_ref.h"
#include "analysis/report.h"
#include "bench_util.h"
#include "common/csv.h"
#include "host/experiment.h"
#include "host/system.h"

using namespace hmcsim;
using namespace hmcsim::bench;

namespace {

struct Pattern {
    const char *name;
    std::uint32_t vaults;
    std::uint32_t banks;
};

constexpr Pattern kPatterns[] = {
    {"1_bank", 1, 1},    {"2_banks", 1, 2},   {"4_banks", 1, 4},
    {"8_banks", 1, 8},   {"1_vault", 1, 16},  {"2_vaults", 2, 16},
    {"4_vaults", 4, 16}, {"8_vaults", 8, 16}, {"16_vaults", 16, 16},
};

}  // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parseBenchArgs(argc, argv);
    (void)opts;
    const SystemConfig cfg;
    const bool fast = fastMode();
    const Tick warmup = scaled(fast ? 3 : 8) * kMicrosecond;
    const Tick window = scaled(fast ? 6 : 20) * kMicrosecond;
    const std::vector<std::uint32_t> ports =
        fast ? std::vector<std::uint32_t>{1, 5, 9}
             : std::vector<std::uint32_t>{1, 2, 3, 4, 5, 6, 7, 8, 9};

    std::cout << "Fig. 13: bandwidth vs active ports per pattern and "
                 "size\n";
    bench::CsvOutput csv_out("fig13_ports_bandwidth");
    CsvWriter csv(csv_out.stream(), {"request_bytes", "pattern", "active_ports",
                              "bandwidth_gbs", "avg_latency_ns"});

    // series[(bytes, pattern)] = bandwidth per port count.
    std::map<std::pair<std::uint32_t, std::string>, std::vector<double>>
        series;
    for (std::uint32_t bytes : kSizes) {
        for (const Pattern &pat : kPatterns) {
            for (std::uint32_t np : ports) {
                GupsSpec spec;
                spec.activePorts = np;
                spec.requestBytes = bytes;
                spec.numVaults = pat.vaults;
                spec.numBanks = pat.banks;
                spec.warmup = warmup;
                spec.window = window;
                const ExperimentResult r = runGups(cfg, spec);
                series[{bytes, pat.name}].push_back(r.bandwidthGBs);
                csv.row()
                    .cell(bytes)
                    .cell(pat.name)
                    .cell(np)
                    .cell(r.bandwidthGBs, 2)
                    .cell(r.avgReadLatencyNs, 0);
            }
        }
    }
    csv.finish();

    Report rep(std::cout);
    rep.section("Fig. 13 shape checks");
    const auto peak = [&](std::uint32_t bytes, const char *pat) {
        const auto &v = series.at({bytes, pat});
        return *std::max_element(v.begin(), v.end());
    };
    rep.compare("one-vault ceiling (any size, 16/32 B shown)",
                paper::kFig6VaultCapGBs, peak(32, "1_vault"), "GB/s");
    rep.compare("16-vault 128 B ceiling", paper::kFig6MaxBandwidthGBs,
                peak(128, "16_vaults"), "GB/s");
    rep.measured("8-bank vs 1-vault ceiling ratio (16 B)",
                 peak(16, "8_banks") / peak(16, "1_vault"), "ratio");
    rep.measured("4-bank 128 B ceiling / 1-vault 128 B ceiling",
                 peak(128, "4_banks") / peak(128, "1_vault"), "ratio");
    rep.note("paper: 8 banks saturate one vault at 16/32 B; 4 banks "
             "suffice at 64/128 B (Section IV-F)");
    return 0;
}
