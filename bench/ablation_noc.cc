/**
 * @file
 * Ablation: internal NoC topology.  The paper characterizes the stock
 * quadrant NoC; here we swap it for a ring and an idealized single
 * switch to isolate how much of the latency/bandwidth behaviour the
 * interconnect contributes.
 */

#include <iostream>

#include "analysis/report.h"
#include "bench_util.h"
#include "common/csv.h"
#include "host/experiment.h"
#include "host/system.h"

using namespace hmcsim;
using namespace hmcsim::bench;

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parseBenchArgs(argc, argv);
    (void)opts;
    const Tick warmup = scaled(fastMode() ? 4 : 10) * kMicrosecond;
    const Tick window = scaled(fastMode() ? 8 : 25) * kMicrosecond;

    std::cout << "Ablation: logic-layer NoC topology\n";
    bench::CsvOutput csv_out("ablation_noc");
    CsvWriter csv(csv_out.stream(),
                  {"topology", "request_bytes", "bandwidth_gbs",
                   "avg_latency_ns", "max_latency_ns",
                   "noc_avg_latency_ns"});

    Report rep(std::cout);
    for (const char *topo :
         {"quadrant_xbar", "quadrant_ring", "single_switch"}) {
        for (std::uint32_t bytes : {16u, 128u}) {
            SystemConfig cfg;
            cfg.hmc.topology = topo;
            System sys(cfg);
            for (PortId p = 0; p < 9; ++p) {
                GupsPortSpec gp;
                gp.gen.pattern = sys.addressMap().pattern(16, 16);
                gp.gen.requestBytes = bytes;
                gp.gen.capacity = cfg.hmc.totalCapacityBytes();
                gp.gen.seed = 31 + p;
                sys.configureGupsPort(p, gp);
            }
            sys.run(warmup);
            const ExperimentResult r = sys.measure(window);
            csv.row()
                .cell(topo)
                .cell(bytes)
                .cell(r.bandwidthGBs, 2)
                .cell(r.avgReadLatencyNs, 0)
                .cell(r.maxReadLatencyNs, 0)
                .cell(sys.device().network().latencyNs().mean(), 1);
        }
    }
    csv.finish();
    rep.note("expected: the external links and vault bandwidth, not "
             "the internal topology, bound throughput -- topology "
             "mostly shifts latency spread (paper Section IV-D/E)");
    return 0;
}
