/**
 * @file
 * Power/thermal characterization sweep (no paper counterpart: the
 * paper measures a real cube whose bandwidth is shaped by power and
 * thermal limits; this figure exposes the simulator's model of them).
 *
 * Part 1 sweeps offered load (active GUPS ports) with the default
 * observation-only power model: energy, average power, and
 * steady-state stack temperature vs. delivered bandwidth.
 *
 * Part 2 runs a sustained 9-port load against a deliberately low
 * thermal limit with accelerated thermal constants and reports a
 * time series of consecutive windows: the stack heats up, the
 * governor engages, and delivered bandwidth degrades -- the paper's
 * throttle-cliff behaviour under sustained load.
 */

#include <iostream>

#include "analysis/report.h"
#include "bench_util.h"
#include "common/csv.h"
#include "host/experiment.h"
#include "host/system.h"

using namespace hmcsim;
using namespace hmcsim::bench;

namespace {

void
loadSweep()
{
    std::cout << "fig_power_thermal part 1: load vs energy/temperature "
                 "(observation-only)\n";
    bench::CsvOutput csv_out("fig_power_thermal_load");
    CsvWriter csv(csv_out.stream(),
                  {"request_bytes", "bandwidth_gbs", "energy_pj",
                   "avg_power_w", "temp_c", "throttle_pct"});

    // Throttling stays off (the default); thermals are accelerated so
    // the reported temperature is the steady state for each load.
    SystemConfig cfg;
    cfg.hmc.power.thermal.layerCapacitanceJperK = 1e-5;
    const Tick warmup = scaled(fastMode() ? 5 : 15) * kMicrosecond;
    const Tick window = scaled(fastMode() ? 6 : 30) * kMicrosecond;

    for (std::uint32_t bytes : kSizes) {
        GupsSpec spec;
        spec.requestBytes = bytes;
        spec.warmup = warmup;
        spec.window = window;
        const ExperimentResult r = runGups(cfg, spec);
        csv.row()
            .cell(bytes)
            .cell(r.bandwidthGBs, 2)
            .cell(r.energyPj, 0)
            .cell(r.avgPowerW, 2)
            .cell(r.maxTempC, 2)
            .cell(r.throttlePct, 1);
    }
    csv.finish();
}

void
throttleCliff()
{
    std::cout << "\nfig_power_thermal part 2: sustained load against a "
                 "low thermal limit (accelerated constants)\n";

    SystemConfig cfg;
    cfg.hmc.power.thermal.layerCapacitanceJperK = 1e-5;
    cfg.hmc.power.stepInterval = 1 * kMicrosecond;
    cfg.hmc.power.throttle.enabled = true;
    cfg.hmc.power.throttle.onThresholdC = 49.0;
    cfg.hmc.power.throttle.offThresholdC = 47.5;
    cfg.hmc.power.throttle.maxSlowdown = 4.0;

    System sys(cfg);
    for (PortId p = 0; p < 9; ++p) {
        GupsPortSpec gp;
        gp.gen.pattern = sys.addressMap().pattern(16, 16);
        gp.gen.requestBytes = 128;
        gp.gen.capacity = cfg.hmc.totalCapacityBytes();
        gp.gen.seed = 7919 + p;
        sys.configureGupsPort(p, gp);
    }

    bench::CsvOutput csv_out("fig_power_thermal_throttle");
    CsvWriter csv(csv_out.stream(),
                  {"window", "time_us", "bandwidth_gbs", "energy_pj",
                   "temp_c", "throttle_pct"});
    const Tick window = scaled(fastMode() ? 3 : 8) * kMicrosecond;
    const int windows = fastMode() ? 8 : 12;

    double first_bw = 0.0;
    double last_bw = 0.0;
    double peak_temp = 0.0;
    double total_energy_pj = 0.0;
    double last_throttle_pct = 0.0;
    for (int w = 0; w < windows; ++w) {
        const ExperimentResult r = sys.measure(window);
        csv.row()
            .cell(w)
            .cell(ticksToUs(sys.now()), 1)
            .cell(r.bandwidthGBs, 2)
            .cell(r.energyPj, 0)
            .cell(r.maxTempC, 2)
            .cell(r.throttlePct, 1);
        if (w == 0)
            first_bw = r.bandwidthGBs;
        last_bw = r.bandwidthGBs;
        peak_temp = std::max(peak_temp, r.maxTempC);
        total_energy_pj += r.energyPj;
        last_throttle_pct = r.throttlePct;
    }
    csv.finish();

    Report rep(std::cout);
    rep.section("throttle cliff");
    rep.measured("cold-window bandwidth", first_bw, "GB/s");
    rep.measured("sustained (throttled) bandwidth", last_bw, "GB/s");
    rep.measured("degradation", first_bw / last_bw, "x");
    rep.power(total_energy_pj, peak_temp, last_throttle_pct);
    rep.note("with this limit static power alone keeps the stack above "
             "the band, so the governor saturates at full depth and "
             "bandwidth settles on the throttled plateau");
}

}  // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parseBenchArgs(argc, argv);
    (void)opts;
    loadSweep();
    throttleCliff();
    return 0;
}
