/**
 * @file
 * Fig. 8 reproduction: low-load latency over 1..350 requests per
 * stream -- the linear region (partially utilized) followed by the
 * constant region (queues full).
 */

#include <iostream>
#include <map>
#include <vector>

#include "analysis/littles_law.h"
#include "analysis/paper_ref.h"
#include "analysis/report.h"
#include "bench_util.h"
#include "common/csv.h"
#include "host/experiment.h"
#include "host/system.h"

using namespace hmcsim;
using namespace hmcsim::bench;

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parseBenchArgs(argc, argv);
    const SystemConfig cfg;
    const Tick warmup = scaled(3) * kMicrosecond;
    const Tick window = scaled(fastMode() ? 8 : 20) * kMicrosecond;
    const int step = fastMode() ? 50 : 15;

    if (!opts.jsonReport)
        std::cout << "Fig. 8: latency vs requests in a stream (1..350)\n";
    bench::CsvOutput csv_out("fig08_saturation");
    CsvWriter csv(csv_out.stream(),
                  {"num_requests", "request_bytes", "avg_latency_us"});

    std::map<std::uint32_t, std::vector<std::pair<int, double>>> series;
    for (int n = 1; n <= 350; n = n == 1 ? step : n + step) {
        for (std::uint32_t bytes : kSizes) {
            StreamBatchSpec spec;
            spec.batchSize = static_cast<std::uint32_t>(n);
            spec.requestBytes = bytes;
            spec.vault = 0;
            spec.warmup = warmup;
            spec.window = window;
            const ExperimentResult r = runStreamBatch(cfg, spec);
            series[bytes].emplace_back(n, r.avgReadLatencyNs / 1000.0);
            csv.row().cell(n).cell(bytes).cell(
                r.avgReadLatencyNs / 1000.0, 3);
        }
    }
    csv.finish();

    Report rep(std::cout, opts.reportFormat());
    rep.section("Fig. 8 paper-vs-measured");
    for (std::uint32_t bytes : kSizes) {
        // Knee: first n whose latency reaches 95% of the final level.
        std::vector<double> curve;
        for (const auto &[n, us] : series[bytes])
            curve.push_back(us);
        const std::size_t idx = saturationIndex(curve, 0.10);
        rep.compare("knee (" + std::to_string(bytes) + " B requests)",
                    paper::kFig8KneeRequests,
                    static_cast<double>(series[bytes][idx].first),
                    "requests", /*approximate=*/true);
        rep.measured("saturated latency " + std::to_string(bytes) + " B",
                     curve.back(), "us");
    }
    rep.note("linear region = partially utilized queue; constant "
             "region = full queue (paper Section IV-B)");
    return 0;
}
