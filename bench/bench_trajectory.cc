/**
 * @file
 * Simulator performance trajectory: how fast is the simulator itself,
 * and how fast are the paper-figure workloads it reproduces?
 *
 * Writes one JSON document (default BENCH_events_per_sec.json, see
 * --out) with:
 *   - events_per_sec     headline kernel events per wall second, best
 *                        of N repetitions of the 9-port GUPS scenario
 *   - scenarios[]        per-scenario events/sec (classic single cube
 *                        and a 4-cube ring chain)
 *   - profile            the same scenario with obs.profile=1: class
 *                        attribution and observed profiling overhead
 *   - figures_of_merit   fig. 6/8 summary numbers so a perf change
 *                        that shifts simulated results is visible in
 *                        the same file
 *
 * scripts/bench_trajectory.sh wraps this binary and can gate on a
 * >30% events/sec regression against a baseline JSON.
 */

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/report.h"
#include "bench_util.h"
#include "host/experiment.h"
#include "host/system.h"
#include "obs/profile.h"
#include "sim/kernel.h"

using namespace hmcsim;
using namespace hmcsim::bench;

namespace {

/** One measured run window. */
struct PerfPoint {
    std::string name;
    std::uint64_t events = 0;
    double wallSec = 0.0;
    Tick simTicks = 0;

    double
    eventsPerSec() const
    {
        return wallSec > 0.0 ? static_cast<double>(events) / wallSec
                             : 0.0;
    }
};

/** Configure @p numPorts read-only GUPS ports spanning 16 vaults. */
void
configureGupsPorts(System &sys, std::uint32_t numPorts,
                   std::uint32_t requestBytes)
{
    for (PortId p = 0; p < numPorts; ++p) {
        GupsPortSpec gp;
        gp.gen.pattern = sys.addressMap().pattern(16, 16);
        gp.gen.requestBytes = requestBytes;
        gp.gen.seed = 0x9e3779b9u + p;
        sys.configureGupsPort(p, gp);
    }
}

/** Run one scenario: warm up, then measure events vs wall clock. */
PerfPoint
measureScenario(const std::string &name, const SystemConfig &cfg,
                Tick warmup, Tick window)
{
    System sys(cfg);
    configureGupsPorts(sys, cfg.host.numPorts, 32);
    sys.run(warmup);

    PerfPoint pt;
    pt.name = name;
    pt.simTicks = window;
    const std::uint64_t before = sys.kernel().eventsExecuted();
    const WallTimer timer;
    sys.run(window);
    pt.wallSec = timer.seconds();
    pt.events = sys.kernel().eventsExecuted() - before;
    return pt;
}

std::string
q(const std::string &s)
{
    return "\"" + jsonEscape(s) + "\"";
}

}  // namespace

int
main(int argc, char **argv)
{
    // Strip --out=FILE before handing the rest to the shared parser.
    std::string outPath = "BENCH_events_per_sec.json";
    if (const char *env = std::getenv("HMCSIM_BENCH_TRAJECTORY_OUT"))
        outPath = env;
    std::vector<char *> passArgv;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (i > 0 && arg.rfind("--out=", 0) == 0)
            outPath = arg.substr(6);
        else
            passArgv.push_back(argv[i]);
    }
    bench::parseBenchArgs(static_cast<int>(passArgv.size()),
                          passArgv.data());

    const bool fast = fastMode();
    const Tick warmup = scaled(fast ? 2 : 5) * kMicrosecond;
    const Tick window = scaled(fast ? 8 : 30) * kMicrosecond;
    const int reps = fast ? 2 : 3;

    std::cout << "perf trajectory: measuring simulator events/sec"
              << (fast ? " (fast mode)" : "") << "\n";

    // ----- headline scenario: classic single-cube, 9-port GUPS -----
    // Best-of-N absorbs scheduler noise; every repetition builds a
    // fresh System so construction cost is excluded from the window.
    std::vector<PerfPoint> scenarios;
    PerfPoint classic;
    for (int r = 0; r < reps; ++r) {
        const PerfPoint pt = measureScenario(
            "classic_gups_9port_32B", SystemConfig{}, warmup, window);
        if (r == 0 || pt.eventsPerSec() > classic.eventsPerSec())
            classic = pt;
    }
    scenarios.push_back(classic);
    std::cout << "  " << classic.name << ": "
              << static_cast<std::uint64_t>(classic.eventsPerSec())
              << " events/sec (" << classic.events << " events, "
              << classic.wallSec << " s)\n";

    // ----- chain scenario: 4-cube ring, same firmware -----
    {
        SystemConfig cfg;
        cfg.hmc.chain.numCubes = 4;
        cfg.hmc.chain.topology = "ring";
        PerfPoint chain;
        for (int r = 0; r < reps; ++r) {
            const PerfPoint pt = measureScenario("chain4_ring_gups",
                                                 cfg, warmup, window);
            if (r == 0 || pt.eventsPerSec() > chain.eventsPerSec())
                chain = pt;
        }
        scenarios.push_back(chain);
        std::cout << "  " << chain.name << ": "
                  << static_cast<std::uint64_t>(chain.eventsPerSec())
                  << " events/sec\n";
    }

    // ----- self-profiled run: class attribution + overhead -----
    SelfProfiler profiled;
    double profiledEps = 0.0;
    {
        SystemConfig cfg;
        cfg.obs.profile = true;
        System sys(cfg);
        configureGupsPorts(sys, cfg.host.numPorts, 32);
        sys.run(warmup);
        const std::uint64_t before = sys.kernel().eventsExecuted();
        const WallTimer timer;
        sys.run(window);
        const double sec = timer.seconds();
        const std::uint64_t ev = sys.kernel().eventsExecuted() - before;
        profiledEps = sec > 0.0 ? static_cast<double>(ev) / sec : 0.0;
        if (const SelfProfiler *p = sys.obs()->profiler())
            profiled = *p;
    }

    // ----- figures of merit: fig. 6 / fig. 8 summary numbers -----
    const Tick fomWarmup = scaled(fast ? 3 : 10) * kMicrosecond;
    const Tick fomWindow = scaled(fast ? 8 : 25) * kMicrosecond;
    GupsSpec g6;
    g6.requestBytes = 128;
    g6.warmup = fomWarmup;
    g6.window = fomWindow;
    const ExperimentResult r6 = runGups(SystemConfig{}, g6);

    StreamBatchSpec g8;
    g8.batchSize = 350;
    g8.requestBytes = 32;
    g8.warmup = fomWarmup;
    g8.window = fomWindow;
    const ExperimentResult r8 = runStreamBatch(SystemConfig{}, g8);

    // ----- emit the JSON document -----
    std::ofstream out(outPath);
    if (!out) {
        std::cerr << "bench_trajectory: cannot open " << outPath << "\n";
        return 1;
    }
    // Headline key first so shell tooling can grab the first
    // "events_per_sec" occurrence without a JSON parser.
    out << "{\n";
    out << "  \"bench\": \"hmcsim_perf_trajectory\",\n";
    out << "  \"schema_version\": 1,\n";
    out << "  \"events_per_sec\": " << jsonNumber(classic.eventsPerSec())
        << ",\n";
    out << "  \"fast_mode\": " << (fast ? "true" : "false") << ",\n";
    out << "  \"window_scale\": " << jsonNumber(windowScale()) << ",\n";
    out << "  \"scenarios\": [\n";
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        const PerfPoint &pt = scenarios[i];
        out << "    {\n";
        out << "      \"name\": " << q(pt.name) << ",\n";
        out << "      \"events\": " << pt.events << ",\n";
        out << "      \"wall_sec\": " << jsonNumber(pt.wallSec) << ",\n";
        out << "      \"sim_us\": "
            << jsonNumber(static_cast<double>(pt.simTicks) /
                          kMicrosecond)
            << ",\n";
        out << "      \"events_per_sec\": "
            << jsonNumber(pt.eventsPerSec()) << "\n";
        out << "    }" << (i + 1 < scenarios.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"profile\": {\n";
    out << "    \"events_per_sec\": " << jsonNumber(profiledEps) << ",\n";
    out << "    \"overhead_pct\": "
        << jsonNumber(classic.eventsPerSec() > 0.0
                          ? 100.0 * (1.0 - profiledEps /
                                               classic.eventsPerSec())
                          : 0.0)
        << ",\n";
    out << "    \"class_seconds\": {";
    {
        bool first = true;
        for (const auto &[cls, sec] : profiled.classSeconds()) {
            out << (first ? "\n" : ",\n") << "      " << q(cls) << ": "
                << jsonNumber(sec);
            first = false;
        }
        if (!first)
            out << "\n    ";
    }
    out << "}\n";
    out << "  },\n";
    out << "  \"figures_of_merit\": {\n";
    out << "    \"fig06_16vaults_128B_bandwidth_gbs\": "
        << jsonNumber(r6.bandwidthGBs) << ",\n";
    out << "    \"fig06_16vaults_128B_latency_ns\": "
        << jsonNumber(r6.avgReadLatencyNs) << ",\n";
    out << "    \"fig08_saturated_latency_us_32B\": "
        << jsonNumber(r8.avgReadLatencyNs / 1000.0) << "\n";
    out << "  }\n";
    out << "}\n";
    out.close();

    std::cout << "trajectory written to " << outPath << "\n";
    return 0;
}
