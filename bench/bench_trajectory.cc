/**
 * @file
 * Simulator performance trajectory: how fast is the simulator itself,
 * and how fast are the paper-figure workloads it reproduces?
 *
 * Writes one JSON document (default BENCH_events_per_sec.json, see
 * --out) with:
 *   - events_per_sec     headline kernel events per wall second, best
 *                        of N repetitions of the 9-port GUPS scenario
 *   - scenarios[]        per-scenario events/sec (classic single cube
 *                        and a 4-cube ring chain)
 *   - profile            the same scenario with obs.profile=1: class
 *                        attribution and observed profiling overhead
 *   - figures_of_merit   fig. 6/8 summary numbers so a perf change
 *                        that shifts simulated results is visible in
 *                        the same file
 *   - entries[]          append-only trajectory history: one compact
 *                        point per recorded run (commit, date,
 *                        events/sec, figures of merit).  Prior
 *                        entries are carried over verbatim from the
 *                        existing file; a v1 file (no entries) is
 *                        migrated by synthesizing its headline as the
 *                        first entry.
 *
 * --commit=SHA / --date=ISO label the appended entry (also via
 * HMCSIM_BENCH_TRAJECTORY_{COMMIT,DATE}); scripts/bench_trajectory.sh
 * fills them from git and the wall clock, and can gate on an
 * events/sec regression against the last recorded entry.
 */

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/report.h"
#include "bench_util.h"
#include "host/experiment.h"
#include "host/system.h"
#include "obs/profile.h"
#include "sim/kernel.h"

using namespace hmcsim;
using namespace hmcsim::bench;

namespace {

/** One measured run window. */
struct PerfPoint {
    std::string name;
    std::uint64_t events = 0;
    double wallSec = 0.0;
    Tick simTicks = 0;

    double
    eventsPerSec() const
    {
        return wallSec > 0.0 ? static_cast<double>(events) / wallSec
                             : 0.0;
    }
};

/** Configure @p numPorts read-only GUPS ports spanning 16 vaults. */
void
configureGupsPorts(System &sys, std::uint32_t numPorts,
                   std::uint32_t requestBytes)
{
    for (PortId p = 0; p < numPorts; ++p) {
        GupsPortSpec gp;
        gp.gen.pattern = sys.addressMap().pattern(16, 16);
        gp.gen.requestBytes = requestBytes;
        gp.gen.seed = 0x9e3779b9u + p;
        sys.configureGupsPort(p, gp);
    }
}

/** Run one scenario: warm up, then measure events vs wall clock. */
PerfPoint
measureScenario(const std::string &name, const SystemConfig &cfg,
                Tick warmup, Tick window)
{
    System sys(cfg);
    configureGupsPorts(sys, cfg.host.numPorts, 32);
    sys.run(warmup);

    PerfPoint pt;
    pt.name = name;
    pt.simTicks = window;
    const std::uint64_t before = sys.kernel().eventsExecuted();
    const WallTimer timer;
    sys.run(window);
    pt.wallSec = timer.seconds();
    pt.events = sys.kernel().eventsExecuted() - before;
    return pt;
}

std::string
q(const std::string &s)
{
    return "\"" + jsonEscape(s) + "\"";
}

std::string
readWholeFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return "";
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/**
 * Inner text of the document's "entries": [ ... ] array (without the
 * brackets), or "" when absent.  We only ever parse our own writer's
 * output, so bracket matching (no strings containing brackets) is
 * sufficient.
 */
std::string
extractEntriesInner(const std::string &doc)
{
    const std::size_t key = doc.find("\"entries\"");
    if (key == std::string::npos)
        return "";
    const std::size_t open = doc.find('[', key);
    if (open == std::string::npos)
        return "";
    int depth = 0;
    for (std::size_t i = open; i < doc.size(); ++i) {
        if (doc[i] == '[')
            ++depth;
        else if (doc[i] == ']' && --depth == 0) {
            std::string inner = doc.substr(open + 1, i - open - 1);
            // Trim whitespace-only content to "".
            const std::size_t a = inner.find_first_not_of(" \t\r\n");
            if (a == std::string::npos)
                return "";
            const std::size_t b = inner.find_last_not_of(" \t\r\n");
            return inner.substr(a, b - a + 1);
        }
    }
    return "";
}

/** First numeric value following "key": in @p doc, or @p fallback. */
double
extractNumber(const std::string &doc, const std::string &key,
              double fallback)
{
    const std::size_t k = doc.find("\"" + key + "\"");
    if (k == std::string::npos)
        return fallback;
    const std::size_t colon = doc.find(':', k);
    if (colon == std::string::npos)
        return fallback;
    return std::atof(doc.c_str() + colon + 1);
}

/**
 * Migrate a v1 document (headline keys, no entries array) into one
 * history entry so the trajectory keeps its oldest point.
 */
std::string
synthesizeV1Entry(const std::string &doc)
{
    if (doc.find("\"events_per_sec\"") == std::string::npos)
        return "";
    std::ostringstream e;
    e << "    {\n";
    e << "      \"commit\": \"unknown\",\n";
    e << "      \"date\": null,\n";
    e << "      \"events_per_sec\": "
      << jsonNumber(extractNumber(doc, "events_per_sec", 0.0)) << ",\n";
    e << "      \"fast_mode\": "
      << (doc.find("\"fast_mode\": true") != std::string::npos
              ? "true"
              : "false")
      << ",\n";
    e << "      \"window_scale\": "
      << jsonNumber(extractNumber(doc, "window_scale", 1.0)) << ",\n";
    e << "      \"figures_of_merit\": {\n";
    e << "        \"fig06_16vaults_128B_bandwidth_gbs\": "
      << jsonNumber(extractNumber(
             doc, "fig06_16vaults_128B_bandwidth_gbs", 0.0))
      << ",\n";
    e << "        \"fig06_16vaults_128B_latency_ns\": "
      << jsonNumber(
             extractNumber(doc, "fig06_16vaults_128B_latency_ns", 0.0))
      << ",\n";
    e << "        \"fig08_saturated_latency_us_32B\": "
      << jsonNumber(
             extractNumber(doc, "fig08_saturated_latency_us_32B", 0.0))
      << "\n";
    e << "      }\n";
    e << "    }";
    return e.str();
}

}  // namespace

int
main(int argc, char **argv)
{
    // Strip --out/--commit/--date before handing the rest to the
    // shared parser.
    std::string outPath = "BENCH_events_per_sec.json";
    std::string commit = "unknown";
    std::string date;
    if (const char *env = std::getenv("HMCSIM_BENCH_TRAJECTORY_OUT"))
        outPath = env;
    if (const char *env = std::getenv("HMCSIM_BENCH_TRAJECTORY_COMMIT"))
        commit = env;
    if (const char *env = std::getenv("HMCSIM_BENCH_TRAJECTORY_DATE"))
        date = env;
    std::vector<char *> passArgv;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (i > 0 && arg.rfind("--out=", 0) == 0)
            outPath = arg.substr(6);
        else if (i > 0 && arg.rfind("--commit=", 0) == 0)
            commit = arg.substr(9);
        else if (i > 0 && arg.rfind("--date=", 0) == 0)
            date = arg.substr(7);
        else
            passArgv.push_back(argv[i]);
    }
    bench::parseBenchArgs(static_cast<int>(passArgv.size()),
                          passArgv.data());

    const bool fast = fastMode();
    const Tick warmup = scaled(fast ? 2 : 5) * kMicrosecond;
    const Tick window = scaled(fast ? 8 : 30) * kMicrosecond;
    const int reps = fast ? 2 : 3;

    std::cout << "perf trajectory: measuring simulator events/sec"
              << (fast ? " (fast mode)" : "") << "\n";

    // ----- headline scenario: classic single-cube, 9-port GUPS -----
    // Best-of-N absorbs scheduler noise; every repetition builds a
    // fresh System so construction cost is excluded from the window.
    std::vector<PerfPoint> scenarios;
    PerfPoint classic;
    for (int r = 0; r < reps; ++r) {
        const PerfPoint pt = measureScenario(
            "classic_gups_9port_32B", SystemConfig{}, warmup, window);
        if (r == 0 || pt.eventsPerSec() > classic.eventsPerSec())
            classic = pt;
    }
    scenarios.push_back(classic);
    std::cout << "  " << classic.name << ": "
              << static_cast<std::uint64_t>(classic.eventsPerSec())
              << " events/sec (" << classic.events << " events, "
              << classic.wallSec << " s)\n";

    // ----- chain scenario: 4-cube ring, same firmware -----
    {
        SystemConfig cfg;
        cfg.hmc.chain.numCubes = 4;
        cfg.hmc.chain.topology = "ring";
        PerfPoint chain;
        for (int r = 0; r < reps; ++r) {
            const PerfPoint pt = measureScenario("chain4_ring_gups",
                                                 cfg, warmup, window);
            if (r == 0 || pt.eventsPerSec() > chain.eventsPerSec())
                chain = pt;
        }
        scenarios.push_back(chain);
        std::cout << "  " << chain.name << ": "
                  << static_cast<std::uint64_t>(chain.eventsPerSec())
                  << " events/sec\n";
    }

    // ----- parallel engine: 8-cube ring, serial vs 4 threads -----
    // Same config modulo sim.parallel/sim.threads (power probes are
    // off in both so the comparison is engine-only: the parallel core
    // gates the power model).  The speedup is real only with >= 2
    // hardware threads; on smaller machines this records the
    // engine's overhead honestly rather than a win.
    {
        SystemConfig cfg;
        cfg.hmc.chain.numCubes = 8;
        cfg.hmc.chain.topology = "ring";
        cfg.hmc.power.enabled = false;
        PerfPoint serial8;
        for (int r = 0; r < reps; ++r) {
            const PerfPoint pt = measureScenario("chain8_ring_gups",
                                                 cfg, warmup, window);
            if (r == 0 || pt.eventsPerSec() > serial8.eventsPerSec())
                serial8 = pt;
        }
        scenarios.push_back(serial8);
        std::cout << "  " << serial8.name << ": "
                  << static_cast<std::uint64_t>(serial8.eventsPerSec())
                  << " events/sec\n";

        cfg.sim.parallel = "on";
        cfg.sim.threads = 4;
        PerfPoint par8;
        for (int r = 0; r < reps; ++r) {
            const PerfPoint pt = measureScenario(
                "chain8_ring_gups_par4", cfg, warmup, window);
            if (r == 0 || pt.eventsPerSec() > par8.eventsPerSec())
                par8 = pt;
        }
        scenarios.push_back(par8);
        std::cout << "  " << par8.name << ": "
                  << static_cast<std::uint64_t>(par8.eventsPerSec())
                  << " events/sec ("
                  << jsonNumber(serial8.eventsPerSec() > 0.0
                                    ? par8.eventsPerSec() /
                                          serial8.eventsPerSec()
                                    : 0.0)
                  << "x serial, " << std::thread::hardware_concurrency()
                  << " hw threads)\n";
    }

    // ----- self-profiled run: class attribution + overhead -----
    SelfProfiler profiled;
    double profiledEps = 0.0;
    {
        SystemConfig cfg;
        cfg.obs.profile = true;
        System sys(cfg);
        configureGupsPorts(sys, cfg.host.numPorts, 32);
        sys.run(warmup);
        const std::uint64_t before = sys.kernel().eventsExecuted();
        const WallTimer timer;
        sys.run(window);
        const double sec = timer.seconds();
        const std::uint64_t ev = sys.kernel().eventsExecuted() - before;
        profiledEps = sec > 0.0 ? static_cast<double>(ev) / sec : 0.0;
        if (const SelfProfiler *p = sys.obs()->profiler())
            profiled = *p;
    }

    // ----- figures of merit: fig. 6 / fig. 8 summary numbers -----
    const Tick fomWarmup = scaled(fast ? 3 : 10) * kMicrosecond;
    const Tick fomWindow = scaled(fast ? 8 : 25) * kMicrosecond;
    GupsSpec g6;
    g6.requestBytes = 128;
    g6.warmup = fomWarmup;
    g6.window = fomWindow;
    const ExperimentResult r6 = runGups(SystemConfig{}, g6);

    StreamBatchSpec g8;
    g8.batchSize = 350;
    g8.requestBytes = 32;
    g8.warmup = fomWarmup;
    g8.window = fomWindow;
    const ExperimentResult r8 = runStreamBatch(SystemConfig{}, g8);

    // ----- carry over (or migrate) the trajectory history -----
    const std::string prior = readWholeFile(outPath);
    std::string priorEntries = extractEntriesInner(prior);
    if (priorEntries.empty())
        priorEntries = synthesizeV1Entry(prior);

    // ----- emit the JSON document -----
    std::ofstream out(outPath);
    if (!out) {
        std::cerr << "bench_trajectory: cannot open " << outPath << "\n";
        return 1;
    }
    // Headline key first so shell tooling can grab the first
    // "events_per_sec" occurrence without a JSON parser.
    out << "{\n";
    out << "  \"bench\": \"hmcsim_perf_trajectory\",\n";
    out << "  \"schema_version\": 2,\n";
    out << "  \"events_per_sec\": " << jsonNumber(classic.eventsPerSec())
        << ",\n";
    out << "  \"fast_mode\": " << (fast ? "true" : "false") << ",\n";
    out << "  \"window_scale\": " << jsonNumber(windowScale()) << ",\n";
    out << "  \"scenarios\": [\n";
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        const PerfPoint &pt = scenarios[i];
        out << "    {\n";
        out << "      \"name\": " << q(pt.name) << ",\n";
        out << "      \"events\": " << pt.events << ",\n";
        out << "      \"wall_sec\": " << jsonNumber(pt.wallSec) << ",\n";
        out << "      \"sim_us\": "
            << jsonNumber(static_cast<double>(pt.simTicks) /
                          kMicrosecond)
            << ",\n";
        out << "      \"events_per_sec\": "
            << jsonNumber(pt.eventsPerSec()) << "\n";
        out << "    }" << (i + 1 < scenarios.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"profile\": {\n";
    out << "    \"events_per_sec\": " << jsonNumber(profiledEps) << ",\n";
    out << "    \"overhead_pct\": "
        << jsonNumber(classic.eventsPerSec() > 0.0
                          ? 100.0 * (1.0 - profiledEps /
                                               classic.eventsPerSec())
                          : 0.0)
        << ",\n";
    out << "    \"class_seconds\": {";
    {
        bool first = true;
        for (const auto &[cls, sec] : profiled.classSeconds()) {
            out << (first ? "\n" : ",\n") << "      " << q(cls) << ": "
                << jsonNumber(sec);
            first = false;
        }
        if (!first)
            out << "\n    ";
    }
    out << "}\n";
    out << "  },\n";
    out << "  \"figures_of_merit\": {\n";
    out << "    \"fig06_16vaults_128B_bandwidth_gbs\": "
        << jsonNumber(r6.bandwidthGBs) << ",\n";
    out << "    \"fig06_16vaults_128B_latency_ns\": "
        << jsonNumber(r6.avgReadLatencyNs) << ",\n";
    out << "    \"fig08_saturated_latency_us_32B\": "
        << jsonNumber(r8.avgReadLatencyNs / 1000.0) << "\n";
    out << "  },\n";
    // Append-only history, kept LAST in the document so the final
    // "events_per_sec" occurrence in the file is always the latest
    // recorded entry (what the shell wrapper's --check reads).
    out << "  \"entries\": [\n";
    if (!priorEntries.empty())
        out << "    " << priorEntries << ",\n";
    out << "    {\n";
    out << "      \"commit\": " << q(commit) << ",\n";
    out << "      \"date\": " << (date.empty() ? "null" : q(date))
        << ",\n";
    out << "      \"events_per_sec\": "
        << jsonNumber(classic.eventsPerSec()) << ",\n";
    out << "      \"fast_mode\": " << (fast ? "true" : "false") << ",\n";
    out << "      \"window_scale\": " << jsonNumber(windowScale())
        << ",\n";
    out << "      \"figures_of_merit\": {\n";
    out << "        \"fig06_16vaults_128B_bandwidth_gbs\": "
        << jsonNumber(r6.bandwidthGBs) << ",\n";
    out << "        \"fig06_16vaults_128B_latency_ns\": "
        << jsonNumber(r6.avgReadLatencyNs) << ",\n";
    out << "        \"fig08_saturated_latency_us_32B\": "
        << jsonNumber(r8.avgReadLatencyNs / 1000.0) << "\n";
    out << "      }\n";
    out << "    }\n";
    out << "  ]\n";
    out << "}\n";
    out.close();

    std::cout << "trajectory written to " << outPath << "\n";
    return 0;
}
