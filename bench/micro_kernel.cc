/**
 * @file
 * google-benchmark microbenchmarks of the simulation engine itself:
 * event-queue throughput, router hop cost, DRAM service planning, and
 * end-to-end simulated-time rate.  These guard the simulator's own
 * performance (a full Fig. 10 sweep runs ~7k short simulations).
 */

#include <benchmark/benchmark.h>

#include "dram/vault_memory.h"
#include "host/experiment.h"
#include "host/system.h"
#include "sim/kernel.h"

using namespace hmcsim;

namespace {

void
BM_EventQueueScheduleExecute(benchmark::State &state)
{
    Kernel kernel;
    const int batch = static_cast<int>(state.range(0));
    std::uint64_t x = 0;
    for (auto _ : state) {
        for (int i = 0; i < batch; ++i) {
            kernel.scheduleIn(static_cast<Tick>((i * 7919) % 1000) + 1,
                              [&x] { ++x; });
        }
        kernel.run();
    }
    benchmark::DoNotOptimize(x);
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueScheduleExecute)->Arg(256)->Arg(4096);

/**
 * Steady-state schedule/execute throughput of the two queue
 * implementations across pending-set sizes and time skews.  Each
 * executed event is replaced by a fresh one a pseudo-random delay in
 * [1, skew] ahead, holding the pending population constant -- the
 * schedule pattern of a saturated simulation.  Small skews keep every
 * event inside the calendar ring; the largest skew forces far-future
 * heap traffic.
 */
void
BM_EventQueuePendingSkew(benchmark::State &state)
{
    const auto kind = state.range(0) == 0 ? EventQueueKind::Heap
                                          : EventQueueKind::Calendar;
    const int pending = static_cast<int>(state.range(1));
    const Tick skew = static_cast<Tick>(state.range(2));
    EventQueue q;
    q.configure(kind, 512, 4096);
    std::uint64_t executed = 0;
    std::uint64_t rng = 0x9e3779b97f4a7c15ull;
    const auto next_delay = [&rng, skew] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return static_cast<Tick>(rng % skew) + 1;
    };
    const auto count = [&executed] { ++executed; };
    for (int i = 0; i < pending; ++i)
        q.schedule(next_delay(), count);
    for (auto _ : state) {
        const Tick now = q.executeNext();
        q.schedule(now + next_delay(), count);
    }
    benchmark::DoNotOptimize(executed);
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(kind == EventQueueKind::Heap ? "heap" : "calendar");
}
BENCHMARK(BM_EventQueuePendingSkew)
    ->ArgNames({"calendar", "pending", "skew"})
    ->ArgsProduct({{0, 1}, {64, 1024, 16384}, {100, 4000, 1000000}});

void
BM_DramServicePlanning(benchmark::State &state)
{
    Kernel kernel;
    const DramTimingParams params = DramTimingParams::hmcGen2();
    VaultMemory mem(kernel, nullptr, "vmem", params, 16);
    Tick now = 0;
    std::uint64_t i = 0;
    for (auto _ : state) {
        DramAccess a;
        a.bank = static_cast<BankId>(i % 16);
        a.row = static_cast<RowId>((i * 2654435761u) % 65536);
        a.bytes = 128;
        const auto r = mem.service(a, now, PagePolicy::Closed);
        now = r.colTime;
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramServicePlanning);

void
BM_EndToEndGups(benchmark::State &state)
{
    // Simulated microseconds per wall second, the number that bounds
    // every figure sweep.
    const std::uint32_t bytes = static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        SystemConfig cfg;
        System sys(cfg);
        for (PortId p = 0; p < 9; ++p) {
            GupsPortSpec gp;
            gp.gen.pattern = sys.addressMap().pattern(16, 16);
            gp.gen.requestBytes = bytes;
            gp.gen.capacity = cfg.hmc.totalCapacityBytes();
            gp.gen.seed = 5 + p;
            sys.configureGupsPort(p, gp);
        }
        sys.run(10 * kMicrosecond);
        benchmark::DoNotOptimize(sys.now());
    }
    state.SetLabel("10us simulated per iteration");
}
BENCHMARK(BM_EndToEndGups)->Arg(16)->Arg(128)
    ->Unit(benchmark::kMillisecond);

void
BM_StreamBatchExperiment(benchmark::State &state)
{
    for (auto _ : state) {
        StreamBatchSpec spec;
        spec.batchSize = 40;
        spec.requestBytes = 64;
        spec.warmup = 2 * kMicrosecond;
        spec.window = 5 * kMicrosecond;
        const ExperimentResult r = runStreamBatch(SystemConfig{}, spec);
        benchmark::DoNotOptimize(r.avgReadLatencyNs);
    }
}
BENCHMARK(BM_StreamBatchExperiment)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
