/**
 * @file
 * Ablation: vault-controller scheduling (FIFO vs FR-FCFS) under
 * closed- and open-page policies, on a row-locality-friendly stream
 * and on uniform random traffic.
 */

#include <iostream>

#include "analysis/report.h"
#include "bench_util.h"
#include "common/csv.h"
#include "host/experiment.h"
#include "host/system.h"

using namespace hmcsim;
using namespace hmcsim::bench;

namespace {

ExperimentResult
run(const SystemConfig &cfg, bool sequential, Tick warmup, Tick window)
{
    System sys(cfg);
    Rng rng(4242);
    for (PortId p = 0; p < 4; ++p) {
        StreamPortSpec sp;
        if (sequential) {
            // Row-friendly walk within one vault: eight 32 B beats per
            // 256 B row before moving on, so open page gets 7 hits per
            // row while closed page re-activates every time.
            DecodedAddr d;
            d.vault = p * 4;
            d.bank = 0;
            sp.trace.reserve(4096);
            for (std::uint32_t i = 0; i < 4096; ++i) {
                d.row = i / 8;
                d.col = i % 8;
                d.blockOffset = 0;
                TraceRecord rec;
                rec.addr = sys.addressMap().encode(d);
                rec.bytes = 32;
                sp.trace.push_back(rec);
            }
        } else {
            sp.trace = makeRandomTrace(
                rng, sys.addressMap().vaultPattern(p * 4),
                cfg.hmc.totalCapacityBytes(), 4096, 32);
        }
        sp.loop = true;
        sys.configureStreamPort(p, sp);
    }
    sys.run(warmup);
    return sys.measure(window);
}

}  // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parseBenchArgs(argc, argv);
    (void)opts;
    const Tick warmup = scaled(fastMode() ? 4 : 10) * kMicrosecond;
    const Tick window = scaled(fastMode() ? 8 : 25) * kMicrosecond;

    std::cout << "Ablation: vault scheduler and page policy\n";
    bench::CsvOutput csv_out("ablation_sched");
    CsvWriter csv(csv_out.stream(),
                  {"scheduler", "page_policy", "workload",
                   "bandwidth_gbs", "avg_latency_ns"});
    for (const char *sched : {"fifo", "frfcfs"}) {
        for (const char *page : {"closed", "open"}) {
            for (bool sequential : {true, false}) {
                SystemConfig cfg;
                cfg.hmc.scheduler = sched;
                cfg.hmc.pagePolicy = page;
                const ExperimentResult r =
                    run(cfg, sequential, warmup, window);
                csv.row()
                    .cell(sched)
                    .cell(page)
                    .cell(sequential ? "sequential" : "random")
                    .cell(r.bandwidthGBs, 2)
                    .cell(r.avgReadLatencyNs, 0);
            }
        }
    }
    csv.finish();

    Report rep(std::cout);
    rep.note("expected: open+frfcfs wins on sequential (row hits), "
             "closed wins on random (no conflict precharge on the "
             "critical path)");
    return 0;
}
