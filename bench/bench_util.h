/**
 * @file
 * Shared helpers for the figure/table benchmark binaries.
 *
 * Environment knobs:
 *   HMCSIM_BENCH_FAST=1   shrink sweeps for smoke runs
 *   HMCSIM_BENCH_SCALE=x  multiply measurement windows by x
 */

#ifndef HMCSIM_BENCH_BENCH_UTIL_H_
#define HMCSIM_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <string>

#include "common/types.h"

namespace hmcsim {
namespace bench {

inline bool
fastMode()
{
    const char *v = std::getenv("HMCSIM_BENCH_FAST");
    return v != nullptr && std::string(v) != "0";
}

inline double
windowScale()
{
    const char *v = std::getenv("HMCSIM_BENCH_SCALE");
    if (!v)
        return 1.0;
    const double s = std::atof(v);
    return s > 0.0 ? s : 1.0;
}

inline Tick
scaled(Tick base)
{
    return static_cast<Tick>(static_cast<double>(base) * windowScale());
}

/** The paper's four request sizes. */
constexpr std::uint32_t kSizes[] = {16, 32, 64, 128};

}  // namespace bench
}  // namespace hmcsim

#endif  // HMCSIM_BENCH_BENCH_UTIL_H_
