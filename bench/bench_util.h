/**
 * @file
 * Shared helpers for the figure/table benchmark binaries.
 *
 * Environment knobs:
 *   HMCSIM_BENCH_FAST=1      shrink sweeps for smoke runs
 *   HMCSIM_BENCH_SCALE=x     multiply measurement windows by x
 *   HMCSIM_BENCH_CSV_DIR=d   write each binary's CSV to d/<name>.csv
 *                            instead of stdout (CI artifact collection)
 */

#ifndef HMCSIM_BENCH_BENCH_UTIL_H_
#define HMCSIM_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "common/types.h"

namespace hmcsim {
namespace bench {

inline bool
fastMode()
{
    const char *v = std::getenv("HMCSIM_BENCH_FAST");
    return v != nullptr && std::string(v) != "0";
}

inline double
windowScale()
{
    const char *v = std::getenv("HMCSIM_BENCH_SCALE");
    if (!v)
        return 1.0;
    const double s = std::atof(v);
    return s > 0.0 ? s : 1.0;
}

inline Tick
scaled(Tick base)
{
    return static_cast<Tick>(static_cast<double>(base) * windowScale());
}

/** The paper's four request sizes. */
constexpr std::uint32_t kSizes[] = {16, 32, 64, 128};

/**
 * CSV destination for one benchmark binary: stdout by default, or
 * $HMCSIM_BENCH_CSV_DIR/<name>.csv when the env knob is set, so CI can
 * collect every figure's series into one artifact directory.
 */
class CsvOutput
{
  public:
    explicit CsvOutput(const std::string &name)
    {
        const char *dir = std::getenv("HMCSIM_BENCH_CSV_DIR");
        if (!dir || *dir == '\0')
            return;
        path_ = std::string(dir) + "/" + name + ".csv";
        file_.open(path_);
        if (!file_) {
            std::cerr << "bench: cannot open " << path_
                      << ", falling back to stdout\n";
            path_.clear();
        }
    }

    ~CsvOutput()
    {
        if (file_.is_open())
            std::cout << "csv written to " << path_ << "\n";
    }

    std::ostream &stream()
    {
        return file_.is_open() ? static_cast<std::ostream &>(file_)
                               : std::cout;
    }

  private:
    std::ofstream file_;
    std::string path_;
};

}  // namespace bench
}  // namespace hmcsim

#endif  // HMCSIM_BENCH_BENCH_UTIL_H_
