/**
 * @file
 * Shared helpers for the figure/table benchmark binaries.
 *
 * Environment knobs:
 *   HMCSIM_BENCH_FAST=1      shrink sweeps for smoke runs
 *   HMCSIM_BENCH_SCALE=x     multiply measurement windows by x
 *   HMCSIM_BENCH_CSV_DIR=d   write each binary's CSV to d/<name>.csv
 *                            instead of stdout (CI artifact collection)
 *   HMCSIM_BENCH_WORKLOAD=w  restrict workload-sweeping binaries to a
 *                            comma-separated list of source types
 *
 *   HMCSIM_BENCH_JSON=1      emit result tables as JSON (see --json)
 *   HMCSIM_BENCH_OBS_ANATOMY=1  turn the latency-anatomy engine on in
 *                            binaries that call applyObsEnv() -- used
 *                            by CI to verify obs.anatomy=on leaves
 *                            every result CSV bit-identical
 *
 * Every figure binary accepts the same flags via parseBenchArgs()
 * (flags override the environment): --fast, --scale=X, --csv-dir=DIR,
 * --workload=LIST, --json, --help.
 */

#ifndef HMCSIM_BENCH_BENCH_UTIL_H_
#define HMCSIM_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/report.h"
#include "common/strutil.h"
#include "common/types.h"
#include "obs/obs_config.h"

namespace hmcsim {
namespace bench {

inline bool
fastMode()
{
    const char *v = std::getenv("HMCSIM_BENCH_FAST");
    return v != nullptr && std::string(v) != "0";
}

inline double
windowScale()
{
    const char *v = std::getenv("HMCSIM_BENCH_SCALE");
    if (!v)
        return 1.0;
    const double s = std::atof(v);
    return s > 0.0 ? s : 1.0;
}

inline Tick
scaled(Tick base)
{
    return static_cast<Tick>(static_cast<double>(base) * windowScale());
}

/**
 * Apply the HMCSIM_BENCH_OBS_ANATOMY knob to a run's obs config.  The
 * anatomy engine is observation-only, so CI flips this on and checks
 * the binary's result CSVs stay bit-identical to the off run.
 */
inline void
applyObsEnv(ObsConfig &obs)
{
    const char *v = std::getenv("HMCSIM_BENCH_OBS_ANATOMY");
    if (v != nullptr && std::string(v) != "0")
        obs.anatomy = true;
}

/** The paper's four request sizes. */
constexpr std::uint32_t kSizes[] = {16, 32, 64, 128};

/** Options shared by every figure binary. */
struct BenchOptions {
    bool fast = false;
    double scale = 1.0;
    std::string csvDir;
    /** Comma-separated workload filter ("gups,zipf"); empty = all.
     *  Honoured by the binaries that sweep traffic sources. */
    std::string workload;
    /** Emit the paper-vs-measured result tables as one JSON document
     *  instead of the aligned text report. */
    bool jsonReport = false;

    /** Report format matching the --json flag. */
    Report::Format
    reportFormat() const
    {
        return jsonReport ? Report::Format::Json : Report::Format::Text;
    }

    /** True when @p name passes the workload filter. */
    bool
    wantsWorkload(const std::string &name) const
    {
        if (workload.empty())
            return true;
        for (const std::string &tok : split(workload, ','))
            if (trim(tok) == name)
                return true;
        return false;
    }
};

/**
 * Parse the shared benchmark command line.  Flags mirror (and
 * override) the HMCSIM_BENCH_* environment knobs; the env vars are
 * updated so the fastMode()/scaled()/CsvOutput helpers see the same
 * values.  Exits on --help or an unknown argument.
 */
inline BenchOptions
parseBenchArgs(int argc, char **argv)
{
    BenchOptions o;
    o.fast = fastMode();
    o.scale = windowScale();
    if (const char *d = std::getenv("HMCSIM_BENCH_CSV_DIR"))
        o.csvDir = d;
    if (const char *w = std::getenv("HMCSIM_BENCH_WORKLOAD"))
        o.workload = w;
    if (const char *j = std::getenv("HMCSIM_BENCH_JSON"))
        o.jsonReport = std::string(j) != "0";

    const std::string name = argc > 0 ? argv[0] : "bench";
    const auto usage = [&name](std::ostream &os) {
        os << "usage: " << name
           << " [--fast] [--scale=X] [--csv-dir=DIR]"
              " [--workload=a,b,...] [--json]\n";
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        // A flag matches exactly or as "--flag=value" (so a typo like
        // --scales is rejected instead of eating the next argument).
        const auto matches = [&arg](const char *flag) {
            return arg == flag || startsWith(arg, std::string(flag) + "=");
        };
        // Accept both --flag=value and --flag value.
        const auto value = [&](const char *flag) -> std::string {
            const std::string f(flag);
            if (arg.size() > f.size() && arg[f.size()] == '=')
                return arg.substr(f.size() + 1);
            if (i + 1 >= argc) {
                std::cerr << name << ": " << f << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--fast") {
            o.fast = true;
            setenv("HMCSIM_BENCH_FAST", "1", 1);
        } else if (matches("--scale")) {
            const std::string v = value("--scale");
            o.scale = std::atof(v.c_str());
            if (o.scale <= 0.0) {
                std::cerr << name << ": bad --scale '" << v << "'\n";
                std::exit(2);
            }
            setenv("HMCSIM_BENCH_SCALE", v.c_str(), 1);
        } else if (matches("--csv-dir")) {
            o.csvDir = value("--csv-dir");
            setenv("HMCSIM_BENCH_CSV_DIR", o.csvDir.c_str(), 1);
        } else if (matches("--workload")) {
            o.workload = value("--workload");
            setenv("HMCSIM_BENCH_WORKLOAD", o.workload.c_str(), 1);
        } else if (arg == "--json") {
            o.jsonReport = true;
            setenv("HMCSIM_BENCH_JSON", "1", 1);
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            std::exit(0);
        } else {
            std::cerr << name << ": unknown argument '" << arg << "'\n";
            usage(std::cerr);
            std::exit(2);
        }
    }
    return o;
}

/**
 * CSV destination for one benchmark binary: stdout by default, or
 * $HMCSIM_BENCH_CSV_DIR/<name>.csv when the env knob is set, so CI can
 * collect every figure's series into one artifact directory.
 */
class CsvOutput
{
  public:
    explicit CsvOutput(const std::string &name)
    {
        const char *dir = std::getenv("HMCSIM_BENCH_CSV_DIR");
        if (!dir || *dir == '\0')
            return;
        path_ = std::string(dir) + "/" + name + ".csv";
        file_.open(path_);
        if (!file_) {
            std::cerr << "bench: cannot open " << path_
                      << ", falling back to stdout\n";
            path_.clear();
        }
    }

    ~CsvOutput()
    {
        if (file_.is_open())
            std::cout << "csv written to " << path_ << "\n";
    }

    std::ostream &stream()
    {
        return file_.is_open() ? static_cast<std::ostream &>(file_)
                               : std::cout;
    }

  private:
    std::ofstream file_;
    std::string path_;
};

}  // namespace bench
}  // namespace hmcsim

#endif  // HMCSIM_BENCH_BENCH_UTIL_H_
