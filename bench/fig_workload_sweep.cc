/**
 * @file
 * Workload sweep: every pluggable traffic source at matched offered
 * load, open-loop injected, compared on latency / bandwidth / energy.
 * This is the scenario matrix the seed's GUPS-only host could not
 * express: skewed hotspots, bursts and phase mixes against the same
 * cube, at the same requests/ns.
 *
 * A closed-loop reference row per source (firmware-style windowed
 * injection) anchors the open-loop numbers to the paper's Figs. 6-8
 * methodology.
 *
 *   --workload=a,b,...  restrict to a subset of sources (CI matrix)
 */

#include <functional>
#include <iostream>
#include <utility>
#include <vector>

#include "analysis/report.h"
#include "bench_util.h"
#include "common/csv.h"
#include "host/experiment.h"
#include "host/system.h"

using namespace hmcsim;
using namespace hmcsim::bench;

namespace {

struct Entry {
    const char *name;
    std::function<void(WorkloadSpec &)> shape;
};

const std::vector<Entry> &
catalogue()
{
    static const std::vector<Entry> k = {
        {"gups", [](WorkloadSpec &w) { w.type = "gups"; }},
        {"stride",
         [](WorkloadSpec &w) {
             w.type = "stride";
             w.strideBytes = 128;
         }},
        {"zipf_vault",
         [](WorkloadSpec &w) {
             w.type = "zipf";
             w.zipfDomain = "vault";
             w.zipfTheta = 0.99;
         }},
        {"zipf_block",
         [](WorkloadSpec &w) {
             w.type = "zipf";
             w.zipfDomain = "block";
             w.zipfHotItems = 4096;
         }},
        {"burst",
         [](WorkloadSpec &w) {
             w.type = "burst";
             w.burstInner = "gups";
             w.burstLen = 64;
             w.burstGapNs = 2000;
         }},
        {"trace",
         [](WorkloadSpec &w) {
             w.type = "trace";
             w.traceLength = 4096;
         }},
        {"mix",
         [](WorkloadSpec &w) {
             w.type = "mix";
             w.mixPhases = "gups:10us,stride:10us,zipf:10us";
         }},
    };
    return k;
}

}  // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parseBenchArgs(argc, argv);
    const SystemConfig cfg;
    const bool fast = fastMode();
    const Tick warmup = scaled(fast ? 4 : 10) * kMicrosecond;
    const Tick window = scaled(fast ? 8 : 30) * kMicrosecond;
    const std::uint32_t active_ports = 4;
    const std::vector<double> rates = fast
        ? std::vector<double>{0.02}
        : std::vector<double>{0.01, 0.02, 0.04, 0.08};

    std::cout << "workload sweep: every traffic source at matched "
                 "offered load (open loop, "
              << active_ports << " ports)\n";
    bench::CsvOutput csv_out("fig_workload_sweep");
    CsvWriter csv(csv_out.stream(),
                  {"workload", "inject", "rate_per_ns_per_port",
                   "offered_req_per_ns", "accepted_req_per_ns",
                   "bandwidth_gbs", "avg_latency_ns", "max_latency_ns",
                   "energy_pj", "avg_power_w", "max_temp_c"});

    Report rep(std::cout);
    for (const Entry &e : catalogue()) {
        if (!opts.wantsWorkload(e.name))
            continue;
        // Open loop: the same offered requests/ns for every source.
        for (double rate : rates) {
            WorkloadRunSpec spec;
            e.shape(spec.workload);
            spec.workload.inject = "open";
            spec.workload.ratePerNs = rate;
            spec.activePorts = active_ports;
            spec.warmup = warmup;
            spec.window = window;
            const ExperimentResult r = runWorkload(cfg, spec);
            csv.row()
                .cell(e.name)
                .cell("open")
                .cell(rate, 3)
                .cell(r.offeredPerNs(), 4)
                .cell(r.acceptedPerNs(), 4)
                .cell(r.bandwidthGBs, 2)
                .cell(r.avgReadLatencyNs, 0)
                .cell(r.maxReadLatencyNs, 0)
                .cell(r.energyPj, 0)
                .cell(r.avgPowerW, 2)
                .cell(r.maxTempC, 2);
        }
        // Closed-loop reference (firmware-style windowed injection).
        WorkloadRunSpec spec;
        e.shape(spec.workload);
        spec.workload.inject = "closed";
        spec.activePorts = active_ports;
        spec.warmup = warmup;
        spec.window = window;
        const ExperimentResult r = runWorkload(cfg, spec);
        csv.row()
            .cell(e.name)
            .cell("closed")
            .cell(0.0, 3)
            .cell(0.0, 4)
            .cell(r.acceptedPerNs(), 4)
            .cell(r.bandwidthGBs, 2)
            .cell(r.avgReadLatencyNs, 0)
            .cell(r.maxReadLatencyNs, 0)
            .cell(r.energyPj, 0)
            .cell(r.avgPowerW, 2)
            .cell(r.maxTempC, 2);
        rep.measured(std::string(e.name) + " closed-loop bandwidth",
                     r.bandwidthGBs, "GB/s");
    }
    csv.finish();
    rep.note("open-loop rows share the same offered req/ns per port; "
             "latency gaps between rows are pure access-pattern "
             "effects (hotspot queueing, burst clumping, stride row "
             "locality)");

    // ----- part 2: cube-bound hotspots -----
    // With the AC-510 host, the response deserializer ceiling binds
    // before any vault does (the paper's Section IV-D bottleneck), so
    // skew barely moves the numbers above.  Widen the host front-end
    // (as the QoS example does) and the same Zipf sources now stress
    // the cube asymmetrically.
    std::cout << "\npart 2: hotspots against a widened host front-end "
                 "(closed loop, 9 ports, 64 B)\n";
    SystemConfig wide = cfg;
    wide.host.deserializerPacketsPerCycle = 4;
    wide.host.deserializerPacketBudgetCap = 8;
    wide.host.deserializerFlitsPerCycle = 16;
    wide.host.requestsPerCyclePerLink = 4;
    wide.host.tagsPerPort = 96;
    struct Hotspot {
        const char *name;
        const char *filterAs;
        const char *domain;  ///< nullptr = plain gups
        double theta;
        std::uint64_t hotItems;
    };
    const Hotspot hotspots[] = {
        {"gups", "gups", nullptr, 0.0, 0},
        {"zipf_vault", "zipf_vault", "vault", 0.99, 0},
        {"zipf_block_64", "zipf_block", "block", 0.9, 64},
        {"zipf_block_4", "zipf_block", "block", 0.9, 4},
    };
    bench::CsvOutput csv2_out("fig_workload_sweep_hotspot");
    CsvWriter csv2(csv2_out.stream(),
                   {"workload", "zipf_theta", "hot_items",
                    "bandwidth_gbs", "avg_latency_ns", "max_latency_ns",
                    "energy_pj"});
    for (const Hotspot &h : hotspots) {
        if (!opts.wantsWorkload(h.filterAs))
            continue;
        WorkloadRunSpec spec;
        spec.workload.type = h.domain != nullptr ? "zipf" : "gups";
        if (h.domain != nullptr) {
            spec.workload.zipfDomain = h.domain;
            spec.workload.zipfTheta = h.theta;
            spec.workload.zipfHotItems = h.hotItems;
        }
        spec.workload.requestBytes = 64;
        spec.activePorts = 9;
        spec.warmup = warmup;
        spec.window = window;
        const ExperimentResult r = runWorkload(wide, spec);
        csv2.row()
            .cell(h.name)
            .cell(h.theta, 2)
            .cell(h.hotItems)
            .cell(r.bandwidthGBs, 2)
            .cell(r.avgReadLatencyNs, 0)
            .cell(r.maxReadLatencyNs, 0)
            .cell(r.energyPj, 0);
        rep.measured(std::string(h.name) + " bandwidth", r.bandwidthGBs,
                     "GB/s");
    }
    csv2.finish();
    rep.note("aggregate bandwidth holds (FR-FCFS turns hot blocks "
             "into row-hit streams) but the latency tail stretches "
             "~1.3-1.6x as the skewed queues deepen -- the asymmetric "
             "load the chain/thermal studies build on");
    return 0;
}
