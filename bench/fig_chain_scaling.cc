/**
 * @file
 * Multi-cube chaining: capacity scaling vs. added hop latency -- the
 * chained analogue of the paper's Fig. 6/8 bandwidth-latency story.
 *
 * Part 1 sweeps 1/2/4/8 cubes x topology under full GUPS load
 * (capacity grows linearly; bandwidth stays host-link-bound for
 * chains, so the trade is capacity for hop latency).  Part 2 confines
 * a single low-load stream to each cube of a daisy chain and fits the
 * per-hop latency, checking it against the configured pass-through +
 * SerDes + wire delays.  Bisection bandwidth per topology is derived
 * from the route tables.
 */

#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/report.h"
#include "bench_util.h"
#include "chain/route_table.h"
#include "common/csv.h"
#include "common/units.h"
#include "host/experiment.h"
#include "host/system.h"

using namespace hmcsim;
using namespace hmcsim::bench;

namespace {

SystemConfig
chainConfig(std::uint32_t cubes, const std::string &topology)
{
    SystemConfig cfg;
    cfg.hmc.chain.numCubes = cubes;
    cfg.hmc.chain.topology = topology;
    if (topology == "star" && cfg.hmc.numLinks < cubes)
        cfg.hmc.numLinks = cubes;
    bench::applyObsEnv(cfg.obs);
    return cfg;
}

double
lowLoadLatencyToCube(const SystemConfig &cfg, CubeId cube, Tick warmup,
                     Tick window)
{
    System sys(cfg);
    Rng rng(1234 + cube);
    StreamPortSpec sp;
    sp.trace = makeRandomTrace(rng, sys.addressMap().cubePattern(cube),
                               cfg.hmc.totalCapacityBytes(), 512, 32);
    sp.loop = true;
    sp.batchSize = 1;
    sys.configureStreamPort(0, sp);
    sys.run(warmup);
    return sys.measure(window).avgReadLatencyNs;
}

}  // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parseBenchArgs(argc, argv);
    (void)opts;
    const bool fast = fastMode();
    const Tick warmup = scaled(fast ? 2 : 6) * kMicrosecond;
    const Tick window = scaled(fast ? 5 : 16) * kMicrosecond;

    std::cout << "chain scaling: capacity and hop latency vs cube count "
                 "and topology\n";
    bench::CsvOutput csv_out("fig_chain_scaling");
    CsvWriter csv(csv_out.stream(),
                  {"topology", "num_cubes", "capacity_gb", "bandwidth_gbs",
                   "avg_latency_ns", "avg_chain_hops",
                   "bisection_gbs"});

    const std::vector<std::uint32_t> cube_counts =
        fast ? std::vector<std::uint32_t>{1, 4}
             : std::vector<std::uint32_t>{1, 2, 4, 8};

    // Part 1: saturated GUPS load across the whole cube network.
    double daisy1_bw = 0.0, daisy1_lat = 0.0;
    std::vector<double> daisy_bw, daisy_lat, daisy_hops;
    for (const char *topo : {"daisy", "ring", "star"}) {
        for (std::uint32_t cubes : cube_counts) {
            if (std::string(topo) == "star" && cubes > 4)
                continue;  // star needs one host link per cube (max 4)
            const SystemConfig cfg = chainConfig(cubes, topo);
            GupsSpec spec;
            spec.requestBytes = 64;
            spec.warmup = warmup;
            spec.window = window;
            const ExperimentResult r = runGups(cfg, spec);

            // Static metric: derivable from the route table alone.
            const ChainRouteTable rt(
                chainTopologyFromString(cfg.hmc.chain.topology), cubes);
            const double bisection = rt.bisectionLinkCount() *
                cfg.hmc.linkBandwidthGBsPerDirection();
            csv.row()
                .cell(topo)
                .cell(cubes)
                .cell(static_cast<double>(cfg.hmc.totalCapacityBytes()) /
                          (1ull << 30),
                      0)
                .cell(r.bandwidthGBs, 2)
                .cell(r.avgReadLatencyNs, 0)
                .cell(r.avgChainHops, 2)
                .cell(bisection, 1);
            if (std::string(topo) == "daisy") {
                daisy_bw.push_back(r.bandwidthGBs);
                daisy_lat.push_back(r.avgReadLatencyNs);
                daisy_hops.push_back(r.avgChainHops);
                if (cubes == 1) {
                    daisy1_bw = r.bandwidthGBs;
                    daisy1_lat = r.avgReadLatencyNs;
                }
            }
        }
    }
    csv.finish();

    // Part 2: per-cube latency decomposition on a 4-cube daisy chain.
    const SystemConfig daisy4 = chainConfig(4, "daisy");
    std::vector<double> lat;
    for (CubeId c = 0; c < 4; ++c)
        lat.push_back(lowLoadLatencyToCube(daisy4, c, warmup, window));

    Report rep(std::cout);
    rep.section("chain scaling shape checks");
    rep.measured("daisy capacity scaling (" +
                     std::to_string(cube_counts.back()) + "/1 cubes)",
                 static_cast<double>(
                     chainConfig(cube_counts.back(), "daisy")
                         .hmc.totalCapacityBytes()) /
                     static_cast<double>(
                         SystemConfig{}.hmc.totalCapacityBytes()),
                 "x");
    rep.measured("daisy bandwidth retained (N cubes / 1)",
                 daisy_bw.back() / daisy1_bw, "ratio");
    // Under saturation the hop cost can be hidden (or even inverted)
    // by the contention relief of spreading load over more vaults;
    // part 2 isolates the true per-hop latency at low load.
    rep.measured("saturated latency delta per hop",
                 daisy_hops.back() > 0.0
                     ? (daisy_lat.back() - daisy1_lat) / daisy_hops.back()
                     : 0.0,
                 "ns");

    // Expected one-hop round trip: store-and-forward pass-through plus
    // SerDes pipeline and wire, both directions (serialization of the
    // 1-flit request and 3-flit response is sub-2 ns at 15 Gbps x 8).
    const double expected_hop_ns =
        2.0 * ticksToNs(daisy4.hmc.chain.passThroughLatency +
                        daisy4.hmc.serdesLatency +
                        daisy4.hmc.linkWireLatency);
    double worst_rel_err = 0.0;
    for (CubeId c = 1; c < 4; ++c) {
        const double per_hop = (lat[c] - lat[0]) / c;
        rep.measured("low-load hop latency via cube " + std::to_string(c),
                     per_hop, "ns");
        worst_rel_err = std::max(
            worst_rel_err,
            std::abs(per_hop - expected_hop_ns) / expected_hop_ns);
    }
    rep.measured("expected per-hop (2x passthrough+serdes+wire)",
                 expected_hop_ns, "ns");
    rep.measured("worst relative error vs expected", worst_rel_err,
                 "frac");
    rep.note("capacity scales linearly with cubes; chained bandwidth "
             "stays bound by the host links while star splits them");

    // Per-cube share under the saturated 4-cube daisy run.
    GupsSpec spec;
    spec.requestBytes = 64;
    spec.warmup = warmup;
    spec.window = window;
    const ExperimentResult r4 = runGups(chainConfig(4, "daisy"), spec);
    rep.section("4-cube daisy per-cube breakdown");
    std::uint64_t total_served = 0;
    for (const CubeStats &cs : r4.cubes)
        total_served += cs.requestsServed;
    for (const CubeStats &cs : r4.cubes) {
        rep.perCube(cs.cube, cs.requestsServed, cs.requestHops,
                    total_served
                        ? 100.0 * static_cast<double>(cs.requestsServed) /
                            static_cast<double>(total_served)
                        : 0.0);
    }

    // Part 3: static vs adaptive routing under a cube-skewed zipf
    // hotspot, open loop.  The skew concentrates flows on the near
    // cubes so the ring's clockwise entry path congests while the wrap
    // side idles; bursty injection makes the congestion transient --
    // the regime where occupancy-driven tie-splitting and bounded
    // misroutes trim the tail without wasting capacity on detours.
    // Small link-token pools keep the interior backpressure visible
    // (the signal the adaptive policy reads).  Offered-vs-accepted and
    // p99 quantify the win.  The daisy rows isolate the entry-link
    // spreading component: a daisy chain has no path diversity, so
    // switch-level deviations/misroutes stay zero and any delta comes
    // from the congestion-aware entry-link pick alone.
    {
        bench::CsvOutput routing_out("fig_chain_routing");
        CsvWriter rcsv(routing_out.stream(),
                       {"topology", "routing", "offered_per_ns",
                        "accepted_per_ns", "avg_latency_ns",
                        "p99_latency_ns", "deviations", "misroutes",
                        "rx_hol_stalls"});
        rep.section(
            "static vs adaptive chain routing (zipf cube hotspot)");
        for (const char *topo : {"ring", "daisy"}) {
            double acc[2] = {0.0, 0.0};
            double p99[2] = {0.0, 0.0};
            int idx = 0;
            for (const char *routing : {"static", "adaptive"}) {
                SystemConfig cfg = chainConfig(4, topo);
                cfg.hmc.chain.routing = routing;
                cfg.hmc.linkTokens = 32;
                cfg.host.tagsPerPort = 128;
                WorkloadRunSpec wr;
                wr.workload.type = "zipf";
                wr.workload.zipfDomain = "cube";
                wr.workload.zipfTheta = 0.9;
                wr.workload.requestBytes = 64;
                wr.workload.writeFraction = 0.5;
                wr.workload.inject = "open";
                wr.workload.ratePerNs = 0.018;
                wr.workload.burstiness = 64.0;
                wr.activePorts = 9;
                wr.warmup = warmup;
                wr.window = window;
                // 50 ns bins: p99 sits around 4-5 us here, so the
                // bin quantization stays ~1% of the measured value.
                wr.latencyHistBins = 800;
                wr.latencyHistLoNs = 0.0;
                wr.latencyHistHiNs = 40000.0;
                const ExperimentResult rr = runWorkload(cfg, wr);
                acc[idx] = rr.acceptedPerNs();
                p99[idx] = rr.p99ReadLatencyNs;
                ++idx;
                rcsv.row()
                    .cell(topo)
                    .cell(routing)
                    .cell(rr.offeredPerNs(), 4)
                    .cell(rr.acceptedPerNs(), 4)
                    .cell(rr.avgReadLatencyNs, 0)
                    .cell(rr.p99ReadLatencyNs, 0)
                    .cell(static_cast<double>(rr.totalAdaptiveDeviations),
                          0)
                    .cell(static_cast<double>(rr.totalChainMisroutes), 0)
                    .cell(static_cast<double>(rr.totalRxHolStalls), 0);
            }
            rep.measured(std::string(topo) +
                             " accepted throughput (adaptive/static)",
                         acc[0] > 0.0 ? acc[1] / acc[0] : 0.0, "ratio");
            rep.measured(std::string(topo) + " p99 latency "
                                             "(adaptive/static)",
                         p99[0] > 0.0 ? p99[1] / p99[0] : 0.0, "ratio");
        }
        rcsv.finish();
        rep.note("switch-level adaptivity needs path diversity: the "
                 "ring splits tie traffic across both directions, "
                 "while the daisy rows carry only the entry-link "
                 "spread (deviations and misroutes stay zero)");
    }
    return 0;
}
