/**
 * @file
 * Ablation: address-mapping scheme.  The paper's insight (Section
 * IV-F) is that the vault-then-bank low-order interleave dodges the
 * per-vault bandwidth bottleneck for spatially local traffic; the
 * bank-then-vault alternative funnels consecutive blocks into one
 * vault and should collapse to the ~10 GB/s vault cap.
 */

#include <iostream>

#include "analysis/paper_ref.h"
#include "analysis/report.h"
#include "bench_util.h"
#include "common/csv.h"
#include "host/experiment.h"
#include "host/system.h"

using namespace hmcsim;
using namespace hmcsim::bench;

namespace {

ExperimentResult
run(const SystemConfig &cfg, bool hot_region, Tick warmup, Tick window)
{
    System sys(cfg);
    Rng rng(99);
    for (PortId p = 0; p < 9; ++p) {
        StreamPortSpec sp;
        if (hot_region) {
            // All ports hammer one hot 2 KB buffer (half an OS page)
            // with 128 B accesses.  Under the spec's vault-then-bank
            // interleave those 16 blocks stripe over all 16 vaults;
            // under bank-then-vault they collapse into a single vault
            // and hit its 10 GB/s internal ceiling.
            const AddressPattern hot{0x7FF, 0};
            sp.trace = makeRandomTrace(rng, hot, cfg.hmc.totalCapacityBytes(),
                                       8192, 128);
        } else {
            sp.trace = makeRandomTrace(
                rng, sys.addressMap().pattern(16, 16),
                cfg.hmc.totalCapacityBytes(), 8192, 128);
        }
        sp.loop = true;
        sys.configureStreamPort(p, sp);
    }
    sys.run(warmup);
    return sys.measure(window);
}

}  // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parseBenchArgs(argc, argv);
    (void)opts;
    const Tick warmup = scaled(fastMode() ? 4 : 10) * kMicrosecond;
    const Tick window = scaled(fastMode() ? 8 : 25) * kMicrosecond;

    std::cout << "Ablation: address interleaving scheme\n";
    bench::CsvOutput csv_out("ablation_mapping");
    CsvWriter csv(csv_out.stream(), {"map_scheme", "workload", "bandwidth_gbs",
                              "avg_latency_ns"});
    double seq_vault_first = 0.0, seq_bank_first = 0.0;
    for (const char *scheme : {"vault_then_bank", "bank_then_vault"}) {
        for (bool hot_region : {true, false}) {
            SystemConfig cfg;
            cfg.hmc.mapScheme = scheme;
            const ExperimentResult r =
                run(cfg, hot_region, warmup, window);
            csv.row()
                .cell(scheme)
                .cell(hot_region ? "hot_2kb" : "random")
                .cell(r.bandwidthGBs, 2)
                .cell(r.avgReadLatencyNs, 0);
            if (hot_region) {
                (std::string(scheme) == "vault_then_bank"
                     ? seq_vault_first
                     : seq_bank_first) = r.bandwidthGBs;
            }
        }
    }
    csv.finish();

    Report rep(std::cout);
    rep.section("hot-buffer interleave comparison");
    rep.measured("vault-then-bank (spec Fig. 3)", seq_vault_first,
                 "GB/s");
    rep.measured("bank-then-vault (ablation)", seq_bank_first, "GB/s");
    rep.measured("interleave advantage",
                 seq_vault_first / seq_bank_first, "x");
    rep.compare("bank-then-vault collapses toward the vault cap",
                paper::kFig6VaultCapGBs, seq_bank_first, "GB/s");
    return 0;
}
