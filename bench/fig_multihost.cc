/**
 * @file
 * Multi-host chain fabric: dual-host rings vs the classic single-host
 * attachment at matched total offered load.
 *
 * A single host funnels every request through cube 0's two links and
 * one response deserializer; the paper's host-link scaling story
 * (Fig. 13) says throughput grows with the links driving the cube.
 * Attaching a second host controller at the far side of the ring
 * doubles the attachment width AND halves the average transit
 * distance, so at a total offered load above one host's ceiling the
 * dual-host fabric accepts more, at lower latency, while moving less
 * transit traffic across the bisection.  The sweep crosses topology
 * (ring, daisy) x host count (1, 2) x chain routing (static,
 * adaptive); the CSV carries total, per-host and per-cube rows.
 */

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "analysis/report.h"
#include "bench_util.h"
#include "common/csv.h"
#include "common/units.h"
#include "host/experiment.h"
#include "host/system.h"

using namespace hmcsim;
using namespace hmcsim::bench;

namespace {

constexpr std::uint32_t kCubes = 4;
constexpr std::uint32_t kPortsPerHost = 9;
/** Total offered load, req/ns: above one deserializer-limited host's
 *  acceptance ceiling (~0.19 req/ns), below two hosts'. */
constexpr double kTotalOfferedPerNs = 0.26;

SystemConfig
fabricConfig(const std::string &topology, std::uint32_t hosts,
             const std::string &routing)
{
    SystemConfig cfg;
    cfg.hmc.chain.numCubes = kCubes;
    cfg.hmc.chain.topology = topology;
    cfg.hmc.chain.routing = routing;
    cfg.host.numHosts = hosts;
    return cfg;
}

}  // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parseBenchArgs(argc, argv);
    (void)opts;
    const bool fast = fastMode();
    const Tick warmup = scaled(fast ? 3 : 8) * kMicrosecond;
    const Tick window = scaled(fast ? 8 : 24) * kMicrosecond;

    std::cout << "multi-host chain fabric: dual-host vs single-host at "
                 "matched offered load\n";
    bench::CsvOutput csv_out("fig_multihost");
    CsvWriter csv(csv_out.stream(),
                  {"topology", "routing", "num_hosts", "scope",
                   "offered_per_ns", "accepted_per_ns", "bandwidth_gbs",
                   "avg_latency_ns", "p99_latency_ns", "transit_gbs",
                   "bisection_gbs", "bisection_util"});

    // accepted[topology][hosts][routing]
    std::map<std::string, std::map<std::uint32_t,
                                   std::map<std::string, double>>> acc;
    std::map<std::string, std::map<std::uint32_t,
                                   std::map<std::string, double>>> p99;

    for (const char *topo : {"ring", "daisy"}) {
        for (std::uint32_t hosts : {1u, 2u}) {
            for (const char *routing : {"static", "adaptive"}) {
                const SystemConfig cfg =
                    fabricConfig(topo, hosts, routing);
                WorkloadRunSpec wr;
                wr.workload.type = "gups";
                wr.workload.requestBytes = 64;
                wr.workload.inject = "open";
                // Matched TOTAL offered load across the sweep: the
                // runner replicates the spec onto every host, so the
                // per-port rate shrinks with the host count.
                wr.workload.ratePerNs = kTotalOfferedPerNs /
                    (hosts * kPortsPerHost);
                wr.activePorts = kPortsPerHost;
                wr.warmup = warmup;
                wr.window = window;
                wr.latencyHistBins = 800;
                wr.latencyHistLoNs = 0.0;
                wr.latencyHistHiNs = 40000.0;
                const ExperimentResult r = runWorkload(cfg, wr);
                acc[topo][hosts][routing] = r.acceptedPerNs();
                p99[topo][hosts][routing] = r.p99ReadLatencyNs;

                const double window_ns =
                    static_cast<double>(r.windowTicks) * 1e-3;
                const double util = r.chainBisectionGBs > 0.0
                    ? r.chainBisectionTrafficGBs() / r.chainBisectionGBs
                    : 0.0;
                csv.row()
                    .cell(topo)
                    .cell(routing)
                    .cell(hosts)
                    .cell("total")
                    .cell(r.offeredPerNs(), 4)
                    .cell(r.acceptedPerNs(), 4)
                    .cell(r.bandwidthGBs, 2)
                    .cell(r.avgReadLatencyNs, 0)
                    .cell(r.p99ReadLatencyNs, 0)
                    .cell(r.chainTransitGBs(), 2)
                    .cell(r.chainBisectionGBs, 1)
                    .cell(util, 3);
                for (const HostStats &hs : r.hosts) {
                    csv.row()
                        .cell(topo)
                        .cell(routing)
                        .cell(hosts)
                        .cell("host" + std::to_string(hs.host) +
                              "@cube" + std::to_string(hs.entryCube))
                        .cell(hs.offeredRequests / window_ns, 4)
                        .cell(static_cast<double>(hs.reads + hs.writes) /
                                  window_ns,
                              4)
                        .cell(hs.bandwidthGBs, 2)
                        .cell(hs.avgReadNs, 0)
                        .cell(0.0, 0)
                        .cell(0.0, 2)
                        .cell(0.0, 1)
                        .cell(0.0, 3);
                }
                for (const CubeStats &cs : r.cubes) {
                    csv.row()
                        .cell(topo)
                        .cell(routing)
                        .cell(hosts)
                        .cell("cube" + std::to_string(cs.cube))
                        .cell(0.0, 4)
                        .cell(static_cast<double>(cs.requestsServed) /
                                  window_ns,
                              4)
                        .cell(0.0, 2)
                        .cell(0.0, 0)
                        .cell(0.0, 0)
                        .cell(0.0, 2)
                        .cell(0.0, 1)
                        .cell(0.0, 3);
                }
            }
        }
    }
    csv.finish();

    Report rep(std::cout);
    rep.section("dual-host vs single-host at matched offered load");
    for (const char *topo : {"ring", "daisy"}) {
        rep.measured(std::string(topo) +
                         " accepted throughput (2 hosts / 1 host)",
                     acc[topo][1]["static"] > 0.0
                         ? acc[topo][2]["static"] / acc[topo][1]["static"]
                         : 0.0,
                     "ratio");
        rep.measured(std::string(topo) + " p99 latency (2 hosts / 1)",
                     p99[topo][1]["static"] > 0.0
                         ? p99[topo][2]["static"] / p99[topo][1]["static"]
                         : 0.0,
                     "ratio");
    }
    rep.measured("dual ring p99 (adaptive/static)",
                 p99["ring"][2]["static"] > 0.0
                     ? p99["ring"][2]["adaptive"] / p99["ring"][2]["static"]
                     : 0.0,
                 "ratio");
    rep.note("one host funnels everything through cube 0's links and "
             "one deserializer; the second entry point doubles the "
             "attachment width and halves transit distances");

    // Per-host balance of the dual-host ring (static), reproduced at
    // report scale for the console.
    {
        const SystemConfig cfg = fabricConfig("ring", 2, "static");
        WorkloadRunSpec wr;
        wr.workload.type = "gups";
        wr.workload.requestBytes = 64;
        wr.workload.inject = "open";
        wr.workload.ratePerNs =
            kTotalOfferedPerNs / (2 * kPortsPerHost);
        wr.activePorts = kPortsPerHost;
        wr.warmup = warmup;
        wr.window = window;
        const ExperimentResult r = runWorkload(cfg, wr);
        rep.section("dual-host ring per-host breakdown");
        for (const HostStats &hs : r.hosts)
            rep.perHost(hs.host, hs.entryCube, hs.reads + hs.writes,
                        hs.bandwidthGBs, hs.avgReadNs);
        std::uint64_t total_served = 0;
        for (const CubeStats &cs : r.cubes)
            total_served += cs.requestsServed;
        for (const CubeStats &cs : r.cubes) {
            rep.perCube(cs.cube, cs.requestsServed, cs.requestHops,
                        total_served
                            ? 100.0 *
                                static_cast<double>(cs.requestsServed) /
                                static_cast<double>(total_served)
                            : 0.0);
        }
    }
    return 0;
}
