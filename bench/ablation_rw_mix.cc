/**
 * @file
 * Read/write-mix sweep (paper Section IV-F): read-only traffic only
 * uses the response direction and write-only traffic only the request
 * direction of the full-duplex links; mixing them exploits both.
 */

#include <iostream>

#include "analysis/report.h"
#include "bench_util.h"
#include "common/csv.h"
#include "host/experiment.h"
#include "host/system.h"

using namespace hmcsim;
using namespace hmcsim::bench;

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parseBenchArgs(argc, argv);
    (void)opts;
    const SystemConfig cfg;
    const Tick warmup = scaled(fastMode() ? 4 : 10) * kMicrosecond;
    const Tick window = scaled(fastMode() ? 8 : 25) * kMicrosecond;

    std::cout << "Read/write mix vs bi-directional link usage (128 B "
                 "requests, 9 ports)\n";
    bench::CsvOutput csv_out("ablation_rw_mix");
    CsvWriter csv(csv_out.stream(),
                  {"write_port_fraction", "bandwidth_gbs",
                   "down_link_flits", "up_link_flits",
                   "down_up_balance"});

    double best_mixed = 0.0, read_only = 0.0;
    for (double frac : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        System sys(cfg);
        const std::uint32_t writers =
            static_cast<std::uint32_t>(frac * 9 + 0.5);
        for (PortId p = 0; p < 9; ++p) {
            GupsPortSpec gp;
            gp.kind = p < writers ? ReqKind::WriteOnly
                                  : ReqKind::ReadOnly;
            gp.gen.pattern = sys.addressMap().pattern(16, 16);
            gp.gen.requestBytes = 128;
            gp.gen.capacity = cfg.hmc.totalCapacityBytes();
            gp.gen.seed = 71 + p;
            sys.configureGupsPort(p, gp);
        }
        sys.run(warmup);
        const ExperimentResult r = sys.measure(window);
        std::uint64_t down = 0, up = 0;
        for (LinkId l = 0; l < 2; ++l) {
            down += sys.device().link(l).flitsSent(LinkDir::HostToCube);
            up += sys.device().link(l).flitsSent(LinkDir::CubeToHost);
        }
        const double balance = down && up
            ? static_cast<double>(std::min(down, up)) /
                static_cast<double>(std::max(down, up))
            : 0.0;
        csv.row()
            .cell(frac, 2)
            .cell(r.bandwidthGBs, 2)
            .cell(down)
            .cell(up)
            .cell(balance, 3);
        if (frac == 0.0)
            read_only = r.bandwidthGBs;
        best_mixed = std::max(best_mixed, r.bandwidthGBs);
    }
    csv.finish();

    Report rep(std::cout);
    rep.section("asymmetry check");
    rep.measured("read-only bandwidth", read_only, "GB/s");
    rep.measured("best mixed bandwidth", best_mixed, "GB/s");
    rep.measured("mixing gain", best_mixed / read_only, "x");
    rep.note("paper: applications should balance reads and writes to "
             "use both link directions (Section IV-F)");
    return 0;
}
