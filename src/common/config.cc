#include "common/config.h"

#include <fstream>
#include <sstream>

#include "common/log.h"
#include "common/strutil.h"

namespace hmcsim {

void
Config::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

void
Config::setU64(const std::string &key, std::uint64_t value)
{
    values_[key] = std::to_string(value);
}

void
Config::setDouble(const std::string &key, double value)
{
    std::ostringstream oss;
    oss.precision(17);
    oss << value;
    values_[key] = oss.str();
}

void
Config::setBool(const std::string &key, bool value)
{
    values_[key] = value ? "true" : "false";
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

bool
Config::erase(const std::string &key)
{
    return values_.erase(key) != 0;
}

const std::string *
Config::find(const std::string &key) const
{
    auto it = values_.find(key);
    return it == values_.end() ? nullptr : &it->second;
}

std::string
Config::getString(const std::string &key) const
{
    const std::string *v = find(key);
    if (!v)
        fatal("config: missing required key '" + key + "'");
    return *v;
}

std::string
Config::getString(const std::string &key, const std::string &fallback) const
{
    const std::string *v = find(key);
    return v ? *v : fallback;
}

std::uint64_t
Config::getU64(const std::string &key) const
{
    std::uint64_t out = 0;
    if (!parseU64(getString(key), out))
        fatal("config: key '" + key + "' is not an unsigned integer");
    return out;
}

std::uint64_t
Config::getU64(const std::string &key, std::uint64_t fallback) const
{
    const std::string *v = find(key);
    if (!v)
        return fallback;
    std::uint64_t out = 0;
    if (!parseU64(*v, out))
        fatal("config: key '" + key + "' is not an unsigned integer");
    return out;
}

std::int64_t
Config::getI64(const std::string &key, std::int64_t fallback) const
{
    const std::string *v = find(key);
    if (!v)
        return fallback;
    std::int64_t out = 0;
    if (!parseI64(*v, out))
        fatal("config: key '" + key + "' is not an integer");
    return out;
}

double
Config::getDouble(const std::string &key) const
{
    double out = 0.0;
    if (!parseDouble(getString(key), out))
        fatal("config: key '" + key + "' is not a number");
    return out;
}

double
Config::getDouble(const std::string &key, double fallback) const
{
    const std::string *v = find(key);
    if (!v)
        return fallback;
    double out = 0.0;
    if (!parseDouble(*v, out))
        fatal("config: key '" + key + "' is not a number");
    return out;
}

bool
Config::getBool(const std::string &key) const
{
    bool out = false;
    if (!parseBool(getString(key), out))
        fatal("config: key '" + key + "' is not a boolean");
    return out;
}

bool
Config::getBool(const std::string &key, bool fallback) const
{
    const std::string *v = find(key);
    if (!v)
        return fallback;
    bool out = false;
    if (!parseBool(*v, out))
        fatal("config: key '" + key + "' is not a boolean");
    return out;
}

void
Config::parseString(const std::string &content)
{
    std::istringstream iss(content);
    std::string line;
    std::string section;
    int lineno = 0;
    while (std::getline(iss, line)) {
        ++lineno;
        // Strip comments starting at '#' or ';'.
        std::size_t hash = line.find_first_of("#;");
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        if (line.front() == '[') {
            if (line.back() != ']')
                fatal("config: malformed section header at line " +
                      std::to_string(lineno));
            section = trim(line.substr(1, line.size() - 2));
            continue;
        }
        std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            fatal("config: expected key=value at line " +
                  std::to_string(lineno));
        std::string key = trim(line.substr(0, eq));
        std::string value = trim(line.substr(eq + 1));
        if (key.empty())
            fatal("config: empty key at line " + std::to_string(lineno));
        if (!section.empty())
            key = section + "." + key;
        values_[key] = value;
    }
}

void
Config::parseFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("config: cannot open file '" + path + "'");
    std::ostringstream oss;
    oss << in.rdbuf();
    parseString(oss.str());
}

void
Config::applyOverrides(const std::vector<std::string> &overrides)
{
    for (const std::string &ov : overrides) {
        std::size_t eq = ov.find('=');
        if (eq == std::string::npos)
            fatal("config: override '" + ov + "' is not key=value");
        values_[trim(ov.substr(0, eq))] = trim(ov.substr(eq + 1));
    }
}

std::vector<std::string>
Config::keys() const
{
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto &kv : values_)
        out.push_back(kv.first);
    return out;
}

std::string
Config::toString() const
{
    std::ostringstream oss;
    for (const auto &kv : values_)
        oss << kv.first << " = " << kv.second << '\n';
    return oss.str();
}

void
Config::merge(const Config &other)
{
    for (const auto &kv : other.values_)
        values_[kv.first] = kv.second;
}

}  // namespace hmcsim
