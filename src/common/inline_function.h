/**
 * @file
 * Allocation-free std::function replacement for simulator hot paths.
 *
 * std::function heap-allocates any capture larger than its small
 * buffer (16 B on libstdc++) and pays a manager-function call on every
 * move and destroy.  The simulator's callback surfaces -- link
 * flow-control wakeups, RX-available notifications, the chain
 * forwarder -- fire millions of times per simulated second, and none
 * of their captures is larger than a few pointers, so paying
 * std::function's type-erasure overhead (and leaving an allocation
 * landmine for larger captures) buys nothing.
 *
 * InlineFunction<R(Args...), Capacity> stores the capture inline in a
 * fixed buffer and rejects anything bigger at compile time, so
 * assigning a callback never allocates and growing a capture past the
 * budget is a build error at the capture site, not a silent fallback
 * to malloc.  Instances are move-only; a move transfers the capture
 * and empties the source.
 *
 * The event queue's InlineEvent is the `void()` instantiation of this
 * template (see sim/inline_event.h for the capacity rationale there).
 */

#ifndef HMCSIM_COMMON_INLINE_FUNCTION_H_
#define HMCSIM_COMMON_INLINE_FUNCTION_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace hmcsim {

/**
 * Default inline capture capacity in bytes: four pointers, enough for
 * every callback capture in the tree today.  Instantiate with a larger
 * Capacity deliberately where a bigger capture is genuinely needed.
 */
constexpr std::size_t kInlineFunctionCapacity = 32;

template <typename Sig, std::size_t Capacity = kInlineFunctionCapacity>
class InlineFunction;  // undefined; only the R(Args...) partial
                       // specialization below exists

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity>
{
  public:
    InlineFunction() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFunction>>>
    InlineFunction(F &&fn)  // NOLINT: implicit, mirrors std::function
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= Capacity,
                      "callback capture exceeds this InlineFunction's "
                      "inline capacity; raise it deliberately");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "over-aligned callback capture");
        static_assert(std::is_nothrow_move_constructible_v<Fn>,
                      "callback captures must be nothrow-movable");
        static_assert(std::is_invocable_r_v<R, Fn &, Args...>,
                      "callable does not match this InlineFunction's "
                      "signature");
        new (buf_) Fn(std::forward<F>(fn));
        ops_ = &OpsFor<Fn>::ops;
    }

    InlineFunction(InlineFunction &&other) noexcept : ops_(other.ops_)
    {
        if (ops_) {
            ops_->relocate(buf_, other.buf_);
            other.ops_ = nullptr;
        }
    }

    InlineFunction &
    operator=(InlineFunction &&other) noexcept
    {
        if (this != &other) {
            if (ops_)
                ops_->destroy(buf_);
            ops_ = other.ops_;
            if (ops_) {
                ops_->relocate(buf_, other.buf_);
                other.ops_ = nullptr;
            }
        }
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction()
    {
        if (ops_)
            ops_->destroy(buf_);
    }

    /** True when a callable is held (mirrors std::function). */
    explicit operator bool() const { return ops_ != nullptr; }

    /** Invoke the capture.  Undefined on an empty function. */
    R
    operator()(Args... args)
    {
        return ops_->invoke(buf_, std::forward<Args>(args)...);
    }

  private:
    struct Ops {
        R (*invoke)(void *self, Args... args);
        /** Move-construct dst from src, then destroy src. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *self);
    };

    template <typename Fn>
    struct OpsFor {
        static R
        invoke(void *self, Args... args)
        {
            return (*static_cast<Fn *>(self))(
                std::forward<Args>(args)...);
        }
        static void
        relocate(void *dst, void *src)
        {
            Fn *s = static_cast<Fn *>(src);
            new (dst) Fn(std::move(*s));
            s->~Fn();
        }
        static void
        destroy(void *self)
        {
            static_cast<Fn *>(self)->~Fn();
        }
        static constexpr Ops ops{&invoke, &relocate, &destroy};
    };

    const Ops *ops_ = nullptr;
    alignas(std::max_align_t) unsigned char buf_[Capacity];
};

}  // namespace hmcsim

#endif  // HMCSIM_COMMON_INLINE_FUNCTION_H_
