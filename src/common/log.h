/**
 * @file
 * Logging and error reporting in the gem5 spirit: inform/warn for status,
 * fatal for user errors (clean exit), panic for internal invariant
 * violations (abort).
 */

#ifndef HMCSIM_COMMON_LOG_H_
#define HMCSIM_COMMON_LOG_H_

#include <stdexcept>
#include <string>

namespace hmcsim {

/** Severity of a log message. */
enum class LogLevel {
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
    Silent = 4,
};

/** Global log configuration. */
class Logger
{
  public:
    /** Set the minimum level that is emitted. */
    static void setLevel(LogLevel level);

    /** Current minimum level. */
    static LogLevel level();

    /** Emit a message at @p level with a severity prefix. */
    static void emit(LogLevel level, const std::string &msg);

    /**
     * Route messages into an internal buffer instead of stderr.
     * Used by unit tests to assert on log output.
     */
    static void captureBegin();

    /** Stop capturing and return everything captured. */
    static std::string captureEnd();
};

/** Status message for normal operation. */
void inform(const std::string &msg);

/** Something questionable happened but simulation can continue. */
void warn(const std::string &msg);

/** Exception carrying a fatal() message. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Exception carrying a panic() message. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/**
 * Unrecoverable user error (bad configuration, invalid arguments).
 * Throws FatalError so tests can assert on it; main() catches and exits.
 */
[[noreturn]] void fatal(const std::string &msg);

/** Internal invariant violation: a simulator bug. Throws PanicError. */
[[noreturn]] void panic(const std::string &msg);

/**
 * Hook invoked (once, before the exception is thrown) on every panic().
 * Used by the observability layer to dump the packet-trace flight
 * recorder as a crash diagnostic.  Passing nullptr clears it; the
 * previous hook is returned so scoped owners can restore it.
 */
using PanicHook = void (*)();
PanicHook setPanicHook(PanicHook hook);

}  // namespace hmcsim

#endif  // HMCSIM_COMMON_LOG_H_
