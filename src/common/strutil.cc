#include "common/strutil.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>

namespace hmcsim {

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(cur);
    return out;
}

std::vector<std::string>
splitWhitespace(const std::string &s)
{
    std::vector<std::string> out;
    std::istringstream iss(s);
    std::string tok;
    while (iss >> tok)
        out.push_back(tok);
    return out;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
        s.compare(0, prefix.size(), prefix) == 0;
}

std::string
toLower(const std::string &s)
{
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return out;
}

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    const std::string t = trim(s);
    if (t.empty() || t[0] == '-')
        return false;
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(t.c_str(), &end, 0);
    if (errno != 0 || end == t.c_str() || *end != '\0')
        return false;
    out = static_cast<std::uint64_t>(v);
    return true;
}

bool
parseI64(const std::string &s, std::int64_t &out)
{
    const std::string t = trim(s);
    if (t.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    long long v = std::strtoll(t.c_str(), &end, 0);
    if (errno != 0 || end == t.c_str() || *end != '\0')
        return false;
    out = static_cast<std::int64_t>(v);
    return true;
}

bool
parseDouble(const std::string &s, double &out)
{
    const std::string t = trim(s);
    if (t.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(t.c_str(), &end);
    if (errno != 0 || end == t.c_str() || *end != '\0')
        return false;
    out = v;
    return true;
}

bool
parseBool(const std::string &s, bool &out)
{
    const std::string t = toLower(trim(s));
    if (t == "true" || t == "1" || t == "yes" || t == "on") {
        out = true;
        return true;
    }
    if (t == "false" || t == "0" || t == "no" || t == "off") {
        out = false;
        return true;
    }
    return false;
}

std::string
formatDouble(double v, int precision)
{
    std::ostringstream oss;
    oss.setf(std::ios::fixed);
    oss.precision(precision);
    oss << v;
    return oss.str();
}

}  // namespace hmcsim
