#include "common/rng.h"

#include "common/log.h"

namespace hmcsim {

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
mixSeeds(std::uint64_t base, std::uint64_t stream)
{
    // The stream-th output of the splitmix64 sequence anchored at
    // base: jump the state directly (splitmix64 advances by the golden
    // gamma each step), then mix once.
    std::uint64_t state = base + stream * 0x9E3779B97F4A7C15ull;
    return splitmix64(state);
}

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(std::uint64_t seed_value)
{
    std::uint64_t sm = seed_value;
    for (auto &s : s_)
        s = splitmix64(sm);
    // A zero state would be absorbing; splitmix64 cannot produce four
    // zeros from any seed, but keep the invariant explicit.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    if (bound == 0)
        panic("Rng::nextBelow called with bound == 0");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
    std::uint64_t v = next();
    while (v >= limit)
        v = next();
    return v % bound;
}

std::uint64_t
Rng::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    if (lo > hi)
        panic("Rng::nextRange called with lo > hi");
    const std::uint64_t span = hi - lo;
    if (span == ~std::uint64_t{0})
        return next();
    return lo + nextBelow(span + 1);
}

double
Rng::nextDouble()
{
    // 53 random mantissa bits.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

}  // namespace hmcsim
