/**
 * @file
 * Minimal CSV table writer used by the benchmark harnesses to emit the
 * paper's figure series in a plot-ready form.
 */

#ifndef HMCSIM_COMMON_CSV_H_
#define HMCSIM_COMMON_CSV_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace hmcsim {

class CsvWriter
{
  public:
    /** Writes to @p out (not owned); header is emitted on first row. */
    CsvWriter(std::ostream &out, std::vector<std::string> columns);

    /** Begin a new row; previous row (if open) is flushed first. */
    CsvWriter &row();

    CsvWriter &cell(const std::string &v);
    CsvWriter &cell(const char *v);
    CsvWriter &cell(double v, int precision = 3);
    CsvWriter &cell(std::uint64_t v);
    CsvWriter &cell(std::int64_t v);
    CsvWriter &cell(int v);

    CsvWriter &
    cell(std::uint32_t v)
    {
        return cell(static_cast<std::uint64_t>(v));
    }

    /** Flush any open row. Called by the destructor too. */
    void finish();

    ~CsvWriter();

    CsvWriter(const CsvWriter &) = delete;
    CsvWriter &operator=(const CsvWriter &) = delete;

    /** Quote a value per RFC 4180 if it contains separators/quotes. */
    static std::string escape(const std::string &v);

  private:
    std::ostream &out_;
    std::vector<std::string> columns_;
    std::vector<std::string> current_;
    bool headerWritten_ = false;
    bool rowOpen_ = false;

    void flushRow();
};

}  // namespace hmcsim

#endif  // HMCSIM_COMMON_CSV_H_
