/**
 * @file
 * Typed key-value configuration store with INI-style file parsing and
 * "key=value" command-line overrides.
 *
 * Keys are dotted paths such as "hmc.num_vaults" or "host.num_ports".
 * Section headers in files ("[hmc]") become key prefixes.  All values are
 * stored as strings and converted on access with full validation; a
 * malformed value is a user error and raises fatal().
 */

#ifndef HMCSIM_COMMON_CONFIG_H_
#define HMCSIM_COMMON_CONFIG_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hmcsim {

class Config
{
  public:
    Config() = default;

    /** Set (or overwrite) a key. */
    void set(const std::string &key, const std::string &value);
    void setU64(const std::string &key, std::uint64_t value);
    void setDouble(const std::string &key, double value);
    void setBool(const std::string &key, bool value);

    /** True if @p key is present. */
    bool has(const std::string &key) const;

    /** Remove a key; returns true if it existed. */
    bool erase(const std::string &key);

    /**
     * Typed getters.  The no-default overloads raise fatal() on a
     * missing key; all of them raise fatal() on a malformed value.
     */
    std::string getString(const std::string &key) const;
    std::string getString(const std::string &key,
                          const std::string &fallback) const;
    std::uint64_t getU64(const std::string &key) const;
    std::uint64_t getU64(const std::string &key,
                         std::uint64_t fallback) const;
    std::int64_t getI64(const std::string &key, std::int64_t fallback) const;
    double getDouble(const std::string &key) const;
    double getDouble(const std::string &key, double fallback) const;
    bool getBool(const std::string &key) const;
    bool getBool(const std::string &key, bool fallback) const;

    /**
     * Parse INI-style content.  Supports [section] headers, '#' and ';'
     * comments, and key = value lines.  Later keys overwrite earlier ones.
     */
    void parseString(const std::string &content);

    /** Parse a file; raises fatal() if it cannot be opened. */
    void parseFile(const std::string &path);

    /**
     * Apply "key=value" overrides (e.g. from argv).  Entries without '='
     * raise fatal().
     */
    void applyOverrides(const std::vector<std::string> &overrides);

    /** All keys in sorted order (for dumps and diffing). */
    std::vector<std::string> keys() const;

    /** Render the whole config as sorted "key = value" lines. */
    std::string toString() const;

    /** Merge @p other into this config; other's keys win. */
    void merge(const Config &other);

  private:
    std::map<std::string, std::string> values_;

    const std::string *find(const std::string &key) const;
};

}  // namespace hmcsim

#endif  // HMCSIM_COMMON_CONFIG_H_
