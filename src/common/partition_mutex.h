/**
 * @file
 * The capability objects guarding the simulator's shared state.
 *
 * PartitionMutex is the lock type named by the thread-safety
 * annotations on per-partition mutable state (event queue, trace ring
 * shard, metrics set).  It is deliberately NOT a real mutex, even
 * under the partitioned-parallel core: the core's design gives every
 * such object exactly one executing thread per lookahead window (a
 * partition's queue and clock belong to one worker; a trace shard to
 * one partition; cross-partition readers only run at quiescent
 * barriers), so lock()/unlock() compile to nothing in release builds
 * and to a single-owner re-entrancy assertion in debug builds.  The
 * assertion is the contract that matters: any path that re-acquires a
 * capability it already holds (e.g. an event callback scheduling from
 * inside the queue's locked region) would deadlock if the mutex were
 * real, so it fails fast now.
 *
 * RealMutex is the annotated wrapper over std::mutex for the few
 * surfaces the parallel core genuinely shares across threads at the
 * same instant: partition mailboxes and the packet pool's registry /
 * orphan bins.  It exists because clang's thread-safety analysis can
 * only track capabilities that carry the attribute -- a bare
 * std::mutex would silence the GUARDED_BY checks.
 */

#ifndef HMCSIM_COMMON_PARTITION_MUTEX_H_
#define HMCSIM_COMMON_PARTITION_MUTEX_H_

#include <cassert>
#include <mutex>

#include "common/thread_annotations.h"

namespace hmcsim {

class HMCSIM_CAPABILITY("partition mutex") PartitionMutex
{
  public:
    PartitionMutex() = default;

    PartitionMutex(const PartitionMutex &) = delete;
    PartitionMutex &operator=(const PartitionMutex &) = delete;

    void
    lock() HMCSIM_ACQUIRE()
    {
#ifndef NDEBUG
        assert(!held_ && "PartitionMutex: re-entrant acquire -- this "
                         "path deadlocks under the parallel core");
        held_ = true;
#endif
    }

    void
    unlock() HMCSIM_RELEASE()
    {
#ifndef NDEBUG
        assert(held_ && "PartitionMutex: unlock without lock");
        held_ = false;
#endif
    }

  private:
#ifndef NDEBUG
    bool held_ = false;
#endif
};

/** RAII guard for a PartitionMutex. */
class HMCSIM_SCOPED_CAPABILITY PartitionLock
{
  public:
    explicit PartitionLock(PartitionMutex &mu) HMCSIM_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }

    ~PartitionLock() HMCSIM_RELEASE() { mu_.unlock(); }

    PartitionLock(const PartitionLock &) = delete;
    PartitionLock &operator=(const PartitionLock &) = delete;

  private:
    PartitionMutex &mu_;
};

/** Annotated real mutex for surfaces that genuinely cross threads
 *  (mailboxes, the packet pool registry). */
class HMCSIM_CAPABILITY("mutex") RealMutex
{
  public:
    RealMutex() = default;

    RealMutex(const RealMutex &) = delete;
    RealMutex &operator=(const RealMutex &) = delete;

    void lock() HMCSIM_ACQUIRE() { mu_.lock(); }
    void unlock() HMCSIM_RELEASE() { mu_.unlock(); }

  private:
    std::mutex mu_;
};

/** RAII guard for a RealMutex. */
class HMCSIM_SCOPED_CAPABILITY RealLock
{
  public:
    explicit RealLock(RealMutex &mu) HMCSIM_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }

    ~RealLock() HMCSIM_RELEASE() { mu_.unlock(); }

    RealLock(const RealLock &) = delete;
    RealLock &operator=(const RealLock &) = delete;

  private:
    RealMutex &mu_;
};

}  // namespace hmcsim

#endif  // HMCSIM_COMMON_PARTITION_MUTEX_H_
