/**
 * @file
 * The capability objects the per-cube partitions will lock.
 *
 * PartitionMutex is the lock type named by the thread-safety
 * annotations on the simulator's shared mutable state (event queue,
 * packet-pool freelist, metrics registry, trace ring buffer).  Until
 * the partitioned-parallel event core lands it is deliberately NOT a
 * real mutex: the simulator is single-threaded, so lock()/unlock()
 * compile to nothing in release builds and to a re-entrancy assertion
 * in debug builds.  The assertion is the contract that matters today:
 * any code path that tries to re-acquire a capability it already holds
 * (e.g. an event callback scheduling from inside the queue's locked
 * region) would deadlock the moment the mutex becomes real, so it
 * fails fast now.
 *
 * When the parallel core lands, this type grows a real lock
 * implementation behind the same annotated interface and every
 * annotated access site is already correct by construction.
 */

#ifndef HMCSIM_COMMON_PARTITION_MUTEX_H_
#define HMCSIM_COMMON_PARTITION_MUTEX_H_

#include <cassert>

#include "common/thread_annotations.h"

namespace hmcsim {

class HMCSIM_CAPABILITY("partition mutex") PartitionMutex
{
  public:
    PartitionMutex() = default;

    PartitionMutex(const PartitionMutex &) = delete;
    PartitionMutex &operator=(const PartitionMutex &) = delete;

    void
    lock() HMCSIM_ACQUIRE()
    {
#ifndef NDEBUG
        assert(!held_ && "PartitionMutex: re-entrant acquire -- this "
                         "path deadlocks under the parallel core");
        held_ = true;
#endif
    }

    void
    unlock() HMCSIM_RELEASE()
    {
#ifndef NDEBUG
        assert(held_ && "PartitionMutex: unlock without lock");
        held_ = false;
#endif
    }

  private:
#ifndef NDEBUG
    bool held_ = false;
#endif
};

/** RAII guard for a PartitionMutex. */
class HMCSIM_SCOPED_CAPABILITY PartitionLock
{
  public:
    explicit PartitionLock(PartitionMutex &mu) HMCSIM_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }

    ~PartitionLock() HMCSIM_RELEASE() { mu_.unlock(); }

    PartitionLock(const PartitionLock &) = delete;
    PartitionLock &operator=(const PartitionLock &) = delete;

  private:
    PartitionMutex &mu_;
};

}  // namespace hmcsim

#endif  // HMCSIM_COMMON_PARTITION_MUTEX_H_
