#include "common/log.h"

#include <iostream>
#include <sstream>

namespace hmcsim {

namespace {

LogLevel g_level = LogLevel::Warn;
bool g_capturing = false;
std::ostringstream g_capture;

const char *
prefixFor(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug: ";
      case LogLevel::Info: return "info: ";
      case LogLevel::Warn: return "warn: ";
      case LogLevel::Error: return "error: ";
      case LogLevel::Silent: return "";
    }
    return "";
}

}  // namespace

void
Logger::setLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
Logger::level()
{
    return g_level;
}

void
Logger::emit(LogLevel level, const std::string &msg)
{
    if (level < g_level)
        return;
    if (g_capturing) {
        g_capture << prefixFor(level) << msg << '\n';
    } else {
        std::cerr << prefixFor(level) << msg << '\n';
    }
}

void
Logger::captureBegin()
{
    g_capturing = true;
    g_capture.str("");
}

std::string
Logger::captureEnd()
{
    g_capturing = false;
    return g_capture.str();
}

void
inform(const std::string &msg)
{
    Logger::emit(LogLevel::Info, msg);
}

void
warn(const std::string &msg)
{
    Logger::emit(LogLevel::Warn, msg);
}

void
fatal(const std::string &msg)
{
    Logger::emit(LogLevel::Error, "fatal: " + msg);
    throw FatalError(msg);
}

namespace {
PanicHook g_panicHook = nullptr;
}  // namespace

PanicHook
setPanicHook(PanicHook hook)
{
    PanicHook prev = g_panicHook;
    g_panicHook = hook;
    return prev;
}

void
panic(const std::string &msg)
{
    Logger::emit(LogLevel::Error, "panic: " + msg);
    if (g_panicHook) {
        // Disarm before running: a hook that panics must not recurse.
        PanicHook hook = g_panicHook;
        g_panicHook = nullptr;
        hook();
        g_panicHook = hook;
    }
    throw PanicError(msg);
}

}  // namespace hmcsim
