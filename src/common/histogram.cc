#include "common/histogram.h"

#include "common/log.h"

namespace hmcsim {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi)
{
    if (bins == 0)
        panic("Histogram: bins must be >= 1");
    if (!(hi > lo))
        panic("Histogram: hi must be > lo");
    width_ = (hi - lo) / static_cast<double>(bins);
    counts_.assign(bins, 0);
}

double
Histogram::binLow(std::size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

double
Histogram::binCenter(std::size_t i) const
{
    return binLow(i) + width_ / 2.0;
}

std::uint64_t
Histogram::count(std::size_t i) const
{
    if (i >= counts_.size())
        panic("Histogram::count: bin out of range");
    return counts_[i];
}

double
Histogram::fraction(std::size_t i) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(count(i)) / static_cast<double>(total_);
}

double
Histogram::percentile(double p) const
{
    if (p < 0.0 || p > 100.0)
        panic("Histogram::percentile: p must be in [0, 100]");
    if (total_ == 0)
        return 0.0;
    const double target = p / 100.0 * static_cast<double>(total_);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        cum += counts_[i];
        if (static_cast<double>(cum) >= target && counts_[i] != 0)
            return binLow(i) + width_;
    }
    return hi_;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.counts_.size() != counts_.size() || other.lo_ != lo_ ||
        other.hi_ != hi_) {
        panic("Histogram::merge: shape mismatch");
    }
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    total_ += other.total_;
}

void
Histogram::reset()
{
    counts_.assign(counts_.size(), 0);
    total_ = 0;
}

}  // namespace hmcsim
