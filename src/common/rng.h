/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * We implement xoshiro256** seeded via splitmix64 rather than using
 * std::mt19937 so that results are bit-identical across standard
 * libraries, which keeps the benchmark outputs reproducible.
 */

#ifndef HMCSIM_COMMON_RNG_H_
#define HMCSIM_COMMON_RNG_H_

#include <cstdint>

namespace hmcsim {

/** splitmix64 step; used for seeding and hashing. */
std::uint64_t splitmix64(std::uint64_t &state);

/**
 * Derive a decorrelated per-stream seed from a shared base seed.
 *
 * "base + streamId" style derivation hands adjacent streams seeds that
 * differ in a couple of low bits, which correlates the early part of
 * small-state generators.  This returns the @p stream -th element of a
 * splitmix64 sequence anchored at @p base, so neighbouring stream ids
 * land on statistically independent seeds.
 */
std::uint64_t mixSeeds(std::uint64_t base, std::uint64_t stream);

/** xoshiro256** generator. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Re-seed in place. */
    void seed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform in [0, bound) without modulo bias; bound must be > 0. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform in [lo, hi] inclusive. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p. */
    bool nextBool(double p);

  private:
    std::uint64_t s_[4];
};

}  // namespace hmcsim

#endif  // HMCSIM_COMMON_RNG_H_
