/**
 * @file
 * Lightweight statistics primitives: event counters, streaming sample
 * statistics (Welford), and windowed rate measurement.  These back the
 * per-port monitoring logic that mirrors the paper's FPGA monitors.
 */

#ifndef HMCSIM_COMMON_STATS_H_
#define HMCSIM_COMMON_STATS_H_

#include <cstdint>
#include <limits>
#include <string>

#include "common/types.h"

namespace hmcsim {

/** Simple named monotonic counter. */
class Counter
{
  public:
    Counter() = default;

    void inc(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Streaming min/max/mean/variance over double samples using Welford's
 * online algorithm (numerically stable for long runs).
 */
class SampleStats
{
  public:
    SampleStats() { reset(); }

    /** Record one sample.  Inline: this sits on the per-transaction
     *  monitoring path.  The arithmetic is exactly Welford's update --
     *  do not reorder it, results are pinned bit-for-bit by tests. */
    void
    add(double x)
    {
        ++n_;
        sum_ += x;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        min_ = x < min_ ? x : min_;
        max_ = x > max_ ? x : max_;
    }

    /** Merge another accumulator into this one (parallel-combine rule). */
    void merge(const SampleStats &other);

    void reset();

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return sum_; }

    /** Population variance; 0 with fewer than 2 samples. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

  private:
    std::uint64_t n_;
    double mean_;
    double m2_;
    double min_;
    double max_;
    double sum_;
};

/**
 * Accumulates bytes over a measurement window and reports GB/s.
 * The window is [begin(), end()] in ticks.
 */
class RateStat
{
  public:
    RateStat() = default;

    /** Start the measurement window at @p now.  Calling begin() on an
     *  already-open window is a defined restart: the byte count and
     *  both window edges are cleared. */
    void begin(Tick now);

    /** Record @p bytes transferred. */
    void add(std::uint64_t bytes) { bytes_ += bytes; }

    /** Close the window at @p now.  Without a prior begin() this is a
     *  no-op: the previously closed window (or the empty initial
     *  state) is preserved instead of fabricating a [0, now] window. */
    void end(Tick now);

    /** True between begin() and the matching end(). */
    bool open() const { return open_; }

    std::uint64_t bytes() const { return bytes_; }
    Tick window() const;

    /** Decimal gigabytes per second over the window; 0 if empty window. */
    double gbPerSec() const;

  private:
    std::uint64_t bytes_ = 0;
    Tick begin_ = 0;
    Tick end_ = 0;
    bool open_ = false;
};

}  // namespace hmcsim

#endif  // HMCSIM_COMMON_STATS_H_
