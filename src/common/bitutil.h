/**
 * @file
 * Bit-field extraction/insertion helpers for address mapping.
 */

#ifndef HMCSIM_COMMON_BITUTIL_H_
#define HMCSIM_COMMON_BITUTIL_H_

#include <cstdint>

namespace hmcsim {

/** Extract bits [lo, lo+width) of @p v. */
constexpr std::uint64_t
extractBits(std::uint64_t v, unsigned lo, unsigned width)
{
    if (width == 0)
        return 0;
    if (width >= 64)
        return v >> lo;
    return (v >> lo) & ((std::uint64_t{1} << width) - 1);
}

/** Insert @p field into bits [lo, lo+width) of @p v. */
constexpr std::uint64_t
insertBits(std::uint64_t v, unsigned lo, unsigned width, std::uint64_t field)
{
    const std::uint64_t mask =
        (width >= 64) ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
    return (v & ~(mask << lo)) | ((field & mask) << lo);
}

/** True if @p v is a power of two (and nonzero). */
constexpr bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power of two. */
constexpr unsigned
log2Exact(std::uint64_t v)
{
    unsigned n = 0;
    while (v > 1) {
        v >>= 1;
        ++n;
    }
    return n;
}

/** Round @p v up to a multiple of @p align (align must be pow2). */
constexpr std::uint64_t
alignUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

}  // namespace hmcsim

#endif  // HMCSIM_COMMON_BITUTIL_H_
