/**
 * @file
 * Clang thread-safety-analysis annotation macros.
 *
 * The simulator is single-threaded today, but the partitioned-parallel
 * event core (see ROADMAP "prong (b)") will run per-cube partitions on
 * their own threads with conservative lookahead at chain-link
 * boundaries.  Every piece of shared mutable state those partitions
 * will contend on -- the packet-pool freelist, the metrics registry,
 * the trace ring buffer, the event queue itself -- is annotated NOW,
 * so `clang -Wthread-safety` (-DHMCSIM_THREAD_SAFETY=ON) machine-checks
 * the locking discipline before the first thread ever lands, and every
 * later PR that touches shared state is forced to say which capability
 * protects it.
 *
 * The macros expand to Clang `capability` attributes under Clang and to
 * nothing elsewhere (GCC builds are unaffected).  They mirror the
 * standard names used by abseil/LLVM so the analysis semantics are the
 * documented upstream ones:
 * https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
 *
 * The matching runtime objects (PartitionMutex / PartitionLock,
 * assert-only until the parallel core lands) live in
 * common/partition_mutex.h.
 */

#ifndef HMCSIM_COMMON_THREAD_ANNOTATIONS_H_
#define HMCSIM_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define HMCSIM_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define HMCSIM_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/** Marks a class as a lockable capability (e.g. a mutex type). */
#define HMCSIM_CAPABILITY(x) HMCSIM_THREAD_ANNOTATION_(capability(x))

/** Marks an RAII class whose ctor acquires and dtor releases. */
#define HMCSIM_SCOPED_CAPABILITY HMCSIM_THREAD_ANNOTATION_(scoped_lockable)

/** Data member readable/writable only while holding the capability. */
#define HMCSIM_GUARDED_BY(x) HMCSIM_THREAD_ANNOTATION_(guarded_by(x))

/** Pointer member whose pointee is guarded by the capability. */
#define HMCSIM_PT_GUARDED_BY(x) HMCSIM_THREAD_ANNOTATION_(pt_guarded_by(x))

/** Function acquires the capability and holds it on return. */
#define HMCSIM_ACQUIRE(...) \
    HMCSIM_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/** Function releases the capability. */
#define HMCSIM_RELEASE(...) \
    HMCSIM_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/** Caller must hold the capability (exclusively) when calling. */
#define HMCSIM_REQUIRES(...) \
    HMCSIM_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/** Caller must hold the capability at least shared when calling. */
#define HMCSIM_REQUIRES_SHARED(...) \
    HMCSIM_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/** Caller must NOT hold the capability (deadlock guard). */
#define HMCSIM_EXCLUDES(...) \
    HMCSIM_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/** Function returns a reference to the named capability. */
#define HMCSIM_RETURN_CAPABILITY(x) \
    HMCSIM_THREAD_ANNOTATION_(lock_returned(x))

/** Opt a function out of the analysis (use sparingly, with a reason). */
#define HMCSIM_NO_THREAD_SAFETY_ANALYSIS \
    HMCSIM_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // HMCSIM_COMMON_THREAD_ANNOTATIONS_H_
