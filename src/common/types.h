/**
 * @file
 * Fundamental scalar types and identifiers used across the simulator.
 */

#ifndef HMCSIM_COMMON_TYPES_H_
#define HMCSIM_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace hmcsim {

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** Sentinel for "no time" / "never". */
constexpr Tick kTickNever = std::numeric_limits<Tick>::max();

/** Physical memory address inside the cube (34-bit field, 32 used). */
using Addr = std::uint64_t;

/** Identifier types. Plain integers; wrappers would add noise here. */
using VaultId = std::uint32_t;
using BankId = std::uint32_t;
using CubeId = std::uint32_t;
using QuadrantId = std::uint32_t;
using LinkId = std::uint32_t;
using PortId = std::uint32_t;
using HostId = std::uint32_t;
using NodeId = std::uint32_t;
using TagId = std::uint32_t;
using PacketId = std::uint64_t;

/** Sentinel node for "not routed yet". */
constexpr NodeId kNodeInvalid = std::numeric_limits<NodeId>::max();

/** Sentinel cube id: "reaches every cube" (host link routing). */
constexpr CubeId kCubeAll = std::numeric_limits<CubeId>::max();

/** Sentinel entry cube: "spread this host around the topology". */
constexpr CubeId kEntryCubeAuto = std::numeric_limits<CubeId>::max();

/** Sentinel host id: "no host here". */
constexpr HostId kHostNone = std::numeric_limits<HostId>::max();

/** Sentinel tag. */
constexpr TagId kTagInvalid = std::numeric_limits<TagId>::max();

// Convenience duration literals (integer picoseconds).
constexpr Tick kPicosecond = 1;
constexpr Tick kNanosecond = 1000;
constexpr Tick kMicrosecond = 1000 * kNanosecond;
constexpr Tick kMillisecond = 1000 * kMicrosecond;
constexpr Tick kSecond = 1000 * kMillisecond;

/** Size of one HMC flit in bytes (16 B, 128 bits). */
constexpr std::uint32_t kFlitBytes = 16;

}  // namespace hmcsim

#endif  // HMCSIM_COMMON_TYPES_H_
