#include "common/csv.h"

#include "common/log.h"
#include "common/strutil.h"

namespace hmcsim {

CsvWriter::CsvWriter(std::ostream &out, std::vector<std::string> columns)
    : out_(out), columns_(std::move(columns))
{
    if (columns_.empty())
        panic("CsvWriter: need at least one column");
}

std::string
CsvWriter::escape(const std::string &v)
{
    if (v.find_first_of(",\"\n") == std::string::npos)
        return v;
    std::string out = "\"";
    for (char c : v) {
        if (c == '"')
            out += "\"\"";
        else
            out.push_back(c);
    }
    out += '"';
    return out;
}

void
CsvWriter::flushRow()
{
    if (!rowOpen_)
        return;
    if (!headerWritten_) {
        for (std::size_t i = 0; i < columns_.size(); ++i) {
            if (i)
                out_ << ',';
            out_ << escape(columns_[i]);
        }
        out_ << '\n';
        headerWritten_ = true;
    }
    if (current_.size() != columns_.size()) {
        panic("CsvWriter: row has " + std::to_string(current_.size()) +
              " cells, expected " + std::to_string(columns_.size()));
    }
    for (std::size_t i = 0; i < current_.size(); ++i) {
        if (i)
            out_ << ',';
        out_ << escape(current_[i]);
    }
    out_ << '\n';
    current_.clear();
    rowOpen_ = false;
}

CsvWriter &
CsvWriter::row()
{
    flushRow();
    rowOpen_ = true;
    return *this;
}

CsvWriter &
CsvWriter::cell(const std::string &v)
{
    if (!rowOpen_)
        panic("CsvWriter::cell without an open row");
    current_.push_back(v);
    return *this;
}

CsvWriter &
CsvWriter::cell(const char *v)
{
    return cell(std::string(v));
}

CsvWriter &
CsvWriter::cell(double v, int precision)
{
    return cell(formatDouble(v, precision));
}

CsvWriter &
CsvWriter::cell(std::uint64_t v)
{
    return cell(std::to_string(v));
}

CsvWriter &
CsvWriter::cell(std::int64_t v)
{
    return cell(std::to_string(v));
}

CsvWriter &
CsvWriter::cell(int v)
{
    return cell(std::to_string(v));
}

void
CsvWriter::finish()
{
    flushRow();
    out_.flush();
}

CsvWriter::~CsvWriter()
{
    // Never throw from a destructor; a malformed final row is dropped.
    try {
        flushRow();
    } catch (...) {
    }
}

}  // namespace hmcsim
