#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/units.h"

namespace hmcsim {

void
SampleStats::merge(const SampleStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double nt = na + nb;
    m2_ += other.m2_ + delta * delta * na * nb / nt;
    mean_ = (na * mean_ + nb * other.mean_) / nt;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
SampleStats::reset()
{
    n_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
    sum_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
}

double
SampleStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_);
}

double
SampleStats::stddev() const
{
    return std::sqrt(variance());
}

void
RateStat::begin(Tick now)
{
    bytes_ = 0;
    begin_ = now;
    end_ = now;
    open_ = true;
}

void
RateStat::end(Tick now)
{
    if (!open_)
        return;
    end_ = now;
    open_ = false;
}

Tick
RateStat::window() const
{
    return end_ >= begin_ ? end_ - begin_ : 0;
}

double
RateStat::gbPerSec() const
{
    return bytesPerTickToGBs(static_cast<double>(bytes_), window());
}

}  // namespace hmcsim
