/**
 * @file
 * Small string utilities used by the config parser and trace reader.
 */

#ifndef HMCSIM_COMMON_STRUTIL_H_
#define HMCSIM_COMMON_STRUTIL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace hmcsim {

/** Strip leading and trailing whitespace. */
std::string trim(const std::string &s);

/** Split @p s on @p sep; empty fields are preserved. */
std::vector<std::string> split(const std::string &s, char sep);

/** Split on arbitrary whitespace; empty fields are dropped. */
std::vector<std::string> splitWhitespace(const std::string &s);

/** True if @p s begins with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** Lower-case ASCII copy. */
std::string toLower(const std::string &s);

/**
 * Parse integers/doubles/bools with full-string validation.
 * @return false (leaving @p out untouched) on any trailing garbage.
 */
bool parseU64(const std::string &s, std::uint64_t &out);
bool parseI64(const std::string &s, std::int64_t &out);
bool parseDouble(const std::string &s, double &out);
bool parseBool(const std::string &s, bool &out);

/** Render a double with @p precision fractional digits. */
std::string formatDouble(double v, int precision);

}  // namespace hmcsim

#endif  // HMCSIM_COMMON_STRUTIL_H_
