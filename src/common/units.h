/**
 * @file
 * Unit conversion helpers between simulated ticks, bytes, and rates.
 *
 * All rates in the simulator are expressed either as GB/s (decimal
 * gigabytes, matching the paper) or as picoseconds-per-byte for
 * occupancy computations.
 */

#ifndef HMCSIM_COMMON_UNITS_H_
#define HMCSIM_COMMON_UNITS_H_

#include <cstdint>

#include "common/types.h"

namespace hmcsim {

/** Convert nanoseconds (double) to integer ticks, rounding to nearest. */
constexpr Tick
nsToTicks(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(kNanosecond) + 0.5);
}

/** Convert ticks to nanoseconds. */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kNanosecond);
}

/** Convert ticks to microseconds. */
constexpr double
ticksToUs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}

/** Convert a frequency in MHz to a clock period in ticks. */
constexpr Tick
mhzToPeriod(double mhz)
{
    return static_cast<Tick>(1e6 / mhz + 0.5);
}

/**
 * Time to move @p bytes at @p gbps gigabits per second over @p lanes lanes.
 * Used for SerDes serialization occupancy.
 */
constexpr Tick
serializationTicks(std::uint64_t bytes, double gbps, std::uint32_t lanes)
{
    // bits / (lanes * Gb/s) in ns, then to ticks.
    double ns = static_cast<double>(bytes) * 8.0 / (gbps * lanes);
    return nsToTicks(ns);
}

/** Time to move @p bytes at a rate of @p gbs decimal gigabytes/second. */
constexpr Tick
transferTicks(std::uint64_t bytes, double gbs)
{
    double ns = static_cast<double>(bytes) / gbs;  // GB/s == B/ns
    return nsToTicks(ns);
}

/** Bytes-over-interval to GB/s (decimal). */
constexpr double
bytesPerTickToGBs(double bytes, Tick interval)
{
    if (interval == 0)
        return 0.0;
    return bytes / static_cast<double>(interval) * 1000.0;  // B/ps -> GB/s
}

}  // namespace hmcsim

#endif  // HMCSIM_COMMON_UNITS_H_
