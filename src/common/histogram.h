/**
 * @file
 * Fixed-bin histogram over double samples, used for the per-vault latency
 * distributions of Figs. 10 and 12.
 */

#ifndef HMCSIM_COMMON_HISTOGRAM_H_
#define HMCSIM_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace hmcsim {

class Histogram
{
  public:
    /**
     * @param lo lower edge of the first bin
     * @param hi upper edge of the last bin (must be > lo)
     * @param bins number of equal-width bins (must be >= 1)
     *
     * Samples below lo land in bin 0; samples at/above hi land in the
     * last bin (saturating, so the paper-style fixed axes still capture
     * tails).
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Record one sample (inline: per-transaction hot path). */
    void
    add(double x)
    {
        ++counts_[binIndex(x)];
        ++total_;
    }

    std::size_t bins() const { return counts_.size(); }
    double lo() const { return lo_; }
    double hi() const { return hi_; }
    double binWidth() const { return width_; }

    /** Inclusive lower edge of bin @p i. */
    double binLow(std::size_t i) const;

    /** Center of bin @p i. */
    double binCenter(std::size_t i) const;

    std::uint64_t count(std::size_t i) const;
    std::uint64_t total() const { return total_; }

    /** count(i) / total(), or 0 if empty. */
    double fraction(std::size_t i) const;

    /** Bin index a sample would land in.  NaN and below-range samples
     *  clamp to bin 0; at/above-range samples clamp to the last bin. */
    std::size_t
    binIndex(double x) const
    {
        // !(x > lo_) folds the NaN and below/at-range clamps into one
        // branch (NaN fails every comparison); the division must stay
        // a division -- a reciprocal multiply rounds differently and
        // boundary samples would switch bins.
        if (!(x > lo_))
            return 0;
        const double rel = (x - lo_) / width_;
        if (rel >= static_cast<double>(counts_.size()))
            return counts_.size() - 1;
        return static_cast<std::size_t>(rel);
    }

    /**
     * Upper edge of the bin where the cumulative distribution first
     * reaches @p p percent (0..100); conservative for tail percentiles
     * (reports the bin boundary at or above the true value).  0 when
     * the histogram is empty.
     */
    double percentile(double p) const;

    /** Merge a same-shaped histogram; panics on shape mismatch. */
    void merge(const Histogram &other);

    void reset();

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

}  // namespace hmcsim

#endif  // HMCSIM_COMMON_HISTOGRAM_H_
