#include "dram/bank.h"

#include <algorithm>

#include "common/log.h"

namespace hmcsim {

Bank::Bank(const DramTimingParams &params, BankId id)
    : params_(params), id_(id)
{
}

Tick
Bank::activate(Tick when, RowId row)
{
    if (rowOpen_)
        panic("Bank::activate on open row (bank " + std::to_string(id_) +
              ")");
    if (when < actAllowedAt_)
        panic("Bank::activate violates tRP/tRC (bank " +
              std::to_string(id_) + ")");
    rowOpen_ = true;
    openRow_ = row;
    colAllowedAt_ = std::max(colAllowedAt_, when + params_.tRCD);
    preAllowedAt_ = std::max(preAllowedAt_, when + params_.tRAS);
    acts_.inc();
    if (probe_)
        probe_->recordAtLayer(PowerEvent::DramActivate, 1, dramLayer_);
    return when + params_.tRCD;
}

Bank::BurstTiming
Bank::readBurst(Tick when, std::uint32_t beats)
{
    if (!rowOpen_)
        panic("Bank::readBurst on closed row (bank " + std::to_string(id_) +
              ")");
    if (when < colAllowedAt_)
        panic("Bank::readBurst violates tRCD/tCCD (bank " +
              std::to_string(id_) + ")");
    if (beats == 0)
        panic("Bank::readBurst: zero beats");
    BurstTiming t;
    t.cmdTime = when;
    t.dataStart = when + params_.tCL;
    t.dataEnd = t.dataStart + beats * params_.tBURST;
    colAllowedAt_ = when + beats * params_.tCCD;
    const Tick last_cmd = when + (beats - 1) * params_.tCCD;
    preAllowedAt_ = std::max(preAllowedAt_, last_cmd + params_.tRTP);
    reads_.inc(beats);
    if (probe_)
        probe_->recordAtLayer(PowerEvent::DramReadBeat, beats, dramLayer_);
    return t;
}

Bank::BurstTiming
Bank::writeBurst(Tick when, std::uint32_t beats)
{
    if (!rowOpen_)
        panic("Bank::writeBurst on closed row (bank " +
              std::to_string(id_) + ")");
    if (when < colAllowedAt_)
        panic("Bank::writeBurst violates tRCD/tCCD (bank " +
              std::to_string(id_) + ")");
    if (beats == 0)
        panic("Bank::writeBurst: zero beats");
    BurstTiming t;
    t.cmdTime = when;
    t.dataStart = when + params_.tWL;
    t.dataEnd = t.dataStart + beats * params_.tBURST;
    colAllowedAt_ = when + beats * params_.tCCD;
    preAllowedAt_ = std::max(preAllowedAt_, t.dataEnd + params_.tWR);
    writes_.inc(beats);
    if (probe_)
        probe_->recordAtLayer(PowerEvent::DramWriteBeat, beats, dramLayer_);
    return t;
}

Tick
Bank::precharge(Tick when)
{
    if (!rowOpen_)
        panic("Bank::precharge on closed row (bank " + std::to_string(id_) +
              ")");
    if (when < preAllowedAt_)
        panic("Bank::precharge violates tRAS/tRTP/tWR (bank " +
              std::to_string(id_) + ")");
    rowOpen_ = false;
    openRow_ = kRowNone;
    actAllowedAt_ = std::max(actAllowedAt_, when + params_.tRP);
    pres_.inc();
    if (probe_)
        probe_->recordAtLayer(PowerEvent::DramPrecharge, 1, dramLayer_);
    return when + params_.tRP;
}

Tick
Bank::refresh(Tick when)
{
    if (rowOpen_)
        panic("Bank::refresh on open row (bank " + std::to_string(id_) +
              ")");
    if (when < actAllowedAt_)
        panic("Bank::refresh violates tRP (bank " + std::to_string(id_) +
              ")");
    actAllowedAt_ = when + params_.tRFC;
    refs_.inc();
    if (probe_)
        probe_->recordAtLayer(PowerEvent::DramRefresh, 1, dramLayer_);
    return when + params_.tRFC;
}

void
Bank::resetStats()
{
    acts_.reset();
    reads_.reset();
    writes_.reset();
    pres_.reset();
    refs_.reset();
}

}  // namespace hmcsim
