/**
 * @file
 * DRAM command vocabulary shared by the bank model and the vault
 * controller's scheduler.
 */

#ifndef HMCSIM_DRAM_DRAM_TYPES_H_
#define HMCSIM_DRAM_DRAM_TYPES_H_

#include <cstdint>

#include "common/types.h"

namespace hmcsim {

/** DRAM commands at the granularity the vault controller issues them. */
enum class DramCmd {
    Activate,
    Read,
    Write,
    Precharge,
    Refresh,
};

/** Row index within a bank. */
using RowId = std::uint32_t;

/** Column (32 B beat) index within a row. */
using ColId = std::uint32_t;

constexpr RowId kRowNone = ~RowId{0};

/** One decoded DRAM access the controller hands to the memory. */
struct DramAccess {
    BankId bank = 0;
    RowId row = 0;
    ColId col = 0;
    std::uint32_t bytes = 32;
    bool isWrite = false;
};

}  // namespace hmcsim

#endif  // HMCSIM_DRAM_DRAM_TYPES_H_
