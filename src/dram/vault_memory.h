/**
 * @file
 * One vault's worth of DRAM: a set of banks behind a shared 32 B TSV
 * data bus, plus the vault-wide activate constraints (tRRD, tFAW).
 *
 * The vault controller decides *what* to issue; VaultMemory knows *when*
 * commands may legally execute and plans a whole request's command
 * sequence atomically (activate, column bursts, optional precharge),
 * returning the data-completion timestamps.
 */

#ifndef HMCSIM_DRAM_VAULT_MEMORY_H_
#define HMCSIM_DRAM_VAULT_MEMORY_H_

#include <deque>
#include <vector>

#include "dram/bank.h"
#include "dram/tsv_bus.h"
#include "sim/component.h"

namespace hmcsim {

/** Row-buffer management policy. */
enum class PagePolicy {
    /** Precharge immediately after the access (default, HMC-like). */
    Closed,
    /** Leave the row open; precharge on a conflicting access. */
    Open,
};

class VaultMemory : public Component
{
  public:
    VaultMemory(Kernel &kernel, Component *parent, std::string name,
                const DramTimingParams &params, std::uint32_t num_banks);

    std::uint32_t numBanks() const
    {
        return static_cast<std::uint32_t>(banks_.size());
    }

    Bank &bank(BankId b);
    const Bank &bank(BankId b) const;
    TsvBus &bus() { return bus_; }
    const TsvBus &bus() const { return bus_; }
    const DramTimingParams &timing() const { return params_; }

    /**
     * Attach the power probe to every bank and the TSV bus.  Banks are
     * mapped onto @p num_dram_layers stacked dies (bank -> layer) so
     * their energy is attributed per layer; the shared TSV bus stays
     * aggregate (it spans the whole stack).
     */
    void setPowerProbe(PowerProbe *probe,
                       std::uint32_t num_dram_layers = 1);

    /** Timestamps of one fully planned access. */
    struct ServiceResult {
        /** ACTIVATE issue time; kTickNever when the row was already
         *  open (open-page hit). */
        Tick actTime = kTickNever;

        /** First column command. */
        Tick colTime = 0;

        /** Data window on the TSV bus. */
        Tick dataStart = 0;
        Tick dataEnd = 0;

        /** True if the access hit an open row (open policy only). */
        bool rowHit = false;
    };

    /**
     * Plan and commit the full command sequence for @p access starting
     * no earlier than @p now under @p policy.  The caller must
     * serialize accesses per bank (one in flight per bank), which the
     * vault controller's per-bank queues guarantee.
     */
    ServiceResult service(const DramAccess &access, Tick now,
                          PagePolicy policy);

    /**
     * Earliest legal ACTIVATE time for @p b at or after @p t, honouring
     * bank state plus vault-wide tRRD and tFAW.
     */
    Tick earliestActivate(BankId b, Tick t) const;

    /**
     * Refresh bank @p b (precharging first if needed) starting at or
     * after @p now.
     * @return refresh completion time
     */
    Tick refreshBank(BankId b, Tick now);

    std::uint64_t rowHits() const { return rowHits_.value(); }
    std::uint64_t rowMisses() const { return rowMisses_.value(); }

  protected:
    void reportOwnStats(std::map<std::string, double> &out) const override;
    void resetOwnStats() override;

  private:
    DramTimingParams params_;
    std::vector<Bank> banks_;
    TsvBus bus_;
    Tick lastActAt_ = 0;
    bool anyActYet_ = false;
    std::deque<Tick> actWindow_;  // last up-to-4 ACT times (tFAW)
    Counter rowHits_;
    Counter rowMisses_;

    void recordActivate(Tick when);
};

}  // namespace hmcsim

#endif  // HMCSIM_DRAM_VAULT_MEMORY_H_
