#include "dram/refresh.h"

#include "common/log.h"

namespace hmcsim {

RefreshPolicy::RefreshPolicy(Tick trefi, std::uint32_t num_banks)
    : trefi_(trefi)
{
    if (num_banks == 0)
        panic("RefreshPolicy: zero banks");
    nextDue_.resize(num_banks);
    for (std::uint32_t b = 0; b < num_banks; ++b) {
        // Stagger initial due times across the interval.
        nextDue_[b] = trefi_ == 0
            ? kTickNever
            : trefi_ * (b + 1) / num_banks;
    }
}

bool
RefreshPolicy::due(BankId b, Tick now) const
{
    if (b >= nextDue_.size())
        panic("RefreshPolicy::due: bank out of range");
    return trefi_ != 0 && now >= nextDue_[b];
}

void
RefreshPolicy::completed(BankId b, Tick when)
{
    if (b >= nextDue_.size())
        panic("RefreshPolicy::completed: bank out of range");
    if (trefi_ == 0)
        return;
    nextDue_[b] = when + trefi_;
    ++issued_;
}

Tick
RefreshPolicy::nextDue(BankId b) const
{
    if (b >= nextDue_.size())
        panic("RefreshPolicy::nextDue: bank out of range");
    return nextDue_[b];
}

}  // namespace hmcsim
