#include "dram/tsv_bus.h"

#include <algorithm>

#include "common/log.h"

namespace hmcsim {

TsvBus::TsvBus(std::string name, std::uint32_t beat_bytes, Tick beat_time)
    : name_(std::move(name)), beatBytes_(beat_bytes), beatTime_(beat_time)
{
    if (beatBytes_ == 0 || beatTime_ == 0)
        panic("TsvBus '" + name_ + "': zero beat size or time");
}

std::uint32_t
TsvBus::beatsFor(std::uint64_t bytes) const
{
    return static_cast<std::uint32_t>((bytes + beatBytes_ - 1) / beatBytes_);
}

TsvBus::Times
TsvBus::reserve(std::uint64_t bytes, Tick earliest)
{
    if (bytes == 0)
        panic("TsvBus '" + name_ + "': zero-byte reservation");
    const std::uint32_t beats = beatsFor(bytes);
    Times t;
    t.start = std::max(earliest, nextFree_);
    t.end = t.start + static_cast<Tick>(beats) * beatTime_;
    nextFree_ = t.end;
    bytes_.inc(static_cast<std::uint64_t>(beats) * beatBytes_);
    busy_ += t.end - t.start;
    if (probe_)
        probe_->record(PowerEvent::TsvBeat, beats);
    return t;
}

void
TsvBus::resetStats()
{
    bytes_.reset();
    busy_ = 0;
}

}  // namespace hmcsim
