/**
 * @file
 * Single DRAM bank timing model.
 *
 * The bank tracks earliest-allowed issue times for each command class
 * and validates that the controller respects them; scheduling policy
 * lives entirely in the vault controller.  Data movement is modelled by
 * the shared per-vault TSV bus, not here.
 */

#ifndef HMCSIM_DRAM_BANK_H_
#define HMCSIM_DRAM_BANK_H_

#include <cstdint>

#include "common/stats.h"
#include "common/types.h"
#include "dram/dram_types.h"
#include "dram/timing.h"
#include "power/power_probe.h"

namespace hmcsim {

class Bank
{
  public:
    Bank(const DramTimingParams &params, BankId id);

    BankId id() const { return id_; }
    bool rowOpen() const { return rowOpen_; }
    RowId openRow() const { return openRow_; }

    /** Earliest time an ACTIVATE may be issued (bank-local view). */
    Tick actReadyAt() const { return actAllowedAt_; }

    /** Earliest time a column command may be issued (row must be open). */
    Tick colReadyAt() const { return colAllowedAt_; }

    /** Earliest time a PRECHARGE may be issued. */
    Tick preReadyAt() const { return preAllowedAt_; }

    /**
     * Issue ACTIVATE at @p when for @p row.
     * Panics if the row is open or @p when violates timing.
     * @return time the row becomes usable (when + tRCD)
     */
    Tick activate(Tick when, RowId row);

    /** Data timestamps of one column burst. */
    struct BurstTiming {
        /** Column command issue time. */
        Tick cmdTime;
        /** First data beat on the bus. */
        Tick dataStart;
        /** Last data beat has left the bus. */
        Tick dataEnd;
    };

    /**
     * Issue a read burst of @p beats 32 B beats starting at @p when.
     * Panics on a closed row or a timing violation.
     */
    BurstTiming readBurst(Tick when, std::uint32_t beats);

    /** Issue a write burst (data arrives after tWL). */
    BurstTiming writeBurst(Tick when, std::uint32_t beats);

    /**
     * Issue PRECHARGE at @p when.
     * @return time the bank can accept the next ACTIVATE (when + tRP)
     */
    Tick precharge(Tick when);

    /**
     * Issue REFRESH at @p when (bank must be idle).
     * @return completion time (when + tRFC)
     */
    Tick refresh(Tick when);

    /**
     * Attach the power subsystem's probe (null = no accounting).
     * @param dram_layer the stacked die this bank lives in (0 = lowest
     *        DRAM layer); energy events are attributed to it so the
     *        thermal model sees per-layer heat input.
     */
    void
    setPowerProbe(PowerProbe *probe, std::uint32_t dram_layer = 0)
    {
        probe_ = probe;
        dramLayer_ = dram_layer;
    }

    /** Die this bank is attributed to for power/thermal purposes. */
    std::uint32_t dramLayer() const { return dramLayer_; }

    // Statistics.
    std::uint64_t activates() const { return acts_.value(); }
    std::uint64_t reads() const { return reads_.value(); }
    std::uint64_t writes() const { return writes_.value(); }
    std::uint64_t precharges() const { return pres_.value(); }
    std::uint64_t refreshes() const { return refs_.value(); }
    void resetStats();

  private:
    const DramTimingParams &params_;
    BankId id_;
    bool rowOpen_ = false;
    RowId openRow_ = kRowNone;
    Tick actAllowedAt_ = 0;
    Tick colAllowedAt_ = 0;
    Tick preAllowedAt_ = 0;
    Counter acts_;
    Counter reads_;
    Counter writes_;
    Counter pres_;
    Counter refs_;
    PowerProbe *probe_ = nullptr;
    std::uint32_t dramLayer_ = 0;
};

}  // namespace hmcsim

#endif  // HMCSIM_DRAM_BANK_H_
