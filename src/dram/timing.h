/**
 * @file
 * DRAM timing parameter sets.
 *
 * The HMC Gen2 preset follows the figures the paper cites:
 * tRCD + tCL + tRP ~= 41 ns ([4], [25] in the paper) and a 32 B vault
 * data bus delivering 10 GB/s (32 B per 3.2 ns).
 */

#ifndef HMCSIM_DRAM_TIMING_H_
#define HMCSIM_DRAM_TIMING_H_

#include <string>

#include "common/types.h"

namespace hmcsim {

struct DramTimingParams {
    /** Activate to internal read/write delay. */
    Tick tRCD = 0;

    /** Read command to first data beat (CAS latency). */
    Tick tCL = 0;

    /** Write command to first data beat. */
    Tick tWL = 0;

    /** Precharge to next activate on the same bank. */
    Tick tRP = 0;

    /** Activate to precharge minimum. */
    Tick tRAS = 0;

    /** Read to precharge minimum. */
    Tick tRTP = 0;

    /** End of write data to precharge (write recovery). */
    Tick tWR = 0;

    /** Column command to column command (same bank group). */
    Tick tCCD = 0;

    /** Activate to activate, different banks in the same vault. */
    Tick tRRD = 0;

    /** Rolling four-activate window per vault. */
    Tick tFAW = 0;

    /** One 32 B beat on the vault TSV data bus. */
    Tick tBURST = 0;

    /** Refresh cycle time (row refresh). */
    Tick tRFC = 0;

    /** Mean refresh interval. */
    Tick tREFI = 0;

    /** Minimum activate-to-activate on one bank (derived floor). */
    Tick tRC() const { return tRAS + tRP; }

    /** Validate internal consistency; raises fatal() on nonsense. */
    void validate() const;

    /** HMC Gen2-style preset (matches the paper's cited latencies). */
    static DramTimingParams hmcGen2();

    /** A DDR3-1600-like preset for the "traditional DDR" comparisons. */
    static DramTimingParams ddr3_1600();

    /** Look up a preset by name ("hmc_gen2", "ddr3_1600"). */
    static DramTimingParams preset(const std::string &name);
};

}  // namespace hmcsim

#endif  // HMCSIM_DRAM_TIMING_H_
