/**
 * @file
 * Per-bank staggered refresh bookkeeping.
 *
 * The vault controller consults the policy before dequeuing a request:
 * if the target bank's refresh is due, the refresh executes first
 * (VaultMemory::refreshBank) and the request is planned afterwards.
 * Staggering the per-bank due times avoids the unrealistic case of all
 * 16 banks refreshing in lockstep.
 */

#ifndef HMCSIM_DRAM_REFRESH_H_
#define HMCSIM_DRAM_REFRESH_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace hmcsim {

class RefreshPolicy
{
  public:
    /**
     * @param trefi refresh interval per bank; 0 disables refresh
     * @param num_banks banks in the vault
     */
    RefreshPolicy(Tick trefi, std::uint32_t num_banks);

    bool enabled() const { return trefi_ != 0; }

    /** True if bank @p b owes a refresh at time @p now. */
    bool due(BankId b, Tick now) const;

    /** Record that bank @p b completed a refresh at @p when. */
    void completed(BankId b, Tick when);

    /** Next due time of bank @p b (kTickNever when disabled). */
    Tick nextDue(BankId b) const;

    std::uint64_t refreshesIssued() const { return issued_; }

  private:
    Tick trefi_;
    std::vector<Tick> nextDue_;
    std::uint64_t issued_ = 0;
};

}  // namespace hmcsim

#endif  // HMCSIM_DRAM_REFRESH_H_
