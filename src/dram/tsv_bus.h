/**
 * @file
 * The shared per-vault 32 B TSV data bus.  Every data beat of every
 * bank in a vault crosses this bus, capping a vault at 10 GB/s with the
 * HMC Gen2 preset -- the plateau the paper measures for one-vault access
 * patterns (Section IV-A).
 */

#ifndef HMCSIM_DRAM_TSV_BUS_H_
#define HMCSIM_DRAM_TSV_BUS_H_

#include <cstdint>
#include <string>

#include "common/stats.h"
#include "common/types.h"
#include "power/power_probe.h"

namespace hmcsim {

class TsvBus
{
  public:
    /**
     * @param beat_bytes bus width per beat (32 B in HMC)
     * @param beat_time ticks per beat (3.2 ns -> 10 GB/s)
     */
    TsvBus(std::string name, std::uint32_t beat_bytes, Tick beat_time);

    struct Times {
        Tick start;
        Tick end;
    };

    /**
     * Reserve the bus for @p bytes (rounded up to whole beats) starting
     * no earlier than @p earliest; the reservation is contiguous.
     */
    Times reserve(std::uint64_t bytes, Tick earliest);

    Tick nextFree() const { return nextFree_; }
    std::uint32_t beatBytes() const { return beatBytes_; }
    Tick beatTime() const { return beatTime_; }

    /** Beats needed for @p bytes. */
    std::uint32_t beatsFor(std::uint64_t bytes) const;

    std::uint64_t bytesCarried() const { return bytes_.value(); }
    Tick busyTime() const { return busy_; }

    /** Attach the power subsystem's probe (null = no accounting). */
    void setPowerProbe(PowerProbe *probe) { probe_ = probe; }

    void resetStats();

  private:
    std::string name_;
    std::uint32_t beatBytes_;
    Tick beatTime_;
    Tick nextFree_ = 0;
    Counter bytes_;
    Tick busy_ = 0;
    PowerProbe *probe_ = nullptr;
};

}  // namespace hmcsim

#endif  // HMCSIM_DRAM_TSV_BUS_H_
