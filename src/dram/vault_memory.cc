#include "dram/vault_memory.h"

#include <algorithm>

#include "common/log.h"

namespace hmcsim {

VaultMemory::VaultMemory(Kernel &kernel, Component *parent, std::string name,
                         const DramTimingParams &params,
                         std::uint32_t num_banks)
    : Component(kernel, parent, std::move(name)), params_(params),
      bus_(path() + ".tsv_bus", 32, params.tBURST)
{
    params_.validate();
    if (num_banks == 0)
        fatal("VaultMemory: need at least one bank");
    banks_.reserve(num_banks);
    for (std::uint32_t b = 0; b < num_banks; ++b)
        banks_.emplace_back(params_, b);
}

Bank &
VaultMemory::bank(BankId b)
{
    if (b >= banks_.size())
        panic("VaultMemory::bank: index out of range");
    return banks_[b];
}

const Bank &
VaultMemory::bank(BankId b) const
{
    if (b >= banks_.size())
        panic("VaultMemory::bank: index out of range");
    return banks_[b];
}

void
VaultMemory::setPowerProbe(PowerProbe *probe, std::uint32_t num_dram_layers)
{
    // Banks are split evenly across the stacked dies: a vault's bank b
    // physically sits in layer b * layers / banks (HMC partitions each
    // vault vertically), so bank energy heats that die.
    const std::uint32_t layers = std::max<std::uint32_t>(num_dram_layers, 1);
    const auto num_banks = static_cast<std::uint32_t>(banks_.size());
    for (BankId b = 0; b < num_banks; ++b)
        banks_[b].setPowerProbe(probe, b * layers / num_banks);
    bus_.setPowerProbe(probe);
}

Tick
VaultMemory::earliestActivate(BankId b, Tick t) const
{
    Tick when = std::max(t, bank(b).actReadyAt());
    if (anyActYet_)
        when = std::max(when, lastActAt_ + params_.tRRD);
    if (params_.tFAW != 0 && actWindow_.size() >= 4)
        when = std::max(when, actWindow_.front() + params_.tFAW);
    return when;
}

void
VaultMemory::recordActivate(Tick when)
{
    lastActAt_ = when;
    anyActYet_ = true;
    actWindow_.push_back(when);
    while (actWindow_.size() > 4)
        actWindow_.pop_front();
}

VaultMemory::ServiceResult
VaultMemory::service(const DramAccess &access, Tick now, PagePolicy policy)
{
    Bank &bk = bank(access.bank);
    const std::uint32_t beats = bus_.beatsFor(access.bytes);
    ServiceResult res;

    // Open-page hit: the row is already there, go straight to columns.
    const bool hit = policy == PagePolicy::Open && bk.rowOpen() &&
        bk.openRow() == access.row;

    if (hit) {
        res.rowHit = true;
        rowHits_.inc();
    } else {
        rowMisses_.inc();
        // Row conflict under the open policy: precharge first.
        if (bk.rowOpen()) {
            const Tick pre = std::max(now, bk.preReadyAt());
            bk.precharge(pre);
        }
        const Tick act = earliestActivate(access.bank, now);
        bk.activate(act, access.row);
        recordActivate(act);
        res.actTime = act;
    }

    // Column phase: the burst's data must win the shared TSV bus; if
    // the bus is busy we delay the column command so command and data
    // stay consistent.
    const Tick data_latency =
        access.isWrite ? params_.tWL : params_.tCL;
    const Tick col_earliest = std::max(now, bk.colReadyAt());
    const TsvBus::Times bus_t =
        bus_.reserve(access.bytes, col_earliest + data_latency);
    const Tick col_time = bus_t.start - data_latency;

    const Bank::BurstTiming burst = access.isWrite
        ? bk.writeBurst(col_time, beats)
        : bk.readBurst(col_time, beats);

    res.colTime = burst.cmdTime;
    res.dataStart = burst.dataStart;
    res.dataEnd = burst.dataEnd;

    // Closed policy: precharge as soon as legal so the next activate
    // to this bank sees only tRP.
    if (policy == PagePolicy::Closed)
        bk.precharge(bk.preReadyAt());

    return res;
}

Tick
VaultMemory::refreshBank(BankId b, Tick now)
{
    Bank &bk = bank(b);
    if (bk.rowOpen()) {
        const Tick pre = std::max(now, bk.preReadyAt());
        bk.precharge(pre);
    }
    const Tick start = std::max(now, bk.actReadyAt());
    return bk.refresh(start);
}

void
VaultMemory::reportOwnStats(std::map<std::string, double> &out) const
{
    out[statName("row_hits")] = static_cast<double>(rowHits_.value());
    out[statName("row_misses")] = static_cast<double>(rowMisses_.value());
    out[statName("bus_bytes")] = static_cast<double>(bus_.bytesCarried());
    std::uint64_t acts = 0;
    for (const Bank &b : banks_)
        acts += b.activates();
    out[statName("activates")] = static_cast<double>(acts);
}

void
VaultMemory::resetOwnStats()
{
    rowHits_.reset();
    rowMisses_.reset();
    bus_.resetStats();
    for (Bank &b : banks_)
        b.resetStats();
}

}  // namespace hmcsim
