#include "dram/timing.h"

#include "common/log.h"
#include "common/units.h"

namespace hmcsim {

void
DramTimingParams::validate() const
{
    if (tRCD == 0 || tCL == 0 || tRP == 0 || tBURST == 0)
        fatal("dram timing: core parameters must be nonzero");
    if (tRAS < tRCD)
        fatal("dram timing: tRAS must cover at least tRCD");
    if (tFAW != 0 && tFAW < tRRD)
        fatal("dram timing: tFAW smaller than tRRD");
    if (tREFI != 0 && tRFC == 0)
        fatal("dram timing: refresh enabled but tRFC is zero");
}

DramTimingParams
DramTimingParams::hmcGen2()
{
    DramTimingParams p;
    p.tRCD = nsToTicks(13.75);
    p.tCL = nsToTicks(13.75);
    p.tWL = nsToTicks(10.0);
    p.tRP = nsToTicks(13.75);   // tRCD + tCL + tRP = 41.25 ns
    p.tRAS = nsToTicks(18.25);  // tRC = 32 ns
    p.tRTP = nsToTicks(5.0);
    p.tWR = nsToTicks(10.0);
    p.tCCD = nsToTicks(3.2);    // back-to-back 32 B beats
    p.tRRD = nsToTicks(4.0);
    p.tFAW = nsToTicks(16.0);
    p.tBURST = nsToTicks(3.2);  // 32 B / 3.2 ns = 10 GB/s per vault
    p.tRFC = nsToTicks(160.0);
    p.tREFI = 0;                // refresh disabled by default
    p.validate();
    return p;
}

DramTimingParams
DramTimingParams::ddr3_1600()
{
    DramTimingParams p;
    p.tRCD = nsToTicks(13.75);
    p.tCL = nsToTicks(13.75);
    p.tWL = nsToTicks(10.0);
    p.tRP = nsToTicks(13.75);
    p.tRAS = nsToTicks(35.0);
    p.tRTP = nsToTicks(7.5);
    p.tWR = nsToTicks(15.0);
    p.tCCD = nsToTicks(5.0);
    p.tRRD = nsToTicks(6.0);
    p.tFAW = nsToTicks(30.0);
    p.tBURST = nsToTicks(5.0);  // 64 B burst on a 64-bit DDR3-1600 bus
    p.tRFC = nsToTicks(260.0);
    p.tREFI = 0;
    p.validate();
    return p;
}

DramTimingParams
DramTimingParams::preset(const std::string &name)
{
    if (name == "hmc_gen2")
        return hmcGen2();
    if (name == "ddr3_1600")
        return ddr3_1600();
    fatal("dram timing: unknown preset '" + name + "'");
}

}  // namespace hmcsim
