#include "sim/clock.h"

#include "common/log.h"
#include "common/units.h"

namespace hmcsim {

ClockDomain::ClockDomain(std::string name, Tick period_ticks,
                         Tick phase_ticks)
    : name_(std::move(name)), period_(period_ticks), phase_(phase_ticks)
{
    if (period_ == 0)
        panic("ClockDomain '" + name_ + "': zero period");
}

ClockDomain
ClockDomain::fromMhz(std::string name, double mhz)
{
    if (mhz <= 0.0)
        panic("ClockDomain: non-positive frequency");
    return ClockDomain(std::move(name), mhzToPeriod(mhz));
}

double
ClockDomain::frequencyMhz() const
{
    return 1e6 / static_cast<double>(period_);
}

std::uint64_t
ClockDomain::cycleAt(Tick t) const
{
    if (t < phase_)
        return 0;
    return (t - phase_) / period_;
}

Tick
ClockDomain::cycleStart(std::uint64_t c) const
{
    return phase_ + c * period_;
}

Tick
ClockDomain::nextEdgeAtOrAfter(Tick t) const
{
    if (t <= phase_)
        return phase_;
    const Tick rel = t - phase_;
    const Tick cycles = (rel + period_ - 1) / period_;
    return phase_ + cycles * period_;
}

Tick
ClockDomain::nextEdgeAfter(Tick t) const
{
    const Tick aligned = nextEdgeAtOrAfter(t);
    return aligned == t ? aligned + period_ : aligned;
}

}  // namespace hmcsim
