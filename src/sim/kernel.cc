#include "sim/kernel.h"

#include "common/log.h"

namespace hmcsim {

void
Kernel::scheduleAt(Tick when, EventFn fn, int priority)
{
    const Tick current = now();
    if (when < current)
        panic("Kernel::scheduleAt: time " + std::to_string(when) +
              " is in the past (now " + std::to_string(current) + ")");
    queue_.schedule(when, std::move(fn), priority);
}

std::uint64_t
Kernel::run(Tick until)
{
    clearStop();
    std::uint64_t executed = 0;
    while (!queue_.empty() && !stopRequested()) {
        const Tick next = queue_.nextTime();
        if (next > until)
            break;
        setNow(next);
        queue_.executeNext();
        ++executed;
    }
    // Advance time to the requested horizon so back-to-back windows
    // measure contiguous intervals even if the queue went idle early.
    if (until != kTickNever && now() < until && !stopRequested())
        setNow(until);
    return executed;
}

std::uint64_t
// hmcsim-lint: allow(std-function) one predicate per run(), not per-event
Kernel::runUntil(const std::function<bool()> &pred, Tick until)
{
    clearStop();
    std::uint64_t executed = 0;
    while (!queue_.empty() && !stopRequested() && !pred()) {
        const Tick next = queue_.nextTime();
        if (next > until)
            break;
        setNow(next);
        queue_.executeNext();
        ++executed;
    }
    return executed;
}

}  // namespace hmcsim
