#include "sim/kernel.h"

#include "common/log.h"
#include "sim/parallel_scheduler.h"

namespace hmcsim {

Kernel::Kernel() = default;

Kernel::~Kernel() = default;

void
Kernel::scheduleAt(Tick when, EventFn fn, int priority)
{
    const Tick current = now();
    if (when < current)
        panic("Kernel::scheduleAt: time " + std::to_string(when) +
              " is in the past (now " + std::to_string(current) + ")");
    targetQueue().schedule(when, std::move(fn), priority);
}

void
Kernel::enableParallel(const SimConfig &cfg, std::uint32_t partitions,
                       std::uint32_t threads, Tick lookahead)
{
    if (sched_)
        panic("Kernel::enableParallel: already enabled");
    if (queue_.size() != 0)
        panic("Kernel::enableParallel: events already scheduled on the "
              "serial queue");
    sched_ = std::make_unique<ParallelScheduler>(*this, cfg, partitions,
                                                 threads, lookahead);
    globalPart_ = sched_->globalPartition();
}

Partition *
Kernel::partition(std::uint32_t id)
{
    return sched_ ? sched_->partition(id) : nullptr;
}

std::uint64_t
Kernel::eventsExecuted() const
{
    return sched_ ? sched_->eventsExecuted() : queue_.executedCount();
}

void
Kernel::postCross(Partition *dst, Tick when, EventFn fn, int priority)
{
    Partition *src = t_schedPartition;
    if (dst == nullptr || src == nullptr || dst == src) {
        scheduleAt(when, std::move(fn), priority);
        return;
    }
    dst->post(when, priority, src->id(), src->nextCrossSeq(),
              std::move(fn));
}

std::uint64_t
Kernel::run(Tick until)
{
    clearStop();
    if (sched_)
        return sched_->run(until);
    std::uint64_t executed = 0;
    while (!queue_.empty() && !stopRequested()) {
        const Tick next = queue_.nextTime();
        if (next > until)
            break;
        setNow(next);
        queue_.executeNext();
        ++executed;
    }
    // Advance time to the requested horizon so back-to-back windows
    // measure contiguous intervals even if the queue went idle early.
    if (until != kTickNever && now() < until && !stopRequested())
        setNow(until);
    return executed;
}

std::uint64_t
// hmcsim-lint: allow(std-function) one predicate per run(), not per-event
Kernel::runUntil(const std::function<bool()> &pred, Tick until)
{
    clearStop();
    if (sched_)
        return sched_->runUntil(pred, until);
    std::uint64_t executed = 0;
    bool predHit = false;
    while (!queue_.empty() && !stopRequested()) {
        if (pred()) {
            predHit = true;
            break;
        }
        const Tick next = queue_.nextTime();
        if (next > until)
            break;
        setNow(next);
        queue_.executeNext();
        ++executed;
    }
    // Same idle-horizon semantics as run(): an early drain (or an
    // event horizon past @p until) still advances the clock to the
    // requested horizon, so back-to-back measurement windows stay
    // contiguous.  A satisfied predicate does not advance -- its
    // firing time is the result the caller is after.
    if (until != kTickNever && now() < until && !stopRequested() &&
        !predHit && !pred())
        setNow(until);
    return executed;
}

}  // namespace hmcsim
