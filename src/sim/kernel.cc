#include "sim/kernel.h"

#include "common/log.h"

namespace hmcsim {

void
Kernel::scheduleAt(Tick when, EventFn fn, int priority)
{
    if (when < now_)
        panic("Kernel::scheduleAt: time " + std::to_string(when) +
              " is in the past (now " + std::to_string(now_) + ")");
    queue_.schedule(when, std::move(fn), priority);
}

std::uint64_t
Kernel::run(Tick until)
{
    stopRequested_ = false;
    std::uint64_t executed = 0;
    while (!queue_.empty() && !stopRequested_) {
        const Tick next = queue_.nextTime();
        if (next > until)
            break;
        now_ = next;
        queue_.executeNext();
        ++executed;
    }
    // Advance time to the requested horizon so back-to-back windows
    // measure contiguous intervals even if the queue went idle early.
    if (until != kTickNever && now_ < until && !stopRequested_)
        now_ = until;
    return executed;
}

std::uint64_t
Kernel::runUntil(const std::function<bool()> &pred, Tick until)
{
    stopRequested_ = false;
    std::uint64_t executed = 0;
    while (!queue_.empty() && !stopRequested_ && !pred()) {
        const Tick next = queue_.nextTime();
        if (next > until)
            break;
        now_ = next;
        queue_.executeNext();
        ++executed;
    }
    return executed;
}

}  // namespace hmcsim
