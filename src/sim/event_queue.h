/**
 * @file
 * Discrete-event queue: the heart of the cycle-level simulator.
 *
 * Events are ordered by (time, priority, insertion sequence).  The
 * sequence number guarantees FIFO order among same-time same-priority
 * events, which keeps simulations deterministic regardless of queue
 * internals.
 *
 * Two interchangeable implementations live behind the one API, selected
 * by configure() (sim.event_queue):
 *
 *  - heap: a move-based binary min-heap.  The reference implementation;
 *    simple, allocation-free after warmup, used for differential
 *    testing.
 *
 *  - calendar: a two-level calendar queue tuned for the simulator's
 *    schedule pattern (almost all events land within a few link/DRAM
 *    latencies of now, densely packed in time).  Near-future events go
 *    into a power-of-two ring of time buckets; far-future events wait
 *    in an overflow min-heap and are pulled into the ring lazily as it
 *    advances.  Buckets append unsorted and sort lazily only when a
 *    bucket becomes current, so schedule() is O(1) and executeNext()
 *    is amortized O(k log k) over the handful of events sharing a
 *    bucket -- beating the heap's O(log n) over the full pending set.
 *
 * Both orderings are exact: for any interleaving of schedule() and
 * executeNext() calls the two modes fire events in the identical
 * sequence (guarded by tests/sim/test_queue_differential.cc), so the
 * knob can never change simulation results, only wall-clock speed.
 */

#ifndef HMCSIM_SIM_EVENT_QUEUE_H_
#define HMCSIM_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <vector>

#include "common/partition_mutex.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "sim/inline_event.h"
#include "sim/sim_config.h"

namespace hmcsim {

/** Callback type executed when an event fires. */
using EventFn = InlineEvent;

/** Scheduling priorities; lower value fires first at equal time. */
struct EventPriority {
    static constexpr int kDefault = 0;
    /** Stat-window boundaries run after all same-tick model activity. */
    static constexpr int kStats = 100;
    /** Simulation-stop sentinels run last. */
    static constexpr int kStop = 1000;
};

/**
 * Thread-safety discipline (machine-checked under
 * -DHMCSIM_THREAD_SAFETY=ON with Clang): every piece of queue state is
 * guarded by mu_, the capability a per-cube partition will lock once
 * the parallel core lands.  Public entry points acquire it; private
 * helpers require it.  Event callbacks run OUTSIDE the locked region
 * -- they re-enter schedule() (and would deadlock a real mutex), which
 * the assert-only PartitionMutex enforces today.
 */
class EventQueue
{
  public:
    EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Select the implementation and (for calendar) its geometry.
     * Width and bucket count must be powers of two.  Panics if events
     * are pending -- reconfigure only before the first schedule() or
     * after clear().
     */
    void configure(EventQueueKind kind, std::uint64_t bucketWidth,
                   std::uint64_t numBuckets);
    void
    configure(const SimConfig &cfg)
    {
        configure(cfg.queueKind(), cfg.calendarBucketPs, cfg.calendarBuckets);
    }

    EventQueueKind
    kind() const
    {
        PartitionLock lock(mu_);
        return kind_;
    }

    /**
     * Schedule @p fn at absolute time @p when.
     * Inline so the common calendar case -- a future time inside the
     * ring horizon appending to its bucket -- compiles to a handful of
     * instructions at the call site; clamped, far-future, out-of-order
     * and heap-mode inserts take the out-of-line paths.
     */
    void
    schedule(Tick when, EventFn fn, int priority = 0)
    {
        if (!fn)
            panicNullEvent();
        PartitionLock lock(mu_);
        const std::uint64_t seq = nextSeq_++;
        ++size_;
        if (kind_ == EventQueueKind::Calendar) {
            if (when > curBucketStart_ &&
                when - curBucketStart_ < ringSpan()) {
                Bucket &b =
                    ring_[static_cast<std::size_t>(when >> shift_) &
                          ringMask_];
                ++ringCount_;
                if (!b.sorted) {
                    b.v.emplace_back(when, priority, seq, std::move(fn));
                    return;
                }
                // Only the current bucket is ever sorted, and it is
                // non-empty (it resets to unsorted when drained).  The
                // common case -- fresh events at the current tick carry
                // a larger seq than everything pending -- appends
                // straight into place.
                const Entry &last = b.v.back();
                const bool firesAfter =
                    when != last.when
                        ? when > last.when
                        : priority != last.priority
                              ? priority > last.priority
                              : seq > last.seq;
                if (firesAfter) {
                    b.v.emplace_back(when, priority, seq, std::move(fn));
                    return;
                }
                calendarInsertSorted(b, when, priority, seq,
                                     std::move(fn));
                return;
            }
            calendarPushSlow(when, priority, seq, std::move(fn));
            return;
        }
        heapPush(Entry(when, priority, seq, std::move(fn)));
    }

    /** True if no events are pending. */
    bool
    empty() const
    {
        PartitionLock lock(mu_);
        return size_ == 0;
    }

    /** Number of pending events. */
    std::size_t
    size() const
    {
        PartitionLock lock(mu_);
        return size_;
    }

    /** Time of the earliest pending event; kTickNever if empty. */
    Tick
    nextTime() const
    {
        PartitionLock lock(mu_);
        if (size_ == 0)
            return kTickNever;
        if (kind_ == EventQueueKind::Calendar) {
            const Bucket &b = ring_[curIdx_];
            if (b.sorted)  // sorted implies current and non-empty
                return b.v[b.head].when;
            // calendarPeek lazily advances the ring and sorts the
            // current bucket -- internal bookkeeping that never changes
            // the abstract queue state, so nextTime stays logically
            // const.
            return const_cast<EventQueue *>(this)->calendarPeek()->when;
        }
        return heap_.front().when;
    }

    /**
     * Pop and execute the earliest event.
     * @return the time the event fired.
     * Must not be called on an empty queue.
     */
    Tick
    executeNext()
    {
        InlineEvent fn;
        Tick when = 0;
        {
            PartitionLock lock(mu_);
            if (size_ == 0)
                panicEmptyExecute();
            --size_;
            ++executed_;
            if (kind_ == EventQueueKind::Calendar) {
                Bucket *b = &ring_[curIdx_];
                if (!b->sorted) {
                    calendarPeek();  // advance + sort; may move the ring
                    b = &ring_[curIdx_];
                }
                Entry &head = b->v[b->head];
                when = head.when;
                fn = std::move(head.fn);
                if (++b->head == b->v.size()) {
                    b->v.clear();
                    b->head = 0;
                    b->sorted = false;
                }
                --ringCount_;
            } else {
                Entry e = heapPop();
                when = e.when;
                fn = std::move(e.fn);
            }
        }
        // The callback runs OUTSIDE the locked region: event handlers
        // re-enter schedule(), which re-acquires mu_ -- holding the
        // capability across the call would deadlock the parallel core.
        fn();
        return when;
    }

    /** Total events executed so far (for engine micro-benchmarks). */
    std::uint64_t
    executedCount() const
    {
        PartitionLock lock(mu_);
        return executed_;
    }

    /** Drop every pending event. */
    void clear();

  private:
    struct Entry {
        Tick when;
        int priority;
        std::uint64_t seq;
        InlineEvent fn;

        Entry(Tick w, int p, std::uint64_t s, InlineEvent &&f)
            : when(w), priority(p), seq(s), fn(std::move(f))
        {
        }
    };

    /** True when @p a fires after @p b. */
    static bool
    laterThan(const Entry &a, const Entry &b)
    {
        if (a.when != b.when)
            return a.when > b.when;
        if (a.priority != b.priority)
            return a.priority > b.priority;
        return a.seq > b.seq;
    }

    // -- heap mode (move-based sift; no Entry copies) ------------------
    void heapPush(Entry &&e) HMCSIM_REQUIRES(mu_);
    Entry heapPop() HMCSIM_REQUIRES(mu_);

    // -- calendar mode -------------------------------------------------
    /**
     * A ring bucket.  Future buckets accumulate entries unsorted; when
     * a bucket becomes current it is sorted once into ascending fire
     * order and drained through the head cursor (pop is O(1), no
     * element ever moves).  Entries scheduled into the current bucket
     * almost always carry the largest (when, priority, seq) key in it
     * -- fresh events at the current tick get monotonically increasing
     * seq -- so they append in O(1) too; the rare out-of-order insert
     * rotates into place.
     */
    struct Bucket {
        std::vector<Entry> v;
        std::size_t head = 0; ///< next entry to pop (earlier are husks)
        bool sorted = false;  ///< v[head..) is in ascending fire order
    };

    /** Clamped-to-now and beyond-horizon inserts. */
    void calendarPushSlow(Tick when, int priority, std::uint64_t seq,
                          InlineEvent &&fn) HMCSIM_REQUIRES(mu_);
    /** Rare out-of-order insert into the sorted current bucket. */
    void calendarInsertSorted(Bucket &b, Tick when, int priority,
                              std::uint64_t seq, InlineEvent &&fn)
        HMCSIM_REQUIRES(mu_);
    /** Earliest pending entry; advances the ring to its bucket. */
    Entry *calendarPeek() HMCSIM_REQUIRES(mu_);
    /** Move far-future entries now below the ring horizon into it. */
    void pullFar() HMCSIM_REQUIRES(mu_);
    /** Re-anchor an empty ring at the earliest far-future entry. */
    void jumpToFar() HMCSIM_REQUIRES(mu_);

    Tick
    ringSpan() const HMCSIM_REQUIRES(mu_)
    {
        return Tick(ring_.size()) << shift_;
    }

    [[noreturn]] static void panicNullEvent();
    [[noreturn]] static void panicEmptyExecute();

    /**
     * The queue's capability: one per partition once the parallel core
     * shards the simulation per cube.  Assert-only today (the simulator
     * is single-threaded); mutable so const queries can acquire it.
     */
    mutable PartitionMutex mu_;

    EventQueueKind kind_ HMCSIM_GUARDED_BY(mu_) = EventQueueKind::Heap;
    std::uint64_t nextSeq_ HMCSIM_GUARDED_BY(mu_) = 0;
    std::uint64_t executed_ HMCSIM_GUARDED_BY(mu_) = 0;
    std::size_t size_ HMCSIM_GUARDED_BY(mu_) = 0;

    std::vector<Entry> heap_ HMCSIM_GUARDED_BY(mu_);

    std::vector<Bucket> ring_ HMCSIM_GUARDED_BY(mu_);
    std::size_t ringMask_ HMCSIM_GUARDED_BY(mu_) = 0;
    /** log2(bucket width in ticks). */
    unsigned shift_ HMCSIM_GUARDED_BY(mu_) = 0;
    std::size_t curIdx_ HMCSIM_GUARDED_BY(mu_) = 0;
    /** Inclusive start of the current bucket. */
    Tick curBucketStart_ HMCSIM_GUARDED_BY(mu_) = 0;
    /** Pending entries resident in the ring. */
    std::size_t ringCount_ HMCSIM_GUARDED_BY(mu_) = 0;
    /** Min-heap of entries beyond the ring. */
    std::vector<Entry> far_ HMCSIM_GUARDED_BY(mu_);
};

}  // namespace hmcsim

#endif  // HMCSIM_SIM_EVENT_QUEUE_H_
