/**
 * @file
 * Discrete-event queue: the heart of the cycle-level simulator.
 *
 * Events are ordered by (time, priority, insertion sequence).  The
 * sequence number guarantees FIFO order among same-time same-priority
 * events, which keeps simulations deterministic regardless of heap
 * internals.
 */

#ifndef HMCSIM_SIM_EVENT_QUEUE_H_
#define HMCSIM_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace hmcsim {

/** Callback type executed when an event fires. */
using EventFn = std::function<void()>;

/** Scheduling priorities; lower value fires first at equal time. */
struct EventPriority {
    static constexpr int kDefault = 0;
    /** Stat-window boundaries run after all same-tick model activity. */
    static constexpr int kStats = 100;
    /** Simulation-stop sentinels run last. */
    static constexpr int kStop = 1000;
};

class EventQueue
{
  public:
    EventQueue() = default;

    /** Schedule @p fn at absolute time @p when. */
    void schedule(Tick when, EventFn fn, int priority = 0);

    /** True if no events are pending. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return heap_.size(); }

    /** Time of the earliest pending event; kTickNever if empty. */
    Tick nextTime() const;

    /**
     * Pop and execute the earliest event.
     * @return the time the event fired.
     * Must not be called on an empty queue.
     */
    Tick executeNext();

    /** Total events executed so far (for engine micro-benchmarks). */
    std::uint64_t executedCount() const { return executed_; }

    /** Drop every pending event. */
    void clear();

  private:
    struct Entry {
        Tick when;
        int priority;
        std::uint64_t seq;
        EventFn fn;
    };

    struct Later {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

}  // namespace hmcsim

#endif  // HMCSIM_SIM_EVENT_QUEUE_H_
