/**
 * @file
 * Simulation kernel: owns the event queue and the global clock, and
 * provides the run loop with stop conditions.
 */

#ifndef HMCSIM_SIM_KERNEL_H_
#define HMCSIM_SIM_KERNEL_H_

#include <cstdint>
#include <functional>

#include "common/partition_mutex.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "sim/event_queue.h"

namespace hmcsim {

class Observability;

class Kernel
{
  public:
    Kernel() = default;

    Kernel(const Kernel &) = delete;
    Kernel &operator=(const Kernel &) = delete;

    /** Current simulated time. */
    Tick
    now() const
    {
        PartitionLock lock(mu_);
        return now_;
    }

    /** Schedule @p fn @p delay ticks from now. */
    void
    scheduleIn(Tick delay, EventFn fn, int priority = 0)
    {
        queue_.schedule(now() + delay, std::move(fn), priority);
    }

    /** Schedule @p fn at absolute @p when; panics if @p when is past. */
    void scheduleAt(Tick when, EventFn fn, int priority = 0);

    /**
     * Run until the queue drains or simulated time would pass @p until.
     * Events exactly at @p until still execute.
     * @return number of events executed by this call.
     */
    std::uint64_t run(Tick until = kTickNever);

    /**
     * Run until @p pred returns true (checked after every event), the
     * queue drains, or @p until passes.
     */
    // hmcsim-lint: allow(std-function) one predicate per run(), not per-event
    std::uint64_t runUntil(const std::function<bool()> &pred,
                           Tick until = kTickNever);

    /** Request that the current run() returns after the active event. */
    void
    stop()
    {
        PartitionLock lock(mu_);
        stopRequested_ = true;
    }

    /** Direct queue access (tests, stats). */
    EventQueue &queue() { return queue_; }
    const EventQueue &queue() const { return queue_; }

    /** Events executed over the kernel's lifetime. */
    std::uint64_t eventsExecuted() const { return queue_.executedCount(); }

    /**
     * The observability layer components register into (metrics,
     * tracing, profiling); null -- the default -- means the layer is
     * disabled and every hook site reduces to a null check.  Published
     * by System before the component tree is built; the Observability
     * object outlives every component registered with it.  Set during
     * single-threaded setup and immutable while events run, so it
     * carries no capability (the parallel core reads it lock-free).
     */
    Observability *obs() const { return obs_; }
    void setObservability(Observability *obs) { obs_ = obs; }

  private:
    /** Guards the kernel's own state (now_, stop flag) -- never held
     *  across queue_.executeNext(), because event handlers re-enter
     *  now() and scheduleIn(). */
    mutable PartitionMutex mu_;

    void
    setNow(Tick t)
    {
        PartitionLock lock(mu_);
        now_ = t;
    }

    bool
    stopRequested() const
    {
        PartitionLock lock(mu_);
        return stopRequested_;
    }

    void
    clearStop()
    {
        PartitionLock lock(mu_);
        stopRequested_ = false;
    }

    EventQueue queue_;
    Tick now_ HMCSIM_GUARDED_BY(mu_) = 0;
    bool stopRequested_ HMCSIM_GUARDED_BY(mu_) = false;
    Observability *obs_ = nullptr;
};

}  // namespace hmcsim

#endif  // HMCSIM_SIM_KERNEL_H_
