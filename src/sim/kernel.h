/**
 * @file
 * Simulation kernel: owns the event queue and the global clock, and
 * provides the run loop with stop conditions.
 */

#ifndef HMCSIM_SIM_KERNEL_H_
#define HMCSIM_SIM_KERNEL_H_

#include <cstdint>
#include <functional>

#include "common/types.h"
#include "sim/event_queue.h"

namespace hmcsim {

class Observability;

class Kernel
{
  public:
    Kernel() = default;

    Kernel(const Kernel &) = delete;
    Kernel &operator=(const Kernel &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p fn @p delay ticks from now. */
    void
    scheduleIn(Tick delay, EventFn fn, int priority = 0)
    {
        queue_.schedule(now_ + delay, std::move(fn), priority);
    }

    /** Schedule @p fn at absolute @p when; panics if @p when is past. */
    void scheduleAt(Tick when, EventFn fn, int priority = 0);

    /**
     * Run until the queue drains or simulated time would pass @p until.
     * Events exactly at @p until still execute.
     * @return number of events executed by this call.
     */
    std::uint64_t run(Tick until = kTickNever);

    /**
     * Run until @p pred returns true (checked after every event), the
     * queue drains, or @p until passes.
     */
    std::uint64_t runUntil(const std::function<bool()> &pred,
                           Tick until = kTickNever);

    /** Request that the current run() returns after the active event. */
    void stop() { stopRequested_ = true; }

    /** Direct queue access (tests, stats). */
    EventQueue &queue() { return queue_; }
    const EventQueue &queue() const { return queue_; }

    /** Events executed over the kernel's lifetime. */
    std::uint64_t eventsExecuted() const { return queue_.executedCount(); }

    /**
     * The observability layer components register into (metrics,
     * tracing, profiling); null -- the default -- means the layer is
     * disabled and every hook site reduces to a null check.  Published
     * by System before the component tree is built; the Observability
     * object outlives every component registered with it.
     */
    Observability *obs() const { return obs_; }
    void setObservability(Observability *obs) { obs_ = obs; }

  private:
    EventQueue queue_;
    Tick now_ = 0;
    bool stopRequested_ = false;
    Observability *obs_ = nullptr;
};

}  // namespace hmcsim

#endif  // HMCSIM_SIM_KERNEL_H_
