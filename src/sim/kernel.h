/**
 * @file
 * Simulation kernel: owns the event queue and the global clock, and
 * provides the run loop with stop conditions.
 *
 * With `sim.parallel=on` the kernel becomes a facade over the
 * partitioned-parallel core: scheduling calls route to the executing
 * thread's current partition (see t_schedPartition) and run()/
 * runUntil() delegate to the conservative-lookahead window loop.  The
 * component tree never sees the difference -- now() is the partition's
 * local clock while its events run, and the global clock otherwise.
 */

#ifndef HMCSIM_SIM_KERNEL_H_
#define HMCSIM_SIM_KERNEL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

#include "common/log.h"
#include "common/partition_mutex.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "sim/event_queue.h"
#include "sim/partition.h"
#include "sim/sim_config.h"

namespace hmcsim {

class Observability;
class ParallelScheduler;

class Kernel
{
  public:
    Kernel();
    ~Kernel();

    Kernel(const Kernel &) = delete;
    Kernel &operator=(const Kernel &) = delete;

    /** Current simulated time (the executing partition's local clock
     *  inside a parallel run). */
    Tick
    now() const
    {
        const Partition *p = t_schedPartition;
        if (p)
            return p->localNow();
        PartitionLock lock(mu_);
        return now_;
    }

    /**
     * Schedule @p fn @p delay ticks from now.  Panics when the delay
     * would wrap the tick clock -- a wrapped deadline lands in the
     * past and is silently mis-ordered (calendar mode would clamp it
     * to now), so it is never what the caller meant.
     */
    void
    scheduleIn(Tick delay, EventFn fn, int priority = 0)
    {
        const Tick current = now();
        if (delay > kTickNever - current)
            panic("Kernel::scheduleIn: delay " + std::to_string(delay) +
                  " overflows the tick clock (now " +
                  std::to_string(current) + ")");
        targetQueue().schedule(current + delay, std::move(fn), priority);
    }

    /** Schedule @p fn at absolute @p when; panics if @p when is past. */
    void scheduleAt(Tick when, EventFn fn, int priority = 0);

    /**
     * Run until the queue drains or simulated time would pass @p until.
     * Events exactly at @p until still execute.
     * @return number of events executed by this call.
     */
    std::uint64_t run(Tick until = kTickNever);

    /**
     * Run until @p pred returns true (checked after every event; at
     * window barriers under sim.parallel=on), the queue drains, or
     * @p until passes.  Like run(), an early drain advances the clock
     * to @p until -- unless the predicate ended the run, whose firing
     * time is the meaningful result.
     */
    // hmcsim-lint: allow(std-function) one predicate per run(), not per-event
    std::uint64_t runUntil(const std::function<bool()> &pred,
                           Tick until = kTickNever);

    /** Request that the current run() returns after the active event
     *  (after the active lookahead window under sim.parallel=on). */
    void
    stop()
    {
        stopRequested_.store(true, std::memory_order_relaxed);
    }

    /** Direct queue access (tests, stats).  Under sim.parallel=on this
     *  is the serial queue, which stays empty -- use partition(). */
    EventQueue &queue() { return queue_; }
    const EventQueue &queue() const { return queue_; }

    /** Events executed over the kernel's lifetime (all partitions). */
    std::uint64_t eventsExecuted() const;

    /**
     * Switch this kernel to the partitioned-parallel core.  Must be
     * called during single-threaded setup, before any component
     * schedules an event.  @p lookahead is the conservative window in
     * ticks -- the minimum latency of any cross-partition interaction.
     */
    void enableParallel(const SimConfig &cfg, std::uint32_t partitions,
                        std::uint32_t threads, Tick lookahead);

    bool parallelEnabled() const { return sched_ != nullptr; }

    /** Partition @p id (cube id); null unless parallelEnabled(). */
    Partition *partition(std::uint32_t id);

    /** The whole-tree observer partition; null unless parallel. */
    Partition *globalPartition() { return globalPart_; }

    /** The parallel core itself; null unless parallelEnabled(). */
    ParallelScheduler *parallel() { return sched_.get(); }

    /**
     * Schedule @p fn at @p when in @p dst's partition.  The bridge the
     * SerdesLink boundary uses: when @p dst is another partition the
     * event goes through its mailbox (thread-safe, canonically
     * ordered); when @p dst is null (serial mode) or the caller's own
     * partition it degenerates to scheduleAt().  @p when must be at
     * least lookahead beyond the caller's clock when crossing.
     */
    void postCross(Partition *dst, Tick when, EventFn fn,
                   int priority = 0);

    /**
     * The observability layer components register into (metrics,
     * tracing, profiling); null -- the default -- means the layer is
     * disabled and every hook site reduces to a null check.  Published
     * by System before the component tree is built; the Observability
     * object outlives every component registered with it.  Set during
     * single-threaded setup and immutable while events run, so it
     * carries no capability (the parallel core reads it lock-free).
     */
    Observability *obs() const { return obs_; }
    void setObservability(Observability *obs) { obs_ = obs; }

  private:
    friend class ParallelScheduler;

    /** Guards the kernel's own global clock -- never held across
     *  queue_.executeNext(), because event handlers re-enter now() and
     *  scheduleIn().  Worker threads never touch now_: inside a
     *  parallel run every now() call happens under a partition scope
     *  and reads the partition clock instead. */
    mutable PartitionMutex mu_;

    void
    setNow(Tick t)
    {
        PartitionLock lock(mu_);
        now_ = t;
    }

    bool
    stopRequested() const
    {
        return stopRequested_.load(std::memory_order_relaxed);
    }

    void
    clearStop()
    {
        stopRequested_.store(false, std::memory_order_relaxed);
    }

    /** Where a schedule call issued right now should land: the
     *  executing partition's queue, the global partition (setup-time
     *  and observer scheduling under parallel), or the serial queue. */
    EventQueue &
    targetQueue()
    {
        Partition *p = t_schedPartition;
        if (p)
            return p->queue();
        return globalPart_ ? globalPart_->queue() : queue_;
    }

    EventQueue queue_;
    Tick now_ HMCSIM_GUARDED_BY(mu_) = 0;
    /** Atomic so an event on any worker can stop a parallel run; the
     *  window barriers give the flag its cross-thread visibility. */
    std::atomic<bool> stopRequested_{false};
    Observability *obs_ = nullptr;

    std::unique_ptr<ParallelScheduler> sched_;
    /** Cached sched_->globalPartition() so targetQueue() stays inline. */
    Partition *globalPart_ = nullptr;
};

}  // namespace hmcsim

#endif  // HMCSIM_SIM_KERNEL_H_
