#include "sim/event_queue.h"

#include <utility>

#include "common/log.h"

namespace hmcsim {

void
EventQueue::schedule(Tick when, EventFn fn, int priority)
{
    if (!fn)
        panic("EventQueue::schedule: null event function");
    heap_.push(Entry{when, priority, nextSeq_++, std::move(fn)});
}

Tick
EventQueue::nextTime() const
{
    return heap_.empty() ? kTickNever : heap_.top().when;
}

Tick
EventQueue::executeNext()
{
    if (heap_.empty())
        panic("EventQueue::executeNext on empty queue");
    // priority_queue::top() is const; move out via const_cast is UB-free
    // here because we pop immediately, but copying keeps it simple and
    // std::function copies are cheap relative to model work.
    Entry e = heap_.top();
    heap_.pop();
    ++executed_;
    e.fn();
    return e.when;
}

void
EventQueue::clear()
{
    while (!heap_.empty())
        heap_.pop();
}

}  // namespace hmcsim
