#include "sim/event_queue.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "common/log.h"

namespace hmcsim {

namespace {

bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Inlinable comparator wrapper for the std heap/sort algorithms. */
struct LaterCmp {
    template <typename E>
    bool
    operator()(const E &a, const E &b) const
    {
        if (a.when != b.when)
            return a.when > b.when;
        if (a.priority != b.priority)
            return a.priority > b.priority;
        return a.seq > b.seq;
    }
};

/** Ascending fire order, for sorting buckets. */
struct EarlierCmp {
    template <typename E>
    bool
    operator()(const E &a, const E &b) const
    {
        return LaterCmp{}(b, a);
    }
};

}  // namespace

EventQueue::EventQueue() = default;

void
EventQueue::configure(EventQueueKind kind, std::uint64_t bucketWidth,
                      std::uint64_t numBuckets)
{
    PartitionLock lock(mu_);
    if (size_ != 0)
        panic("EventQueue::configure with events pending");
    kind_ = kind;
    if (kind != EventQueueKind::Calendar)
        return;
    if (!isPowerOfTwo(bucketWidth) || !isPowerOfTwo(numBuckets) ||
        numBuckets < 2)
        panic("EventQueue::configure: calendar geometry must be "
              "powers of two with >= 2 buckets");
    shift_ = 0;
    while ((Tick(1) << shift_) < bucketWidth)
        ++shift_;
    ring_.clear();
    ring_.resize(static_cast<std::size_t>(numBuckets));
    ringMask_ = static_cast<std::size_t>(numBuckets) - 1;
    curIdx_ = 0;
    curBucketStart_ = 0;
    ringCount_ = 0;
    far_.clear();
}

void
EventQueue::panicNullEvent()
{
    panic("EventQueue::schedule: null event function");
}

void
EventQueue::panicEmptyExecute()
{
    panic("EventQueue::executeNext on empty queue");
}

void
EventQueue::clear()
{
    PartitionLock lock(mu_);
    heap_.clear();
    for (Bucket &b : ring_) {
        b.v.clear();
        b.head = 0;
        b.sorted = false;
    }
    far_.clear();
    ringCount_ = 0;
    curIdx_ = 0;
    curBucketStart_ = 0;
    size_ = 0;
}

// ---------------------------------------------------------------------
// heap mode
// ---------------------------------------------------------------------

void
EventQueue::heapPush(Entry &&e)
{
    heap_.push_back(std::move(e));
    std::size_t i = heap_.size() - 1;
    Entry item = std::move(heap_[i]);
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!laterThan(heap_[parent], item))
            break;
        heap_[i] = std::move(heap_[parent]);
        i = parent;
    }
    heap_[i] = std::move(item);
}

EventQueue::Entry
EventQueue::heapPop()
{
    Entry top = std::move(heap_.front());
    Entry last = std::move(heap_.back());
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n != 0) {
        std::size_t i = 0;
        for (;;) {
            std::size_t child = 2 * i + 1;
            if (child >= n)
                break;
            if (child + 1 < n && laterThan(heap_[child], heap_[child + 1]))
                ++child;
            if (!laterThan(last, heap_[child]))
                break;
            heap_[i] = std::move(heap_[child]);
            i = child;
        }
        heap_[i] = std::move(last);
    }
    return top;
}

// ---------------------------------------------------------------------
// calendar mode
// ---------------------------------------------------------------------

void
EventQueue::calendarPushSlow(Tick when, int priority, std::uint64_t seq,
                             InlineEvent &&fn)
{
    if (when > curBucketStart_) {
        // Beyond the ring horizon: hold in the far-future min-heap.
        far_.emplace_back(when, priority, seq, std::move(fn));
        std::push_heap(far_.begin(), far_.end(), LaterCmp{});
        return;
    }
    // Past or current-bucket-start times clamp into the current
    // bucket; ordering within the bucket is still exact, and every
    // later bucket holds strictly later times.
    Bucket &b = ring_[curIdx_];
    ++ringCount_;
    if (b.sorted) {
        const Entry &last = b.v.back();
        const bool firesAfter =
            when != last.when
                ? when > last.when
                : priority != last.priority ? priority > last.priority
                                            : seq > last.seq;
        if (!firesAfter) {
            calendarInsertSorted(b, when, priority, seq, std::move(fn));
            return;
        }
    }
    b.v.emplace_back(when, priority, seq, std::move(fn));
}

void
EventQueue::calendarInsertSorted(Bucket &b, Tick when, int priority,
                                 std::uint64_t seq, InlineEvent &&fn)
{
    // Rare out-of-order insert (e.g. a default-priority event
    // scheduled at now while a stats-priority event is still pending
    // at the same tick): rotate into place.
    Entry e(when, priority, seq, std::move(fn));
    const auto pos =
        std::upper_bound(b.v.begin() + static_cast<std::ptrdiff_t>(b.head),
                         b.v.end(), e, EarlierCmp{});
    b.v.insert(pos, std::move(e));
}

EventQueue::Entry *
EventQueue::calendarPeek()
{
    for (;;) {
        if (ringCount_ == 0)
            jumpToFar();
        Bucket &b = ring_[curIdx_];
        if (!b.v.empty()) {
            if (!b.sorted) {
                std::sort(b.v.begin(), b.v.end(), EarlierCmp{});
                b.sorted = true;
            }
            return &b.v[b.head];
        }
        b.sorted = false;
        curIdx_ = (curIdx_ + 1) & ringMask_;
        curBucketStart_ += Tick(1) << shift_;
        pullFar();
    }
}

void
EventQueue::pullFar()
{
    // Ring advance opened a new bucket at the horizon; migrate every
    // far-future entry that now falls inside it.  Far entries are
    // always > curBucketStart_, so the subtraction cannot wrap.
    const Tick span = ringSpan();
    while (!far_.empty() && far_.front().when - curBucketStart_ < span) {
        std::pop_heap(far_.begin(), far_.end(), LaterCmp{});
        Entry e = std::move(far_.back());
        far_.pop_back();
        ring_[static_cast<std::size_t>(e.when >> shift_) & ringMask_]
            .v.push_back(std::move(e));
        ++ringCount_;
    }
}

void
EventQueue::jumpToFar()
{
    // Ring is empty: re-anchor it at the earliest far-future entry
    // instead of stepping bucket-by-bucket across the idle gap.
    if (far_.empty())
        panic("EventQueue: internal accounting error (empty calendar)");
    const Tick t = far_.front().when;
    curBucketStart_ = (t >> shift_) << shift_;
    curIdx_ = static_cast<std::size_t>(t >> shift_) & ringMask_;
    pullFar();
}

}  // namespace hmcsim
