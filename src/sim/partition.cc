#include "sim/partition.h"

#include <algorithm>
#include <cassert>

namespace hmcsim {

thread_local Partition *t_schedPartition = nullptr;

void
Partition::post(Tick when, int priority, std::uint32_t src_part,
                std::uint64_t src_seq, EventFn fn)
{
    RealLock lock(mailMu_);
    mailbox_.push_back(
        MailEntry{when, priority, src_part, src_seq, std::move(fn)});
}

void
Partition::drainMailbox()
{
    {
        RealLock lock(mailMu_);
        if (mailbox_.empty())
            return;
        draining_.swap(mailbox_);
    }
    // Canonical order: thread interleaving decided only the vector
    // order above, never the schedule order below.
    std::sort(draining_.begin(), draining_.end(),
              [](const MailEntry &a, const MailEntry &b) {
                  if (a.when != b.when)
                      return a.when < b.when;
                  if (a.priority != b.priority)
                      return a.priority < b.priority;
                  if (a.srcPart != b.srcPart)
                      return a.srcPart < b.srcPart;
                  return a.srcSeq < b.srcSeq;
              });
    for (MailEntry &e : draining_) {
        // The lookahead contract: a cross post can never target the
        // destination partition's past.
        assert(e.when >= now_ &&
               "Partition::drainMailbox: post below the local clock "
               "(lookahead violated)");
        queue_.schedule(e.when, std::move(e.fn), e.priority);
    }
    draining_.clear();
}

std::size_t
Partition::mailboxSize() const
{
    RealLock lock(mailMu_);
    return mailbox_.size();
}

}  // namespace hmcsim
