/**
 * @file
 * Conservative-lookahead parallel run loop over per-cube partitions.
 *
 * Synchronization model (classic conservative PDES, Graphite-style):
 * all partitions repeatedly agree on a window [tmin, tmin + L) where
 * tmin is the globally earliest pending event and L is the lookahead
 * -- the minimum latency of any cross-partition interaction.  Every
 * event inside the window executes in parallel, partition-local and
 * lock-free, because the lookahead guarantees any cross-partition post
 * it generates lands at or beyond the window end.  At the barrier the
 * mailboxes drain in canonical order and the next window is computed.
 *
 * For the cube chain, L is the SerDes link floor: a packet handoff
 * costs at least one flit serialization + wire + SerDes pipeline
 * before the remote arrive() fires, and a token refund costs the
 * token-return latency -- L = min of the two over the link config
 * (3.2 ns at the paper's defaults, i.e. thousands of ticks per
 * window).
 *
 * Windows are derived purely from simulated state (tmin, the global
 * event horizon, the run deadline), never from thread timing, and
 * mailbox drains are canonically ordered -- so the event schedule is
 * bit-identical for any sim.threads value, including 1.
 *
 * One partition is special: the "global" partition (id = numCubes)
 * hosts whole-tree observers (stats sampler, congestion recorder).
 * Its events run on thread 0 only, at a barrier, after every cube
 * partition has fully executed the observer's tick -- windows are
 * clipped to the next global event so the observer always reads a
 * tree quiesced at exactly its firing time.
 *
 * Threads are persistent: spawned once, parked on a condition
 * variable between run() calls, and coordinated with spin barriers
 * (sense-reversing, ~100 ns) inside a run -- at thousands of
 * simulated ticks per window the three barriers per window are noise
 * next to the event work they fence.
 */

#ifndef HMCSIM_SIM_PARALLEL_SCHEDULER_H_
#define HMCSIM_SIM_PARALLEL_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.h"
#include "sim/partition.h"
#include "sim/sim_config.h"

namespace hmcsim {

class Kernel;

/**
 * Sense-reversing spin barrier for the in-run window phases.
 * @p spin_limit is the busy-wait bound before falling back to
 * yield(): high on dedicated cores (the release is microseconds
 * away), zero when the threads oversubscribe the hardware (the
 * releasing thread cannot run until the waiter gives its core up).
 */
class SpinBarrier
{
  public:
    SpinBarrier(std::uint32_t n, std::uint32_t spin_limit)
        : n_(n), spinLimit_(spin_limit)
    {
    }

    void arriveAndWait();

  private:
    const std::uint32_t n_;
    const std::uint32_t spinLimit_;
    std::atomic<std::uint32_t> pending_{0};
    std::atomic<std::uint32_t> gen_{0};
};

class ParallelScheduler
{
  public:
    /**
     * @param partitions one per cube
     * @param threads    worker count; partitions map statically
     *                   (partition p runs on thread p % threads)
     * @param lookahead  conservative sync horizon in ticks (> 0)
     */
    ParallelScheduler(Kernel &kernel, const SimConfig &cfg,
                      std::uint32_t partitions, std::uint32_t threads,
                      Tick lookahead);
    ~ParallelScheduler();

    ParallelScheduler(const ParallelScheduler &) = delete;
    ParallelScheduler &operator=(const ParallelScheduler &) = delete;

    std::uint32_t numPartitions() const
    {
        return static_cast<std::uint32_t>(parts_.size());
    }
    std::uint32_t numThreads() const { return threads_; }
    Tick lookahead() const { return lookahead_; }

    Partition *partition(std::uint32_t id);
    /** The whole-tree observer partition (samplers; thread 0 only). */
    Partition *globalPartition() { return global_.get(); }

    /** Window-loop equivalent of Kernel::run. */
    std::uint64_t run(Tick until);

    /**
     * Window-loop equivalent of Kernel::runUntil: @p pred is
     * evaluated by thread 0 at window barriers (stop granularity is
     * one lookahead window, not one event).
     */
    // hmcsim-lint: allow(std-function) one predicate per run(), not per-event
    std::uint64_t runUntil(const std::function<bool()> &pred, Tick until);

    /** Events executed across every partition over the lifetime. */
    std::uint64_t eventsExecuted() const;

  private:
    struct alignas(64) PaddedTick {
        Tick v = kTickNever;
    };

    Kernel &kernel_;
    Tick lookahead_;
    std::uint32_t threads_;
    std::vector<std::unique_ptr<Partition>> parts_;
    std::unique_ptr<Partition> global_;

    SpinBarrier barrier_;
    /** Per-thread window minima, reduced by thread 0 (padded so the
     *  publishing stores never share a cache line). */
    std::vector<PaddedTick> localMin_;

    // Shared window-loop state.  Written by thread 0 between barriers
    // and read by everyone after; the barrier's atomics provide the
    // happens-before edges, so the fields themselves stay plain.
    Tick until_ = kTickNever;
    // hmcsim-lint: allow(std-function) one predicate per run(), not per-event
    const std::function<bool()> *pred_ = nullptr;
    Tick windowEndExcl_ = 0;
    bool doneFlag_ = false;
    bool predHit_ = false;

    // Inter-run parking for the persistent workers.
    std::mutex runMu_;
    std::condition_variable runCv_;
    std::uint64_t runGen_ = 0;
    bool exit_ = false;
    std::vector<std::thread> workers_;

    void workerMain(std::uint32_t tid);
    void windowLoop(std::uint32_t tid);
    void executeWindow(Partition *p, Tick end);
    // hmcsim-lint: allow(std-function) one predicate per run(), not per-event
    std::uint64_t runCommon(const std::function<bool()> *pred, Tick until);
};

}  // namespace hmcsim

#endif  // HMCSIM_SIM_PARALLEL_SCHEDULER_H_
