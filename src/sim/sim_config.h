/**
 * @file
 * Engine configuration: the `sim.*` config surface.
 *
 * These knobs select *implementations*, never *behaviour*: every
 * setting produces the exact same event execution order (and therefore
 * bit-identical simulation results); they only trade engine wall-clock
 * speed.  `heap` is the reference binary-heap queue kept for
 * differential testing; `calendar` is the production two-level
 * calendar queue tuned for the near-monotonic dense schedule pattern
 * of cycle-level simulation.
 *
 * Knobs:
 *   sim.event_queue          heap|calendar   pending-event structure
 *                                            (default calendar)
 *   sim.calendar_bucket_ps   u64   calendar bucket width in ticks
 *                                  (power of two, default 512)
 *   sim.calendar_buckets     u64   near-future ring size in buckets
 *                                  (power of two, default 4096; the
 *                                  ring horizon is width * buckets,
 *                                  ~2 us at the defaults -- beyond it
 *                                  events wait in the far-future heap)
 *   sim.packet_pool          bool  recycle HmcPacket allocations
 *                                  through the freelist-backed packet
 *                                  pool (default true; false restores
 *                                  plain make_shared for differential
 *                                  testing)
 *   sim.parallel             off|on  partitioned-parallel event core:
 *                                  one partition + local clock per
 *                                  cube, conservative chain-link
 *                                  lookahead windows (default off --
 *                                  the serial run loop, bit-identical
 *                                  to every prior release)
 *   sim.threads              u64   worker threads for sim.parallel=on;
 *                                  0 (default) means one per cube,
 *                                  capped at hardware concurrency.
 *                                  Results are identical for every
 *                                  thread count.
 */

#ifndef HMCSIM_SIM_SIM_CONFIG_H_
#define HMCSIM_SIM_SIM_CONFIG_H_

#include <cstdint>
#include <string>

#include "common/config.h"

namespace hmcsim {

/** Pending-event container implementations. */
enum class EventQueueKind {
    /** Reference binary min-heap (std::priority_queue semantics). */
    Heap,
    /** Two-level calendar: near-future bucket ring + far-future heap. */
    Calendar,
};

EventQueueKind eventQueueKindFromString(const std::string &s);
std::string toString(EventQueueKind k);

struct SimConfig {
    std::string eventQueue = "calendar";
    std::uint64_t calendarBucketPs = 512;
    std::uint64_t calendarBuckets = 4096;
    bool packetPool = true;
    std::string parallel = "off";
    std::uint64_t threads = 0;

    EventQueueKind
    queueKind() const
    {
        return eventQueueKindFromString(eventQueue);
    }

    bool parallelEnabled() const { return parallel == "on"; }

    void validate() const;

    /** Read "sim.*" keys over the defaults. */
    static SimConfig fromConfig(const Config &cfg);
    void toConfig(Config &cfg) const;
};

}  // namespace hmcsim

#endif  // HMCSIM_SIM_SIM_CONFIG_H_
