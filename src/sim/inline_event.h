/**
 * @file
 * Allocation-free event callable for the simulation hot path.
 *
 * std::function<void()> heap-allocates any capture larger than its
 * small-buffer (16 B on libstdc++) and pays a manager-function call on
 * every move and destroy -- at ~10^6 scheduled events per wall second
 * that malloc/free pair dominates the engine.  InlineEvent stores the
 * capture inline in a fixed buffer sized for the largest real capture
 * in the codebase (a NoC eject callback carrying a NocMessage plus a
 * std::function deliver hook) and rejects anything bigger at compile
 * time, so schedule() never allocates.
 *
 * Events are move-only; a move transfers the capture and empties the
 * source (the queue's sift operations only read the ordering key of a
 * moved-from entry, never invoke it).  Storage itself is recycled by
 * the event queue: entries live by value inside bucket/heap vectors
 * whose capacity is retained across the run, which is the freelist --
 * after warmup no event path touches the allocator.
 */

#ifndef HMCSIM_SIM_INLINE_EVENT_H_
#define HMCSIM_SIM_INLINE_EVENT_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace hmcsim {

/**
 * Inline capture capacity in bytes.  Sized for the largest scheduled
 * lambda in the tree (Router::tryDrain's router-to-router arrival:
 * Router* + port int + a 48 B NocMessage).  Growing a capture past
 * this is a compile error at the schedule() site, not a silent
 * fallback to heap allocation -- raise the constant deliberately, and
 * check the queue-entry size the event rides in (sort/move cost on
 * the calendar hot path scales with it).
 */
constexpr std::size_t kInlineEventCapacity = 64;

class InlineEvent
{
  public:
    InlineEvent() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineEvent>>>
    InlineEvent(F &&fn)  // NOLINT: implicit, mirrors std::function
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= kInlineEventCapacity,
                      "event capture exceeds kInlineEventCapacity; "
                      "raise it in sim/inline_event.h");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "over-aligned event capture");
        static_assert(std::is_nothrow_move_constructible_v<Fn>,
                      "event captures must be nothrow-movable");
        new (buf_) Fn(std::forward<F>(fn));
        ops_ = &OpsFor<Fn>::ops;
    }

    InlineEvent(InlineEvent &&other) noexcept : ops_(other.ops_)
    {
        if (ops_) {
            ops_->relocate(buf_, other.buf_);
            other.ops_ = nullptr;
        }
    }

    InlineEvent &
    operator=(InlineEvent &&other) noexcept
    {
        if (this != &other) {
            if (ops_)
                ops_->destroy(buf_);
            ops_ = other.ops_;
            if (ops_) {
                ops_->relocate(buf_, other.buf_);
                other.ops_ = nullptr;
            }
        }
        return *this;
    }

    InlineEvent(const InlineEvent &) = delete;
    InlineEvent &operator=(const InlineEvent &) = delete;

    ~InlineEvent()
    {
        if (ops_)
            ops_->destroy(buf_);
    }

    /** True when a callable is held (mirrors std::function). */
    explicit operator bool() const { return ops_ != nullptr; }

    /** Invoke the capture.  Undefined on an empty event. */
    void operator()() { ops_->invoke(buf_); }

  private:
    struct Ops {
        void (*invoke)(void *self);
        /** Move-construct dst from src, then destroy src. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *self);
    };

    template <typename Fn>
    struct OpsFor {
        static void
        invoke(void *self)
        {
            (*static_cast<Fn *>(self))();
        }
        static void
        relocate(void *dst, void *src)
        {
            Fn *s = static_cast<Fn *>(src);
            new (dst) Fn(std::move(*s));
            s->~Fn();
        }
        static void
        destroy(void *self)
        {
            static_cast<Fn *>(self)->~Fn();
        }
        static constexpr Ops ops{&invoke, &relocate, &destroy};
    };

    const Ops *ops_ = nullptr;
    alignas(std::max_align_t) unsigned char buf_[kInlineEventCapacity];
};

}  // namespace hmcsim

#endif  // HMCSIM_SIM_INLINE_EVENT_H_
