/**
 * @file
 * Allocation-free event callable for the simulation hot path.
 *
 * std::function<void()> heap-allocates any capture larger than its
 * small-buffer (16 B on libstdc++) and pays a manager-function call on
 * every move and destroy -- at ~10^6 scheduled events per wall second
 * that malloc/free pair dominates the engine.  InlineEvent stores the
 * capture inline in a fixed buffer sized for the largest real capture
 * in the codebase (a NoC eject callback carrying a NocMessage plus a
 * std::function deliver hook) and rejects anything bigger at compile
 * time, so schedule() never allocates.
 *
 * Events are move-only; a move transfers the capture and empties the
 * source (the queue's sift operations only read the ordering key of a
 * moved-from entry, never invoke it).  Storage itself is recycled by
 * the event queue: entries live by value inside bucket/heap vectors
 * whose capacity is retained across the run, which is the freelist --
 * after warmup no event path touches the allocator.
 *
 * InlineEvent is the `void()` instantiation of the general
 * InlineFunction template (common/inline_function.h), which the link
 * and chain callback surfaces use for non-nullary signatures.
 */

#ifndef HMCSIM_SIM_INLINE_EVENT_H_
#define HMCSIM_SIM_INLINE_EVENT_H_

#include <cstddef>

#include "common/inline_function.h"

namespace hmcsim {

/**
 * Inline capture capacity in bytes.  Sized for the largest scheduled
 * lambda in the tree (Router::tryDrain's router-to-router arrival:
 * Router* + port int + a 48 B NocMessage).  Growing a capture past
 * this is a compile error at the schedule() site, not a silent
 * fallback to heap allocation -- raise the constant deliberately, and
 * check the queue-entry size the event rides in (sort/move cost on
 * the calendar hot path scales with it).
 */
constexpr std::size_t kInlineEventCapacity = 64;

using InlineEvent = InlineFunction<void(), kInlineEventCapacity>;

}  // namespace hmcsim

#endif  // HMCSIM_SIM_INLINE_EVENT_H_
