#include "sim/sim_config.h"

#include "common/log.h"

namespace hmcsim {

namespace {

bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

}  // namespace

EventQueueKind
eventQueueKindFromString(const std::string &s)
{
    if (s == "heap")
        return EventQueueKind::Heap;
    if (s == "calendar")
        return EventQueueKind::Calendar;
    fatal("sim: unknown event queue '" + s + "' (expected heap|calendar)");
}

std::string
toString(EventQueueKind k)
{
    switch (k) {
      case EventQueueKind::Heap:
        return "heap";
      case EventQueueKind::Calendar:
        return "calendar";
    }
    return "heap";
}

void
SimConfig::validate() const
{
    eventQueueKindFromString(eventQueue);
    if (!isPowerOfTwo(calendarBucketPs))
        fatal("sim: calendar_bucket_ps must be a power of two");
    if (!isPowerOfTwo(calendarBuckets))
        fatal("sim: calendar_buckets must be a power of two");
    if (calendarBuckets < 2)
        fatal("sim: calendar_buckets must be >= 2");
    if (parallel != "off" && parallel != "on")
        fatal("sim: unknown parallel mode '" + parallel +
              "' (expected off|on)");
    if (threads > 256)
        fatal("sim: threads must be <= 256");
}

SimConfig
SimConfig::fromConfig(const Config &cfg)
{
    SimConfig c;
    c.eventQueue = cfg.getString("sim.event_queue", c.eventQueue);
    c.calendarBucketPs =
        cfg.getU64("sim.calendar_bucket_ps", c.calendarBucketPs);
    c.calendarBuckets = cfg.getU64("sim.calendar_buckets", c.calendarBuckets);
    c.packetPool = cfg.getBool("sim.packet_pool", c.packetPool);
    c.parallel = cfg.getString("sim.parallel", c.parallel);
    c.threads = cfg.getU64("sim.threads", c.threads);
    c.validate();
    return c;
}

void
SimConfig::toConfig(Config &cfg) const
{
    cfg.set("sim.event_queue", eventQueue);
    cfg.setU64("sim.calendar_bucket_ps", calendarBucketPs);
    cfg.setU64("sim.calendar_buckets", calendarBuckets);
    cfg.setBool("sim.packet_pool", packetPool);
    cfg.set("sim.parallel", parallel);
    cfg.setU64("sim.threads", threads);
}

}  // namespace hmcsim
