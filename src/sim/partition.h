/**
 * @file
 * One shard of the partitioned-parallel event core.
 *
 * A Partition owns a private EventQueue and a private simulated clock.
 * Under `sim.parallel=on` the component tree is sharded per cube (the
 * chain fabric's natural cut: cubes interact only through SerDes links
 * with a fixed serialize + store-and-forward latency floor), and each
 * partition's events execute on exactly one worker thread per
 * conservative-lookahead window -- so the queue and the clock need no
 * locking at all; the assert-only PartitionMutex inside EventQueue
 * keeps enforcing the single-owner discipline.
 *
 * The only shared surface is the inbound mailbox: cross-partition
 * packet handoffs (SerdesLink arrivals and token refunds) post into
 * the destination partition's mailbox under a real mutex, stamped with
 * a timestamp the lookahead guarantees is at or beyond every window
 * the destination could currently be executing.  Mailboxes drain only
 * at window barriers, in a canonical (when, priority, source
 * partition, source sequence) order, which makes the resulting event
 * schedule independent of thread count and post-arrival interleaving.
 */

#ifndef HMCSIM_SIM_PARTITION_H_
#define HMCSIM_SIM_PARTITION_H_

#include <cstdint>
#include <vector>

#include "common/partition_mutex.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "sim/event_queue.h"

namespace hmcsim {

class Partition
{
  public:
    explicit Partition(std::uint32_t id) : id_(id) {}

    Partition(const Partition &) = delete;
    Partition &operator=(const Partition &) = delete;

    std::uint32_t id() const { return id_; }

    EventQueue &queue() { return queue_; }
    const EventQueue &queue() const { return queue_; }

    /** This partition's local clock (the time of its current event). */
    Tick localNow() const { return now_; }
    void setLocalNow(Tick t) { now_ = t; }

    /**
     * Deterministic sequence for this partition's outbound
     * cross-partition posts.  Only ever called from the partition's
     * own executing events, so it needs no lock; its order mirrors the
     * partition's (deterministic) execution order.
     */
    std::uint64_t nextCrossSeq() { return crossSeq_++; }

    /**
     * Post an event into this partition from another partition.  The
     * caller (the parallel scheduler's lookahead contract) guarantees
     * @p when is at or beyond the current window's end, so the post
     * can never land in this partition's past.  Thread-safe.
     */
    void post(Tick when, int priority, std::uint32_t src_part,
              std::uint64_t src_seq, EventFn fn);

    /**
     * Move every mailbox entry into the event queue.  Must only run at
     * a window barrier (no concurrent post can target a quiescent
     * window).  Entries are sorted by (when, priority, source
     * partition, source sequence) before scheduling so the local seq
     * numbers they receive -- and therefore all downstream tie-breaks
     * -- are independent of the posting threads' interleaving.
     */
    void drainMailbox();

    /** Pending mailbox entries (tests/diagnostics). */
    std::size_t mailboxSize() const;

  private:
    struct MailEntry {
        Tick when;
        int priority;
        std::uint32_t srcPart;
        std::uint64_t srcSeq;
        EventFn fn;
    };

    std::uint32_t id_;
    EventQueue queue_;
    Tick now_ = 0;
    std::uint64_t crossSeq_ = 0;

    mutable RealMutex mailMu_;
    std::vector<MailEntry> mailbox_ HMCSIM_GUARDED_BY(mailMu_);
    /** Drain-side scratch (owner thread only, outside the lock);
     *  reused so steady state never allocates. */
    std::vector<MailEntry> draining_;
};

/**
 * The partition whose events the calling thread is currently
 * executing; null on a thread outside the parallel run loop (and
 * always null when `sim.parallel=off`).  Kernel::now() and the
 * schedule calls route through it, which is how the entire component
 * tree runs unmodified on sharded clocks.
 */
extern thread_local Partition *t_schedPartition;

/** Scoped setter used by the run loop and setup-time scoping. */
class ScopedSchedulePartition
{
  public:
    explicit ScopedSchedulePartition(Partition *p)
        : prev_(t_schedPartition)
    {
        t_schedPartition = p;
    }
    ~ScopedSchedulePartition() { t_schedPartition = prev_; }

    ScopedSchedulePartition(const ScopedSchedulePartition &) = delete;
    ScopedSchedulePartition &
    operator=(const ScopedSchedulePartition &) = delete;

  private:
    Partition *prev_;
};

/**
 * Shard index for per-partition observability state (trace rings):
 * the executing partition's id, or 0 outside the parallel run loop.
 */
inline std::uint32_t
currentPartitionShard()
{
    const Partition *p = t_schedPartition;
    return p ? p->id() : 0;
}

}  // namespace hmcsim

#endif  // HMCSIM_SIM_PARTITION_H_
