/**
 * @file
 * Clock domains.  Each hardware block (FPGA fabric, NoC, DRAM bus) runs
 * at its own frequency; a ClockDomain converts between cycles and ticks
 * and aligns arbitrary times to cycle boundaries.
 */

#ifndef HMCSIM_SIM_CLOCK_H_
#define HMCSIM_SIM_CLOCK_H_

#include <cstdint>
#include <string>

#include "common/types.h"

namespace hmcsim {

class ClockDomain
{
  public:
    /**
     * @param name human-readable domain name (diagnostics)
     * @param period_ticks clock period in ticks; must be > 0
     * @param phase_ticks offset of cycle 0 from tick 0
     */
    ClockDomain(std::string name, Tick period_ticks, Tick phase_ticks = 0);

    /** Construct from frequency in MHz. */
    static ClockDomain fromMhz(std::string name, double mhz);

    const std::string &name() const { return name_; }
    Tick period() const { return period_; }
    double frequencyMhz() const;

    /** Cycle index containing tick @p t (cycles start at phase). */
    std::uint64_t cycleAt(Tick t) const;

    /** Tick at which cycle @p c begins. */
    Tick cycleStart(std::uint64_t c) const;

    /**
     * Earliest cycle boundary at or after @p t.  Used to model
     * synchronizer behaviour when a packet crosses domains.
     */
    Tick nextEdgeAtOrAfter(Tick t) const;

    /** Earliest cycle boundary strictly after @p t. */
    Tick nextEdgeAfter(Tick t) const;

  private:
    std::string name_;
    Tick period_;
    Tick phase_;
};

}  // namespace hmcsim

#endif  // HMCSIM_SIM_CLOCK_H_
