#include "sim/parallel_scheduler.h"

#include <algorithm>

#include "common/log.h"
#include "sim/kernel.h"

namespace hmcsim {

namespace {

inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#else
    std::this_thread::yield();
#endif
}

}  // namespace

void
SpinBarrier::arriveAndWait()
{
    const std::uint32_t gen = gen_.load(std::memory_order_acquire);
    if (pending_.fetch_add(1, std::memory_order_acq_rel) + 1 == n_) {
        pending_.store(0, std::memory_order_relaxed);
        gen_.store(gen + 1, std::memory_order_release);
        return;
    }
    std::uint32_t spins = 0;
    while (gen_.load(std::memory_order_acquire) == gen) {
        if (spins++ < spinLimit_)
            cpuRelax();
        else
            std::this_thread::yield();
    }
}

ParallelScheduler::ParallelScheduler(Kernel &kernel, const SimConfig &cfg,
                                     std::uint32_t partitions,
                                     std::uint32_t threads, Tick lookahead)
    : kernel_(kernel), lookahead_(lookahead),
      threads_(std::max<std::uint32_t>(
          1, std::min(threads, partitions))),
      barrier_(std::max<std::uint32_t>(
                   1, std::min(threads, partitions)),
               std::min(threads, partitions) <=
                       std::thread::hardware_concurrency()
                   ? 4096
                   : 0),
      localMin_(std::max<std::uint32_t>(
          1, std::min(threads, partitions)))
{
    if (partitions < 1)
        panic("ParallelScheduler: need at least one partition");
    if (lookahead_ == 0)
        panic("ParallelScheduler: zero lookahead (no conservative "
              "window exists)");
    for (std::uint32_t p = 0; p < partitions; ++p) {
        parts_.push_back(std::make_unique<Partition>(p));
        parts_.back()->queue().configure(cfg);
    }
    global_ = std::make_unique<Partition>(partitions);
    global_->queue().configure(cfg);
    for (std::uint32_t tid = 1; tid < threads_; ++tid)
        workers_.emplace_back([this, tid] { workerMain(tid); });
}

ParallelScheduler::~ParallelScheduler()
{
    {
        std::lock_guard<std::mutex> lock(runMu_);
        exit_ = true;
    }
    runCv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

Partition *
ParallelScheduler::partition(std::uint32_t id)
{
    if (id >= parts_.size())
        panic("ParallelScheduler::partition: id out of range");
    return parts_[id].get();
}

std::uint64_t
ParallelScheduler::eventsExecuted() const
{
    std::uint64_t n = global_->queue().executedCount();
    for (const auto &p : parts_)
        n += p->queue().executedCount();
    return n;
}

void
ParallelScheduler::workerMain(std::uint32_t tid)
{
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(runMu_);
            runCv_.wait(lock,
                        [this, seen] { return exit_ || runGen_ != seen; });
            if (exit_)
                return;
            seen = runGen_;
        }
        windowLoop(tid);
    }
}

void
ParallelScheduler::executeWindow(Partition *p, Tick end)
{
    ScopedSchedulePartition scope(p);
    EventQueue &q = p->queue();
    for (;;) {
        const Tick next = q.nextTime();
        if (next >= end)
            break;
        p->setLocalNow(next);
        q.executeNext();
    }
}

void
ParallelScheduler::windowLoop(std::uint32_t tid)
{
    const std::uint32_t np = static_cast<std::uint32_t>(parts_.size());
    for (;;) {
        // Phase A: publish the earliest pending time over this
        // thread's partitions (thread 0 also covers the global one).
        Tick m = kTickNever;
        for (std::uint32_t p = tid; p < np; p += threads_)
            m = std::min(m, parts_[p]->queue().nextTime());
        if (tid == 0)
            m = std::min(m, global_->queue().nextTime());
        localMin_[tid].v = m;
        barrier_.arriveAndWait();

        // Phase B: thread 0 reduces the window while everyone else
        // waits; the whole tree is quiesced here, so the predicate
        // sees a consistent state.
        if (tid == 0) {
            Tick tmin = kTickNever;
            for (const PaddedTick &t : localMin_)
                tmin = std::min(tmin, t.v);
            bool done = false;
            if (kernel_.stopRequested()) {
                done = true;
            } else if (pred_ && (*pred_)()) {
                done = true;
                predHit_ = true;
            } else if (tmin == kTickNever || tmin > until_) {
                done = true;
            }
            doneFlag_ = done;
            if (!done) {
                Tick end = lookahead_ > kTickNever - tmin
                               ? kTickNever
                               : tmin + lookahead_;
                if (until_ != kTickNever)
                    end = std::min(end, until_ + 1);
                // Clip to the next whole-tree observer event: it must
                // fire with every partition quiesced at its tick.
                const Tick tg = global_->queue().nextTime();
                if (tg != kTickNever)
                    end = std::min(end, tg + 1);
                windowEndExcl_ = end;
            }
        }
        barrier_.arriveAndWait();
        if (doneFlag_) {
            // Exit consensus: one more barrier AFTER every thread has
            // read doneFlag_.  Without it thread 0 could return, start
            // the next run, and reset doneFlag_ while a slow worker is
            // still about to read it -- the worker would then sail
            // into a stale window and desynchronize the barrier
            // phases permanently.
            barrier_.arriveAndWait();
            return;
        }

        // Phase C: the parallel part -- every partition executes its
        // window slice lock-free on its own clock.
        const Tick end = windowEndExcl_;
        for (std::uint32_t p = tid; p < np; p += threads_)
            executeWindow(parts_[p].get(), end);
        barrier_.arriveAndWait();

        // Phase D: drain the cross-partition mailboxes in canonical
        // order, then let thread 0 run any due global events against
        // the quiesced tree.  (Observers only read model counters, so
        // they can overlap the other threads' queue-only drains.)
        for (std::uint32_t p = tid; p < np; p += threads_)
            parts_[p]->drainMailbox();
        if (tid == 0 && global_->queue().nextTime() < end)
            executeWindow(global_.get(), end);
    }
}

std::uint64_t
// hmcsim-lint: allow(std-function) one predicate per run(), not per-event
ParallelScheduler::runCommon(const std::function<bool()> *pred, Tick until)
{
    const std::uint64_t before = eventsExecuted();
    until_ = until;
    pred_ = pred;
    doneFlag_ = false;
    predHit_ = false;
    {
        std::lock_guard<std::mutex> lock(runMu_);
        ++runGen_;
    }
    runCv_.notify_all();
    windowLoop(0);

    // Mirror the serial kernel's idle-horizon semantics: back-to-back
    // measurement windows see contiguous time even when the schedule
    // drains early -- unless a stop or a satisfied predicate ended the
    // run at a meaningful earlier time.
    Tick final_now = global_->localNow();
    for (const auto &p : parts_)
        final_now = std::max(final_now, p->localNow());
    if (until != kTickNever && final_now < until &&
        !kernel_.stopRequested() && !predHit_)
        final_now = until;
    global_->setLocalNow(final_now);
    for (const auto &p : parts_)
        p->setLocalNow(final_now);
    kernel_.setNow(final_now);
    return eventsExecuted() - before;
}

std::uint64_t
ParallelScheduler::run(Tick until)
{
    return runCommon(nullptr, until);
}

std::uint64_t
// hmcsim-lint: allow(std-function) one predicate per run(), not per-event
ParallelScheduler::runUntil(const std::function<bool()> &pred, Tick until)
{
    return runCommon(&pred, until);
}

}  // namespace hmcsim
