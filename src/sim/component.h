/**
 * @file
 * Base class for named simulation components.  Components form a tree
 * (device -> vault controller -> bank, ...) whose paths name statistics
 * in dumps, mirroring gem5's SimObject hierarchy at a small scale.
 */

#ifndef HMCSIM_SIM_COMPONENT_H_
#define HMCSIM_SIM_COMPONENT_H_

#include <map>
#include <string>
#include <vector>

#include "sim/kernel.h"

namespace hmcsim {

class Component
{
  public:
    /**
     * @param kernel the simulation kernel (not owned, must outlive us)
     * @param parent enclosing component or nullptr for a root
     * @param name leaf name; the full path is parent-path.name
     */
    Component(Kernel &kernel, Component *parent, std::string name);

    virtual ~Component();

    Component(const Component &) = delete;
    Component &operator=(const Component &) = delete;

    const std::string &name() const { return name_; }
    std::string path() const;
    Component *parent() const { return parent_; }
    const std::vector<Component *> &children() const { return children_; }

    Kernel &kernel() const { return kernel_; }
    Tick now() const { return kernel_.now(); }

    /**
     * Contribute statistics as path-qualified name/value pairs.
     * Default implementation recurses into children only.
     */
    virtual void reportStats(std::map<std::string, double> &out) const;

    /** Reset local statistics; recurses into children. */
    virtual void resetStats();

  protected:
    /** Hook for subclasses: add own stats into @p out. */
    virtual void reportOwnStats(std::map<std::string, double> &out) const;

    /** Hook for subclasses: clear own stats. */
    virtual void resetOwnStats();

    /** Qualify @p stat with this component's path. */
    std::string statName(const std::string &stat) const;

  private:
    Kernel &kernel_;
    Component *parent_;
    std::string name_;
    std::vector<Component *> children_;

    void addChild(Component *child);
    void removeChild(Component *child);
};

}  // namespace hmcsim

#endif  // HMCSIM_SIM_COMPONENT_H_
