#include "sim/component.h"

#include <algorithm>

#include "common/log.h"

namespace hmcsim {

Component::Component(Kernel &kernel, Component *parent, std::string name)
    : kernel_(kernel), parent_(parent), name_(std::move(name))
{
    if (name_.empty())
        panic("Component: empty name");
    if (name_.find('.') != std::string::npos)
        panic("Component '" + name_ + "': '.' is reserved for paths");
    if (parent_)
        parent_->addChild(this);
}

Component::~Component()
{
    if (parent_)
        parent_->removeChild(this);
}

std::string
Component::path() const
{
    if (!parent_)
        return name_;
    return parent_->path() + "." + name_;
}

void
Component::addChild(Component *child)
{
    children_.push_back(child);
}

void
Component::removeChild(Component *child)
{
    auto it = std::find(children_.begin(), children_.end(), child);
    if (it != children_.end())
        children_.erase(it);
}

void
Component::reportStats(std::map<std::string, double> &out) const
{
    reportOwnStats(out);
    for (const Component *c : children_)
        c->reportStats(out);
}

void
Component::resetStats()
{
    resetOwnStats();
    for (Component *c : children_)
        c->resetStats();
}

void
Component::reportOwnStats(std::map<std::string, double> &) const
{
}

void
Component::resetOwnStats()
{
}

std::string
Component::statName(const std::string &stat) const
{
    return path() + "." + stat;
}

}  // namespace hmcsim
