#include "obs/metrics.h"

#include <algorithm>

#include "common/log.h"

namespace hmcsim {

std::string
toString(MetricKind k)
{
    switch (k) {
      case MetricKind::Counter:
        return "counter";
      case MetricKind::Gauge:
        return "gauge";
      case MetricKind::Sampler:
        return "sampler";
      case MetricKind::Histogram:
        return "histogram";
    }
    return "counter";
}

void
MetricPoint::merge(const MetricPoint &other)
{
    if (kind != other.kind)
        panic("MetricPoint::merge: kind mismatch");
    switch (kind) {
      case MetricKind::Counter:
        value += other.value;
        break;
      case MetricKind::Gauge:
        value = other.value;
        break;
      case MetricKind::Sampler:
        sample.merge(other.sample);
        break;
      case MetricKind::Histogram:
        if (bins.empty()) {
            *this = other;
            break;
        }
        if (bins.size() != other.bins.size() || binLo != other.binLo ||
            binHi != other.binHi)
            panic("MetricPoint::merge: histogram shape mismatch");
        for (std::size_t i = 0; i < bins.size(); ++i)
            bins[i] += other.bins[i];
        break;
    }
}

const MetricPoint *
MetricsSnapshot::find(const std::string &path) const
{
    const auto it = points_.find(path);
    return it == points_.end() ? nullptr : &it->second;
}

double
MetricsSnapshot::value(const std::string &path) const
{
    const MetricPoint *p = find(path);
    return p ? p->value : 0.0;
}

void
MetricsSnapshot::merge(const MetricsSnapshot &other)
{
    for (const auto &[path, point] : other.points_) {
        const auto it = points_.find(path);
        if (it == points_.end())
            points_.emplace(path, point);
        else
            it->second.merge(point);
    }
}

MetricsSnapshot
MetricsSnapshot::delta(const MetricsSnapshot &earlier) const
{
    MetricsSnapshot out;
    for (const auto &[path, point] : points_) {
        const MetricPoint *prev = earlier.find(path);
        MetricPoint d = point;
        switch (point.kind) {
          case MetricKind::Counter:
            if (prev)
                d.value -= prev->value;
            break;
          case MetricKind::Gauge:
            break;  // current reading
          case MetricKind::Sampler: {
            // Interval statistics: only count/sum subtract cleanly, so
            // the delta point carries the interval mean as its value
            // and a fresh SampleStats holding just the interval sum.
            const std::uint64_t prevN = prev ? prev->sample.count() : 0;
            const double prevSum = prev ? prev->sample.sum() : 0.0;
            const std::uint64_t n = point.sample.count() - prevN;
            const double sum = point.sample.sum() - prevSum;
            d.sample.reset();
            d.value = n ? sum / static_cast<double>(n) : 0.0;
            if (n)
                d.sample.add(d.value);  // carries count=1, mean=interval
            break;
          }
          case MetricKind::Histogram:
            continue;  // dropped from interval rows
        }
        out.points_.emplace(path, std::move(d));
    }
    return out;
}

void
MetricsRegistry::addCounter(const std::string &path, const Counter *c,
                            const void *owner)
{
    PartitionLock lock(mu_);
    Entry e;
    e.kind = MetricKind::Counter;
    e.counter = c;
    e.owner = owner;
    entries_[path] = std::move(e);
}

void
MetricsRegistry::addGauge(const std::string &path,
                          std::function<double()> fn, const void *owner)
{
    PartitionLock lock(mu_);
    Entry e;
    e.kind = MetricKind::Gauge;
    e.gauge = std::move(fn);
    e.owner = owner;
    entries_[path] = std::move(e);
}

void
MetricsRegistry::addSampler(const std::string &path, const SampleStats *s,
                            const void *owner)
{
    PartitionLock lock(mu_);
    Entry e;
    e.kind = MetricKind::Sampler;
    e.sampler = s;
    e.owner = owner;
    entries_[path] = std::move(e);
}

void
MetricsRegistry::addHistogram(const std::string &path, const Histogram *h,
                              const void *owner)
{
    PartitionLock lock(mu_);
    Entry e;
    e.kind = MetricKind::Histogram;
    e.histogram = h;
    e.owner = owner;
    entries_[path] = std::move(e);
}

void
MetricsRegistry::remove(const std::string &path, const void *owner)
{
    PartitionLock lock(mu_);
    const auto it = entries_.find(path);
    if (it == entries_.end())
        return;
    if (owner != nullptr && it->second.owner != owner)
        return;  // someone re-registered the path; it is theirs now
    entries_.erase(it);
}

bool
MetricsRegistry::has(const std::string &path) const
{
    PartitionLock lock(mu_);
    return entries_.count(path) != 0;
}

std::vector<std::string>
MetricsRegistry::paths() const
{
    PartitionLock lock(mu_);
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &[path, entry] : entries_) {
        (void)entry;
        out.push_back(path);
    }
    return out;
}

MetricPoint
MetricsRegistry::materialize(const Entry &e)
{
    MetricPoint p;
    p.kind = e.kind;
    switch (e.kind) {
      case MetricKind::Counter:
        p.value = static_cast<double>(e.counter->value());
        break;
      case MetricKind::Gauge:
        p.value = e.gauge();
        break;
      case MetricKind::Sampler:
        p.sample = *e.sampler;
        p.value = p.sample.mean();
        break;
      case MetricKind::Histogram:
        p.binLo = e.histogram->lo();
        p.binHi = e.histogram->hi();
        p.bins.resize(e.histogram->bins());
        for (std::size_t i = 0; i < p.bins.size(); ++i)
            p.bins[i] = e.histogram->count(i);
        p.value = static_cast<double>(e.histogram->total());
        break;
    }
    return p;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    PartitionLock lock(mu_);
    MetricsSnapshot out;
    for (const auto &[path, entry] : entries_)
        out.mutablePoints().emplace(path, materialize(entry));
    return out;
}

MetricsSnapshot
MetricsRegistry::snapshotSubtree(const std::string &prefix) const
{
    PartitionLock lock(mu_);
    MetricsSnapshot out;
    for (auto it = entries_.lower_bound(prefix); it != entries_.end();
         ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        out.mutablePoints().emplace(it->first, materialize(it->second));
    }
    return out;
}

MetricSet::~MetricSet()
{
    if (!reg_)
        return;
    for (const std::string &p : paths_)
        reg_->remove(p, this);
}

void
MetricSet::bind(MetricsRegistry *reg, std::string base)
{
    if (reg_ && !paths_.empty())
        panic("MetricSet::bind: already bound with live registrations");
    reg_ = reg;
    base_ = std::move(base);
}

std::string
MetricSet::qualify(const std::string &name) const
{
    return base_.empty() ? name : base_ + "." + name;
}

void
MetricSet::counter(const std::string &name, const Counter *c)
{
    if (!reg_)
        return;
    const std::string p = qualify(name);
    reg_->addCounter(p, c, this);
    paths_.push_back(p);
}

void
MetricSet::gauge(const std::string &name, std::function<double()> fn)
{
    if (!reg_)
        return;
    const std::string p = qualify(name);
    reg_->addGauge(p, std::move(fn), this);
    paths_.push_back(p);
}

void
MetricSet::sampler(const std::string &name, const SampleStats *s)
{
    if (!reg_)
        return;
    const std::string p = qualify(name);
    reg_->addSampler(p, s, this);
    paths_.push_back(p);
}

void
MetricSet::histogram(const std::string &name, const Histogram *h)
{
    if (!reg_)
        return;
    const std::string p = qualify(name);
    reg_->addHistogram(p, h, this);
    paths_.push_back(p);
}

}  // namespace hmcsim
