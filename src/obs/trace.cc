#include "obs/trace.h"

#include <algorithm>
#include <map>

#include "common/log.h"
#include "sim/partition.h"

namespace hmcsim {

const char *
toString(TraceStage s)
{
    switch (s) {
      case TraceStage::Inject:
        return "inject";
      case TraceStage::LinkTx:
        return "link_tx";
      case TraceStage::LinkRx:
        return "link_rx";
      case TraceStage::ChainIngress:
        return "chain_ingress";
      case TraceStage::ChainForward:
        return "chain_forward";
      case TraceStage::VaultEnqueue:
        return "vault_enqueue";
      case TraceStage::DramDone:
        return "dram_done";
      case TraceStage::RespInject:
        return "resp_inject";
      case TraceStage::Eject:
        return "eject";
    }
    return "?";
}

PacketTracer::PacketTracer(TraceMode mode, std::uint64_t sample_every,
                           std::size_t capacity)
    : mode_(mode), sampleEvery_(sample_every == 0 ? 1 : sample_every),
      cap_(capacity == 0 ? 1 : capacity)
{
    setNumShards(1);
}

void
PacketTracer::setNumShards(std::size_t n)
{
    if (eventsRecorded() != 0)
        panic("PacketTracer::setNumShards: tracer already recorded");
    shards_.clear();
    for (std::size_t i = 0; i < std::max<std::size_t>(n, 1); ++i) {
        shards_.push_back(std::make_unique<Shard>());
        PartitionLock lock(shards_.back()->mu);
        shards_.back()->ring.reserve(std::min<std::size_t>(cap_, 4096));
    }
}

PacketTracer::Shard &
PacketTracer::currentShard() const
{
    const std::size_t s = currentPartitionShard();
    return s < shards_.size() ? *shards_[s] : *shards_[0];
}

void
PacketTracer::push(Shard &s, const TraceEvent &ev)
{
    ++s.total;
    if (s.ring.size() < cap_) {
        s.ring.push_back(ev);
        return;
    }
    s.ring[s.next] = ev;
    s.next = (s.next + 1) % cap_;
    s.wrapped = true;
}

void
PacketTracer::record(Tick tick, const HmcPacket &pkt, TraceStage stage,
                     std::uint32_t cube, std::uint32_t where)
{
    if (!wants(pkt))
        return;
    TraceEvent ev;
    ev.tick = tick;
    ev.packet = lifeId(pkt);
    ev.stage = stage;
    ev.cmd = pkt.cmd;
    ev.cube = cube;
    ev.where = where;
    Shard &s = currentShard();
    PartitionLock lock(s.mu);
    push(s, ev);
}

void
PacketTracer::pushStage(Shard &s, const HmcPacket &pkt, Tick t,
                        TraceStage stage, std::uint32_t cube,
                        std::uint32_t where)
{
    if (t == 0)
        return;  // stage never reached / not stamped
    TraceEvent ev;
    ev.tick = t;
    ev.packet = lifeId(pkt);
    ev.stage = stage;
    ev.cmd = pkt.cmd;
    ev.cube = cube;
    ev.where = where;
    push(s, ev);
}

void
PacketTracer::recordLifecycle(const HmcPacket &pkt, std::uint32_t port)
{
    if (!wants(pkt))
        return;
    Shard &s = currentShard();
    PartitionLock lock(s.mu);
    pushStage(s, pkt, pkt.createdAt, TraceStage::Inject, kTraceNoWhere,
              port);
    pushStage(s, pkt, pkt.linkTxAt, TraceStage::LinkTx, kTraceNoWhere,
              pkt.link);
    pushStage(s, pkt, pkt.chainIngressAt, TraceStage::ChainIngress,
              kTraceNoWhere, pkt.link);
    pushStage(s, pkt, pkt.vaultArriveAt, TraceStage::VaultEnqueue,
              pkt.cube, pkt.vault);
    pushStage(s, pkt, pkt.dataReadyAt, TraceStage::DramDone, pkt.cube,
              pkt.vault);
    pushStage(s, pkt, pkt.respInjectAt, TraceStage::RespInject, pkt.cube,
              pkt.vault);
    pushStage(s, pkt, pkt.hostArriveAt, TraceStage::Eject, kTraceNoWhere,
              port);
}

std::vector<TraceEvent>
PacketTracer::eventsLocked(const Shard &s) const
{
    std::vector<TraceEvent> out;
    out.reserve(s.ring.size());
    if (s.wrapped && s.ring.size() == cap_) {
        for (std::size_t i = 0; i < s.ring.size(); ++i)
            out.push_back(s.ring[(s.next + i) % cap_]);
    } else {
        out = s.ring;
    }
    return out;
}

std::uint64_t
PacketTracer::eventsRecorded() const
{
    std::uint64_t total = 0;
    for (const auto &s : shards_) {
        PartitionLock lock(s->mu);
        total += s->total;
    }
    return total;
}

std::vector<TraceEvent>
PacketTracer::events() const
{
    // Merge: concatenate in shard order, then stable-sort by tick.
    // One shard (serial mode) is already chronological, so the sort is
    // the identity and the pre-shard output is preserved bit-for-bit;
    // with many shards exact-tick ties resolve by shard index --
    // deterministic for any thread count.
    std::vector<TraceEvent> out;
    for (const auto &s : shards_) {
        PartitionLock lock(s->mu);
        const std::vector<TraceEvent> evs = eventsLocked(*s);
        out.insert(out.end(), evs.begin(), evs.end());
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.tick < b.tick;
                     });
    return out;
}

void
PacketTracer::clear()
{
    for (const auto &s : shards_) {
        PartitionLock lock(s->mu);
        s->ring.clear();
        s->next = 0;
        s->wrapped = false;
    }
}

void
PacketTracer::dumpChromeJson(std::ostream &os) const
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
    bool first = true;
    emitChromeEvents(os, first);
    os << "\n]}\n";
}

void
PacketTracer::emitChromeEvents(std::ostream &os, bool &first) const
{
    // Group the buffer per packet; within a packet events are already
    // chronological because events() merges the shards by tick.
    std::map<PacketId, std::vector<TraceEvent>> perPacket;
    for (const TraceEvent &ev : events())
        perPacket[ev.packet].push_back(ev);

    const auto ts = [](Tick t) {
        return static_cast<double>(t) / 1e6;  // ps -> us
    };
    const auto comma = [&] {
        if (!first)
            os << ",\n";
        first = false;
    };
    comma();
    os << "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
          "\"args\":{\"name\":\"hmcsim packets\"}}";
    for (const auto &[id, evs] : perPacket) {
        // Consecutive stages become complete slices: the packet is "in"
        // stage i from its timestamp until the next event.
        for (std::size_t i = 0; i + 1 < evs.size(); ++i) {
            const TraceEvent &a = evs[i];
            const TraceEvent &b = evs[i + 1];
            comma();
            os << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << id
               << ",\"name\":\"" << toString(a.stage) << "\",\"cat\":\""
               << toString(a.cmd) << "\",\"ts\":" << ts(a.tick)
               << ",\"dur\":" << ts(b.tick - a.tick) << ",\"args\":{";
            if (a.cube != kTraceNoWhere)
                os << "\"cube\":" << a.cube << ",";
            if (a.where != kTraceNoWhere)
                os << "\"where\":" << a.where << ",";
            os << "\"packet\":" << id << "}}";
        }
        if (!evs.empty()) {
            const TraceEvent &last = evs.back();
            comma();
            os << "{\"ph\":\"i\",\"pid\":1,\"tid\":" << id
               << ",\"name\":\"" << toString(last.stage)
               << "\",\"s\":\"t\",\"ts\":" << ts(last.tick)
               << ",\"args\":{\"packet\":" << id << "}}";
        }
    }
}

void
PacketTracer::dumpLastEvents(std::ostream &os, std::size_t n) const
{
    const std::vector<TraceEvent> evs = events();
    const std::size_t start = evs.size() > n ? evs.size() - n : 0;
    os << "packet trace: last " << (evs.size() - start) << " of "
       << eventsRecorded() << " recorded events\n";
    for (std::size_t i = start; i < evs.size(); ++i) {
        const TraceEvent &ev = evs[i];
        os << "  t=" << ev.tick << "ps pkt=" << ev.packet << " "
           << toString(ev.cmd) << " " << toString(ev.stage);
        if (ev.cube != kTraceNoWhere)
            os << " cube=" << ev.cube;
        if (ev.where != kTraceNoWhere)
            os << " at=" << ev.where;
        os << "\n";
    }
}

}  // namespace hmcsim
