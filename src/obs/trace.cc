#include "obs/trace.h"

#include <algorithm>
#include <map>

#include "common/log.h"

namespace hmcsim {

const char *
toString(TraceStage s)
{
    switch (s) {
      case TraceStage::Inject:
        return "inject";
      case TraceStage::LinkTx:
        return "link_tx";
      case TraceStage::LinkRx:
        return "link_rx";
      case TraceStage::ChainIngress:
        return "chain_ingress";
      case TraceStage::ChainForward:
        return "chain_forward";
      case TraceStage::VaultEnqueue:
        return "vault_enqueue";
      case TraceStage::DramDone:
        return "dram_done";
      case TraceStage::RespInject:
        return "resp_inject";
      case TraceStage::Eject:
        return "eject";
    }
    return "?";
}

PacketTracer::PacketTracer(TraceMode mode, std::uint64_t sample_every,
                           std::size_t capacity)
    : mode_(mode), sampleEvery_(sample_every == 0 ? 1 : sample_every),
      cap_(capacity == 0 ? 1 : capacity)
{
    ring_.reserve(std::min<std::size_t>(cap_, 4096));
}

void
PacketTracer::push(const TraceEvent &ev)
{
    ++total_;
    if (ring_.size() < cap_) {
        ring_.push_back(ev);
        return;
    }
    ring_[next_] = ev;
    next_ = (next_ + 1) % cap_;
    wrapped_ = true;
}

void
PacketTracer::record(Tick tick, const HmcPacket &pkt, TraceStage stage,
                     std::uint32_t cube, std::uint32_t where)
{
    if (!wants(pkt))
        return;
    TraceEvent ev;
    ev.tick = tick;
    ev.packet = lifeId(pkt);
    ev.stage = stage;
    ev.cmd = pkt.cmd;
    ev.cube = cube;
    ev.where = where;
    PartitionLock lock(mu_);
    push(ev);
}

void
PacketTracer::pushStage(const HmcPacket &pkt, Tick t, TraceStage stage,
                        std::uint32_t cube, std::uint32_t where)
{
    if (t == 0)
        return;  // stage never reached / not stamped
    TraceEvent ev;
    ev.tick = t;
    ev.packet = lifeId(pkt);
    ev.stage = stage;
    ev.cmd = pkt.cmd;
    ev.cube = cube;
    ev.where = where;
    push(ev);
}

void
PacketTracer::recordLifecycle(const HmcPacket &pkt, std::uint32_t port)
{
    if (!wants(pkt))
        return;
    PartitionLock lock(mu_);
    pushStage(pkt, pkt.createdAt, TraceStage::Inject, kTraceNoWhere, port);
    pushStage(pkt, pkt.linkTxAt, TraceStage::LinkTx, kTraceNoWhere,
              pkt.link);
    pushStage(pkt, pkt.chainIngressAt, TraceStage::ChainIngress,
              kTraceNoWhere, pkt.link);
    pushStage(pkt, pkt.vaultArriveAt, TraceStage::VaultEnqueue, pkt.cube,
              pkt.vault);
    pushStage(pkt, pkt.dataReadyAt, TraceStage::DramDone, pkt.cube,
              pkt.vault);
    pushStage(pkt, pkt.respInjectAt, TraceStage::RespInject, pkt.cube,
              pkt.vault);
    pushStage(pkt, pkt.hostArriveAt, TraceStage::Eject, kTraceNoWhere,
              port);
}

std::vector<TraceEvent>
PacketTracer::eventsLocked() const
{
    std::vector<TraceEvent> out;
    out.reserve(ring_.size());
    if (wrapped_ && ring_.size() == cap_) {
        for (std::size_t i = 0; i < ring_.size(); ++i)
            out.push_back(ring_[(next_ + i) % cap_]);
    } else {
        out = ring_;
    }
    return out;
}

std::vector<TraceEvent>
PacketTracer::events() const
{
    PartitionLock lock(mu_);
    return eventsLocked();
}

void
PacketTracer::clear()
{
    PartitionLock lock(mu_);
    ring_.clear();
    next_ = 0;
    wrapped_ = false;
}

void
PacketTracer::dumpChromeJson(std::ostream &os) const
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
    bool first = true;
    emitChromeEvents(os, first);
    os << "\n]}\n";
}

void
PacketTracer::emitChromeEvents(std::ostream &os, bool &first) const
{
    // Group the buffer per packet; within a packet events are already
    // chronological because the recorder is single-threaded.
    std::map<PacketId, std::vector<TraceEvent>> perPacket;
    for (const TraceEvent &ev : events())
        perPacket[ev.packet].push_back(ev);

    const auto ts = [](Tick t) {
        return static_cast<double>(t) / 1e6;  // ps -> us
    };
    const auto comma = [&] {
        if (!first)
            os << ",\n";
        first = false;
    };
    comma();
    os << "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
          "\"args\":{\"name\":\"hmcsim packets\"}}";
    for (const auto &[id, evs] : perPacket) {
        // Consecutive stages become complete slices: the packet is "in"
        // stage i from its timestamp until the next event.
        for (std::size_t i = 0; i + 1 < evs.size(); ++i) {
            const TraceEvent &a = evs[i];
            const TraceEvent &b = evs[i + 1];
            comma();
            os << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << id
               << ",\"name\":\"" << toString(a.stage) << "\",\"cat\":\""
               << toString(a.cmd) << "\",\"ts\":" << ts(a.tick)
               << ",\"dur\":" << ts(b.tick - a.tick) << ",\"args\":{";
            if (a.cube != kTraceNoWhere)
                os << "\"cube\":" << a.cube << ",";
            if (a.where != kTraceNoWhere)
                os << "\"where\":" << a.where << ",";
            os << "\"packet\":" << id << "}}";
        }
        if (!evs.empty()) {
            const TraceEvent &last = evs.back();
            comma();
            os << "{\"ph\":\"i\",\"pid\":1,\"tid\":" << id
               << ",\"name\":\"" << toString(last.stage)
               << "\",\"s\":\"t\",\"ts\":" << ts(last.tick)
               << ",\"args\":{\"packet\":" << id << "}}";
        }
    }
}

void
PacketTracer::dumpLastEvents(std::ostream &os, std::size_t n) const
{
    PartitionLock lock(mu_);
    const std::vector<TraceEvent> evs = eventsLocked();
    const std::size_t start = evs.size() > n ? evs.size() - n : 0;
    os << "packet trace: last " << (evs.size() - start) << " of "
       << total_ << " recorded events\n";
    for (std::size_t i = start; i < evs.size(); ++i) {
        const TraceEvent &ev = evs[i];
        os << "  t=" << ev.tick << "ps pkt=" << ev.packet << " "
           << toString(ev.cmd) << " " << toString(ev.stage);
        if (ev.cube != kTraceNoWhere)
            os << " cube=" << ev.cube;
        if (ev.where != kTraceNoWhere)
            os << " at=" << ev.where;
        os << "\n";
    }
}

}  // namespace hmcsim
