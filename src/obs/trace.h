/**
 * @file
 * Packet-lifetime flight recorder.
 *
 * A fixed-capacity ring buffer of per-packet lifecycle events (inject,
 * link tx/rx, chain-hop ingress, vault enqueue, DRAM completion,
 * response injection, eject).  Two levels:
 *
 *  - summary: one batch of events per sampled packet, reconstructed
 *    from the packet's latency-decomposition timestamps when the
 *    response reaches the host (a single hook on the completion path);
 *  - full: live events recorded at every instrumented point while the
 *    packet moves.
 *
 * Off is the default and costs exactly one null-pointer test at each
 * hook site (components cache a tracer pointer that stays null).
 * Recording never changes simulated behavior -- the tracer only reads.
 *
 * The buffer can be dumped as Chrome trace_event JSON
 * (chrome://tracing or https://ui.perfetto.dev) and, on panic(), the
 * last N events are written to stderr as a crash dump.
 */

#ifndef HMCSIM_OBS_TRACE_H_
#define HMCSIM_OBS_TRACE_H_

#include <cstdint>
#include <memory>
#include <ostream>
#include <vector>

#include "common/partition_mutex.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "hmc/packet.h"
#include "obs/obs_config.h"

namespace hmcsim {

/** Lifecycle points along a packet's path. */
enum class TraceStage : std::uint8_t {
    Inject,        ///< request generated in an FPGA port
    LinkTx,        ///< serialization onto a SerDes link begins
    LinkRx,        ///< packet lands in a link RX buffer
    ChainIngress,  ///< first cube's link layer received the request
    ChainForward,  ///< a chain switch accepted the packet to pass through
    VaultEnqueue,  ///< delivered into a vault controller's input queue
    DramDone,      ///< DRAM data transferred for the request
    RespInject,    ///< response entered the cube-internal NoC
    Eject,         ///< response drained by the issuing host's port
};

const char *toString(TraceStage s);

/** Sentinel for "location unknown at this hook". */
constexpr std::uint32_t kTraceNoWhere = 0xffffffffu;

struct TraceEvent {
    Tick tick = 0;
    PacketId packet = 0;
    TraceStage stage = TraceStage::Inject;
    HmcCmd cmd = HmcCmd::Read;
    /** Cube the event happened on; kTraceNoWhere when not applicable. */
    std::uint32_t cube = kTraceNoWhere;
    /** Stage-specific location: port, link or vault id. */
    std::uint32_t where = kTraceNoWhere;
};

class PacketTracer
{
  public:
    PacketTracer(TraceMode mode, std::uint64_t sample_every,
                 std::size_t capacity);

    TraceMode mode() const { return mode_; }

    /** Lifecycle identity: responses trace under their request's id
     *  (HmcPacket::traceId), so both directions share one lane. */
    static PacketId
    lifeId(const HmcPacket &pkt)
    {
        return pkt.traceId != 0 ? pkt.traceId : pkt.id;
    }

    /** True when packet @p id is in the sampled subset. */
    bool
    wants(PacketId id) const
    {
        return sampleEvery_ <= 1 || id % sampleEvery_ == 0;
    }

    /** Sampling decision on the packet's lifecycle identity. */
    bool wants(const HmcPacket &pkt) const { return wants(lifeId(pkt)); }

    /**
     * Shard the ring per partition (sim.parallel=on): each recording
     * thread writes the shard of the partition it is executing, so
     * hook sites never contend, and dumps merge the shards back into
     * tick order.  Must be called before anything records.  The
     * default single shard is the serial flight recorder, bit-for-bit.
     */
    void setNumShards(std::size_t n);

    std::size_t numShards() const { return shards_.size(); }

    /** Record one live event (full mode hooks). */
    void record(Tick tick, const HmcPacket &pkt, TraceStage stage,
                std::uint32_t cube = kTraceNoWhere,
                std::uint32_t where = kTraceNoWhere);

    /**
     * Record a whole lifecycle from the packet's timestamps (summary
     * mode; called once when the response reaches the host).  Stages
     * whose timestamp was never stamped are skipped.
     */
    void recordLifecycle(const HmcPacket &pkt, std::uint32_t port);

    /** Events recorded over the tracer's lifetime (incl. overwritten). */
    std::uint64_t eventsRecorded() const;

    /** Buffer contents in chronological order (shards merged by tick,
     *  shard index breaking exact ties). */
    std::vector<TraceEvent> events() const;

    void clear();

    /**
     * Dump the buffer as Chrome trace_event JSON.  Each packet becomes
     * one "thread" (tid = packet id) inside the per-cube "process";
     * consecutive stages become complete ("X") duration slices, so a
     * packet's inject→eject lifecycle reads as one flame line.
     */
    void dumpChromeJson(std::ostream &os) const;

    /**
     * Emit just the trace_event objects (no document wrapper) so a
     * caller can merge other event streams -- e.g. congestion counter
     * tracks -- into one Chrome JSON document.  @p first is the shared
     * comma-tracking flag across emitters.
     */
    void emitChromeEvents(std::ostream &os, bool &first) const;

    /** Human-readable dump of the last @p n events (crash diagnosis). */
    void dumpLastEvents(std::ostream &os, std::size_t n) const;

  private:
    // mode_/sampleEvery_/cap_ are immutable after construction, so
    // hook-site sampling tests (wants()) stay lock-free; each shard's
    // ring and cursors are the mutable state, guarded by the shard's
    // capability.  Under the parallel core a shard is only ever
    // written by the thread executing its partition, so the locks
    // never contend -- they exist for the reader-side merges.
    TraceMode mode_;
    std::uint64_t sampleEvery_;
    std::size_t cap_;  // ring capacity *per shard*

    struct Shard {
        mutable PartitionMutex mu;
        std::vector<TraceEvent> ring HMCSIM_GUARDED_BY(mu);
        std::size_t next HMCSIM_GUARDED_BY(mu) = 0;
        bool wrapped HMCSIM_GUARDED_BY(mu) = false;
        std::uint64_t total HMCSIM_GUARDED_BY(mu) = 0;
    };

    std::vector<std::unique_ptr<Shard>> shards_;

    /** The executing partition's shard (shard 0 in serial mode). */
    Shard &currentShard() const;

    void push(Shard &s, const TraceEvent &ev) HMCSIM_REQUIRES(s.mu);
    /** One lifecycle stage from a packet timestamp (0 = not stamped). */
    void pushStage(Shard &s, const HmcPacket &pkt, Tick t,
                   TraceStage stage, std::uint32_t cube,
                   std::uint32_t where) HMCSIM_REQUIRES(s.mu);
    std::vector<TraceEvent> eventsLocked(const Shard &s) const
        HMCSIM_REQUIRES(s.mu);
};

}  // namespace hmcsim

#endif  // HMCSIM_OBS_TRACE_H_
