#include "obs/sampler.h"

#include "common/log.h"
#include "common/strutil.h"
#include "common/units.h"

namespace hmcsim {

TimeSeriesSampler::TimeSeriesSampler(Kernel &kernel,
                                     const MetricsRegistry &registry,
                                     Tick interval, std::string csv_path)
    : kernel_(kernel), registry_(registry), interval_(interval),
      path_(std::move(csv_path))
{
    if (interval_ == 0)
        fatal("obs: sampler interval must be > 0");
}

void
TimeSeriesSampler::start()
{
    {
        PartitionLock lock(mu_);
        if (started_)
            return;
        started_ = true;
        out_.open(path_);
        if (!out_)
            fatal("obs: cannot open sample csv '" + path_ + "'");
        prev_ = registry_.snapshot();
    }
    kernel_.scheduleIn(interval_, [this] { fire(); });
}

void
TimeSeriesSampler::writeHeader(const MetricsSnapshot &snap)
{
    columns_.clear();
    for (const auto &[path, point] : snap.points()) {
        if (point.kind == MetricKind::Histogram)
            continue;
        columns_.push_back(path);
    }
    out_ << "time_ns";
    for (const std::string &c : columns_)
        out_ << ',' << c;
    out_ << '\n';
}

void
TimeSeriesSampler::writeRow()
{
    const MetricsSnapshot snap = registry_.snapshot();
    const MetricsSnapshot delta = snap.delta(prev_);
    if (columns_.empty())
        writeHeader(snap);
    out_ << formatDouble(ticksToNs(kernel_.now()), 0);
    for (const std::string &c : columns_) {
        const MetricPoint *p = delta.find(c);
        out_ << ',' << formatDouble(p ? p->value : 0.0, 6);
    }
    out_ << '\n';
    out_.flush();
    ++rows_;
    prev_ = snap;
}

void
TimeSeriesSampler::fire()
{
    {
        PartitionLock lock(mu_);
        writeRow();
    }
    kernel_.scheduleIn(interval_, [this] { fire(); });
}

void
TimeSeriesSampler::flushNow()
{
    PartitionLock lock(mu_);
    if (!started_)
        return;
    writeRow();
}

}  // namespace hmcsim
