/**
 * @file
 * Periodic time-series sampler over the metrics registry.
 *
 * Every `obs.sample_interval_ns` of simulated time it snapshots the
 * registry, differences the snapshot against the previous interval,
 * and appends one CSV row: simulated time plus, per metric, the
 * interval delta (counters), the current reading (gauges) or the
 * interval mean (samplers).  Histograms are excluded from rows.
 *
 * The column set is frozen at the first fire (sorted registry paths at
 * that moment), so the CSV stays rectangular even if components are
 * later replaced.  Sampling events are observation-only: they read
 * stats and touch no simulation state.
 */

#ifndef HMCSIM_OBS_SAMPLER_H_
#define HMCSIM_OBS_SAMPLER_H_

#include <fstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sim/kernel.h"

namespace hmcsim {

class TimeSeriesSampler
{
  public:
    /**
     * @param interval sampling period in ticks (> 0)
     * @param csv_path destination file (opened lazily at start())
     */
    TimeSeriesSampler(Kernel &kernel, const MetricsRegistry &registry,
                      Tick interval, std::string csv_path);

    /** Begin periodic sampling; idempotent. */
    void start();

    /**
     * Write one final partial-interval row and flush the CSV without
     * rescheduling -- the panic path calls this so the time series
     * ends at the crash instant, not the last whole interval.  No-op
     * before start().
     */
    void flushNow();

    std::uint64_t rowsWritten() const { return rows_; }
    const std::string &csvPath() const { return path_; }

  private:
    Kernel &kernel_;
    const MetricsRegistry &registry_;
    Tick interval_;
    std::string path_;
    std::ofstream out_;
    bool started_ = false;
    std::vector<std::string> columns_;
    MetricsSnapshot prev_;
    std::uint64_t rows_ = 0;

    void fire();
    void writeRow();
    void writeHeader(const MetricsSnapshot &snap);
};

}  // namespace hmcsim

#endif  // HMCSIM_OBS_SAMPLER_H_
