/**
 * @file
 * Periodic time-series sampler over the metrics registry.
 *
 * Every `obs.sample_interval_ns` of simulated time it snapshots the
 * registry, differences the snapshot against the previous interval,
 * and appends one CSV row: simulated time plus, per metric, the
 * interval delta (counters), the current reading (gauges) or the
 * interval mean (samplers).  Histograms are excluded from rows.
 *
 * The column set is frozen at the first fire (sorted registry paths at
 * that moment), so the CSV stays rectangular even if components are
 * later replaced.  Sampling events are observation-only: they read
 * stats and touch no simulation state.
 */

#ifndef HMCSIM_OBS_SAMPLER_H_
#define HMCSIM_OBS_SAMPLER_H_

#include <fstream>
#include <string>
#include <vector>

#include "common/partition_mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "sim/kernel.h"

namespace hmcsim {

class TimeSeriesSampler
{
  public:
    /**
     * @param interval sampling period in ticks (> 0)
     * @param csv_path destination file (opened lazily at start())
     */
    TimeSeriesSampler(Kernel &kernel, const MetricsRegistry &registry,
                      Tick interval, std::string csv_path);

    /** Begin periodic sampling; idempotent. */
    void start();

    /**
     * Write one final partial-interval row and flush the CSV without
     * rescheduling -- the panic path calls this so the time series
     * ends at the crash instant, not the last whole interval.  No-op
     * before start().
     */
    void flushNow();

    std::uint64_t
    rowsWritten() const
    {
        PartitionLock lock(mu_);
        return rows_;
    }
    const std::string &csvPath() const { return path_; }

  private:
    Kernel &kernel_;
    const MetricsRegistry &registry_;
    Tick interval_;
    std::string path_;

    /**
     * Guards the CSV writer state: under the parallel core the
     * sampling event fires on one partition while panic()'s
     * flushNow() may run on another.  Held across
     * registry_.snapshot() (sampler -> registry lock order, never the
     * reverse) but never across kernel event execution.
     */
    mutable PartitionMutex mu_;
    std::ofstream out_ HMCSIM_GUARDED_BY(mu_);
    bool started_ HMCSIM_GUARDED_BY(mu_) = false;
    std::vector<std::string> columns_ HMCSIM_GUARDED_BY(mu_);
    MetricsSnapshot prev_ HMCSIM_GUARDED_BY(mu_);
    std::uint64_t rows_ HMCSIM_GUARDED_BY(mu_) = 0;

    void fire();
    void writeRow() HMCSIM_REQUIRES(mu_);
    void writeHeader(const MetricsSnapshot &snap) HMCSIM_REQUIRES(mu_);
};

}  // namespace hmcsim

#endif  // HMCSIM_OBS_SAMPLER_H_
