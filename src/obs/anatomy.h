/**
 * @file
 * Latency anatomy: where did every nanosecond of a transaction go?
 *
 * Every HmcPacket carries a decomposition timeline
 * (createdAt -> linkTxAt -> chainIngressAt -> cubeArriveAt ->
 * vaultArriveAt -> dramStartAt -> dataReadyAt -> respInjectAt ->
 * respHostLinkAt -> hostArriveAt).  The AnatomyCollector folds that
 * timeline, once per completed transaction at response ejection, into
 * nine consecutive phases whose sum telescopes *exactly* to the
 * end-to-end latency:
 *
 *   host_queue      createdAt      -> linkTxAt       port FIFO, entry
 *                                                    arbitration, link
 *                                                    token wait
 *   link_serialize  linkTxAt       -> chainIngressAt entry link
 *                                                    serialization +
 *                                                    wire + SerDes
 *   chain_fwd_req   chainIngressAt -> cubeArriveAt   request-direction
 *                                                    chain forwarding
 *                                                    (0 when local)
 *   noc_request     cubeArriveAt   -> vaultArriveAt  cube-internal NoC
 *   vault_queue     vaultArriveAt  -> dramStartAt    vault input/bank
 *                                                    queue wait
 *   dram_service    dramStartAt    -> dataReadyAt    DRAM timing
 *   resp_inject     dataReadyAt    -> respInjectAt   backend + response
 *                                                    queue + NoC
 *                                                    admission
 *   resp_return     respInjectAt   -> respHostLinkAt NoC eject, return
 *                                                    chain forwarding,
 *                                                    link transits
 *   host_drain      respHostLinkAt -> hostArriveAt   host deserializer
 *                                                    + drain queue
 *
 * Per-phase Histograms (read/write separated) are registered in the
 * MetricsRegistry, plus lazily created per-(host, cube, vault,
 * read/write) breakdown samplers.  The collector also produces the
 * waterfall rows (count/mean/p50/p99/share) and an automated
 * bottleneck verdict: dominant phase by mean and by p99 share, a
 * queueing-vs-service split (chain forwarding is split against the
 * topology-derived per-hop floor), and the phase-conservation
 * residual.
 *
 * The CongestionRecorder samples every occupancy gauge in the registry
 * (paths ending in "_now" / "_in_use") on a fixed window, building
 * (component x time) surfaces: an analysis/Heatmap, a CSV, and
 * Perfetto counter tracks merged into the Chrome trace JSON.
 *
 * Everything here is observation-only: the collector and recorder read
 * packet fields and registry gauges, never simulation state.
 * `obs.anatomy=off` (default) constructs nothing.
 */

#ifndef HMCSIM_OBS_ANATOMY_H_
#define HMCSIM_OBS_ANATOMY_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "analysis/heatmap.h"
#include "common/histogram.h"
#include "common/stats.h"
#include "common/types.h"
#include "hmc/packet.h"
#include "obs/metrics.h"
#include "obs/obs_config.h"
#include "sim/kernel.h"

namespace hmcsim {

/** The nine consecutive latency phases (see file header). */
enum class AnatomyPhase : std::uint8_t {
    HostQueue,
    LinkSerialize,
    ChainFwdReq,
    NocRequest,
    VaultQueue,
    DramService,
    RespInject,
    RespReturn,
    HostDrain,
};

constexpr std::size_t kNumAnatomyPhases = 9;

const char *toString(AnatomyPhase p);

/** One packet's timeline folded into phase durations. */
struct PhaseBreakdown {
    std::array<Tick, kNumAnatomyPhases> phase{};
    Tick endToEnd = 0;
    /** |sum(phases) - endToEnd|; exactly 0 for a well-formed stamp
     *  chain (the phases telescope). */
    Tick residual = 0;
    /** False when a stamped timestamp ran backwards. */
    bool monotone = true;
    bool write = false;

    Tick
    sum() const
    {
        Tick s = 0;
        for (const Tick t : phase)
            s += t;
        return s;
    }

    /**
     * Fold @p resp (a response at ejection; its timestamps are the
     * request's plus the response legs).  Unstamped (zero) timestamps
     * contribute a zero-length phase and fold into the next one;
     * backward stamps clamp and clear `monotone`.
     */
    static PhaseBreakdown fromPacket(const HmcPacket &resp);
};

/** One row of the per-phase waterfall table. */
struct AnatomyWaterfallRow {
    std::string phase;
    std::uint64_t count = 0;
    double meanNs = 0.0;
    double p50Ns = 0.0;
    double p99Ns = 0.0;
    /** Phase share of the summed mean latency, percent. */
    double shareMeanPct = 0.0;
};

/** The automated bottleneck attribution. */
struct BottleneckVerdict {
    /** Largest phase by share of total mean latency. */
    std::string dominantMeanPhase;
    double dominantMeanSharePct = 0.0;
    /** Largest phase p99 (share of the stacked per-phase p99s). */
    std::string dominantP99Phase;
    double dominantP99SharePct = 0.0;
    /** Queueing phases (host_queue, vault_queue, resp_inject, and the
     *  chain-forward excess over the per-hop floor) vs everything
     *  else, as shares of total mean latency. */
    double queueingSharePct = 0.0;
    double serviceSharePct = 0.0;
    /** Mean chain-forward split: measured = floor + excess. */
    double chainFwdFloorNs = 0.0;
    double chainFwdExcessNs = 0.0;
    std::uint64_t completions = 0;
    std::uint64_t monotonicityViolations = 0;
    std::uint64_t residualViolations = 0;
    double maxResidualNs = 0.0;
    /** One-line human-readable conclusion. */
    std::string summary;
};

class AnatomyCollector
{
  public:
    /** Breakdown key: where the transaction went, and what it was. */
    struct Key {
        HostId host = 0;
        CubeId cube = 0;
        VaultId vault = 0;
        bool write = false;

        bool
        operator<(const Key &o) const
        {
            if (host != o.host)
                return host < o.host;
            if (cube != o.cube)
                return cube < o.cube;
            if (vault != o.vault)
                return vault < o.vault;
            return write < o.write;
        }
    };

    using KeyStats = std::array<SampleStats, kNumAnatomyPhases>;

    /**
     * @param reg registry the per-phase histograms and breakdown
     *            samplers are registered into (never null: anatomy
     *            implies metrics)
     */
    AnatomyCollector(const ObsConfig &cfg, MetricsRegistry *reg);
    ~AnatomyCollector();

    AnatomyCollector(const AnatomyCollector &) = delete;
    AnatomyCollector &operator=(const AnatomyCollector &) = delete;

    /**
     * Topology-derived per-hop chain-forwarding floor: the latency a
     * hop costs with empty queues.  Used for the queueing-vs-service
     * split of the chain_fwd_req phase.  Zero (default) treats all
     * chain forwarding as service.
     */
    void setChainHopFloor(Tick per_hop_fixed, Tick per_flit);

    /** Fold one completed transaction (response at ejection). */
    void onComplete(const HmcPacket &resp);

    /** Drop all accumulated data (e.g. after a warmup window). */
    void reset();

    std::uint64_t completions() const { return completions_.value(); }
    std::uint64_t
    monotonicityViolations() const
    {
        return monotonicityViolations_.value();
    }
    std::uint64_t
    residualViolations() const
    {
        return residualViolations_.value();
    }
    double maxResidualNs() const { return maxResidualNs_; }

    /** Per-phase histogram; @p write selects the write-path set. */
    const Histogram &phaseHist(AnatomyPhase p, bool write) const;
    const Histogram &endToEndHist(bool write) const;

    /** Per-phase streaming stats over reads+writes combined. */
    const SampleStats &phaseStats(AnatomyPhase p) const;

    /** Lazily grown per-(host, cube, vault, read/write) breakdown. */
    const std::map<Key, KeyStats> &breakdown() const { return keys_; }

    /** Waterfall rows over reads+writes, ordered by phase. */
    std::vector<AnatomyWaterfallRow> waterfall() const;

    /** The automated bottleneck attribution over everything seen. */
    BottleneckVerdict verdict() const;

  private:
    MetricsRegistry *reg_;
    MetricSet metrics_;
    double histHiNs_;
    std::size_t histBins_;

    Tick hopFixed_ = 0;
    Tick hopPerFlit_ = 0;

    /** [write][phase] latency histograms, ns. */
    std::vector<Histogram> hist_[2];
    std::unique_ptr<Histogram> e2e_[2];
    std::array<SampleStats, kNumAnatomyPhases> stats_;
    SampleStats e2eStats_;
    SampleStats chainFloorNs_;
    SampleStats chainExcessNs_;
    Counter completions_;
    Counter monotonicityViolations_;
    Counter residualViolations_;
    double maxResidualNs_ = 0.0;

    std::map<Key, KeyStats> keys_;
    /** Registry paths of the lazily registered by_key samplers. */
    std::vector<std::string> keyPaths_;

    KeyStats &keyStats(const Key &k);
};

/**
 * Time-windowed congestion recorder: every @p window ticks it reads
 * the occupancy gauges out of the registry (paths ending in "_now" or
 * "_in_use": link tokens, switch forward queues, vault queues) and
 * appends one column to a (component x time) surface.
 */
class CongestionRecorder
{
  public:
    CongestionRecorder(Kernel &kernel, const MetricsRegistry &registry,
                       Tick window, std::size_t max_windows = 4096);

    /** Begin periodic recording; idempotent. */
    void start();

    /** True for registry paths the recorder samples. */
    static bool isOccupancyPath(const std::string &path);

    std::size_t windows() const { return windowStartNs_.size(); }
    const std::vector<std::string> &paths() const { return paths_; }
    /** True when max_windows was hit and later windows were dropped. */
    bool truncated() const { return truncated_; }

    /** (component x time) occupancy surface; cells are raw readings. */
    Heatmap toHeatmap() const;

    /** CSV: component,<t0 ns>,<t1 ns>,... with raw readings. */
    std::string toCsv() const;

    /**
     * Emit one Perfetto counter-track event per (path, window) into a
     * Chrome trace_event stream.  @p first is the caller's
     * comma-tracking flag across merged emitters.
     */
    void emitCounterTracks(std::ostream &os, bool &first) const;

  private:
    Kernel &kernel_;
    const MetricsRegistry &registry_;
    Tick window_;
    std::size_t maxWindows_;
    bool started_ = false;
    bool truncated_ = false;
    /** Sampled paths, frozen at the first fire. */
    std::vector<std::string> paths_;
    /** series_[path index][window index]. */
    std::vector<std::vector<double>> series_;
    std::vector<double> windowStartNs_;

    void fire();
};

}  // namespace hmcsim

#endif  // HMCSIM_OBS_ANATOMY_H_
