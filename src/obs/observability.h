/**
 * @file
 * Observability: the per-System bundle of the metrics registry, the
 * packet-lifetime tracer, the self-profiler and the time-series
 * sampler, wired to components through Kernel::obs().
 *
 * System constructs one (only when any `obs.*` feature is enabled) and
 * publishes it on the kernel before building the component tree, so
 * every component can register metrics / cache tracer pointers in its
 * constructor.  With everything at defaults Kernel::obs() stays null
 * and the whole layer costs nothing.
 *
 * On destruction: if `obs.trace_json` names a file, the flight
 * recorder is dumped there in Chrome trace_event format.  While alive,
 * a panic() anywhere dumps the last recorded events to stderr.
 */

#ifndef HMCSIM_OBS_OBSERVABILITY_H_
#define HMCSIM_OBS_OBSERVABILITY_H_

#include <memory>
#include <string>

#include "common/log.h"
#include "obs/anatomy.h"
#include "obs/metrics.h"
#include "obs/obs_config.h"
#include "obs/profile.h"
#include "obs/sampler.h"
#include "obs/trace.h"

namespace hmcsim {

class Kernel;

class Observability
{
  public:
    explicit Observability(const ObsConfig &cfg);
    ~Observability();

    Observability(const Observability &) = delete;
    Observability &operator=(const Observability &) = delete;

    const ObsConfig &config() const { return cfg_; }

    /** The queryable stat tree; empty unless metrics are enabled. */
    MetricsRegistry &registry() { return registry_; }
    const MetricsRegistry &registry() const { return registry_; }

    /** Registry to register into, or null when metrics are off --
     *  components pass this straight to MetricSet::bind. */
    MetricsRegistry *
    metricsRegistry()
    {
        return cfg_.metricsEnabled() ? &registry_ : nullptr;
    }

    /** Tracer for completion-path lifecycle hooks (summary + full). */
    PacketTracer *tracer() { return tracer_.get(); }

    /** Tracer for per-event hooks; non-null only in full mode. */
    PacketTracer *
    fullTracer()
    {
        return tracer_ && tracer_->mode() == TraceMode::Full
                   ? tracer_.get()
                   : nullptr;
    }

    /** Self-profiler, or null when obs.profile is off. */
    SelfProfiler *profiler() { return profiler_.get(); }

    /** Start the periodic observers: the time-series sampler and the
     *  congestion recorder (each a no-op when its feature is off). */
    void startSampler(Kernel &kernel);

    const TimeSeriesSampler *sampler() const { return sampler_.get(); }

    /** Latency-anatomy collector, or null when obs.anatomy is off. */
    AnatomyCollector *anatomy() { return anatomy_.get(); }
    const AnatomyCollector *anatomy() const { return anatomy_.get(); }

    /** Congestion recorder; created with the anatomy engine. */
    CongestionRecorder *congestion() { return congestion_.get(); }
    const CongestionRecorder *congestion() const
    {
        return congestion_.get();
    }

    /** Human-readable tail of the trace buffer (crash diagnostics);
     *  for the Chrome JSON form use tracer()->dumpChromeJson(). */
    void dumpTrace(std::ostream &os) const;

    /** Write Chrome trace_event JSON to @p path (packet slices plus
     *  the congestion counter tracks when the anatomy engine is on);
     *  warns and continues on I/O failure. */
    void dumpTraceToFile(const std::string &path) const;

    /** Panic-path flush: trace tail to stderr, final time-series row,
     *  and the trace JSON file if one is configured. */
    void onPanic();

  private:
    ObsConfig cfg_;
    MetricsRegistry registry_;
    std::unique_ptr<PacketTracer> tracer_;
    std::unique_ptr<SelfProfiler> profiler_;
    std::unique_ptr<TimeSeriesSampler> sampler_;
    std::unique_ptr<AnatomyCollector> anatomy_;
    std::unique_ptr<CongestionRecorder> congestion_;
    PanicHook prevHook_ = nullptr;
    bool hookInstalled_ = false;
};

}  // namespace hmcsim

#endif  // HMCSIM_OBS_OBSERVABILITY_H_
