#include "obs/obs_config.h"

#include "common/log.h"

namespace hmcsim {

TraceMode
traceModeFromString(const std::string &s)
{
    if (s == "off")
        return TraceMode::Off;
    if (s == "summary")
        return TraceMode::Summary;
    if (s == "full")
        return TraceMode::Full;
    fatal("obs: unknown trace mode '" + s + "' (expected off|summary|full)");
}

std::string
toString(TraceMode m)
{
    switch (m) {
      case TraceMode::Off:
        return "off";
      case TraceMode::Summary:
        return "summary";
      case TraceMode::Full:
        return "full";
    }
    return "off";
}

void
ObsConfig::validate() const
{
    traceModeFromString(trace);
    if (traceSampleEvery == 0)
        fatal("obs: trace_sample_every must be >= 1");
    if (traceBufferEvents == 0)
        fatal("obs: trace_buffer_events must be >= 1");
    if (sampleIntervalNs > 0 && sampleCsvPath.empty())
        fatal("obs: sample_interval_ns needs a sample_csv destination");
    if (anatomyHistNs == 0)
        fatal("obs: anatomy_hist_ns must be >= 1");
    if (anatomyHistBins == 0)
        fatal("obs: anatomy_hist_bins must be >= 1");
}

ObsConfig
ObsConfig::fromConfig(const Config &cfg)
{
    ObsConfig c;
    c.metrics = cfg.getBool("obs.metrics", c.metrics);
    c.sampleIntervalNs =
        cfg.getU64("obs.sample_interval_ns", c.sampleIntervalNs);
    c.sampleCsvPath = cfg.getString("obs.sample_csv", c.sampleCsvPath);
    c.trace = cfg.getString("obs.trace", c.trace);
    c.traceSampleEvery =
        cfg.getU64("obs.trace_sample_every", c.traceSampleEvery);
    c.traceBufferEvents =
        cfg.getU64("obs.trace_buffer_events", c.traceBufferEvents);
    c.traceJsonPath = cfg.getString("obs.trace_json", c.traceJsonPath);
    c.profile = cfg.getBool("obs.profile", c.profile);
    c.anatomy = cfg.getBool("obs.anatomy", c.anatomy);
    c.anatomyWindowNs =
        cfg.getU64("obs.anatomy_window_ns", c.anatomyWindowNs);
    c.anatomyHistNs = cfg.getU64("obs.anatomy_hist_ns", c.anatomyHistNs);
    c.anatomyHistBins =
        cfg.getU64("obs.anatomy_hist_bins", c.anatomyHistBins);
    c.validate();
    return c;
}

void
ObsConfig::toConfig(Config &cfg) const
{
    cfg.setBool("obs.metrics", metrics);
    cfg.setU64("obs.sample_interval_ns", sampleIntervalNs);
    cfg.set("obs.sample_csv", sampleCsvPath);
    cfg.set("obs.trace", trace);
    cfg.setU64("obs.trace_sample_every", traceSampleEvery);
    cfg.setU64("obs.trace_buffer_events", traceBufferEvents);
    cfg.set("obs.trace_json", traceJsonPath);
    cfg.setBool("obs.profile", profile);
    cfg.setBool("obs.anatomy", anatomy);
    cfg.setU64("obs.anatomy_window_ns", anatomyWindowNs);
    cfg.setU64("obs.anatomy_hist_ns", anatomyHistNs);
    cfg.setU64("obs.anatomy_hist_bins", anatomyHistBins);
}

}  // namespace hmcsim
