#include "obs/anatomy.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/log.h"
#include "common/units.h"

namespace hmcsim {

const char *
toString(AnatomyPhase p)
{
    switch (p) {
      case AnatomyPhase::HostQueue:
        return "host_queue";
      case AnatomyPhase::LinkSerialize:
        return "link_serialize";
      case AnatomyPhase::ChainFwdReq:
        return "chain_fwd_req";
      case AnatomyPhase::NocRequest:
        return "noc_request";
      case AnatomyPhase::VaultQueue:
        return "vault_queue";
      case AnatomyPhase::DramService:
        return "dram_service";
      case AnatomyPhase::RespInject:
        return "resp_inject";
      case AnatomyPhase::RespReturn:
        return "resp_return";
      case AnatomyPhase::HostDrain:
        return "host_drain";
    }
    return "unknown";
}

PhaseBreakdown
PhaseBreakdown::fromPacket(const HmcPacket &resp)
{
    PhaseBreakdown b;
    b.write = resp.cmd == HmcCmd::WriteResponse ||
              resp.cmd == HmcCmd::Write;

    const std::array<Tick, kNumAnatomyPhases + 1> stamps = {
        resp.createdAt,     resp.linkTxAt,     resp.chainIngressAt,
        resp.cubeArriveAt,  resp.vaultArriveAt, resp.dramStartAt,
        resp.dataReadyAt,   resp.respInjectAt, resp.respHostLinkAt,
        resp.hostArriveAt,
    };

    // Telescoping walk.  An unstamped (zero) timestamp yields a
    // zero-length phase whose span folds into the next stamped one;
    // a stamped-but-backward timestamp clamps to zero length and marks
    // the breakdown non-monotone.  Either way the phase sum stays
    // exactly hostArriveAt - createdAt.
    Tick prev = stamps[0];
    for (std::size_t i = 1; i <= kNumAnatomyPhases; ++i) {
        const Tick t = stamps[i];
        if (t == 0) {
            b.phase[i - 1] = 0;
            continue;  // prev carries forward
        }
        if (t < prev) {
            b.phase[i - 1] = 0;
            b.monotone = false;
            continue;  // keep prev: later phases measure from it
        }
        b.phase[i - 1] = t - prev;
        prev = t;
    }

    b.endToEnd = resp.hostArriveAt >= resp.createdAt
                     ? resp.hostArriveAt - resp.createdAt
                     : 0;
    const Tick s = b.sum();
    b.residual = s >= b.endToEnd ? s - b.endToEnd : b.endToEnd - s;
    return b;
}

AnatomyCollector::AnatomyCollector(const ObsConfig &cfg,
                                   MetricsRegistry *reg)
    : reg_(reg), histHiNs_(static_cast<double>(cfg.anatomyHistNs)),
      histBins_(static_cast<std::size_t>(cfg.anatomyHistBins))
{
    if (!reg_)
        fatal("AnatomyCollector needs a metrics registry");
    for (int w = 0; w < 2; ++w) {
        hist_[w].reserve(kNumAnatomyPhases);
        for (std::size_t p = 0; p < kNumAnatomyPhases; ++p)
            hist_[w].emplace_back(0.0, histHiNs_, histBins_);
        e2e_[w] = std::make_unique<Histogram>(0.0, histHiNs_, histBins_);
    }

    metrics_.bind(reg_, "obs.anatomy");
    for (int w = 0; w < 2; ++w) {
        const std::string rw = w ? "write" : "read";
        for (std::size_t p = 0; p < kNumAnatomyPhases; ++p) {
            const auto ph = static_cast<AnatomyPhase>(p);
            metrics_.histogram(rw + "." + toString(ph) + "_ns",
                               &hist_[w][p]);
        }
        metrics_.histogram(rw + ".end_to_end_ns", e2e_[w].get());
    }
    for (std::size_t p = 0; p < kNumAnatomyPhases; ++p) {
        const auto ph = static_cast<AnatomyPhase>(p);
        metrics_.sampler(std::string(toString(ph)) + "_ns", &stats_[p]);
    }
    metrics_.sampler("end_to_end_ns", &e2eStats_);
    metrics_.counter("completions", &completions_);
    metrics_.counter("monotonicity_violations", &monotonicityViolations_);
    metrics_.counter("residual_violations", &residualViolations_);
}

AnatomyCollector::~AnatomyCollector()
{
    for (const std::string &p : keyPaths_)
        reg_->remove(p, this);
}

void
AnatomyCollector::setChainHopFloor(Tick per_hop_fixed, Tick per_flit)
{
    hopFixed_ = per_hop_fixed;
    hopPerFlit_ = per_flit;
}

AnatomyCollector::KeyStats &
AnatomyCollector::keyStats(const Key &k)
{
    auto it = keys_.find(k);
    if (it != keys_.end())
        return it->second;
    it = keys_.emplace(k, KeyStats{}).first;
    // Publish the new breakdown cell so snapshots/samplers see it.
    std::ostringstream base;
    base << "obs.anatomy.by_key.host" << k.host << ".cube" << k.cube
         << ".vault" << k.vault << (k.write ? ".write" : ".read");
    for (std::size_t p = 0; p < kNumAnatomyPhases; ++p) {
        const auto ph = static_cast<AnatomyPhase>(p);
        std::string path = base.str() + "." + toString(ph) + "_ns";
        reg_->addSampler(path, &it->second[p], this);
        keyPaths_.push_back(std::move(path));
    }
    return it->second;
}

void
AnatomyCollector::onComplete(const HmcPacket &resp)
{
    const PhaseBreakdown b = PhaseBreakdown::fromPacket(resp);
    completions_.inc();
    if (!b.monotone)
        monotonicityViolations_.inc();
    if (b.residual != 0) {
        residualViolations_.inc();
        maxResidualNs_ =
            std::max(maxResidualNs_, ticksToNs(b.residual));
    }

    const int w = b.write ? 1 : 0;
    KeyStats &ks = keyStats(
        Key{resp.host, resp.cube, resp.vault, b.write});
    for (std::size_t p = 0; p < kNumAnatomyPhases; ++p) {
        const double ns = ticksToNs(b.phase[p]);
        hist_[w][p].add(ns);
        stats_[p].add(ns);
        ks[p].add(ns);
    }
    const double e2eNs = ticksToNs(b.endToEnd);
    e2e_[w]->add(e2eNs);
    e2eStats_.add(e2eNs);

    // Chain-forward queueing-vs-service split: the request-direction
    // floor is what reqHops pass-throughs cost with empty queues.
    const Tick measured =
        b.phase[static_cast<std::size_t>(AnatomyPhase::ChainFwdReq)];
    const Tick floor =
        static_cast<Tick>(resp.reqHops) *
        (hopFixed_ + static_cast<Tick>(resp.flits()) * hopPerFlit_);
    const Tick boundedFloor = std::min(measured, floor);
    chainFloorNs_.add(ticksToNs(boundedFloor));
    chainExcessNs_.add(ticksToNs(measured - boundedFloor));
}

void
AnatomyCollector::reset()
{
    for (int w = 0; w < 2; ++w) {
        for (Histogram &h : hist_[w])
            h.reset();
        e2e_[w]->reset();
    }
    for (SampleStats &s : stats_)
        s.reset();
    e2eStats_.reset();
    chainFloorNs_.reset();
    chainExcessNs_.reset();
    completions_.reset();
    monotonicityViolations_.reset();
    residualViolations_.reset();
    maxResidualNs_ = 0.0;
    for (auto &[k, ks] : keys_)
        for (SampleStats &s : ks)
            s.reset();
}

const Histogram &
AnatomyCollector::phaseHist(AnatomyPhase p, bool write) const
{
    return hist_[write ? 1 : 0][static_cast<std::size_t>(p)];
}

const Histogram &
AnatomyCollector::endToEndHist(bool write) const
{
    return *e2e_[write ? 1 : 0];
}

const SampleStats &
AnatomyCollector::phaseStats(AnatomyPhase p) const
{
    return stats_[static_cast<std::size_t>(p)];
}

std::vector<AnatomyWaterfallRow>
AnatomyCollector::waterfall() const
{
    double totalMean = 0.0;
    for (const SampleStats &s : stats_)
        totalMean += s.mean();

    std::vector<AnatomyWaterfallRow> rows;
    rows.reserve(kNumAnatomyPhases);
    for (std::size_t p = 0; p < kNumAnatomyPhases; ++p) {
        // Merge the read/write histograms for the combined percentiles.
        Histogram merged(0.0, histHiNs_, histBins_);
        merged.merge(hist_[0][p]);
        merged.merge(hist_[1][p]);
        AnatomyWaterfallRow row;
        row.phase = toString(static_cast<AnatomyPhase>(p));
        row.count = stats_[p].count();
        row.meanNs = stats_[p].mean();
        row.p50Ns = merged.percentile(50.0);
        row.p99Ns = merged.percentile(99.0);
        row.shareMeanPct =
            totalMean > 0.0 ? 100.0 * row.meanNs / totalMean : 0.0;
        rows.push_back(std::move(row));
    }
    return rows;
}

BottleneckVerdict
AnatomyCollector::verdict() const
{
    BottleneckVerdict v;
    v.completions = completions_.value();
    v.monotonicityViolations = monotonicityViolations_.value();
    v.residualViolations = residualViolations_.value();
    v.maxResidualNs = maxResidualNs_;
    if (v.completions == 0) {
        v.summary = "no completed transactions observed";
        return v;
    }

    const std::vector<AnatomyWaterfallRow> rows = waterfall();
    double totalMean = 0.0;
    double totalP99 = 0.0;
    for (const AnatomyWaterfallRow &r : rows) {
        totalMean += r.meanNs;
        totalP99 += r.p99Ns;
    }
    std::size_t meanIdx = 0;
    std::size_t p99Idx = 0;
    for (std::size_t i = 1; i < rows.size(); ++i) {
        if (rows[i].meanNs > rows[meanIdx].meanNs)
            meanIdx = i;
        if (rows[i].p99Ns > rows[p99Idx].p99Ns)
            p99Idx = i;
    }
    v.dominantMeanPhase = rows[meanIdx].phase;
    v.dominantMeanSharePct = rows[meanIdx].shareMeanPct;
    v.dominantP99Phase = rows[p99Idx].phase;
    // Stacked-p99 share: per-packet tail attribution is not retained,
    // so the p99 ranking compares each phase's own tail against the
    // others' -- a documented approximation of "which phase stretches
    // the p99".
    v.dominantP99SharePct =
        totalP99 > 0.0 ? 100.0 * rows[p99Idx].p99Ns / totalP99 : 0.0;

    v.chainFwdFloorNs = chainFloorNs_.mean();
    v.chainFwdExcessNs = chainExcessNs_.mean();
    const double queueNs =
        rows[static_cast<std::size_t>(AnatomyPhase::HostQueue)].meanNs +
        rows[static_cast<std::size_t>(AnatomyPhase::VaultQueue)].meanNs +
        rows[static_cast<std::size_t>(AnatomyPhase::RespInject)].meanNs +
        v.chainFwdExcessNs;
    if (totalMean > 0.0) {
        v.queueingSharePct = 100.0 * queueNs / totalMean;
        v.serviceSharePct = 100.0 - v.queueingSharePct;
    }

    std::ostringstream s;
    s << "dominant phase " << v.dominantMeanPhase << " ("
      << static_cast<int>(v.dominantMeanSharePct + 0.5)
      << "% of mean latency); tail driven by " << v.dominantP99Phase
      << " (" << static_cast<int>(v.dominantP99SharePct + 0.5)
      << "% of stacked phase p99); queueing "
      << static_cast<int>(v.queueingSharePct + 0.5) << "% vs service "
      << static_cast<int>(v.serviceSharePct + 0.5) << "%";
    if (v.chainFwdExcessNs > v.chainFwdFloorNs && v.chainFwdFloorNs > 0.0)
        s << "; chain forwarding is queue-dominated ("
          << static_cast<int>(v.chainFwdExcessNs + 0.5) << " ns excess over "
          << static_cast<int>(v.chainFwdFloorNs + 0.5) << " ns floor)";
    v.summary = s.str();
    return v;
}

CongestionRecorder::CongestionRecorder(Kernel &kernel,
                                       const MetricsRegistry &registry,
                                       Tick window,
                                       std::size_t max_windows)
    : kernel_(kernel), registry_(registry), window_(window),
      maxWindows_(max_windows)
{
    if (window_ == 0)
        fatal("CongestionRecorder: window must be > 0");
}

bool
CongestionRecorder::isOccupancyPath(const std::string &path)
{
    // The registry's occupancy gauges follow two naming conventions:
    // instantaneous queue depths end in "_now"; token/credit meters
    // end in "_in_use".  The anatomy engine's own metrics live under
    // "obs." and are excluded so the surface shows only fabric state.
    if (path.rfind("obs.", 0) == 0)
        return false;
    const auto ends_with = [&path](const char *suffix) {
        const std::size_t n = std::char_traits<char>::length(suffix);
        return path.size() >= n &&
               path.compare(path.size() - n, n, suffix) == 0;
    };
    return ends_with("_now") || ends_with("_in_use");
}

void
CongestionRecorder::start()
{
    if (started_)
        return;
    started_ = true;
    kernel_.scheduleIn(window_, [this] { fire(); });
}

void
CongestionRecorder::fire()
{
    if (windowStartNs_.size() >= maxWindows_) {
        if (!truncated_) {
            truncated_ = true;
            warn("CongestionRecorder: window cap reached (" +
                 std::to_string(maxWindows_) +
                 "); later windows dropped -- raise obs.anatomy_window_ns");
        }
        return;  // stop sampling and rescheduling
    }
    if (paths_.empty()) {
        // Freeze the component set at the first fire; by then the
        // whole tree has registered.
        for (const std::string &p : registry_.paths())
            if (isOccupancyPath(p))
                paths_.push_back(p);
        series_.assign(paths_.size(), {});
    }
    const MetricsSnapshot snap = registry_.snapshot();
    for (std::size_t i = 0; i < paths_.size(); ++i)
        series_[i].push_back(snap.value(paths_[i]));
    windowStartNs_.push_back(ticksToNs(kernel_.now() - window_));
    kernel_.scheduleIn(window_, [this] { fire(); });
}

Heatmap
CongestionRecorder::toHeatmap() const
{
    std::vector<std::string> cols;
    cols.reserve(windowStartNs_.size());
    for (const double t : windowStartNs_) {
        std::ostringstream c;
        c << t << "ns";
        cols.push_back(c.str());
    }
    Heatmap hm(paths_, cols);
    for (std::size_t r = 0; r < series_.size(); ++r)
        for (std::size_t c = 0; c < series_[r].size(); ++c)
            hm.add(r, c, series_[r][c]);
    return hm;
}

std::string
CongestionRecorder::toCsv() const
{
    std::ostringstream os;
    os << "component";
    for (const double t : windowStartNs_)
        os << "," << t;
    os << "\n";
    for (std::size_t r = 0; r < paths_.size(); ++r) {
        os << paths_[r];
        for (const double v : series_[r])
            os << "," << v;
        os << "\n";
    }
    return os.str();
}

void
CongestionRecorder::emitCounterTracks(std::ostream &os, bool &first) const
{
    // Perfetto/Chrome counter events: one "C" sample per (track,
    // window).  ts is microseconds; window starts are already ns.
    for (std::size_t r = 0; r < paths_.size(); ++r) {
        for (std::size_t c = 0; c < series_[r].size(); ++c) {
            if (!first)
                os << ",\n";
            first = false;
            os << "  {\"ph\":\"C\",\"pid\":3,\"name\":\"" << paths_[r]
               << "\",\"ts\":" << windowStartNs_[c] / 1000.0
               << ",\"args\":{\"occupancy\":" << series_[r][c] << "}}";
        }
    }
    if (!paths_.empty()) {
        if (!first)
            os << ",\n";
        first = false;
        os << "  {\"ph\":\"M\",\"pid\":3,\"name\":\"process_name\","
              "\"args\":{\"name\":\"congestion\"}}";
    }
}

}  // namespace hmcsim
