#include "obs/profile.h"

#include <iomanip>

namespace hmcsim {

void
SelfProfiler::report(std::ostream &os) const
{
    os << "self-profile: " << events_ << " events in " << std::fixed
       << std::setprecision(3) << wallSec_ << " s ("
       << std::setprecision(0) << eventsPerSec() << " events/s)\n";
    double attributed = 0.0;
    for (const auto &[cls, sec] : classSec_)
        attributed += sec;
    for (const auto &[cls, sec] : classSec_) {
        const double pct =
            wallSec_ > 0.0 ? 100.0 * sec / wallSec_ : 0.0;
        os << "  " << std::left << std::setw(16) << cls << std::right
           << std::setprecision(3) << sec << " s  (" << std::setprecision(1)
           << pct << "% of wall)\n";
    }
    if (wallSec_ > 0.0 && !classSec_.empty())
        os << "  " << std::left << std::setw(16) << "(unattributed)"
           << std::right << std::setprecision(3)
           << (wallSec_ - attributed) << " s\n";
    os.unsetf(std::ios::floatfield);
}

}  // namespace hmcsim
