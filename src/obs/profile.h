/**
 * @file
 * Simulator self-profiling: how fast is the simulator itself?
 *
 * Tracks wall-clock time and kernel events executed per run window
 * (events/sec is the headline trajectory number), plus coarse
 * per-component-class wall-time attribution via ProfileScope RAII
 * markers placed in the hottest event handlers (host tick loop, vault
 * scheduling, link transmit, chain forwarding).  Disabled profiling is
 * a null-pointer test at each scope.
 */

#ifndef HMCSIM_OBS_PROFILE_H_
#define HMCSIM_OBS_PROFILE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace hmcsim {

class SelfProfiler
{
  public:
    SelfProfiler() = default;

    /** Account one run window: @p sec wall seconds, @p events executed. */
    void
    addRun(double sec, std::uint64_t events)
    {
        wallSec_ += sec;
        events_ += events;
    }

    /** Accumulate attributed wall time under @p cls. */
    void
    addClass(const char *cls, double sec)
    {
        classSec_[cls] += sec;
    }

    double wallSec() const { return wallSec_; }
    std::uint64_t events() const { return events_; }

    /** Kernel events per wall second; 0 before any run. */
    double
    eventsPerSec() const
    {
        return wallSec_ > 0.0 ? static_cast<double>(events_) / wallSec_
                              : 0.0;
    }

    /** Attributed wall seconds per component class. */
    const std::map<std::string, double> &
    classSeconds() const
    {
        return classSec_;
    }

    void
    reset()
    {
        wallSec_ = 0.0;
        events_ = 0;
        classSec_.clear();
    }

    /** Human-readable summary (events/sec + class shares). */
    void report(std::ostream &os) const;

  private:
    double wallSec_ = 0.0;
    std::uint64_t events_ = 0;
    std::map<std::string, double> classSec_;
};

/**
 * RAII attribution scope.  A null profiler makes construction and
 * destruction a branch each -- cheap enough to leave in hot paths.
 */
class ProfileScope
{
  public:
    ProfileScope(SelfProfiler *p, const char *cls) : p_(p), cls_(cls)
    {
        if (p_)
            t0_ = std::chrono::steady_clock::now();
    }

    ~ProfileScope()
    {
        if (!p_)
            return;
        const auto dt = std::chrono::steady_clock::now() - t0_;
        p_->addClass(cls_,
                     std::chrono::duration<double>(dt).count());
    }

    ProfileScope(const ProfileScope &) = delete;
    ProfileScope &operator=(const ProfileScope &) = delete;

  private:
    SelfProfiler *p_;
    const char *cls_;
    std::chrono::steady_clock::time_point t0_;
};

/** Wall-clock stopwatch for run windows (always-on, used by benches). */
class WallTimer
{
  public:
    WallTimer() : t0_(std::chrono::steady_clock::now()) {}

    double
    seconds() const
    {
        const auto dt = std::chrono::steady_clock::now() - t0_;
        return std::chrono::duration<double>(dt).count();
    }

  private:
    std::chrono::steady_clock::time_point t0_;
};

}  // namespace hmcsim

#endif  // HMCSIM_OBS_PROFILE_H_
