/**
 * @file
 * Observability configuration: the `obs.*` config surface.
 *
 * Everything defaults off, and off is bit-identical to a build without
 * the observability layer: no metric registrations, no trace hooks,
 * no sampler events enter the event queue.
 *
 * Knobs:
 *   obs.metrics              bool    build the queryable metrics tree
 *   obs.sample_interval_ns   u64     periodic time-series sampling
 *                                    interval (0 = off; implies metrics)
 *   obs.sample_csv           path    time-series CSV destination
 *   obs.trace                off|summary|full   packet-lifetime tracer
 *   obs.trace_sample_every   u64     trace every Nth packet id (>= 1)
 *   obs.trace_buffer_events  u64     flight-recorder ring capacity
 *   obs.trace_json           path    Chrome trace_event JSON dumped at
 *                                    System teardown ("" = no dump)
 *   obs.profile              bool    simulator self-profiling
 *   obs.anatomy              off|on  latency-anatomy engine: per-phase
 *                                    waterfall histograms, congestion
 *                                    heatmap windows, bottleneck verdict
 *                                    (implies metrics)
 *   obs.anatomy_window_ns    u64     congestion heatmap window (0 =
 *                                    follow sample_interval_ns, or
 *                                    1000 ns when that is off too)
 *   obs.anatomy_hist_ns      u64     upper edge of the per-phase
 *                                    latency histograms, ns
 *   obs.anatomy_hist_bins    u64     bins of the per-phase histograms
 */

#ifndef HMCSIM_OBS_OBS_CONFIG_H_
#define HMCSIM_OBS_OBS_CONFIG_H_

#include <cstdint>
#include <string>

#include "common/config.h"

namespace hmcsim {

/** Packet-lifetime tracing level. */
enum class TraceMode {
    /** No hooks armed; bit-identical, zero-overhead default. */
    Off,
    /** One lifecycle record per sampled packet, reconstructed from the
     *  packet's latency-decomposition timestamps at completion. */
    Summary,
    /** Live events at every instrumented point along the packet path. */
    Full,
};

TraceMode traceModeFromString(const std::string &s);
std::string toString(TraceMode m);

struct ObsConfig {
    bool metrics = false;
    std::uint64_t sampleIntervalNs = 0;
    std::string sampleCsvPath = "obs_timeseries.csv";
    std::string trace = "off";
    std::uint64_t traceSampleEvery = 1;
    std::uint64_t traceBufferEvents = 1 << 16;
    std::string traceJsonPath;
    bool profile = false;
    bool anatomy = false;
    std::uint64_t anatomyWindowNs = 0;
    std::uint64_t anatomyHistNs = 32768;
    std::uint64_t anatomyHistBins = 1024;

    TraceMode traceMode() const { return traceModeFromString(trace); }

    /** True when the metrics tree must exist (explicitly or because
     *  the time-series sampler or the anatomy engine needs it). */
    bool
    metricsEnabled() const
    {
        return metrics || sampleIntervalNs > 0 || anatomy;
    }

    /** Congestion-heatmap window in ns, defaults resolved. */
    std::uint64_t
    anatomyWindowNsEffective() const
    {
        if (anatomyWindowNs > 0)
            return anatomyWindowNs;
        return sampleIntervalNs > 0 ? sampleIntervalNs : 1000;
    }

    /** True when any obs feature is on (System builds Observability). */
    bool anyEnabled() const
    {
        return metricsEnabled() || traceMode() != TraceMode::Off || profile;
    }

    void validate() const;

    /** Read "obs.*" keys over the defaults. */
    static ObsConfig fromConfig(const Config &cfg);
    void toConfig(Config &cfg) const;
};

}  // namespace hmcsim

#endif  // HMCSIM_OBS_OBS_CONFIG_H_
