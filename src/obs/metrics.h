/**
 * @file
 * MetricsRegistry: one queryable tree over every component's live
 * statistics.
 *
 * Components register their existing stat primitives (Counter,
 * SampleStats, Histogram, or an arbitrary gauge callback) under their
 * component path at construction time, through a MetricSet that
 * unregisters everything again when the component dies (ports are
 * replaced in place when experiments reconfigure them, so lifetime
 * tracking matters).  The registry itself stores no values -- a
 * snapshot() materializes the whole tree into plain data with
 * merge/delta/reset semantics, which is what the time-series sampler,
 * the JSON/CSV emitters, and tests consume.
 *
 * Path convention: `<component-path>.<stat>`, matching the names
 * Component::reportStats has always used (e.g.
 * "system.hmc.vault3.requests_served", "system.fpga.port0.reads").
 */

#ifndef HMCSIM_OBS_METRICS_H_
#define HMCSIM_OBS_METRICS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/partition_mutex.h"
#include "common/stats.h"
#include "common/thread_annotations.h"

namespace hmcsim {

enum class MetricKind {
    /** Monotonic event count; snapshots merge by summing. */
    Counter,
    /** Instantaneous reading (queue depth, temperature); snapshots
     *  merge by keeping the other side's reading (last-writer-wins). */
    Gauge,
    /** Streaming sample statistics; snapshots merge via the
     *  parallel-combine rule. */
    Sampler,
    /** Fixed-bin histogram; snapshots merge bin-wise. */
    Histogram,
};

std::string toString(MetricKind k);

/** One metric's materialized value inside a snapshot. */
struct MetricPoint {
    MetricKind kind = MetricKind::Counter;
    /** Counter total or gauge reading; samplers/histograms use the
     *  structured fields below. */
    double value = 0.0;
    SampleStats sample;
    std::vector<std::uint64_t> bins;
    double binLo = 0.0;
    double binHi = 0.0;

    /** Merge @p other into this point (kinds must match). */
    void merge(const MetricPoint &other);
};

/**
 * A point-in-time copy of the whole metrics tree: plain data,
 * detached from the live components.
 */
class MetricsSnapshot
{
  public:
    using Map = std::map<std::string, MetricPoint>;

    const Map &points() const { return points_; }
    bool empty() const { return points_.empty(); }
    std::size_t size() const { return points_.size(); }

    /** The point at @p path, or nullptr. */
    const MetricPoint *find(const std::string &path) const;

    /** Convenience: counter/gauge value at @p path (0 when absent). */
    double value(const std::string &path) const;

    /**
     * Merge @p other into this snapshot (parallel-combine: counters
     * sum, samplers pool, histograms add bins, gauges take the other
     * side).  Paths present on either side survive.
     */
    void merge(const MetricsSnapshot &other);

    /**
     * Per-interval view: counters and sampler count/sum become the
     * difference against @p earlier; gauges keep this snapshot's
     * (current) reading.  Histograms are dropped -- interval rows want
     * scalars.  Used by the time-series sampler.
     */
    MetricsSnapshot delta(const MetricsSnapshot &earlier) const;

    /** Drop every point. */
    void reset() { points_.clear(); }

    Map &mutablePoints() { return points_; }

  private:
    Map points_;
};

class MetricSet;

/**
 * The registry proper: path -> reference to a live stat object (or a
 * gauge callback).  Registration overwrites an existing path -- a
 * replacement port re-registers before its predecessor is destroyed,
 * and the owner token keeps the predecessor's unregistration from
 * tearing down the successor's entries.
 *
 * The entry table is guarded by an assert-only PartitionMutex: under
 * the partitioned-parallel core, per-partition component trees will
 * register into one shared registry whose snapshot() races against
 * registration unless locked.  Gauge callbacks run while the
 * capability is held (snapshot iterates the table), so a gauge must
 * never call back into the registry.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    void addCounter(const std::string &path, const Counter *c,
                    const void *owner = nullptr);
    void addGauge(const std::string &path, std::function<double()> fn,
                  const void *owner = nullptr);
    void addSampler(const std::string &path, const SampleStats *s,
                    const void *owner = nullptr);
    void addHistogram(const std::string &path, const Histogram *h,
                      const void *owner = nullptr);

    /** Remove @p path if it is owned by @p owner (nullptr matches any). */
    void remove(const std::string &path, const void *owner = nullptr);

    bool has(const std::string &path) const;
    std::size_t
    size() const
    {
        PartitionLock lock(mu_);
        return entries_.size();
    }

    /** All registered paths in sorted order. */
    std::vector<std::string> paths() const;

    /** Materialize the whole tree. */
    MetricsSnapshot snapshot() const;

    /** Materialize only paths starting with @p prefix. */
    MetricsSnapshot snapshotSubtree(const std::string &prefix) const;

  private:
    struct Entry {
        MetricKind kind = MetricKind::Counter;
        const Counter *counter = nullptr;
        std::function<double()> gauge;
        const SampleStats *sampler = nullptr;
        const Histogram *histogram = nullptr;
        const void *owner = nullptr;
    };

    /** Capability over the entry table (see class comment). */
    mutable PartitionMutex mu_;

    std::map<std::string, Entry> entries_ HMCSIM_GUARDED_BY(mu_);

    static MetricPoint materialize(const Entry &e);
};

/**
 * RAII bundle of registrations sharing one base path.  Components hold
 * one by value; an unbound set is inert, so the disabled-observability
 * path costs a null check per registration call and nothing at runtime.
 */
class MetricSet
{
  public:
    MetricSet() = default;
    ~MetricSet();

    MetricSet(const MetricSet &) = delete;
    MetricSet &operator=(const MetricSet &) = delete;

    /** Attach to @p reg with path prefix @p base ("" = absolute paths). */
    void bind(MetricsRegistry *reg, std::string base);

    bool bound() const { return reg_ != nullptr; }

    void counter(const std::string &name, const Counter *c);
    void gauge(const std::string &name, std::function<double()> fn);
    void sampler(const std::string &name, const SampleStats *s);
    void histogram(const std::string &name, const Histogram *h);

  private:
    MetricsRegistry *reg_ = nullptr;
    std::string base_;
    std::vector<std::string> paths_;

    std::string qualify(const std::string &name) const;
};

}  // namespace hmcsim

#endif  // HMCSIM_OBS_METRICS_H_
