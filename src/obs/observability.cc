#include "obs/observability.h"

#include <fstream>
#include <iostream>

#include "common/log.h"
#include "common/units.h"

namespace hmcsim {

namespace {

/** Most recently constructed Observability with panic-path state; the
 *  panic hook is a plain function pointer, so the instance is reached
 *  through this file-scope slot. */
Observability *g_crashDumpTarget = nullptr;

void
crashDumpHook()
{
    if (g_crashDumpTarget)
        g_crashDumpTarget->onPanic();
}

constexpr std::size_t kCrashDumpEvents = 64;

}  // namespace

Observability::Observability(const ObsConfig &cfg) : cfg_(cfg)
{
    cfg_.validate();
    if (cfg_.traceMode() != TraceMode::Off)
        tracer_ = std::make_unique<PacketTracer>(
            cfg_.traceMode(), cfg_.traceSampleEvery,
            static_cast<std::size_t>(cfg_.traceBufferEvents));
    if (cfg_.profile)
        profiler_ = std::make_unique<SelfProfiler>();
    if (cfg_.anatomy)
        anatomy_ = std::make_unique<AnatomyCollector>(cfg_, &registry_);
    // Anything the panic path can flush (trace tail, partial
    // time-series row, trace JSON) arms the hook.
    if (tracer_ || cfg_.sampleIntervalNs > 0) {
        g_crashDumpTarget = this;
        prevHook_ = setPanicHook(&crashDumpHook);
        hookInstalled_ = true;
    }
}

Observability::~Observability()
{
    if (hookInstalled_ && g_crashDumpTarget == this) {
        setPanicHook(prevHook_);
        g_crashDumpTarget = nullptr;
    }
    if (tracer_ && !cfg_.traceJsonPath.empty())
        dumpTraceToFile(cfg_.traceJsonPath);
}

void
Observability::startSampler(Kernel &kernel)
{
    if (cfg_.sampleIntervalNs > 0 && !sampler_) {
        sampler_ = std::make_unique<TimeSeriesSampler>(
            kernel, registry_, cfg_.sampleIntervalNs * kNanosecond,
            cfg_.sampleCsvPath);
        sampler_->start();
    }
    if (cfg_.anatomy && !congestion_) {
        congestion_ = std::make_unique<CongestionRecorder>(
            kernel, registry_,
            cfg_.anatomyWindowNsEffective() * kNanosecond);
        congestion_->start();
    }
}

void
Observability::dumpTrace(std::ostream &os) const
{
    if (!tracer_)
        return;
    // Crash-dump context gets the readable tail; full JSON goes to
    // files.  Callers with an ostream want the human-readable form.
    tracer_->dumpLastEvents(os, kCrashDumpEvents);
}

void
Observability::dumpTraceToFile(const std::string &path) const
{
    if (!tracer_)
        return;
    std::ofstream f(path);
    if (!f) {
        warn("obs: cannot write trace json '" + path + "'");
        return;
    }
    f << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
    bool first = true;
    tracer_->emitChromeEvents(f, first);
    if (congestion_)
        congestion_->emitCounterTracks(f, first);
    f << "\n]}\n";
    inform("obs: wrote " + std::to_string(tracer_->events().size()) +
           " trace events to " + path);
}

void
Observability::onPanic()
{
    // Keep this path allocation-light and re-entrancy safe: panic()
    // raised inside these flushes must not recurse (the hook slot is
    // cleared first).
    g_crashDumpTarget = nullptr;
    dumpTrace(std::cerr);
    if (sampler_)
        sampler_->flushNow();
    if (tracer_ && !cfg_.traceJsonPath.empty())
        dumpTraceToFile(cfg_.traceJsonPath);
}

}  // namespace hmcsim
