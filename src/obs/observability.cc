#include "obs/observability.h"

#include <fstream>
#include <iostream>

#include "common/log.h"
#include "common/units.h"

namespace hmcsim {

namespace {

/** Most recently constructed Observability with an armed tracer; the
 *  panic hook is a plain function pointer, so the instance is reached
 *  through this file-scope slot. */
Observability *g_crashDumpTarget = nullptr;

void
crashDumpHook()
{
    if (g_crashDumpTarget)
        g_crashDumpTarget->dumpTrace(std::cerr);
}

constexpr std::size_t kCrashDumpEvents = 64;

}  // namespace

Observability::Observability(const ObsConfig &cfg) : cfg_(cfg)
{
    cfg_.validate();
    if (cfg_.traceMode() != TraceMode::Off) {
        tracer_ = std::make_unique<PacketTracer>(
            cfg_.traceMode(), cfg_.traceSampleEvery,
            static_cast<std::size_t>(cfg_.traceBufferEvents));
        g_crashDumpTarget = this;
        prevHook_ = setPanicHook(&crashDumpHook);
        hookInstalled_ = true;
    }
    if (cfg_.profile)
        profiler_ = std::make_unique<SelfProfiler>();
}

Observability::~Observability()
{
    if (hookInstalled_ && g_crashDumpTarget == this) {
        setPanicHook(prevHook_);
        g_crashDumpTarget = nullptr;
    }
    if (tracer_ && !cfg_.traceJsonPath.empty())
        dumpTraceToFile(cfg_.traceJsonPath);
}

void
Observability::startSampler(Kernel &kernel)
{
    if (cfg_.sampleIntervalNs == 0 || sampler_)
        return;
    sampler_ = std::make_unique<TimeSeriesSampler>(
        kernel, registry_, cfg_.sampleIntervalNs * kNanosecond,
        cfg_.sampleCsvPath);
    sampler_->start();
}

void
Observability::dumpTrace(std::ostream &os) const
{
    if (!tracer_)
        return;
    // Crash-dump context gets the readable tail; full JSON goes to
    // files.  Callers with an ostream want the human-readable form.
    tracer_->dumpLastEvents(os, kCrashDumpEvents);
}

void
Observability::dumpTraceToFile(const std::string &path) const
{
    if (!tracer_)
        return;
    std::ofstream f(path);
    if (!f) {
        warn("obs: cannot write trace json '" + path + "'");
        return;
    }
    tracer_->dumpChromeJson(f);
    inform("obs: wrote " + std::to_string(tracer_->events().size()) +
           " trace events to " + path);
}

}  // namespace hmcsim
