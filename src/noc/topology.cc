#include "noc/topology.h"

#include <algorithm>
#include <queue>

#include "common/log.h"

namespace hmcsim {

void
TopologySpec::validate() const
{
    if (numRouters == 0)
        fatal("topology: no routers");
    if (endpointRouter.empty())
        fatal("topology: no endpoints");
    for (auto r : endpointRouter) {
        if (r >= numRouters)
            fatal("topology: endpoint attached to invalid router " +
                  std::to_string(r));
    }
    for (const auto &[a, b] : routerLinks) {
        if (a >= numRouters || b >= numRouters)
            fatal("topology: link references invalid router");
        if (a == b)
            fatal("topology: self-link on router " + std::to_string(a));
    }
}

RoutingTables
computeRoutes(const TopologySpec &spec)
{
    spec.validate();
    const std::uint32_t nr = spec.numRouters;
    const std::uint32_t ne = spec.numEndpoints();

    // Adjacency, sorted for deterministic BFS order.
    std::vector<std::vector<std::uint32_t>> adj(nr);
    for (const auto &[a, b] : spec.routerLinks) {
        adj[a].push_back(b);
        adj[b].push_back(a);
    }
    for (auto &n : adj)
        std::sort(n.begin(), n.end());

    RoutingTables out;
    out.nextRouter.assign(nr, std::vector<std::uint32_t>(ne, 0));
    out.hops.assign(nr, std::vector<std::uint32_t>(ne, 0));

    constexpr std::uint32_t kUnset = ~std::uint32_t{0};

    // BFS from each endpoint's home router; record, for every router,
    // the first hop of a shortest path *toward* the home router.
    for (std::uint32_t e = 0; e < ne; ++e) {
        const std::uint32_t home = spec.endpointRouter[e];
        std::vector<std::uint32_t> dist(nr, kUnset);
        std::vector<std::uint32_t> next(nr, kUnset);
        std::queue<std::uint32_t> bfs;
        dist[home] = 0;
        next[home] = home;  // local eject
        bfs.push(home);
        while (!bfs.empty()) {
            const std::uint32_t r = bfs.front();
            bfs.pop();
            for (std::uint32_t n : adj[r]) {
                if (dist[n] == kUnset) {
                    dist[n] = dist[r] + 1;
                    next[n] = r;  // n forwards toward home via r
                    bfs.push(n);
                }
            }
        }
        for (std::uint32_t r = 0; r < nr; ++r) {
            if (dist[r] == kUnset)
                fatal("topology: endpoint " + std::to_string(e) +
                      " unreachable from router " + std::to_string(r));
            out.nextRouter[r][e] = next[r];
            out.hops[r][e] = dist[r];
        }
    }
    return out;
}

TopologySpec
makeQuadrantTopology(std::uint32_t num_vaults, std::uint32_t num_quadrants,
                     std::uint32_t num_links, bool xbar)
{
    if (num_quadrants == 0 || num_vaults % num_quadrants != 0)
        fatal("topology: vaults must divide evenly into quadrants");
    if (num_links == 0 || num_links > num_quadrants)
        fatal("topology: need 1..num_quadrants links");

    TopologySpec spec;
    spec.numRouters = num_quadrants;

    if (xbar) {
        for (std::uint32_t a = 0; a < num_quadrants; ++a)
            for (std::uint32_t b = a + 1; b < num_quadrants; ++b)
                spec.routerLinks.emplace_back(a, b);
    } else if (num_quadrants > 1) {
        for (std::uint32_t a = 0; a < num_quadrants; ++a)
            spec.routerLinks.emplace_back(a, (a + 1) % num_quadrants);
        if (num_quadrants == 2) {
            // Avoid a duplicate (0,1)/(1,0) pair in the 2-router ring.
            spec.routerLinks.pop_back();
        }
    }

    // Links first (endpoints [0, num_links)), spread across quadrants.
    for (std::uint32_t l = 0; l < num_links; ++l)
        spec.endpointRouter.push_back(l * num_quadrants / num_links);

    // Vaults (endpoints [num_links, ...)).
    const std::uint32_t per_quad = num_vaults / num_quadrants;
    for (std::uint32_t v = 0; v < num_vaults; ++v)
        spec.endpointRouter.push_back(v / per_quad);

    spec.validate();
    return spec;
}

TopologySpec
makeSingleSwitchTopology(std::uint32_t num_vaults, std::uint32_t num_links)
{
    TopologySpec spec;
    spec.numRouters = 1;
    for (std::uint32_t l = 0; l < num_links; ++l)
        spec.endpointRouter.push_back(0);
    for (std::uint32_t v = 0; v < num_vaults; ++v)
        spec.endpointRouter.push_back(0);
    spec.validate();
    return spec;
}

TopologySpec
makeTopology(const std::string &name, std::uint32_t num_vaults,
             std::uint32_t num_quadrants, std::uint32_t num_links)
{
    if (name == "quadrant_xbar")
        return makeQuadrantTopology(num_vaults, num_quadrants, num_links,
                                    true);
    if (name == "quadrant_ring")
        return makeQuadrantTopology(num_vaults, num_quadrants, num_links,
                                    false);
    if (name == "single_switch")
        return makeSingleSwitchTopology(num_vaults, num_links);
    fatal("topology: unknown topology '" + name + "'");
}

}  // namespace hmcsim
