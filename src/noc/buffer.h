/**
 * @file
 * Flit-accounted FIFO buffer.  Capacity is expressed in flits, not
 * messages, so large packets consume proportionally more space -- the
 * effect the paper identifies as a cause of higher latency for large
 * request sizes.
 */

#ifndef HMCSIM_NOC_BUFFER_H_
#define HMCSIM_NOC_BUFFER_H_

#include <cstdint>
#include <deque>

#include "noc/flit.h"

namespace hmcsim {

class FlitBuffer
{
  public:
    /** @param capacity_flits total flit capacity; 0 means unbounded. */
    explicit FlitBuffer(std::uint32_t capacity_flits);

    /** True if a message of @p flits fits right now. */
    bool canAccept(std::uint32_t flits) const;

    /** Push a message; panics if it does not fit. */
    void push(const NocMessage &msg);

    /** Pop the head message; panics if empty. */
    NocMessage pop();

    const NocMessage &front() const;

    bool empty() const { return q_.empty(); }
    std::size_t size() const { return q_.size(); }
    std::uint32_t usedFlits() const { return used_; }
    std::uint32_t capacityFlits() const { return capacity_; }
    std::uint32_t freeFlits() const;

    /** High-water mark of flit occupancy since construction/reset. */
    std::uint32_t peakFlits() const { return peak_; }

    void clear();

  private:
    std::deque<NocMessage> q_;
    std::uint32_t capacity_;
    std::uint32_t used_ = 0;
    std::uint32_t peak_ = 0;
};

}  // namespace hmcsim

#endif  // HMCSIM_NOC_BUFFER_H_
