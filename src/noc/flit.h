/**
 * @file
 * Messages carried by the logic-layer NoC.
 *
 * The router model is virtual cut-through at packet granularity: a
 * message occupies channels for flits() * flit-period and buffers for
 * its full flit count, which preserves the bandwidth and queuing
 * behaviour of a flit-level wormhole network while keeping the event
 * count per packet small.
 */

#ifndef HMCSIM_NOC_FLIT_H_
#define HMCSIM_NOC_FLIT_H_

#include <cstdint>
#include <memory>

#include "common/types.h"

namespace hmcsim {

/** One message (an HMC packet) traversing the NoC. */
struct NocMessage {
    /** Unique id for tracing. */
    PacketId id = 0;

    /** Source endpoint (link master or vault controller). */
    NodeId src = kNodeInvalid;

    /** Destination endpoint. */
    NodeId dst = kNodeInvalid;

    /** Size in 16 B flits, including header/tail overhead. */
    std::uint32_t flits = 1;

    /** Time the message entered the network (set by Network::inject). */
    Tick injectedAt = 0;

    /** Opaque payload, typically a shared_ptr<HmcPacket>. */
    std::shared_ptr<void> payload;
};

}  // namespace hmcsim

#endif  // HMCSIM_NOC_FLIT_H_
