/**
 * @file
 * Input-queued virtual cut-through router with credit-based flow
 * control.
 *
 * Pipeline per message: arrival -> (router latency) -> route lookup and
 * move to the target output queue (stalls on output-queue space: this is
 * the head-of-line blocking point) -> switch/channel traversal gated by
 * downstream credits (router hop) or an endpoint reservation (eject).
 * Credits return to the upstream sender when a message leaves the input
 * queue.
 */

#ifndef HMCSIM_NOC_ROUTER_H_
#define HMCSIM_NOC_ROUTER_H_

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "noc/buffer.h"
#include "noc/channel.h"
#include "noc/flit.h"
#include "power/power_probe.h"
#include "sim/component.h"

namespace hmcsim {

/** Shared timing/sizing parameters for routers and their channels. */
struct RouterParams {
    /** Ticks to move one flit across a channel (800 ps = 20 GB/s). */
    Tick flitPeriod = 800;

    /** Channel propagation delay after the last flit. */
    Tick wireLatency = 800;

    /** Per-message pipeline latency (route compute, switch alloc). */
    Tick routerLatency = 1600;

    /** Credit return propagation delay. */
    Tick creditLatency = 800;

    /** Per-input buffer (upstream credit pool), in flits. */
    std::uint32_t inputBufferFlits = 64;

    /** Per-output staging queue, in flits. */
    std::uint32_t outputQueueFlits = 64;

    /**
     * Ejection-port staging queue, in flits.  Link masters carry the
     * whole closed-loop response backlog when the host response path
     * is the bottleneck; a deep FIFO here keeps that backlog
     * arrival-ordered (fair across vaults) instead of backpressuring
     * into the routers, where per-input arbitration would starve the
     * quadrants farthest from the link.
     */
    std::uint32_t ejectQueueFlits = 4096;
};

class Router : public Component
{
  public:
    /** Upstream notification that @p flits of input buffer freed up. */
    using CreditFn = std::function<void(std::uint32_t)>;

    /** Endpoint-side ejection contract. */
    struct Eject {
        /**
         * Reserve space for a message of given flits; returning false
         * blocks the output until kickEject().
         */
        std::function<bool(std::uint32_t)> tryReserve;

        /** Final delivery (reservation already made). */
        std::function<void(const NocMessage &)> deliver;
    };

    Router(Kernel &kernel, Component *parent, std::string name,
           std::uint32_t id, const RouterParams &params);

    std::uint32_t id() const { return id_; }

    // ----- construction-time wiring -----

    /**
     * Add an input port.
     * @param credit_return invoked (after creditLatency) when buffer
     *        space frees; may be null for test harness inputs.
     * @return input port index
     */
    int addInput(CreditFn credit_return);

    /**
     * Add an output port feeding input @p dst_input of @p dst.
     * The channel is created internally from the router params.
     */
    int addOutputToRouter(Router *dst, int dst_input);

    /** Add an output port that ejects to endpoint @p ep. */
    int addOutputToEndpoint(NodeId ep, Eject eject);

    /** Set the output port used for each destination endpoint. */
    void setRoutes(std::vector<int> output_for_endpoint);

    // ----- runtime -----

    /** Message fully arrived on input port @p input. */
    void acceptMessage(int input, const NocMessage &msg);

    /** Downstream router freed @p flits of the buffer behind output. */
    void returnCredits(int output, std::uint32_t flits);

    /** Endpoint @p ep freed space; retry its blocked output if any. */
    void kickEject(NodeId ep);

    /** Free flits in input port @p input (initial upstream credit). */
    std::uint32_t inputBufferFlits() const
    {
        return params_.inputBufferFlits;
    }

    std::uint64_t messagesRouted() const { return messages_.value(); }
    std::uint64_t flitsRouted() const { return flits_.value(); }

    /** Attach the power subsystem's probe (null = no accounting). */
    void setPowerProbe(PowerProbe *probe) { probe_ = probe; }

  protected:
    void reportOwnStats(std::map<std::string, double> &out) const override;
    void resetOwnStats() override;

  private:
    struct Input {
        /** (ready time, message) in arrival order. */
        std::deque<std::pair<Tick, NocMessage>> q;
        CreditFn creditReturn;
    };

    struct Output {
        explicit Output(std::uint32_t queue_flits) : q(queue_flits) {}

        FlitBuffer q;
        std::unique_ptr<Channel> chan;
        Router *dstRouter = nullptr;
        int dstInput = -1;
        std::uint32_t credits = 0;
        NodeId ejectEp = kNodeInvalid;
        Eject eject;
        bool sending = false;
        bool blockedOnEject = false;
    };

    std::uint32_t id_;
    RouterParams params_;
    std::vector<Input> inputs_;
    std::vector<std::unique_ptr<Output>> outputs_;
    std::vector<int> routeOut_;
    std::size_t inputRR_ = 0;
    Counter messages_;
    Counter flits_;
    PowerProbe *probe_ = nullptr;

    void processInput(std::size_t i);
    void tryDrain(std::size_t o);
    void outputSerDone(std::size_t o);
    int routeFor(NodeId dst) const;
};

}  // namespace hmcsim

#endif  // HMCSIM_NOC_ROUTER_H_
