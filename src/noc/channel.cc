#include "noc/channel.h"

#include <algorithm>

#include "common/log.h"

namespace hmcsim {

Channel::Channel(Kernel &kernel, std::string name, Tick flit_period,
                 Tick wire_latency)
    : kernel_(kernel), name_(std::move(name)), flitPeriod_(flit_period),
      wireLatency_(wire_latency)
{
    if (flitPeriod_ == 0)
        panic("Channel '" + name_ + "': zero flit period");
}

void
Channel::panicZeroFlits() const
{
    panic("Channel '" + name_ + "': zero-flit reservation");
}

}  // namespace hmcsim
