#include "noc/channel.h"

#include <algorithm>

#include "common/log.h"

namespace hmcsim {

Channel::Channel(Kernel &kernel, std::string name, Tick flit_period,
                 Tick wire_latency)
    : kernel_(kernel), name_(std::move(name)), flitPeriod_(flit_period),
      wireLatency_(wire_latency)
{
    if (flitPeriod_ == 0)
        panic("Channel '" + name_ + "': zero flit period");
}

Channel::Times
Channel::reserve(std::uint32_t flits, Tick earliest)
{
    if (flits == 0)
        panic("Channel '" + name_ + "': zero-flit reservation");
    Times t;
    t.start = std::max(earliest, std::max(nextFree_, kernel_.now()));
    t.serDone = t.start + static_cast<Tick>(flits) * flitPeriod_;
    t.arrival = t.serDone + wireLatency_;
    nextFree_ = t.serDone;
    flitsCarried_.inc(flits);
    busy_ += t.serDone - t.start;
    return t;
}

}  // namespace hmcsim
