#include "noc/flit.h"

// NocMessage is a plain aggregate; this translation unit exists so the
// header has an anchor for future non-inline helpers.
