/**
 * @file
 * Arbitration policies.  The host controller uses round-robin among the
 * nine FPGA ports (one grant per cycle per link, as in the AC-510
 * firmware); a priority arbiter is provided for QoS experiments.
 */

#ifndef HMCSIM_NOC_ARBITER_H_
#define HMCSIM_NOC_ARBITER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hmcsim {

/**
 * Work-conserving round-robin arbiter over a fixed number of
 * requestors.  Stateless callers pass a bitmap of requests; the arbiter
 * remembers the last grant and starts the next search after it.
 */
class RoundRobinArbiter
{
  public:
    explicit RoundRobinArbiter(std::size_t num_requestors);

    std::size_t numRequestors() const { return num_; }

    /**
     * Grant one of the requesting inputs.
     * @param requests per-input request flags (size must match)
     * @return granted index, or npos if nobody requests
     */
    std::size_t grant(const std::vector<bool> &requests);

    /** Sentinel for "no grant". */
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    /** Reset the rotation pointer. */
    void reset() { last_ = num_ - 1; }

  private:
    std::size_t num_;
    std::size_t last_;
};

/**
 * Strict-priority arbiter: lowest priority value wins; ties broken by
 * round-robin among equal-priority requestors.
 */
class PriorityArbiter
{
  public:
    PriorityArbiter(std::size_t num_requestors,
                    std::vector<int> priorities);

    std::size_t grant(const std::vector<bool> &requests);

    void setPriority(std::size_t idx, int priority);

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  private:
    std::vector<int> priorities_;
    RoundRobinArbiter rr_;
};

}  // namespace hmcsim

#endif  // HMCSIM_NOC_ARBITER_H_
