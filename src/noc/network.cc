#include "noc/network.h"

#include "common/log.h"
#include "common/units.h"

namespace hmcsim {

Network::Network(Kernel &kernel, Component *parent, std::string name,
                 const TopologySpec &spec, const RouterParams &params)
    : Component(kernel, parent, std::move(name)), spec_(spec),
      routes_(computeRoutes(spec))
{
    const std::uint32_t nr = spec_.numRouters;
    const std::uint32_t ne = spec_.numEndpoints();

    ops_.resize(ne);
    opsSet_.assign(ne, false);

    for (std::uint32_t r = 0; r < nr; ++r) {
        routers_.push_back(std::make_unique<Router>(
            kernel, this, "router" + std::to_string(r), r, params));
    }

    // Router-to-router wiring: each undirected link becomes two
    // channels.  Credits freed at the downstream input flow back to the
    // upstream output; the output index is only known after addInput,
    // so the closure reads it through a shared slot.
    //
    // outputToNeighbor[r][n] remembers which output of router r reaches
    // neighbour n so route tables can be filled afterwards.
    std::vector<std::vector<int>> outputToNeighbor(
        nr, std::vector<int>(nr, -1));
    for (const auto &link : spec_.routerLinks) {
        const std::uint32_t a = link.first;
        const std::uint32_t b = link.second;
        Router *ra = routers_[a].get();
        Router *rb = routers_[b].get();

        // a -> b: credits freed at b's input return to a's output.
        {
            // The output index on a is allocated after the input on b,
            // so capture via a small shared slot.
            auto slot = std::make_shared<int>(-1);
            const int inB = rb->addInput([ra, slot](std::uint32_t flits) {
                ra->returnCredits(*slot, flits);
            });
            const int outA = ra->addOutputToRouter(rb, inB);
            *slot = outA;
            outputToNeighbor[a][b] = outA;
        }
        // b -> a.
        {
            auto slot = std::make_shared<int>(-1);
            const int inA = ra->addInput([rb, slot](std::uint32_t flits) {
                rb->returnCredits(*slot, flits);
            });
            const int outB = rb->addOutputToRouter(ra, inA);
            *slot = outB;
            outputToNeighbor[b][a] = outB;
        }
    }

    // Endpoint attachment: injection channel + credited router input,
    // and an ejection output with reservation callbacks.
    injectPorts_.resize(ne);
    ejectLocs_.resize(ne);
    std::vector<std::vector<int>> ejectOutput(nr, std::vector<int>(ne, -1));
    for (std::uint32_t e = 0; e < ne; ++e) {
        const std::uint32_t home = spec_.endpointRouter[e];
        Router *router = routers_[home].get();

        InjectPort &ip = injectPorts_[e];
        ip.router = router;
        ip.credits = params.inputBufferFlits;
        ip.chan = std::make_unique<Channel>(
            kernel, path() + ".inject" + std::to_string(e),
            params.flitPeriod, params.wireLatency);
        const NodeId ep = e;
        ip.input = router->addInput([this, ep](std::uint32_t flits) {
            injectPorts_[ep].credits += flits;
            if (opsSet_[ep] && ops_[ep].onInjectSpace)
                ops_[ep].onInjectSpace();
        });

        ejectLocs_[e].router = router;
        Router::Eject ej;
        ej.tryReserve = [this, ep](std::uint32_t flits) {
            return opsFor(ep).tryReserve(flits);
        };
        ej.deliver = [this, ep](const NocMessage &msg) {
            onDelivered(ep, msg);
        };
        ejectOutput[home][e] = router->addOutputToEndpoint(e, std::move(ej));
    }

    // Routing tables: per router, output port for each destination.
    for (std::uint32_t r = 0; r < nr; ++r) {
        std::vector<int> table(ne, -1);
        for (std::uint32_t e = 0; e < ne; ++e) {
            const std::uint32_t next = routes_.nextRouter[r][e];
            if (next == r) {
                table[e] = ejectOutput[r][e];
                if (table[e] < 0)
                    panic("Network: missing eject output");
            } else {
                table[e] = outputToNeighbor[r][next];
                if (table[e] < 0)
                    panic("Network: missing neighbour output");
            }
        }
        routers_[r]->setRoutes(std::move(table));
    }
}

void
Network::setEndpoint(NodeId ep, EndpointOps ops)
{
    if (ep >= ops_.size())
        panic("Network::setEndpoint: endpoint out of range");
    if (opsSet_[ep])
        panic("Network::setEndpoint: endpoint " + std::to_string(ep) +
              " registered twice");
    if (!ops.tryReserve || !ops.deliver)
        panic("Network::setEndpoint: incomplete callbacks");
    ops_[ep] = std::move(ops);
    opsSet_[ep] = true;
}

void
Network::rewireEndpoint(NodeId ep, EndpointOps ops)
{
    if (ep >= ops_.size() || !opsSet_[ep])
        panic("Network::rewireEndpoint: endpoint not registered");
    if (!ops.tryReserve || !ops.deliver)
        panic("Network::rewireEndpoint: incomplete callbacks");
    ops_[ep] = std::move(ops);
}

const Network::EndpointOps &
Network::opsFor(NodeId ep) const
{
    if (ep >= ops_.size() || !opsSet_[ep])
        panic("Network: endpoint " + std::to_string(ep) +
              " has no registered ops");
    return ops_[ep];
}

bool
Network::canInject(NodeId ep, std::uint32_t flits) const
{
    if (ep >= injectPorts_.size())
        panic("Network::canInject: endpoint out of range");
    return injectPorts_[ep].credits >= flits;
}

void
Network::inject(NodeId ep, NocMessage msg)
{
    if (!canInject(ep, msg.flits))
        panic("Network::inject without credits (endpoint " +
              std::to_string(ep) + ")");
    InjectPort &ip = injectPorts_[ep];
    ip.credits -= msg.flits;
    msg.injectedAt = now();
    const Channel::Times t = ip.chan->reserve(msg.flits, now());
    Router *router = ip.router;
    const int input = ip.input;
    kernel().scheduleAt(t.arrival, [router, input, msg] {
        router->acceptMessage(input, msg);
    });
}

void
Network::kickEject(NodeId ep)
{
    if (ep >= ejectLocs_.size())
        panic("Network::kickEject: endpoint out of range");
    ejectLocs_[ep].router->kickEject(ep);
}

std::uint32_t
Network::hopCount(NodeId from, NodeId to) const
{
    if (from >= spec_.numEndpoints() || to >= spec_.numEndpoints())
        panic("Network::hopCount: endpoint out of range");
    return routes_.hops[spec_.endpointRouter[from]][to];
}

void
Network::setPowerProbe(PowerProbe *probe)
{
    for (auto &r : routers_)
        r->setPowerProbe(probe);
}

void
Network::onDelivered(NodeId ep, const NocMessage &msg)
{
    delivered_.inc();
    flitsDelivered_.inc(msg.flits);
    latencyNs_.add(ticksToNs(now() - msg.injectedAt));
    opsFor(ep).deliver(msg);
}

void
Network::reportOwnStats(std::map<std::string, double> &out) const
{
    out[statName("messages_delivered")] =
        static_cast<double>(delivered_.value());
    out[statName("flits_delivered")] =
        static_cast<double>(flitsDelivered_.value());
    out[statName("avg_latency_ns")] = latencyNs_.mean();
    out[statName("max_latency_ns")] = latencyNs_.max();
}

void
Network::resetOwnStats()
{
    latencyNs_.reset();
    delivered_.reset();
    flitsDelivered_.reset();
}

}  // namespace hmcsim
