#include "noc/arbiter.h"

#include <limits>

#include "common/log.h"

namespace hmcsim {

RoundRobinArbiter::RoundRobinArbiter(std::size_t num_requestors)
    : num_(num_requestors), last_(num_requestors ? num_requestors - 1 : 0)
{
    if (num_ == 0)
        panic("RoundRobinArbiter: zero requestors");
}

std::size_t
RoundRobinArbiter::grant(const std::vector<bool> &requests)
{
    if (requests.size() != num_)
        panic("RoundRobinArbiter: request vector size mismatch");
    for (std::size_t i = 1; i <= num_; ++i) {
        const std::size_t idx = (last_ + i) % num_;
        if (requests[idx]) {
            last_ = idx;
            return idx;
        }
    }
    return npos;
}

PriorityArbiter::PriorityArbiter(std::size_t num_requestors,
                                 std::vector<int> priorities)
    : priorities_(std::move(priorities)), rr_(num_requestors)
{
    if (priorities_.size() != num_requestors)
        panic("PriorityArbiter: priority vector size mismatch");
}

std::size_t
PriorityArbiter::grant(const std::vector<bool> &requests)
{
    if (requests.size() != priorities_.size())
        panic("PriorityArbiter: request vector size mismatch");
    int best = std::numeric_limits<int>::max();
    bool any = false;
    for (std::size_t i = 0; i < requests.size(); ++i) {
        if (requests[i] && priorities_[i] < best) {
            best = priorities_[i];
            any = true;
        }
    }
    if (!any)
        return npos;
    // Mask to the winning priority class and round-robin inside it.
    std::vector<bool> masked(requests.size(), false);
    for (std::size_t i = 0; i < requests.size(); ++i)
        masked[i] = requests[i] && priorities_[i] == best;
    return rr_.grant(masked);
}

void
PriorityArbiter::setPriority(std::size_t idx, int priority)
{
    if (idx >= priorities_.size())
        panic("PriorityArbiter: index out of range");
    priorities_[idx] = priority;
}

}  // namespace hmcsim
