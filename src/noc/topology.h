/**
 * @file
 * Topology descriptions for the logic-layer NoC and shortest-path
 * routing-table computation.
 *
 * The HMC 1.1 logic layer groups four vaults per quadrant; each external
 * link enters through a quadrant switch.  We model that as one router
 * per quadrant with configurable inter-quadrant wiring (full crossbar by
 * default, ring and single-switch variants for ablation).
 */

#ifndef HMCSIM_NOC_TOPOLOGY_H_
#define HMCSIM_NOC_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace hmcsim {

/** Static description of a NoC: routers, inter-router links, endpoints. */
struct TopologySpec {
    /** Number of routers. */
    std::uint32_t numRouters = 0;

    /** Undirected router-router links (each becomes two channels). */
    std::vector<std::pair<std::uint32_t, std::uint32_t>> routerLinks;

    /** For each endpoint id, the router it attaches to. */
    std::vector<std::uint32_t> endpointRouter;

    std::uint32_t numEndpoints() const
    {
        return static_cast<std::uint32_t>(endpointRouter.size());
    }

    /** Sanity-check indices; raises fatal() on inconsistency. */
    void validate() const;
};

/**
 * Routing tables: for router r and destination endpoint e,
 * nextRouter[r][e] is the neighbouring router to forward to, or r
 * itself when e is locally attached (eject).
 */
struct RoutingTables {
    std::vector<std::vector<std::uint32_t>> nextRouter;

    /** Hop count (router-to-router) from router r to endpoint e. */
    std::vector<std::vector<std::uint32_t>> hops;
};

/**
 * Compute deterministic shortest-path routes (BFS, lowest-index
 * neighbour wins ties).  Raises fatal() if any endpoint is unreachable
 * from any router.
 */
RoutingTables computeRoutes(const TopologySpec &spec);

/**
 * Build the default HMC quadrant topology.
 *
 * Endpoints are numbered: [0, num_links) are link masters,
 * [num_links, num_links + num_vaults) are vault controllers.
 * Vault v lives in quadrant v / (num_vaults / num_quadrants).
 * Link l attaches to quadrant (l * num_quadrants) / num_links, i.e.
 * two links land on quadrants 0 and 2, matching the spec's layout.
 *
 * @param xbar if true, quadrants are fully connected; otherwise they
 *        form a bidirectional ring.
 */
TopologySpec makeQuadrantTopology(std::uint32_t num_vaults,
                                  std::uint32_t num_quadrants,
                                  std::uint32_t num_links,
                                  bool xbar);

/** Single central switch connecting every endpoint (idealized NoC). */
TopologySpec makeSingleSwitchTopology(std::uint32_t num_vaults,
                                      std::uint32_t num_links);

/**
 * Build a topology by name: "quadrant_xbar", "quadrant_ring", or
 * "single_switch".  Raises fatal() for unknown names.
 */
TopologySpec makeTopology(const std::string &name, std::uint32_t num_vaults,
                          std::uint32_t num_quadrants,
                          std::uint32_t num_links);

}  // namespace hmcsim

#endif  // HMCSIM_NOC_TOPOLOGY_H_
