#include "noc/router.h"

#include "common/log.h"

namespace hmcsim {

Router::Router(Kernel &kernel, Component *parent, std::string name,
               std::uint32_t id, const RouterParams &params)
    : Component(kernel, parent, std::move(name)), id_(id), params_(params)
{
}

int
Router::addInput(CreditFn credit_return)
{
    inputs_.push_back(Input{{}, std::move(credit_return)});
    return static_cast<int>(inputs_.size() - 1);
}

int
Router::addOutputToRouter(Router *dst, int dst_input)
{
    if (!dst)
        panic("Router::addOutputToRouter: null destination");
    auto out = std::make_unique<Output>(params_.outputQueueFlits);
    out->dstRouter = dst;
    out->dstInput = dst_input;
    out->credits = dst->inputBufferFlits();
    out->chan = std::make_unique<Channel>(
        kernel(), path() + ".out" + std::to_string(outputs_.size()),
        params_.flitPeriod, params_.wireLatency);
    outputs_.push_back(std::move(out));
    return static_cast<int>(outputs_.size() - 1);
}

int
Router::addOutputToEndpoint(NodeId ep, Eject eject)
{
    if (!eject.tryReserve || !eject.deliver)
        panic("Router::addOutputToEndpoint: incomplete eject callbacks");
    auto out = std::make_unique<Output>(params_.ejectQueueFlits);
    out->ejectEp = ep;
    out->eject = std::move(eject);
    out->chan = std::make_unique<Channel>(
        kernel(), path() + ".eject" + std::to_string(ep),
        params_.flitPeriod, params_.wireLatency);
    outputs_.push_back(std::move(out));
    return static_cast<int>(outputs_.size() - 1);
}

void
Router::setRoutes(std::vector<int> output_for_endpoint)
{
    for (int o : output_for_endpoint) {
        if (o < 0 || static_cast<std::size_t>(o) >= outputs_.size())
            panic("Router::setRoutes: invalid output index");
    }
    routeOut_ = std::move(output_for_endpoint);
}

int
Router::routeFor(NodeId dst) const
{
    if (dst >= routeOut_.size())
        panic("Router '" + name() + "': no route for endpoint " +
              std::to_string(dst));
    return routeOut_[dst];
}

void
Router::acceptMessage(int input, const NocMessage &msg)
{
    if (input < 0 || static_cast<std::size_t>(input) >= inputs_.size())
        panic("Router::acceptMessage: invalid input port");
    Input &in = inputs_[static_cast<std::size_t>(input)];
    const Tick ready = now() + params_.routerLatency;
    in.q.emplace_back(ready, msg);
    const std::size_t idx = static_cast<std::size_t>(input);
    kernel().scheduleAt(ready, [this, idx] { processInput(idx); });
}

void
Router::processInput(std::size_t i)
{
    Input &in = inputs_[i];
    while (!in.q.empty()) {
        const auto &[ready, msg] = in.q.front();
        if (ready > now()) {
            // A later event (already scheduled at arrival) handles it.
            return;
        }
        const std::size_t o = static_cast<std::size_t>(routeFor(msg.dst));
        Output &out = *outputs_[o];
        if (!out.q.canAccept(msg.flits)) {
            // Head-of-line blocked; outputSerDone retries all inputs.
            return;
        }
        out.q.push(msg);
        messages_.inc();
        flits_.inc(msg.flits);
        if (probe_)
            probe_->record(PowerEvent::NocFlitHop, msg.flits);
        if (in.creditReturn) {
            // Capture (this, i) rather than copying the CreditFn: a
            // std::function copy costs a manager call (and possibly an
            // allocation) per forwarded message.
            const std::uint32_t freed = msg.flits;
            kernel().scheduleIn(params_.creditLatency, [this, i, freed] {
                inputs_[i].creditReturn(freed);
            });
        }
        in.q.pop_front();
        tryDrain(o);
    }
}

void
Router::tryDrain(std::size_t o)
{
    Output &out = *outputs_[o];
    if (out.sending || out.q.empty())
        return;
    const NocMessage &head = out.q.front();
    if (out.dstRouter) {
        if (out.credits < head.flits)
            return;  // returnCredits() retries
        out.credits -= head.flits;
    } else {
        if (!out.eject.tryReserve(head.flits)) {
            out.blockedOnEject = true;
            return;  // kickEject() retries
        }
        out.blockedOnEject = false;
    }
    out.sending = true;
    const Channel::Times t = out.chan->reserve(head.flits, now());
    // One copy of the message for the in-flight arrival lambda (the
    // queue entry is popped when the channel frees); the Output lives
    // behind a unique_ptr, so its address is stable to capture.
    NocMessage msg = head;
    kernel().scheduleAt(t.serDone, [this, o] { outputSerDone(o); });
    if (out.dstRouter) {
        Router *dst = out.dstRouter;
        const int di = out.dstInput;
        kernel().scheduleAt(t.arrival, [dst, di, msg = std::move(msg)] {
            dst->acceptMessage(di, msg);
        });
    } else {
        Output *op = outputs_[o].get();
        kernel().scheduleAt(t.arrival, [op, msg = std::move(msg)] {
            op->eject.deliver(msg);
        });
    }
}

void
Router::outputSerDone(std::size_t o)
{
    Output &out = *outputs_[o];
    out.q.pop();
    out.sending = false;
    tryDrain(o);
    // Output-queue space freed: unblock HOL-stalled inputs.  The scan
    // starts at a rotating index; a fixed order would give one input
    // strict priority over the freed space and starve the others
    // under saturation.
    const std::size_t n = inputs_.size();
    if (n == 0)
        return;
    const std::size_t base = inputRR_++;
    for (std::size_t k = 0; k < n; ++k)
        processInput((base + k) % n);
}

void
Router::returnCredits(int output, std::uint32_t flits)
{
    if (output < 0 || static_cast<std::size_t>(output) >= outputs_.size())
        panic("Router::returnCredits: invalid output port");
    Output &out = *outputs_[static_cast<std::size_t>(output)];
    out.credits += flits;
    tryDrain(static_cast<std::size_t>(output));
}

void
Router::kickEject(NodeId ep)
{
    for (std::size_t o = 0; o < outputs_.size(); ++o) {
        Output &out = *outputs_[o];
        if (out.ejectEp == ep && out.blockedOnEject) {
            out.blockedOnEject = false;
            tryDrain(o);
        }
    }
}

void
Router::reportOwnStats(std::map<std::string, double> &out) const
{
    out[statName("messages")] = static_cast<double>(messages_.value());
    out[statName("flits")] = static_cast<double>(flits_.value());
}

void
Router::resetOwnStats()
{
    messages_.reset();
    flits_.reset();
}

}  // namespace hmcsim
