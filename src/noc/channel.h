/**
 * @file
 * Point-to-point NoC channel: serializes one message at a time at one
 * flit per flit-period, then adds a fixed wire latency.  Occupancy is
 * tracked so back-to-back sends queue up naturally.
 */

#ifndef HMCSIM_NOC_CHANNEL_H_
#define HMCSIM_NOC_CHANNEL_H_

#include <cstdint>
#include <string>

#include "common/stats.h"
#include "common/types.h"
#include "sim/kernel.h"

namespace hmcsim {

class Channel
{
  public:
    /**
     * @param flit_period ticks to transmit one flit
     * @param wire_latency additional propagation delay after the last
     *        flit leaves the sender
     */
    Channel(Kernel &kernel, std::string name, Tick flit_period,
            Tick wire_latency);

    /** Timestamps of one reserved transmission. */
    struct Times {
        /** First flit leaves the sender. */
        Tick start;
        /** Last flit has left the sender (channel free again). */
        Tick serDone;
        /** Message fully arrived downstream. */
        Tick arrival;
    };

    /**
     * Reserve the channel for @p flits starting no earlier than
     * @p earliest.  Advances the channel's free time.
     * Inline: called once per message per hop.
     */
    Times
    reserve(std::uint32_t flits, Tick earliest)
    {
        if (flits == 0)
            panicZeroFlits();
        Times t;
        const Tick now = kernel_.now();
        t.start = earliest > nextFree_ ? earliest : nextFree_;
        t.start = t.start > now ? t.start : now;
        t.serDone = t.start + static_cast<Tick>(flits) * flitPeriod_;
        t.arrival = t.serDone + wireLatency_;
        nextFree_ = t.serDone;
        flitsCarried_.inc(flits);
        busy_ += t.serDone - t.start;
        return t;
    }

    /** Earliest time a new transmission could start. */
    Tick nextFree() const { return nextFree_; }

    const std::string &name() const { return name_; }
    Tick flitPeriod() const { return flitPeriod_; }
    Tick wireLatency() const { return wireLatency_; }

    /** Total flits ever pushed through (bandwidth accounting). */
    std::uint64_t flitsCarried() const { return flitsCarried_.value(); }

    /** Busy time accumulated, for utilization reporting. */
    Tick busyTime() const { return busy_; }

  private:
    /** Cold path of reserve(), kept out of line. */
    [[noreturn]] void panicZeroFlits() const;

    Kernel &kernel_;
    std::string name_;
    Tick flitPeriod_;
    Tick wireLatency_;
    Tick nextFree_ = 0;
    Counter flitsCarried_;
    Tick busy_ = 0;
};

}  // namespace hmcsim

#endif  // HMCSIM_NOC_CHANNEL_H_
