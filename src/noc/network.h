/**
 * @file
 * Network facade: builds routers and channels from a TopologySpec,
 * exposes credit-checked injection and reservation-based ejection to
 * endpoints (link masters and vault controllers), and aggregates
 * network-level statistics.
 */

#ifndef HMCSIM_NOC_NETWORK_H_
#define HMCSIM_NOC_NETWORK_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "noc/router.h"
#include "noc/topology.h"

namespace hmcsim {

class Network : public Component
{
  public:
    /** Callbacks each endpoint registers before traffic flows. */
    struct EndpointOps {
        /** Reserve delivery space; false blocks the ejection port. */
        std::function<bool(std::uint32_t flits)> tryReserve;

        /** Deliver a message (space already reserved). */
        std::function<void(const NocMessage &)> deliver;

        /** Injection credits freed; endpoint may retry inject. */
        std::function<void()> onInjectSpace;
    };

    Network(Kernel &kernel, Component *parent, std::string name,
            const TopologySpec &spec, const RouterParams &params);

    /** Register endpoint callbacks; panics on re-registration. */
    void setEndpoint(NodeId ep, EndpointOps ops);

    /**
     * Replace an already-registered endpoint's callbacks (multi-cube
     * chaining redirects a link endpoint's ejection to a pass-through
     * switch after device construction).
     */
    void rewireEndpoint(NodeId ep, EndpointOps ops);

    /** True if injection credits cover a message of @p flits. */
    bool canInject(NodeId ep, std::uint32_t flits) const;

    /**
     * Inject a message at endpoint @p ep.  Caller must have checked
     * canInject(); violating that is a modelling bug (panics).
     */
    void inject(NodeId ep, NocMessage msg);

    /** Endpoint freed delivery space; retry a blocked ejection. */
    void kickEject(NodeId ep);

    std::uint32_t numEndpoints() const
    {
        return static_cast<std::uint32_t>(injectPorts_.size());
    }

    std::uint32_t numRouters() const
    {
        return static_cast<std::uint32_t>(routers_.size());
    }

    /** Router-hop distance between two endpoints (static). */
    std::uint32_t hopCount(NodeId from, NodeId to) const;

    /** Attach the power probe to every router. */
    void setPowerProbe(PowerProbe *probe);

    /** End-to-end message latency distribution (ns). */
    const SampleStats &latencyNs() const { return latencyNs_; }

    std::uint64_t messagesDelivered() const { return delivered_.value(); }
    std::uint64_t flitsDelivered() const { return flitsDelivered_.value(); }

  protected:
    void reportOwnStats(std::map<std::string, double> &out) const override;
    void resetOwnStats() override;

  private:
    struct InjectPort {
        std::uint32_t credits = 0;
        std::unique_ptr<Channel> chan;
        Router *router = nullptr;
        int input = -1;
    };

    struct EjectLoc {
        Router *router = nullptr;
    };

    TopologySpec spec_;
    RoutingTables routes_;
    std::vector<std::unique_ptr<Router>> routers_;
    std::vector<InjectPort> injectPorts_;
    std::vector<EjectLoc> ejectLocs_;
    std::vector<EndpointOps> ops_;
    std::vector<bool> opsSet_;
    SampleStats latencyNs_;
    Counter delivered_;
    Counter flitsDelivered_;

    const EndpointOps &opsFor(NodeId ep) const;
    void onDelivered(NodeId ep, const NocMessage &msg);
};

}  // namespace hmcsim

#endif  // HMCSIM_NOC_NETWORK_H_
