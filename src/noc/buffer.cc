#include "noc/buffer.h"

#include <algorithm>
#include <limits>

#include "common/log.h"

namespace hmcsim {

FlitBuffer::FlitBuffer(std::uint32_t capacity_flits)
    : capacity_(capacity_flits)
{
}

bool
FlitBuffer::canAccept(std::uint32_t flits) const
{
    if (capacity_ == 0)
        return true;
    return used_ + flits <= capacity_;
}

void
FlitBuffer::push(const NocMessage &msg)
{
    if (!canAccept(msg.flits))
        panic("FlitBuffer: overflow (used " + std::to_string(used_) +
              ", incoming " + std::to_string(msg.flits) + ", cap " +
              std::to_string(capacity_) + ")");
    q_.push_back(msg);
    used_ += msg.flits;
    peak_ = std::max(peak_, used_);
}

NocMessage
FlitBuffer::pop()
{
    if (q_.empty())
        panic("FlitBuffer: pop from empty buffer");
    NocMessage msg = std::move(q_.front());
    q_.pop_front();
    used_ -= msg.flits;
    return msg;
}

const NocMessage &
FlitBuffer::front() const
{
    if (q_.empty())
        panic("FlitBuffer: front of empty buffer");
    return q_.front();
}

std::uint32_t
FlitBuffer::freeFlits() const
{
    if (capacity_ == 0)
        return std::numeric_limits<std::uint32_t>::max();
    return capacity_ - used_;
}

void
FlitBuffer::clear()
{
    q_.clear();
    used_ = 0;
}

}  // namespace hmcsim
