#include "host/system.h"

#include "common/log.h"

namespace hmcsim {

void
SystemConfig::validate() const
{
    hmc.validate();
    host.validate();
}

SystemConfig
SystemConfig::fromConfig(const Config &cfg)
{
    SystemConfig c;
    c.hmc = HmcConfig::fromConfig(cfg);
    c.host = HostConfig::fromConfig(cfg);
    return c;
}

void
SystemConfig::toConfig(Config &cfg) const
{
    hmc.toConfig(cfg);
    host.toConfig(cfg);
}

namespace {

/** Plain root node for the component tree. */
class RootComponent : public Component
{
  public:
    RootComponent(Kernel &kernel) : Component(kernel, nullptr, "system") {}
};

}  // namespace

System::System(const SystemConfig &cfg) : cfg_(cfg)
{
    cfg_.validate();
    root_ = std::make_unique<RootComponent>(kernel_);
    cube_ = std::make_unique<HmcDevice>(kernel_, root_.get(), "hmc",
                                        cfg_.hmc);
    fpga_ = std::make_unique<Fpga>(kernel_, root_.get(), "fpga", cfg_.host,
                                   *cube_);
    fpga_->start();
    if (PowerModel *pm = cube_->powerModel())
        pm->start();
}

void
System::run(Tick duration)
{
    kernel_.run(kernel_.now() + duration);
}

bool
System::runUntilIdle(Tick max_duration)
{
    const Tick deadline = kernel_.now() + max_duration;
    kernel_.runUntil([this] { return fpga_->allPortsIdle(); }, deadline);
    return fpga_->allPortsIdle();
}

void
System::resetStats()
{
    root_->resetStats();
}

ExperimentResult
System::measure(Tick duration)
{
    resetStats();
    const Tick begin = kernel_.now();
    run(duration);
    return collectResult(*this, kernel_.now() - begin);
}

std::map<std::string, double>
System::stats() const
{
    std::map<std::string, double> out;
    root_->reportStats(out);
    return out;
}

}  // namespace hmcsim
