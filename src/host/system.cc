#include "host/system.h"

#include <algorithm>
#include <thread>

#include "common/log.h"
#include "common/rng.h"
#include "common/units.h"
#include "hmc/packet_pool.h"

namespace hmcsim {

void
SystemConfig::validate() const
{
    hmc.validate();
    host.validate();
    obs.validate();
    sim.validate();
    if (host.numHosts > 1) {
        if (hmc.chain.numCubes < host.numHosts)
            fatal("system: " + std::to_string(host.numHosts) +
                  " hosts need at least as many cubes "
                  "(hmc.num_cubes = " +
                  std::to_string(hmc.chain.numCubes) + ")");
        if (chainTopologyFromString(hmc.chain.topology) ==
            ChainTopology::Star)
            fatal("system: star topologies cannot route responses "
                  "between cubes; multi-host needs daisy or ring");
    }
    if (chainTopologyFromString(hmc.chain.topology) ==
        ChainTopology::Star) {
        // Star links rotate over the cubes (link l serves cube l % N);
        // there is no entry-cube attachment to pin, so an explicit
        // entry would be silently ignored -- reject it instead.
        for (CubeId e : host.entryCubes) {
            if (e != kEntryCubeAuto)
                fatal("system: star topologies have no entry cubes to "
                      "pin (host links rotate over all cubes)");
        }
    }
    // Resolves the even spread and checks bounds / distinctness.
    host.resolvedEntryCubes(hmc.chain.numCubes);
    if (sim.parallelEnabled()) {
        // The parallel core shards per cube; everything it cannot
        // shard is rejected loudly rather than raced quietly.
        if (hmc.chain.numCubes < 2)
            fatal("system: sim.parallel=on needs a multi-cube chain "
                  "(one partition per cube; hmc.num_cubes >= 2)");
        if (hmc.power.enabled)
            fatal("system: sim.parallel=on requires "
                  "hmc.power.enabled=false (power probes aggregate "
                  "across partition boundaries)");
        if (hmc.crcErrorProb > 0.0)
            fatal("system: sim.parallel=on cannot inject CRC errors "
                  "(the per-link retry RNG is shared by both "
                  "directions, which execute in different partitions)");
        if (obs.profile)
            fatal("system: sim.parallel=on is incompatible with "
                  "obs.profile (profiler scopes are single-threaded)");
        if (obs.anatomy && host.numHosts > 1)
            fatal("system: sim.parallel=on with multiple hosts cannot "
                  "run obs.anatomy (hosts in different partitions "
                  "would race on the collector)");
    }
}

SystemConfig
SystemConfig::fromConfig(const Config &cfg)
{
    SystemConfig c;
    c.hmc = HmcConfig::fromConfig(cfg);
    c.host = HostConfig::fromConfig(cfg);
    c.obs = ObsConfig::fromConfig(cfg);
    c.sim = SimConfig::fromConfig(cfg);
    return c;
}

void
SystemConfig::toConfig(Config &cfg) const
{
    hmc.toConfig(cfg);
    host.toConfig(cfg);
    obs.toConfig(cfg);
    sim.toConfig(cfg);
}

namespace {

/** Plain root node for the component tree. */
class RootComponent : public Component
{
  public:
    RootComponent(Kernel &kernel) : Component(kernel, nullptr, "system") {}
};

}  // namespace

System::System(const SystemConfig &cfg) : cfg_(cfg)
{
    cfg_.validate();
    entryCubes_ = cfg_.host.resolvedEntryCubes(cfg_.hmc.chain.numCubes);
    // Engine selection happens before anything can schedule: the queue
    // implementation and the packet pool trade only wall-clock speed,
    // never event order (guarded by tests/sim + tests/host identity
    // tests), so this cannot affect simulation results.
    kernel_.queue().configure(cfg_.sim);
    setPacketPoolEnabled(cfg_.sim.packetPool);
    if (cfg_.sim.parallelEnabled()) {
        // Conservative lookahead: the cheapest cross-partition
        // interaction.  A packet handoff costs at least one flit
        // serialization + wire + SerDes pipeline before the remote
        // arrive() fires; a token refund costs the token-return
        // latency.  Both are fixed by the link config, so the horizon
        // is exact, not an estimate.
        const Tick flit = serializationTicks(
            kFlitBytes, cfg_.hmc.linkGbps, cfg_.hmc.lanesPerLink);
        const Tick hop =
            flit + cfg_.hmc.linkWireLatency + cfg_.hmc.serdesLatency;
        const Tick lookahead =
            std::min(hop, cfg_.hmc.tokenReturnLatency);
        std::uint32_t threads =
            static_cast<std::uint32_t>(cfg_.sim.threads);
        if (threads == 0) {
            threads = cfg_.hmc.chain.numCubes;
            const unsigned hw = std::thread::hardware_concurrency();
            if (hw > 0)
                threads = std::min<std::uint32_t>(
                    threads, static_cast<std::uint32_t>(hw));
        }
        kernel_.enableParallel(cfg_.sim, cfg_.hmc.chain.numCubes,
                               threads, lookahead);
    }
    // Published on the kernel before the tree is built so components
    // can register metrics / cache tracer pointers in their ctors.
    // With all obs.* knobs off the layer is never constructed and
    // kernel().obs() stays null everywhere.
    if (cfg_.obs.anyEnabled()) {
        obs_ = std::make_unique<Observability>(cfg_.obs);
        kernel_.setObservability(obs_.get());
        if (kernel_.parallelEnabled()) {
            // One trace-ring shard per partition (+ the global
            // observer partition) so record() never crosses threads;
            // dumps merge the shards back into tick order.
            if (PacketTracer *t = obs_->tracer())
                t->setNumShards(cfg_.hmc.chain.numCubes + 1);
        }
    }
    root_ = std::make_unique<RootComponent>(kernel_);
    if (cfg_.hmc.chain.numCubes == 1) {
        // Classic single-cube construction, kept verbatim so default
        // configs stay bit-identical to a pre-chain build.
        cube_ = std::make_unique<HmcDevice>(kernel_, root_.get(), "hmc",
                                            cfg_.hmc);
    } else {
        chain_ = std::make_unique<CubeNetwork>(kernel_, root_.get(),
                                               "chain", cfg_.hmc,
                                               entryCubes_);
        chain_->assignPartitions();
    }
    const bool multi_host = cfg_.host.numHosts > 1;
    for (HostId h = 0; h < cfg_.host.numHosts; ++h) {
        // The single-host fabric keeps its historic "fpga" component
        // name (and thus stat namespace); multi-host fabrics get one
        // "host<H>" namespace each so no two controllers' counters
        // can ever collapse into one stat key.
        const std::string name =
            multi_host ? "host" + std::to_string(h) : "fpga";
        hosts_.push_back(std::make_unique<Fpga>(kernel_, root_.get(),
                                                name, hostConfigFor(h),
                                                makeAttach(h)));
    }
    for (HostId h = 0; h < hosts_.size(); ++h) {
        // A host controller executes inside its entry cube's partition
        // (its links' host-end state lives there); the scope pins the
        // controller's first self-scheduled tick -- and therefore its
        // whole event chain -- to that partition.  Null scope (serial
        // mode) leaves scheduling on the plain kernel queue.
        ScopedSchedulePartition scope(
            kernel_.parallelEnabled() ? kernel_.partition(entryCubes_[h])
                                      : nullptr);
        hosts_[h]->start();
    }
    for (CubeId c = 0; c < numCubes(); ++c) {
        if (PowerModel *pm = device(c).powerModel())
            pm->start();
    }
    // Config-driven workloads (host.workload_ports / host.port<N>.*),
    // replicated onto every host; explicit workload seeds are
    // re-mixed per host so the fabrics issue decorrelated streams
    // (seed-0 specs already decorrelate through the per-host
    // HostConfig seed).
    for (HostId h = 0; h < numHosts(); ++h) {
        for (const PortWorkload &pw : cfg_.host.portWorkloads) {
            WorkloadSpec spec = pw.spec;
            if (h > 0 && spec.seed != 0)
                spec.seed = mixSeeds(spec.seed, kHostSeedStream + h);
            hosts_[h]->configureWorkload(pw.port, spec);
        }
    }
    if (obs_) {
        if (AnatomyCollector *a = obs_->anatomy()) {
            // The topology-derived cost of one empty-queue chain hop:
            // switch pass-through + SerDes + wire, plus per-flit
            // serialization at the link rate.  The anatomy engine uses
            // it to split chain forwarding into floor vs queueing.
            const Tick per_hop_fixed = cfg_.hmc.chain.passThroughLatency +
                                       cfg_.hmc.serdesLatency +
                                       cfg_.hmc.linkWireLatency;
            const Tick per_flit = serializationTicks(
                kFlitBytes, cfg_.hmc.linkGbps, cfg_.hmc.lanesPerLink);
            a->setChainHopFloor(per_hop_fixed, per_flit);
        }
        obs_->startSampler(kernel_);
    }
}

HostConfig
System::hostConfigFor(HostId h) const
{
    HostConfig hc = cfg_.host;
    if (h > 0)
        hc.seed = mixSeeds(hc.seed, kHostSeedStream + h);
    return hc;
}

HostAttach
System::makeAttach(HostId h)
{
    HostAttach a;
    a.hostId = h;
    a.numCubes = numCubes();
    a.totalCapacityBytes = cfg_.hmc.totalCapacityBytes();
    a.map = &addressMap();
    if (cube_) {
        for (LinkId l = 0; l < cfg_.hmc.numLinks; ++l) {
            a.links.push_back(&cube_->link(l));
            a.linkCube.push_back(kCubeAll);
        }
        a.cubes.push_back(cube_.get());
        return a;
    }
    for (LinkId l = 0; l < chain_->numHostLinks(); ++l) {
        a.links.push_back(&chain_->hostLink(l, h));
        a.linkCube.push_back(chain_->hostLinkCube(l, h));
    }
    // Entry spreading needs interchangeable entry links; a star link
    // reaches exactly one cube, so star keeps the static rotation.
    a.adaptiveEntry =
        chain_->routingMode() == ChainRoutingMode::Adaptive &&
        chain_->routes().topology() != ChainTopology::Star;
    for (CubeId c = 0; c < numCubes(); ++c)
        a.cubes.push_back(&chain_->cube(c));
    return a;
}

HmcDevice &
System::device(CubeId c)
{
    if (cube_) {
        if (c != 0)
            panic("System::device: single-cube system");
        return *cube_;
    }
    return chain_->cube(c);
}

Fpga &
System::fpga(HostId h)
{
    if (h >= hosts_.size())
        panic("System::fpga: host out of range");
    return *hosts_[h];
}

CubeId
System::hostEntryCube(HostId h) const
{
    if (h >= entryCubes_.size())
        panic("System::hostEntryCube: host out of range");
    return entryCubes_[h];
}

const AddressMap &
System::addressMap() const
{
    return cube_ ? cube_->addressMap() : chain_->cube(0).addressMap();
}

void
System::run(Tick duration)
{
    SelfProfiler *prof = obs_ ? obs_->profiler() : nullptr;
    if (!prof) {
        kernel_.run(kernel_.now() + duration);
        return;
    }
    const WallTimer timer;
    const std::uint64_t events = kernel_.run(kernel_.now() + duration);
    prof->addRun(timer.seconds(), events);
}

bool
System::runUntilIdle(Tick max_duration)
{
    const auto all_idle = [this] {
        for (const auto &host : hosts_) {
            if (!host->allPortsIdle())
                return false;
        }
        return true;
    };
    const Tick deadline = kernel_.now() + max_duration;
    kernel_.runUntil(all_idle, deadline);
    return all_idle();
}

void
System::resetStats()
{
    root_->resetStats();
}

ExperimentResult
System::measure(Tick duration)
{
    resetStats();
    const Tick begin = kernel_.now();
    run(duration);
    return collectResult(*this, kernel_.now() - begin);
}

std::map<std::string, double>
System::stats() const
{
    std::map<std::string, double> out;
    root_->reportStats(out);
    return out;
}

}  // namespace hmcsim
