#include "host/system.h"

#include "common/log.h"

namespace hmcsim {

void
SystemConfig::validate() const
{
    hmc.validate();
    host.validate();
}

SystemConfig
SystemConfig::fromConfig(const Config &cfg)
{
    SystemConfig c;
    c.hmc = HmcConfig::fromConfig(cfg);
    c.host = HostConfig::fromConfig(cfg);
    return c;
}

void
SystemConfig::toConfig(Config &cfg) const
{
    hmc.toConfig(cfg);
    host.toConfig(cfg);
}

namespace {

/** Plain root node for the component tree. */
class RootComponent : public Component
{
  public:
    RootComponent(Kernel &kernel) : Component(kernel, nullptr, "system") {}
};

}  // namespace

System::System(const SystemConfig &cfg) : cfg_(cfg)
{
    cfg_.validate();
    root_ = std::make_unique<RootComponent>(kernel_);
    if (cfg_.hmc.chain.numCubes == 1) {
        // Classic single-cube construction, kept verbatim so default
        // configs stay bit-identical to a pre-chain build.
        cube_ = std::make_unique<HmcDevice>(kernel_, root_.get(), "hmc",
                                            cfg_.hmc);
    } else {
        chain_ = std::make_unique<CubeNetwork>(kernel_, root_.get(),
                                               "chain", cfg_.hmc);
    }
    fpga_ = std::make_unique<Fpga>(kernel_, root_.get(), "fpga", cfg_.host,
                                   makeAttach());
    fpga_->start();
    for (CubeId c = 0; c < numCubes(); ++c) {
        if (PowerModel *pm = device(c).powerModel())
            pm->start();
    }
    // Config-driven workloads (host.workload_ports / host.port<N>.*).
    for (const PortWorkload &pw : cfg_.host.portWorkloads)
        fpga_->configureWorkload(pw.port, pw.spec);
}

HostAttach
System::makeAttach()
{
    HostAttach a;
    a.numCubes = numCubes();
    a.totalCapacityBytes = cfg_.hmc.totalCapacityBytes();
    a.map = &addressMap();
    if (cube_) {
        for (LinkId l = 0; l < cfg_.hmc.numLinks; ++l) {
            a.links.push_back(&cube_->link(l));
            a.linkCube.push_back(kCubeAll);
        }
        a.cubes.push_back(cube_.get());
        return a;
    }
    for (LinkId l = 0; l < chain_->numHostLinks(); ++l) {
        a.links.push_back(&chain_->hostLink(l));
        a.linkCube.push_back(chain_->hostLinkCube(l));
    }
    // Entry spreading needs interchangeable entry links; a star link
    // reaches exactly one cube, so star keeps the static rotation.
    a.adaptiveEntry =
        chain_->routingMode() == ChainRoutingMode::Adaptive &&
        chain_->routes().topology() != ChainTopology::Star;
    for (CubeId c = 0; c < numCubes(); ++c)
        a.cubes.push_back(&chain_->cube(c));
    return a;
}

HmcDevice &
System::device(CubeId c)
{
    if (cube_) {
        if (c != 0)
            panic("System::device: single-cube system");
        return *cube_;
    }
    return chain_->cube(c);
}

const AddressMap &
System::addressMap() const
{
    return cube_ ? cube_->addressMap() : chain_->cube(0).addressMap();
}

void
System::run(Tick duration)
{
    kernel_.run(kernel_.now() + duration);
}

bool
System::runUntilIdle(Tick max_duration)
{
    const Tick deadline = kernel_.now() + max_duration;
    kernel_.runUntil([this] { return fpga_->allPortsIdle(); }, deadline);
    return fpga_->allPortsIdle();
}

void
System::resetStats()
{
    root_->resetStats();
}

ExperimentResult
System::measure(Tick duration)
{
    resetStats();
    const Tick begin = kernel_.now();
    run(duration);
    return collectResult(*this, kernel_.now() - begin);
}

std::map<std::string, double>
System::stats() const
{
    std::map<std::string, double> out;
    root_->reportStats(out);
    return out;
}

}  // namespace hmcsim
