#include "host/port.h"

#include <algorithm>

#include "common/log.h"
#include "common/units.h"

namespace hmcsim {

Port::Port(Kernel &kernel, Component *parent, std::string name, PortId id,
           const HostConfig &cfg)
    : Component(kernel, parent, std::move(name)), id_(id),
      fifoDepth_(cfg.portFifoDepth), monitor_(cfg.fixedLatencyNs)
{
}

std::uint32_t
Port::headFlits() const
{
    if (fifo_.empty())
        panic("Port::headFlits on empty FIFO");
    return fifo_.front()->flits();
}

Addr
Port::headAddr() const
{
    if (fifo_.empty())
        panic("Port::headAddr on empty FIFO");
    return fifo_.front()->addr;
}

HmcPacketPtr
Port::popRequest()
{
    if (fifo_.empty())
        panic("Port::popRequest on empty FIFO");
    HmcPacketPtr pkt = fifo_.front();
    fifo_.pop_front();
    return pkt;
}

void
Port::pushRequest(const HmcPacketPtr &pkt)
{
    if (fifoFull())
        panic("Port::pushRequest: FIFO overflow");
    pkt->createdAt = now();
    pkt->port = id_;
    fifo_.push_back(pkt);
    issued_.inc();
}

std::uint64_t
Port::transactionBytes(const HmcPacket &resp)
{
    // Request + response wire bytes, reconstructed from the response:
    // the pair (cmd, dataBytes) determines both packet sizes.
    const HmcCmd req_cmd = resp.cmd == HmcCmd::ReadResponse
        ? HmcCmd::Read
        : HmcCmd::Write;
    const std::uint32_t req_flits =
        HmcPacket::flitsFor(req_cmd, resp.dataBytes);
    return static_cast<std::uint64_t>(req_flits + resp.flits()) *
        kFlitBytes;
}

bool
Port::idle() const
{
    return fifo_.empty();
}

void
Port::reportOwnStats(std::map<std::string, double> &out) const
{
    out[statName("issued")] = static_cast<double>(issued_.value());
    out[statName("reads")] = static_cast<double>(monitor_.reads());
    out[statName("writes")] = static_cast<double>(monitor_.writes());
    out[statName("avg_read_latency_ns")] = monitor_.readLatencyNs().mean();
}

void
Port::resetOwnStats()
{
    issued_.reset();
    monitor_.reset();
}

// ---------------------------------------------------------------- GUPS --

GupsPort::GupsPort(Kernel &kernel, Component *parent, std::string name,
                   PortId id, const HostConfig &cfg, const Params &params)
    : Port(kernel, parent, std::move(name), id, cfg), params_(params),
      gen_(params.gen), tags_(cfg.tagsPerPort)
{
}

void
GupsPort::tick()
{
    if (!active_ || fifoFull() || !tags_.hasFree())
        return;

    // Read-modify-write: the write half of a completed read has
    // priority over new reads.
    if (!pendingWrites_.empty()) {
        const Addr addr = pendingWrites_.front();
        pendingWrites_.pop_front();
        HmcPacketPtr pkt =
            makeWriteRequest(addr, gen_.requestBytes(), id_);
        pkt->tag = tags_.acquire();
        pushRequest(pkt);
        return;
    }

    const Addr addr = gen_.next();
    HmcPacketPtr pkt = params_.kind == ReqKind::WriteOnly
        ? makeWriteRequest(addr, gen_.requestBytes(), id_)
        : makeReadRequest(addr, gen_.requestBytes(), id_);
    pkt->tag = tags_.acquire();
    pushRequest(pkt);
}

void
GupsPort::onResponse(const HmcPacketPtr &pkt)
{
    pkt->hostArriveAt = now();
    tags_.release(pkt->tag);
    if (pkt->cmd == HmcCmd::ReadResponse) {
        monitor_.recordRead(pkt->createdAt, now(), transactionBytes(*pkt), pkt.get());
        if (params_.kind == ReqKind::ReadModifyWrite)
            pendingWrites_.push_back(pkt->addr);
    } else {
        monitor_.recordWrite(pkt->createdAt, now(),
                             transactionBytes(*pkt));
    }
}

bool
GupsPort::idle() const
{
    // A GUPS port never finishes on its own; it is idle only while
    // deactivated with nothing outstanding.
    return !active_ && fifo_.empty() && tags_.inUse() == 0 &&
        pendingWrites_.empty();
}

// -------------------------------------------------------------- Stream --

StreamPort::StreamPort(Kernel &kernel, Component *parent, std::string name,
                       PortId id, const HostConfig &cfg,
                       const Params &params)
    : Port(kernel, parent, std::move(name), id, cfg), params_(params),
      window_(params.window ? params.window : cfg.streamWindow),
      drainRate_(cfg.streamDrainFlitsPerCycle)
{
    if (params_.trace.empty())
        fatal("StreamPort: empty trace");
    batchRemaining_ = params_.batchSize;
}

bool
StreamPort::issueNext()
{
    if (exhausted_ || fifoFull() || inFlight_ >= window_)
        return false;
    if (params_.batchSize != 0) {
        if (batchRemaining_ == 0) {
            // Wait for the batch to fully complete before restarting.
            if (inFlight_ != 0)
                return false;
            batchRemaining_ = params_.batchSize;
            batches_.inc();
        }
    }
    if (nextIdx_ >= params_.trace.size()) {
        if (!params_.loop) {
            exhausted_ = true;
            return false;
        }
        nextIdx_ = 0;
    }
    const TraceRecord &rec = params_.trace[nextIdx_];
    if (rec.delayNs != 0 && now() < nextIssueAllowed_)
        return false;
    ++nextIdx_;
    HmcPacketPtr pkt = rec.isWrite
        ? makeWriteRequest(rec.addr, rec.bytes, id_)
        : makeReadRequest(rec.addr, rec.bytes, id_);
    pushRequest(pkt);
    ++inFlight_;
    if (params_.batchSize != 0)
        --batchRemaining_;
    if (rec.delayNs != 0)
        nextIssueAllowed_ = now() + rec.delayNs * kNanosecond;
    return true;
}

void
StreamPort::tick()
{
    if (!active_)
        return;

    // Drain responses through the port's AXI-Stream channel: the
    // budget accumulates drainRate_ flits per cycle so multi-flit
    // responses take multiple cycles, which is what throttles large
    // request sizes on the stream path (Fig. 7/8 slopes).
    drainBudget_ = std::min(drainBudget_ + drainRate_,
                            std::max(2 * drainRate_, 12u));
    while (!drainQ_.empty() && drainQ_.front()->flits() <= drainBudget_) {
        const HmcPacketPtr pkt = drainQ_.front();
        drainQ_.pop_front();
        drainBudget_ -= pkt->flits();
        completeResponse(pkt);
    }

    // One new request per cycle at most.
    issueNext();
}

void
StreamPort::onResponse(const HmcPacketPtr &pkt)
{
    drainQ_.push_back(pkt);
}

void
StreamPort::completeResponse(const HmcPacketPtr &pkt)
{
    pkt->hostArriveAt = now();
    if (inFlight_ == 0)
        panic("StreamPort: response with nothing in flight");
    --inFlight_;
    if (pkt->cmd == HmcCmd::ReadResponse)
        monitor_.recordRead(pkt->createdAt, now(), transactionBytes(*pkt), pkt.get());
    else
        monitor_.recordWrite(pkt->createdAt, now(),
                             transactionBytes(*pkt));
}

bool
StreamPort::idle() const
{
    return (exhausted_ || !active_) && inFlight_ == 0 && fifo_.empty() &&
        drainQ_.empty();
}

}  // namespace hmcsim
