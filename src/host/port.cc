#include "host/port.h"

#include "common/log.h"
#include "common/units.h"
#include "obs/observability.h"
#include "sim/kernel.h"

namespace hmcsim {

Port::Port(Kernel &kernel, Component *parent, std::string name, PortId id,
           const HostConfig &cfg)
    : Component(kernel, parent, std::move(name)), id_(id),
      fifoDepth_(cfg.portFifoDepth), monitor_(cfg.fixedLatencyNs)
{
    if (Observability *o = kernel.obs()) {
        tracer_ = o->fullTracer();
        lifeTracer_ = o->tracer();
        anatomy_ = o->anatomy();
        obsMetrics_.bind(o->metricsRegistry(), path());
        obsMetrics_.counter("issued", &issued_);
        monitor_.registerMetrics(obsMetrics_);
    }
}

std::uint32_t
Port::headFlits() const
{
    if (fifo_.empty())
        panic("Port::headFlits on empty FIFO");
    return fifo_.front()->flits();
}

Addr
Port::headAddr() const
{
    if (fifo_.empty())
        panic("Port::headAddr on empty FIFO");
    return fifo_.front()->addr;
}

HmcPacketPtr
Port::popRequest()
{
    if (fifo_.empty())
        panic("Port::popRequest on empty FIFO");
    HmcPacketPtr pkt = fifo_.front();
    fifo_.pop_front();
    return pkt;
}

void
Port::pushRequest(const HmcPacketPtr &pkt)
{
    if (fifoFull())
        panic("Port::pushRequest: FIFO overflow");
    pkt->createdAt = now();
    pkt->port = id_;
    if (tracer_ && tracer_->wants(*pkt))
        tracer_->record(now(), *pkt, TraceStage::Inject, kTraceNoWhere,
                        id_);
    fifo_.push_back(pkt);
    issued_.inc();
}

void
Port::traceComplete(const HmcPacket &pkt) const
{
    if (anatomy_)
        anatomy_->onComplete(pkt);
    if (!lifeTracer_ || !lifeTracer_->wants(pkt))
        return;
    if (lifeTracer_->mode() == TraceMode::Summary)
        lifeTracer_->recordLifecycle(pkt, id_);
    else
        lifeTracer_->record(now(), pkt, TraceStage::Eject, kTraceNoWhere,
                            id_);
}

std::uint64_t
Port::transactionBytes(const HmcPacket &resp)
{
    // Request + response wire bytes, reconstructed from the response:
    // the pair (cmd, dataBytes) determines both packet sizes.
    const HmcCmd req_cmd = resp.cmd == HmcCmd::ReadResponse
        ? HmcCmd::Read
        : HmcCmd::Write;
    const std::uint32_t req_flits =
        HmcPacket::flitsFor(req_cmd, resp.dataBytes);
    return static_cast<std::uint64_t>(req_flits + resp.flits()) *
        kFlitBytes;
}

bool
Port::idle() const
{
    return fifo_.empty();
}

void
Port::reportOwnStats(std::map<std::string, double> &out) const
{
    out[statName("issued")] = static_cast<double>(issued_.value());
    out[statName("reads")] = static_cast<double>(monitor_.reads());
    out[statName("writes")] = static_cast<double>(monitor_.writes());
    out[statName("avg_read_latency_ns")] = monitor_.readLatencyNs().mean();
}

void
Port::resetOwnStats()
{
    issued_.reset();
    monitor_.reset();
}

}  // namespace hmcsim
