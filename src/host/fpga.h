/**
 * @file
 * The FPGA fabric: nine request ports and the host HMC controller,
 * ticking at 187.5 MHz.  Ports start as inactive GUPS-sourced
 * WorkloadPorts and are replaced in place when an experiment (or the
 * config-driven workload layer) configures them.
 */

#ifndef HMCSIM_HOST_FPGA_H_
#define HMCSIM_HOST_FPGA_H_

#include <memory>
#include <vector>

#include "host/hmc_host_controller.h"
#include "host/workload/workload_build.h"
#include "host/workload/workload_port.h"
#include "sim/clock.h"

namespace hmcsim {

class SelfProfiler;

class Fpga : public Component
{
  public:
    Fpga(Kernel &kernel, Component *parent, std::string name,
         const HostConfig &cfg, HostAttach attach);

    const HostConfig &config() const { return cfg_; }
    const ClockDomain &clock() const { return clock_; }

    Port &port(PortId p);
    std::uint32_t numPorts() const { return cfg_.numPorts; }

    /** Replace port @p p with a fully parameterized port (active). */
    WorkloadPort &configureWorkloadPort(PortId p,
                                        WorkloadPort::Params params);

    /** Replace port @p p per a config-level workload spec (active). */
    WorkloadPort &configureWorkload(PortId p, const WorkloadSpec &spec);

    /** Replace port @p p with a GUPS-firmware port (active). */
    WorkloadPort &configureGupsPort(PortId p, const GupsPortSpec &params);

    /** Replace port @p p with a stream-firmware port (active). */
    WorkloadPort &configureStreamPort(PortId p,
                                      const StreamPortSpec &params);

    /** Deactivate every port (they keep their workload). */
    void deactivateAllPorts();

    HmcHostController &controller() { return *ctrl_; }

    /** Begin ticking; idempotent. */
    void start();

    /** Stop ticking after the current cycle. */
    void stop() { running_ = false; }

    bool running() const { return running_; }

    /** True when every port reports idle. */
    bool allPortsIdle() const;

  private:
    HostConfig cfg_;
    HostAttach attach_;
    ClockDomain clock_;
    std::vector<std::unique_ptr<Port>> ports_;
    std::unique_ptr<HmcHostController> ctrl_;
    bool running_ = false;
    SelfProfiler *prof_ = nullptr;

    void tickAll();
    void rebindController();
    WorkloadPort::Params defaultPortParams(PortId p) const;
};

}  // namespace hmcsim

#endif  // HMCSIM_HOST_FPGA_H_
