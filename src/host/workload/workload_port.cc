#include "host/workload/workload_port.h"

#include <algorithm>

#include "common/log.h"
#include "common/units.h"
#include "host/workload/sources.h"

namespace hmcsim {

WorkloadPort::WorkloadPort(Kernel &kernel, Component *parent,
                           std::string name, PortId id,
                           const HostConfig &cfg, Params params)
    : Port(kernel, parent, std::move(name), id, cfg),
      source_(std::move(params.source)), kind_(params.kind),
      inject_(params.inject), drainRate_(params.drainFlitsPerCycle),
      window_(inject_.window != 0 ? inject_.window : cfg.tagsPerPort),
      tags_(closedLoop() ? window_ : 1),
      nsPerCycle_(1000.0 / cfg.fpgaMhz),
      bucketCap_(inject_.bucketCap > 0.0
                     ? inject_.bucketCap
                     : std::max(2.0 * inject_.burstiness, 16.0))
{
    if (!source_)
        fatal("WorkloadPort: no traffic source");
    inject_.validate();
    batchRemaining_ = inject_.batchSize;
    if (obsMetrics_.bound()) {
        obsMetrics_.gauge("outstanding_now", [this] {
            return static_cast<double>(outstanding_);
        });
    }
}

bool
WorkloadPort::ensureStaged()
{
    if (stagedValid_)
        return true;
    if (exhausted_)
        return false;
    WorkloadRequest req;
    if (!source_->next(now(), req)) {
        exhausted_ = true;
        return false;
    }
    staged_ = req;
    stagedValid_ = true;
    return true;
}

bool
WorkloadPort::tryIssueOne()
{
    // Gate order mirrors the seed ports exactly so the default specs
    // stay bit-identical: FIFO space, outstanding window, source
    // exhaustion, batch quantization, then RMW write halves ahead of
    // fresh requests.
    if (fifoFull())
        return false;
    if (closedLoop() && outstanding_ >= window_)
        return false;
    if (sourceDone() && pendingWrites_.empty())
        return false;
    if (closedLoop() && inject_.batchSize != 0 && batchRemaining_ == 0) {
        // Wait for the batch to fully complete before restarting.
        if (outstanding_ != 0)
            return false;
        batchRemaining_ = inject_.batchSize;
        batches_.inc();
    }

    if (!pendingWrites_.empty()) {
        const PendingWrite w = pendingWrites_.front();
        pendingWrites_.pop_front();
        HmcPacketPtr pkt = makeWriteRequest(w.addr, w.bytes, id_);
        if (closedLoop())
            pkt->tag = tags_.acquire();
        pushRequest(pkt);
        ++outstanding_;
        hasIssued_ = true;
        lastIssueAt_ = now();
        if (closedLoop() && inject_.batchSize != 0)
            --batchRemaining_;
        return true;
    }

    if (!ensureStaged())
        return false;
    // A request carrying a delay waits that long after the previous
    // issue (trace inter-arrival gaps, on/off burst boundaries).
    if (staged_.delayNs != 0 && hasIssued_ &&
        now() < lastIssueAt_ + staged_.delayNs * kNanosecond)
        return false;

    const bool is_write = kind_ == ReqKind::WriteOnly || staged_.isWrite;
    HmcPacketPtr pkt = is_write
        ? makeWriteRequest(staged_.addr, staged_.bytes, id_)
        : makeReadRequest(staged_.addr, staged_.bytes, id_);
    if (closedLoop())
        pkt->tag = tags_.acquire();
    pushRequest(pkt);
    ++outstanding_;
    hasIssued_ = true;
    lastIssueAt_ = now();
    if (closedLoop() && inject_.batchSize != 0)
        --batchRemaining_;
    stagedValid_ = false;
    return true;
}

void
WorkloadPort::tick()
{
    if (!active_)
        return;

    if (drainRate_ > 0) {
        // Drain responses through the port's AXI-Stream channel: the
        // budget accumulates drainRate_ flits per cycle so multi-flit
        // responses take multiple cycles, which is what throttles
        // large request sizes on the stream path (Fig. 7/8 slopes).
        drainBudget_ = std::min(drainBudget_ + drainRate_,
                                std::max(2 * drainRate_, 12u));
        while (!drainQ_.empty() &&
               drainQ_.front()->flits() <= drainBudget_) {
            const HmcPacketPtr pkt = drainQ_.front();
            drainQ_.pop_front();
            drainBudget_ -= pkt->flits();
            complete(pkt);
        }
    }

    if (openLoop()) {
        const double credit = inject_.ratePerNs * nsPerCycle_;
        // A finished finite source stops offering (otherwise the
        // offered-vs-accepted gap reads as saturation when it is just
        // end-of-trace).
        if (!sourceDone())
            offered_ += credit;
        tokens_ = std::min(tokens_ + credit, bucketCap_);
        if (!releasing_ && tokens_ >= inject_.burstiness)
            releasing_ = true;
        while (releasing_ && tokens_ >= 1.0 && tryIssueOne())
            tokens_ -= 1.0;
        if (tokens_ < 1.0)
            releasing_ = false;
    } else {
        // One new request per cycle at most (firmware behaviour).
        tryIssueOne();
    }
}

void
WorkloadPort::onResponse(const HmcPacketPtr &pkt)
{
    if (drainRate_ > 0)
        drainQ_.push_back(pkt);
    else
        complete(pkt);
}

void
WorkloadPort::complete(const HmcPacketPtr &pkt)
{
    pkt->hostArriveAt = now();
    traceComplete(*pkt);
    if (outstanding_ == 0)
        panic("WorkloadPort: response with nothing in flight");
    --outstanding_;
    if (closedLoop())
        tags_.release(pkt->tag);
    if (pkt->cmd == HmcCmd::ReadResponse) {
        monitor_.recordRead(pkt->createdAt, now(), transactionBytes(*pkt),
                            pkt.get());
        // Read-modify-write: queue the write half; it has priority
        // over new reads at the next issue opportunity.
        if (kind_ == ReqKind::ReadModifyWrite)
            pendingWrites_.push_back({pkt->addr, pkt->dataBytes});
    } else {
        monitor_.recordWrite(pkt->createdAt, now(),
                             transactionBytes(*pkt));
    }
}

bool
WorkloadPort::idle() const
{
    const bool done = sourceDone() && pendingWrites_.empty();
    return (done || !active_) && fifo_.empty() && outstanding_ == 0 &&
        drainQ_.empty() && pendingWrites_.empty();
}

void
WorkloadPort::reportOwnStats(std::map<std::string, double> &out) const
{
    Port::reportOwnStats(out);
    if (openLoop()) {
        out[statName("offered_requests")] = offered_;
        out[statName("accepted_requests")] =
            static_cast<double>(issuedRequests());
    }
}

void
WorkloadPort::resetOwnStats()
{
    Port::resetOwnStats();
    offered_ = 0.0;
}

// ----- legacy firmware spec mappings -----

WorkloadPort::Params
workloadFromGupsSpec(const GupsPortSpec &spec, const HostConfig &cfg)
{
    GupsSource::Params sp;
    sp.gen = spec.gen;
    WorkloadPort::Params p;
    p.source = std::make_unique<GupsSource>(sp);
    p.kind = spec.kind;
    p.inject.mode = InjectMode::ClosedLoop;
    p.inject.window = cfg.tagsPerPort;
    p.drainFlitsPerCycle = 0;
    return p;
}

WorkloadPort::Params
workloadFromStreamSpec(StreamPortSpec spec, const HostConfig &cfg)
{
    if (spec.trace.empty())
        fatal("StreamPort: empty trace");
    TraceSource::Params tp;
    tp.trace = std::move(spec.trace);
    tp.loop = spec.loop;
    WorkloadPort::Params p;
    p.source = std::make_unique<TraceSource>(std::move(tp));
    p.kind = ReqKind::ReadOnly;
    p.inject.mode = InjectMode::ClosedLoop;
    p.inject.window = spec.window != 0 ? spec.window : cfg.streamWindow;
    p.inject.batchSize = spec.batchSize;
    p.drainFlitsPerCycle = cfg.streamDrainFlitsPerCycle;
    return p;
}

}  // namespace hmcsim
