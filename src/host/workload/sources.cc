#include "host/workload/sources.h"

#include <algorithm>
#include <cmath>

#include "common/bitutil.h"
#include "common/log.h"

namespace hmcsim {

// ---------------------------------------------------------------- GUPS --

GupsSource::GupsSource(const Params &params)
    : params_(params), gen_(params.gen),
      writeRng_(mixSeeds(params.gen.seed, 0x77u))
{
    if (params_.writeFraction < 0.0 || params_.writeFraction > 1.0)
        fatal("GupsSource: write fraction outside [0, 1]");
}

bool
GupsSource::next(Tick, WorkloadRequest &out)
{
    out.addr = gen_.next();
    out.bytes = gen_.requestBytes();
    // Short-circuit keeps the draw sequence identical to the seed
    // GupsPort when the fraction is 0.
    out.isWrite =
        params_.writeFraction > 0.0 && writeRng_.nextBool(params_.writeFraction);
    out.delayNs = 0;
    return true;
}

// -------------------------------------------------------------- Stride --

StrideSource::StrideSource(const Params &params)
    : params_(params), rng_(mixSeeds(params.seed, 0x57u))
{
    if (!isPow2(params_.requestBytes))
        fatal("StrideSource: request size must be a power of two");
    if (!isPow2(params_.spanBytes))
        fatal("StrideSource: span must be a power of two");
    if (params_.strideBytes == 0)
        fatal("StrideSource: zero stride");
    if (params_.writeFraction < 0.0 || params_.writeFraction > 1.0)
        fatal("StrideSource: write fraction outside [0, 1]");
    alignMask_ = ~static_cast<Addr>(params_.requestBytes - 1);
}

bool
StrideSource::next(Tick, WorkloadRequest &out)
{
    if (params_.count != 0 && issued_ >= params_.count)
        return false;
    const std::uint64_t offset =
        (issued_ * params_.strideBytes) & (params_.spanBytes - 1);
    out.addr = (params_.base + offset) & alignMask_;
    out.bytes = params_.requestBytes;
    out.isWrite = params_.writeFraction > 0.0 &&
        rng_.nextBool(params_.writeFraction);
    out.delayNs = 0;
    ++issued_;
    return true;
}

// ---------------------------------------------------------------- Zipf --

void
ZipfSource::ZipfGen::init(std::uint64_t items, double skew)
{
    if (items == 0)
        panic("ZipfGen: zero items");
    n = items;
    theta = skew;
    if (theta == 0.0)
        return;  // uniform; draw() takes the fast path
    zetan = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i)
        zetan += 1.0 / std::pow(static_cast<double>(i), theta);
    rank1Threshold = 1.0 + std::pow(0.5, theta);
    alpha = 1.0 / (1.0 - theta);
    eta = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
        (1.0 - rank1Threshold / zetan);
}

std::uint64_t
ZipfSource::ZipfGen::draw(Rng &rng) const
{
    if (n == 1)
        return 0;  // no randomness consumed
    if (theta == 0.0)
        return rng.nextBelow(n);
    const double u = rng.nextDouble();
    const double uz = u * zetan;
    if (uz < 1.0)
        return 0;
    if (uz < rank1Threshold)
        return 1;
    const std::uint64_t rank = static_cast<std::uint64_t>(
        static_cast<double>(n) * std::pow(eta * u - eta + 1.0, alpha));
    return std::min(rank, n - 1);
}

ZipfSource::ZipfSource(const Params &params)
    : params_(params), rng_(mixSeeds(params.seed, 0x21u))
{
    if (params_.targets.empty())
        fatal("ZipfSource: no target patterns");
    if (params_.theta < 0.0 || params_.theta >= 1.0)
        fatal("ZipfSource: theta must be in [0, 1)");
    if (!isPow2(params_.requestBytes))
        fatal("ZipfSource: request size must be a power of two");
    if (!isPow2(params_.capacity))
        fatal("ZipfSource: capacity must be a power of two");
    if (params_.writeFraction < 0.0 || params_.writeFraction > 1.0)
        fatal("ZipfSource: write fraction outside [0, 1]");
    if (params_.hotItems > (1ull << 26))
        fatal("ZipfSource: hot item count too large (zeta precompute)");
    alignMask_ = ~static_cast<Addr>(params_.requestBytes - 1);
    targetGen_.init(params_.targets.size(), params_.theta);
    if (params_.hotItems > 0)
        itemGen_.init(params_.hotItems, params_.theta);
}

double
ZipfSource::targetProbability(std::size_t rank) const
{
    if (rank >= params_.targets.size())
        return 0.0;
    if (params_.theta == 0.0)
        return 1.0 / static_cast<double>(params_.targets.size());
    return 1.0 /
        (std::pow(static_cast<double>(rank + 1), params_.theta) *
         targetGen_.zetan);
}

bool
ZipfSource::next(Tick, WorkloadRequest &out)
{
    const std::uint64_t t = targetGen_.draw(rng_);
    const AddressPattern &target = params_.targets[t];
    std::uint64_t raw;
    if (params_.hotItems > 0) {
        // Hash the item rank so hot blocks spread over rows/banks
        // instead of sitting adjacent; the mapping is fixed per rank.
        std::uint64_t state =
            itemGen_.draw(rng_) ^ (params_.seed * 0x9E3779B97F4A7C15ull);
        raw = splitmix64(state);
    } else {
        raw = rng_.next();
    }
    out.addr = target.apply(raw & (params_.capacity - 1)) & alignMask_;
    out.bytes = params_.requestBytes;
    out.isWrite = params_.writeFraction > 0.0 &&
        rng_.nextBool(params_.writeFraction);
    out.delayNs = 0;
    return true;
}

// -------------------------------------------------------------- On/off --

OnOffSource::OnOffSource(Params params)
    : params_(std::move(params)), rng_(mixSeeds(params_.seed, 0xB0u))
{
    if (!params_.inner)
        fatal("OnOffSource: no inner source");
    if (params_.burstLen == 0)
        fatal("OnOffSource: zero burst length");
    remainingInBurst_ = drawBurstLen();
}

std::uint32_t
OnOffSource::drawBurstLen()
{
    if (!params_.randomize)
        return params_.burstLen;
    // Exponential around the mean, clamped to at least one request.
    const double d = -static_cast<double>(params_.burstLen) *
        std::log(1.0 - rng_.nextDouble());
    return std::max<std::uint32_t>(1, static_cast<std::uint32_t>(d + 0.5));
}

std::uint32_t
OnOffSource::drawGapNs()
{
    if (!params_.randomize)
        return params_.gapNs;
    const double d = -static_cast<double>(params_.gapNs) *
        std::log(1.0 - rng_.nextDouble());
    return static_cast<std::uint32_t>(d + 0.5);
}

bool
OnOffSource::next(Tick now, WorkloadRequest &out)
{
    if (!params_.inner->next(now, out))
        return false;
    if (remainingInBurst_ == 0) {
        // Burst boundary: stack the off-gap on top of whatever delay
        // the inner source already asked for.
        out.delayNs += drawGapNs();
        remainingInBurst_ = drawBurstLen();
    }
    --remainingInBurst_;
    return true;
}

// --------------------------------------------------------------- Trace --

TraceSource::TraceSource(Params params) : params_(std::move(params))
{
    if (params_.trace.empty())
        fatal("TraceSource: empty trace");
}

bool
TraceSource::next(Tick, WorkloadRequest &out)
{
    if (nextIdx_ >= params_.trace.size()) {
        if (!params_.loop)
            return false;
        nextIdx_ = 0;
    }
    const TraceRecord &rec = params_.trace[nextIdx_];
    ++nextIdx_;
    out.addr = rec.addr;
    out.bytes = rec.bytes;
    out.isWrite = rec.isWrite;
    out.delayNs = rec.delayNs;
    return true;
}

// ----------------------------------------------------------------- Mix --

MixSource::MixSource(Params params) : params_(std::move(params))
{
    if (params_.phases.empty())
        fatal("MixSource: no phases");
    for (const Phase &ph : params_.phases) {
        if (!ph.source)
            fatal("MixSource: null phase source");
        if (ph.duration == 0)
            fatal("MixSource: zero phase duration");
    }
}

void
MixSource::advancePhase(Tick now)
{
    ++idx_;
    if (idx_ >= params_.phases.size()) {
        if (!params_.loop) {
            done_ = true;
            idx_ = params_.phases.size() - 1;
            return;
        }
        idx_ = 0;
    }
    phaseEndAt_ = now + params_.phases[idx_].duration;
}

bool
MixSource::next(Tick now, WorkloadRequest &out)
{
    if (done_)
        return false;
    if (!started_) {
        started_ = true;
        phaseEndAt_ = now + params_.phases[idx_].duration;
    }
    while (now >= phaseEndAt_ && !done_)
        advancePhase(now);
    // Delegate; if the current phase's source is exhausted, skip ahead
    // (at most once around the phase list).
    for (std::size_t tries = 0; tries <= params_.phases.size(); ++tries) {
        if (done_)
            return false;
        if (params_.phases[idx_].source->next(now, out))
            return true;
        if (!params_.loop && idx_ + 1 >= params_.phases.size()) {
            done_ = true;
            return false;
        }
        advancePhase(now);
    }
    done_ = true;
    return false;
}

}  // namespace hmcsim
