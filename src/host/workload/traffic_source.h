/**
 * @file
 * TrafficSource: the "what to access" half of a host workload.
 *
 * A source produces a stream of request descriptors (address, size,
 * read/write, optional issue gap); it knows nothing about FIFOs, tags,
 * outstanding windows or injection rates -- that is the WorkloadPort's
 * "how to inject" half (host/workload/workload_port.h).  Separating
 * the two lets every access pattern run under every injection policy.
 */

#ifndef HMCSIM_HOST_WORKLOAD_TRAFFIC_SOURCE_H_
#define HMCSIM_HOST_WORKLOAD_TRAFFIC_SOURCE_H_

#include <cstdint>
#include <memory>

#include "common/types.h"

namespace hmcsim {

/** One request a TrafficSource wants issued. */
struct WorkloadRequest {
    Addr addr = 0;
    std::uint32_t bytes = 32;
    bool isWrite = false;
    /** Minimum gap (ns) after the previous issue before this request
     *  may go out (trace inter-arrival delays, on/off gaps). */
    std::uint32_t delayNs = 0;
};

/**
 * Pull-based request generator.  The port calls next() exactly once
 * per request it is about to issue (plus at most one staged request it
 * holds while an issue gate is closed), so RNG-backed sources draw in
 * issue order and stay deterministic.
 */
class TrafficSource
{
  public:
    virtual ~TrafficSource() = default;

    /**
     * Produce the next request.  @p now is the current simulated time
     * (phase-mixed sources switch on it).  Returns false once the
     * source is exhausted; exhaustion is permanent.
     */
    virtual bool next(Tick now, WorkloadRequest &out) = 0;

    /** Short identifier for logs and stats ("gups", "zipf", ...). */
    virtual const char *kind() const = 0;
};

using TrafficSourcePtr = std::unique_ptr<TrafficSource>;

}  // namespace hmcsim

#endif  // HMCSIM_HOST_WORKLOAD_TRAFFIC_SOURCE_H_
