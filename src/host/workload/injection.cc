#include "host/workload/injection.h"

#include "common/log.h"

namespace hmcsim {

void
InjectionConfig::validate() const
{
    if (burstiness < 1.0)
        fatal("injection: burstiness must be >= 1");
    if (bucketCap < 0.0)
        fatal("injection: negative bucket capacity");
    if (mode == InjectMode::OpenLoop) {
        if (ratePerNs <= 0.0)
            fatal("injection: open loop needs a positive rate");
        if (batchSize != 0)
            fatal("injection: batches are a closed-loop concept");
        if (bucketCap != 0.0 && bucketCap < burstiness)
            fatal("injection: bucket capacity below burstiness");
    }
}

InjectMode
injectModeFromString(const std::string &s)
{
    if (s == "closed")
        return InjectMode::ClosedLoop;
    if (s == "open")
        return InjectMode::OpenLoop;
    fatal("injection: unknown mode '" + s + "' (closed|open)");
}

const char *
toString(InjectMode mode)
{
    return mode == InjectMode::ClosedLoop ? "closed" : "open";
}

}  // namespace hmcsim
