/**
 * @file
 * WorkloadPort: the single FPGA request port, parameterized by a
 * TrafficSource (what to access) and an InjectionConfig (when to
 * inject).  It subsumes the seed's GupsPort (tag-limited generated
 * traffic, immediate response completion) and StreamPort (windowed
 * trace replay with a rate-limited response drain); the legacy
 * GupsPortSpec / StreamPortSpec mappings reproduce both firmware
 * behaviours bit-identically.
 */

#ifndef HMCSIM_HOST_WORKLOAD_WORKLOAD_PORT_H_
#define HMCSIM_HOST_WORKLOAD_WORKLOAD_PORT_H_

#include "host/addr_gen.h"
#include "host/port.h"
#include "host/tag_pool.h"
#include "host/trace.h"
#include "host/workload/injection.h"
#include "host/workload/traffic_source.h"

namespace hmcsim {

class WorkloadPort : public Port
{
  public:
    /** Move-only (owns the traffic source). */
    struct Params {
        TrafficSourcePtr source;
        ReqKind kind = ReqKind::ReadOnly;
        InjectionConfig inject;
        /**
         * Response drain rate in flits per FPGA cycle through the
         * port's AXI-Stream channel; 0 = responses complete the cycle
         * they arrive (the GUPS firmware path).
         */
        std::uint32_t drainFlitsPerCycle = 0;
    };

    WorkloadPort(Kernel &kernel, Component *parent, std::string name,
                 PortId id, const HostConfig &cfg, Params params);

    void tick() override;
    void onResponse(const HmcPacketPtr &pkt) override;
    bool idle() const override;

    const TrafficSource &source() const { return *source_; }
    const InjectionConfig &injection() const { return inject_; }
    bool openLoop() const { return inject_.mode == InjectMode::OpenLoop; }

    /** Outstanding-request bookkeeping (closed loop uses real tags). */
    const TagPool &tags() const { return tags_; }
    std::uint32_t inFlight() const { return outstanding_; }

    std::uint64_t batchesCompleted() const { return batches_.value(); }

    /** Open loop: requests offered by the rate controller over the
     *  stats window (accepted = issuedRequests()). */
    double offeredRequests() const { return offered_; }

  protected:
    void reportOwnStats(std::map<std::string, double> &out) const override;
    void resetOwnStats() override;

  private:
    struct PendingWrite {
        Addr addr;
        std::uint32_t bytes;
    };

    TrafficSourcePtr source_;
    ReqKind kind_;
    InjectionConfig inject_;
    std::uint32_t drainRate_;
    std::uint32_t window_;
    TagPool tags_;
    double nsPerCycle_;
    double bucketCap_;

    std::uint32_t outstanding_ = 0;
    std::uint32_t batchRemaining_ = 0;
    bool exhausted_ = false;
    bool stagedValid_ = false;
    WorkloadRequest staged_;
    bool hasIssued_ = false;
    Tick lastIssueAt_ = 0;
    std::deque<PendingWrite> pendingWrites_;
    std::deque<HmcPacketPtr> drainQ_;
    std::uint32_t drainBudget_ = 0;
    double tokens_ = 0.0;
    bool releasing_ = false;
    double offered_ = 0.0;
    Counter batches_;

    bool closedLoop() const
    {
        return inject_.mode == InjectMode::ClosedLoop;
    }
    bool sourceDone() const { return exhausted_ && !stagedValid_; }
    bool ensureStaged();
    bool tryIssueOne();
    void complete(const HmcPacketPtr &pkt);
};

// ----- legacy firmware specs (the seed's port parameterizations) -----

/** The vendor GUPS firmware: tag-limited generated traffic. */
struct GupsPortSpec {
    ReqKind kind = ReqKind::ReadOnly;
    GupsAddrGen::Params gen;
};

/** The multi-port stream firmware: windowed trace replay. */
struct StreamPortSpec {
    Trace trace;
    /** Loop the trace forever (continuous load). */
    bool loop = true;
    /** Max requests in flight; 0 uses the host config default. */
    std::uint32_t window = 0;
    /**
     * Batch mode: issue @p batchSize requests, wait for all
     * responses, repeat.  0 = continuous windowed issue.
     * This is the paper's "number of requests in a stream".
     */
    std::uint32_t batchSize = 0;
};

/** Map a legacy GUPS spec onto WorkloadPort parameters. */
WorkloadPort::Params workloadFromGupsSpec(const GupsPortSpec &spec,
                                          const HostConfig &cfg);

/** Map a legacy stream spec onto WorkloadPort parameters. */
WorkloadPort::Params workloadFromStreamSpec(StreamPortSpec spec,
                                            const HostConfig &cfg);

}  // namespace hmcsim

#endif  // HMCSIM_HOST_WORKLOAD_WORKLOAD_PORT_H_
