/**
 * @file
 * WorkloadSpec: a plain, copyable description of one port's workload,
 * parsed from / serialized to Config keys.  The key surface, relative
 * to a prefix ("host." for the shared defaults, "host.port<N>." for
 * per-port overrides):
 *
 *   <prefix>workload                 gups|stride|zipf|burst|trace|mix
 *   <prefix>workload.request_bytes   16|32|64|128|...
 *   <prefix>workload.kind            read|write|rmw
 *   <prefix>workload.write_fraction  probability of writes (0..1)
 *   <prefix>workload.vaults/.banks/.base_vault/.base_bank
 *                                    mask-confinement of the pattern
 *   <prefix>workload.seed            0 = derive from host.seed + port
 *                                    via the SplitMix64 seed mixer
 *   <prefix>workload.inject          closed|open
 *   <prefix>workload.window          closed loop: outstanding window
 *   <prefix>workload.batch           closed loop: batch size
 *   <prefix>workload.rate_per_ns     open loop: offered requests/ns
 *   <prefix>workload.burstiness      open loop: token clump size
 *   <prefix>workload.gups_mode       random|linear
 *   <prefix>workload.stride_bytes/.stride_span/.stride_base
 *   <prefix>workload.zipf_theta/.zipf_domain(vault|cube|block)/.zipf_hot_items
 *   <prefix>workload.burst_inner(gups|stride|zipf)/.burst_len/.burst_gap_ns/.burst_jitter
 *   <prefix>workload.trace_file      empty = synthetic random trace
 *   <prefix>workload.trace_length/.trace_loop
 *   <prefix>workload.mix_phases      e.g. "gups:20us,zipf:10us"
 *
 * Ports [0, host.workload_ports) are configured from the defaults at
 * System construction; any port with an explicit host.port<N>.workload
 * key is configured too.
 */

#ifndef HMCSIM_HOST_WORKLOAD_WORKLOAD_SPEC_H_
#define HMCSIM_HOST_WORKLOAD_WORKLOAD_SPEC_H_

#include <cstdint>
#include <string>

#include "common/config.h"
#include "common/types.h"
#include "host/addr_gen.h"

namespace hmcsim {

struct WorkloadSpec {
    std::string type = "gups";

    // ----- shared knobs -----
    std::uint32_t requestBytes = 32;
    ReqKind kind = ReqKind::ReadOnly;
    double writeFraction = 0.0;
    /** Mask-confinement of generated addresses (GupsSpec-style). */
    std::uint32_t patternVaults = 16;
    std::uint32_t patternBanks = 16;
    std::uint32_t baseVault = 0;
    std::uint32_t baseBank = 0;
    /** 0 = mixSeeds(host.seed, port). */
    std::uint64_t seed = 0;

    // ----- injection -----
    std::string inject = "closed";
    std::uint32_t window = 0;
    std::uint32_t batchSize = 0;
    double ratePerNs = 0.05;
    double burstiness = 1.0;

    // ----- gups -----
    std::string gupsMode = "random";

    // ----- stride -----
    std::uint64_t strideBytes = 128;
    std::uint64_t strideSpanBytes = 0;  ///< 0 = whole capacity
    std::uint64_t strideBase = 0;

    // ----- zipf -----
    double zipfTheta = 0.99;
    std::string zipfDomain = "vault";
    std::uint64_t zipfHotItems = 1024;

    // ----- burst (on/off wrapper) -----
    std::string burstInner = "gups";
    std::uint32_t burstLen = 64;
    std::uint32_t burstGapNs = 1000;
    bool burstJitter = false;

    // ----- trace -----
    std::string traceFile;
    std::uint64_t traceLength = 4096;
    bool traceLoop = true;

    // ----- mix -----
    std::string mixPhases = "gups:20us,stride:20us";

    void validate() const;

    /** Read <prefix>workload* keys over @p defaults. */
    static WorkloadSpec fromConfig(const Config &cfg,
                                   const std::string &prefix,
                                   const WorkloadSpec &defaults);

    /** Write the full spec under @p prefix. */
    void toConfig(Config &cfg, const std::string &prefix) const;
};

/** Parse a duration like "250ns", "20us", "1ms" (bare = ns) to ticks. */
Tick parseDurationTicks(const std::string &text);

ReqKind reqKindFromString(const std::string &s);
const char *toString(ReqKind kind);
AddrMode addrModeFromString(const std::string &s);
const char *toString(AddrMode mode);

}  // namespace hmcsim

#endif  // HMCSIM_HOST_WORKLOAD_WORKLOAD_SPEC_H_
