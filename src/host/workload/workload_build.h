/**
 * @file
 * Turn a WorkloadSpec (the config-level description) into live
 * WorkloadPort parameters: build the TrafficSource tree against the
 * system's address geometry and resolve the injection policy against
 * the host firmware defaults.
 */

#ifndef HMCSIM_HOST_WORKLOAD_WORKLOAD_BUILD_H_
#define HMCSIM_HOST_WORKLOAD_WORKLOAD_BUILD_H_

#include "hmc/address_map.h"
#include "host/workload/workload_port.h"
#include "host/workload/workload_spec.h"

namespace hmcsim {

struct HostConfig;

/**
 * Build the TrafficSource described by @p spec.  @p seed is the fully
 * resolved per-port seed (the builder derives decorrelated sub-seeds
 * for nested sources with mixSeeds()).
 */
TrafficSourcePtr buildTrafficSource(const WorkloadSpec &spec,
                                    const AddressMap &map,
                                    std::uint64_t seed);

/**
 * Resolve @p spec into full port parameters for @p port.  A zero
 * spec.seed derives the port seed as mixSeeds(host.seed, port).
 */
WorkloadPort::Params buildWorkloadParams(const WorkloadSpec &spec,
                                         const AddressMap &map,
                                         const HostConfig &host,
                                         PortId port);

}  // namespace hmcsim

#endif  // HMCSIM_HOST_WORKLOAD_WORKLOAD_BUILD_H_
