#include "host/workload/workload_build.h"

#include <utility>

#include "common/log.h"
#include "common/strutil.h"
#include "host/host_config.h"
#include "host/workload/sources.h"

namespace hmcsim {

namespace {

AddressPattern
confinement(const WorkloadSpec &spec, const AddressMap &map)
{
    return map.pattern(spec.patternVaults, spec.patternBanks,
                       spec.baseVault, spec.baseBank);
}

TrafficSourcePtr
buildLeaf(const WorkloadSpec &spec, const std::string &type,
          const AddressMap &map, std::uint64_t seed)
{
    if (type == "gups") {
        GupsSource::Params p;
        p.gen.mode = addrModeFromString(spec.gupsMode);
        p.gen.pattern = confinement(spec, map);
        p.gen.requestBytes = spec.requestBytes;
        p.gen.capacity = map.totalCapacity();
        p.gen.seed = seed;
        p.writeFraction = spec.writeFraction;
        return std::make_unique<GupsSource>(p);
    }
    if (type == "stride") {
        StrideSource::Params p;
        p.base = spec.strideBase;
        p.strideBytes = spec.strideBytes;
        p.requestBytes = spec.requestBytes;
        p.spanBytes = spec.strideSpanBytes != 0 ? spec.strideSpanBytes
                                                : map.totalCapacity();
        p.writeFraction = spec.writeFraction;
        p.seed = seed;
        return std::make_unique<StrideSource>(p);
    }
    if (type == "zipf") {
        ZipfSource::Params p;
        if (spec.zipfDomain == "vault") {
            const std::uint32_t vaults = 1u << map.vaultBits();
            for (VaultId v = 0; v < vaults; ++v)
                p.targets.push_back(map.vaultPattern(v));
        } else if (spec.zipfDomain == "cube") {
            for (CubeId c = 0; c < map.numCubes(); ++c)
                p.targets.push_back(map.cubePattern(c));
        } else {  // block: hot blocks inside the confinement pattern
            p.targets.push_back(confinement(spec, map));
            p.hotItems = spec.zipfHotItems;
        }
        p.theta = spec.zipfTheta;
        p.capacity = map.totalCapacity();
        p.requestBytes = spec.requestBytes;
        p.writeFraction = spec.writeFraction;
        p.seed = seed;
        return std::make_unique<ZipfSource>(p);
    }
    if (type == "trace") {
        TraceSource::Params p;
        if (!spec.traceFile.empty()) {
            p.trace = loadTraceFile(spec.traceFile);
        } else {
            Rng rng(seed);
            p.trace = makeRandomTrace(rng, confinement(spec, map),
                                      map.totalCapacity(),
                                      spec.traceLength, spec.requestBytes,
                                      spec.writeFraction);
        }
        p.loop = spec.traceLoop;
        return std::make_unique<TraceSource>(std::move(p));
    }
    fatal("workload: '" + type + "' cannot be nested here");
}

}  // namespace

TrafficSourcePtr
buildTrafficSource(const WorkloadSpec &spec, const AddressMap &map,
                   std::uint64_t seed)
{
    spec.validate();
    if (spec.type == "burst") {
        OnOffSource::Params p;
        p.inner = buildLeaf(spec, spec.burstInner, map,
                            mixSeeds(seed, 0x1001u));
        p.burstLen = spec.burstLen;
        p.gapNs = spec.burstGapNs;
        p.randomize = spec.burstJitter;
        p.seed = seed;
        return std::make_unique<OnOffSource>(std::move(p));
    }
    if (spec.type == "mix") {
        MixSource::Params p;
        const std::vector<std::string> phases = split(spec.mixPhases, ',');
        std::uint64_t i = 0;
        for (const std::string &raw : phases) {
            const std::string entry = trim(raw);
            if (entry.empty())
                continue;
            const std::size_t colon = entry.find(':');
            if (colon == std::string::npos)
                fatal("workload: mix phase '" + entry +
                      "' needs type:duration");
            MixSource::Phase ph;
            ph.source = buildLeaf(spec, trim(entry.substr(0, colon)), map,
                                  mixSeeds(seed, 0x2000u + i));
            ph.duration = parseDurationTicks(trim(entry.substr(colon + 1)));
            p.phases.push_back(std::move(ph));
            ++i;
        }
        if (p.phases.empty())
            fatal("workload: mix_phases parsed to nothing");
        p.loop = true;
        return std::make_unique<MixSource>(std::move(p));
    }
    return buildLeaf(spec, spec.type, map, seed);
}

WorkloadPort::Params
buildWorkloadParams(const WorkloadSpec &spec, const AddressMap &map,
                    const HostConfig &host, PortId port)
{
    spec.validate();
    const std::uint64_t seed =
        spec.seed != 0 ? spec.seed : mixSeeds(host.seed, port);
    WorkloadPort::Params p;
    p.source = buildTrafficSource(spec, map, seed);
    p.kind = spec.kind;
    p.inject.mode = injectModeFromString(spec.inject);
    p.inject.window = spec.window;
    p.inject.batchSize = spec.batchSize;
    p.inject.ratePerNs = spec.ratePerNs;
    p.inject.burstiness = spec.burstiness;
    // Trace replay keeps the stream firmware's response-path model;
    // generated traffic keeps the GUPS firmware's immediate drain.
    if (spec.type == "trace") {
        p.drainFlitsPerCycle = host.streamDrainFlitsPerCycle;
        if (p.inject.window == 0)
            p.inject.window = host.streamWindow;
    }
    return p;
}

}  // namespace hmcsim
