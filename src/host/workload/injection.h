/**
 * @file
 * Injection policy of a WorkloadPort: *when* requests enter the FIFO,
 * independent of *what* the TrafficSource generates.
 *
 * Closed loop reproduces the firmware behaviours the paper measures:
 * a bounded outstanding window (the GUPS tag pool / stream AXI
 * buffer), optionally quantized into batches (Fig. 7/8's "requests in
 * a stream").  Open loop injects at a configured offered rate
 * regardless of completions -- the classical way to measure a
 * latency-vs-offered-load curve -- with a token bucket whose
 * burstiness knob releases tokens in clumps.
 */

#ifndef HMCSIM_HOST_WORKLOAD_INJECTION_H_
#define HMCSIM_HOST_WORKLOAD_INJECTION_H_

#include <cstdint>
#include <string>

namespace hmcsim {

enum class InjectMode {
    /** Issue while outstanding < window (completions gate issue). */
    ClosedLoop,
    /** Issue at ratePerNs regardless of completions. */
    OpenLoop,
};

struct InjectionConfig {
    InjectMode mode = InjectMode::ClosedLoop;

    /** Closed loop: max outstanding requests; 0 = firmware default
     *  (the GUPS tag pool for generated traffic). */
    std::uint32_t window = 0;

    /** Closed loop: issue in batches of this many requests, waiting
     *  for the whole batch to complete before the next (0 = off). */
    std::uint32_t batchSize = 0;

    /** Open loop: mean offered rate in requests per nanosecond. */
    double ratePerNs = 0.05;

    /**
     * Open loop: tokens accumulated before the bucket starts
     * releasing.  1.0 injects as smoothly as the rate allows; larger
     * values clump arrivals into bursts of roughly this size.
     */
    double burstiness = 1.0;

    /** Open loop: token bucket capacity; 0 = auto
     *  (max(2*burstiness, 16)).  Arrivals beyond a full bucket are
     *  dropped, bounding the catch-up backlog after stalls. */
    double bucketCap = 0.0;

    void validate() const;
};

InjectMode injectModeFromString(const std::string &s);
const char *toString(InjectMode mode);

}  // namespace hmcsim

#endif  // HMCSIM_HOST_WORKLOAD_INJECTION_H_
