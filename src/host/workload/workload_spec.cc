#include "host/workload/workload_spec.h"

#include <cctype>
#include <cstdlib>

#include "common/log.h"

namespace hmcsim {

namespace {

bool
knownType(const std::string &t)
{
    return t == "gups" || t == "stride" || t == "zipf" || t == "burst" ||
        t == "trace" || t == "mix";
}

}  // namespace

void
WorkloadSpec::validate() const
{
    if (!knownType(type))
        fatal("workload: unknown type '" + type +
              "' (gups|stride|zipf|burst|trace|mix)");
    if (requestBytes == 0)
        fatal("workload: zero request size");
    if (writeFraction < 0.0 || writeFraction > 1.0)
        fatal("workload: write fraction outside [0, 1]");
    if (inject != "closed" && inject != "open")
        fatal("workload: unknown injection mode '" + inject +
              "' (closed|open)");
    if (inject == "open" && ratePerNs <= 0.0)
        fatal("workload: open loop needs a positive rate_per_ns");
    if (type == "zipf" && zipfDomain != "vault" && zipfDomain != "cube" &&
        zipfDomain != "block")
        fatal("workload: unknown zipf domain '" + zipfDomain +
              "' (vault|cube|block)");
    if (type == "zipf" && (zipfTheta < 0.0 || zipfTheta >= 1.0))
        fatal("workload: zipf_theta must be in [0, 1)");
    if (type == "burst" &&
        (burstInner == "burst" || burstInner == "mix" ||
         !knownType(burstInner)))
        fatal("workload: burst_inner must be gups|stride|zipf|trace");
    if (type == "mix" && mixPhases.empty())
        fatal("workload: mix needs mix_phases");
}

WorkloadSpec
WorkloadSpec::fromConfig(const Config &cfg, const std::string &prefix,
                         const WorkloadSpec &defaults)
{
    WorkloadSpec s = defaults;
    const std::string w = prefix + "workload";
    s.type = cfg.getString(w, s.type);
    const auto u32 = [&cfg](const std::string &key, std::uint32_t fb) {
        return static_cast<std::uint32_t>(cfg.getU64(key, fb));
    };
    s.requestBytes = u32(w + ".request_bytes", s.requestBytes);
    s.kind = reqKindFromString(
        cfg.getString(w + ".kind", toString(s.kind)));
    s.writeFraction = cfg.getDouble(w + ".write_fraction", s.writeFraction);
    s.patternVaults = u32(w + ".vaults", s.patternVaults);
    s.patternBanks = u32(w + ".banks", s.patternBanks);
    s.baseVault = u32(w + ".base_vault", s.baseVault);
    s.baseBank = u32(w + ".base_bank", s.baseBank);
    s.seed = cfg.getU64(w + ".seed", s.seed);

    s.inject = cfg.getString(w + ".inject", s.inject);
    s.window = u32(w + ".window", s.window);
    s.batchSize = u32(w + ".batch", s.batchSize);
    s.ratePerNs = cfg.getDouble(w + ".rate_per_ns", s.ratePerNs);
    s.burstiness = cfg.getDouble(w + ".burstiness", s.burstiness);

    s.gupsMode = cfg.getString(w + ".gups_mode", s.gupsMode);

    s.strideBytes = cfg.getU64(w + ".stride_bytes", s.strideBytes);
    s.strideSpanBytes = cfg.getU64(w + ".stride_span", s.strideSpanBytes);
    s.strideBase = cfg.getU64(w + ".stride_base", s.strideBase);

    s.zipfTheta = cfg.getDouble(w + ".zipf_theta", s.zipfTheta);
    s.zipfDomain = cfg.getString(w + ".zipf_domain", s.zipfDomain);
    s.zipfHotItems = cfg.getU64(w + ".zipf_hot_items", s.zipfHotItems);

    s.burstInner = cfg.getString(w + ".burst_inner", s.burstInner);
    s.burstLen = u32(w + ".burst_len", s.burstLen);
    s.burstGapNs = u32(w + ".burst_gap_ns", s.burstGapNs);
    s.burstJitter = cfg.getBool(w + ".burst_jitter", s.burstJitter);

    s.traceFile = cfg.getString(w + ".trace_file", s.traceFile);
    s.traceLength = cfg.getU64(w + ".trace_length", s.traceLength);
    s.traceLoop = cfg.getBool(w + ".trace_loop", s.traceLoop);

    s.mixPhases = cfg.getString(w + ".mix_phases", s.mixPhases);
    s.validate();
    return s;
}

void
WorkloadSpec::toConfig(Config &cfg, const std::string &prefix) const
{
    const std::string w = prefix + "workload";
    cfg.set(w, type);
    cfg.setU64(w + ".request_bytes", requestBytes);
    cfg.set(w + ".kind", toString(kind));
    cfg.setDouble(w + ".write_fraction", writeFraction);
    cfg.setU64(w + ".vaults", patternVaults);
    cfg.setU64(w + ".banks", patternBanks);
    cfg.setU64(w + ".base_vault", baseVault);
    cfg.setU64(w + ".base_bank", baseBank);
    cfg.setU64(w + ".seed", seed);
    cfg.set(w + ".inject", inject);
    cfg.setU64(w + ".window", window);
    cfg.setU64(w + ".batch", batchSize);
    cfg.setDouble(w + ".rate_per_ns", ratePerNs);
    cfg.setDouble(w + ".burstiness", burstiness);
    cfg.set(w + ".gups_mode", gupsMode);
    cfg.setU64(w + ".stride_bytes", strideBytes);
    cfg.setU64(w + ".stride_span", strideSpanBytes);
    cfg.setU64(w + ".stride_base", strideBase);
    cfg.setDouble(w + ".zipf_theta", zipfTheta);
    cfg.set(w + ".zipf_domain", zipfDomain);
    cfg.setU64(w + ".zipf_hot_items", zipfHotItems);
    cfg.set(w + ".burst_inner", burstInner);
    cfg.setU64(w + ".burst_len", burstLen);
    cfg.setU64(w + ".burst_gap_ns", burstGapNs);
    cfg.setBool(w + ".burst_jitter", burstJitter);
    cfg.set(w + ".trace_file", traceFile);
    cfg.setU64(w + ".trace_length", traceLength);
    cfg.setBool(w + ".trace_loop", traceLoop);
    cfg.set(w + ".mix_phases", mixPhases);
}

Tick
parseDurationTicks(const std::string &text)
{
    if (text.empty())
        fatal("duration: empty string");
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || value < 0.0)
        fatal("duration: malformed '" + text + "'");
    std::string unit(end);
    while (!unit.empty() && std::isspace(static_cast<unsigned char>(unit.front())))
        unit.erase(unit.begin());
    double scale;
    if (unit.empty() || unit == "ns")
        scale = static_cast<double>(kNanosecond);
    else if (unit == "us")
        scale = static_cast<double>(kMicrosecond);
    else if (unit == "ms")
        scale = static_cast<double>(kMillisecond);
    else if (unit == "s")
        scale = static_cast<double>(kSecond);
    else
        fatal("duration: unknown unit '" + unit + "' in '" + text + "'");
    return static_cast<Tick>(value * scale + 0.5);
}

ReqKind
reqKindFromString(const std::string &s)
{
    if (s == "read")
        return ReqKind::ReadOnly;
    if (s == "write")
        return ReqKind::WriteOnly;
    if (s == "rmw")
        return ReqKind::ReadModifyWrite;
    fatal("workload: unknown request kind '" + s + "' (read|write|rmw)");
}

const char *
toString(ReqKind kind)
{
    switch (kind) {
      case ReqKind::ReadOnly:
        return "read";
      case ReqKind::WriteOnly:
        return "write";
      case ReqKind::ReadModifyWrite:
        return "rmw";
    }
    return "read";
}

AddrMode
addrModeFromString(const std::string &s)
{
    if (s == "random")
        return AddrMode::Random;
    if (s == "linear")
        return AddrMode::Linear;
    fatal("workload: unknown gups mode '" + s + "' (random|linear)");
}

const char *
toString(AddrMode mode)
{
    return mode == AddrMode::Random ? "random" : "linear";
}

}  // namespace hmcsim
