/**
 * @file
 * The concrete TrafficSource catalogue:
 *
 *   GupsSource    vendor-firmware GUPS unit (random/linear, mask
 *                 confinement) -- wraps GupsAddrGen bit-identically
 *   StrideSource  fixed-stride walker over a span (STREAM-style)
 *   ZipfSource    Zipfian/hotspot traffic: skewed selection among
 *                 target patterns (vaults, cubes) and/or among hot
 *                 blocks inside one pattern
 *   OnOffSource   bursty decorator: passes an inner source through
 *                 and inserts off-gaps every burst
 *   TraceSource   trace replay (what StreamPort used to inline)
 *   MixSource     phase-mixed: a sequence of sources switched on
 *                 simulated-time boundaries
 */

#ifndef HMCSIM_HOST_WORKLOAD_SOURCES_H_
#define HMCSIM_HOST_WORKLOAD_SOURCES_H_

#include <vector>

#include "common/rng.h"
#include "host/addr_gen.h"
#include "host/trace.h"
#include "host/workload/traffic_source.h"

namespace hmcsim {

/** GUPS firmware address unit behind the TrafficSource interface. */
class GupsSource : public TrafficSource
{
  public:
    struct Params {
        GupsAddrGen::Params gen;
        /**
         * Probability a generated request is a write.  0 keeps the
         * vendor firmware's pure read stream and draws no extra
         * randomness (bit-identity with the seed GupsPort).
         */
        double writeFraction = 0.0;
    };

    explicit GupsSource(const Params &params);

    bool next(Tick now, WorkloadRequest &out) override;
    const char *kind() const override { return "gups"; }

  private:
    Params params_;
    GupsAddrGen gen_;
    Rng writeRng_;
};

/** Fixed-stride walker: base, base+stride, ... wrapping inside a span. */
class StrideSource : public TrafficSource
{
  public:
    struct Params {
        Addr base = 0;
        std::uint64_t strideBytes = 128;
        std::uint32_t requestBytes = 32;
        /** Wrap-around span; must be a power of two. */
        std::uint64_t spanBytes = 1ull << 30;
        /** Total requests to produce; 0 = endless. */
        std::uint64_t count = 0;
        double writeFraction = 0.0;
        std::uint64_t seed = 1;
    };

    explicit StrideSource(const Params &params);

    bool next(Tick now, WorkloadRequest &out) override;
    const char *kind() const override { return "stride"; }

  private:
    Params params_;
    Rng rng_;
    std::uint64_t issued_ = 0;
    Addr alignMask_;
};

/**
 * Zipfian / hotspot traffic in two independent levels:
 *
 *  1. target selection: a Zipf(theta) draw over `targets` picks an
 *     AddressPattern (index 0 is the hottest).  Building the target
 *     list from per-vault or per-cube patterns yields vault- and
 *     cube-skewed hotspots.
 *  2. intra-target addressing: uniform random inside the chosen
 *     pattern, or -- with hotItems > 0 -- a second Zipf draw over that
 *     many distinct blocks (hashed so hot blocks spread over banks).
 *
 * Uses the Gray et al. constant-time Zipf sampler (theta in [0, 1)).
 */
class ZipfSource : public TrafficSource
{
  public:
    struct Params {
        std::vector<AddressPattern> targets;
        double theta = 0.99;
        std::uint64_t hotItems = 0;
        std::uint64_t capacity = 4ull << 30;
        std::uint32_t requestBytes = 32;
        double writeFraction = 0.0;
        std::uint64_t seed = 1;
    };

    explicit ZipfSource(const Params &params);

    bool next(Tick now, WorkloadRequest &out) override;
    const char *kind() const override { return "zipf"; }

    /** Zipf probability of rank @p rank under this source's theta
     *  (targets level); exposed for empirical-skew tests. */
    double targetProbability(std::size_t rank) const;

  private:
    /** Gray et al. incremental Zipf sampler state for one level. */
    struct ZipfGen {
        std::uint64_t n = 1;
        double theta = 0.0;
        double zetan = 1.0;
        double alpha = 0.0;
        double eta = 0.0;
        /** Cached 1 + 0.5^theta (the rank-1 acceptance threshold). */
        double rank1Threshold = 2.0;

        void init(std::uint64_t items, double skew);
        std::uint64_t draw(Rng &rng) const;
    };

    Params params_;
    Rng rng_;
    ZipfGen targetGen_;
    ZipfGen itemGen_;
    Addr alignMask_;
};

/** Bursty on/off decorator: inserts an off-gap every burst. */
class OnOffSource : public TrafficSource
{
  public:
    struct Params {
        TrafficSourcePtr inner;
        /** Requests per on-burst (mean when randomized). */
        std::uint32_t burstLen = 64;
        /** Off gap between bursts in ns (mean when randomized). */
        std::uint32_t gapNs = 1000;
        /** Randomize burst length (geometric-ish) and gap
         *  (exponential) around the means. */
        bool randomize = false;
        std::uint64_t seed = 1;
    };

    explicit OnOffSource(Params params);

    bool next(Tick now, WorkloadRequest &out) override;
    const char *kind() const override { return "burst"; }

  private:
    Params params_;
    Rng rng_;
    std::uint32_t remainingInBurst_;

    std::uint32_t drawBurstLen();
    std::uint32_t drawGapNs();
};

/** Trace replay (text/binary traces or synthetic generators). */
class TraceSource : public TrafficSource
{
  public:
    struct Params {
        Trace trace;
        bool loop = true;
    };

    explicit TraceSource(Params params);

    bool next(Tick now, WorkloadRequest &out) override;
    const char *kind() const override { return "trace"; }

  private:
    Params params_;
    std::size_t nextIdx_ = 0;
};

/** Phase-mixed source: switch between sources on tick boundaries. */
class MixSource : public TrafficSource
{
  public:
    struct Phase {
        TrafficSourcePtr source;
        /** Simulated time this phase runs before switching. */
        Tick duration = 10 * kMicrosecond;
    };

    struct Params {
        std::vector<Phase> phases;
        /** Cycle back to phase 0 after the last phase. */
        bool loop = true;
    };

    explicit MixSource(Params params);

    bool next(Tick now, WorkloadRequest &out) override;
    const char *kind() const override { return "mix"; }

    std::size_t currentPhase() const { return idx_; }

  private:
    Params params_;
    std::size_t idx_ = 0;
    bool started_ = false;
    bool done_ = false;
    Tick phaseEndAt_ = 0;

    void advancePhase(Tick now);
};

}  // namespace hmcsim

#endif  // HMCSIM_HOST_WORKLOAD_SOURCES_H_
