/**
 * @file
 * Per-port tag pool.  The AC-510 firmware tracks outstanding requests
 * per port for retransmission, so each port can only keep a limited
 * number of requests in flight -- the effect the paper blames for the
 * low bandwidth utilization of small request sizes (Section IV-A).
 */

#ifndef HMCSIM_HOST_TAG_POOL_H_
#define HMCSIM_HOST_TAG_POOL_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace hmcsim {

class TagPool
{
  public:
    explicit TagPool(std::uint32_t capacity);

    std::uint32_t capacity() const { return capacity_; }
    std::uint32_t inUse() const { return inUse_; }
    std::uint32_t freeCount() const { return capacity_ - inUse_; }
    bool hasFree() const { return inUse_ < capacity_; }

    /** Acquire a tag; panics when empty (callers must check). */
    TagId acquire();

    /** Release a tag back; panics on double release. */
    void release(TagId tag);

    /** True if @p tag is currently held. */
    bool isAcquired(TagId tag) const;

    /** High-water mark of simultaneously held tags. */
    std::uint32_t peakInUse() const { return peak_; }

    void resetStats() { peak_ = inUse_; }

  private:
    std::uint32_t capacity_;
    std::uint32_t inUse_ = 0;
    std::uint32_t peak_ = 0;
    std::vector<TagId> freeList_;
    std::vector<bool> acquired_;
};

}  // namespace hmcsim

#endif  // HMCSIM_HOST_TAG_POOL_H_
