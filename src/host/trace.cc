#include "host/trace.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/log.h"
#include "common/strutil.h"

namespace hmcsim {

Trace
parseTraceText(const std::string &content)
{
    Trace out;
    std::istringstream iss(content);
    std::string line;
    int lineno = 0;
    while (std::getline(iss, line)) {
        ++lineno;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        const std::vector<std::string> tok = splitWhitespace(line);
        if (tok.empty())
            continue;
        if (tok.size() < 3 || tok.size() > 4)
            fatal("trace: malformed record at line " +
                  std::to_string(lineno));
        TraceRecord r;
        if (tok[0] == "R" || tok[0] == "r") {
            r.isWrite = false;
        } else if (tok[0] == "W" || tok[0] == "w") {
            r.isWrite = true;
        } else {
            fatal("trace: unknown op '" + tok[0] + "' at line " +
                  std::to_string(lineno));
        }
        std::uint64_t v = 0;
        if (!parseU64("0x" + tok[1], v) && !parseU64(tok[1], v))
            fatal("trace: bad address at line " + std::to_string(lineno));
        r.addr = v;
        if (!parseU64(tok[2], v))
            fatal("trace: bad size at line " + std::to_string(lineno));
        r.bytes = static_cast<std::uint32_t>(v);
        if (tok.size() == 4) {
            if (!parseU64(tok[3], v))
                fatal("trace: bad delay at line " + std::to_string(lineno));
            r.delayNs = static_cast<std::uint32_t>(v);
        }
        out.push_back(r);
    }
    return out;
}

std::string
traceToText(const Trace &trace)
{
    std::ostringstream oss;
    oss << "# hmcsim trace: op hex-addr bytes [delay-ns]\n";
    for (const TraceRecord &r : trace) {
        oss << (r.isWrite ? 'W' : 'R') << ' ' << std::hex << r.addr
            << std::dec << ' ' << r.bytes;
        if (r.delayNs)
            oss << ' ' << r.delayNs;
        oss << '\n';
    }
    return oss.str();
}

namespace {

constexpr char kMagic[4] = {'H', 'M', 'C', 'T'};

}  // namespace

void
saveTraceBinary(const std::string &path, const Trace &trace)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("trace: cannot open '" + path + "' for writing");
    out.write(kMagic, 4);
    const std::uint64_t n = trace.size();
    out.write(reinterpret_cast<const char *>(&n), sizeof(n));
    for (const TraceRecord &r : trace) {
        out.write(reinterpret_cast<const char *>(&r.addr), sizeof(r.addr));
        out.write(reinterpret_cast<const char *>(&r.bytes),
                  sizeof(r.bytes));
        const std::uint32_t w = r.isWrite ? 1 : 0;
        out.write(reinterpret_cast<const char *>(&w), sizeof(w));
        out.write(reinterpret_cast<const char *>(&r.delayNs),
                  sizeof(r.delayNs));
    }
    if (!out)
        fatal("trace: write to '" + path + "' failed");
}

void
saveTraceText(const std::string &path, const Trace &trace)
{
    std::ofstream out(path);
    if (!out)
        fatal("trace: cannot open '" + path + "' for writing");
    out << traceToText(trace);
    if (!out)
        fatal("trace: write to '" + path + "' failed");
}

Trace
loadTraceFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("trace: cannot open '" + path + "'");
    char magic[4] = {};
    in.read(magic, 4);
    if (in.gcount() == 4 && std::memcmp(magic, kMagic, 4) == 0) {
        std::uint64_t n = 0;
        in.read(reinterpret_cast<char *>(&n), sizeof(n));
        Trace out;
        out.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i) {
            TraceRecord r;
            std::uint32_t w = 0;
            in.read(reinterpret_cast<char *>(&r.addr), sizeof(r.addr));
            in.read(reinterpret_cast<char *>(&r.bytes), sizeof(r.bytes));
            in.read(reinterpret_cast<char *>(&w), sizeof(w));
            in.read(reinterpret_cast<char *>(&r.delayNs),
                    sizeof(r.delayNs));
            if (!in)
                fatal("trace: truncated binary trace '" + path + "'");
            r.isWrite = w != 0;
            out.push_back(r);
        }
        return out;
    }
    // Text: re-read from the start.
    in.clear();
    in.seekg(0);
    std::ostringstream oss;
    oss << in.rdbuf();
    return parseTraceText(oss.str());
}

Trace
makeStreamTrace(Addr base, std::size_t count, std::uint32_t bytes,
                std::uint32_t stride, bool writes)
{
    Trace out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        TraceRecord r;
        r.addr = base + static_cast<Addr>(i) * stride;
        r.bytes = bytes;
        r.isWrite = writes;
        out.push_back(r);
    }
    return out;
}

Trace
makeRandomTrace(Rng &rng, const AddressPattern &pattern,
                std::uint64_t capacity, std::size_t count,
                std::uint32_t bytes, double write_fraction)
{
    Trace out;
    out.reserve(count);
    const Addr align = ~static_cast<Addr>(bytes - 1);
    for (std::size_t i = 0; i < count; ++i) {
        TraceRecord r;
        r.addr = pattern.apply(rng.next() & (capacity - 1)) & align;
        r.bytes = bytes;
        r.isWrite = write_fraction > 0.0 && rng.nextBool(write_fraction);
        out.push_back(r);
    }
    return out;
}

Trace
makePointerChaseTrace(Rng &rng, Addr base, std::uint64_t span,
                      std::size_t count, std::uint32_t bytes)
{
    if (span < bytes)
        fatal("pointer chase: span smaller than one block");
    const std::uint64_t slots = span / bytes;
    // A proper pointer chase is a random cyclic permutation: every
    // slot is visited exactly once per lap, so there are no short
    // cycles.  Cap the in-memory permutation; beyond the cap, hop
    // within a window of that size (timing-equivalent).
    const std::uint64_t perm_size =
        std::min<std::uint64_t>(slots, 1u << 22);
    std::vector<std::uint32_t> perm(perm_size);
    for (std::uint64_t i = 0; i < perm_size; ++i)
        perm[i] = static_cast<std::uint32_t>(i);
    for (std::uint64_t i = perm_size - 1; i > 0; --i) {
        const std::uint64_t j = rng.nextBelow(i + 1);
        std::swap(perm[i], perm[j]);
    }
    Trace out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        TraceRecord r;
        r.addr = base + static_cast<Addr>(perm[i % perm_size]) * bytes;
        r.bytes = bytes;
        out.push_back(r);
    }
    return out;
}

}  // namespace hmcsim
