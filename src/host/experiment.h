/**
 * @file
 * Experiment harness: result structures and canned experiment runners
 * that the benchmark binaries share.  Each runner builds a fresh
 * System, configures ports per the spec, runs a warmup window, then
 * measures a steady-state window and returns paper-formula statistics.
 */

#ifndef HMCSIM_HOST_EXPERIMENT_H_
#define HMCSIM_HOST_EXPERIMENT_H_

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "host/addr_gen.h"
#include "host/workload/workload_spec.h"

namespace hmcsim {

class System;

/** Per-port slice of an experiment result. */
struct PortStats {
    /** Host fabric this port belongs to (0 in single-host systems). */
    HostId host = 0;
    PortId port = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t wireBytes = 0;
    double avgReadNs = 0.0;
    double minReadNs = 0.0;
    double maxReadNs = 0.0;
    double stddevReadNs = 0.0;
    /** This port's bandwidth share (paper formula), GB/s. */
    double bandwidthGBs = 0.0;
    /** Open-loop injection: requests the rate controller offered over
     *  the window (accepted = reads + writes); 0 for closed loop. */
    double offeredRequests = 0.0;
};

/** Per-host slice of a multi-host experiment result. */
struct HostStats {
    HostId host = 0;
    /** Chain entry cube this host's controller attaches at. */
    CubeId entryCube = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t wireBytes = 0;
    std::uint64_t requestsSent = 0;
    std::uint64_t responsesDelivered = 0;
    /** This host's bandwidth share (paper formula), GB/s. */
    double bandwidthGBs = 0.0;
    double avgReadNs = 0.0;
    /** Open-loop offered requests summed over this host's ports. */
    double offeredRequests = 0.0;
};

/** Per-cube slice of a multi-cube experiment result. */
struct CubeStats {
    CubeId cube = 0;
    std::uint64_t requestsServed = 0;
    /** Requests issued toward this cube, summed over all hosts. */
    std::uint64_t requestsSent = 0;
    /** Peak outstanding toward this cube, summed over the hosts'
     *  controllers.  Each controller tracks its own peak, so in
     *  multi-host runs this is an upper bound on the simultaneous
     *  peak (the per-host maxima need not coincide in time). */
    std::uint32_t peakOutstanding = 0;
    /** Pass-through forwards to reach this cube on the static route
     *  from HOST 0's entry; other hosts' distances differ in
     *  multi-host fabrics (ChainRouteTable::requestHops(c, h)). */
    std::uint32_t requestHops = 0;
    /** Non-minimal adaptive forwards this cube's switch committed. */
    std::uint64_t misroutes = 0;
    /** RX drains this cube's switch ended on head-of-line blocking. */
    std::uint64_t rxHolStalls = 0;
    double energyPj = 0.0;
    double maxTempC = 0.0;
};

struct ExperimentResult {
    Tick windowTicks = 0;
    /** Every active port of every host (PortStats::host tells whose). */
    std::vector<PortStats> ports;

    /** One entry per host controller (a single entry classically). */
    std::vector<HostStats> hosts;

    /** One entry per cube (a single entry without chaining). */
    std::vector<CubeStats> cubes;

    /** Mean pass-through hops per read (request + response legs). */
    double avgChainHops = 0.0;

    /** Per-read chain-hop distribution merged over all ports; entry i
     *  counts reads that took i hops (last entry saturates). */
    std::vector<std::uint64_t> chainHopCounts;

    /** Adaptive routing: non-preferred minimal choices (ring ties)
     *  across all switches. */
    std::uint64_t totalAdaptiveDeviations = 0;

    /** Adaptive routing: non-minimal forwards across all switches. */
    std::uint64_t totalChainMisroutes = 0;

    /** Head-of-line-blocked RX drains across all switches. */
    std::uint64_t totalRxHolStalls = 0;

    /** Pass-through flits forwarded by all switches over the window
     *  (the transit volume crossing the cube-to-cube fabric). */
    std::uint64_t totalChainTransitFlits = 0;

    /** Static bisection bandwidth of the chain fabric, GB/s (0 for
     *  the classic single-cube system). */
    double chainBisectionGBs = 0.0;

    /** Flits that crossed the fabric's bisection cut over the window,
     *  busier direction (see CubeNetwork::bisectionFlitsSent). */
    std::uint64_t chainBisectionFlits = 0;

    /** Transit bandwidth over the window, GB/s. */
    double chainTransitGBs() const;

    /** Bisection-cut traffic (busier direction) over the window,
     *  GB/s; divide by chainBisectionGBs for the utilization. */
    double chainBisectionTrafficGBs() const;

    std::uint64_t totalReads = 0;
    std::uint64_t totalWrites = 0;
    std::uint64_t totalWireBytes = 0;

    /** Open-loop offered requests across all ports (0 = closed loop). */
    double totalOfferedRequests = 0.0;

    /** Total request+response bytes over the window, GB/s (Eq. in
     *  Section III-B of the paper). */
    double bandwidthGBs = 0.0;

    double avgReadLatencyNs = 0.0;
    double minReadLatencyNs = 0.0;
    double maxReadLatencyNs = 0.0;
    double stddevReadLatencyNs = 0.0;

    /** 99th-percentile read latency from the per-port histograms;
     *  0 unless the run enabled latency histograms (see
     *  WorkloadRunSpec::latencyHistBins). */
    double p99ReadLatencyNs = 0.0;

    /** Merged read-latency accumulator for further analysis. */
    SampleStats mergedRead;

    // ----- power & thermal (zero when the power model is disabled) -----

    /** Total cube energy over the window (dynamic + static), pJ. */
    double energyPj = 0.0;

    /** Average cube power over the window, W. */
    double avgPowerW = 0.0;

    /** Hottest stack layer at the end of the window, Celsius. */
    double maxTempC = 0.0;

    /** Percentage of the window spent thermally throttled. */
    double throttlePct = 0.0;

    /** Accesses per second across all ports. */
    double accessesPerSec() const;

    /** Accepted request rate in requests/ns (open-loop comparisons). */
    double acceptedPerNs() const;

    /** Offered request rate in requests/ns (open loop only). */
    double offeredPerNs() const;
};

/** Collect a result from @p sys over a window that just ended. */
ExperimentResult collectResult(System &sys, Tick window_ticks);

// ----- GUPS experiments (Figs. 6, 13, 14) -----

struct GupsSpec {
    std::uint32_t activePorts = 9;
    std::uint32_t requestBytes = 32;
    /** Access-pattern confinement (power-of-two counts). */
    std::uint32_t numVaults = 16;
    std::uint32_t numBanks = 16;
    VaultId baseVault = 0;
    BankId baseBank = 0;
    ReqKind kind = ReqKind::ReadOnly;
    AddrMode mode = AddrMode::Random;
    /** Fraction of GUPS ports configured as write-only (0 or the
     *  read/write-mix ablation). */
    double writePortFraction = 0.0;
    Tick warmup = 20 * kMicrosecond;
    Tick window = 60 * kMicrosecond;
    std::uint64_t seed = 1;
};

struct SystemConfig;  // host/system.h

ExperimentResult runGups(const SystemConfig &cfg, const GupsSpec &spec);

// ----- stream experiments (Figs. 7-12) -----

/** Fig. 7/8: one port, batches of N reads into one vault's banks. */
struct StreamBatchSpec {
    std::uint32_t batchSize = 8;
    std::uint32_t requestBytes = 32;
    VaultId vault = 0;
    std::uint32_t numBanks = 16;
    std::size_t traceLength = 4096;
    Tick warmup = 20 * kMicrosecond;
    Tick window = 60 * kMicrosecond;
    std::uint64_t seed = 1;
};

ExperimentResult runStreamBatch(const SystemConfig &cfg,
                                const StreamBatchSpec &spec);

/** Figs. 9-12: one stream port per listed vault, continuous load. */
struct StreamVaultsSpec {
    std::vector<VaultId> vaults;
    std::uint32_t requestBytes = 32;
    std::size_t traceLength = 4096;
    /** Per-port in-flight window; 0 uses the host config default. */
    std::uint32_t inFlightWindow = 0;
    Tick warmup = 10 * kMicrosecond;
    Tick window = 30 * kMicrosecond;
    std::uint64_t seed = 1;
};

ExperimentResult runStreamVaults(const SystemConfig &cfg,
                                 const StreamVaultsSpec &spec);

// ----- pluggable workload experiments (bench/fig_workload_sweep) -----

/**
 * Run one WorkloadSpec on @p activePorts ports.  Per-port seeds are
 * derived from @p seed with the SplitMix64 mixer, so adjacent ports
 * draw decorrelated streams.
 */
struct WorkloadRunSpec {
    WorkloadSpec workload;
    std::uint32_t activePorts = 9;
    Tick warmup = 10 * kMicrosecond;
    Tick window = 30 * kMicrosecond;
    std::uint64_t seed = 1;

    /** When non-zero, enable a read-latency histogram on every active
     *  port so the result carries p99ReadLatencyNs.  Observation-only:
     *  recording samples does not perturb timing. */
    std::size_t latencyHistBins = 0;
    double latencyHistLoNs = 0.0;
    double latencyHistHiNs = 50000.0;
};

ExperimentResult runWorkload(const SystemConfig &cfg,
                             const WorkloadRunSpec &spec);

}  // namespace hmcsim

#endif  // HMCSIM_HOST_EXPERIMENT_H_
