/**
 * @file
 * Host-side (FPGA + software) configuration, modelling the AC-510
 * infrastructure: a 187.5 MHz fabric with nine ports, a vendor HMC
 * controller that issues one request per cycle per link and drains
 * response flits through a deserializer of limited width, per-port tag
 * pools, and the fixed FPGA/PCIe latency the paper measures at ~547 ns.
 */

#ifndef HMCSIM_HOST_HOST_CONFIG_H_
#define HMCSIM_HOST_HOST_CONFIG_H_

#include <cstdint>
#include <vector>

#include "common/config.h"
#include "common/types.h"
#include "host/workload/workload_spec.h"

namespace hmcsim {

/**
 * SplitMix stream offset decorrelating per-host seed derivations from
 * the per-port streams (which mix small port ids): host H>0 draws from
 * mixSeeds(seed, kHostSeedStream + H).
 */
constexpr std::uint64_t kHostSeedStream = 0x486F5374ull;  // "HoSt"

/** One config-driven port workload (resolved from host.port<N>.*). */
struct PortWorkload {
    PortId port = 0;
    WorkloadSpec spec;
};

struct HostConfig {
    /** FPGA fabric frequency (the AC-510 runs at 187.5 MHz). */
    double fpgaMhz = 187.5;

    /** Number of request ports (the firmware instantiates nine). */
    std::uint32_t numPorts = 9;

    /** Outstanding-request tags per port. */
    std::uint32_t tagsPerPort = 40;

    /** Write-request FIFO depth per port (requests). */
    std::uint32_t portFifoDepth = 16;

    /** Requests the controller can issue per cycle per link. */
    std::uint32_t requestsPerCyclePerLink = 1;

    /**
     * Response deserializer (shared across links): bounded both in
     * packets per FPGA cycle (tag lookup / reassembly rate) and in
     * flits per FPGA cycle (datapath width).  1 packet/cycle and
     * 7 flits/cycle reproduce the paper's per-size response ceilings
     * (~10 GB/s at 16 B rising to ~23 GB/s at 128 B reads).
     */
    std::uint32_t deserializerPacketsPerCycle = 1;
    std::uint32_t deserializerPacketBudgetCap = 4;
    std::uint32_t deserializerFlitsPerCycle = 7;
    std::uint32_t deserializerFlitBudgetCap = 28;

    /**
     * Constant added to every measured latency sample, standing in for
     * the FPGA controller / transceiver / PCIe / driver stages the
     * paper attributes ~547 ns to (we model ~90 ns of the round trip
     * explicitly).
     */
    double fixedLatencyNs = 600.0;

    /** In-flight window of a stream port (AXI-Stream buffer depth). */
    std::uint32_t streamWindow = 72;

    /** Stream-port response drain rate (flits per FPGA cycle). */
    std::uint32_t streamDrainFlitsPerCycle = 1;

    /** Base RNG seed for the per-port address generators; per-port
     *  seeds are derived with the SplitMix64 mixer (mixSeeds). */
    std::uint64_t seed = 12345;

    /**
     * Host controllers driving the cube network (host.num_hosts).
     * Each host replicates the full FPGA fabric -- numPorts ports, tag
     * pools, its own controller -- and attaches at its own chain entry
     * cube.  1 keeps the classic single-host system bit-identical.
     */
    std::uint32_t numHosts = 1;

    /**
     * Entry cube per host (host.host<H>.entry_cube), sized numHosts.
     * kEntryCubeAuto spreads unset hosts evenly around the topology:
     * host H enters at cube H * num_cubes / num_hosts.  Entry cubes
     * must be distinct; more than one host needs a daisy or ring
     * topology.  Empty means all-auto.
     */
    std::vector<CubeId> entryCubes;

    /**
     * Resolve entryCubes against a concrete cube count: substitute the
     * even spread for kEntryCubeAuto entries and validate bounds and
     * distinctness.  Returned vector is sized numHosts.
     */
    std::vector<CubeId> resolvedEntryCubes(std::uint32_t num_cubes) const;

    /**
     * Config-driven workloads: ports [0, workloadPorts) are configured
     * from `workload` at System construction; any port with an
     * explicit host.port<N>.workload key is configured too (override
     * wins).  0 with no per-port keys keeps the seed behaviour of
     * inactive default ports.
     */
    std::uint32_t workloadPorts = 0;

    /** Shared workload defaults (host.workload*). */
    WorkloadSpec workload;

    /** Fully resolved per-port workloads, sorted by port. */
    std::vector<PortWorkload> portWorkloads;

    void validate() const;

    static HostConfig fromConfig(const Config &cfg);
    void toConfig(Config &cfg) const;
};

}  // namespace hmcsim

#endif  // HMCSIM_HOST_HOST_CONFIG_H_
