#include "host/addr_gen.h"

#include "common/bitutil.h"
#include "common/log.h"

namespace hmcsim {

GupsAddrGen::GupsAddrGen(const Params &params)
    : params_(params), rng_(params.seed)
{
    if (!isPow2(params_.requestBytes))
        fatal("GupsAddrGen: request size must be a power of two");
    if (!isPow2(params_.capacity))
        fatal("GupsAddrGen: capacity must be a power of two");
    alignMask_ = ~static_cast<Addr>(params_.requestBytes - 1);
}

Addr
GupsAddrGen::next()
{
    Addr raw;
    if (params_.mode == AddrMode::Random) {
        raw = rng_.next() & (params_.capacity - 1);
    } else {
        raw = (linearCounter_ * params_.requestBytes) &
            (params_.capacity - 1);
        ++linearCounter_;
    }
    return params_.pattern.apply(raw) & alignMask_;
}

void
GupsAddrGen::reseed(std::uint64_t seed)
{
    rng_.seed(seed);
    linearCounter_ = 0;
}

}  // namespace hmcsim
