/**
 * @file
 * Per-port monitoring logic, mirroring the AC-510 firmware's monitors:
 * totals of read/write requests, aggregate/min/max read latency, and
 * the cumulative request+response byte count the paper's bandwidth
 * formula uses (Section III-B).
 *
 * A fixed base latency (default ~520 ns) is added to every sample to
 * stand in for the FPGA pipeline and PCIe/driver stages the paper
 * measured at ~547 ns but which are outside the cube model.
 */

#ifndef HMCSIM_HOST_MONITOR_H_
#define HMCSIM_HOST_MONITOR_H_

#include <memory>
#include <optional>

#include "common/histogram.h"
#include "common/stats.h"
#include "common/types.h"
#include "hmc/packet.h"
#include "obs/metrics.h"

namespace hmcsim {

class Monitor
{
  public:
    explicit Monitor(double base_latency_ns = 0.0);

    /**
     * Record a completed read (created/completed in ticks).  When the
     * response packet is supplied, the timestamps of the worst-latency
     * read are retained for diagnosis.
     */
    void recordRead(Tick created, Tick completed,
                    std::uint64_t wire_bytes,
                    const HmcPacket *pkt = nullptr);

    /** Record a completed write. */
    void recordWrite(Tick created, Tick completed,
                     std::uint64_t wire_bytes);

    /** Attach a latency histogram (ns axis) to read samples. */
    void enableHistogram(double lo_ns, double hi_ns, std::size_t bins);

    std::uint64_t reads() const { return reads_.value(); }
    std::uint64_t writes() const { return writes_.value(); }
    std::uint64_t accesses() const { return reads() + writes(); }

    /** Cumulative request+response bytes, including flit overhead. */
    std::uint64_t wireBytes() const { return wireBytes_.value(); }

    /** Read latency statistics in nanoseconds (base latency included). */
    const SampleStats &readLatencyNs() const { return readNs_; }
    const SampleStats &writeLatencyNs() const { return writeNs_; }

    /** Inter-cube pass-through hops per read (request + response
     *  direction); all-zero without chaining. */
    const SampleStats &chainHops() const { return hops_; }

    /** Distribution of per-read chain hop counts (always on; bin i =
     *  i hops, saturating at 15+).  Adaptive routing widens it when
     *  misroutes take the long way around a ring. */
    const Histogram &chainHopHistogram() const { return hopHist_; }

    const Histogram *histogram() const { return hist_.get(); }

    double baseLatencyNs() const { return baseNs_; }

    /** Timestamp snapshot of the slowest read seen (if packets were
     *  supplied); all-zero when none recorded. */
    const HmcPacket &worstRead() const { return worst_; }

    /** Register this monitor's stats into a bound MetricSet (the
     *  owning port calls this at construction). */
    void registerMetrics(MetricSet &set) const;

    void reset();

  private:
    double baseNs_;
    HmcPacket worst_;
    double worstNs_ = -1.0;
    Counter reads_;
    Counter writes_;
    Counter wireBytes_;
    SampleStats readNs_;
    SampleStats writeNs_;
    SampleStats hops_;
    Histogram hopHist_;
    std::unique_ptr<Histogram> hist_;

    double latencyNs(Tick created, Tick completed) const;
};

}  // namespace hmcsim

#endif  // HMCSIM_HOST_MONITOR_H_
