#include "host/fpga.h"

#include "common/log.h"

namespace hmcsim {

Fpga::Fpga(Kernel &kernel, Component *parent, std::string name,
           const HostConfig &cfg, HostAttach attach)
    : Component(kernel, parent, std::move(name)), cfg_(cfg),
      attach_(std::move(attach)),
      clock_(ClockDomain::fromMhz("fpga", cfg.fpgaMhz))
{
    cfg_.validate();
    ctrl_ = std::make_unique<HmcHostController>(kernel, this, "controller",
                                                cfg_, attach_);
    for (PortId p = 0; p < cfg_.numPorts; ++p) {
        ports_.push_back(std::make_unique<GupsPort>(
            kernel, this, "port" + std::to_string(p), p, cfg_,
            defaultGupsParams(p)));
    }
    rebindController();
}

GupsPort::Params
Fpga::defaultGupsParams(PortId p) const
{
    GupsPort::Params gp;
    gp.kind = ReqKind::ReadOnly;
    gp.gen.mode = AddrMode::Random;
    gp.gen.pattern = AddressPattern{attach_.totalCapacityBytes - 1, 0};
    gp.gen.requestBytes = 32;
    gp.gen.capacity = attach_.totalCapacityBytes;
    gp.gen.seed = cfg_.seed + 0x1000 + p;
    return gp;
}

Port &
Fpga::port(PortId p)
{
    if (p >= ports_.size())
        panic("Fpga::port: port out of range");
    return *ports_[p];
}

void
Fpga::rebindController()
{
    std::vector<Port *> table;
    table.reserve(ports_.size());
    for (auto &p : ports_)
        table.push_back(p.get());
    ctrl_->setPorts(std::move(table));
}

GupsPort &
Fpga::configureGupsPort(PortId p, const GupsPort::Params &params)
{
    if (p >= ports_.size())
        panic("Fpga::configureGupsPort: port out of range");
    auto port = std::make_unique<GupsPort>(
        kernel(), this, "port" + std::to_string(p), p, cfg_, params);
    GupsPort &ref = *port;
    ports_[p] = std::move(port);
    ref.setActive(true);
    rebindController();
    return ref;
}

StreamPort &
Fpga::configureStreamPort(PortId p, const StreamPort::Params &params)
{
    if (p >= ports_.size())
        panic("Fpga::configureStreamPort: port out of range");
    auto port = std::make_unique<StreamPort>(
        kernel(), this, "port" + std::to_string(p), p, cfg_, params);
    StreamPort &ref = *port;
    ports_[p] = std::move(port);
    ref.setActive(true);
    rebindController();
    return ref;
}

void
Fpga::deactivateAllPorts()
{
    for (auto &p : ports_)
        p->setActive(false);
}

bool
Fpga::allPortsIdle() const
{
    for (const auto &p : ports_) {
        if (!p->idle())
            return false;
    }
    return true;
}

void
Fpga::start()
{
    if (running_)
        return;
    running_ = true;
    const Tick first = clock_.nextEdgeAfter(now());
    kernel().scheduleAt(first, [this] { tickAll(); });
}

void
Fpga::tickAll()
{
    if (!running_)
        return;
    for (auto &p : ports_)
        p->tick();
    ctrl_->tick();
    kernel().scheduleIn(clock_.period(), [this] { tickAll(); });
}

}  // namespace hmcsim
