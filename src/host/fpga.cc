#include "host/fpga.h"

#include "common/log.h"
#include "obs/observability.h"
#include "sim/kernel.h"

namespace hmcsim {

Fpga::Fpga(Kernel &kernel, Component *parent, std::string name,
           const HostConfig &cfg, HostAttach attach)
    : Component(kernel, parent, std::move(name)), cfg_(cfg),
      attach_(std::move(attach)),
      clock_(ClockDomain::fromMhz("fpga", cfg.fpgaMhz))
{
    cfg_.validate();
    if (Observability *o = kernel.obs())
        prof_ = o->profiler();
    ctrl_ = std::make_unique<HmcHostController>(kernel, this, "controller",
                                                cfg_, attach_);
    for (PortId p = 0; p < cfg_.numPorts; ++p) {
        ports_.push_back(std::make_unique<WorkloadPort>(
            kernel, this, "port" + std::to_string(p), p, cfg_,
            defaultPortParams(p)));
    }
    rebindController();
}

WorkloadPort::Params
Fpga::defaultPortParams(PortId p) const
{
    GupsPortSpec spec;
    spec.kind = ReqKind::ReadOnly;
    spec.gen.mode = AddrMode::Random;
    spec.gen.pattern = AddressPattern{attach_.totalCapacityBytes - 1, 0};
    spec.gen.requestBytes = 32;
    spec.gen.capacity = attach_.totalCapacityBytes;
    spec.gen.seed = mixSeeds(cfg_.seed, p);
    return workloadFromGupsSpec(spec, cfg_);
}

Port &
Fpga::port(PortId p)
{
    if (p >= ports_.size())
        panic("Fpga::port: port out of range");
    return *ports_[p];
}

void
Fpga::rebindController()
{
    std::vector<Port *> table;
    table.reserve(ports_.size());
    for (auto &p : ports_)
        table.push_back(p.get());
    ctrl_->setPorts(std::move(table));
}

WorkloadPort &
Fpga::configureWorkloadPort(PortId p, WorkloadPort::Params params)
{
    if (p >= ports_.size())
        panic("Fpga::configureWorkloadPort: port out of range");
    auto port = std::make_unique<WorkloadPort>(
        kernel(), this, "port" + std::to_string(p), p, cfg_,
        std::move(params));
    WorkloadPort &ref = *port;
    ports_[p] = std::move(port);
    ref.setActive(true);
    rebindController();
    return ref;
}

WorkloadPort &
Fpga::configureWorkload(PortId p, const WorkloadSpec &spec)
{
    return configureWorkloadPort(
        p, buildWorkloadParams(spec, *attach_.map, cfg_, p));
}

WorkloadPort &
Fpga::configureGupsPort(PortId p, const GupsPortSpec &params)
{
    return configureWorkloadPort(p, workloadFromGupsSpec(params, cfg_));
}

WorkloadPort &
Fpga::configureStreamPort(PortId p, const StreamPortSpec &params)
{
    return configureWorkloadPort(p, workloadFromStreamSpec(params, cfg_));
}

void
Fpga::deactivateAllPorts()
{
    for (auto &p : ports_)
        p->setActive(false);
}

bool
Fpga::allPortsIdle() const
{
    for (const auto &p : ports_) {
        if (!p->idle())
            return false;
    }
    return true;
}

void
Fpga::start()
{
    if (running_)
        return;
    running_ = true;
    const Tick first = clock_.nextEdgeAfter(now());
    kernel().scheduleAt(first, [this] { tickAll(); });
}

void
Fpga::tickAll()
{
    if (!running_)
        return;
    ProfileScope ps(prof_, "host.tick");
    for (auto &p : ports_)
        p->tick();
    ctrl_->tick();
    kernel().scheduleIn(clock_.period(), [this] { tickAll(); });
}

}  // namespace hmcsim
