/**
 * @file
 * GUPS-style address generation unit (one per FPGA port).
 *
 * Matches the vendor firmware the paper describes: random or linear
 * addressing, confined to a part of the cube by a mask/anti-mask pair
 * (AddressPattern), with read-only / write-only / read-modify-write
 * request kinds.
 */

#ifndef HMCSIM_HOST_ADDR_GEN_H_
#define HMCSIM_HOST_ADDR_GEN_H_

#include <cstdint>

#include "common/rng.h"
#include "common/types.h"
#include "hmc/address_map.h"

namespace hmcsim {

/** Addressing mode of a GUPS port. */
enum class AddrMode {
    Random,
    Linear,
};

/** Request kind issued by a GUPS port. */
enum class ReqKind {
    ReadOnly,
    WriteOnly,
    ReadModifyWrite,
};

class GupsAddrGen
{
  public:
    struct Params {
        AddrMode mode = AddrMode::Random;
        AddressPattern pattern;         ///< mask/anti-mask confinement
        std::uint32_t requestBytes = 32;
        std::uint64_t capacity = 4ull << 30;
        std::uint64_t seed = 1;
    };

    explicit GupsAddrGen(const Params &params);

    /** Next request address, aligned to the request size. */
    Addr next();

    std::uint32_t requestBytes() const { return params_.requestBytes; }

    /** Re-seed (used to decorrelate ports). */
    void reseed(std::uint64_t seed);

  private:
    Params params_;
    Rng rng_;
    std::uint64_t linearCounter_ = 0;
    Addr alignMask_;
};

}  // namespace hmcsim

#endif  // HMCSIM_HOST_ADDR_GEN_H_
