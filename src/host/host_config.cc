#include "host/host_config.h"

#include "common/log.h"

namespace hmcsim {

void
HostConfig::validate() const
{
    if (fpgaMhz <= 0.0)
        fatal("host: non-positive FPGA frequency");
    if (numPorts == 0)
        fatal("host: need at least one port");
    if (tagsPerPort == 0)
        fatal("host: need at least one tag per port");
    if (portFifoDepth == 0)
        fatal("host: need a request FIFO");
    if (requestsPerCyclePerLink == 0)
        fatal("host: controller must issue at least one request/cycle");
    if (deserializerFlitsPerCycle == 0 || deserializerPacketsPerCycle == 0)
        fatal("host: deserializer throughput must be nonzero");
    if (deserializerFlitBudgetCap < 16)
        fatal("host: deserializer flit budget cap must cover a max-size "
              "packet (16 flits)");
    if (deserializerPacketBudgetCap == 0)
        fatal("host: deserializer packet budget cap must be nonzero");
    if (streamWindow == 0 || streamDrainFlitsPerCycle == 0)
        fatal("host: stream window and drain rate must be nonzero");
    if (fixedLatencyNs < 0.0)
        fatal("host: negative fixed latency");
    if (workloadPorts > numPorts)
        fatal("host: more workload ports than ports");
    if (numHosts == 0)
        fatal("host: need at least one host controller");
    if (!entryCubes.empty() && entryCubes.size() != numHosts)
        fatal("host: entry cube list must match num_hosts");
    workload.validate();
    for (const PortWorkload &pw : portWorkloads) {
        if (pw.port >= numPorts)
            fatal("host: workload port out of range");
        pw.spec.validate();
    }
}

std::vector<CubeId>
HostConfig::resolvedEntryCubes(std::uint32_t num_cubes) const
{
    std::vector<CubeId> entries =
        entryCubes.empty() ? std::vector<CubeId>(numHosts, kEntryCubeAuto)
                           : entryCubes;
    for (HostId h = 0; h < entries.size(); ++h) {
        if (entries[h] == kEntryCubeAuto)
            entries[h] = static_cast<CubeId>(
                (static_cast<std::uint64_t>(h) * num_cubes) / numHosts);
        if (entries[h] >= num_cubes)
            fatal("host: host" + std::to_string(h) + " entry cube " +
                  std::to_string(entries[h]) + " beyond hmc.num_cubes");
    }
    for (HostId h = 0; h < entries.size(); ++h) {
        for (HostId g = h + 1; g < entries.size(); ++g) {
            if (entries[h] == entries[g])
                fatal("host: hosts " + std::to_string(h) + " and " +
                      std::to_string(g) + " share entry cube " +
                      std::to_string(entries[h]));
        }
    }
    return entries;
}

HostConfig
HostConfig::fromConfig(const Config &cfg)
{
    HostConfig c;
    c.fpgaMhz = cfg.getDouble("host.fpga_mhz", c.fpgaMhz);
    c.numPorts =
        static_cast<std::uint32_t>(cfg.getU64("host.num_ports",
                                              c.numPorts));
    c.tagsPerPort = static_cast<std::uint32_t>(
        cfg.getU64("host.tags_per_port", c.tagsPerPort));
    c.portFifoDepth = static_cast<std::uint32_t>(
        cfg.getU64("host.port_fifo_depth", c.portFifoDepth));
    c.requestsPerCyclePerLink = static_cast<std::uint32_t>(
        cfg.getU64("host.requests_per_cycle_per_link",
                   c.requestsPerCyclePerLink));
    c.deserializerPacketsPerCycle = static_cast<std::uint32_t>(
        cfg.getU64("host.deserializer_packets_per_cycle",
                   c.deserializerPacketsPerCycle));
    c.deserializerPacketBudgetCap = static_cast<std::uint32_t>(
        cfg.getU64("host.deserializer_packet_budget_cap",
                   c.deserializerPacketBudgetCap));
    c.deserializerFlitsPerCycle = static_cast<std::uint32_t>(
        cfg.getU64("host.deserializer_flits_per_cycle",
                   c.deserializerFlitsPerCycle));
    c.deserializerFlitBudgetCap = static_cast<std::uint32_t>(
        cfg.getU64("host.deserializer_flit_budget_cap",
                   c.deserializerFlitBudgetCap));
    c.fixedLatencyNs = cfg.getDouble("host.fixed_latency_ns",
                                     c.fixedLatencyNs);
    c.streamWindow = static_cast<std::uint32_t>(
        cfg.getU64("host.stream_window", c.streamWindow));
    c.streamDrainFlitsPerCycle = static_cast<std::uint32_t>(
        cfg.getU64("host.stream_drain_flits_per_cycle",
                   c.streamDrainFlitsPerCycle));
    c.seed = cfg.getU64("host.seed", c.seed);
    c.numHosts = static_cast<std::uint32_t>(
        cfg.getU64("host.num_hosts", c.numHosts));
    bool any_entry = false;
    std::vector<CubeId> entries;
    for (HostId h = 0; h < c.numHosts; ++h) {
        const std::string key =
            "host.host" + std::to_string(h) + ".entry_cube";
        entries.push_back(static_cast<CubeId>(
            cfg.getU64(key, kEntryCubeAuto)));
        any_entry = any_entry || cfg.has(key);
    }
    if (any_entry)
        c.entryCubes = std::move(entries);
    // Mirror the per-port workload validation: a pin for a host that
    // does not exist (e.g. 1-indexed host ids) must not be dropped
    // silently.
    for (HostId h = c.numHosts; h < c.numHosts + 8; ++h) {
        const std::string key =
            "host.host" + std::to_string(h) + ".entry_cube";
        if (cfg.has(key))
            fatal("host: " + key + " pins host " + std::to_string(h) +
                  " but host.num_hosts is " +
                  std::to_string(c.numHosts));
    }
    c.workloadPorts = static_cast<std::uint32_t>(
        cfg.getU64("host.workload_ports", c.workloadPorts));
    c.workload = WorkloadSpec::fromConfig(cfg, "host.", c.workload);
    for (PortId p = 0; p < c.numPorts; ++p) {
        const std::string prefix = "host.port" + std::to_string(p) + ".";
        if (p < c.workloadPorts || cfg.has(prefix + "workload")) {
            c.portWorkloads.push_back(
                {p, WorkloadSpec::fromConfig(cfg, prefix, c.workload)});
        }
    }
    c.validate();
    return c;
}

void
HostConfig::toConfig(Config &cfg) const
{
    cfg.setDouble("host.fpga_mhz", fpgaMhz);
    cfg.setU64("host.num_ports", numPorts);
    cfg.setU64("host.tags_per_port", tagsPerPort);
    cfg.setU64("host.port_fifo_depth", portFifoDepth);
    cfg.setU64("host.requests_per_cycle_per_link", requestsPerCyclePerLink);
    cfg.setU64("host.deserializer_packets_per_cycle",
               deserializerPacketsPerCycle);
    cfg.setU64("host.deserializer_packet_budget_cap",
               deserializerPacketBudgetCap);
    cfg.setU64("host.deserializer_flits_per_cycle",
               deserializerFlitsPerCycle);
    cfg.setU64("host.deserializer_flit_budget_cap",
               deserializerFlitBudgetCap);
    cfg.setDouble("host.fixed_latency_ns", fixedLatencyNs);
    cfg.setU64("host.stream_window", streamWindow);
    cfg.setU64("host.stream_drain_flits_per_cycle",
               streamDrainFlitsPerCycle);
    cfg.setU64("host.seed", seed);
    cfg.setU64("host.num_hosts", numHosts);
    for (HostId h = 0; h < entryCubes.size(); ++h) {
        if (entryCubes[h] != kEntryCubeAuto)
            cfg.setU64("host.host" + std::to_string(h) + ".entry_cube",
                       entryCubes[h]);
    }
    cfg.setU64("host.workload_ports", workloadPorts);
    workload.toConfig(cfg, "host.");
    for (const PortWorkload &pw : portWorkloads) {
        pw.spec.toConfig(cfg,
                         "host.port" + std::to_string(pw.port) + ".");
    }
}

}  // namespace hmcsim
