#include "host/host_config.h"

#include "common/log.h"

namespace hmcsim {

void
HostConfig::validate() const
{
    if (fpgaMhz <= 0.0)
        fatal("host: non-positive FPGA frequency");
    if (numPorts == 0)
        fatal("host: need at least one port");
    if (tagsPerPort == 0)
        fatal("host: need at least one tag per port");
    if (portFifoDepth == 0)
        fatal("host: need a request FIFO");
    if (requestsPerCyclePerLink == 0)
        fatal("host: controller must issue at least one request/cycle");
    if (deserializerFlitsPerCycle == 0 || deserializerPacketsPerCycle == 0)
        fatal("host: deserializer throughput must be nonzero");
    if (deserializerFlitBudgetCap < 16)
        fatal("host: deserializer flit budget cap must cover a max-size "
              "packet (16 flits)");
    if (deserializerPacketBudgetCap == 0)
        fatal("host: deserializer packet budget cap must be nonzero");
    if (streamWindow == 0 || streamDrainFlitsPerCycle == 0)
        fatal("host: stream window and drain rate must be nonzero");
    if (fixedLatencyNs < 0.0)
        fatal("host: negative fixed latency");
    if (workloadPorts > numPorts)
        fatal("host: more workload ports than ports");
    workload.validate();
    for (const PortWorkload &pw : portWorkloads) {
        if (pw.port >= numPorts)
            fatal("host: workload port out of range");
        pw.spec.validate();
    }
}

HostConfig
HostConfig::fromConfig(const Config &cfg)
{
    HostConfig c;
    c.fpgaMhz = cfg.getDouble("host.fpga_mhz", c.fpgaMhz);
    c.numPorts =
        static_cast<std::uint32_t>(cfg.getU64("host.num_ports",
                                              c.numPorts));
    c.tagsPerPort = static_cast<std::uint32_t>(
        cfg.getU64("host.tags_per_port", c.tagsPerPort));
    c.portFifoDepth = static_cast<std::uint32_t>(
        cfg.getU64("host.port_fifo_depth", c.portFifoDepth));
    c.requestsPerCyclePerLink = static_cast<std::uint32_t>(
        cfg.getU64("host.requests_per_cycle_per_link",
                   c.requestsPerCyclePerLink));
    c.deserializerPacketsPerCycle = static_cast<std::uint32_t>(
        cfg.getU64("host.deserializer_packets_per_cycle",
                   c.deserializerPacketsPerCycle));
    c.deserializerPacketBudgetCap = static_cast<std::uint32_t>(
        cfg.getU64("host.deserializer_packet_budget_cap",
                   c.deserializerPacketBudgetCap));
    c.deserializerFlitsPerCycle = static_cast<std::uint32_t>(
        cfg.getU64("host.deserializer_flits_per_cycle",
                   c.deserializerFlitsPerCycle));
    c.deserializerFlitBudgetCap = static_cast<std::uint32_t>(
        cfg.getU64("host.deserializer_flit_budget_cap",
                   c.deserializerFlitBudgetCap));
    c.fixedLatencyNs = cfg.getDouble("host.fixed_latency_ns",
                                     c.fixedLatencyNs);
    c.streamWindow = static_cast<std::uint32_t>(
        cfg.getU64("host.stream_window", c.streamWindow));
    c.streamDrainFlitsPerCycle = static_cast<std::uint32_t>(
        cfg.getU64("host.stream_drain_flits_per_cycle",
                   c.streamDrainFlitsPerCycle));
    c.seed = cfg.getU64("host.seed", c.seed);
    c.workloadPorts = static_cast<std::uint32_t>(
        cfg.getU64("host.workload_ports", c.workloadPorts));
    c.workload = WorkloadSpec::fromConfig(cfg, "host.", c.workload);
    for (PortId p = 0; p < c.numPorts; ++p) {
        const std::string prefix = "host.port" + std::to_string(p) + ".";
        if (p < c.workloadPorts || cfg.has(prefix + "workload")) {
            c.portWorkloads.push_back(
                {p, WorkloadSpec::fromConfig(cfg, prefix, c.workload)});
        }
    }
    c.validate();
    return c;
}

void
HostConfig::toConfig(Config &cfg) const
{
    cfg.setDouble("host.fpga_mhz", fpgaMhz);
    cfg.setU64("host.num_ports", numPorts);
    cfg.setU64("host.tags_per_port", tagsPerPort);
    cfg.setU64("host.port_fifo_depth", portFifoDepth);
    cfg.setU64("host.requests_per_cycle_per_link", requestsPerCyclePerLink);
    cfg.setU64("host.deserializer_packets_per_cycle",
               deserializerPacketsPerCycle);
    cfg.setU64("host.deserializer_packet_budget_cap",
               deserializerPacketBudgetCap);
    cfg.setU64("host.deserializer_flits_per_cycle",
               deserializerFlitsPerCycle);
    cfg.setU64("host.deserializer_flit_budget_cap",
               deserializerFlitBudgetCap);
    cfg.setDouble("host.fixed_latency_ns", fixedLatencyNs);
    cfg.setU64("host.stream_window", streamWindow);
    cfg.setU64("host.stream_drain_flits_per_cycle",
               streamDrainFlitsPerCycle);
    cfg.setU64("host.seed", seed);
    cfg.setU64("host.workload_ports", workloadPorts);
    workload.toConfig(cfg, "host.");
    for (const PortWorkload &pw : portWorkloads) {
        pw.spec.toConfig(cfg,
                         "host.port" + std::to_string(pw.port) + ".");
    }
}

}  // namespace hmcsim
