/**
 * @file
 * FPGA request port base class: the machinery every port shares (the
 * request FIFO toward the controller, monitoring logic, activity
 * control).  The concrete port is WorkloadPort
 * (host/workload/workload_port.h), parameterized by a TrafficSource
 * and an injection policy; the seed's GupsPort/StreamPort behaviours
 * live on as legacy spec mappings there.
 */

#ifndef HMCSIM_HOST_PORT_H_
#define HMCSIM_HOST_PORT_H_

#include <deque>
#include <memory>

#include "host/host_config.h"
#include "host/monitor.h"
#include "hmc/packet.h"
#include "obs/metrics.h"
#include "sim/component.h"

namespace hmcsim {

class AnatomyCollector;
class PacketTracer;

class Port : public Component
{
  public:
    Port(Kernel &kernel, Component *parent, std::string name, PortId id,
         const HostConfig &cfg);

    ~Port() override = default;

    PortId portId() const { return id_; }

    bool active() const { return active_; }
    void setActive(bool active) { active_ = active; }

    // ----- controller-facing request path -----
    bool hasRequest() const { return !fifo_.empty(); }
    std::uint32_t headFlits() const;
    /** Target address of the head request (cube routing). */
    Addr headAddr() const;
    HmcPacketPtr popRequest();

    /** A matched response arrives from the controller's deserializer. */
    virtual void onResponse(const HmcPacketPtr &pkt) = 0;

    /** Called once per FPGA cycle while the fabric runs. */
    virtual void tick() = 0;

    /** True once the port has no further work (trace completion). */
    virtual bool idle() const;

    Monitor &monitor() { return monitor_; }
    const Monitor &monitor() const { return monitor_; }

    std::uint64_t issuedRequests() const { return issued_.value(); }

  protected:
    void reportOwnStats(std::map<std::string, double> &out) const override;
    void resetOwnStats() override;

    bool fifoFull() const { return fifo_.size() >= fifoDepth_; }

    /** Stamp creation time and enqueue toward the controller. */
    void pushRequest(const HmcPacketPtr &pkt);

    /**
     * Observability hook for the response completion path: feeds the
     * latency-anatomy collector, then in summary trace mode
     * reconstructs the whole lifecycle from the packet's timestamps,
     * in full mode records the final Eject event.  A no-op (null
     * checks only) when everything is off.
     */
    void traceComplete(const HmcPacket &pkt) const;

    /** Wire bytes of a full transaction (request + response). */
    static std::uint64_t transactionBytes(const HmcPacket &resp);

    PortId id_;
    std::uint32_t fifoDepth_;
    bool active_ = false;
    std::deque<HmcPacketPtr> fifo_;
    Monitor monitor_;
    Counter issued_;
    MetricSet obsMetrics_;
    /** Full-mode tracer (per-event hooks); null otherwise. */
    PacketTracer *tracer_ = nullptr;
    /** Any-mode tracer (completion-path lifecycle); null when off. */
    PacketTracer *lifeTracer_ = nullptr;
    /** Latency-anatomy collector; null when obs.anatomy is off. */
    AnatomyCollector *anatomy_ = nullptr;
};

}  // namespace hmcsim

#endif  // HMCSIM_HOST_PORT_H_
