/**
 * @file
 * FPGA request ports.
 *
 * Port is the common machinery (request FIFO toward the controller,
 * monitoring logic, activity control).  GupsPort generates requests
 * from an address generation unit as fast as tags and FIFO space allow
 * (the vendor GUPS firmware); StreamPort replays a memory trace with a
 * bounded in-flight window and a bounded response drain rate (the
 * custom multi-port stream firmware).
 */

#ifndef HMCSIM_HOST_PORT_H_
#define HMCSIM_HOST_PORT_H_

#include <deque>
#include <memory>

#include "host/addr_gen.h"
#include "host/host_config.h"
#include "host/monitor.h"
#include "host/tag_pool.h"
#include "host/trace.h"
#include "hmc/packet.h"
#include "sim/component.h"

namespace hmcsim {

class Port : public Component
{
  public:
    Port(Kernel &kernel, Component *parent, std::string name, PortId id,
         const HostConfig &cfg);

    ~Port() override = default;

    PortId portId() const { return id_; }

    bool active() const { return active_; }
    void setActive(bool active) { active_ = active; }

    // ----- controller-facing request path -----
    bool hasRequest() const { return !fifo_.empty(); }
    std::uint32_t headFlits() const;
    /** Target address of the head request (cube routing). */
    Addr headAddr() const;
    HmcPacketPtr popRequest();

    /** A matched response arrives from the controller's deserializer. */
    virtual void onResponse(const HmcPacketPtr &pkt) = 0;

    /** Called once per FPGA cycle while the fabric runs. */
    virtual void tick() = 0;

    /** True once the port has no further work (stream completion). */
    virtual bool idle() const;

    Monitor &monitor() { return monitor_; }
    const Monitor &monitor() const { return monitor_; }

    std::uint64_t issuedRequests() const { return issued_.value(); }

  protected:
    void reportOwnStats(std::map<std::string, double> &out) const override;
    void resetOwnStats() override;

    bool fifoFull() const { return fifo_.size() >= fifoDepth_; }

    /** Stamp creation time and enqueue toward the controller. */
    void pushRequest(const HmcPacketPtr &pkt);

    /** Wire bytes of a full transaction (request + response). */
    static std::uint64_t transactionBytes(const HmcPacket &resp);

    PortId id_;
    std::uint32_t fifoDepth_;
    bool active_ = false;
    std::deque<HmcPacketPtr> fifo_;
    Monitor monitor_;
    Counter issued_;
};

/** GUPS firmware port: address-generator driven, tag limited. */
class GupsPort : public Port
{
  public:
    struct Params {
        ReqKind kind = ReqKind::ReadOnly;
        GupsAddrGen::Params gen;
    };

    GupsPort(Kernel &kernel, Component *parent, std::string name,
             PortId id, const HostConfig &cfg, const Params &params);

    void tick() override;
    void onResponse(const HmcPacketPtr &pkt) override;
    bool idle() const override;

    const TagPool &tags() const { return tags_; }

  private:
    Params params_;
    GupsAddrGen gen_;
    TagPool tags_;
    /** Writes queued by read-modify-write pairs. */
    std::deque<Addr> pendingWrites_;
};

/** Multi-port-stream firmware port: trace replay with a window. */
class StreamPort : public Port
{
  public:
    struct Params {
        Trace trace;
        /** Loop the trace forever (continuous load). */
        bool loop = true;
        /** Max requests in flight; 0 uses the host config default. */
        std::uint32_t window = 0;
        /**
         * Batch mode: issue @p batchSize requests, wait for all
         * responses, repeat.  0 = continuous windowed issue.
         * This is the paper's "number of requests in a stream".
         */
        std::uint32_t batchSize = 0;
    };

    StreamPort(Kernel &kernel, Component *parent, std::string name,
               PortId id, const HostConfig &cfg, const Params &params);

    void tick() override;
    void onResponse(const HmcPacketPtr &pkt) override;
    bool idle() const override;

    std::uint32_t inFlight() const { return inFlight_; }
    std::uint64_t batchesCompleted() const { return batches_.value(); }

  private:
    Params params_;
    std::uint32_t window_;
    std::uint32_t drainRate_;
    std::size_t nextIdx_ = 0;
    std::uint32_t inFlight_ = 0;
    std::uint32_t batchRemaining_ = 0;
    bool exhausted_ = false;
    Tick nextIssueAllowed_ = 0;
    std::deque<HmcPacketPtr> drainQ_;
    std::uint32_t drainBudget_ = 0;
    Counter batches_;

    bool issueNext();
    void completeResponse(const HmcPacketPtr &pkt);
};

}  // namespace hmcsim

#endif  // HMCSIM_HOST_PORT_H_
