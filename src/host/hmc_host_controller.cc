#include "host/hmc_host_controller.h"

#include <algorithm>
#include <numeric>

#include "common/log.h"
#include "obs/observability.h"
#include "sim/kernel.h"

namespace hmcsim {

HmcHostController::HmcHostController(Kernel &kernel, Component *parent,
                                     std::string name,
                                     const HostConfig &cfg,
                                     HostAttach attach)
    : Component(kernel, parent, std::move(name)), cfg_(cfg),
      attach_(std::move(attach)), portArb_(cfg.numPorts),
      sentPerCube_(attach_.numCubes), outstanding_(attach_.numCubes, 0),
      peakOutstanding_(attach_.numCubes, 0),
      sentPerLink_(attach_.links.size())
{
    if (attach_.links.empty() || !attach_.map)
        panic("HmcHostController: incomplete host attachment");
    if (attach_.linkCube.size() != attach_.links.size())
        panic("HmcHostController: link/cube table size mismatch");
    for (SerdesLink *lk : attach_.links) {
        if (lk->endpointMode() != LinkEndpointMode::Host)
            panic("HmcHostController: wired to a pass-through link");
    }
    if (Observability *o = kernel.obs()) {
        obsMetrics_.bind(o->metricsRegistry(), path());
        obsMetrics_.counter("requests_sent", &requestsSent_);
        obsMetrics_.counter("responses_delivered", &responsesDelivered_);
        obsMetrics_.gauge("outstanding_now", [this] {
            return static_cast<double>(std::accumulate(
                outstanding_.begin(), outstanding_.end(), 0u));
        });
    }
}

void
HmcHostController::setPorts(std::vector<Port *> ports)
{
    if (ports.size() != cfg_.numPorts)
        panic("HmcHostController: port table size mismatch");
    ports_ = std::move(ports);
}

void
HmcHostController::tick()
{
    if (ports_.empty())
        panic("HmcHostController: tick before setPorts");
    tickRequests();
    tickResponses();
}

void
HmcHostController::tickRequests()
{
    // Rotate which link picks first so scarce requests (tag-limited
    // ports) spread across both links -- responses return on the link
    // their request used, so an unbalanced request path would halve
    // the usable response bandwidth.
    const LinkDir dir = LinkDir::HostToCube;
    const std::uint32_t num_links = numLinks();
    std::vector<std::uint32_t> grants(num_links,
                                      cfg_.requestsPerCyclePerLink);
    std::uint32_t idle_links = 0;
    while (idle_links < num_links) {
        LinkId l = static_cast<LinkId>(txNextLink_ % num_links);
        if (attach_.adaptiveEntry && num_links > 1) {
            // Congestion-aware entry spread: among links that still
            // hold an issue grant, prefer the one with the most free
            // request tokens; ties keep the round-robin order.
            std::uint32_t best = link(l).tokensFree(dir);
            for (std::uint32_t k = 1; k < num_links; ++k) {
                const LinkId cand =
                    static_cast<LinkId>((txNextLink_ + k) % num_links);
                if (grants[cand] == 0)
                    continue;
                const std::uint32_t free = link(cand).tokensFree(dir);
                if (grants[l] == 0 || free > best) {
                    l = cand;
                    best = free;
                }
            }
        }
        txNextLink_ = (static_cast<std::size_t>(l) + 1) % num_links;
        if (grants[l] == 0) {
            ++idle_links;
            continue;
        }
        SerdesLink &lk = link(l);
        const CubeId link_cube = attach_.linkCube[l];
        std::vector<bool> req(ports_.size(), false);
        bool any = false;
        for (std::size_t p = 0; p < ports_.size(); ++p) {
            req[p] = ports_[p]->hasRequest() &&
                lk.canSend(dir, ports_[p]->headFlits());
            // Star attachment: this link only reaches one cube.
            if (req[p] && link_cube != kCubeAll) {
                req[p] = attach_.map->decodeCube(
                             ports_[p]->headAddr()) == link_cube;
            }
            any = any || req[p];
        }
        if (!any) {
            grants[l] = 0;
            ++idle_links;
            continue;
        }
        const std::size_t winner = portArb_.grant(req);
        HmcPacketPtr pkt = ports_[winner]->popRequest();
        pkt->link = l;
        pkt->host = attach_.hostId;
        if (multiCube()) {
            pkt->cube = attach_.map->decodeCube(pkt->addr);
            ++outstanding_[pkt->cube];
            peakOutstanding_[pkt->cube] = std::max(
                peakOutstanding_[pkt->cube], outstanding_[pkt->cube]);
            sentPerCube_[pkt->cube].inc();
        }
        lk.reserveTokens(dir, pkt->flits());
        lk.send(dir, pkt);
        requestsSent_.inc();
        sentPerLink_[l].inc();
        --grants[l];
        idle_links = 0;
    }
}

void
HmcHostController::tickResponses()
{
    const LinkDir dir = LinkDir::CubeToHost;
    desFlitBudget_ = std::min(
        desFlitBudget_ + cfg_.deserializerFlitsPerCycle,
        cfg_.deserializerFlitBudgetCap);
    desPacketBudget_ = std::min(
        desPacketBudget_ + cfg_.deserializerPacketsPerCycle,
        cfg_.deserializerPacketBudgetCap);
    const std::uint32_t num_links = numLinks();
    std::uint32_t exhausted = 0;
    while (exhausted < num_links && desPacketBudget_ > 0) {
        SerdesLink &lk = link(static_cast<LinkId>(rxNextLink_ % num_links));
        rxNextLink_ = (rxNextLink_ + 1) % num_links;
        if (!lk.rxAvailable(dir)) {
            ++exhausted;
            continue;
        }
        if (lk.rxPeek(dir)->flits() > desFlitBudget_)
            return;  // datapath saturated this cycle
        HmcPacketPtr pkt = lk.rxPop(dir);
        desFlitBudget_ -= pkt->flits();
        --desPacketBudget_;
        exhausted = 0;
        if (pkt->host != attach_.hostId)
            panic("HmcHostController: host " +
                  std::to_string(attach_.hostId) +
                  " received a response issued by host " +
                  std::to_string(pkt->host));
        if (pkt->port >= ports_.size())
            panic("HmcHostController: response for unknown port");
        if (multiCube()) {
            if (pkt->cube >= outstanding_.size() ||
                outstanding_[pkt->cube] == 0)
                panic("HmcHostController: unmatched response cube id");
            --outstanding_[pkt->cube];
        }
        responsesDelivered_.inc();
        ports_[pkt->port]->onResponse(pkt);
    }
}

std::uint32_t
HmcHostController::outstandingToCube(CubeId c) const
{
    if (c >= outstanding_.size())
        panic("HmcHostController: cube out of range");
    return outstanding_[c];
}

std::uint32_t
HmcHostController::peakOutstandingToCube(CubeId c) const
{
    if (c >= peakOutstanding_.size())
        panic("HmcHostController: cube out of range");
    return peakOutstanding_[c];
}

std::uint64_t
HmcHostController::requestsSentToCube(CubeId c) const
{
    if (c >= sentPerCube_.size())
        panic("HmcHostController: cube out of range");
    return sentPerCube_[c].value();
}

std::uint64_t
HmcHostController::requestsSentOnLink(LinkId l) const
{
    if (l >= sentPerLink_.size())
        panic("HmcHostController: link out of range");
    return sentPerLink_[l].value();
}

void
HmcHostController::reportOwnStats(std::map<std::string, double> &out) const
{
    out[statName("requests_sent")] =
        static_cast<double>(requestsSent_.value());
    out[statName("responses_delivered")] =
        static_cast<double>(responsesDelivered_.value());
    for (LinkId l = 0; l < numLinks(); ++l) {
        out[statName("link" + std::to_string(l) + "_requests_sent")] =
            static_cast<double>(sentPerLink_[l].value());
    }
    if (multiCube()) {
        for (CubeId c = 0; c < attach_.numCubes; ++c) {
            const std::string tag = "cube" + std::to_string(c);
            out[statName(tag + "_requests_sent")] =
                static_cast<double>(sentPerCube_[c].value());
            out[statName(tag + "_outstanding_now")] =
                static_cast<double>(outstanding_[c]);
            out[statName(tag + "_peak_outstanding")] =
                static_cast<double>(peakOutstanding_[c]);
        }
    }
}

void
HmcHostController::resetOwnStats()
{
    requestsSent_.reset();
    responsesDelivered_.reset();
    for (Counter &c : sentPerLink_)
        c.reset();
    for (CubeId c = 0; c < attach_.numCubes; ++c) {
        sentPerCube_[c].reset();
        // Peaks restart from the live level, like the vault queues.
        peakOutstanding_[c] = outstanding_[c];
    }
}

}  // namespace hmcsim
