#include "host/hmc_host_controller.h"

#include <algorithm>

#include "common/log.h"

namespace hmcsim {

HmcHostController::HmcHostController(Kernel &kernel, Component *parent,
                                     std::string name,
                                     const HostConfig &cfg, HmcDevice &cube)
    : Component(kernel, parent, std::move(name)), cfg_(cfg), cube_(cube),
      portArb_(cfg.numPorts)
{
}

void
HmcHostController::setPorts(std::vector<Port *> ports)
{
    if (ports.size() != cfg_.numPorts)
        panic("HmcHostController: port table size mismatch");
    ports_ = std::move(ports);
}

void
HmcHostController::tick()
{
    if (ports_.empty())
        panic("HmcHostController: tick before setPorts");
    tickRequests();
    tickResponses();
}

void
HmcHostController::tickRequests()
{
    // Rotate which link picks first so scarce requests (tag-limited
    // ports) spread across both links -- responses return on the link
    // their request used, so an unbalanced request path would halve
    // the usable response bandwidth.
    const LinkDir dir = LinkDir::HostToCube;
    const std::uint32_t num_links = cube_.numLinks();
    std::vector<std::uint32_t> grants(num_links,
                                      cfg_.requestsPerCyclePerLink);
    std::uint32_t idle_links = 0;
    while (idle_links < num_links) {
        const LinkId l = static_cast<LinkId>(txNextLink_ % num_links);
        txNextLink_ = (txNextLink_ + 1) % num_links;
        if (grants[l] == 0) {
            ++idle_links;
            continue;
        }
        SerdesLink &link = cube_.link(l);
        std::vector<bool> req(ports_.size(), false);
        bool any = false;
        for (std::size_t p = 0; p < ports_.size(); ++p) {
            req[p] = ports_[p]->hasRequest() &&
                link.canSend(dir, ports_[p]->headFlits());
            any = any || req[p];
        }
        if (!any) {
            grants[l] = 0;
            ++idle_links;
            continue;
        }
        const std::size_t winner = portArb_.grant(req);
        HmcPacketPtr pkt = ports_[winner]->popRequest();
        pkt->link = l;
        link.reserveTokens(dir, pkt->flits());
        link.send(dir, pkt);
        requestsSent_.inc();
        --grants[l];
        idle_links = 0;
    }
}

void
HmcHostController::tickResponses()
{
    const LinkDir dir = LinkDir::CubeToHost;
    desFlitBudget_ = std::min(
        desFlitBudget_ + cfg_.deserializerFlitsPerCycle,
        cfg_.deserializerFlitBudgetCap);
    desPacketBudget_ = std::min(
        desPacketBudget_ + cfg_.deserializerPacketsPerCycle,
        cfg_.deserializerPacketBudgetCap);
    const std::uint32_t num_links = cube_.numLinks();
    std::uint32_t exhausted = 0;
    while (exhausted < num_links && desPacketBudget_ > 0) {
        SerdesLink &link = cube_.link(
            static_cast<LinkId>(rxNextLink_ % num_links));
        rxNextLink_ = (rxNextLink_ + 1) % num_links;
        if (!link.rxAvailable(dir)) {
            ++exhausted;
            continue;
        }
        if (link.rxPeek(dir)->flits() > desFlitBudget_)
            return;  // datapath saturated this cycle
        HmcPacketPtr pkt = link.rxPop(dir);
        desFlitBudget_ -= pkt->flits();
        --desPacketBudget_;
        exhausted = 0;
        if (pkt->port >= ports_.size())
            panic("HmcHostController: response for unknown port");
        responsesDelivered_.inc();
        ports_[pkt->port]->onResponse(pkt);
    }
}

void
HmcHostController::reportOwnStats(std::map<std::string, double> &out) const
{
    out[statName("requests_sent")] =
        static_cast<double>(requestsSent_.value());
    out[statName("responses_delivered")] =
        static_cast<double>(responsesDelivered_.value());
}

void
HmcHostController::resetOwnStats()
{
    requestsSent_.reset();
    responsesDelivered_.reset();
}

}  // namespace hmcsim
