/**
 * @file
 * Memory trace format for the multi-port stream implementation, plus
 * synthetic trace generators for the example workloads.
 *
 * Text format, one record per line:
 *   R <hex-addr> <bytes> [<delay-ns>]
 *   W <hex-addr> <bytes> [<delay-ns>]
 * '#' starts a comment.  A compact binary format (20 B/record,
 * little-endian) is provided for large traces.
 */

#ifndef HMCSIM_HOST_TRACE_H_
#define HMCSIM_HOST_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "hmc/address_map.h"

namespace hmcsim {

struct TraceRecord {
    Addr addr = 0;
    std::uint32_t bytes = 32;
    bool isWrite = false;
    /** Minimum gap (ns) after the previous record's issue. */
    std::uint32_t delayNs = 0;
};

using Trace = std::vector<TraceRecord>;

/** Parse a text trace; raises fatal() on malformed lines. */
Trace parseTraceText(const std::string &content);

/** Render a trace to the text format. */
std::string traceToText(const Trace &trace);

/** Load a trace file, auto-detecting binary vs text by magic. */
Trace loadTraceFile(const std::string &path);

/** Save in text form. */
void saveTraceText(const std::string &path, const Trace &trace);

/** Save in binary form (magic "HMCT"). */
void saveTraceBinary(const std::string &path, const Trace &trace);

// ----- synthetic generators -----

/** Sequential streaming accesses: base, base+stride, ... */
Trace makeStreamTrace(Addr base, std::size_t count, std::uint32_t bytes,
                      std::uint32_t stride, bool writes = false);

/** Uniform-random accesses confined by @p pattern. */
Trace makeRandomTrace(Rng &rng, const AddressPattern &pattern,
                      std::uint64_t capacity, std::size_t count,
                      std::uint32_t bytes, double write_fraction = 0.0);

/**
 * Pointer-chase style dependent accesses: a random permutation walk
 * within @p span bytes starting at @p base (one block per hop).
 */
Trace makePointerChaseTrace(Rng &rng, Addr base, std::uint64_t span,
                            std::size_t count, std::uint32_t bytes);

}  // namespace hmcsim

#endif  // HMCSIM_HOST_TRACE_H_
