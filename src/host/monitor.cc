#include "host/monitor.h"

#include "common/log.h"
#include "common/units.h"

namespace hmcsim {

Monitor::Monitor(double base_latency_ns)
    : baseNs_(base_latency_ns), hopHist_(0.0, 16.0, 16)
{
}

double
Monitor::latencyNs(Tick created, Tick completed) const
{
    if (completed < created)
        panic("Monitor: completion before creation");
    return ticksToNs(completed - created) + baseNs_;
}

void
Monitor::recordRead(Tick created, Tick completed, std::uint64_t wire_bytes,
                    const HmcPacket *pkt)
{
    const double ns = latencyNs(created, completed);
    reads_.inc();
    wireBytes_.inc(wire_bytes);
    readNs_.add(ns);
    if (hist_)
        hist_->add(ns);
    if (pkt) {
        hops_.add(static_cast<double>(pkt->reqHops + pkt->respHops));
        hopHist_.add(static_cast<double>(pkt->reqHops + pkt->respHops));
        if (ns > worstNs_) {
            worstNs_ = ns;
            worst_ = *pkt;
        }
    }
}

void
Monitor::recordWrite(Tick created, Tick completed, std::uint64_t wire_bytes)
{
    writes_.inc();
    wireBytes_.inc(wire_bytes);
    writeNs_.add(latencyNs(created, completed));
}

void
Monitor::enableHistogram(double lo_ns, double hi_ns, std::size_t bins)
{
    hist_ = std::make_unique<Histogram>(lo_ns, hi_ns, bins);
}

void
Monitor::registerMetrics(MetricSet &set) const
{
    set.counter("reads", &reads_);
    set.counter("writes", &writes_);
    set.counter("wire_bytes", &wireBytes_);
    set.sampler("read_latency_ns", &readNs_);
    set.sampler("write_latency_ns", &writeNs_);
    set.sampler("chain_hops", &hops_);
    set.histogram("chain_hop_hist", &hopHist_);
}

void
Monitor::reset()
{
    reads_.reset();
    writes_.reset();
    wireBytes_.reset();
    readNs_.reset();
    writeNs_.reset();
    hops_.reset();
    hopHist_.reset();
    worst_ = HmcPacket{};
    worstNs_ = -1.0;
    if (hist_)
        hist_->reset();
}

}  // namespace hmcsim
