#include "host/tag_pool.h"

#include <algorithm>

#include "common/log.h"

namespace hmcsim {

TagPool::TagPool(std::uint32_t capacity)
    : capacity_(capacity), acquired_(capacity, false)
{
    if (capacity_ == 0)
        panic("TagPool: zero capacity");
    freeList_.reserve(capacity_);
    // Hand out low tag ids first (cosmetic, deterministic).
    for (std::uint32_t t = capacity_; t > 0; --t)
        freeList_.push_back(t - 1);
}

TagId
TagPool::acquire()
{
    if (freeList_.empty())
        panic("TagPool: acquire from empty pool");
    const TagId tag = freeList_.back();
    freeList_.pop_back();
    acquired_[tag] = true;
    ++inUse_;
    peak_ = std::max(peak_, inUse_);
    return tag;
}

void
TagPool::release(TagId tag)
{
    if (tag >= capacity_)
        panic("TagPool: release of invalid tag " + std::to_string(tag));
    if (!acquired_[tag])
        panic("TagPool: double release of tag " + std::to_string(tag));
    acquired_[tag] = false;
    freeList_.push_back(tag);
    --inUse_;
}

bool
TagPool::isAcquired(TagId tag) const
{
    return tag < capacity_ && acquired_[tag];
}

}  // namespace hmcsim
