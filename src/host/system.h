/**
 * @file
 * Public entry point of the library: System assembles the full stack
 * (FPGA host model + HMC device) from a SystemConfig and provides the
 * run/measure API the examples and benchmarks are written against.
 *
 * Quickstart:
 * @code
 *   SystemConfig cfg;                       // paper's AC-510 defaults
 *   System sys(cfg);
 *   GupsPortSpec gp;
 *   gp.gen.pattern = sys.addressMap().pattern(16, 16);
 *   gp.gen.requestBytes = 64;
 *   sys.configureGupsPort(0, gp);
 *   sys.run(20 * kMicrosecond);             // warm up
 *   ExperimentResult r = sys.measure(50 * kMicrosecond);
 * @endcode
 *
 * Workloads can also be declared entirely in config
 * (host.workload_ports=N, host.workload=zipf, host.port0.workload=...,
 * see host/workload/workload_spec.h); such ports are configured and
 * activated at System construction.
 *
 * Multi-host fabrics: host.num_hosts builds N independent FPGA hosts
 * (each with its own ports, controller, tag pools) attached at
 * distinct chain entry cubes (host.host<H>.entry_cube, default spread
 * evenly).  Config-driven workloads are replicated onto every host
 * with decorrelated seeds; the single-port configure* helpers target
 * host 0, configureWorkloadAt() targets any host.  num_hosts=1 is
 * bit-identical to the classic single-host build.
 */

#ifndef HMCSIM_HOST_SYSTEM_H_
#define HMCSIM_HOST_SYSTEM_H_

#include <memory>
#include <utility>
#include <vector>

#include "chain/cube_network.h"
#include "hmc/hmc_device.h"
#include "host/experiment.h"
#include "host/fpga.h"
#include "host/host_config.h"
#include "obs/observability.h"
#include "sim/sim_config.h"

namespace hmcsim {

/** Whole-system configuration: device plus host infrastructure. */
struct SystemConfig {
    HmcConfig hmc;
    HostConfig host;
    ObsConfig obs;
    /** Engine implementation knobs (never change simulated behaviour). */
    SimConfig sim;

    void validate() const;

    /** Read "hmc.*", "host.*", "obs.*" and "sim.*" keys. */
    static SystemConfig fromConfig(const Config &cfg);
    void toConfig(Config &cfg) const;
};

class System
{
  public:
    explicit System(const SystemConfig &cfg = SystemConfig{});

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    const SystemConfig &config() const { return cfg_; }

    Kernel &kernel() { return kernel_; }
    Tick now() const { return kernel_.now(); }

    /** Cube @p c; the classic single-cube accessor is device(0). */
    HmcDevice &device(CubeId c = 0);
    std::uint32_t numCubes() const { return cfg_.hmc.chain.numCubes; }

    /** The cube chain; null in the classic single-cube system. */
    CubeNetwork *chain() { return chain_.get(); }

    // ----- host controllers -----

    std::uint32_t
    numHosts() const
    {
        return static_cast<std::uint32_t>(hosts_.size());
    }

    /** Host @p h's FPGA fabric; the classic accessor is fpga(). */
    Fpga &fpga(HostId h = 0);

    /** Chain entry cube of host @p h (0 in the classic system). */
    CubeId hostEntryCube(HostId h) const;

    const AddressMap &addressMap() const;

    /** Port @p p of host 0 (the classic single-host accessor). */
    Port &port(PortId p) { return fpga().port(p); }

    /** Port @p p of host @p h. */
    Port &portAt(HostId h, PortId p) { return fpga(h).port(p); }

    WorkloadPort &
    configureWorkloadPort(PortId p, WorkloadPort::Params params)
    {
        return fpga().configureWorkloadPort(p, std::move(params));
    }

    WorkloadPort &
    configureWorkload(PortId p, const WorkloadSpec &spec)
    {
        return fpga().configureWorkload(p, spec);
    }

    /** Configure one port of one specific host. */
    WorkloadPort &
    configureWorkloadAt(HostId h, PortId p, const WorkloadSpec &spec)
    {
        return fpga(h).configureWorkload(p, spec);
    }

    WorkloadPort &
    configureGupsPort(PortId p, const GupsPortSpec &params)
    {
        return fpga().configureGupsPort(p, params);
    }

    WorkloadPort &
    configureStreamPort(PortId p, const StreamPortSpec &params)
    {
        return fpga().configureStreamPort(p, params);
    }

    /** Advance simulated time by @p duration. */
    void run(Tick duration);

    /**
     * Run until every port of every host is idle (trace replay
     * finished) or @p max_duration elapses.
     * @return true if the system went idle
     */
    bool runUntilIdle(Tick max_duration);

    /** Clear all statistics (monitors, link/NoC/vault counters). */
    void resetStats();

    /** resetStats() + run(): a measured steady-state window. */
    ExperimentResult measure(Tick duration);

    /** Dump the full stat tree (path -> value). */
    std::map<std::string, double> stats() const;

    /** Observability layer, or null when every obs.* knob is off. */
    Observability *obs() { return obs_.get(); }
    const Observability *obs() const { return obs_.get(); }

  private:
    SystemConfig cfg_;
    Kernel kernel_;
    /** Declared before the component tree: components cache pointers
     *  into the observability layer, so it must outlive them. */
    std::unique_ptr<Observability> obs_;
    std::unique_ptr<Component> root_;
    /** Exactly one of cube_ (single-cube, bit-identical legacy
     *  construction) and chain_ (multi-cube network) is set. */
    std::unique_ptr<HmcDevice> cube_;
    std::unique_ptr<CubeNetwork> chain_;
    /** One FPGA fabric per host controller; hosts_[0] is the classic
     *  "fpga" (its component name stays "fpga" when numHosts == 1). */
    std::vector<std::unique_ptr<Fpga>> hosts_;
    /** Resolved entry cube per host. */
    std::vector<CubeId> entryCubes_;

    HostAttach makeAttach(HostId h);
    HostConfig hostConfigFor(HostId h) const;
};

}  // namespace hmcsim

#endif  // HMCSIM_HOST_SYSTEM_H_
