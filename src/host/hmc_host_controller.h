/**
 * @file
 * Host-side HMC controller (the Micron controller IP on the FPGA).
 *
 * Request path: once per FPGA cycle per link, round-robin over the
 * ports, forward one request whose link tokens are available.
 * Response path: a shared deserializer drains response flits from the
 * links' RX buffers at a bounded rate with a per-packet processing
 * overhead -- the ceiling that caps read bandwidth per request size
 * (Figs. 6 and 13).
 *
 * With multi-cube chaining the controller routes by the decoded CUB
 * field: it stamps every request's cube id, restricts star-attached
 * links to their cube, and tracks per-cube outstanding tags.
 */

#ifndef HMCSIM_HOST_HMC_HOST_CONTROLLER_H_
#define HMCSIM_HOST_HMC_HOST_CONTROLLER_H_

#include <vector>

#include "hmc/hmc_device.h"
#include "host/host_config.h"
#include "host/port.h"
#include "noc/arbiter.h"
#include "obs/metrics.h"

namespace hmcsim {

/**
 * What the host controller is wired to: the SerDes links it drives,
 * the shared address geometry, and the cubes behind them.  Assembled
 * by System from either a bare HmcDevice (classic single-cube) or a
 * chain::CubeNetwork.
 */
struct HostAttach {
    const AddressMap *map = nullptr;
    std::uint32_t numCubes = 1;
    std::uint64_t totalCapacityBytes = 0;
    /** This controller's host id; stamped on every request so the
     *  chain returns the response to this host's entry cube. */
    HostId hostId = 0;
    std::vector<SerdesLink *> links;
    /** Cube behind each link; kCubeAll when the link reaches all. */
    std::vector<CubeId> linkCube;
    /** Per-cube device handles (stats/power collection). */
    std::vector<HmcDevice *> cubes;
    /**
     * Congestion-aware chain-entry selection
     * (hmc.chain_routing=adaptive): each issue slot picks the entry
     * link with the most free request tokens instead of pure
     * round-robin.  False keeps the bit-identical legacy rotation.
     */
    bool adaptiveEntry = false;
};

class HmcHostController : public Component
{
  public:
    HmcHostController(Kernel &kernel, Component *parent, std::string name,
                      const HostConfig &cfg, HostAttach attach);

    /** (Re)bind the port table; called whenever a port is replaced. */
    void setPorts(std::vector<Port *> ports);

    /** Advance one FPGA cycle: issue requests, drain responses. */
    void tick();

    std::uint64_t requestsSent() const { return requestsSent_.value(); }
    std::uint64_t
    responsesDelivered() const
    {
        return responsesDelivered_.value();
    }

    /** Requests currently outstanding toward cube @p c. */
    std::uint32_t outstandingToCube(CubeId c) const;

    /** Peak of outstandingToCube over the stats window. */
    std::uint32_t peakOutstandingToCube(CubeId c) const;

    /** Lifetime requests sent toward cube @p c. */
    std::uint64_t requestsSentToCube(CubeId c) const;

    /** Requests issued down entry link @p l over the stats window. */
    std::uint64_t requestsSentOnLink(LinkId l) const;

  protected:
    void reportOwnStats(std::map<std::string, double> &out) const override;
    void resetOwnStats() override;

  private:
    HostConfig cfg_;
    HostAttach attach_;
    std::vector<Port *> ports_;
    /** One arbiter shared by all links: a global round-robin pointer
     *  keeps the nine ports' grant shares equal. */
    RoundRobinArbiter portArb_;
    std::uint32_t desFlitBudget_ = 0;
    std::uint32_t desPacketBudget_ = 0;
    std::size_t txNextLink_ = 0;
    std::size_t rxNextLink_ = 0;
    Counter requestsSent_;
    Counter responsesDelivered_;
    MetricSet obsMetrics_;

    // Per-cube CUB-field bookkeeping (sized numCubes).
    std::vector<Counter> sentPerCube_;
    std::vector<std::uint32_t> outstanding_;
    std::vector<std::uint32_t> peakOutstanding_;
    /** Entry-link spread (sized numLinks). */
    std::vector<Counter> sentPerLink_;

    SerdesLink &link(LinkId l) { return *attach_.links[l]; }
    std::uint32_t numLinks() const
    {
        return static_cast<std::uint32_t>(attach_.links.size());
    }
    bool multiCube() const { return attach_.numCubes > 1; }

    void tickRequests();
    void tickResponses();
};

}  // namespace hmcsim

#endif  // HMCSIM_HOST_HMC_HOST_CONTROLLER_H_
