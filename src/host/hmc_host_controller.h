/**
 * @file
 * Host-side HMC controller (the Micron controller IP on the FPGA).
 *
 * Request path: once per FPGA cycle per link, round-robin over the
 * ports, forward one request whose link tokens are available.
 * Response path: a shared deserializer drains response flits from the
 * links' RX buffers at a bounded rate with a per-packet processing
 * overhead -- the ceiling that caps read bandwidth per request size
 * (Figs. 6 and 13).
 */

#ifndef HMCSIM_HOST_HMC_HOST_CONTROLLER_H_
#define HMCSIM_HOST_HMC_HOST_CONTROLLER_H_

#include <vector>

#include "hmc/hmc_device.h"
#include "host/host_config.h"
#include "host/port.h"
#include "noc/arbiter.h"

namespace hmcsim {

class HmcHostController : public Component
{
  public:
    HmcHostController(Kernel &kernel, Component *parent, std::string name,
                      const HostConfig &cfg, HmcDevice &cube);

    /** (Re)bind the port table; called whenever a port is replaced. */
    void setPorts(std::vector<Port *> ports);

    /** Advance one FPGA cycle: issue requests, drain responses. */
    void tick();

    std::uint64_t requestsSent() const { return requestsSent_.value(); }
    std::uint64_t
    responsesDelivered() const
    {
        return responsesDelivered_.value();
    }

  protected:
    void reportOwnStats(std::map<std::string, double> &out) const override;
    void resetOwnStats() override;

  private:
    HostConfig cfg_;
    HmcDevice &cube_;
    std::vector<Port *> ports_;
    /** One arbiter shared by all links: a global round-robin pointer
     *  keeps the nine ports' grant shares equal. */
    RoundRobinArbiter portArb_;
    std::uint32_t desFlitBudget_ = 0;
    std::uint32_t desPacketBudget_ = 0;
    std::size_t txNextLink_ = 0;
    std::size_t rxNextLink_ = 0;
    Counter requestsSent_;
    Counter responsesDelivered_;

    void tickRequests();
    void tickResponses();
};

}  // namespace hmcsim

#endif  // HMCSIM_HOST_HMC_HOST_CONTROLLER_H_
