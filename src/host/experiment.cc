#include "host/experiment.h"

#include <algorithm>

#include "common/log.h"
#include "common/rng.h"
#include "common/units.h"
#include "host/system.h"

namespace hmcsim {

double
ExperimentResult::accessesPerSec() const
{
    if (windowTicks == 0)
        return 0.0;
    return static_cast<double>(totalReads + totalWrites) /
        (static_cast<double>(windowTicks) * 1e-12);
}

double
ExperimentResult::acceptedPerNs() const
{
    if (windowTicks == 0)
        return 0.0;
    return static_cast<double>(totalReads + totalWrites) /
        ticksToNs(windowTicks);
}

double
ExperimentResult::offeredPerNs() const
{
    if (windowTicks == 0)
        return 0.0;
    return totalOfferedRequests / ticksToNs(windowTicks);
}

double
ExperimentResult::chainTransitGBs() const
{
    if (windowTicks == 0)
        return 0.0;
    return bytesPerTickToGBs(
        static_cast<double>(totalChainTransitFlits) * kFlitBytes,
        windowTicks);
}

double
ExperimentResult::chainBisectionTrafficGBs() const
{
    if (windowTicks == 0)
        return 0.0;
    return bytesPerTickToGBs(
        static_cast<double>(chainBisectionFlits) * kFlitBytes,
        windowTicks);
}

ExperimentResult
collectResult(System &sys, Tick window_ticks)
{
    ExperimentResult r;
    r.windowTicks = window_ticks;
    SampleStats hops;
    std::unique_ptr<Histogram> merged_lat;
    bool lat_hist_complete = true;
    for (HostId h = 0; h < sys.numHosts(); ++h) {
        HostStats hs;
        hs.host = h;
        hs.entryCube = sys.hostEntryCube(h);
        SampleStats host_read;
        for (PortId p = 0; p < sys.fpga(h).numPorts(); ++p) {
            const Port &port = sys.portAt(h, p);
            double offered = 0.0;
            if (const auto *wp =
                    dynamic_cast<const WorkloadPort *>(&port)) {
                offered = wp->offeredRequests();
                r.totalOfferedRequests += offered;
                hs.offeredRequests += offered;
            }
            const Monitor &m = port.monitor();
            if (m.accesses() == 0)
                continue;
            PortStats ps;
            ps.host = h;
            ps.port = p;
            ps.offeredRequests = offered;
            ps.reads = m.reads();
            ps.writes = m.writes();
            ps.wireBytes = m.wireBytes();
            ps.avgReadNs = m.readLatencyNs().mean();
            ps.minReadNs = m.readLatencyNs().min();
            ps.maxReadNs = m.readLatencyNs().max();
            ps.stddevReadNs = m.readLatencyNs().stddev();
            ps.bandwidthGBs = bytesPerTickToGBs(
                static_cast<double>(ps.wireBytes), window_ticks);
            r.totalReads += ps.reads;
            r.totalWrites += ps.writes;
            r.totalWireBytes += ps.wireBytes;
            hs.reads += ps.reads;
            hs.writes += ps.writes;
            hs.wireBytes += ps.wireBytes;
            host_read.merge(m.readLatencyNs());
            r.mergedRead.merge(m.readLatencyNs());
            hops.merge(m.chainHops());
            if (r.chainHopCounts.empty())
                r.chainHopCounts.assign(m.chainHopHistogram().bins(), 0);
            for (std::size_t i = 0; i < r.chainHopCounts.size(); ++i)
                r.chainHopCounts[i] += m.chainHopHistogram().count(i);
            // p99 needs every port that recorded reads to carry a
            // same-shaped latency histogram; a partial set would skew
            // the tail silently.  Write-only ports contribute no read
            // samples and cannot disqualify the merge.
            if (const Histogram *hist = m.histogram()) {
                if (!merged_lat)
                    merged_lat = std::make_unique<Histogram>(
                        hist->lo(), hist->hi(), hist->bins());
                if (hist->lo() == merged_lat->lo() &&
                    hist->hi() == merged_lat->hi() &&
                    hist->bins() == merged_lat->bins())
                    merged_lat->merge(*hist);
                else
                    lat_hist_complete = false;
            } else if (ps.reads != 0) {
                lat_hist_complete = false;
            }
            r.ports.push_back(ps);
        }
        const HmcHostController &ctrl = sys.fpga(h).controller();
        hs.requestsSent = ctrl.requestsSent();
        hs.responsesDelivered = ctrl.responsesDelivered();
        hs.bandwidthGBs = bytesPerTickToGBs(
            static_cast<double>(hs.wireBytes), window_ticks);
        hs.avgReadNs = host_read.mean();
        r.hosts.push_back(hs);
    }
    if (merged_lat && lat_hist_complete)
        r.p99ReadLatencyNs = merged_lat->percentile(99.0);
    r.bandwidthGBs = bytesPerTickToGBs(
        static_cast<double>(r.totalWireBytes), window_ticks);
    r.avgChainHops = hops.mean();

    for (CubeId c = 0; c < sys.numCubes(); ++c) {
        CubeStats cs;
        cs.cube = c;
        cs.requestsServed = sys.device(c).totalRequestsServed();
        for (HostId h = 0; h < sys.numHosts(); ++h) {
            const HmcHostController &ctrl = sys.fpga(h).controller();
            if (sys.numCubes() > 1) {
                cs.requestsSent += ctrl.requestsSentToCube(c);
                cs.peakOutstanding += ctrl.peakOutstandingToCube(c);
            } else {
                cs.requestsSent += ctrl.requestsSent();
            }
        }
        if (CubeNetwork *chain = sys.chain()) {
            if (c == 0) {
                r.totalChainTransitFlits = chain->totalForwardedFlits();
                r.chainBisectionGBs = chain->bisectionBandwidthGBs();
                r.chainBisectionFlits = std::max(
                    chain->bisectionFlitsSent(LinkDir::HostToCube),
                    chain->bisectionFlitsSent(LinkDir::CubeToHost));
            }
            cs.requestHops = chain->routes().requestHops(c);
            if (const ChainSwitch *sw = chain->switchAt(c)) {
                cs.misroutes = sw->misroutes();
                cs.rxHolStalls = sw->rxHolStalls();
                r.totalAdaptiveDeviations += sw->adaptiveDeviations();
                r.totalChainMisroutes += cs.misroutes;
                r.totalRxHolStalls += cs.rxHolStalls;
            }
        }
        if (const PowerModel *pm = sys.device(c).powerModel()) {
            cs.energyPj = pm->windowEnergyPj();
            cs.maxTempC = pm->thermal().maxTemperatureC();
            r.energyPj += pm->windowEnergyPj();
            r.avgPowerW += pm->avgPowerW();
            r.maxTempC = std::max(r.maxTempC,
                                  pm->thermal().maxTemperatureC());
            r.throttlePct = std::max(r.throttlePct,
                                     100.0 * pm->throttledFraction());
        }
        r.cubes.push_back(cs);
    }
    r.avgReadLatencyNs = r.mergedRead.mean();
    r.minReadLatencyNs = r.mergedRead.min();
    r.maxReadLatencyNs = r.mergedRead.max();
    r.stddevReadLatencyNs = r.mergedRead.stddev();
    return r;
}

ExperimentResult
runGups(const SystemConfig &cfg, const GupsSpec &spec)
{
    System sys(cfg);
    if (spec.activePorts == 0 || spec.activePorts > cfg.host.numPorts)
        fatal("runGups: active port count out of range");

    const AddressPattern pattern = sys.addressMap().pattern(
        spec.numVaults, spec.numBanks, spec.baseVault, spec.baseBank);

    const std::uint32_t write_ports = static_cast<std::uint32_t>(
        spec.writePortFraction * spec.activePorts + 0.5);

    for (PortId p = 0; p < spec.activePorts; ++p) {
        GupsPortSpec gp;
        gp.kind = p < write_ports ? ReqKind::WriteOnly : spec.kind;
        gp.gen.mode = spec.mode;
        gp.gen.pattern = pattern;
        gp.gen.requestBytes = spec.requestBytes;
        gp.gen.capacity = cfg.hmc.totalCapacityBytes();
        // Kept verbatim from the seed (not mixSeeds) so the paper
        // figures' address streams stay bit-identical.
        gp.gen.seed = spec.seed * 7919 + p;
        sys.configureGupsPort(p, gp);
    }

    sys.run(spec.warmup);
    return sys.measure(spec.window);
}

ExperimentResult
runStreamBatch(const SystemConfig &cfg, const StreamBatchSpec &spec)
{
    System sys(cfg);
    Rng rng(spec.seed * 104729 + spec.vault);
    const AddressPattern pattern =
        sys.addressMap().pattern(1, spec.numBanks, spec.vault, 0);

    StreamPortSpec sp;
    sp.trace = makeRandomTrace(rng, pattern, cfg.hmc.totalCapacityBytes(),
                               spec.traceLength, spec.requestBytes);
    sp.loop = true;
    sp.batchSize = spec.batchSize;
    // The in-flight window stays at the hardware default: for batches
    // beyond the window, later requests wait (untimed) in the stream
    // buffer, which is what produces the paper's constant region in
    // Fig. 8.
    sp.window = 0;
    sys.configureStreamPort(0, sp);

    sys.run(spec.warmup);
    return sys.measure(spec.window);
}

ExperimentResult
runStreamVaults(const SystemConfig &cfg, const StreamVaultsSpec &spec)
{
    if (spec.vaults.empty())
        fatal("runStreamVaults: no vaults given");
    if (spec.vaults.size() > cfg.host.numPorts)
        fatal("runStreamVaults: more vaults than ports");

    System sys(cfg);
    for (std::size_t i = 0; i < spec.vaults.size(); ++i) {
        Rng rng(spec.seed * 31337 + i);
        StreamPortSpec sp;
        sp.trace = makeRandomTrace(
            rng, sys.addressMap().vaultPattern(spec.vaults[i]),
            cfg.hmc.totalCapacityBytes(), spec.traceLength, spec.requestBytes);
        sp.loop = true;
        sp.window = spec.inFlightWindow;
        sys.configureStreamPort(static_cast<PortId>(i), sp);
    }

    sys.run(spec.warmup);
    return sys.measure(spec.window);
}

ExperimentResult
runWorkload(const SystemConfig &cfg, const WorkloadRunSpec &spec)
{
    if (spec.activePorts == 0 || spec.activePorts > cfg.host.numPorts)
        fatal("runWorkload: active port count out of range");
    System sys(cfg);
    // Multi-host systems replicate the workload onto every host with
    // host-decorrelated seeds; host 0 keeps the exact single-host
    // streams.
    for (HostId h = 0; h < sys.numHosts(); ++h) {
        for (PortId p = 0; p < spec.activePorts; ++p) {
            WorkloadSpec w = spec.workload;
            if (w.seed == 0)
                w.seed = mixSeeds(spec.seed, p);
            if (h > 0)
                w.seed = mixSeeds(w.seed, kHostSeedStream + h);
            sys.configureWorkloadAt(h, p, w);
            if (spec.latencyHistBins != 0)
                sys.portAt(h, p).monitor().enableHistogram(
                    spec.latencyHistLoNs, spec.latencyHistHiNs,
                    spec.latencyHistBins);
        }
    }
    sys.run(spec.warmup);
    return sys.measure(spec.window);
}

}  // namespace hmcsim
