/**
 * @file
 * The assembled HMC device: external SerDes links, the logic-layer NoC,
 * and one vault controller (with its DRAM) per vault.
 *
 * Endpoint numbering on the internal NoC: link masters occupy ids
 * [0, numLinks); vault controllers occupy [numLinks, numLinks+numVaults).
 */

#ifndef HMCSIM_HMC_HMC_DEVICE_H_
#define HMCSIM_HMC_HMC_DEVICE_H_

#include <memory>
#include <vector>

#include "common/inline_function.h"
#include "hmc/address_map.h"
#include "hmc/hmc_config.h"
#include "hmc/serdes_link.h"
#include "hmc/vault_controller.h"
#include "noc/network.h"
#include "power/power_model.h"

namespace hmcsim {

/**
 * SerDes link parameters derived from the device config.  Shared by
 * the device's own links and the chain's ring wrap links so a new
 * link knob cannot silently apply to one but not the other.
 * @param seed_offset decorrelates the CRC error stream per user
 */
SerdesLink::Params linkParamsFrom(const HmcConfig &cfg,
                                  std::uint64_t seed_offset = 0);

class HmcDevice : public Component
{
  public:
    /**
     * @param cube_id this cube's position in a multi-cube chain; 0 for
     *        the classic single-cube system
     */
    HmcDevice(Kernel &kernel, Component *parent, std::string name,
              const HmcConfig &cfg, CubeId cube_id = 0);

    const HmcConfig &config() const { return cfg_; }
    const AddressMap &addressMap() const { return map_; }
    CubeId cubeId() const { return cubeId_; }

    SerdesLink &link(LinkId l);
    VaultController &vaultController(VaultId v);
    Network &network() { return *net_; }

    /** The power/thermal model; null when hmc.power_enabled is off. */
    PowerModel *powerModel() { return power_.get(); }
    const PowerModel *powerModel() const { return power_.get(); }

    /** Apply @p slowdown to every vault scheduler and link. */
    void applyThrottle(double slowdown);

    NodeId linkEndpoint(LinkId l) const { return l; }

    NodeId
    vaultEndpoint(VaultId v) const
    {
        return cfg_.numLinks + v;
    }

    std::uint32_t numLinks() const { return cfg_.numLinks; }
    std::uint32_t numVaults() const { return cfg_.numVaults; }

    /** Sum of requests served by all vault controllers. */
    std::uint64_t totalRequestsServed() const;

    // ----- multi-cube chaining hooks (wired by chain::CubeNetwork) -----

    /**
     * Handler for packets this cube must pass through (requests for
     * another cube, or responses transiting toward the host).  Returns
     * false when the switch cannot take the packet right now; the
     * caller leaves it in the RX buffer and retries on kickLinkRx().
     */
    using ForwardFn = InlineFunction<bool(LinkId, const HmcPacketPtr &)>;

    void setForwarder(ForwardFn fn) { forwarder_ = std::move(fn); }

    /** True when the local NoC can accept @p flits at @p arrival_link's
     *  endpoint right now. */
    bool canInjectLocal(LinkId arrival_link, std::uint32_t flits) const;

    /**
     * Inject a request addressed to this cube into the local NoC as if
     * it had arrived on link @p arrival_link (ring wrap/up arrivals
     * enter through the pass-through switch, not the link RX).
     * @return false when the NoC cannot accept it yet
     */
    bool tryInjectLocal(LinkId arrival_link, const HmcPacketPtr &pkt);

    /** Retry draining a link's RX buffer (forward-queue space freed). */
    void kickLinkRx(LinkId l) { drainLinkRx(l); }

    /** Retry a blocked NoC ejection at a link endpoint. */
    void kickEject(LinkId l) { net_->kickEject(linkEndpoint(l)); }

    /** Called (additionally) whenever NoC injection credits free up. */
    void setInjectSpaceHook(InlineFunction<void(LinkId)> fn);

  private:
    HmcConfig cfg_;
    CubeId cubeId_;
    AddressMap map_;
    std::unique_ptr<Network> net_;
    std::vector<std::unique_ptr<SerdesLink>> links_;
    std::vector<std::unique_ptr<VaultController>> vaults_;
    std::unique_ptr<PowerModel> power_;
    ForwardFn forwarder_;
    InlineFunction<void(LinkId)> injectSpaceHook_;

    /** Move request packets from a link's RX buffer into the NoC. */
    void drainLinkRx(LinkId l);

    /** Decode and inject one local request (credits already checked). */
    void injectLocal(LinkId arrival_link, const HmcPacketPtr &pkt);
};

}  // namespace hmcsim

#endif  // HMCSIM_HMC_HMC_DEVICE_H_
