/**
 * @file
 * The assembled HMC device: external SerDes links, the logic-layer NoC,
 * and one vault controller (with its DRAM) per vault.
 *
 * Endpoint numbering on the internal NoC: link masters occupy ids
 * [0, numLinks); vault controllers occupy [numLinks, numLinks+numVaults).
 */

#ifndef HMCSIM_HMC_HMC_DEVICE_H_
#define HMCSIM_HMC_HMC_DEVICE_H_

#include <memory>
#include <vector>

#include "hmc/address_map.h"
#include "hmc/hmc_config.h"
#include "hmc/serdes_link.h"
#include "hmc/vault_controller.h"
#include "noc/network.h"
#include "power/power_model.h"

namespace hmcsim {

class HmcDevice : public Component
{
  public:
    HmcDevice(Kernel &kernel, Component *parent, std::string name,
              const HmcConfig &cfg);

    const HmcConfig &config() const { return cfg_; }
    const AddressMap &addressMap() const { return map_; }

    SerdesLink &link(LinkId l);
    VaultController &vaultController(VaultId v);
    Network &network() { return *net_; }

    /** The power/thermal model; null when hmc.power_enabled is off. */
    PowerModel *powerModel() { return power_.get(); }
    const PowerModel *powerModel() const { return power_.get(); }

    /** Apply @p slowdown to every vault scheduler and link. */
    void applyThrottle(double slowdown);

    NodeId linkEndpoint(LinkId l) const { return l; }

    NodeId
    vaultEndpoint(VaultId v) const
    {
        return cfg_.numLinks + v;
    }

    std::uint32_t numLinks() const { return cfg_.numLinks; }
    std::uint32_t numVaults() const { return cfg_.numVaults; }

    /** Sum of requests served by all vault controllers. */
    std::uint64_t totalRequestsServed() const;

  private:
    HmcConfig cfg_;
    AddressMap map_;
    std::unique_ptr<Network> net_;
    std::vector<std::unique_ptr<SerdesLink>> links_;
    std::vector<std::unique_ptr<VaultController>> vaults_;
    std::unique_ptr<PowerModel> power_;

    /** Move request packets from a link's RX buffer into the NoC. */
    void drainLinkRx(LinkId l);
};

}  // namespace hmcsim

#endif  // HMCSIM_HMC_HMC_DEVICE_H_
